// Memory-bandwidth ablation (Section VII): "two remaining issues limit
// scalability: (1) limited object-level parallelism and (2) limited memory
// bandwidth."
//
// This bench sweeps the memory system's acceptance bandwidth and reports
// 16-core speedup, separating the two limits: benchmarks with linear
// graphs (compress/search) stay flat regardless of bandwidth, while the
// parallel-rich benchmarks scale with it until cores saturate.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Memory-bandwidth ablation: 16-core speedup vs bandwidth",
               opt);

  const std::uint32_t bandwidths[] = {1, 2, 4, 8, 16};
  std::printf("%-10s |", "benchmark");
  for (auto b : bandwidths) std::printf(" %5u/cyc", b);
  std::printf("\n");

  for (BenchmarkId id : opt.benchmarks) {
    std::printf("%-10s |", std::string(benchmark_name(id)).c_str());
    std::fflush(stdout);
    for (auto bw : bandwidths) {
      SimConfig cfg;
      cfg.memory.bandwidth_per_cycle = bw;
      cfg.coprocessor.num_cores = 1;
      const double base =
          static_cast<double>(run_collection(id, opt, cfg).total_cycles);
      cfg.coprocessor.num_cores = 16;
      const double par =
          static_cast<double>(run_collection(id, opt, cfg).total_cycles);
      std::printf(" %9.2f", base / par);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(expected: parallel-rich rows improve with bandwidth; "
              "compress/search stay flat — their limit is the object graph)\n");
  return 0;
}
