// Software-synchronization motivation (Sections I and III).
//
// Runs the four software parallel collectors — the naive object-granular
// transliteration of the paper's algorithm plus the three
// coarser-granularity designs from the literature survey — on the same
// workloads, with real host threads, and reports wall time, scaling and
// synchronization-operation counts.
//
// The paper's argument this regenerates: at object granularity the
// synchronization frequency (several mutex/CAS operations per 10-50-byte
// object) is prohibitive in software, which is why all known software
// collectors coarsen the work unit (chunks, packets, stolen deques) and
// pay for it in fragmentation, auxiliary structures and balance. The
// hardware SB makes the naive granularity free instead.
#include <cstdio>
#include <string>

#include "baselines/chunked_copying.hpp"
#include "baselines/naive_parallel.hpp"
#include "baselines/sequential_cheney.hpp"
#include "baselines/work_packets.hpp"
#include "baselines/work_stealing.hpp"
#include "bench_util.hpp"
#include "workloads/graph_plan.hpp"

namespace {

using namespace hwgc;

struct Row {
  const char* name;
  ParallelGcStats (*run)(Heap&, std::uint32_t);
};

const Row kCollectors[] = {
    {"naive-obj", [](Heap& h, std::uint32_t t) {
       return NaiveParallelCheney({.threads = t}).collect(h);
     }},
    {"chunked", [](Heap& h, std::uint32_t t) {
       return ChunkedCopyingCollector({.threads = t}).collect(h);
     }},
    {"packets", [](Heap& h, std::uint32_t t) {
       return WorkPacketCollector({.threads = t}).collect(h);
     }},
    {"stealing", [](Heap& h, std::uint32_t t) {
       return WorkStealingCollector({.threads = t}).collect(h);
     }},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Software baselines: wall time, scaling, sync ops/object",
               opt);

  const std::uint32_t thread_counts[] = {1, 2, 4, 8};
  for (BenchmarkId id : opt.benchmarks) {
    const GraphPlan plan = make_benchmark_plan(id, opt.scale, opt.seed);
    std::printf("%s:\n", std::string(benchmark_name(id)).c_str());
    std::printf("  %-10s |", "collector");
    for (auto t : thread_counts) std::printf("  t=%-2u ms", t);
    std::printf(" | sync/obj  waste%%\n");

    for (const Row& row : kCollectors) {
      std::printf("  %-10s |", row.name);
      std::fflush(stdout);
      ParallelGcStats last{};
      for (auto t : thread_counts) {
        // Median of three runs to tame host-scheduler noise.
        double best = 1e100;
        for (int rep = 0; rep < 3; ++rep) {
          Workload w = materialize(plan);
          const ParallelGcStats s = row.run(*w.heap, t);
          best = std::min(best, s.elapsed_ms);
          last = s;
        }
        std::printf(" %7.2f", best);
        std::fflush(stdout);
      }
      const double per_obj =
          last.objects_copied == 0
              ? 0.0
              : static_cast<double>(last.cas_ops + last.mutex_acquisitions) /
                    static_cast<double>(last.objects_copied);
      const double waste =
          100.0 * static_cast<double>(last.wasted_words) /
          static_cast<double>(last.words_copied + last.wasted_words + 1);
      std::printf(" | %8.2f %6.2f%%\n", per_obj, waste);
    }
    std::printf("\n");
  }
  std::printf("(expected: naive-obj pays several sync ops per object and "
              "scales worst; chunked/stealing trade fragmentation for "
              "fewer shared-structure operations)\n");
  return 0;
}
