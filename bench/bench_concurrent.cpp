// Concurrent collection (Section V-B's "next step", combined with the
// hardware read barrier of the authors' prior real-time work).
//
// Compares, per benchmark at 8 cores:
//   * stop-the-world: the main processor is paused for the whole cycle
//     (the paper's measured configuration) — pause = cycle length;
//   * concurrent: the main processor keeps executing through the read
//     barrier — pause = its longest barrier wait.
// Also reports the mutator's throughput and barrier activity during the
// concurrent cycle.
#include <cstdio>

#include "bench_util.hpp"
#include "core/concurrent_cycle.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Concurrent vs stop-the-world collection (8 cores)", opt);

  std::printf("%-10s %12s %12s %12s | %9s %10s %10s\n", "benchmark",
              "stw pause", "conc cycle", "conc pause", "mut ops",
              "gray reads", "mut evacs");
  for (BenchmarkId id : opt.benchmarks) {
    SimConfig stw;
    stw.coprocessor.num_cores = 8;
    const GcCycleStats stop_world = run_collection(id, opt, stw);

    Workload w = make_benchmark(id, opt.scale, opt.seed);
    ConcurrentCycle::Config cfg;
    cfg.sim = stw;
    cfg.op_spacing = 2;
    ConcurrentCycle cycle(cfg, *w.heap);
    const ConcurrentStats s = cycle.run();
    if (s.validation_mismatches != 0) {
      std::fprintf(stderr, "VALIDATION FAILED for %s\n",
                   std::string(benchmark_name(id)).c_str());
      return 1;
    }
    std::printf("%-10s %12llu %12llu %12llu | %9llu %10llu %10llu\n",
                std::string(benchmark_name(id)).c_str(),
                static_cast<unsigned long long>(stop_world.total_cycles),
                static_cast<unsigned long long>(s.gc.total_cycles),
                static_cast<unsigned long long>(s.longest_pause),
                static_cast<unsigned long long>(s.mutator_ops),
                static_cast<unsigned long long>(s.barrier_gray_reads),
                static_cast<unsigned long long>(s.barrier_evacuations));
    std::fflush(stdout);
  }
  std::printf("\n(the concurrent mutator's worst pause is the cost of one "
              "barrier operation — orders of magnitude below the cycle "
              "length the stop-the-world configuration pays)\n");
  return 0;
}
