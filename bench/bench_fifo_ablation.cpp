// Header-FIFO ablation (Sections V-D and VI-B): sweep the on-chip FIFO
// capacity and measure, for each benchmark at 16 cores,
//   * total collection cycles,
//   * FIFO hit rate on scan-header reads, and
//   * the scan-lock stall share (misses stretch the scan critical section).
//
// The paper's prototype supports up to 32k entries; cup is the benchmark
// whose gray population overflows it. The authors list "header caches in
// conjunction with an optimized header FIFO" as future work — capacity 0
// shows the worst case where every scan header comes from memory.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Header-FIFO capacity ablation (16 cores)", opt);

  const std::uint32_t capacities[] = {0, 1024, 8192, 32 * 1024, 256 * 1024};
  std::printf("%-10s %-9s %12s %9s %10s\n", "benchmark", "fifo", "cycles",
              "hit-rate", "scan-stall");
  for (BenchmarkId id : opt.benchmarks) {
    for (std::uint32_t cap : capacities) {
      SimConfig cfg;
      cfg.coprocessor.num_cores = 16;
      cfg.coprocessor.header_fifo_capacity = cap;
      const GcCycleStats s = run_collection(id, opt, cfg);
      const double fetches =
          static_cast<double>(s.fifo_hits + s.fifo_misses);
      const double hit_rate =
          fetches == 0 ? 0.0 : static_cast<double>(s.fifo_hits) / fetches;
      std::printf("%-10s %-9u %12llu %8.1f%% %9.2f%%\n",
                  std::string(benchmark_name(id)).c_str(), cap,
                  static_cast<unsigned long long>(s.total_cycles),
                  100.0 * hit_rate,
                  100.0 * s.mean_stall(StallReason::kScanLock) /
                      static_cast<double>(s.total_cycles));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("(paper: only cup overflows the 32k FIFO; its misses prolong "
              "the scan critical section)\n");
  return 0;
}
