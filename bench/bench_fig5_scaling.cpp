// Figure 5 — "Scaling behavior": speedup of the GC cycle as a function of
// the number of coprocessor cores (1, 2, 4, 8, 16), for all eight
// benchmarks, under the default memory model.
//
// The paper reports speedups of up to 7.4 at 8 cores and 12.1 at 16 cores
// for the parallel-rich benchmarks, while compress and search show no
// significant speedup (linear object graphs).
//
// Every run is profiled (src/profile/): under each speedup the table names
// the binding resource — the stall class holding the critical path — so a
// scaling knee reads as "sb-scan-wait took over at 8 cores" instead of a
// bare number. --profile-json exports the full attribution per
// configuration as hwgc-profile-v1 records (source "<bench>/<N>c").
#include <cstdio>

#include "bench_util.hpp"
#include "profile/critical_path.hpp"
#include "profile/profile_metrics.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Figure 5: GC cycle speedup vs number of GC cores", opt);

  MetricsRegistry reg;
  std::string profile_jsonl;
  const std::uint32_t core_counts[] = {1, 2, 4, 8, 16};
  std::printf("%-10s %12s |", "benchmark", "1-core cyc");
  for (auto c : core_counts) std::printf(" %14u", c);
  std::printf("\n");

  for (BenchmarkId id : opt.benchmarks) {
    double base = 0.0;
    std::printf("%-10s", std::string(benchmark_name(id)).c_str());
    std::fflush(stdout);
    for (auto cores : core_counts) {
      SimConfig cfg;
      cfg.coprocessor.num_cores = cores;
      CycleProfile profile;
      const GcCycleStats stats = run_collection(id, opt, cfg, &profile);
      reg.record(metrics_key(id, cores, opt), cfg, stats);
      const CriticalPathReport crit = critical_path(profile);
      if (cores == 1) {
        base = static_cast<double>(stats.total_cycles);
        std::printf(" %12llu |",
                    static_cast<unsigned long long>(stats.total_cycles));
      }
      std::printf(" %5.2f %-8.8s",
                  base / static_cast<double>(stats.total_cycles),
                  std::string(to_string(crit.binding)).c_str());
      std::fflush(stdout);
      ProfileAttribution attr;
      attr.source = std::string(benchmark_name(id)) + "/" +
                    std::to_string(cores) + "c";
      attr.add(profile);
      profile_jsonl += profile_attribution_jsonl(attr, "fig5_scaling");
    }
    std::printf("\n");
  }
  std::printf("\n(each cell: speedup + binding resource of the critical "
              "path; paper: db/javac-class benchmarks reach ~7.4x @8 and "
              "~12.1x @16; compress/search stay flat)\n");
  bool ok = maybe_write_jsonl(reg, opt, "fig5_scaling");
  ok = maybe_write_profile_jsonl(profile_jsonl, opt, "fig5_scaling") && ok;
  return ok ? 0 : 1;
}
