// Figure 5 — "Scaling behavior": speedup of the GC cycle as a function of
// the number of coprocessor cores (1, 2, 4, 8, 16), for all eight
// benchmarks, under the default memory model.
//
// The paper reports speedups of up to 7.4 at 8 cores and 12.1 at 16 cores
// for the parallel-rich benchmarks, while compress and search show no
// significant speedup (linear object graphs).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Figure 5: GC cycle speedup vs number of GC cores", opt);

  MetricsRegistry reg;
  const std::uint32_t core_counts[] = {1, 2, 4, 8, 16};
  std::printf("%-10s %12s |", "benchmark", "1-core cyc");
  for (auto c : core_counts) std::printf(" %7u", c);
  std::printf("\n");

  for (BenchmarkId id : opt.benchmarks) {
    double base = 0.0;
    std::printf("%-10s", std::string(benchmark_name(id)).c_str());
    std::fflush(stdout);
    std::string row;
    for (auto cores : core_counts) {
      SimConfig cfg;
      cfg.coprocessor.num_cores = cores;
      const GcCycleStats stats = run_collection(id, opt, cfg);
      reg.record(metrics_key(id, cores, opt), cfg, stats);
      if (cores == 1) {
        base = static_cast<double>(stats.total_cycles);
        std::printf(" %12llu |",
                    static_cast<unsigned long long>(stats.total_cycles));
      }
      std::printf(" %7.2f", base / static_cast<double>(stats.total_cycles));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: db/javac-class benchmarks reach ~7.4x @8 and "
              "~12.1x @16; compress/search stay flat)\n");
  return maybe_write_jsonl(reg, opt, "fig5_scaling") ? 0 : 1;
}
