// Figure 6 — "Scaling behavior (more realistic memory latency)": the same
// speedup sweep as Figure 5, but with an artificial +20 clock cycles added
// to every memory access.
//
// The paper's counter-intuitive result: the higher latency *improves*
// relative scalability for every benchmark with enough object-level
// parallelism, because each core spends more time stalled and more cores
// are needed to exhaust the memory bandwidth.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header(
      "Figure 6: speedup with +20 cycles artificial memory latency", opt);

  MetricsRegistry reg;
  const std::uint32_t core_counts[] = {1, 2, 4, 8, 16};
  std::printf("%-10s %12s |", "benchmark", "1-core cyc");
  for (auto c : core_counts) std::printf(" %7u", c);
  std::printf("\n");

  for (BenchmarkId id : opt.benchmarks) {
    double base = 0.0;
    std::printf("%-10s", std::string(benchmark_name(id)).c_str());
    std::fflush(stdout);
    for (auto cores : core_counts) {
      SimConfig cfg;
      cfg.coprocessor.num_cores = cores;
      cfg.memory.latency += 20;  // the paper's artificial latency,
      cfg.memory.header_latency += 20;  // added to every memory access
      const GcCycleStats stats = run_collection(id, opt, cfg);
      reg.record(metrics_key(id, cores, opt), cfg, stats);
      if (cores == 1) {
        base = static_cast<double>(stats.total_cycles);
        std::printf(" %12llu |",
                    static_cast<unsigned long long>(stats.total_cycles));
      }
      std::printf(" %7.2f", base / static_cast<double>(stats.total_cycles));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: scalability improves vs Figure 5 for all "
              "benchmarks with sufficient object-level parallelism)\n");
  return maybe_write_jsonl(reg, opt, "fig6_latency") ? 0 : 1;
}
