// Header-cache ablation (Section VII, future work 2).
//
// "... and (2) to make better use of the available memory bandwidth, e.g.
// by header caches in conjunction with an optimized header FIFO."
//
// This bench adds a direct-mapped on-chip header cache in front of the
// header port and sweeps its size at 16 cores. Hot headers — javac's
// symbol hubs and cup's re-read table headers — stop paying the DRAM row
// miss, shrinking both header-load stalls and header-lock hold times.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Header-cache ablation (16 cores)", opt);

  const std::uint32_t sizes[] = {0, 256, 4096, 65536};
  std::printf("%-10s %-8s %12s %14s %14s\n", "benchmark", "entries",
              "cycles", "hdr-load stall", "hdr-lock stall");
  for (BenchmarkId id : opt.benchmarks) {
    for (std::uint32_t entries : sizes) {
      SimConfig cfg;
      cfg.coprocessor.num_cores = 16;
      cfg.memory.header_cache_entries = entries;
      const GcCycleStats s = run_collection(id, opt, cfg);
      const double total = static_cast<double>(s.total_cycles);
      std::printf("%-10s %-8u %12llu %7.0f (%4.1f%%) %7.0f (%4.1f%%)\n",
                  std::string(benchmark_name(id)).c_str(), entries,
                  static_cast<unsigned long long>(s.total_cycles),
                  s.mean_stall(StallReason::kHeaderLoad),
                  100.0 * s.mean_stall(StallReason::kHeaderLoad) / total,
                  s.mean_stall(StallReason::kHeaderLock),
                  100.0 * s.mean_stall(StallReason::kHeaderLock) / total);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("(expected: header-heavy benchmarks — javac, cup, db — gain "
              "most; compress/search are body-bound and barely move)\n");
  return 0;
}
