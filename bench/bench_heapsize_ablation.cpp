// Heap-size ablation (Section VI-B, first paragraph): "the heap size had
// little to no influence on the measurement results regarding
// synchronization overhead and scalability. Therefore, we dimensioned the
// heap according to a rule of thumb and chose twice the minimal heap size."
//
// This bench re-runs the speedup measurement with semispaces sized 1.5x,
// 2x, 4x and 8x the live set and reports the 16-core speedup for each.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Heap-size ablation: 16-core speedup vs heap factor", opt);

  const double factors[] = {1.5, 2.0, 4.0, 8.0};
  std::printf("%-10s |", "benchmark");
  for (double f : factors) std::printf("   %4.1fx", f);
  std::printf("\n");

  for (BenchmarkId id : opt.benchmarks) {
    std::printf("%-10s |", std::string(benchmark_name(id)).c_str());
    std::fflush(stdout);
    for (double f : factors) {
      const GraphPlan plan = make_benchmark_plan(id, opt.scale, opt.seed);
      // 1 core.
      Workload w1 = materialize(plan, f);
      SimConfig cfg;
      cfg.coprocessor.num_cores = 1;
      Coprocessor c1(cfg, *w1.heap);
      const double base = static_cast<double>(c1.collect().total_cycles);
      // 16 cores.
      Workload w16 = materialize(plan, f);
      cfg.coprocessor.num_cores = 16;
      Coprocessor c16(cfg, *w16.heap);
      const double par = static_cast<double>(c16.collect().total_cycles);
      std::printf(" %7.2f", base / par);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: heap size has little to no influence — rows should "
              "be flat)\n");
  return 0;
}
