// Mark-bit early-read optimization (Section VI-B, javac discussion).
//
// The paper: "We hope to improve our implementation by reading the mark
// bit without prior acquisition of the header lock and by attempting a
// locking read only if the mark bit is cleared." The optimization targets
// javac's hot symbol-table hubs: once a hub is forwarded, readers no
// longer need its header lock at all, so the CAM conflicts disappear.
//
// This bench implements that proposal and reports header-lock stalls and
// total cycles with the optimization off (the paper's measured
// configuration) and on (the paper's prediction).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Mark-bit early-read optimization (16 cores)", opt);

  std::printf("%-10s %-6s %12s %16s %16s\n", "benchmark", "mode", "cycles",
              "hdr-lock stall", "hdr-load stall");
  for (BenchmarkId id : opt.benchmarks) {
    double base = 0.0;
    for (bool early : {false, true}) {
      SimConfig cfg;
      cfg.coprocessor.num_cores = 16;
      cfg.coprocessor.markbit_early_read = early;
      const GcCycleStats s = run_collection(id, opt, cfg);
      const double total = static_cast<double>(s.total_cycles);
      if (!early) base = total;
      std::printf("%-10s %-6s %12llu %8.0f (%4.1f%%) %8.0f (%4.1f%%)",
                  std::string(benchmark_name(id)).c_str(),
                  early ? "early" : "lock",
                  static_cast<unsigned long long>(s.total_cycles),
                  s.mean_stall(StallReason::kHeaderLock),
                  100.0 * s.mean_stall(StallReason::kHeaderLock) / total,
                  s.mean_stall(StallReason::kHeaderLoad),
                  100.0 * s.mean_stall(StallReason::kHeaderLoad) / total);
      if (early) std::printf("   speedup vs lock: %.2fx", base / total);
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf("\n(paper's prediction: javac's 29%% header-lock stalls should "
              "collapse; other benchmarks barely change)\n");
  return 0;
}
