// google-benchmark baselines for the multi-tenant heap service.
//
// Not a paper figure: these keep the SERVICE layer honest the same way
// bench_simulator_microbench keeps the cycle loop honest. Host-side
// requests/second through the full dispatch path (traffic draw, scheduler
// decision, mutator execution, SLO accounting) is what makes the
// EXPERIMENTS.md heapd sweeps (hundreds of thousands of requests) complete
// in seconds, and the reported simulated-latency counters give a baseline
// to spot accounting regressions against.
#include <benchmark/benchmark.h>

#include "service/heap_service.hpp"

namespace {

using namespace hwgc;

ServiceConfig service_config(std::size_t shards, GcSchedulerKind sched) {
  ServiceConfig cfg;
  cfg.shards = shards;
  cfg.semispace_words = 4096;
  cfg.sim.coprocessor.num_cores = 4;
  cfg.oracle = false;  // measure the dispatch path, not snapshotting
  cfg.scheduler = sched;
  return cfg;
}

void report(benchmark::State& state, const HeapService& service,
            std::uint64_t requests) {
  const SloStats fleet = service.fleet_stats();
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(requests) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["sim_p99_clk"] =
      static_cast<double>(fleet.latency.percentile(0.99));
  state.counters["collections"] = static_cast<double>(fleet.collections);
}

/// Full dispatch path, reactive policy, scaling in shard count.
void BM_ServeReactive(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kRequests = 2000;
  std::uint64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    HeapService service(service_config(shards, GcSchedulerKind::kReactive));
    state.ResumeTiming();
    service.serve(kRequests);
    total += kRequests;
    benchmark::DoNotOptimize(service.fleet_stats().completed);
    state.PauseTiming();
    report(state, service, kRequests);
    state.ResumeTiming();
  }
  (void)total;
}
BENCHMARK(BM_ServeReactive)->Arg(1)->Arg(4)->Arg(8);

/// Scheduler-policy comparison at a fixed fleet size.
void BM_ServeScheduler(benchmark::State& state) {
  const auto kind = static_cast<GcSchedulerKind>(state.range(0));
  constexpr std::uint64_t kRequests = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    HeapService service(service_config(4, kind));
    state.ResumeTiming();
    service.serve(kRequests);
    benchmark::DoNotOptimize(service.fleet_stats().completed);
    state.PauseTiming();
    report(state, service, kRequests);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ServeScheduler)
    ->Arg(static_cast<int>(GcSchedulerKind::kReactive))
    ->Arg(static_cast<int>(GcSchedulerKind::kProactive))
    ->Arg(static_cast<int>(GcSchedulerKind::kRoundRobin));

/// The oracle's cost: same run with per-cycle snapshot + post-structure
/// verification switched on.
void BM_ServeWithOracle(benchmark::State& state) {
  constexpr std::uint64_t kRequests = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    ServiceConfig cfg = service_config(4, GcSchedulerKind::kProactive);
    cfg.oracle = true;
    HeapService service(cfg);
    state.ResumeTiming();
    service.serve(kRequests);
    benchmark::DoNotOptimize(service.fleet_stats().oracle_failures);
  }
}
BENCHMARK(BM_ServeWithOracle);

}  // namespace

BENCHMARK_MAIN();
