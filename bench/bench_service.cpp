// Benchmarks for the multi-tenant heap service — two modes in one binary.
//
// Default (no --json): google-benchmark microbenches of the dispatch path,
// as before. These keep the SERVICE layer honest the same way
// bench_simulator_microbench keeps the cycle loop honest.
//
// --json[=path] [--requests=N] [--shards=N] [--min-speedup=F]: the CI
// perf-baseline harness. Runs an 8-shard closed-loop sweep twice on a
// memory-latency-bound configuration — the reference engine (one host
// thread, fast-forward off) and the tuned engine (fast-forward on) — and
// reports host-side throughput: simulated-cycles/second and
// requests/second. Both runs must produce identical simulated results
// (the fast-forward and parallel-conductor equivalence the test suite
// enforces); the harness exits nonzero if they diverge, and, with
// --min-speedup, if the tuned engine's simulated-cycles/sec gain falls
// short. Records land as hwgc-bench-v1 JSONL (schema fields from
// MetricsRegistry plus appended host_* / *_per_sec throughput fields —
// the schema is append-only, so bench_validate accepts them).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "service/heap_service.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace hwgc;

ServiceConfig service_config(std::size_t shards, GcSchedulerKind sched) {
  ServiceConfig cfg;
  cfg.shards = shards;
  cfg.semispace_words = 4096;
  cfg.sim.coprocessor.num_cores = 4;
  cfg.oracle = false;  // measure the dispatch path, not snapshotting
  cfg.scheduler = sched;
  return cfg;
}

void report(benchmark::State& state, const HeapService& service,
            std::uint64_t requests) {
  const SloStats fleet = service.fleet_stats();
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(requests) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["sim_p99_clk"] =
      static_cast<double>(fleet.latency.percentile(0.99));
  state.counters["collections"] = static_cast<double>(fleet.collections);
}

/// Full dispatch path, reactive policy, scaling in shard count.
void BM_ServeReactive(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kRequests = 2000;
  std::uint64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    HeapService service(service_config(shards, GcSchedulerKind::kReactive));
    state.ResumeTiming();
    service.serve(kRequests);
    total += kRequests;
    benchmark::DoNotOptimize(service.fleet_stats().completed);
    state.PauseTiming();
    report(state, service, kRequests);
    state.ResumeTiming();
  }
  (void)total;
}
BENCHMARK(BM_ServeReactive)->Arg(1)->Arg(4)->Arg(8);

/// Scheduler-policy comparison at a fixed fleet size.
void BM_ServeScheduler(benchmark::State& state) {
  const auto kind = static_cast<GcSchedulerKind>(state.range(0));
  constexpr std::uint64_t kRequests = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    HeapService service(service_config(4, kind));
    state.ResumeTiming();
    service.serve(kRequests);
    benchmark::DoNotOptimize(service.fleet_stats().completed);
    state.PauseTiming();
    report(state, service, kRequests);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ServeScheduler)
    ->Arg(static_cast<int>(GcSchedulerKind::kReactive))
    ->Arg(static_cast<int>(GcSchedulerKind::kProactive))
    ->Arg(static_cast<int>(GcSchedulerKind::kRoundRobin));

/// The oracle's cost: same run with per-cycle snapshot + post-structure
/// verification switched on.
void BM_ServeWithOracle(benchmark::State& state) {
  constexpr std::uint64_t kRequests = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    ServiceConfig cfg = service_config(4, GcSchedulerKind::kProactive);
    cfg.oracle = true;
    HeapService service(cfg);
    state.ResumeTiming();
    service.serve(kRequests);
    benchmark::DoNotOptimize(service.fleet_stats().oracle_failures);
  }
}
BENCHMARK(BM_ServeWithOracle);

/// The resilience layer's cost on the dispatch path: supervision joins the
/// home lane and runs the health state machine on every request; arg 1
/// adds a quarter-fleet fault storm with failover routing on top. Compare
/// against BM_ServeReactive/4 for the supervision-off baseline.
void BM_ServeResilient(benchmark::State& state) {
  const bool stormed = state.range(0) != 0;
  constexpr std::uint64_t kRequests = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    ServiceConfig cfg = service_config(4, GcSchedulerKind::kReactive);
    cfg.resilience.supervise = true;
    cfg.resilience.deadline_cycles = 1u << 16;
    if (stormed) {
      cfg.storm.shard_fraction = 0.25;
      cfg.storm.events_per_collection = 2;
    }
    HeapService service(cfg);
    state.ResumeTiming();
    service.serve(kRequests);
    benchmark::DoNotOptimize(service.fleet_stats().completed);
    state.PauseTiming();
    report(state, service, kRequests);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ServeResilient)->Arg(0)->Arg(1);

// --- CI perf-baseline harness (--json mode) --------------------------------

struct SweepOptions {
  std::size_t shards = 8;
  std::uint64_t requests = 6000;
  double min_speedup = 0.0;  ///< 0 = report only, no gate
  std::string json_path = "BENCH_service.json";
};

/// The measured configuration: closed-loop sessions driving every shard,
/// few cores and Figure-6 memory latency so collections are dominated by
/// quiescent memory-wait windows — the regime fast-forward targets (and
/// the regime a small heap per shard keeps collections frequent in).
ServiceConfig sweep_config(const SweepOptions& opt, std::size_t host_threads,
                           bool fast_forward) {
  ServiceConfig cfg;
  cfg.shards = opt.shards;
  cfg.semispace_words = 4096;
  cfg.oracle = false;
  cfg.scheduler = GcSchedulerKind::kReactive;
  cfg.traffic.open_loop = false;
  cfg.traffic.sessions = static_cast<std::uint32_t>(4 * opt.shards);
  cfg.sim.coprocessor.num_cores = 2;
  cfg.sim.memory.latency = 200;
  cfg.sim.memory.header_latency = 500;
  cfg.host_threads = host_threads;
  cfg.sim.coprocessor.fast_forward = fast_forward;
  return cfg;
}

struct SweepResult {
  double elapsed_sec = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t collections = 0;
  Cycle sim_gc_cycles = 0;    ///< simulated cycles spent collecting
  Cycle virtual_cycles = 0;   ///< end-to-end simulated latency volume
  std::vector<GcCycleStats> samples;  ///< one per collection, every shard

  double requests_per_sec() const {
    return elapsed_sec > 0.0 ? static_cast<double>(completed) / elapsed_sec
                             : 0.0;
  }
  double sim_cycles_per_sec() const {
    return elapsed_sec > 0.0
               ? static_cast<double>(sim_gc_cycles) / elapsed_sec
               : 0.0;
  }
};

SweepResult run_sweep(const ServiceConfig& cfg, std::uint64_t requests) {
  HeapService service(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  service.serve(requests);
  const auto t1 = std::chrono::steady_clock::now();
  SweepResult r;
  r.elapsed_sec = std::chrono::duration<double>(t1 - t0).count();
  const SloStats fleet = service.fleet_stats();
  r.completed = fleet.completed;
  r.collections = fleet.collections;
  r.sim_gc_cycles = fleet.gc_cycle_total;
  r.virtual_cycles = fleet.latency.sum();
  for (std::size_t s = 0; s < service.shard_count(); ++s) {
    const auto& history = service.runtime(s).gc_history();
    r.samples.insert(r.samples.end(), history.begin(), history.end());
  }
  return r;
}

/// Inserts extra fields into each JSONL line just before its closing '}',
/// keyed by the line's "benchmark" value. The hwgc-bench-v1 schema is
/// append-only, so the validator accepts the result.
std::string append_fields(
    const std::string& jsonl,
    const std::map<std::string, std::string>& extras_by_benchmark) {
  std::string out;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t eol = jsonl.find('\n', pos);
    if (eol == std::string::npos) eol = jsonl.size();
    std::string line = jsonl.substr(pos, eol - pos);
    for (const auto& [bench, extra] : extras_by_benchmark) {
      if (line.find("\"benchmark\":\"" + bench + "\"") != std::string::npos &&
          !line.empty() && line.back() == '}') {
        line.pop_back();
        line += extra + "}";
        break;
      }
    }
    out += line + "\n";
    pos = eol + 1;
  }
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string throughput_fields(const SweepResult& r, std::size_t host_threads,
                              bool fast_forward) {
  std::string extra;
  extra += ",\"host_elapsed_sec\":" + fmt(r.elapsed_sec);
  extra += ",\"host_threads\":" + std::to_string(host_threads);
  extra += ",\"fast_forward\":" + std::to_string(fast_forward ? 1 : 0);
  extra += ",\"requests_completed\":" + std::to_string(r.completed);
  extra += ",\"requests_per_sec\":" + fmt(r.requests_per_sec());
  extra += ",\"sim_gc_cycles\":" + std::to_string(r.sim_gc_cycles);
  extra += ",\"sim_cycles_per_sec\":" + fmt(r.sim_cycles_per_sec());
  return extra;
}

int run_perf_baseline(const SweepOptions& opt) {
  std::printf("## hwgc perf baseline: %zu-shard closed-loop sweep, %llu"
              " requests\n",
              opt.shards, static_cast<unsigned long long>(opt.requests));

  const ServiceConfig base_cfg = sweep_config(opt, 1, false);
  const ServiceConfig tuned_cfg = sweep_config(opt, 1, true);
  const SweepResult base = run_sweep(base_cfg, opt.requests);
  const SweepResult tuned = run_sweep(tuned_cfg, opt.requests);

  // The tuned engine must be an optimization, not a different simulation:
  // identical simulated outcome or the numbers mean nothing.
  if (base.completed != tuned.completed ||
      base.collections != tuned.collections ||
      base.sim_gc_cycles != tuned.sim_gc_cycles ||
      base.virtual_cycles != tuned.virtual_cycles) {
    std::fprintf(stderr,
                 "error: tuned run diverged from baseline "
                 "(completed %llu vs %llu, collections %llu vs %llu, "
                 "gc cycles %llu vs %llu)\n",
                 static_cast<unsigned long long>(base.completed),
                 static_cast<unsigned long long>(tuned.completed),
                 static_cast<unsigned long long>(base.collections),
                 static_cast<unsigned long long>(tuned.collections),
                 static_cast<unsigned long long>(base.sim_gc_cycles),
                 static_cast<unsigned long long>(tuned.sim_gc_cycles));
    return 1;
  }

  const double speedup = base.elapsed_sec > 0.0 && tuned.elapsed_sec > 0.0
                             ? base.elapsed_sec / tuned.elapsed_sec
                             : 0.0;
  std::printf("  baseline (ticked):       %8.3f s  %12.0f sim-cycles/s"
              "  %9.0f req/s\n",
              base.elapsed_sec, base.sim_cycles_per_sec(),
              base.requests_per_sec());
  std::printf("  tuned (fast-forward):    %8.3f s  %12.0f sim-cycles/s"
              "  %9.0f req/s\n",
              tuned.elapsed_sec, tuned.sim_cycles_per_sec(),
              tuned.requests_per_sec());
  std::printf("  speedup: %.2fx (simulated results bit-identical; %llu"
              " collections, %llu simulated GC cycles)\n",
              speedup, static_cast<unsigned long long>(base.collections),
              static_cast<unsigned long long>(base.sim_gc_cycles));

  // hwgc-bench-v1 records: one per engine, aggregated over every
  // collection on every shard, with appended throughput fields.
  MetricsRegistry reg;
  const auto record_all = [&reg](const char* name, const ServiceConfig& cfg,
                                 const SweepResult& r) {
    MetricsRegistry::Key key;
    key.benchmark = name;
    key.cores = cfg.sim.coprocessor.num_cores;
    key.scale = static_cast<double>(cfg.shards);
    key.seed = cfg.traffic.seed;
    for (const GcCycleStats& s : r.samples) reg.record(key, cfg.sim, s);
  };
  record_all("service-closed-loop-baseline", base_cfg, base);
  record_all("service-closed-loop-tuned", tuned_cfg, tuned);

  std::map<std::string, std::string> extras;
  extras["service-closed-loop-baseline"] =
      throughput_fields(base, base_cfg.host_threads, false);
  extras["service-closed-loop-tuned"] =
      throughput_fields(tuned, tuned_cfg.host_threads, true) +
      ",\"speedup_vs_ticked\":" + fmt(speedup);
  const std::string jsonl = append_fields(reg.to_jsonl("service"), extras);

  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", opt.json_path.c_str());
    return 1;
  }
  std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  std::fclose(f);
  std::printf("wrote %zu metric record(s) to %s\n", reg.size(),
              opt.json_path.c_str());

  if (opt.min_speedup > 0.0 && speedup < opt.min_speedup) {
    std::fprintf(stderr,
                 "error: fast-forward speedup %.2fx below required %.2fx\n",
                 speedup, opt.min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opt;
  bool json_mode = false;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      opt.json_path = arg.substr(7);
    } else if (arg.rfind("--shards=", 0) == 0) {
      opt.shards = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--requests=", 0) == 0) {
      opt.requests = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      opt.min_speedup = std::strtod(arg.c_str() + 14, nullptr);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (json_mode) return run_perf_baseline(opt);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
