// google-benchmark microbenchmarks of the simulator itself.
//
// These do not reproduce a paper result; they keep the *harness* honest:
// the cycle loop's hot paths (SB lock arbitration, memory-system tick,
// header-FIFO ops, full collection throughput) are what make paper-scale
// runs (--scale=1, tens of millions of cycles) complete in seconds.
#include <benchmark/benchmark.h>

#include "core/coprocessor.hpp"
#include "core/sync_block.hpp"
#include "mem/header_fifo.hpp"
#include "mem/memory_system.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace hwgc;

void BM_SyncBlockLockCycle(benchmark::State& state) {
  SyncBlock sb(16);
  CoreId core = 0;
  for (auto _ : state) {
    sb.begin_cycle();
    if (sb.try_lock_scan(core)) sb.unlock_scan(core);
    core = (core + 1) % 16;
    benchmark::DoNotOptimize(sb.scan());
  }
}
BENCHMARK(BM_SyncBlockLockCycle);

void BM_HeaderLockCam(benchmark::State& state) {
  SyncBlock sb(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    if (sb.try_lock_header(0, 0x1234)) sb.unlock_header(0);
  }
}
BENCHMARK(BM_HeaderLockCam)->Arg(2)->Arg(8)->Arg(16);

void BM_MemorySystemTick(benchmark::State& state) {
  MemoryConfig cfg;
  MemorySystem mem(cfg, 16);
  Cycle now = 0;
  CoreId core = 0;
  for (auto _ : state) {
    if (!mem.load_pending(core, Port::kBody)) {
      mem.issue_load(core, Port::kBody, 1000 + core);
    }
    mem.tick(++now);
    core = (core + 1) % 16;
  }
}
BENCHMARK(BM_MemorySystemTick);

void BM_HeaderFifoPushPop(benchmark::State& state) {
  HeaderFifo fifo(1024);
  Addr a = 100;
  for (auto _ : state) {
    fifo.push(HeaderFifo::Entry{a, 42, a + 1});
    HeaderFifo::Entry e;
    benchmark::DoNotOptimize(fifo.pop(a, e));
    a += 4;
  }
}
BENCHMARK(BM_HeaderFifoPushPop);

void BM_FullCollection(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t sim_cycles = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Workload w = make_benchmark(BenchmarkId::kJavacc, 0.05);
    SimConfig cfg;
    cfg.coprocessor.num_cores = cores;
    Coprocessor coproc(cfg, *w.heap);
    state.ResumeTiming();
    const GcCycleStats s = coproc.collect();
    sim_cycles += s.total_cycles;
    benchmark::DoNotOptimize(s.total_cycles);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullCollection)->Arg(1)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
