// Sub-object work distribution ablation (Section VII, future work 1).
//
// "We are currently investigating improvements that allow us (1) to
// distribute work at a finer granularity than object-level granularity,
// e.g. at the granularity of cache lines."
//
// This bench implements that proposal — large data areas are split into
// 16-word stripes dispensed by the SB to idle cores — and compares the
// 16-core speedup with and without it. compress (whose heap is dominated
// by two giant buffers plus a linear chain) is the benchmark the proposal
// targets; the parallel-rich workloads should be unaffected.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/graph_plan.hpp"

namespace {

// The proposal's target case in isolation: a handful of giant arrays
// (decompression buffers), where object-level parallelism is exactly the
// array count.
hwgc::GraphPlan boulders(hwgc::Word count, hwgc::Word delta) {
  hwgc::GraphPlan p;
  const auto root = p.add(count, 0);
  p.add_root(root);
  for (hwgc::Word f = 0; f < count; ++f) p.link(root, f, p.add(0, delta));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Sub-object (cache-line) work distribution ablation", opt);

  std::printf("%-10s %14s %14s | %8s %8s %10s\n", "benchmark", "obj-level",
              "sub-object", "objlvl x", "subobj x", "improvement");
  for (BenchmarkId id : opt.benchmarks) {
    SimConfig cfg;
    cfg.coprocessor.num_cores = 1;
    const double base =
        static_cast<double>(run_collection(id, opt, cfg).total_cycles);

    cfg.coprocessor.num_cores = 16;
    const double obj =
        static_cast<double>(run_collection(id, opt, cfg).total_cycles);

    cfg.coprocessor.subobject_copy = true;
    const double sub =
        static_cast<double>(run_collection(id, opt, cfg).total_cycles);

    std::printf("%-10s %14.0f %14.0f | %7.2fx %7.2fx %9.2fx\n",
                std::string(benchmark_name(id)).c_str(), obj, sub,
                base / obj, base / sub, obj / sub);
    std::fflush(stdout);
  }
  // Isolated giant-array rows: 2 and 4 boulders of 60k words each.
  for (Word count : {Word{2}, Word{4}}) {
    const GraphPlan plan = boulders(count, 60'000);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 1;
    Workload w0 = materialize(plan);
    Coprocessor c0(cfg, *w0.heap);
    const double base = static_cast<double>(c0.collect().total_cycles);

    cfg.coprocessor.num_cores = 16;
    Workload w1 = materialize(plan);
    Coprocessor c1(cfg, *w1.heap);
    const double obj = static_cast<double>(c1.collect().total_cycles);

    cfg.coprocessor.subobject_copy = true;
    Workload w2 = materialize(plan);
    Coprocessor c2(cfg, *w2.heap);
    const double sub = static_cast<double>(c2.collect().total_cycles);

    std::printf("%u-boulders %13.0f %14.0f | %7.2fx %7.2fx %9.2fx\n",
                count, obj, sub, base / obj, base / sub, obj / sub);
  }
  std::printf("\n(expected: the boulder rows gain several-fold — a single "
              "object's copy finally splits across cores; chain-bound "
              "compress and the object-parallel benchmarks move little)\n");
  return 0;
}
