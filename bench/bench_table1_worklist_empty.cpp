// Table I — "Fraction of clock cycles during which work list is empty":
// for each benchmark and core count, the percentage of cycles with
// scan == free (no gray object available for processing).
//
// The paper uses this to quantify object-level parallelism: compress and
// search exceed 98 % from 4 cores on (linear graphs), jflex reaches 35 %
// at 16 cores, and the parallel-rich benchmarks stay well below 1 %.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Table I: fraction of cycles with empty worklist", opt);

  MetricsRegistry reg;
  const std::uint32_t core_counts[] = {1, 2, 4, 8, 16};
  std::printf("%-10s", "benchmark");
  for (auto c : core_counts) std::printf(" %8u%s", c, c == 1 ? "core" : "");
  std::printf("\n");

  for (BenchmarkId id : opt.benchmarks) {
    std::printf("%-10s", std::string(benchmark_name(id)).c_str());
    std::fflush(stdout);
    for (auto cores : core_counts) {
      SimConfig cfg;
      cfg.coprocessor.num_cores = cores;
      const GcCycleStats stats = run_collection(id, opt, cfg);
      reg.record(metrics_key(id, cores, opt), cfg, stats);
      std::printf(" %8.2f%%", 100.0 * stats.worklist_empty_fraction());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: compress/search >98%% from 4 cores; jflex 5.5%% @8, "
              "35%% @16; cup/db/javac <0.1%%)\n");
  return maybe_write_jsonl(reg, opt, "table1_worklist_empty") ? 0 : 1;
}
