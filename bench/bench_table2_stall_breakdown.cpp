// Table II — "Clock cycle distribution (for 16 cores)": per benchmark, the
// mean per-core number of stall cycles attributed to each cause, absolute
// and as a fraction of the collection cycle's total clock count.
//
// Paper highlights: javac suffers 29 % header-lock stalls (hot hub
// objects); cup suffers 10.5 % scan-lock and 38.6 % header-load stalls
// (header-FIFO overflow drags scan-header reads into memory); the
// parallel-rich benchmarks are body/header *load* bound; store stalls are
// negligible everywhere.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  using namespace hwgc::bench;
  Options opt = parse_options(argc, argv);
  print_header("Table II: clock cycle distribution (16 cores)", opt);

  const StallReason cols[] = {
      StallReason::kScanLock,  StallReason::kFreeLock,
      StallReason::kHeaderLock, StallReason::kBodyLoad,
      StallReason::kBodyStore, StallReason::kHeaderLoad,
      StallReason::kHeaderStore,
  };

  std::printf("%-10s %10s", "benchmark", "total");
  for (auto r : cols) std::printf(" | %-18s", std::string(to_string(r)).c_str());
  std::printf("\n");

  MetricsRegistry reg;
  for (BenchmarkId id : opt.benchmarks) {
    SimConfig cfg;
    cfg.coprocessor.num_cores = 16;
    const GcCycleStats stats = run_collection(id, opt, cfg);
    reg.record(metrics_key(id, 16, opt), cfg, stats);
    const double total = static_cast<double>(stats.total_cycles);
    std::printf("%-10s %10llu", std::string(benchmark_name(id)).c_str(),
                static_cast<unsigned long long>(stats.total_cycles));
    for (auto r : cols) {
      const double mean = stats.mean_stall(r);
      std::printf(" | %9.0f (%5.2f%%)", mean, 100.0 * mean / total);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n(paper @16 cores: javac header-lock 29.4%%; cup scan-lock "
              "10.5%% + header-load 38.6%%; db header-load 33%%, body-load "
              "21%%; store stalls ~0)\n");
  return maybe_write_jsonl(reg, opt, "table2_stall_breakdown") ? 0 : 1;
}
