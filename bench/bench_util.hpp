// Shared helpers for the benchmark harness binaries.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (Section VI) and prints it in a comparable layout. The
// binaries accept:
//   --scale=<f>   live-set scale factor (default 0.25; 1.0 is paper-sized.
//                 The paper notes heap size has little influence on the
//                 relative results, which bench_heapsize_ablation checks.)
//   --seed=<n>    workload seed
//   --bench=<name[,name...]>  subset of benchmarks to run
//   --json[=path] additionally emit the aggregated metrics as stable-schema
//                 JSONL (default path BENCH_<suite>.json; schema
//                 hwgc-bench-v1, see src/telemetry/metrics.hpp)
//   --profile-json[=path]  emit per-configuration stall attribution as
//                 hwgc-profile-v1 JSONL (default path
//                 BENCH_<suite>_profile.json; src/profile/)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/coprocessor.hpp"
#include "profile/cycle_profiler.hpp"
#include "sim/config.hpp"
#include "telemetry/metrics.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc::bench {

struct Options {
  double scale = 0.25;
  std::uint64_t seed = 42;
  std::vector<BenchmarkId> benchmarks = all_benchmarks();
  bool json = false;
  std::string json_path;  ///< empty: BENCH_<suite>.json
  bool profile_json = false;
  std::string profile_json_path;  ///< empty: BENCH_<suite>_profile.json
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--bench=", 0) == 0) {
      opt.benchmarks.clear();
      std::string list = arg.substr(8);
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string name = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        for (BenchmarkId id : all_benchmarks()) {
          if (benchmark_name(id) == name) opt.benchmarks.push_back(id);
        }
        pos = comma == std::string::npos ? comma : comma + 1;
      }
      if (opt.benchmarks.empty()) {
        std::fprintf(stderr, "unknown benchmark list: %s\n", list.c_str());
        std::exit(2);
      }
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json = true;
      opt.json_path = arg.substr(7);
    } else if (arg == "--profile-json") {
      opt.profile_json = true;
    } else if (arg.rfind("--profile-json=", 0) == 0) {
      opt.profile_json = true;
      opt.profile_json_path = arg.substr(15);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--scale=F] [--seed=N] [--bench=a,b,...] [--json[=path]]"
          " [--profile-json[=path]]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return opt;
}

/// Builds the workload fresh and runs one collection cycle under `cfg`.
/// With `profile` non-null the cycle runs under the stall-attribution
/// profiler and leaves its CycleProfile there (simulated cycle counts are
/// identical either way).
inline GcCycleStats run_collection(BenchmarkId id, const Options& opt,
                                   SimConfig cfg,
                                   CycleProfile* profile = nullptr) {
  Workload w = make_benchmark(id, opt.scale, opt.seed);
  cfg.heap.semispace_words = w.heap->layout().semispace_words();
  Coprocessor coproc(cfg, *w.heap);
  if (profile == nullptr) return coproc.collect();
  CycleProfiler profiler;
  const GcCycleStats stats =
      coproc.collect(nullptr, nullptr, nullptr, nullptr, &profiler);
  *profile = profiler.take_profile();
  return stats;
}

inline void print_header(const char* title, const Options& opt) {
  std::printf("## %s\n", title);
  std::printf("## scale=%.3g seed=%llu (paper-sized heaps: --scale=1)\n\n",
              opt.scale, static_cast<unsigned long long>(opt.seed));
}

/// Registry key for one measured configuration of this run.
inline MetricsRegistry::Key metrics_key(BenchmarkId id, std::uint32_t cores,
                                        const Options& opt) {
  MetricsRegistry::Key key;
  key.benchmark = std::string(benchmark_name(id));
  key.cores = cores;
  key.scale = opt.scale;
  key.seed = opt.seed;
  return key;
}

/// Writes the registry as BENCH_<suite>.json (or --json=path) when --json
/// was requested. Returns false after printing a diagnostic on I/O failure,
/// so callers can turn it into a nonzero exit code.
inline bool maybe_write_jsonl(const MetricsRegistry& reg, const Options& opt,
                              const std::string& suite) {
  if (!opt.json) return true;
  const std::string path =
      opt.json_path.empty() ? "BENCH_" + suite + ".json" : opt.json_path;
  if (!reg.write_jsonl(path, suite)) {
    std::fprintf(stderr, "error: failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("\nwrote %zu metric record(s) to %s\n", reg.size(), path.c_str());
  return true;
}

/// Writes pre-rendered hwgc-profile-v1 JSONL when --profile-json was
/// requested (default path BENCH_<suite>_profile.json). Same error
/// contract as maybe_write_jsonl.
inline bool maybe_write_profile_jsonl(const std::string& jsonl,
                                      const Options& opt,
                                      const std::string& suite) {
  if (!opt.profile_json) return true;
  const std::string path = opt.profile_json_path.empty()
                               ? "BENCH_" + suite + "_profile.json"
                               : opt.profile_json_path;
  std::ofstream f(path, std::ios::binary);
  if (f) f.write(jsonl.data(), static_cast<std::streamsize>(jsonl.size()));
  if (!f || !f.flush().good()) {
    std::fprintf(stderr, "error: failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote profile attribution to %s\n", path.c_str());
  return true;
}

}  // namespace hwgc::bench
