// Shared helpers for the benchmark harness binaries.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (Section VI) and prints it in a comparable layout. The
// binaries accept:
//   --scale=<f>   live-set scale factor (default 0.25; 1.0 is paper-sized.
//                 The paper notes heap size has little influence on the
//                 relative results, which bench_heapsize_ablation checks.)
//   --seed=<n>    workload seed
//   --bench=<name[,name...]>  subset of benchmarks to run
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/coprocessor.hpp"
#include "sim/config.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc::bench {

struct Options {
  double scale = 0.25;
  std::uint64_t seed = 42;
  std::vector<BenchmarkId> benchmarks = all_benchmarks();
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--bench=", 0) == 0) {
      opt.benchmarks.clear();
      std::string list = arg.substr(8);
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string name = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        for (BenchmarkId id : all_benchmarks()) {
          if (benchmark_name(id) == name) opt.benchmarks.push_back(id);
        }
        pos = comma == std::string::npos ? comma : comma + 1;
      }
      if (opt.benchmarks.empty()) {
        std::fprintf(stderr, "unknown benchmark list: %s\n", list.c_str());
        std::exit(2);
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--scale=F] [--seed=N] [--bench=a,b,...]\n",
                  argv[0]);
      std::exit(0);
    }
  }
  return opt;
}

/// Builds the workload fresh and runs one collection cycle under `cfg`.
inline GcCycleStats run_collection(BenchmarkId id, const Options& opt,
                                   SimConfig cfg) {
  Workload w = make_benchmark(id, opt.scale, opt.seed);
  cfg.heap.semispace_words = w.heap->layout().semispace_words();
  Coprocessor coproc(cfg, *w.heap);
  return coproc.collect();
}

inline void print_header(const char* title, const Options& opt) {
  std::printf("## %s\n", title);
  std::printf("## scale=%.3g seed=%llu (paper-sized heaps: --scale=1)\n\n",
              opt.scale, static_cast<unsigned long long>(opt.seed));
}

}  // namespace hwgc::bench
