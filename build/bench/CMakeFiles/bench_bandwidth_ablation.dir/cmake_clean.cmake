file(REMOVE_RECURSE
  "CMakeFiles/bench_bandwidth_ablation.dir/bench_bandwidth_ablation.cpp.o"
  "CMakeFiles/bench_bandwidth_ablation.dir/bench_bandwidth_ablation.cpp.o.d"
  "bench_bandwidth_ablation"
  "bench_bandwidth_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bandwidth_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
