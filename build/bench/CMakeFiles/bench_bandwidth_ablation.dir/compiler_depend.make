# Empty compiler generated dependencies file for bench_bandwidth_ablation.
# This may be replaced when dependencies are built.
