file(REMOVE_RECURSE
  "CMakeFiles/bench_baselines_software.dir/bench_baselines_software.cpp.o"
  "CMakeFiles/bench_baselines_software.dir/bench_baselines_software.cpp.o.d"
  "bench_baselines_software"
  "bench_baselines_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baselines_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
