# Empty dependencies file for bench_baselines_software.
# This may be replaced when dependencies are built.
