file(REMOVE_RECURSE
  "CMakeFiles/bench_fifo_ablation.dir/bench_fifo_ablation.cpp.o"
  "CMakeFiles/bench_fifo_ablation.dir/bench_fifo_ablation.cpp.o.d"
  "bench_fifo_ablation"
  "bench_fifo_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fifo_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
