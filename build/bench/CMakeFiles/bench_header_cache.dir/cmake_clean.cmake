file(REMOVE_RECURSE
  "CMakeFiles/bench_header_cache.dir/bench_header_cache.cpp.o"
  "CMakeFiles/bench_header_cache.dir/bench_header_cache.cpp.o.d"
  "bench_header_cache"
  "bench_header_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_header_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
