# Empty compiler generated dependencies file for bench_header_cache.
# This may be replaced when dependencies are built.
