file(REMOVE_RECURSE
  "CMakeFiles/bench_heapsize_ablation.dir/bench_heapsize_ablation.cpp.o"
  "CMakeFiles/bench_heapsize_ablation.dir/bench_heapsize_ablation.cpp.o.d"
  "bench_heapsize_ablation"
  "bench_heapsize_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heapsize_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
