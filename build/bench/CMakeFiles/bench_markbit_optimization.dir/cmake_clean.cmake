file(REMOVE_RECURSE
  "CMakeFiles/bench_markbit_optimization.dir/bench_markbit_optimization.cpp.o"
  "CMakeFiles/bench_markbit_optimization.dir/bench_markbit_optimization.cpp.o.d"
  "bench_markbit_optimization"
  "bench_markbit_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_markbit_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
