# Empty compiler generated dependencies file for bench_markbit_optimization.
# This may be replaced when dependencies are built.
