file(REMOVE_RECURSE
  "CMakeFiles/bench_simulator_microbench.dir/bench_simulator_microbench.cpp.o"
  "CMakeFiles/bench_simulator_microbench.dir/bench_simulator_microbench.cpp.o.d"
  "bench_simulator_microbench"
  "bench_simulator_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulator_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
