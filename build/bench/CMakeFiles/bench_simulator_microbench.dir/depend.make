# Empty dependencies file for bench_simulator_microbench.
# This may be replaced when dependencies are built.
