file(REMOVE_RECURSE
  "CMakeFiles/bench_subobject_copy.dir/bench_subobject_copy.cpp.o"
  "CMakeFiles/bench_subobject_copy.dir/bench_subobject_copy.cpp.o.d"
  "bench_subobject_copy"
  "bench_subobject_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subobject_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
