# Empty dependencies file for bench_subobject_copy.
# This may be replaced when dependencies are built.
