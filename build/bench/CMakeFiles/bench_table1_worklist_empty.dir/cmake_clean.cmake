file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_worklist_empty.dir/bench_table1_worklist_empty.cpp.o"
  "CMakeFiles/bench_table1_worklist_empty.dir/bench_table1_worklist_empty.cpp.o.d"
  "bench_table1_worklist_empty"
  "bench_table1_worklist_empty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_worklist_empty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
