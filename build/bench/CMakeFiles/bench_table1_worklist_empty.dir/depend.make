# Empty dependencies file for bench_table1_worklist_empty.
# This may be replaced when dependencies are built.
