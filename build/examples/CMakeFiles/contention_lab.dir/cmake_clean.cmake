file(REMOVE_RECURSE
  "CMakeFiles/contention_lab.dir/contention_lab.cpp.o"
  "CMakeFiles/contention_lab.dir/contention_lab.cpp.o.d"
  "contention_lab"
  "contention_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
