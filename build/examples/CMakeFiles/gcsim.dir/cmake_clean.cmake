file(REMOVE_RECURSE
  "CMakeFiles/gcsim.dir/gcsim.cpp.o"
  "CMakeFiles/gcsim.dir/gcsim.cpp.o.d"
  "gcsim"
  "gcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
