# Empty dependencies file for gcsim.
# This may be replaced when dependencies are built.
