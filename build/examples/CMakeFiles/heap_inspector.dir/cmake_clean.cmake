file(REMOVE_RECURSE
  "CMakeFiles/heap_inspector.dir/heap_inspector.cpp.o"
  "CMakeFiles/heap_inspector.dir/heap_inspector.cpp.o.d"
  "heap_inspector"
  "heap_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
