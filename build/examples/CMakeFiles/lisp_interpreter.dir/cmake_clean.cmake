file(REMOVE_RECURSE
  "CMakeFiles/lisp_interpreter.dir/lisp_interpreter.cpp.o"
  "CMakeFiles/lisp_interpreter.dir/lisp_interpreter.cpp.o.d"
  "lisp_interpreter"
  "lisp_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisp_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
