# Empty dependencies file for lisp_interpreter.
# This may be replaced when dependencies are built.
