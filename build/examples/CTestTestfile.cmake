# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heap_inspector "/root/repo/build/examples/heap_inspector")
set_tests_properties(example_heap_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lisp "/root/repo/build/examples/lisp_interpreter")
set_tests_properties(example_lisp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gcsim "/root/repo/build/examples/gcsim" "--workload=jlisp" "--scale=0.05" "--cores=4" "--verify")
set_tests_properties(example_gcsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gcsim_concurrent "/root/repo/build/examples/gcsim" "--workload=db" "--scale=0.05" "--cores=4" "--concurrent")
set_tests_properties(example_gcsim_concurrent PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
