
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/chunked_copying.cpp" "src/baselines/CMakeFiles/hwgc_baselines.dir/chunked_copying.cpp.o" "gcc" "src/baselines/CMakeFiles/hwgc_baselines.dir/chunked_copying.cpp.o.d"
  "/root/repo/src/baselines/naive_parallel.cpp" "src/baselines/CMakeFiles/hwgc_baselines.dir/naive_parallel.cpp.o" "gcc" "src/baselines/CMakeFiles/hwgc_baselines.dir/naive_parallel.cpp.o.d"
  "/root/repo/src/baselines/sequential_cheney.cpp" "src/baselines/CMakeFiles/hwgc_baselines.dir/sequential_cheney.cpp.o" "gcc" "src/baselines/CMakeFiles/hwgc_baselines.dir/sequential_cheney.cpp.o.d"
  "/root/repo/src/baselines/work_packets.cpp" "src/baselines/CMakeFiles/hwgc_baselines.dir/work_packets.cpp.o" "gcc" "src/baselines/CMakeFiles/hwgc_baselines.dir/work_packets.cpp.o.d"
  "/root/repo/src/baselines/work_stealing.cpp" "src/baselines/CMakeFiles/hwgc_baselines.dir/work_stealing.cpp.o" "gcc" "src/baselines/CMakeFiles/hwgc_baselines.dir/work_stealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/heap/CMakeFiles/hwgc_heap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
