file(REMOVE_RECURSE
  "CMakeFiles/hwgc_baselines.dir/chunked_copying.cpp.o"
  "CMakeFiles/hwgc_baselines.dir/chunked_copying.cpp.o.d"
  "CMakeFiles/hwgc_baselines.dir/naive_parallel.cpp.o"
  "CMakeFiles/hwgc_baselines.dir/naive_parallel.cpp.o.d"
  "CMakeFiles/hwgc_baselines.dir/sequential_cheney.cpp.o"
  "CMakeFiles/hwgc_baselines.dir/sequential_cheney.cpp.o.d"
  "CMakeFiles/hwgc_baselines.dir/work_packets.cpp.o"
  "CMakeFiles/hwgc_baselines.dir/work_packets.cpp.o.d"
  "CMakeFiles/hwgc_baselines.dir/work_stealing.cpp.o"
  "CMakeFiles/hwgc_baselines.dir/work_stealing.cpp.o.d"
  "libhwgc_baselines.a"
  "libhwgc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
