file(REMOVE_RECURSE
  "libhwgc_baselines.a"
)
