# Empty compiler generated dependencies file for hwgc_baselines.
# This may be replaced when dependencies are built.
