file(REMOVE_RECURSE
  "CMakeFiles/hwgc_core.dir/concurrent_cycle.cpp.o"
  "CMakeFiles/hwgc_core.dir/concurrent_cycle.cpp.o.d"
  "CMakeFiles/hwgc_core.dir/coprocessor.cpp.o"
  "CMakeFiles/hwgc_core.dir/coprocessor.cpp.o.d"
  "CMakeFiles/hwgc_core.dir/gc_core.cpp.o"
  "CMakeFiles/hwgc_core.dir/gc_core.cpp.o.d"
  "CMakeFiles/hwgc_core.dir/sync_block.cpp.o"
  "CMakeFiles/hwgc_core.dir/sync_block.cpp.o.d"
  "libhwgc_core.a"
  "libhwgc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
