file(REMOVE_RECURSE
  "libhwgc_core.a"
)
