file(REMOVE_RECURSE
  "CMakeFiles/hwgc_heap.dir/heap.cpp.o"
  "CMakeFiles/hwgc_heap.dir/heap.cpp.o.d"
  "CMakeFiles/hwgc_heap.dir/verifier.cpp.o"
  "CMakeFiles/hwgc_heap.dir/verifier.cpp.o.d"
  "libhwgc_heap.a"
  "libhwgc_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
