file(REMOVE_RECURSE
  "libhwgc_heap.a"
)
