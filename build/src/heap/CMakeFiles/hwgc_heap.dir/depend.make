# Empty dependencies file for hwgc_heap.
# This may be replaced when dependencies are built.
