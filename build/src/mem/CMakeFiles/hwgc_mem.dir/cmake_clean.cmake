file(REMOVE_RECURSE
  "CMakeFiles/hwgc_mem.dir/memory_system.cpp.o"
  "CMakeFiles/hwgc_mem.dir/memory_system.cpp.o.d"
  "libhwgc_mem.a"
  "libhwgc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
