file(REMOVE_RECURSE
  "libhwgc_mem.a"
)
