# Empty dependencies file for hwgc_mem.
# This may be replaced when dependencies are built.
