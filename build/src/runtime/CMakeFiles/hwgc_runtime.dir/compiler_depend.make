# Empty compiler generated dependencies file for hwgc_runtime.
# This may be replaced when dependencies are built.
