
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/benchmarks.cpp" "src/workloads/CMakeFiles/hwgc_workloads.dir/benchmarks.cpp.o" "gcc" "src/workloads/CMakeFiles/hwgc_workloads.dir/benchmarks.cpp.o.d"
  "/root/repo/src/workloads/graph_plan.cpp" "src/workloads/CMakeFiles/hwgc_workloads.dir/graph_plan.cpp.o" "gcc" "src/workloads/CMakeFiles/hwgc_workloads.dir/graph_plan.cpp.o.d"
  "/root/repo/src/workloads/mutator.cpp" "src/workloads/CMakeFiles/hwgc_workloads.dir/mutator.cpp.o" "gcc" "src/workloads/CMakeFiles/hwgc_workloads.dir/mutator.cpp.o.d"
  "/root/repo/src/workloads/random_graph.cpp" "src/workloads/CMakeFiles/hwgc_workloads.dir/random_graph.cpp.o" "gcc" "src/workloads/CMakeFiles/hwgc_workloads.dir/random_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/heap/CMakeFiles/hwgc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hwgc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hwgc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hwgc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
