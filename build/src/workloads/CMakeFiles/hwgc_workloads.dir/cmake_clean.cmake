file(REMOVE_RECURSE
  "CMakeFiles/hwgc_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/hwgc_workloads.dir/benchmarks.cpp.o.d"
  "CMakeFiles/hwgc_workloads.dir/graph_plan.cpp.o"
  "CMakeFiles/hwgc_workloads.dir/graph_plan.cpp.o.d"
  "CMakeFiles/hwgc_workloads.dir/mutator.cpp.o"
  "CMakeFiles/hwgc_workloads.dir/mutator.cpp.o.d"
  "CMakeFiles/hwgc_workloads.dir/random_graph.cpp.o"
  "CMakeFiles/hwgc_workloads.dir/random_graph.cpp.o.d"
  "libhwgc_workloads.a"
  "libhwgc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
