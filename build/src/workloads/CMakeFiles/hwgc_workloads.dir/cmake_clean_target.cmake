file(REMOVE_RECURSE
  "libhwgc_workloads.a"
)
