# Empty dependencies file for hwgc_workloads.
# This may be replaced when dependencies are built.
