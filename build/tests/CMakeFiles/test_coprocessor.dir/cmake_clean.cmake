file(REMOVE_RECURSE
  "CMakeFiles/test_coprocessor.dir/test_coprocessor.cpp.o"
  "CMakeFiles/test_coprocessor.dir/test_coprocessor.cpp.o.d"
  "test_coprocessor"
  "test_coprocessor.pdb"
  "test_coprocessor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
