# Empty compiler generated dependencies file for test_coprocessor.
# This may be replaced when dependencies are built.
