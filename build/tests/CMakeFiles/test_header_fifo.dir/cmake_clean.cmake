file(REMOVE_RECURSE
  "CMakeFiles/test_header_fifo.dir/test_header_fifo.cpp.o"
  "CMakeFiles/test_header_fifo.dir/test_header_fifo.cpp.o.d"
  "test_header_fifo"
  "test_header_fifo.pdb"
  "test_header_fifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_header_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
