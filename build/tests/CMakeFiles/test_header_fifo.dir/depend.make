# Empty dependencies file for test_header_fifo.
# This may be replaced when dependencies are built.
