file(REMOVE_RECURSE
  "CMakeFiles/test_sync_block.dir/test_sync_block.cpp.o"
  "CMakeFiles/test_sync_block.dir/test_sync_block.cpp.o.d"
  "test_sync_block"
  "test_sync_block.pdb"
  "test_sync_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
