# Empty compiler generated dependencies file for test_sync_block.
# This may be replaced when dependencies are built.
