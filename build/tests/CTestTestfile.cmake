# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_object_model[1]_include.cmake")
include("/root/repo/build/tests/test_heap[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_header_fifo[1]_include.cmake")
include("/root/repo/build/tests/test_sync_block[1]_include.cmake")
include("/root/repo/build/tests/test_verifier[1]_include.cmake")
include("/root/repo/build/tests/test_coprocessor[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_config_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_graph_builder[1]_include.cmake")
include("/root/repo/build/tests/test_interop[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
