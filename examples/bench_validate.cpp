// bench_validate — schema gate for hwgc JSONL metric files.
//
// Validates every line of every file named on the command line against the
// stable schema its "schema" field names: hwgc-bench-v1
// (telemetry/metrics.hpp) or hwgc-service-v1
// (service/service_metrics.hpp). Required keys present and correctly
// typed, fractions within [0, 1], percentile ordering, and — for service
// records — exact stall accounting (service + queue + stall ==
// latency_cycles). A heapd artifact carries both sections in one file;
// lines with an unknown or missing schema are violations. CI runs it over
// freshly produced BENCH_*.json artifacts so a schema drift fails the
// build rather than silently breaking downstream dashboards.
//
// Usage: bench_validate FILE [FILE...]
// Exit status: 0 all files valid, 1 any violation or unreadable file,
//              2 usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "service/service_metrics.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_validate FILE [FILE...]\n");
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    std::vector<std::string> errors;
    const bool ok = hwgc::validate_metrics_jsonl_file(argv[i], &errors);
    if (ok) {
      std::printf("%s: OK\n", argv[i]);
      continue;
    }
    all_ok = false;
    std::printf("%s: INVALID\n", argv[i]);
    for (const auto& e : errors) std::printf("  %s\n", e.c_str());
  }
  return all_ok ? 0 : 1;
}
