// Contention lab: watch the three synchronization points of Section IV
// under controlled stress, and see how the hardware SB keeps their
// uncontended cost at zero.
//
// The lab builds three purpose-made graphs:
//   1. "hub storm"     — every object points at the same few hubs: the
//                        header-lock CAM becomes the bottleneck (javac's
//                        pathology, isolated);
//   2. "confetti"      — hundreds of thousands of minimal objects: the
//                        1-fetch-per-cycle scan register and the
//                        1-evacuation-per-cycle free register become the
//                        serial floor;
//   3. "boulders"      — a handful of giant arrays: no synchronization at
//                        all, but no object-level parallelism either
//                        (Section VII's motivation for sub-object work
//                        distribution).
// For each it prints the 16-core stall anatomy side by side.
#include <cstdio>
#include <string>

#include "core/coprocessor.hpp"
#include "workloads/graph_plan.hpp"

using namespace hwgc;

namespace {

GraphPlan hub_storm() {
  GraphPlan p;
  const std::uint32_t hub_count = 2;
  std::vector<std::uint32_t> hubs;
  const std::uint32_t anchor = p.add(hub_count, 0);
  p.add_root(anchor);
  for (std::uint32_t h = 0; h < hub_count; ++h) {
    hubs.push_back(p.add(0, 4));
    p.link(anchor, h, hubs.back());
  }
  std::vector<std::uint32_t> heads;
  for (std::uint32_t c = 0; c < 64; ++c) {
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i < 400; ++i) {
      const std::uint32_t node = p.add(3, 0);  // next + 2 hub refs
      p.link(node, 1, hubs[i % hub_count]);
      p.link(node, 2, hubs[(i + 1) % hub_count]);
      if (i == 0) {
        heads.push_back(node);
      } else {
        p.link(prev, 0, node);
      }
      prev = node;
    }
  }
  const std::uint32_t root = p.add(static_cast<Word>(heads.size()), 0);
  p.add_root(root);
  for (std::uint32_t i = 0; i < heads.size(); ++i) p.link(root, i, heads[i]);
  return p;
}

GraphPlan confetti() {
  GraphPlan p;
  std::vector<std::uint32_t> frontier;
  const std::uint32_t root = p.add(4, 0);
  p.add_root(root);
  frontier.push_back(root);
  std::size_t next = 0;
  for (std::uint32_t made = 1; made < 120'000;) {
    const std::uint32_t parent = frontier[next++];
    for (Word f = 0; f < 4 && made < 120'000; ++f, ++made) {
      const std::uint32_t node = p.add(4, 0);
      p.link(parent, f, node);
      frontier.push_back(node);
    }
  }
  return p;
}

GraphPlan boulders() {
  GraphPlan p;
  const std::uint32_t root = p.add(4, 0);
  p.add_root(root);
  for (Word f = 0; f < 4; ++f) {
    p.link(root, f, p.add(0, 150'000));
  }
  return p;
}

void run(const char* name, const GraphPlan& plan) {
  Workload w = materialize(plan);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 16;
  Coprocessor coproc(cfg, *w.heap);
  const GcCycleStats s = coproc.collect();
  const double total = static_cast<double>(s.total_cycles);

  // A 1-core reference for the speedup column.
  Workload w1 = materialize(plan);
  cfg.coprocessor.num_cores = 1;
  Coprocessor ref(cfg, *w1.heap);
  const double base = static_cast<double>(ref.collect().total_cycles);

  std::printf("%-10s %10llu cycles  speedup %5.2f  empty %6.2f%%", name,
              static_cast<unsigned long long>(s.total_cycles), base / total,
              100.0 * s.worklist_empty_fraction());
  for (const StallReason r :
       {StallReason::kScanLock, StallReason::kFreeLock,
        StallReason::kHeaderLock}) {
    std::printf("  %s %5.2f%%", std::string(to_string(r)).c_str(),
                100.0 * s.mean_stall(r) / total);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("contention lab — 16 GC cores, default memory model\n\n");
  run("hub-storm", hub_storm());
  run("confetti", confetti());
  run("boulders", boulders());
  std::printf(
      "\nreadings:\n"
      "  hub-storm : header-lock stalls dominate (the javac pathology)\n"
      "  confetti  : scan/free register serialization is the floor for\n"
      "              minimal objects — yet still only one cycle per op\n"
      "  boulders  : zero contention, zero parallelism — only sub-object\n"
      "              work distribution (Section VII) could help\n");
  return 0;
}
