// fault_lab — hardware fault-injection sweep driver.
//
// Sweeps the fault matrix (fault class × event rate × core count × seeds)
// through the differential oracle: every run injects a seeded fault plan,
// collects through the detection-and-recovery machinery and cross-checks
// the result against the sequential Cheney reference. Per run the outcome
// is classified as
//   masked        collection succeeded on the first attempt,
//   retried       recovered by abort-and-retry on the same cores,
//   deconfigured  recovered after dropping at least one suspect core,
//   fallback      recovered by the sequential software collector,
//   FAILED        oracle rejected the run — silent corruption or an
//                 unrecoverable collection; the driver exits nonzero.
//
// The sweep recipe from EXPERIMENTS.md:
//   fault_lab                         # default matrix, ~1 minute
//   fault_lab --classes mem-corrupt --cores 8 --events 4 --seeds 10 -v
//   fault_lab --graph-seed 3 --max-nodes 64   # smaller, faster graphs
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fuzz/oracle.hpp"
#include "telemetry/trace_export.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: fault_lab [options]\n"
      "  --classes a,b,..  fault classes to sweep (default: all); names:\n"
      "                    mem-drop mem-dup mem-delay mem-corrupt lock-delay\n"
      "                    stuck-busy core-stall core-failstop\n"
      "  --cores a,b,..    core counts to sweep (default 2,4,8)\n"
      "  --events a,b,..   events per run, the fault rate axis (default 1,4)\n"
      "  --seeds N         seeds per matrix cell (default 3)\n"
      "  --base-seed N     first fault/schedule seed (default 1)\n"
      "  --graph-seed N    first object-graph seed (default 42; +1 per seed)\n"
      "  --max-nodes N     object-graph size cap (default 96)\n"
      "  --fault-scale N   trigger-point scale (default 48; small keeps the\n"
      "                    trigger points inside these short collections)\n"
      "  --trace-json P    re-run the most interesting case (first one that\n"
      "                    needed recovery, else first that fired a fault)\n"
      "                    with telemetry attached and export its timeline —\n"
      "                    every attempt, injected fault, abort and recovery\n"
      "                    action — as Chrome-trace JSON to P\n"
      "  -v, --verbose     print every run, not just the matrix\n";
}

struct Options {
  std::vector<hwgc::FaultKind> classes;
  std::vector<std::uint32_t> cores{2, 4, 8};
  std::vector<std::uint32_t> events{1, 4};
  std::uint32_t seeds = 3;
  std::uint64_t base_seed = 1;
  std::uint64_t graph_seed = 42;
  std::uint32_t max_nodes = 96;
  std::uint32_t fault_scale = 48;
  std::string trace_json;
  bool verbose = false;
};

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool parse_args(int argc, char** argv, Options& opt) {
  const auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--classes") {
      for (const auto& name : split_list(next(i))) {
        hwgc::FaultKind k;
        if (!hwgc::parse_fault_kind(name, k)) {
          std::cerr << "unknown fault class " << name << "\n";
          return false;
        }
        opt.classes.push_back(k);
      }
    } else if (a == "--cores") {
      opt.cores.clear();
      for (const auto& c : split_list(next(i))) {
        opt.cores.push_back(
            static_cast<std::uint32_t>(std::strtoul(c.c_str(), nullptr, 0)));
      }
    } else if (a == "--events") {
      opt.events.clear();
      for (const auto& c : split_list(next(i))) {
        opt.events.push_back(
            static_cast<std::uint32_t>(std::strtoul(c.c_str(), nullptr, 0)));
      }
    } else if (a == "--seeds") {
      opt.seeds = static_cast<std::uint32_t>(std::strtoul(next(i), nullptr, 0));
    } else if (a == "--base-seed") {
      opt.base_seed = std::strtoull(next(i), nullptr, 0);
    } else if (a == "--graph-seed") {
      opt.graph_seed = std::strtoull(next(i), nullptr, 0);
    } else if (a == "--max-nodes") {
      opt.max_nodes =
          static_cast<std::uint32_t>(std::strtoul(next(i), nullptr, 0));
    } else if (a == "--fault-scale") {
      opt.fault_scale =
          static_cast<std::uint32_t>(std::strtoul(next(i), nullptr, 0));
    } else if (a == "--trace-json") {
      opt.trace_json = next(i);
    } else if (a == "-v" || a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "unknown option " << a << "\n";
      return false;
    }
  }
  if (opt.classes.empty()) {
    for (std::size_t k = 0; k < hwgc::kFaultKindCount; ++k) {
      opt.classes.push_back(static_cast<hwgc::FaultKind>(k));
    }
  }
  return true;
}

struct Tally {
  std::uint64_t runs = 0;
  std::uint64_t masked = 0;
  std::uint64_t retried = 0;
  std::uint64_t deconfigured = 0;
  std::uint64_t fallback = 0;
  std::uint64_t failed = 0;
  std::uint64_t injected = 0;
  std::uint64_t fired = 0;
};

const char* classify(const hwgc::FuzzVerdict& v) {
  if (!v.ok) return "FAILED";
  if (v.recovery.used_sequential_fallback) return "fallback";
  if (!v.recovery.deconfigured.empty()) return "deconfigured";
  if (v.recovery.attempts.size() > 1) return "retried";
  return "masked";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }

  // The schedule policies rotate with the seed index so every matrix cell
  // also explores different core interleavings.
  static constexpr hwgc::SchedulePolicyKind kSchedules[] = {
      hwgc::SchedulePolicyKind::kFixedPriority,
      hwgc::SchedulePolicyKind::kRotating,
      hwgc::SchedulePolicyKind::kRandom,
      hwgc::SchedulePolicyKind::kAdversarial,
  };

  std::vector<Tally> per_class(hwgc::kFaultKindCount);
  Tally total;
  bool any_failed = false;

  // The case re-run for --trace-json: prefer the first run that actually
  // exercised recovery, then the first whose faults at least fired, then
  // the first run at all. Runs are seeded, so the re-run is exact.
  hwgc::FuzzCase interesting{};
  std::string interesting_outcome;
  int interesting_rank = -1;

  for (const hwgc::FaultKind kind : opt.classes) {
    Tally& t = per_class[static_cast<std::size_t>(kind)];
    for (const std::uint32_t cores : opt.cores) {
      for (const std::uint32_t events : opt.events) {
        for (std::uint32_t s = 0; s < opt.seeds; ++s) {
          hwgc::FuzzCase fc;
          fc.graph_seed = opt.graph_seed + s;
          fc.graph.max_nodes = opt.max_nodes;
          // A floor of half the cap keeps the collection long enough that
          // trigger points drawn from [0, fault_scale) actually land in it.
          fc.graph.min_nodes = std::max(opt.max_nodes / 2, 1u);
          fc.num_cores = cores;
          fc.schedule = kSchedules[s % 4];
          fc.schedule_seed = opt.base_seed + s;
          fc.fault.seed = opt.base_seed + s;
          fc.fault.events = events;
          fc.fault.trigger_scale = opt.fault_scale;
          fc.fault.class_mask = 1u << static_cast<std::uint32_t>(kind);
          const hwgc::FuzzVerdict v = hwgc::run_fuzz_case(fc);

          ++t.runs;
          t.injected += v.recovery.faults_injected;
          t.fired += v.recovery.faults_fired;
          const std::string outcome = classify(v);
          const int rank = outcome != "masked"          ? 2
                           : v.recovery.faults_fired > 0 ? 1
                                                         : 0;
          if (rank > interesting_rank) {
            interesting = fc;
            interesting_outcome = outcome;
            interesting_rank = rank;
          }
          if (outcome == "FAILED") {
            ++t.failed;
            any_failed = true;
            std::cout << "FAILED: " << to_string(kind) << " cores=" << cores
                      << " events=" << events << " seed=" << fc.fault.seed
                      << "\n"
                      << v.summary() << "\nrepro: fuzz_gc " << fc.summary()
                      << "\n";
          } else if (outcome == "fallback") {
            ++t.fallback;
          } else if (outcome == "deconfigured") {
            ++t.deconfigured;
          } else if (outcome == "retried") {
            ++t.retried;
          } else {
            ++t.masked;
          }
          if (opt.verbose) {
            std::cout << to_string(kind) << " cores=" << cores
                      << " events=" << events << " seed=" << fc.fault.seed
                      << ": " << outcome << " (" << v.recovery.attempts.size()
                      << " attempt(s), " << v.recovery.faults_fired
                      << " fired)\n";
          }
        }
      }
    }
  }

  std::cout << "\nfault class      runs  masked retried deconf fallbk FAILED"
               "  injected fired\n";
  for (std::size_t k = 0; k < hwgc::kFaultKindCount; ++k) {
    const Tally& t = per_class[k];
    if (t.runs == 0) continue;
    std::cout << std::left << std::setw(16)
              << to_string(static_cast<hwgc::FaultKind>(k)) << std::right
              << std::setw(6) << t.runs << std::setw(8) << t.masked
              << std::setw(8) << t.retried << std::setw(7) << t.deconfigured
              << std::setw(7) << t.fallback << std::setw(7) << t.failed
              << std::setw(10) << t.injected << std::setw(6) << t.fired
              << "\n";
    total.runs += t.runs;
    total.masked += t.masked;
    total.retried += t.retried;
    total.deconfigured += t.deconfigured;
    total.fallback += t.fallback;
    total.failed += t.failed;
    total.injected += t.injected;
    total.fired += t.fired;
  }
  std::cout << std::left << std::setw(16) << "TOTAL" << std::right
            << std::setw(6) << total.runs << std::setw(8) << total.masked
            << std::setw(8) << total.retried << std::setw(7)
            << total.deconfigured << std::setw(7) << total.fallback
            << std::setw(7) << total.failed << std::setw(10) << total.injected
            << std::setw(6) << total.fired << "\n";

  if (!opt.trace_json.empty() && interesting_rank >= 0) {
    hwgc::TelemetryBus bus;
    const hwgc::FuzzVerdict v = hwgc::run_fuzz_case(interesting, &bus);
    if (!hwgc::write_chrome_trace(bus, opt.trace_json)) {
      std::cerr << "error: failed to write " << opt.trace_json << "\n";
      return 1;
    }
    std::cout << "\nre-ran '" << interesting_outcome << "' case ("
              << interesting.summary() << ") with telemetry: "
              << v.recovery.attempts.size() << " attempt(s), "
              << v.recovery.faults_fired << " fault(s) fired\n"
              << "wrote recovery timeline (" << bus.spans().size()
              << " spans, " << bus.instants().size() << " instants) to "
              << opt.trace_json << "\n";
  }

  if (any_failed) {
    std::cout << "fault_lab: FAILURES detected — silent corruption or "
                 "unrecoverable collection\n";
    return 1;
  }
  std::cout << "fault_lab: all " << total.runs
            << " fault-injected run(s) recovered or masked; no silent "
               "corruption\n";
  return 0;
}
