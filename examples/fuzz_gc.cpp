// fuzz_gc — schedule-exploration fuzzing driver.
//
// Runs fuzzed (graph × schedule × core-count) configurations through the
// differential oracle (src/fuzz/oracle.hpp): every case is collected by
// the coprocessor simulator under a pluggable step-order policy and by the
// sequential Cheney reference, and the two results are cross-checked.
//
// Modes:
//   fuzz_gc --seed 7 --count 100        # 100 cases derived from seeds 7..106
//   fuzz_gc --seed 7 --count 1 -v       # one case, full stats digest
//   fuzz_gc --graph-seed 9 --schedule adversarial --cores 3 ...
//                                       # replay an explicit (minimized) case
//
// Every run is deterministic: the same flags reproduce the same collection
// bit-for-bit. On failure the driver minimizes the reproducer (greedy
// shrinking while the oracle still fails), prints the failing schedule
// tail and exits nonzero.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/schedule_policy.hpp"
#include "fuzz/oracle.hpp"
#include "trace/corpus.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: fuzz_gc [options]\n"
      "  --seed N           master seed; the whole case derives from it\n"
      "  --count N          number of cases to run (seeds N..N+count-1, default 25)\n"
      "  --no-minimize      skip reproducer minimization on failure\n"
      "  --emit-trace FILE  write the (minimized) reproducer of the first\n"
      "                     failing case as an hwgc-trace-v1 file; with no\n"
      "                     failure, the last case's trace is written so the\n"
      "                     flag always yields a replayable artifact\n"
      "  -v, --verbose      print a stats digest for passing cases too\n"
      "explicit-case flags (replay a minimized reproducer; disable derivation):\n"
      "  --graph-seed N --schedule fixed|rotating|random|adversarial\n"
      "  --schedule-seed N --cores N --fifo N --jitter N --subobject --earlyread\n"
      "  --min-nodes N --max-nodes N --max-pi N --max-delta N --edge-prob X\n"
      "  --garbage X --huge-frac X --huge-delta N --hubs N --mutation X\n"
      "  --max-roots N\n"
      "fault-injection flags (route the case through recovery; see fault_lab\n"
      "for whole sweeps):\n"
      "  --fault-events N    inject N seeded fault events (0 = off)\n"
      "  --fault-seed N      fault plan seed\n"
      "  --fault-mask M      bitmask of fault classes (bit i = class i)\n"
      "  --fault-persistent X  fraction of events that are hard faults\n"
      "  --fault-scale N     trigger-point scale (cycles / transaction counts)\n";
}

struct Options {
  std::uint64_t seed = 1;
  std::uint32_t count = 25;
  bool minimize = true;
  bool verbose = false;
  bool explicit_case = false;
  std::string emit_trace;
  hwgc::FuzzCase fc;
};

bool parse_args(int argc, char** argv, Options& opt) {
  const auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto u64 = [&] { return std::strtoull(next(i), nullptr, 0); };
    const auto f64 = [&] { return std::strtod(next(i), nullptr); };
    if (a == "--seed") {
      opt.seed = u64();
    } else if (a == "--count") {
      opt.count = static_cast<std::uint32_t>(u64());
    } else if (a == "--no-minimize") {
      opt.minimize = false;
    } else if (a == "--emit-trace") {
      opt.emit_trace = next(i);
    } else if (a == "-v" || a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--graph-seed") {
      opt.fc.graph_seed = u64();
      opt.explicit_case = true;
    } else if (a == "--schedule") {
      if (!hwgc::parse_schedule_policy(next(i), opt.fc.schedule)) {
        std::cerr << "unknown schedule policy\n";
        return false;
      }
      opt.explicit_case = true;
    } else if (a == "--schedule-seed") {
      opt.fc.schedule_seed = u64();
      opt.explicit_case = true;
    } else if (a == "--cores") {
      opt.fc.num_cores = static_cast<std::uint32_t>(u64());
      opt.explicit_case = true;
    } else if (a == "--fifo") {
      opt.fc.header_fifo_capacity = static_cast<std::uint32_t>(u64());
      opt.explicit_case = true;
    } else if (a == "--jitter") {
      opt.fc.latency_jitter = u64();
      opt.explicit_case = true;
    } else if (a == "--subobject") {
      opt.fc.subobject_copy = true;
      opt.explicit_case = true;
    } else if (a == "--earlyread") {
      opt.fc.markbit_early_read = true;
      opt.explicit_case = true;
    } else if (a == "--min-nodes") {
      opt.fc.graph.min_nodes = static_cast<std::uint32_t>(u64());
      opt.explicit_case = true;
    } else if (a == "--max-nodes") {
      opt.fc.graph.max_nodes = static_cast<std::uint32_t>(u64());
      opt.explicit_case = true;
    } else if (a == "--max-pi") {
      opt.fc.graph.max_pi = static_cast<hwgc::Word>(u64());
      opt.explicit_case = true;
    } else if (a == "--max-delta") {
      opt.fc.graph.max_delta = static_cast<hwgc::Word>(u64());
      opt.explicit_case = true;
    } else if (a == "--edge-prob") {
      opt.fc.graph.edge_probability = f64();
      opt.explicit_case = true;
    } else if (a == "--garbage") {
      opt.fc.graph.garbage_fraction = f64();
      opt.explicit_case = true;
    } else if (a == "--huge-frac") {
      opt.fc.graph.huge_fraction = f64();
      opt.explicit_case = true;
    } else if (a == "--huge-delta") {
      opt.fc.graph.huge_delta = static_cast<hwgc::Word>(u64());
      opt.explicit_case = true;
    } else if (a == "--hubs") {
      opt.fc.graph.hubs = static_cast<std::uint32_t>(u64());
      opt.explicit_case = true;
    } else if (a == "--mutation") {
      opt.fc.graph.mutation_fraction = f64();
      opt.explicit_case = true;
    } else if (a == "--max-roots") {
      opt.fc.graph.max_roots = static_cast<std::uint32_t>(u64());
      opt.explicit_case = true;
    } else if (a == "--fault-events") {
      opt.fc.fault.events = static_cast<std::uint32_t>(u64());
      opt.explicit_case = true;
    } else if (a == "--fault-seed") {
      opt.fc.fault.seed = u64();
      opt.explicit_case = true;
    } else if (a == "--fault-mask") {
      opt.fc.fault.class_mask = static_cast<std::uint32_t>(u64());
      opt.explicit_case = true;
    } else if (a == "--fault-persistent") {
      opt.fc.fault.persistent_fraction = f64();
      opt.explicit_case = true;
    } else if (a == "--fault-scale") {
      opt.fc.fault.trigger_scale = static_cast<std::uint32_t>(u64());
      opt.explicit_case = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "unknown option " << a << "\n";
      return false;
    }
  }
  return true;
}

/// Runs one case; on failure prints the verdict, minimizes and prints the
/// replay flags. Returns true when the oracle passed; `repro` (when
/// non-null) receives the minimized reproducer on failure.
bool run_one(const hwgc::FuzzCase& fc, const std::string& label,
             const Options& opt, hwgc::FuzzCase* repro = nullptr) {
  const hwgc::FuzzVerdict v = hwgc::run_fuzz_case(fc);
  if (v.ok) {
    if (opt.verbose) {
      std::cout << label << " ok: live=" << v.live_objects
                << " cycles=" << v.coproc.total_cycles
                << " words=" << v.coproc.words_copied
                << " mem=" << v.coproc.mem_requests
                << " fifo_miss=" << v.coproc.fifo_misses << "  [" << fc.summary()
                << "]\n";
      if (v.fault_run) {
        std::cout << "  recovery: " << v.recovery.summary() << "\n";
      }
    }
    return true;
  }
  std::cout << label << " FAILED\n" << v.summary() << "\n";
  std::cout << "repro: fuzz_gc " << fc.summary() << "\n";
  if (repro != nullptr) *repro = fc;
  if (opt.minimize) {
    const hwgc::FuzzCase small = hwgc::minimize_case(fc);
    std::cout << "minimized: fuzz_gc " << small.summary() << "\n";
    const hwgc::FuzzVerdict mv = hwgc::run_fuzz_case(small);
    if (!mv.ok) std::cout << mv.summary() << "\n";
    if (repro != nullptr) *repro = small;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }

  std::uint32_t failures = 0;
  // The case whose trace --emit-trace writes: the (minimized) reproducer of
  // the first failure, or the last case run when everything passed.
  hwgc::FuzzCase emit_fc;
  bool emit_is_failure = false;
  if (opt.explicit_case) {
    emit_fc = opt.fc;
    if (!run_one(opt.fc, "case[explicit]", opt, &emit_fc)) {
      ++failures;
      emit_is_failure = true;
    }
  } else {
    for (std::uint32_t k = 0; k < opt.count; ++k) {
      const std::uint64_t master = opt.seed + k;
      const hwgc::FuzzCase fc = hwgc::case_from_seed(master);
      hwgc::FuzzCase repro;
      if (!run_one(fc, "case[seed=" + std::to_string(master) + "]", opt,
                   &repro)) {
        ++failures;
        if (!emit_is_failure) {
          emit_fc = repro;
          emit_is_failure = true;
        }
      } else if (!emit_is_failure) {
        emit_fc = fc;
      }
    }
  }
  if (!opt.emit_trace.empty()) {
    // fc.fault is not carried into the trace (replay runs a pluggable
    // collector, not the recovery ladder); everything else — graph,
    // schedule, cores, FIFO, jitter, feature knobs — is.
    const hwgc::Trace trace = hwgc::trace_from_fuzz_case(emit_fc);
    hwgc::save_trace(opt.emit_trace, trace);
    std::cout << "emitted " << (emit_is_failure ? "reproducer" : "last-case")
              << " trace: " << opt.emit_trace << " (" << trace.ops.size()
              << " events, digest 0x" << std::hex << trace.digest()
              << std::dec << ")\n";
  }
  if (failures == 0) {
    std::cout << "fuzz_gc: all "
              << (opt.explicit_case ? 1u : opt.count)
              << " case(s) passed the differential oracle\n";
    return 0;
  }
  std::cout << "fuzz_gc: " << failures << " case(s) FAILED\n";
  return 1;
}
