// gc_top — live terminal dashboard over the managed runtime.
//
// Churns a ShadowMutator against a small semispace so collection cycles
// happen continuously, and redraws a per-core activity panel after every
// cycle: busy/stall/idle bars, the dominant stall reason, worklist
// occupancy, header-FIFO effectiveness and (with --faults) the recovery
// ladder counters. This is the interactive face of the paper's Section
// VI-A monitoring framework: the same hardware performance counters, read
// once per collection instead of post-mortem.
//
// Usage:
//   gc_top [options]
//     --cores=N         GC cores (default 4)
//     --heap-words=N    semispace size in words (default 8192)
//     --collections=N   stop after N collection cycles (default 8)
//     --every=N         mutator steps between forced collections (default 300)
//     --interval-ms=N   frame delay (default 150; use 0 for CI/scripts)
//     --seed=N          mutator seed (default 1)
//     --faults=N        inject N seeded fault events per cycle and route
//                       collections through the recovery machinery
//     --no-clear        append frames instead of redrawing (logs, CI)
//     --profile         cycle attribution drill-down (src/profile/): the
//                       panel grows a critical-path line plus a per-class
//                       share bar chart, and --json gains the
//                       hwgc-profile-v1 attribution record
//     --json=PATH       write the session's aggregated metrics (min/mean/
//                       p50/p99 across all cycles) as hwgc-bench-v1 JSONL
//     --trace-json=PATH export the whole session timeline — one telemetry
//                       epoch per collection — as Chrome-trace JSON
//
// Service mode (--shards=N): instead of one runtime, drives a HeapService
// fleet panel — one row per shard with occupancy, backlog, collections,
// request latency percentiles and the stall share — serving --every
// requests per frame for --collections frames under --scheduler. --json
// then writes the hwgc-service-v1 section.
//     --shards=N        fleet size; 0 (default) keeps the classic panel
//     --scheduler=NAME  reactive | proactive | roundrobin | pauseless
//                       (default proactive)
//     --storm=PCT       fault-storm PCT% of the fleet (stormed shards are
//                       marked *storm in the panel)
//     --supervise       health supervision + checkpoint/restore; the panel
//                       grows a health column and a transition ticker
// With --profile in service mode the shard table grows a binding-resource
// column and a per-shard drill-down panel (top stall classes by share,
// slowest request so far); --json appends the hwgc-profile-v1 section.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "profile/critical_path.hpp"
#include "profile/profile_metrics.hpp"
#include "profile/request_trace.hpp"
#include "runtime/runtime.hpp"
#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_export.hpp"
#include "workloads/mutator.hpp"

using namespace hwgc;

namespace {

struct CliOptions {
  std::uint32_t cores = 4;
  Word heap_words = 8192;
  std::uint32_t collections = 8;
  std::uint32_t every = 300;
  std::uint32_t interval_ms = 150;
  std::uint64_t seed = 1;
  std::uint32_t faults = 0;
  std::uint32_t shards = 0;
  std::uint32_t storm_pct = 0;   ///< --storm=PCT: % of shards fault-stormed
  bool supervise = false;        ///< --supervise: health + checkpoint/restore
  GcSchedulerKind scheduler = GcSchedulerKind::kProactive;
  bool no_clear = false;
  bool profile = false;          ///< --profile: attribution drill-down panel
  std::string json_path;
  std::string trace_json;
};

bool parse_u32(const std::string& arg, const char* key, std::uint32_t& out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = static_cast<std::uint32_t>(
      std::strtoul(arg.c_str() + prefix.size(), nullptr, 10));
  return true;
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::uint32_t v = 0;
    if (parse_u32(a, "--cores", v)) {
      o.cores = v;
    } else if (parse_u32(a, "--heap-words", v)) {
      o.heap_words = v;
    } else if (parse_u32(a, "--collections", v)) {
      o.collections = v;
    } else if (parse_u32(a, "--every", v)) {
      o.every = v;
    } else if (parse_u32(a, "--interval-ms", v)) {
      o.interval_ms = v;
    } else if (parse_u32(a, "--faults", v)) {
      o.faults = v;
    } else if (parse_u32(a, "--shards", v)) {
      o.shards = v;
    } else if (parse_u32(a, "--storm", v)) {
      o.storm_pct = v;
    } else if (a == "--supervise") {
      o.supervise = true;
    } else if (a.rfind("--scheduler=", 0) == 0) {
      const auto k = parse_scheduler(a.substr(12));
      if (!k.has_value()) {
        std::fprintf(stderr, "unknown scheduler: %s\n", a.c_str() + 12);
        std::exit(2);
      }
      o.scheduler = *k;
    } else if (a.rfind("--seed=", 0) == 0) {
      o.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
    } else if (a == "--no-clear") {
      o.no_clear = true;
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a.rfind("--json=", 0) == 0) {
      o.json_path = a.substr(7);
    } else if (a.rfind("--trace-json=", 0) == 0) {
      o.trace_json = a.substr(13);
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "gc_top — live GC dashboard (see examples/gc_top.cpp for details)\n"
          "  panel:   --cores=N --heap-words=N --collections=N --every=N\n"
          "           --interval-ms=N --seed=N --faults=N --no-clear\n"
          "  fleet:   --shards=N --scheduler=NAME --storm=PCT --supervise\n"
          "  profile: --profile  adds the stall-attribution drill-down —\n"
          "           a binding-resource column per shard, per-class share\n"
          "           bars and the slowest request captured so far\n"
          "  output:  --json=PATH --trace-json=PATH\n"
          "keys: the dashboard is frame-driven, not keyboard-driven; the\n"
          "only binding is Ctrl-C (quit). Use --no-clear to keep history\n"
          "scrolling instead of redrawing in place.\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      std::exit(2);
    }
  }
  return o;
}

/// Renders busy/stall/idle as a fixed-width ASCII bar: '#' busy, '=' stall,
/// '.' idle.
std::string activity_bar(const CoreCounters& c, int width) {
  const double busy = static_cast<double>(c.busy_cycles);
  const double stall = static_cast<double>(c.total_stalls());
  const double idle = static_cast<double>(c.idle_cycles);
  const double total = busy + stall + idle;
  std::string bar;
  if (total <= 0.0) {
    bar.assign(static_cast<std::size_t>(width), '.');
    return bar;
  }
  const int nb = static_cast<int>(busy / total * width + 0.5);
  int ns = static_cast<int>(stall / total * width + 0.5);
  if (nb + ns > width) ns = width - nb;
  bar.append(static_cast<std::size_t>(nb), '#');
  bar.append(static_cast<std::size_t>(ns), '=');
  bar.append(static_cast<std::size_t>(width - nb - ns), '.');
  return bar;
}

StallReason dominant_stall(const CoreCounters& c) {
  StallReason best = StallReason::kNone;
  Cycle most = 0;
  for (std::size_t r = 1; r < kStallReasonCount; ++r) {
    if (c.stalls[r] > most) {
      most = c.stalls[r];
      best = static_cast<StallReason>(r);
    }
  }
  return best;
}

void render(const CliOptions& o, const Runtime& rt, const ShadowMutator& mut) {
  const auto& hist = rt.gc_history();
  const GcCycleStats& s = hist.back();
  if (!o.no_clear) std::printf("\x1b[2J\x1b[H");

  Cycle sum = 0, worst = 0;
  for (const auto& h : hist) {
    sum += h.total_cycles;
    if (h.total_cycles > worst) worst = h.total_cycles;
  }
  std::printf("gc_top — %u cores, %llu-word semispace  |  collection %zu\n",
              o.cores, static_cast<unsigned long long>(o.heap_words),
              hist.size());
  std::printf("heap %llu/%llu words in use, %llu roots, %llu allocations\n",
              static_cast<unsigned long long>(rt.words_in_use()),
              static_cast<unsigned long long>(o.heap_words),
              static_cast<unsigned long long>(rt.live_roots()),
              static_cast<unsigned long long>(mut.allocations()));
  std::printf("last cycle: %llu clk (%llu obj, %llu words copied), "
              "worklist empty %.1f%%\n",
              static_cast<unsigned long long>(s.total_cycles),
              static_cast<unsigned long long>(s.objects_copied),
              static_cast<unsigned long long>(s.words_copied),
              100.0 * s.worklist_empty_fraction());
  std::printf("fifo: %llu hits / %llu misses / %llu overflows  |  "
              "mem requests: %llu\n",
              static_cast<unsigned long long>(s.fifo_hits),
              static_cast<unsigned long long>(s.fifo_misses),
              static_cast<unsigned long long>(s.fifo_overflows),
              static_cast<unsigned long long>(s.mem_requests));
  if (s.snapshot_stores + s.reconciliation_repairs + s.safe_point_waits > 0) {
    // Pauseless snapshot collector only — the barrier/reconciliation line.
    std::printf("barrier: %llu snapshot stores, %llu repairs, "
                "%llu safe-point waits\n",
                static_cast<unsigned long long>(s.snapshot_stores),
                static_cast<unsigned long long>(s.reconciliation_repairs),
                static_cast<unsigned long long>(s.safe_point_waits));
  }
  std::printf("session: mean %.0f clk/cycle, worst %llu\n\n",
              static_cast<double>(sum) / static_cast<double>(hist.size()),
              static_cast<unsigned long long>(worst));

  std::printf("      %-44s %5s %5s %5s  top stall\n", "# busy  = stall  . idle",
              "busy%", "stl%", "idle%");
  for (std::size_t i = 0; i < s.per_core.size(); ++i) {
    const CoreCounters& c = s.per_core[i];
    const double total = static_cast<double>(c.busy_cycles) +
                         static_cast<double>(c.total_stalls()) +
                         static_cast<double>(c.idle_cycles);
    const double denom = total > 0.0 ? total : 1.0;
    const StallReason top = dominant_stall(c);
    std::printf("c%-3zu [%s] %4.0f%% %4.0f%% %4.0f%%  %s\n", i,
                activity_bar(c, 44).c_str(),
                100.0 * static_cast<double>(c.busy_cycles) / denom,
                100.0 * static_cast<double>(c.total_stalls()) / denom,
                100.0 * static_cast<double>(c.idle_cycles) / denom,
                top == StallReason::kNone ? "-"
                                          : std::string(to_string(top)).c_str());
  }

  if (rt.profiling_enabled() && !rt.profile_history().empty()) {
    const CycleProfile& p = rt.profile_history().back();
    std::printf("\nprofile: %s\n", critical_path(p).summary().c_str());
    ProfileAttribution a;
    a.source = "gc_top";
    a.add(p);
    for (std::size_t k = 0; k < kStallClassCount; ++k) {
      const StallClass cls = static_cast<StallClass>(k);
      const double share = a.share(cls);
      if (share <= 0.0) continue;
      const std::size_t w = static_cast<std::size_t>(share * 30 + 0.5);
      std::string bar(w, '#');
      bar.append(30 - std::min<std::size_t>(w, 30), '.');
      std::printf("  %-19s %5.1f%% [%s]\n",
                  std::string(to_string(cls)).c_str(), 100.0 * share,
                  bar.c_str());
    }
  }

  const auto& rec = rt.recovery_history();
  if (!rec.empty()) {
    std::uint64_t fired = 0, attempts = 0, fallbacks = 0, deconf = 0;
    for (const auto& r : rec) {
      fired += r.faults_fired;
      attempts += r.attempts.size();
      fallbacks += r.used_sequential_fallback ? 1 : 0;
      deconf += r.deconfigured.size();
    }
    std::printf("\nrecovery: %llu fault(s) fired, %llu attempt(s), "
                "%llu core(s) deconfigured, %llu sequential fallback(s)\n",
                static_cast<unsigned long long>(fired),
                static_cast<unsigned long long>(attempts),
                static_cast<unsigned long long>(deconf),
                static_cast<unsigned long long>(fallbacks));
  }
  std::fflush(stdout);
}

/// Occupancy as a fixed-width bar: '#' used, '.' free.
std::string occupancy_bar(double occ, int width) {
  if (occ < 0.0) occ = 0.0;
  if (occ > 1.0) occ = 1.0;
  const int used = static_cast<int>(occ * width + 0.5);
  std::string bar(static_cast<std::size_t>(used), '#');
  bar.append(static_cast<std::size_t>(width - used), '.');
  return bar;
}

void render_fleet(const CliOptions& o, const HeapService& service,
                  std::uint32_t frame) {
  if (!o.no_clear) std::printf("\x1b[2J\x1b[H");
  const SloStats fleet = service.fleet_stats();
  std::printf("gc_top — %u shards × %u cores, %s scheduler  |  frame %u\n",
              o.shards, o.cores, to_string(o.scheduler), frame);
  std::printf("fleet: %llu served, %llu shed, %llu collections "
              "(%llu scheduled), clock %llu\n\n",
              static_cast<unsigned long long>(fleet.completed),
              static_cast<unsigned long long>(fleet.rejected),
              static_cast<unsigned long long>(fleet.collections),
              static_cast<unsigned long long>(fleet.scheduled_collections),
              static_cast<unsigned long long>(service.now()));
  const bool prof = service.profiling();
  std::printf("      %-20s %5s %6s %5s %8s %8s %6s %-7s %-11s%s\n",
              "occupancy", "occ%", "roots", "gc", "p50", "p99", "stl%",
              "oracle", "health", prof ? " binding" : "");
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    const ShardObservation ob = service.observe(i);
    const SloStats& s = service.shard_stats(i);
    const double stall_share =
        s.latency.sum() > 0
            ? 100.0 * static_cast<double>(s.stall_cycles) /
                  static_cast<double>(s.latency.sum())
            : 0.0;
    std::printf(
        "s%-4zu [%s] %4.0f%% %6llu %5llu %8llu %8llu %5.1f%% %-7s %-11s%s%s\n",
        i, occupancy_bar(ob.occupancy, 20).c_str(), 100.0 * ob.occupancy,
        static_cast<unsigned long long>(ob.live_roots),
        static_cast<unsigned long long>(s.collections),
        static_cast<unsigned long long>(s.latency.percentile(0.50)),
        static_cast<unsigned long long>(s.latency.percentile(0.99)),
        stall_share, s.oracle_failures == 0 ? "ok" : "FAIL",
        to_string(service.shard_health(i)),
        prof ? (" " +
                std::string(to_string(service.shard_attribution(i).binding())))
                   .c_str()
             : "",
        service.storm().enabled() && service.storm().stormed(i) ? " *storm"
                                                                : "");
  }
  if (prof) {
    std::printf("\nprofile drill-down (cumulative per shard):\n");
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      const ProfileAttribution a = service.shard_attribution(i);
      std::printf("  s%-3zu", i);
      std::vector<std::pair<double, StallClass>> shares;
      for (std::size_t k = 0; k < kStallClassCount; ++k) {
        const StallClass cls = static_cast<StallClass>(k);
        if (a.share(cls) > 0.0) shares.emplace_back(a.share(cls), cls);
      }
      std::sort(shares.begin(), shares.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      if (shares.empty()) std::printf(" (no profiled collections yet)");
      for (std::size_t k = 0; k < std::min<std::size_t>(shares.size(), 3);
           ++k) {
        std::printf(" %s %4.1f%%",
                    std::string(to_string(shares[k].second)).c_str(),
                    100.0 * shares[k].first);
      }
      std::printf(" | %llu gc, %llu unprofiled\n",
                  static_cast<unsigned long long>(a.collections),
                  static_cast<unsigned long long>(a.unprofiled));
    }
    const std::vector<RequestExemplar> slow = service.slowest_requests();
    if (!slow.empty()) {
      const RequestExemplar& e = slow.front();
      std::printf("  slowest request #%llu on s%zu: %llu clk "
                  "(gc-inherited %llu, gc-own %llu)\n",
                  static_cast<unsigned long long>(e.request_id), e.shard,
                  static_cast<unsigned long long>(e.latency()),
                  static_cast<unsigned long long>(e.inherited_stall),
                  static_cast<unsigned long long>(e.own_gc));
    }
  }
  if (service.resilient()) {
    const std::size_t shown =
        std::min<std::size_t>(service.health_events().size(), 4);
    const auto& ev = service.health_events();
    for (std::size_t k = ev.size() - shown; k < ev.size(); ++k) {
      std::printf("  [%llu] s%zu %s -> %s (%s)\n",
                  static_cast<unsigned long long>(ev[k].at), ev[k].shard,
                  to_string(ev[k].from), to_string(ev[k].to),
                  ev[k].reason.c_str());
    }
  }
  std::fflush(stdout);
}

/// --shards=N: fleet panel over a HeapService instead of one runtime.
int run_service_mode(const CliOptions& o) {
  ServiceConfig cfg;
  cfg.shards = o.shards;
  cfg.semispace_words = o.heap_words;
  cfg.sim.coprocessor.num_cores = o.cores;
  cfg.traffic.seed = o.seed;
  cfg.scheduler = o.scheduler;
  if (o.faults > 0) {
    cfg.fault_shard = 0;
    cfg.fault_events = o.faults;
    cfg.fault_seed = o.seed;
  }
  if (o.storm_pct > 0) {
    cfg.storm.shard_fraction = o.storm_pct / 100.0;
    cfg.storm.seed = o.seed;
  }
  cfg.resilience.supervise = o.supervise;
  cfg.profile.enabled = o.profile;
  HeapService service(cfg);

  TelemetryBus bus;
  if (!o.trace_json.empty()) service.set_telemetry(&bus);

  for (std::uint32_t frame = 1; frame <= o.collections; ++frame) {
    service.serve(o.every);
    render_fleet(o, service, frame);
    if (o.interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(o.interval_ms));
    }
  }

  const SloStats fleet = service.fleet_stats();
  const std::size_t mismatches = service.validate_all_shards();
  std::printf("\ncross-shard validation after %llu collection(s): "
              "%zu mismatches, %llu oracle failure(s)\n",
              static_cast<unsigned long long>(fleet.collections), mismatches,
              static_cast<unsigned long long>(fleet.oracle_failures));

  if (!o.trace_json.empty()) {
    if (!write_chrome_trace(bus, o.trace_json)) {
      std::fprintf(stderr, "error: failed to write %s\n", o.trace_json.c_str());
      return 1;
    }
    std::printf("wrote fleet timeline (%zu epochs, %zu spans) to %s\n",
                bus.epochs().size(), bus.spans().size(), o.trace_json.c_str());
  }
  if (!o.json_path.empty()) {
    bool wrote = write_service_jsonl(service, o.json_path, "gc_top");
    if (wrote && service.profiling()) {
      wrote = write_profile_jsonl(service, o.json_path, "gc_top",
                                  /*append=*/true);
    }
    if (!wrote) {
      std::fprintf(stderr, "error: failed to write %s\n", o.json_path.c_str());
      return 1;
    }
    std::printf("wrote %zu service record(s)%s to %s\n",
                service.shard_count() + 1,
                service.profiling() ? " + profile section" : "",
                o.json_path.c_str());
  }
  return (mismatches == 0 && fleet.oracle_failures == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);
  if (o.shards > 0) return run_service_mode(o);

  SimConfig cfg;
  cfg.coprocessor.num_cores = o.cores;
  if (o.faults > 0) {
    cfg.fault.events = o.faults;
    cfg.fault.seed = o.seed;
  }
  Runtime rt(o.heap_words, cfg);
  if (o.profile) rt.enable_profiling();

  TelemetryBus bus;
  if (!o.trace_json.empty()) rt.set_telemetry(&bus);

  ShadowMutator::Config mcfg;
  mcfg.seed = o.seed;
  ShadowMutator mut(mcfg);

  for (std::uint32_t n = 0; n < o.collections; ++n) {
    mut.run(rt, o.every);
    rt.collect();
    render(o, rt, mut);
    if (o.interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(o.interval_ms));
    }
  }

  const std::size_t mismatches = mut.validate(rt);
  std::printf("\nshadow validation after %zu collection(s): %zu mismatches\n",
              rt.gc_history().size(), mismatches);

  if (!o.trace_json.empty()) {
    if (!write_chrome_trace(bus, o.trace_json)) {
      std::fprintf(stderr, "error: failed to write %s\n", o.trace_json.c_str());
      return 1;
    }
    std::printf("wrote session timeline (%zu epochs, %zu spans) to %s\n",
                bus.epochs().size(), bus.spans().size(), o.trace_json.c_str());
  }
  if (!o.json_path.empty()) {
    MetricsRegistry reg;
    MetricsRegistry::Key key;
    key.benchmark = "gc_top";
    key.cores = o.cores;
    key.scale = 0.0;
    key.seed = o.seed;
    for (const auto& s : rt.gc_history()) reg.record(key, cfg, s);
    if (!reg.write_jsonl(o.json_path, "gc_top")) {
      std::fprintf(stderr, "error: failed to write %s\n", o.json_path.c_str());
      return 1;
    }
    if (o.profile) {
      ProfileAttribution a;
      a.source = "gc_top";
      for (const auto& p : rt.profile_history()) a.add(p);
      const std::string line = profile_attribution_jsonl(a, "gc_top");
      std::ofstream f(o.json_path, std::ios::binary | std::ios::app);
      f.write(line.data(), static_cast<std::streamsize>(line.size()));
      f.flush();
      if (!f.good()) {
        std::fprintf(stderr, "error: failed to write %s\n",
                     o.json_path.c_str());
        return 1;
      }
    }
    std::printf("wrote %zu aggregated metric record(s)%s to %s\n", reg.size(),
                o.profile ? " + profile attribution" : "", o.json_path.c_str());
  }
  return mismatches == 0 ? 0 : 1;
}
