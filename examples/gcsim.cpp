// gcsim — the command-line front end to the coprocessor simulator.
//
// Runs one collection cycle of any workload under any configuration and
// prints the full measurement report (all counters behind the paper's
// Tables I/II), optionally as CSV for scripting.
//
// Usage:
//   gcsim [options]
//     --workload=NAME   compress|cup|db|javac|javacc|jflex|jlisp|search
//                       or random:<seed> (default: db)
//     --scale=F         live-set scale (default 0.25)
//     --seed=N          workload seed (default 42)
//     --cores=N         GC cores, 1..16+ (default 8)
//     --latency=N       body memory latency in cycles (default 4)
//     --header-latency=N  header transaction latency (default 10)
//     --bandwidth=N     accepted requests/cycle (default 4)
//     --fifo=N          header FIFO capacity (default 32768)
//     --header-cache=N  header cache entries (default 0 = off)
//     --early-read      enable the mark-bit early-read optimization
//     --subobject       enable cache-line-granularity copying
//     --concurrent      run the mutator concurrently (read barrier)
//     --csv             one CSV row instead of the report
//     --profile         per-cycle stall attribution (src/profile/): prints
//                       the critical-path summary (binding resource, knee
//                       run) and the per-class cycle shares; with
//                       --trace-json the binding stream is merged into the
//                       timeline as "crit:" notes. Ignored by --concurrent.
//     --verify          check the heap against a pre-cycle snapshot
//     --trace-json=PATH export the cycle's full telemetry timeline
//                       (phases, per-core activity/stall spans, lock holds,
//                       FIFO/memory counters, merged signal samples) as
//                       Chrome-trace JSON — load in ui.perfetto.dev
//     --bench-json=PATH emit the run's metrics as hwgc-bench-v1 JSONL
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/concurrent_cycle.hpp"
#include "core/coprocessor.hpp"
#include "heap/verifier.hpp"
#include "profile/critical_path.hpp"
#include "profile/profile_metrics.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_export.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/random_graph.hpp"

using namespace hwgc;

namespace {

struct CliOptions {
  std::string workload = "db";
  double scale = 0.25;
  std::uint64_t seed = 42;
  SimConfig sim;
  bool concurrent = false;
  bool csv = false;
  bool profile = false;
  bool verify = false;
  std::string trace_json;  ///< empty: no timeline export
  std::string bench_json;  ///< empty: no metrics export
};

bool parse_u32(const std::string& arg, const char* key, std::uint32_t& out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = static_cast<std::uint32_t>(
      std::strtoul(arg.c_str() + prefix.size(), nullptr, 10));
  return true;
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  o.sim.coprocessor.num_cores = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::uint32_t v = 0;
    if (a.rfind("--workload=", 0) == 0) {
      o.workload = a.substr(11);
    } else if (a.rfind("--scale=", 0) == 0) {
      o.scale = std::strtod(a.c_str() + 8, nullptr);
    } else if (a.rfind("--seed=", 0) == 0) {
      o.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
    } else if (parse_u32(a, "--cores", v)) {
      o.sim.coprocessor.num_cores = v;
    } else if (parse_u32(a, "--latency", v)) {
      o.sim.memory.latency = v;
    } else if (parse_u32(a, "--header-latency", v)) {
      o.sim.memory.header_latency = v;
    } else if (parse_u32(a, "--bandwidth", v)) {
      o.sim.memory.bandwidth_per_cycle = v;
    } else if (parse_u32(a, "--fifo", v)) {
      o.sim.coprocessor.header_fifo_capacity = v;
    } else if (parse_u32(a, "--header-cache", v)) {
      o.sim.memory.header_cache_entries = v;
    } else if (a == "--early-read") {
      o.sim.coprocessor.markbit_early_read = true;
    } else if (a == "--subobject") {
      o.sim.coprocessor.subobject_copy = true;
    } else if (a == "--concurrent") {
      o.concurrent = true;
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a == "--verify") {
      o.verify = true;
    } else if (a.rfind("--trace-json=", 0) == 0) {
      o.trace_json = a.substr(13);
    } else if (a.rfind("--bench-json=", 0) == 0) {
      o.bench_json = a.substr(13);
    } else if (a == "--help" || a == "-h") {
      std::printf("see the header of examples/gcsim.cpp for options\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      std::exit(2);
    }
  }
  return o;
}

Workload build(const CliOptions& o) {
  if (o.workload.rfind("random:", 0) == 0) {
    const std::uint64_t seed =
        std::strtoull(o.workload.c_str() + 7, nullptr, 10);
    RandomGraphConfig cfg;
    cfg.nodes = static_cast<std::uint32_t>(2000 * o.scale * 4);
    return materialize(make_random_plan(seed, cfg));
  }
  for (BenchmarkId id : all_benchmarks()) {
    if (benchmark_name(id) == o.workload) {
      return make_benchmark(id, o.scale, o.seed);
    }
  }
  std::fprintf(stderr, "unknown workload: %s\n", o.workload.c_str());
  std::exit(2);
}

void print_report(const CliOptions& o, const GcCycleStats& s) {
  if (o.csv) {
    std::printf("workload,cores,cycles,objects,words,empty_frac,scan_stall,"
                "free_stall,hdrlock_stall,bodyload_stall,bodystore_stall,"
                "hdrload_stall,hdrstore_stall,fifo_hits,fifo_misses,"
                "fifo_overflows,mem_requests\n");
    std::printf("%s,%u,%llu,%llu,%llu,%.6f", o.workload.c_str(),
                o.sim.coprocessor.num_cores,
                static_cast<unsigned long long>(s.total_cycles),
                static_cast<unsigned long long>(s.objects_copied),
                static_cast<unsigned long long>(s.words_copied),
                s.worklist_empty_fraction());
    for (const StallReason r :
         {StallReason::kScanLock, StallReason::kFreeLock,
          StallReason::kHeaderLock, StallReason::kBodyLoad,
          StallReason::kBodyStore, StallReason::kHeaderLoad,
          StallReason::kHeaderStore}) {
      std::printf(",%.0f", s.mean_stall(r));
    }
    std::printf(",%llu,%llu,%llu,%llu\n",
                static_cast<unsigned long long>(s.fifo_hits),
                static_cast<unsigned long long>(s.fifo_misses),
                static_cast<unsigned long long>(s.fifo_overflows),
                static_cast<unsigned long long>(s.mem_requests));
    return;
  }
  std::printf("collection cycle: %llu clock cycles (%s, %s)\n",
              static_cast<unsigned long long>(s.total_cycles),
              o.workload.c_str(), o.sim.summary().c_str());
  std::printf("  objects copied     : %llu (%llu words)\n",
              static_cast<unsigned long long>(s.objects_copied),
              static_cast<unsigned long long>(s.words_copied));
  std::printf("  pointers forwarded : %llu\n",
              static_cast<unsigned long long>(s.pointers_forwarded));
  std::printf("  worklist empty     : %.2f%% of cycles\n",
              100.0 * s.worklist_empty_fraction());
  std::printf("  header FIFO        : %llu hits, %llu misses, %llu overflows\n",
              static_cast<unsigned long long>(s.fifo_hits),
              static_cast<unsigned long long>(s.fifo_misses),
              static_cast<unsigned long long>(s.fifo_overflows));
  std::printf("  memory requests    : %llu\n",
              static_cast<unsigned long long>(s.mem_requests));
  std::printf("  mean stalls/core (%% of cycle):\n");
  for (const StallReason r :
       {StallReason::kScanLock, StallReason::kFreeLock,
        StallReason::kHeaderLock, StallReason::kBodyLoad,
        StallReason::kBodyStore, StallReason::kHeaderLoad,
        StallReason::kHeaderStore}) {
    std::printf("    %-12s %10.0f (%5.2f%%)\n",
                std::string(to_string(r)).c_str(), s.mean_stall(r),
                100.0 * s.mean_stall(r) /
                    static_cast<double>(s.total_cycles));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);
  Workload w = build(o);
  std::printf("workload %s: %llu live objects, %llu live words, semispace "
              "%u words\n",
              o.workload.c_str(),
              static_cast<unsigned long long>(w.live_objects),
              static_cast<unsigned long long>(w.live_words),
              w.heap->layout().semispace_words());

  if (o.concurrent) {
    ConcurrentCycle::Config cfg;
    cfg.sim = o.sim;
    ConcurrentCycle cycle(cfg, *w.heap);
    const ConcurrentStats s = cycle.run();
    print_report(o, s.gc);
    std::printf("  --- concurrent mutator ---\n");
    std::printf("  ops executed       : %llu (%llu allocations)\n",
                static_cast<unsigned long long>(s.mutator_ops),
                static_cast<unsigned long long>(s.mutator_allocations));
    std::printf("  barrier activity   : %llu gray reads, %llu evacuations\n",
                static_cast<unsigned long long>(s.barrier_gray_reads),
                static_cast<unsigned long long>(s.barrier_evacuations));
    std::printf("  longest pause      : %llu cycles\n",
                static_cast<unsigned long long>(s.longest_pause));
    std::printf("  shadow validation  : %zu mismatches\n",
                s.validation_mismatches);
    return s.validation_mismatches == 0 ? 0 : 1;
  }

  const HeapSnapshot pre =
      o.verify ? HeapSnapshot::capture(*w.heap) : HeapSnapshot{};
  Coprocessor coproc(o.sim, *w.heap);
  TelemetryBus bus;
  SignalTrace signals;
  CycleProfiler profiler;
  const bool tracing = !o.trace_json.empty();
  const GcCycleStats s =
      coproc.collect(tracing ? &signals : nullptr, nullptr, nullptr,
                     tracing ? &bus : nullptr, o.profile ? &profiler : nullptr);
  print_report(o, s);
  if (o.profile) {
    const CycleProfile p = profiler.take_profile();
    std::printf("  critical path      : %s\n",
                critical_path(p).summary().c_str());
    ProfileAttribution attr;
    attr.source = o.workload;
    attr.add(p);
    std::printf("  cycle attribution (%% of core cycles):\n");
    for (std::size_t k = 0; k < kStallClassCount; ++k) {
      const StallClass cls = static_cast<StallClass>(k);
      if (attr.cls[k] == 0) continue;
      std::printf("    %-19s %12llu (%5.2f%%)\n",
                  std::string(to_string(cls)).c_str(),
                  static_cast<unsigned long long>(attr.cls[k]),
                  100.0 * attr.share(cls));
    }
    if (tracing) annotate_critical_path(signals, p);
  }
  if (o.verify) {
    const VerifyResult res = verify_collection(pre, *w.heap);
    std::printf("verifier: %s\n", res.summary().c_str());
    if (!res.ok) return 1;
  }
  if (tracing) {
    ChromeTraceOptions topt;
    topt.signals = &signals;
    if (!write_chrome_trace(bus, o.trace_json, topt)) {
      std::fprintf(stderr, "error: failed to write %s\n", o.trace_json.c_str());
      return 1;
    }
    std::printf("wrote timeline (%zu spans, %zu instants, %zu counter "
                "samples) to %s\n",
                bus.spans().size(), bus.instants().size(),
                bus.counters().size(), o.trace_json.c_str());
  }
  if (!o.bench_json.empty()) {
    MetricsRegistry reg;
    MetricsRegistry::Key key;
    key.benchmark = o.workload;
    key.cores = o.sim.coprocessor.num_cores;
    key.scale = o.scale;
    key.seed = o.seed;
    reg.record(key, o.sim, s);
    if (!reg.write_jsonl(o.bench_json, "gcsim")) {
      std::fprintf(stderr, "error: failed to write %s\n", o.bench_json.c_str());
      return 1;
    }
    std::printf("wrote metrics record to %s\n", o.bench_json.c_str());
  }
  return 0;
}
