// Heap inspector: dump the tricolor life of a collection cycle.
//
// Runs a small workload with per-cycle signal tracing (the software
// counterpart of the prototype's FPGA monitoring framework, Section VI-A),
// prints an object-by-object map of tospace after the cycle, and writes
// the scan/free pointer trace to heap_trace.csv for offline plotting.
//
// Usage: ./examples/heap_inspector [scale]
#include <cstdio>
#include <cstdlib>

#include "core/coprocessor.hpp"
#include "heap/object_model.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  const double scale = argc > 1 ? std::strtod(argv[1], nullptr) : 0.02;

  Workload w = make_benchmark(BenchmarkId::kJlisp, scale);
  Heap& heap = *w.heap;
  const HeapSnapshot pre = HeapSnapshot::capture(heap);
  std::printf("pre-GC: %zu live objects, %u live words, semispace %u words\n",
              pre.objects.size(), pre.live_words,
              heap.layout().semispace_words());

  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, heap);
  SignalTrace trace;
  const GcCycleStats s = coproc.collect(&trace);
  std::printf("collected in %llu cycles on 4 cores\n",
              static_cast<unsigned long long>(s.total_cycles));
  if (trace.write_csv("heap_trace.csv")) {
    std::printf("wrote %zu signal samples (scan/free/gray/busy) to "
                "heap_trace.csv\n\n",
                trace.events().size());
  } else {
    std::fprintf(stderr, "error: failed to write heap_trace.csv\n");
    return 1;
  }

  // Walk the compacted space: every object must be black, and the paper's
  // object layout (Figure 3) is directly visible.
  Addr cur = heap.layout().current_base();
  const Addr end = heap.alloc_ptr();
  std::printf("tospace map (first 12 objects):\n");
  std::printf("%-10s %-6s %-4s %-6s %s\n", "addr", "state", "pi", "delta",
              "pointer fields");
  int shown = 0;
  std::size_t black = 0, total = 0;
  while (cur < end) {
    const Word attrs = heap.memory().load(attributes_addr(cur));
    ++total;
    if (is_black(attrs)) ++black;
    if (shown < 12) {
      std::printf("0x%08x %-6s %-4u %-6u [", cur,
                  is_black(attrs) ? "black" : "gray?", pi_of(attrs),
                  delta_of(attrs));
      for (Word i = 0; i < pi_of(attrs); ++i) {
        std::printf("%s0x%x", i ? ", " : "",
                    heap.memory().load(pointer_field_addr(cur, i)));
      }
      std::printf("]\n");
      ++shown;
    }
    cur += object_words(attrs);
  }
  std::printf("... %zu objects total, %zu black (must be all)\n\n", total,
              black);

  const VerifyResult res = verify_collection(pre, heap);
  std::printf("verifier: %s\n", res.summary().c_str());
  return res.ok && black == total ? 0 : 1;
}
