// heapd — multi-tenant heap service sweep driver.
//
// Stands up a HeapService (N sharded runtimes behind a seeded traffic
// stream and a pluggable GC scheduler) for every point of the sweep matrix
// (shards × scheduler × load) and drives `--requests` requests through it
// in virtual time. Per configuration it reports per-shard and fleet-wide
// request latency (p50/p99/p999, split exactly into service + queue + GC
// stall), collection counts, admission-control rejections and SLO
// violations — and it never trusts a run it did not verify: the
// conformance post-structure oracle runs after every collection cycle on
// every shard, and the final cross-shard shadow-graph walk must come back
// clean. Any oracle finding, read mismatch or validation diff makes heapd
// exit nonzero.
//
// The sweep recipes from EXPERIMENTS.md:
//   heapd --shards 8 --scheduler proactive --requests 50000 --seed 1
//   heapd --shards 2,4,8 --scheduler reactive,proactive,pauseless \
//         --load 0.5,1.0,2.0 --requests 20000 --json BENCH_heapd.json
//   heapd --shards 4 --faults 2 --fault-shard 1 --requests 10000
//
// Options (space-separated values, fault_lab style):
//   --shards a,b,..     shard counts to sweep (default 4)
//   --scheduler a,b,..  policies: reactive proactive roundrobin
//                       pauseless (default reactive)
//   --load a,b,..       offered loads, open loop only (default 1.0)
//   --requests N        requests per configuration (default 20000)
//   --seed N            traffic seed (default 1)
//   --sessions N        concurrent sessions (default 64)
//   --heap-words N      per-shard semispace words (default 8192)
//   --cores N           GC cores per shard coprocessor (default 4)
//   --closed-loop       one outstanding request per session (default open)
//   --host-threads N    host threads running shard work (default 1 =
//                       serial; output is byte-identical either way).
//                       0 = one per hardware thread. Ignored while
//                       --trace-json is attached to a configuration
//   --fast-forward B    1/0: event-driven clock fast-forward in each
//                       shard's coprocessor (default 1; observationally
//                       invisible, see DESIGN.md §13)
//   --slo N             SLO bound in cycles (default 16384; 0 disables)
//   --max-backlog N     admission-control backlog bound (default 0 = none)
//   --faults N          seeded fault events per collection on the fault
//                       shard (runs it through the recovery machinery)
//   --fault-shard N     shard receiving the faults (default 0 with --faults)
//   --fault-seed N      fault plan seed (default 1)
//   --storm-fraction F  fault-storm: fraction of the fleet taking repeating
//                       per-collection faults (0 disables; storm shards run
//                       every collection through the recovery machinery)
//   --storm-events N    fault events per collection on stormed shards
//   --storm-seed N      storm plan seed (shard pick, phases, fault streams)
//   --storm-burst N     burst window length in per-shard arrivals (0 = the
//                       storm never pauses); --storm-calm N sets the gap
//   --storm-crashes N   crash every Nth active arrival on a stormed shard
//                       (requires --supervise)
//   --supervise         enable health supervision + checkpoint/restore
//   --deadline N        per-request deadline budget in cycles (enables
//                       failover routing + load shedding; 0 = none)
//   --retries N         max failover hops per request (default 2)
//   --backoff N         retry backoff in cycles per failover hop
//   --checkpoint-interval N  verified-clean cycles between checkpoints
//   --restore-cost N    virtual cycles a checkpoint restore occupies
//   --trace a,b,..      hwgc-trace-v1 files: sessions replay recorded op
//                       streams (trace-per-session, session % files) instead
//                       of seeded churn; read probes verify recorded digests.
//                       Incompatible with --supervise/--deadline (checkpoint
//                       restores would rewind roots under live trace cursors)
//   --trace-ops N       trace mode: baseline replay ops per request
//                       (default 16; scaled by request kind)
//   --no-oracle         skip the per-cycle post-structure oracle
//   --json PATH         write hwgc-bench-v1 (per-shard GC aggregates) +
//                       hwgc-service-v1 (latency/SLO) JSONL sections
//   --trace-json PATH   Chrome-trace timeline of the FIRST configuration
//   --profile           per-cycle stall attribution + request tracing
//                       (src/profile/): prints each shard's binding
//                       resource and the fleet's slowest request
//   --exemplars N       slow-request exemplars kept per shard and fleet-
//                       wide (default 4; implies nothing by itself)
//   --profile-json PATH hwgc-profile-v1 JSONL — per-shard attribution
//                       records + exemplar span trees for every sweep
//                       point (implies --profile)
//   --flame PATH        Chrome-trace flame view of the FIRST
//                       configuration's exemplar span trees (implies
//                       --profile)
//   -v, --verbose       per-shard table for every configuration
//
// Unknown options and malformed values exit 2 with a usage summary on
// stderr — a sweep driven from CI must never silently ignore a typo.
#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "profile/profile_metrics.hpp"
#include "profile/request_trace.hpp"
#include "profile/stall_class.hpp"
#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace hwgc;

struct Options {
  std::vector<std::size_t> shards{4};
  std::vector<GcSchedulerKind> schedulers{GcSchedulerKind::kReactive};
  std::vector<double> loads{1.0};
  std::uint64_t requests = 20000;
  std::uint64_t seed = 1;
  std::uint32_t sessions = 64;
  Word heap_words = 8192;
  std::uint32_t cores = 4;
  bool closed_loop = false;
  std::size_t host_threads = 1;
  bool fast_forward = true;
  Cycle slo = 1u << 14;
  Cycle max_backlog = 0;
  std::uint32_t faults = 0;
  std::size_t fault_shard = ServiceConfig::kNoShard;
  std::uint64_t fault_seed = 1;
  FaultStormConfig storm{};
  ResilienceConfig resilience{};
  std::vector<std::string> trace_files;
  std::shared_ptr<const std::vector<Trace>> traces;
  std::uint32_t trace_ops = 16;
  bool oracle = true;
  std::string json_path;
  std::string trace_json;
  bool profile = false;
  std::uint32_t exemplars = 4;
  std::string profile_json;
  std::string flame;
  bool verbose = false;
};

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: heapd [options]\n"
      "  sweep:   --shards a,b,..  --scheduler\n"
      "           reactive|proactive|roundrobin|pauseless,..\n"
      "           --load a,b,..  --requests N  --seed N  --sessions N\n"
      "  shard:   --heap-words N  --cores N  --closed-loop  --host-threads N\n"
      "           --fast-forward 0|1  --slo N  --max-backlog N  --no-oracle\n"
      "  faults:  --faults N  --fault-shard N  --fault-seed N\n"
      "  storm:   --storm-fraction F  --storm-events N  --storm-seed N\n"
      "           --storm-burst N  --storm-calm N  --storm-crashes N\n"
      "  resil.:  --supervise  --deadline N  --retries N  --backoff N\n"
      "           --checkpoint-interval N  --restore-cost N\n"
      "  trace:   --trace FILE,..  --trace-ops N\n"
      "  output:  --json PATH  --trace-json PATH  -v|--verbose\n"
      "  profile: --profile  --exemplars N  --profile-json PATH"
      "  --flame PATH\n"
      "see the header of examples/heapd.cpp for semantics\n");
}

[[noreturn]] void die_usage(const char* fmt, const char* a0) {
  std::fprintf(stderr, "heapd: ");
  std::fprintf(stderr, fmt, a0);
  std::fprintf(stderr, "\n");
  usage(stderr);
  std::exit(2);
}

/// Strict unsigned parse: the whole token must be a number. "12x", "",
/// "-3" and overflow all reject — a malformed sweep value must never
/// silently become 0 requests or shard 0.
std::uint64_t parse_u64(const char* flag, const std::string& s) {
  if (s.empty() || s.front() == '-') {
    die_usage("malformed value for %s (need an unsigned integer)",
              flag);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
    die_usage("malformed value for %s (need an unsigned integer)", flag);
  }
  return v;
}

double parse_f64(const char* flag, const std::string& s) {
  if (s.empty()) die_usage("malformed value for %s (need a number)", flag);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
    die_usage("malformed value for %s (need a number)", flag);
  }
  return v;
}

bool parse_args(int argc, char** argv, Options& opt) {
  const auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) die_usage("missing value for %s", argv[i]);
    return argv[++i];
  };
  const auto next_u64 = [&](int& i) {
    const char* flag = argv[i];
    return parse_u64(flag, next(i));
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--shards") {
      opt.shards.clear();
      const char* flag = argv[i];
      for (const auto& s : split_list(next(i))) {
        opt.shards.push_back(
            static_cast<std::size_t>(parse_u64(flag, s)));
      }
      if (opt.shards.empty()) die_usage("empty list for %s", flag);
    } else if (a == "--scheduler") {
      opt.schedulers.clear();
      const char* flag = argv[i];
      for (const auto& s : split_list(next(i))) {
        const auto k = parse_scheduler(s);
        if (!k.has_value()) die_usage("unknown scheduler \"%s\"", s.c_str());
        opt.schedulers.push_back(*k);
      }
      if (opt.schedulers.empty()) die_usage("empty list for %s", flag);
    } else if (a == "--load") {
      opt.loads.clear();
      const char* flag = argv[i];
      for (const auto& s : split_list(next(i))) {
        opt.loads.push_back(parse_f64(flag, s));
      }
      if (opt.loads.empty()) die_usage("empty list for %s", flag);
    } else if (a == "--requests") {
      opt.requests = next_u64(i);
    } else if (a == "--seed") {
      opt.seed = next_u64(i);
    } else if (a == "--sessions") {
      opt.sessions = static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--heap-words") {
      opt.heap_words = static_cast<Word>(next_u64(i));
    } else if (a == "--cores") {
      opt.cores = static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--closed-loop") {
      opt.closed_loop = true;
    } else if (a == "--host-threads") {
      opt.host_threads = static_cast<std::size_t>(next_u64(i));
      if (opt.host_threads == 0) {
        opt.host_threads =
            std::max(1u, std::thread::hardware_concurrency());
      }
    } else if (a == "--fast-forward") {
      opt.fast_forward = next_u64(i) != 0;
    } else if (a == "--slo") {
      opt.slo = next_u64(i);
    } else if (a == "--max-backlog") {
      opt.max_backlog = next_u64(i);
    } else if (a == "--faults") {
      opt.faults = static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--fault-shard") {
      opt.fault_shard = static_cast<std::size_t>(next_u64(i));
    } else if (a == "--fault-seed") {
      opt.fault_seed = next_u64(i);
    } else if (a == "--storm-fraction") {
      const char* flag = argv[i];
      opt.storm.shard_fraction = parse_f64(flag, next(i));
      if (opt.storm.shard_fraction < 0.0 || opt.storm.shard_fraction > 1.0) {
        die_usage("%s must be in [0, 1]", flag);
      }
    } else if (a == "--storm-events") {
      opt.storm.events_per_collection = static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--storm-seed") {
      opt.storm.seed = next_u64(i);
    } else if (a == "--storm-burst") {
      opt.storm.burst_requests = static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--storm-calm") {
      opt.storm.calm_requests = static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--storm-crashes") {
      opt.storm.crash_period = static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--supervise") {
      opt.resilience.supervise = true;
    } else if (a == "--deadline") {
      opt.resilience.deadline_cycles = next_u64(i);
    } else if (a == "--retries") {
      opt.resilience.max_retries = static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--backoff") {
      opt.resilience.retry_backoff = next_u64(i);
    } else if (a == "--checkpoint-interval") {
      opt.resilience.checkpoint_interval =
          static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--restore-cost") {
      opt.resilience.restore_cost = next_u64(i);
    } else if (a == "--trace") {
      const char* flag = argv[i];
      opt.trace_files = split_list(next(i));
      if (opt.trace_files.empty()) die_usage("empty list for %s", flag);
    } else if (a == "--trace-ops") {
      opt.trace_ops = static_cast<std::uint32_t>(next_u64(i));
      if (opt.trace_ops == 0) {
        die_usage("%s", "--trace-ops must be >= 1");
      }
    } else if (a == "--no-oracle") {
      opt.oracle = false;
    } else if (a == "--json") {
      opt.json_path = next(i);
    } else if (a == "--trace-json") {
      opt.trace_json = next(i);
    } else if (a == "--profile") {
      opt.profile = true;
    } else if (a == "--exemplars") {
      opt.exemplars = static_cast<std::uint32_t>(next_u64(i));
    } else if (a == "--profile-json") {
      opt.profile_json = next(i);
    } else if (a == "--flame") {
      opt.flame = next(i);
    } else if (a == "-v" || a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      die_usage("unknown option: %s", a.c_str());
    }
  }
  if (opt.faults > 0 && opt.fault_shard == ServiceConfig::kNoShard) {
    opt.fault_shard = 0;
  }
  if (opt.storm.crash_period > 0 && !opt.resilience.supervise) {
    die_usage("%s", "--storm-crashes requires --supervise (a crashed shard "
                    "must be quarantined and restored)");
  }
  if (!opt.profile_json.empty() || !opt.flame.empty()) opt.profile = true;
  if (!opt.trace_files.empty() && opt.resilience.enabled()) {
    die_usage("%s", "--trace is incompatible with --supervise/--deadline "
                    "(checkpoint restores would rewind the root table under "
                    "live trace cursors)");
  }
  return true;
}

ServiceConfig make_config(const Options& o, std::size_t shards,
                          GcSchedulerKind sched, double load) {
  ServiceConfig cfg;
  cfg.shards = shards;
  cfg.semispace_words = o.heap_words;
  cfg.sim.coprocessor.num_cores = o.cores;
  cfg.traffic.seed = o.seed;
  cfg.traffic.sessions = o.sessions;
  cfg.traffic.open_loop = !o.closed_loop;
  cfg.traffic.load = load;
  cfg.host_threads = o.host_threads;
  cfg.sim.coprocessor.fast_forward = o.fast_forward;
  cfg.scheduler = sched;
  cfg.max_backlog = o.max_backlog;
  cfg.slo_cycles = o.slo;
  cfg.oracle = o.oracle;
  if (o.faults > 0) {
    cfg.fault_shard = o.fault_shard;
    cfg.fault_events = o.faults;
    cfg.fault_seed = o.fault_seed;
  }
  cfg.storm = o.storm;
  cfg.resilience = o.resilience;
  cfg.traces = o.traces;
  cfg.trace_ops_per_request = o.trace_ops;
  cfg.profile.enabled = o.profile;
  cfg.profile.exemplars = o.exemplars;
  return cfg;
}

void print_stats_row(const char* label, const SloStats& s) {
  std::printf(
      "  %-6s %8llu req %8llu ok %6llu shed | p50 %6llu p99 %7llu "
      "p999 %7llu clk | %5llu gc (%llu sched, %llu recov) | %llu slo viol\n",
      label, static_cast<unsigned long long>(s.offered),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.latency.percentile(0.50)),
      static_cast<unsigned long long>(s.latency.percentile(0.99)),
      static_cast<unsigned long long>(s.latency.percentile(0.999)),
      static_cast<unsigned long long>(s.collections),
      static_cast<unsigned long long>(s.scheduled_collections),
      static_cast<unsigned long long>(s.recovered_collections),
      static_cast<unsigned long long>(s.slo_violations));
}

/// One sweep point. Returns false when the oracle, a read probe or the
/// cross-shard validation found anything.
bool run_config(const Options& o, const ServiceConfig& cfg,
                MetricsRegistry& registry, std::string& service_jsonl,
                std::string& profile_jsonl,
                std::vector<RequestExemplar>* flame_out, TelemetryBus* bus) {
  HeapService service(cfg);
  if (bus != nullptr) service.set_telemetry(bus);
  service.serve(o.requests);

  const SloStats fleet = service.fleet_stats();
  std::string tags;
  if (cfg.fault_events > 0) tags += " (fault-injected)";
  if (service.storm().enabled()) {
    tags += " (storm: " + std::to_string(service.storm().stormed_count()) +
            "/" + std::to_string(cfg.shards) + " shards)";
  }
  if (service.resilient()) tags += " (supervised)";
  std::printf("shards=%zu scheduler=%s load=%.2f%s\n", cfg.shards,
              to_string(cfg.scheduler), cfg.traffic.load, tags.c_str());
  if (o.verbose) {
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      char label[16];
      std::snprintf(label, sizeof label, "s%zu", i);
      print_stats_row(label, service.shard_stats(i));
      if (service.resilient()) {
        std::printf("         health=%-11s", to_string(service.shard_health(i)));
        const SloStats& ss = service.shard_stats(i);
        std::printf(
            " served %llu retried %llu failed %llu | ckpt %llu restore %llu "
            "quar %llu degrade %llu crash %llu\n",
            static_cast<unsigned long long>(ss.served()),
            static_cast<unsigned long long>(ss.retried),
            static_cast<unsigned long long>(ss.failed),
            static_cast<unsigned long long>(ss.checkpoints),
            static_cast<unsigned long long>(ss.restores),
            static_cast<unsigned long long>(ss.quarantines),
            static_cast<unsigned long long>(ss.degradations),
            static_cast<unsigned long long>(ss.crashes));
      }
    }
  }
  print_stats_row("fleet", fleet);
  if (service.resilient()) {
    std::printf(
        "  fleet health=%s | served %llu retried %llu failed %llu shed %llu "
        "| ckpt %llu restore %llu quar %llu degrade %llu crash %llu | %zu "
        "health event(s)\n",
        to_string(service.fleet_health()),
        static_cast<unsigned long long>(fleet.served()),
        static_cast<unsigned long long>(fleet.retried),
        static_cast<unsigned long long>(fleet.failed),
        static_cast<unsigned long long>(fleet.rejected),
        static_cast<unsigned long long>(fleet.checkpoints),
        static_cast<unsigned long long>(fleet.restores),
        static_cast<unsigned long long>(fleet.quarantines),
        static_cast<unsigned long long>(fleet.degradations),
        static_cast<unsigned long long>(fleet.crashes),
        service.health_events().size());
  }

  // Cross-shard isolation proof: every shard's heap must still agree with
  // its shadow model, fault-injected neighbors or not.
  const std::size_t mismatches = service.validate_all_shards();
  bool ok = true;
  if (fleet.oracle_failures > 0) {
    ok = false;
    std::printf("  ORACLE: %llu post-structure failure(s)\n",
                static_cast<unsigned long long>(fleet.oracle_failures));
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      for (const auto& d : service.oracle_diagnostics(i)) {
        std::printf("    %s\n", d.c_str());
      }
    }
  }
  if (fleet.read_mismatches > 0) {
    ok = false;
    std::printf("  READS: %llu probe mismatch(es) against shadow graphs\n",
                static_cast<unsigned long long>(fleet.read_mismatches));
  }
  if (mismatches > 0) {
    ok = false;
    std::printf("  VALIDATION: %zu cross-shard mismatch(es)\n", mismatches);
  }
  if (fleet.checkpoint_digest_failures > 0) {
    ok = false;
    std::printf("  CHECKPOINT: %llu digest failure(s) on restore\n",
                static_cast<unsigned long long>(
                    fleet.checkpoint_digest_failures));
  }
  std::printf("  verification: %s (oracle on %llu cycles, cross-shard walk "
              "clean=%s)\n\n",
              ok ? "OK" : "FAILED",
              static_cast<unsigned long long>(fleet.collections),
              mismatches == 0 ? "yes" : "NO");

  if (!o.json_path.empty()) {
    // Per-shard GC aggregates land in the bench-v1 section...
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      MetricsRegistry::Key key;
      key.benchmark = "heapd/" + std::string(to_string(cfg.scheduler)) +
                      "/shard" + std::to_string(i) + "of" +
                      std::to_string(cfg.shards);
      key.cores = o.cores;
      key.scale = cfg.traffic.load;
      key.seed = o.seed;
      const Runtime& rt = service.runtime(i);
      for (const auto& s : rt.gc_history()) {
        registry.record(key, cfg.sim, s);
      }
    }
    // ...and latency/SLO accounting in the service-v1 section.
    service_jsonl += service_report_jsonl(service, "heapd");
  }
  if (service.profiling()) {
    std::printf("  profile: binding resource per shard:");
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      std::printf(" s%zu=%s", i,
                  std::string(to_string(service.shard_attribution(i).binding()))
                      .c_str());
    }
    std::printf("\n");
    const std::vector<RequestExemplar> slow = service.slowest_requests();
    if (!slow.empty()) {
      const RequestExemplar& e = slow.front();
      std::printf("  profile: slowest request #%llu on s%zu: %llu clk "
                  "(wait %llu, gc-inherited %llu, gc-own %llu, service %llu, "
                  "%u hop(s))\n\n",
                  static_cast<unsigned long long>(e.request_id), e.shard,
                  static_cast<unsigned long long>(e.latency()),
                  static_cast<unsigned long long>(e.start - e.arrival),
                  static_cast<unsigned long long>(e.inherited_stall),
                  static_cast<unsigned long long>(e.own_gc),
                  static_cast<unsigned long long>(e.service), e.hops);
    }
    if (!o.profile_json.empty()) {
      profile_jsonl += profile_report_jsonl(service, "heapd");
    }
    if (flame_out != nullptr) *flame_out = slow;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (!opt.trace_files.empty()) {
    auto loaded = std::make_shared<std::vector<Trace>>();
    for (const std::string& f : opt.trace_files) {
      try {
        loaded->push_back(load_trace(f));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "heapd: --trace %s: %s\n", f.c_str(), e.what());
        return 2;
      }
    }
    opt.traces = std::move(loaded);
    std::printf("trace mode: %zu trace(s), sessions pinned session %% %zu\n",
                opt.trace_files.size(), opt.trace_files.size());
  }

  MetricsRegistry registry;
  std::string service_jsonl;
  std::string profile_jsonl;
  std::vector<RequestExemplar> flame;
  TelemetryBus bus;
  bool all_ok = true;
  bool first = true;

  for (std::size_t shards : opt.shards) {
    for (GcSchedulerKind sched : opt.schedulers) {
      for (double load : opt.loads) {
        const ServiceConfig cfg = make_config(opt, shards, sched, load);
        TelemetryBus* attach =
            (first && !opt.trace_json.empty()) ? &bus : nullptr;
        std::vector<RequestExemplar>* flame_out =
            (first && !opt.flame.empty()) ? &flame : nullptr;
        first = false;
        all_ok &= run_config(opt, cfg, registry, service_jsonl, profile_jsonl,
                             flame_out, attach);
      }
    }
  }

  if (!opt.trace_json.empty()) {
    if (!write_chrome_trace(bus, opt.trace_json)) {
      std::fprintf(stderr, "error: failed to write %s\n",
                   opt.trace_json.c_str());
      return 1;
    }
    std::printf("wrote fleet timeline (%zu epochs, %zu spans) to %s\n",
                bus.epochs().size(), bus.spans().size(),
                opt.trace_json.c_str());
  }
  if (!opt.json_path.empty()) {
    std::ofstream f(opt.json_path, std::ios::binary);
    const std::string bench = registry.to_jsonl("heapd");
    f.write(bench.data(), static_cast<std::streamsize>(bench.size()));
    f.write(service_jsonl.data(),
            static_cast<std::streamsize>(service_jsonl.size()));
    f.flush();
    if (!f.good()) {
      std::fprintf(stderr, "error: failed to write %s\n",
                   opt.json_path.c_str());
      return 1;
    }
    std::printf("wrote %zu bench record(s) + service records to %s\n",
                registry.size(), opt.json_path.c_str());
  }
  if (!opt.profile_json.empty()) {
    std::ofstream f(opt.profile_json, std::ios::binary);
    f.write(profile_jsonl.data(),
            static_cast<std::streamsize>(profile_jsonl.size()));
    f.flush();
    if (!f.good()) {
      std::fprintf(stderr, "error: failed to write %s\n",
                   opt.profile_json.c_str());
      return 1;
    }
    std::printf("wrote profile attribution + exemplar spans to %s\n",
                opt.profile_json.c_str());
  }
  if (!opt.flame.empty()) {
    if (!write_exemplar_flame(flame, opt.flame)) {
      std::fprintf(stderr, "error: failed to write %s\n", opt.flame.c_str());
      return 1;
    }
    std::printf("wrote %zu exemplar span tree(s) to %s\n", flame.size(),
                opt.flame.c_str());
  }
  return all_ok ? 0 : 1;
}
