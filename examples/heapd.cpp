// heapd — multi-tenant heap service sweep driver.
//
// Stands up a HeapService (N sharded runtimes behind a seeded traffic
// stream and a pluggable GC scheduler) for every point of the sweep matrix
// (shards × scheduler × load) and drives `--requests` requests through it
// in virtual time. Per configuration it reports per-shard and fleet-wide
// request latency (p50/p99/p999, split exactly into service + queue + GC
// stall), collection counts, admission-control rejections and SLO
// violations — and it never trusts a run it did not verify: the
// conformance post-structure oracle runs after every collection cycle on
// every shard, and the final cross-shard shadow-graph walk must come back
// clean. Any oracle finding, read mismatch or validation diff makes heapd
// exit nonzero.
//
// The sweep recipes from EXPERIMENTS.md:
//   heapd --shards 8 --scheduler proactive --requests 50000 --seed 1
//   heapd --shards 2,4,8 --scheduler reactive,proactive,roundrobin \
//         --load 0.5,1.0,2.0 --requests 20000 --json BENCH_heapd.json
//   heapd --shards 4 --faults 2 --fault-shard 1 --requests 10000
//
// Options (space-separated values, fault_lab style):
//   --shards a,b,..     shard counts to sweep (default 4)
//   --scheduler a,b,..  policies: reactive proactive roundrobin (default
//                       reactive)
//   --load a,b,..       offered loads, open loop only (default 1.0)
//   --requests N        requests per configuration (default 20000)
//   --seed N            traffic seed (default 1)
//   --sessions N        concurrent sessions (default 64)
//   --heap-words N      per-shard semispace words (default 8192)
//   --cores N           GC cores per shard coprocessor (default 4)
//   --closed-loop       one outstanding request per session (default open)
//   --host-threads N    host threads running shard work (default 1 =
//                       serial; output is byte-identical either way).
//                       0 = one per hardware thread. Ignored while
//                       --trace-json is attached to a configuration
//   --fast-forward B    1/0: event-driven clock fast-forward in each
//                       shard's coprocessor (default 1; observationally
//                       invisible, see DESIGN.md §13)
//   --slo N             SLO bound in cycles (default 16384; 0 disables)
//   --max-backlog N     admission-control backlog bound (default 0 = none)
//   --faults N          seeded fault events per collection on the fault
//                       shard (runs it through the recovery machinery)
//   --fault-shard N     shard receiving the faults (default 0 with --faults)
//   --fault-seed N      fault plan seed (default 1)
//   --no-oracle         skip the per-cycle post-structure oracle
//   --json PATH         write hwgc-bench-v1 (per-shard GC aggregates) +
//                       hwgc-service-v1 (latency/SLO) JSONL sections
//   --trace-json PATH   Chrome-trace timeline of the FIRST configuration
//   -v, --verbose       per-shard table for every configuration
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace hwgc;

struct Options {
  std::vector<std::size_t> shards{4};
  std::vector<GcSchedulerKind> schedulers{GcSchedulerKind::kReactive};
  std::vector<double> loads{1.0};
  std::uint64_t requests = 20000;
  std::uint64_t seed = 1;
  std::uint32_t sessions = 64;
  Word heap_words = 8192;
  std::uint32_t cores = 4;
  bool closed_loop = false;
  std::size_t host_threads = 1;
  bool fast_forward = true;
  Cycle slo = 1u << 14;
  Cycle max_backlog = 0;
  std::uint32_t faults = 0;
  std::size_t fault_shard = ServiceConfig::kNoShard;
  std::uint64_t fault_seed = 1;
  bool oracle = true;
  std::string json_path;
  std::string trace_json;
  bool verbose = false;
};

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool parse_args(int argc, char** argv, Options& opt) {
  const auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--shards") {
      opt.shards.clear();
      for (const auto& s : split_list(next(i))) {
        opt.shards.push_back(std::strtoull(s.c_str(), nullptr, 0));
      }
    } else if (a == "--scheduler") {
      opt.schedulers.clear();
      for (const auto& s : split_list(next(i))) {
        const auto k = parse_scheduler(s);
        if (!k.has_value()) {
          std::fprintf(stderr, "unknown scheduler %s\n", s.c_str());
          return false;
        }
        opt.schedulers.push_back(*k);
      }
    } else if (a == "--load") {
      opt.loads.clear();
      for (const auto& s : split_list(next(i))) {
        opt.loads.push_back(std::strtod(s.c_str(), nullptr));
      }
    } else if (a == "--requests") {
      opt.requests = std::strtoull(next(i), nullptr, 0);
    } else if (a == "--seed") {
      opt.seed = std::strtoull(next(i), nullptr, 0);
    } else if (a == "--sessions") {
      opt.sessions =
          static_cast<std::uint32_t>(std::strtoul(next(i), nullptr, 0));
    } else if (a == "--heap-words") {
      opt.heap_words = std::strtoull(next(i), nullptr, 0);
    } else if (a == "--cores") {
      opt.cores = static_cast<std::uint32_t>(std::strtoul(next(i), nullptr, 0));
    } else if (a == "--closed-loop") {
      opt.closed_loop = true;
    } else if (a == "--host-threads") {
      opt.host_threads = std::strtoull(next(i), nullptr, 0);
      if (opt.host_threads == 0) {
        opt.host_threads =
            std::max(1u, std::thread::hardware_concurrency());
      }
    } else if (a == "--fast-forward") {
      opt.fast_forward = std::strtoul(next(i), nullptr, 0) != 0;
    } else if (a == "--slo") {
      opt.slo = std::strtoull(next(i), nullptr, 0);
    } else if (a == "--max-backlog") {
      opt.max_backlog = std::strtoull(next(i), nullptr, 0);
    } else if (a == "--faults") {
      opt.faults =
          static_cast<std::uint32_t>(std::strtoul(next(i), nullptr, 0));
    } else if (a == "--fault-shard") {
      opt.fault_shard = std::strtoull(next(i), nullptr, 0);
    } else if (a == "--fault-seed") {
      opt.fault_seed = std::strtoull(next(i), nullptr, 0);
    } else if (a == "--no-oracle") {
      opt.oracle = false;
    } else if (a == "--json") {
      opt.json_path = next(i);
    } else if (a == "--trace-json") {
      opt.trace_json = next(i);
    } else if (a == "-v" || a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--help" || a == "-h") {
      std::printf("see the header of examples/heapd.cpp for options\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  if (opt.faults > 0 && opt.fault_shard == ServiceConfig::kNoShard) {
    opt.fault_shard = 0;
  }
  return true;
}

ServiceConfig make_config(const Options& o, std::size_t shards,
                          GcSchedulerKind sched, double load) {
  ServiceConfig cfg;
  cfg.shards = shards;
  cfg.semispace_words = o.heap_words;
  cfg.sim.coprocessor.num_cores = o.cores;
  cfg.traffic.seed = o.seed;
  cfg.traffic.sessions = o.sessions;
  cfg.traffic.open_loop = !o.closed_loop;
  cfg.traffic.load = load;
  cfg.host_threads = o.host_threads;
  cfg.sim.coprocessor.fast_forward = o.fast_forward;
  cfg.scheduler = sched;
  cfg.max_backlog = o.max_backlog;
  cfg.slo_cycles = o.slo;
  cfg.oracle = o.oracle;
  if (o.faults > 0) {
    cfg.fault_shard = o.fault_shard;
    cfg.fault_events = o.faults;
    cfg.fault_seed = o.fault_seed;
  }
  return cfg;
}

void print_stats_row(const char* label, const SloStats& s) {
  std::printf(
      "  %-6s %8llu req %8llu ok %6llu shed | p50 %6llu p99 %7llu "
      "p999 %7llu clk | %5llu gc (%llu sched, %llu recov) | %llu slo viol\n",
      label, static_cast<unsigned long long>(s.offered),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.latency.percentile(0.50)),
      static_cast<unsigned long long>(s.latency.percentile(0.99)),
      static_cast<unsigned long long>(s.latency.percentile(0.999)),
      static_cast<unsigned long long>(s.collections),
      static_cast<unsigned long long>(s.scheduled_collections),
      static_cast<unsigned long long>(s.recovered_collections),
      static_cast<unsigned long long>(s.slo_violations));
}

/// One sweep point. Returns false when the oracle, a read probe or the
/// cross-shard validation found anything.
bool run_config(const Options& o, const ServiceConfig& cfg,
                MetricsRegistry& registry, std::string& service_jsonl,
                TelemetryBus* bus) {
  HeapService service(cfg);
  if (bus != nullptr) service.set_telemetry(bus);
  service.serve(o.requests);

  const SloStats fleet = service.fleet_stats();
  std::printf("shards=%zu scheduler=%s load=%.2f %s\n", cfg.shards,
              to_string(cfg.scheduler), cfg.traffic.load,
              cfg.fault_events > 0 ? "(fault-injected)" : "");
  if (o.verbose) {
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      char label[16];
      std::snprintf(label, sizeof label, "s%zu", i);
      print_stats_row(label, service.shard_stats(i));
    }
  }
  print_stats_row("fleet", fleet);

  // Cross-shard isolation proof: every shard's heap must still agree with
  // its shadow model, fault-injected neighbors or not.
  const std::size_t mismatches = service.validate_all_shards();
  bool ok = true;
  if (fleet.oracle_failures > 0) {
    ok = false;
    std::printf("  ORACLE: %llu post-structure failure(s)\n",
                static_cast<unsigned long long>(fleet.oracle_failures));
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      for (const auto& d : service.oracle_diagnostics(i)) {
        std::printf("    %s\n", d.c_str());
      }
    }
  }
  if (fleet.read_mismatches > 0) {
    ok = false;
    std::printf("  READS: %llu probe mismatch(es) against shadow graphs\n",
                static_cast<unsigned long long>(fleet.read_mismatches));
  }
  if (mismatches > 0) {
    ok = false;
    std::printf("  VALIDATION: %zu cross-shard mismatch(es)\n", mismatches);
  }
  std::printf("  verification: %s (oracle on %llu cycles, cross-shard walk "
              "clean=%s)\n\n",
              ok ? "OK" : "FAILED",
              static_cast<unsigned long long>(fleet.collections),
              mismatches == 0 ? "yes" : "NO");

  if (!o.json_path.empty()) {
    // Per-shard GC aggregates land in the bench-v1 section...
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      MetricsRegistry::Key key;
      key.benchmark = "heapd/" + std::string(to_string(cfg.scheduler)) +
                      "/shard" + std::to_string(i) + "of" +
                      std::to_string(cfg.shards);
      key.cores = o.cores;
      key.scale = cfg.traffic.load;
      key.seed = o.seed;
      const Runtime& rt = service.runtime(i);
      for (const auto& s : rt.gc_history()) {
        registry.record(key, cfg.sim, s);
      }
    }
    // ...and latency/SLO accounting in the service-v1 section.
    service_jsonl += service_report_jsonl(service, "heapd");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  MetricsRegistry registry;
  std::string service_jsonl;
  TelemetryBus bus;
  bool all_ok = true;
  bool first = true;

  for (std::size_t shards : opt.shards) {
    for (GcSchedulerKind sched : opt.schedulers) {
      for (double load : opt.loads) {
        const ServiceConfig cfg = make_config(opt, shards, sched, load);
        TelemetryBus* attach =
            (first && !opt.trace_json.empty()) ? &bus : nullptr;
        first = false;
        all_ok &= run_config(opt, cfg, registry, service_jsonl, attach);
      }
    }
  }

  if (!opt.trace_json.empty()) {
    if (!write_chrome_trace(bus, opt.trace_json)) {
      std::fprintf(stderr, "error: failed to write %s\n",
                   opt.trace_json.c_str());
      return 1;
    }
    std::printf("wrote fleet timeline (%zu epochs, %zu spans) to %s\n",
                bus.epochs().size(), bus.spans().size(),
                opt.trace_json.c_str());
  }
  if (!opt.json_path.empty()) {
    std::ofstream f(opt.json_path, std::ios::binary);
    const std::string bench = registry.to_jsonl("heapd");
    f.write(bench.data(), static_cast<std::streamsize>(bench.size()));
    f.write(service_jsonl.data(),
            static_cast<std::streamsize>(service_jsonl.size()));
    f.flush();
    if (!f.good()) {
      std::fprintf(stderr, "error: failed to write %s\n",
                   opt.json_path.c_str());
      return 1;
    }
    std::printf("wrote %zu bench record(s) + service records to %s\n",
                registry.size(), opt.json_path.c_str());
  }
  return all_ok ? 0 : 1;
}
