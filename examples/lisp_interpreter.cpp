// Demo CLI for the managed-heap Lisp interpreter (src/workloads/lisp.hpp):
// runs the fib + range/sum demo session and reports allocation/GC totals.
//
//   $ ./examples/lisp_interpreter
//   $ ./examples/lisp_interpreter --fib 12 --range 40
//   $ ./examples/lisp_interpreter --record session.jsonl
//
// --record captures the whole evaluation as an hwgc-trace-v1 stream through
// the Runtime trace sink; replay it with `tracectl replay session.jsonl`.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "trace/recorder.hpp"
#include "workloads/lisp.hpp"

using namespace hwgc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--fib N] [--range N] [--record FILE] [--binary]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned fib_n = 16;
  unsigned range_n = 60;
  std::string record_path;
  bool binary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fib" && i + 1 < argc) {
      fib_n = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--range" && i + 1 < argc) {
      range_n = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--record" && i + 1 < argc) {
      record_path = argv[++i];
    } else if (arg == "--binary") {
      binary = true;
    } else {
      return usage(argv[0]);
    }
  }

  Lisp lisp;
  TraceRecorder recorder([] {
    TraceHeader h;
    h.name = "lisp";
    return h;
  }());
  if (!record_path.empty()) recorder.attach(lisp.runtime());

  try {
    for (const std::string& src : Lisp::demo_program(fib_n, range_n)) {
      std::printf("> %s\n", src.c_str());
      std::printf("%s\n", lisp.run(src).c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("\n%llu objects allocated, %zu GC coprocessor cycles ran "
              "during evaluation\n",
              static_cast<unsigned long long>(lisp.allocations()),
              lisp.gc_cycles());

  if (!record_path.empty()) {
    recorder.detach(lisp.runtime());
    try {
      save_trace(record_path, recorder.trace(), binary);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("recorded %zu events to %s (digest 0x%llx)\n",
                recorder.trace().ops.size(), record_path.c_str(),
                static_cast<unsigned long long>(recorder.trace().digest()));
  }
  return 0;
}
