// profile_diff — the hwgc-profile-v1 regression comparator.
//
// Usage:
//   profile_diff BASELINE CURRENT [--tolerance=F]
//
// Validates both files (schema identities + file-level span checks), then
// pairs their attribution records by (suite, source, shard) and exits
// nonzero when
//   * either file fails validation,
//   * a record is missing from or extra in CURRENT,
//   * a record's binding resource changed, or
//   * any stall class's share of core_cycles moved more than the
//     tolerance (absolute; default 0.05, i.e. five share points).
//
// CI's profile-smoke job runs this against the committed BENCH_profile.json
// snapshot so an attribution shift — a new stall class eating cycles, a
// binding-resource flip — fails the build instead of rotting silently.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "profile/profile_metrics.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;
  double tolerance = 0.05;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tolerance=", 0) == 0) {
      char* end = nullptr;
      tolerance = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || tolerance < 0) {
        std::fprintf(stderr, "profile_diff: bad tolerance: %s\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s BASELINE CURRENT [--tolerance=F]\n", argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "profile_diff: unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr, "usage: %s BASELINE CURRENT [--tolerance=F]\n",
                 argv[0]);
    return 2;
  }

  bool ok = true;
  for (const std::string& path : files) {
    std::vector<std::string> errors;
    if (validate_profile_jsonl_file(path, &errors)) {
      std::printf("%s: valid hwgc-profile-v1\n", path.c_str());
    } else {
      ok = false;
      for (const std::string& e : errors) {
        std::fprintf(stderr, "  %s\n", e.c_str());
      }
      std::printf("%s: INVALID\n", path.c_str());
    }
  }

  std::vector<std::string> drift;
  if (ok && !compare_profile_baselines(files[0], files[1], tolerance, &drift)) {
    ok = false;
    for (const std::string& e : drift) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
  }
  std::printf("attribution drift vs %s (tolerance %.3f): %s\n",
              files[0].c_str(), tolerance, ok ? "none" : "DETECTED");
  return ok ? 0 : 1;
}
