// Quickstart: the 5-minute tour of the public API.
//
// Builds a small object graph through the managed Runtime, lets the
// allocator run the heap full so the GC coprocessor steps in
// automatically, then forces one more collection and prints its
// statistics — the same counters the paper's Tables I and II are built
// from.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "runtime/runtime.hpp"
#include "sim/counters.hpp"

int main() {
  using namespace hwgc;

  // A heap of 64k words per semispace, collected by an 8-core coprocessor.
  SimConfig cfg;
  cfg.coprocessor.num_cores = 8;
  Runtime rt(64 * 1024, cfg);

  // Build a ring of buffers, each with a payload object.
  std::printf("building a ring of 1000 buffers...\n");
  Runtime::Ref first = rt.alloc(2, 4);  // fields: [next, payload]
  Runtime::Ref prev = first;
  for (int i = 1; i < 1000; ++i) {
    Runtime::Ref node = rt.alloc(2, 4);
    Runtime::Ref payload = rt.alloc(0, 8);
    rt.set_data(payload, 0, static_cast<Word>(i));
    rt.set_ptr(node, 1, payload);
    rt.set_ptr(prev, 0, node);
    // Only the ring keeps nodes alive; drop our temporary handles.
    rt.release(payload);
    if (i > 1) rt.release(prev);
    prev = node;
  }
  rt.set_ptr(prev, 0, first);  // close the ring
  rt.release(prev);

  // Churn: allocate short-lived garbage until the collector has to run.
  std::printf("allocating garbage until the semispace fills...\n");
  while (rt.gc_history().empty()) {
    rt.release(rt.alloc(1, 16));
  }
  std::printf("the coprocessor collected automatically after %llu allocations\n",
              static_cast<unsigned long long>(rt.heap().objects_allocated()));

  // Force one more cycle and inspect it.
  const GcCycleStats& s = rt.collect();
  std::printf("\ncollection cycle statistics (8 cores):\n");
  std::printf("  total clock cycles : %llu\n",
              static_cast<unsigned long long>(s.total_cycles));
  std::printf("  objects copied     : %llu\n",
              static_cast<unsigned long long>(s.objects_copied));
  std::printf("  words copied       : %llu\n",
              static_cast<unsigned long long>(s.words_copied));
  std::printf("  memory requests    : %llu\n",
              static_cast<unsigned long long>(s.mem_requests));
  std::printf("  worklist empty     : %.2f%% of cycles\n",
              100.0 * s.worklist_empty_fraction());
  for (const StallReason r :
       {StallReason::kScanLock, StallReason::kFreeLock,
        StallReason::kHeaderLock, StallReason::kBodyLoad,
        StallReason::kHeaderLoad}) {
    std::printf("  %-11s stalls : %.0f cycles/core (%.2f%%)\n",
                std::string(to_string(r)).c_str(), s.mean_stall(r),
                100.0 * s.mean_stall(r) / static_cast<double>(s.total_cycles));
  }

  // The ring survived every move: verify the payload of node 1.
  Runtime::Ref n = rt.load_ptr(first, 0);
  Runtime::Ref pay = rt.load_ptr(n, 1);
  std::printf("\nring intact after %zu collections: payload[0] = %u (expect 1)\n",
              rt.gc_history().size(), rt.get_data(pay, 0));
  return rt.get_data(pay, 0) == 1 ? 0 : 1;
}
