// Scaling study: reproduce the paper's headline experiment interactively.
//
// Usage: ./examples/scaling_study [benchmark] [scale]
//   benchmark  one of: compress cup db javac javacc jflex jlisp search
//              (default: db — the best-scaling workload)
//   scale      live-set scale factor (default 0.25)
//
// Prints the collection-cycle duration and speedup at 1..16 cores plus
// the per-configuration stall anatomy, so the trade-offs behind Figure 5
// are visible benchmark by benchmark.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/coprocessor.hpp"
#include "workloads/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;

  BenchmarkId bench = BenchmarkId::kDb;
  if (argc > 1) {
    bool found = false;
    for (BenchmarkId id : all_benchmarks()) {
      if (benchmark_name(id) == std::string_view(argv[1])) {
        bench = id;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", argv[1]);
      return 2;
    }
  }
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.25;

  std::printf("workload: %s (scale %.3g)\n",
              std::string(benchmark_name(bench)).c_str(), scale);
  {
    const GraphPlan plan = make_benchmark_plan(bench, scale);
    std::printf("  %llu live objects, %llu live words\n",
                static_cast<unsigned long long>(plan.live_nodes()),
                static_cast<unsigned long long>(plan.live_words()));
  }

  std::printf("\n%5s %14s %8s %8s %9s %10s %10s\n", "cores", "cycles",
              "speedup", "empty%", "scan-stl%", "hdrlk-stl%", "load-stl%");
  double base = 0.0;
  for (std::uint32_t cores : {1u, 2u, 4u, 8u, 16u}) {
    Workload w = make_benchmark(bench, scale);
    SimConfig cfg;
    cfg.coprocessor.num_cores = cores;
    Coprocessor coproc(cfg, *w.heap);
    const GcCycleStats s = coproc.collect();
    const double total = static_cast<double>(s.total_cycles);
    if (cores == 1) base = total;
    std::printf("%5u %14llu %8.2f %7.2f%% %8.2f%% %9.2f%% %9.2f%%\n", cores,
                static_cast<unsigned long long>(s.total_cycles), base / total,
                100.0 * s.worklist_empty_fraction(),
                100.0 * s.mean_stall(StallReason::kScanLock) / total,
                100.0 * s.mean_stall(StallReason::kHeaderLock) / total,
                100.0 *
                    (s.mean_stall(StallReason::kBodyLoad) +
                     s.mean_stall(StallReason::kHeaderLoad)) /
                    total);
  }
  std::printf("\nTry: ./scaling_study search   (a workload with no "
              "object-level parallelism)\n");
  return 0;
}
