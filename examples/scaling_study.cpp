// Scaling study: reproduce the paper's headline experiment interactively.
//
// Usage: ./examples/scaling_study [benchmark] [scale] [--json[=path]]
//   benchmark  one of: compress cup db javac javacc jflex jlisp search
//              (default: db — the best-scaling workload)
//   scale      live-set scale factor (default 0.25)
//   --json     also write the sweep as hwgc-bench-v1 JSONL
//              (default path BENCH_scaling_study.json)
//
// Prints the collection-cycle duration and speedup at 1..16 cores plus
// the per-configuration stall anatomy, so the trade-offs behind Figure 5
// are visible benchmark by benchmark.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/coprocessor.hpp"
#include "telemetry/metrics.hpp"
#include "workloads/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace hwgc;

  bool json = false;
  std::string json_path = "BENCH_scaling_study.json";
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json = true;
    } else if (a.rfind("--json=", 0) == 0) {
      json = true;
      json_path = a.substr(7);
    } else {
      positional.push_back(a);
    }
  }

  BenchmarkId bench = BenchmarkId::kDb;
  if (!positional.empty()) {
    bool found = false;
    for (BenchmarkId id : all_benchmarks()) {
      if (benchmark_name(id) == positional[0]) {
        bench = id;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", positional[0].c_str());
      return 2;
    }
  }
  const double scale =
      positional.size() > 1 ? std::strtod(positional[1].c_str(), nullptr) : 0.25;

  std::printf("workload: %s (scale %.3g)\n",
              std::string(benchmark_name(bench)).c_str(), scale);
  {
    const GraphPlan plan = make_benchmark_plan(bench, scale);
    std::printf("  %llu live objects, %llu live words\n",
                static_cast<unsigned long long>(plan.live_nodes()),
                static_cast<unsigned long long>(plan.live_words()));
  }

  std::printf("\n%5s %14s %8s %8s %9s %10s %10s\n", "cores", "cycles",
              "speedup", "empty%", "scan-stl%", "hdrlk-stl%", "load-stl%");
  MetricsRegistry reg;
  double base = 0.0;
  for (std::uint32_t cores : {1u, 2u, 4u, 8u, 16u}) {
    Workload w = make_benchmark(bench, scale);
    SimConfig cfg;
    cfg.coprocessor.num_cores = cores;
    Coprocessor coproc(cfg, *w.heap);
    const GcCycleStats s = coproc.collect();
    MetricsRegistry::Key key;
    key.benchmark = std::string(benchmark_name(bench));
    key.cores = cores;
    key.scale = scale;
    key.seed = 42;  // make_benchmark's default workload seed
    reg.record(key, cfg, s);
    const double total = static_cast<double>(s.total_cycles);
    if (cores == 1) base = total;
    std::printf("%5u %14llu %8.2f %7.2f%% %8.2f%% %9.2f%% %9.2f%%\n", cores,
                static_cast<unsigned long long>(s.total_cycles), base / total,
                100.0 * s.worklist_empty_fraction(),
                100.0 * s.mean_stall(StallReason::kScanLock) / total,
                100.0 * s.mean_stall(StallReason::kHeaderLock) / total,
                100.0 *
                    (s.mean_stall(StallReason::kBodyLoad) +
                     s.mean_stall(StallReason::kHeaderLoad)) /
                    total);
  }
  if (json) {
    if (!reg.write_jsonl(json_path, "scaling_study")) {
      std::fprintf(stderr, "error: failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %zu metric record(s) to %s\n", reg.size(),
                json_path.c_str());
  }
  std::printf("\nTry: ./scaling_study search   (a workload with no "
              "object-level parallelism)\n");
  return 0;
}
