// torture_gc — cross-collector concurrency torture driver.
//
// Sweeps every collector over a shared seeded random-graph corpus and a
// thread-count ladder (including heavy oversubscription), with the
// TortureAgitator injecting barrier-synchronized starts, seeded start
// stagger and yield chaos into the threaded baselines, and seeded mutator
// programs interleaving with the concurrent cycle. Every configuration
// runs through the full conformance oracle (src/conformance/): forwarding
// bijectivity, liveness, density/fragmentation accounting, evacuation
// counters, cross-comparison against the sequential reference, and
// idempotent re-collection.
//
//   torture_gc                           # full matrix, all collectors
//   torture_gc --quick                   # CI preset: small matrix
//   torture_gc --collectors stealing,naive --threads 2,16 --seeds 8
//   torture_gc --collectors chunked --seed-base 42 --threads 16 --seeds 1 -v
//   torture_gc --repro-file repro.txt    # write failing configs for CI
//
// Every run is deterministic per configuration at one thread and
// structurally verified at any width; the exit status is the number of
// failing configurations (capped at 125).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "conformance/conformance.hpp"
#include "conformance/harness.hpp"
#include "workloads/random_graph.hpp"

namespace {

using namespace hwgc;

void usage() {
  std::cout <<
      "usage: torture_gc [options]\n"
      "  --collectors LIST  comma-separated collector names or 'all'\n"
      "                     (coprocessor, sequential, naive, chunked,\n"
      "                      packets, stealing, concurrent, snapshot)\n"
      "  --concurrent-mutator\n"
      "                     preset: the pauseless snapshot collector only,\n"
      "                     sweeping real mutator threads 1,2,4 against\n"
      "                     every (seed, worker) cell\n"
      "  --mutator-threads LIST\n"
      "                     mutator-thread counts for the snapshot\n"
      "                     collector (default 2)\n"
      "  --seeds N          graph seeds per (collector, threads) cell "
      "(default 4)\n"
      "  --seed-base N      first graph seed (default 1)\n"
      "  --threads LIST     comma-separated thread/core counts\n"
      "                     (default 1,2,4,8,16 — 16 oversubscribes)\n"
      "  --nodes N          graph size in objects (default 96)\n"
      "  --torture-seed N   agitator seed base (default derived per case)\n"
      "  --no-torture       disable schedule perturbation\n"
      "  --no-idempotence   skip the re-collection pass\n"
      "  --no-cross         skip cross-comparison vs the sequential "
      "reference\n"
      "  --quick            CI preset: 2 seeds, threads 2,8, 64-node "
      "graphs\n"
      "  --repro-file PATH  append one reproducer line per failing config\n"
      "  -v, --verbose      print every configuration, not just failures\n";
}

struct Options {
  std::vector<CollectorId> collectors = all_collectors();
  std::uint32_t seeds = 4;
  std::uint64_t seed_base = 1;
  std::vector<std::uint32_t> threads = {1, 2, 4, 8, 16};
  std::uint32_t nodes = 96;
  /// Mutator-thread ladder for the snapshot collector; other collectors
  /// ignore the knob (their mutators are simulated, not real threads).
  std::vector<std::uint32_t> mutator_threads = {2};
  std::uint64_t torture_seed = 0;  // 0 = derive per case
  bool torture = true;
  bool idempotence = true;
  bool cross = true;
  bool verbose = false;
  std::string repro_file;
};

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}

bool parse_args(int argc, char** argv, Options& opt) {
  const auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto u64 = [&] { return std::strtoull(next(i), nullptr, 0); };
    if (a == "--collectors") {
      const std::string v = next(i);
      if (v == "all") continue;
      opt.collectors.clear();
      for (const auto& name : split_commas(v)) {
        const auto id = parse_collector(name);
        if (!id) {
          std::cerr << "unknown collector: " << name << "\n";
          return false;
        }
        opt.collectors.push_back(*id);
      }
    } else if (a == "--seeds") {
      opt.seeds = static_cast<std::uint32_t>(u64());
    } else if (a == "--seed-base") {
      opt.seed_base = u64();
    } else if (a == "--threads") {
      opt.threads.clear();
      for (const auto& t : split_commas(next(i))) {
        opt.threads.push_back(
            static_cast<std::uint32_t>(std::strtoul(t.c_str(), nullptr, 0)));
      }
    } else if (a == "--nodes") {
      opt.nodes = static_cast<std::uint32_t>(u64());
    } else if (a == "--concurrent-mutator") {
      opt.collectors = {CollectorId::kSnapshot};
      opt.mutator_threads = {1, 2, 4};
    } else if (a == "--mutator-threads") {
      opt.mutator_threads.clear();
      for (const auto& t : split_commas(next(i))) {
        opt.mutator_threads.push_back(
            static_cast<std::uint32_t>(std::strtoul(t.c_str(), nullptr, 0)));
      }
    } else if (a == "--torture-seed") {
      opt.torture_seed = u64();
    } else if (a == "--no-torture") {
      opt.torture = false;
    } else if (a == "--no-idempotence") {
      opt.idempotence = false;
    } else if (a == "--no-cross") {
      opt.cross = false;
    } else if (a == "--quick") {
      opt.seeds = 2;
      opt.threads = {2, 8};
      opt.nodes = 64;
    } else if (a == "--repro-file") {
      opt.repro_file = next(i);
    } else if (a == "-v" || a == "--verbose") {
      opt.verbose = true;
    } else if (a == "-h" || a == "--help") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << a << "\n";
      usage();
      return false;
    }
  }
  if (opt.collectors.empty() || opt.threads.empty() || opt.seeds == 0 ||
      opt.mutator_threads.empty()) {
    std::cerr << "empty matrix\n";
    return false;
  }
  return true;
}

std::string repro_line(const Options& opt, CollectorId id, std::uint64_t seed,
                       std::uint32_t threads, std::uint32_t mutators) {
  std::ostringstream os;
  os << "torture_gc --collectors " << to_string(id) << " --seed-base " << seed
     << " --seeds 1 --threads " << threads << " --nodes " << opt.nodes;
  if (id == CollectorId::kSnapshot) os << " --mutator-threads " << mutators;
  if (!opt.torture) os << " --no-torture";
  if (opt.torture_seed != 0) os << " --torture-seed " << opt.torture_seed;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  std::uint64_t cases = 0, failures = 0;
  std::ofstream repro;
  if (!opt.repro_file.empty()) {
    repro.open(opt.repro_file, std::ios::app);
    if (!repro) {
      std::cerr << "cannot open repro file " << opt.repro_file << "\n";
      return 2;
    }
  }

  for (CollectorId id : opt.collectors) {
    const CollectorTraits traits = traits_of(id);
    // Single-threaded collectors do not vary with the thread ladder
    // (cores for the simulators still do): skip redundant widths for the
    // sequential reference only.
    std::vector<std::uint32_t> widths = opt.threads;
    if (id == CollectorId::kSequential) widths = {1};

    // Only the snapshot collector spawns real mutator threads; everything
    // else runs the ladder's single default width once.
    const std::vector<std::uint32_t> mutator_widths =
        traits.concurrent_mutator ? opt.mutator_threads
                                  : std::vector<std::uint32_t>{0};

    for (std::uint32_t threads : widths) {
      for (std::uint32_t mutators : mutator_widths) {
        for (std::uint32_t k = 0; k < opt.seeds; ++k) {
          const std::uint64_t seed = opt.seed_base + k;
          RandomGraphConfig g;
          g.nodes = opt.nodes;
          ConformanceCase c;
          c.plan = make_random_plan(seed, g);
          c.harness.threads = threads;
          c.harness.schedule_seed = seed ^ (threads * 0x9e3779b9ULL);
          c.harness.mutator_seed = seed * 31 + threads;
          c.harness.mutator_op_spacing = 1;
          if (traits.concurrent_mutator) c.harness.mutator_threads = mutators;
          c.check_idempotence = opt.idempotence;
          c.cross_compare = opt.cross;
          if (opt.torture && traits.threaded) {
            c.harness.torture.seed =
                opt.torture_seed != 0
                    ? opt.torture_seed
                    : seed * 2654435761ULL + threads;
            c.harness.torture.yield_period = 3;
          }

          ++cases;
          const ConformanceVerdict v = run_conformance_case(id, c);
          if (!v.ok) {
            ++failures;
            std::cerr << "FAIL " << to_string(id) << " seed=" << seed
                      << " threads=" << threads << " mutators=" << mutators
                      << "\n  " << v.summary() << "\n  repro: "
                      << repro_line(opt, id, seed, threads, mutators) << "\n";
            if (repro) {
              repro << repro_line(opt, id, seed, threads, mutators) << "\n";
            }
          } else if (opt.verbose) {
            std::cout << "ok   " << to_string(id) << " seed=" << seed
                      << " threads=" << threads << " live=" << v.live_objects
                      << " copied=" << v.report.objects_copied
                      << " wasted=" << v.report.wasted_words
                      << " sync=" << v.report.sync_ops << "\n";
          }
        }
      }
    }
  }

  std::cout << "torture_gc: " << (cases - failures) << "/" << cases
            << " configurations passed\n";
  if (failures != 0) {
    std::cerr << "torture_gc: " << failures << " FAILING configuration(s)\n";
  }
  return failures > 125 ? 125 : static_cast<int>(failures);
}
