// tracectl — the hwgc-trace-v1 toolbox.
//
//   tracectl record --benchmark javac --out t.jsonl     # one benchmark shape
//   tracectl record --fuzz-seed 77 --out t.jsonl        # adversarial graph
//   tracectl record --churn-seed 7 --out t.jsonl        # shadow-mutator churn
//   tracectl record --lisp --out t.jsonl                # lisp session
//   tracectl corpus [--dir traces]                      # regenerate corpus
//   tracectl replay t.jsonl [--collector stealing|--all] [--seed N]
//   tracectl validate t.jsonl ...                       # digest + structure
//   tracectl stats t.jsonl ...                          # op histogram
//   tracectl minimize --seed N --out t.jsonl            # fuzz -> trace bridge
//   tracectl transform t.jsonl --scale-sizes 2 --out big.jsonl
//
// replay exit status is 0 only if every cycle passed the conformance
// post-structure oracle, every read probe matched its recorded digest, and
// (under --all) every collector produced the same live-graph digest.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trace/corpus.hpp"
#include "trace/recorder.hpp"
#include "trace/replayer.hpp"

using namespace hwgc;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tracectl <command> [options]\n"
      "  record    --out FILE [--binary] and one source:\n"
      "            --benchmark NAME [--scale S] [--seed N] | --fuzz-seed N |\n"
      "            --churn-seed N [--steps N] | --lisp [--fib N] [--range N]\n"
      "  corpus    [--dir DIR]        regenerate the committed corpus\n"
      "  replay    FILE [--collector NAME | --all] [--threads N] [--seed N]\n"
      "  validate  FILE...            verify digest + structural invariants\n"
      "  stats     FILE...            header + op-kind histogram\n"
      "  minimize  --seed N --out FILE [--budget N]   fuzz-case -> trace\n"
      "  transform FILE --scale-sizes F --out FILE [--binary]\n"
      "            rescale object data sizes, re-deriving read digests\n");
  return 2;
}

std::optional<BenchmarkId> parse_benchmark(const std::string& name) {
  for (BenchmarkId id : all_benchmarks()) {
    if (name == benchmark_name(id)) return id;
  }
  return std::nullopt;
}

int cmd_record(int argc, char** argv) {
  std::string out;
  bool binary = false;
  std::string benchmark;
  double scale = 0.002;
  std::uint64_t seed = 42;
  std::optional<std::uint64_t> fuzz_seed;
  std::optional<std::uint64_t> churn_seed;
  std::size_t steps = 600;
  bool lisp = false;
  unsigned fib_n = 8;
  unsigned range_n = 16;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out = argv[++i];
    else if (arg == "--binary") binary = true;
    else if (arg == "--benchmark" && i + 1 < argc) benchmark = argv[++i];
    else if (arg == "--scale" && i + 1 < argc) scale = std::atof(argv[++i]);
    else if (arg == "--seed" && i + 1 < argc) seed = std::strtoull(argv[++i], nullptr, 0);
    else if (arg == "--fuzz-seed" && i + 1 < argc) fuzz_seed = std::strtoull(argv[++i], nullptr, 0);
    else if (arg == "--churn-seed" && i + 1 < argc) churn_seed = std::strtoull(argv[++i], nullptr, 0);
    else if (arg == "--steps" && i + 1 < argc) steps = std::strtoull(argv[++i], nullptr, 0);
    else if (arg == "--lisp") lisp = true;
    else if (arg == "--fib" && i + 1 < argc) fib_n = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (arg == "--range" && i + 1 < argc) range_n = static_cast<unsigned>(std::atoi(argv[++i]));
    else return usage();
  }
  if (out.empty()) return usage();

  Trace trace;
  if (!benchmark.empty()) {
    const auto id = parse_benchmark(benchmark);
    if (!id) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", benchmark.c_str());
      return 2;
    }
    trace = trace_from_benchmark(*id, scale, seed);
  } else if (fuzz_seed) {
    trace = trace_from_fuzz_seed(*fuzz_seed);
  } else if (churn_seed) {
    trace = trace_from_churn(*churn_seed, steps);
  } else if (lisp) {
    trace = trace_from_lisp(fib_n, range_n);
  } else {
    return usage();
  }
  save_trace(out, trace, binary);
  std::printf("%s: %zu events, %zu objects, digest 0x%llx\n", out.c_str(),
              trace.ops.size(), static_cast<std::size_t>(trace.objects()),
              static_cast<unsigned long long>(trace.digest()));
  return 0;
}

int cmd_corpus(int argc, char** argv) {
  std::string dir = "traces";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) dir = argv[++i];
    else return usage();
  }
  const std::size_t n = write_corpus(dir);
  std::printf("wrote %zu corpus traces to %s/\n", n, dir.c_str());
  return 0;
}

int cmd_replay(int argc, char** argv) {
  std::string file;
  std::string collector = "coprocessor";
  bool all = false;
  ReplayConfig cfg;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--collector" && i + 1 < argc) collector = argv[++i];
    else if (arg == "--all") all = true;
    else if (arg == "--threads" && i + 1 < argc) cfg.threads = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    else if (arg == "--seed" && i + 1 < argc) cfg.schedule_seed = std::strtoull(argv[++i], nullptr, 0);
    else if (arg.rfind("--", 0) == 0) return usage();
    else if (file.empty()) file = arg;
    else return usage();
  }
  if (file.empty()) return usage();

  const Trace trace = load_trace(file);
  std::vector<CollectorId> ids;
  if (all) {
    ids = all_collectors();
  } else {
    const auto id = parse_collector(collector);
    if (!id) {
      std::fprintf(stderr, "unknown collector '%s'\n", collector.c_str());
      return 2;
    }
    ids.push_back(*id);
  }

  bool ok = true;
  std::optional<std::uint64_t> reference_digest;
  for (CollectorId id : ids) {
    cfg.collector = id;
    const ReplayResult r = replay_trace(trace, cfg);
    std::printf("%-12s %s\n", to_string(id), r.summary().c_str());
    if (!r.ok) ok = false;
    if (!reference_digest) {
      reference_digest = r.live_graph_digest;
    } else if (*reference_digest != r.live_graph_digest) {
      std::printf("%-12s DIVERGES from %s's live-graph digest\n",
                  to_string(id), to_string(ids.front()));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

int cmd_validate(int argc, char** argv) {
  if (argc == 0) return usage();
  bool ok = true;
  for (int i = 0; i < argc; ++i) {
    try {
      const Trace t = load_trace(argv[i]);
      std::printf("%s: ok (%zu events, digest 0x%llx)\n", argv[i],
                  t.ops.size(),
                  static_cast<unsigned long long>(t.digest()));
    } catch (const TraceError& e) {
      std::printf("%s: %s\n", argv[i], e.what());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

int cmd_stats(int argc, char** argv) {
  if (argc == 0) return usage();
  for (int i = 0; i < argc; ++i) {
    const Trace t = load_trace(argv[i]);
    const TraceHeader& h = t.header;
    std::printf("%s\n", argv[i]);
    std::printf("  name=%s semispace=%llu cores=%u fifo=%u schedule=%s "
                "seed=%llu jitter=%llu\n",
                h.name.c_str(),
                static_cast<unsigned long long>(h.semispace_words), h.cores,
                h.header_fifo_capacity, to_string(h.schedule),
                static_cast<unsigned long long>(h.schedule_seed),
                static_cast<unsigned long long>(h.latency_jitter));
    std::map<TraceOp::Kind, std::size_t> histogram;
    for (const TraceOp& op : t.ops) ++histogram[op.kind];
    std::printf("  %zu events, %llu objects, %llu collect hints, digest "
                "0x%llx\n",
                t.ops.size(), static_cast<unsigned long long>(t.objects()),
                static_cast<unsigned long long>(t.collect_hints()),
                static_cast<unsigned long long>(t.digest()));
    for (const auto& [kind, count] : histogram) {
      std::printf("    %-8s %zu\n", to_string(kind), count);
    }
  }
  return 0;
}

int cmd_minimize(int argc, char** argv) {
  std::optional<std::uint64_t> seed;
  std::string out;
  std::uint32_t budget = 48;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) seed = std::strtoull(argv[++i], nullptr, 0);
    else if (arg == "--out" && i + 1 < argc) out = argv[++i];
    else if (arg == "--budget" && i + 1 < argc) budget = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    else return usage();
  }
  if (!seed || out.empty()) return usage();

  FuzzCase fc = case_from_seed(*seed);
  const FuzzVerdict verdict = run_fuzz_case(fc);
  if (!verdict.ok) {
    std::printf("seed %llu FAILS the differential oracle; minimizing...\n",
                static_cast<unsigned long long>(*seed));
    fc = minimize_case(fc, budget);
  } else {
    std::printf("seed %llu passes the oracle; emitting its trace as-is\n",
                static_cast<unsigned long long>(*seed));
  }
  const Trace trace = trace_from_fuzz_case(fc);
  save_trace(out, trace);
  std::printf("%s: %zu events, %zu objects (case: %s)\n", out.c_str(),
              trace.ops.size(), static_cast<std::size_t>(trace.objects()),
              fc.summary().c_str());
  return verdict.ok ? 0 : 1;
}

int cmd_transform(int argc, char** argv) {
  std::string in;
  std::string out;
  bool binary = false;
  std::optional<double> scale;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale-sizes" && i + 1 < argc) scale = std::atof(argv[++i]);
    else if (arg == "--out" && i + 1 < argc) out = argv[++i];
    else if (arg == "--binary") binary = true;
    else if (arg.rfind("--", 0) == 0) return usage();
    else if (in.empty()) in = arg;
    else return usage();
  }
  if (in.empty() || out.empty() || !scale) return usage();

  const Trace trace = load_trace(in);
  const Trace scaled = scale_trace_sizes(trace, *scale);
  save_trace(out, scaled, binary);
  std::printf("%s: %zu events -> %zu, semispace %llu -> %llu, "
              "digest 0x%llx -> 0x%llx\n",
              out.c_str(), trace.ops.size(), scaled.ops.size(),
              static_cast<unsigned long long>(trace.header.semispace_words),
              static_cast<unsigned long long>(scaled.header.semispace_words),
              static_cast<unsigned long long>(trace.digest()),
              static_cast<unsigned long long>(scaled.digest()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "record") return cmd_record(argc - 2, argv + 2);
    if (cmd == "corpus") return cmd_corpus(argc - 2, argv + 2);
    if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
    if (cmd == "validate") return cmd_validate(argc - 2, argv + 2);
    if (cmd == "stats") return cmd_stats(argc - 2, argv + 2);
    if (cmd == "minimize") return cmd_minimize(argc - 2, argv + 2);
    if (cmd == "transform") return cmd_transform(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracectl: %s\n", e.what());
    return 1;
  }
  return usage();
}
