#include "baselines/chunked_copying.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "baselines/termination.hpp"

namespace hwgc {

namespace {

struct ChunkRange {
  Addr begin = kNullPtr;
  Addr end = kNullPtr;  // one past the last allocated word
};

struct SharedState {
  std::atomic<Addr> region_free{0};  // next unclaimed tospace word
  Addr region_end = 0;
  std::mutex stack_mutex;
  std::vector<ChunkRange> sealed;  // unscanned chunks
};

struct ThreadState {
  // Private allocation chunk.
  Addr chunk_base = kNullPtr;
  Addr chunk_cur = kNullPtr;
  Addr chunk_end = kNullPtr;
  // Prefix of the private chunk that has already been self-scanned.
  Addr self_scanned = kNullPtr;
  ThreadCounters tc;
};

}  // namespace

ParallelGcStats ChunkedCopyingCollector::collect(Heap& heap) {
  const auto t0 = std::chrono::steady_clock::now();
  WordMemory& mem = heap.memory();
  SharedState st;
  st.region_free.store(heap.layout().tospace_base(),
                       std::memory_order_relaxed);
  st.region_end = heap.layout().tospace_end();

  TerminationDetector term(cfg_.threads);
  std::vector<ThreadState> states(cfg_.threads);

  // Small heaps cannot afford a full-size chunk per thread: clamp so that
  // total chunk slack stays well below the semispace headroom.
  const Word chunk_words = std::max<Word>(
      16, std::min<Word>(cfg_.chunk_words,
                         heap.layout().semispace_words() /
                             (4 * cfg_.threads)));

  auto grab_region = [&](Word words) -> Addr {
    const Addr a = st.region_free.fetch_add(words, std::memory_order_acq_rel);
    if (a + words > st.region_end) {
      throw std::runtime_error(
          "chunked collector: tospace exhausted (fragmentation exceeded "
          "heap headroom)");
    }
    return a;
  };

  auto seal_chunk = [&](ThreadState& ts) {
    // Publish the not-yet-self-scanned suffix of the private chunk.
    if (ts.self_scanned < ts.chunk_cur) {
      {
        std::lock_guard<std::mutex> g(st.stack_mutex);
        ++ts.tc.mutex_acquisitions;
        st.sealed.push_back(ChunkRange{ts.self_scanned, ts.chunk_cur});
      }
      term.published();
    }
    ts.tc.wasted_words += ts.chunk_end - ts.chunk_cur;
    ts.chunk_base = ts.chunk_cur = ts.chunk_end = ts.self_scanned = kNullPtr;
  };

  auto alloc = [&](ThreadState& ts, Word words) -> Addr {
    if (words > chunk_words) {
      // Jumbo object: dedicated region, published as its own chunk by the
      // caller once the copy is complete.
      return grab_region(words);
    }
    if (ts.chunk_cur + words > ts.chunk_end || ts.chunk_base == kNullPtr) {
      if (ts.chunk_base != kNullPtr) seal_chunk(ts);
      ts.chunk_base = grab_region(chunk_words);
      ts.chunk_cur = ts.self_scanned = ts.chunk_base;
      ts.chunk_end = ts.chunk_base + chunk_words;
    }
    const Addr a = ts.chunk_cur;
    ts.chunk_cur += words;
    return a;
  };

  // Eager evacuation with the sentinel-CAS protocol (parallel_common.hpp).
  auto evacuate = [&](ThreadState& ts, Addr obj) -> Addr {
    for (;;) {
      Addr link = mem.load_atomic(link_addr(obj));
      if (link == kBusyForwarding) continue;  // another thread is copying
      if (link != kNullPtr) return link;
      ++ts.tc.cas_ops;
      Addr expected = kNullPtr;
      if (!mem.cas(link_addr(obj), expected, kBusyForwarding)) {
        ++ts.tc.cas_failures;
        continue;
      }
      const Word attrs = mem.load_atomic(attributes_addr(obj));
      const Word size = object_words(attrs);
      const bool jumbo = size > chunk_words;
      const Addr copy = alloc(ts, size);
      detail::copy_object_body(mem, obj, copy, attrs);
      mem.store_atomic(attributes_addr(obj), attrs | kForwardedBit);
      mem.store_atomic(link_addr(obj), copy, std::memory_order_release);
      ++ts.tc.objects;
      if (jumbo) {
        {
          std::lock_guard<std::mutex> g(st.stack_mutex);
          ++ts.tc.mutex_acquisitions;
          st.sealed.push_back(ChunkRange{copy, copy + size});
        }
        term.published();
      }
      return copy;
    }
  };

  // Scans one copy: forwards its pointer fields and blackens it (the body
  // was copied eagerly at evacuation).
  auto scan_object = [&](ThreadState& ts, Addr copy) {
    const Word attrs = mem.load_atomic(attributes_addr(copy));
    const Word pi = pi_of(attrs);
    for (Word i = 0; i < pi; ++i) {
      const Addr child = mem.load_atomic(pointer_field_addr(copy, i),
                                         std::memory_order_relaxed);
      if (child != kNullPtr && heap.layout().in_fromspace(child)) {
        mem.store_atomic(pointer_field_addr(copy, i), evacuate(ts, child),
                         std::memory_order_relaxed);
      }
    }
    mem.store_atomic(attributes_addr(copy), attrs | kBlackBit);
  };

  auto scan_range = [&](ThreadState& ts, Addr begin, Addr end) {
    Addr cur = begin;
    while (cur < end) {
      const Word size = object_words(mem.load_atomic(attributes_addr(cur)));
      scan_object(ts, cur);
      cur += size;
    }
  };

  // Roots (Core 1's job), using thread state 0 before workers start.
  for (Addr& root : heap.roots()) {
    if (root != kNullPtr) root = evacuate(states[0], root);
  }

  TortureAgitator agitator(cfg_.torture, cfg_.threads);
  auto worker = [&](std::uint32_t tid) {
    ThreadState& ts = states[tid];
    agitator.worker_start(tid);
    for (;;) {
      agitator.chaos(tid);
      // 1. Prefer a sealed chunk from the shared stack.
      ChunkRange range{};
      {
        std::lock_guard<std::mutex> g(st.stack_mutex);
        ++ts.tc.mutex_acquisitions;
        if (!st.sealed.empty()) {
          range = st.sealed.back();
          st.sealed.pop_back();
        }
      }
      if (range.begin != kNullPtr) {
        term.claimed();
        scan_range(ts, range.begin, range.end);
        continue;
      }
      // 2. Otherwise self-scan the private chunk (it feeds itself: scanning
      //    may evacuate into the same chunk). self_scanned is advanced
      //    *before* scanning each object: if scanning fills the chunk and
      //    alloc() seals it, the sealed range must exclude the object in
      //    flight — after the seal, the chunk fields describe a fresh chunk
      //    and the loop carries on there.
      if (ts.chunk_base != kNullPtr && ts.self_scanned < ts.chunk_cur) {
        while (ts.chunk_base != kNullPtr && ts.self_scanned < ts.chunk_cur) {
          const Addr obj = ts.self_scanned;
          ts.self_scanned +=
              object_words(mem.load_atomic(attributes_addr(obj)));
          scan_object(ts, obj);
        }
        continue;
      }
      // 3. Nothing visible: try to terminate.
      term.go_idle();
      for (;;) {
        if (term.finished()) return;
        if (term.outstanding() > 0) {
          term.go_busy();
          break;
        }
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg_.threads);
  for (std::uint32_t t = 0; t < cfg_.threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  // The final private chunk of each worker is never sealed; its tail is
  // fragmentation all the same. Without this, words_copied would overcount
  // by exactly these tails and the conformance oracle's accounting check
  // (words_copied == live words) would fail.
  for (auto& s : states) {
    if (s.chunk_base != kNullPtr) s.tc.wasted_words += s.chunk_end - s.chunk_cur;
  }

  ParallelGcStats stats;
  stats.threads = cfg_.threads;
  const Addr high_water = st.region_free.load(std::memory_order_acquire);
  heap.flip();
  heap.set_alloc_ptr(high_water);
  merge(stats, states.empty() ? std::vector<ThreadCounters>{}
                              : [&] {
                                  std::vector<ThreadCounters> v;
                                  v.reserve(states.size());
                                  for (auto& s : states) v.push_back(s.tc);
                                  return v;
                                }());
  stats.words_copied = (high_water - heap.layout().current_base()) -
                       stats.wasted_words;
  stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace hwgc
