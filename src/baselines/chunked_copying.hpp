// Chunk-based parallel copying collector, after Imai & Tick (Section III).
//
// Work distribution granularity is a fixed-size tospace *chunk* instead of
// a single object: each thread fills a private allocation chunk (bump
// pointer, no synchronization) and scans sealed chunks popped from a
// shared stack (one mutex acquisition per chunk, not per object).
//
// The costs the paper attributes to this class:
//   * fragmentation — the unusable tail of every sealed chunk
//     (ParallelGcStats::wasted_words), cancelling part of a copying
//     collector's compaction benefit;
//   * an auxiliary dynamic data structure (the chunk stack) apart from the
//     heap;
//   * work imbalance at chunk granularity.
// Per-object synchronization does not disappear entirely: evacuation
// dedup still requires a CAS per first-visit of an object.
#pragma once

#include <cstdint>

#include "baselines/parallel_common.hpp"
#include "heap/heap.hpp"

namespace hwgc {

class ChunkedCopyingCollector {
 public:
  struct Config {
    std::uint32_t threads = 8;
    Word chunk_words = 2048;
    /// Schedule perturbation for the torture harness (parallel_common.hpp).
    TortureKnobs torture{};
  };

  ChunkedCopyingCollector() : ChunkedCopyingCollector(Config{}) {}
  explicit ChunkedCopyingCollector(Config cfg) : cfg_(cfg) {}

  ParallelGcStats collect(Heap& heap);

 private:
  Config cfg_;
};

}  // namespace hwgc
