#include "baselines/naive_parallel.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace hwgc {

namespace {

/// Test-and-test-and-set spin lock; stands in for one header-lock stripe.
class SpinLock {
 public:
  void lock(ThreadCounters& tc) {
    ++tc.mutex_acquisitions;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      ++tc.cas_failures;
      while (flag_.test(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

struct SharedState {
  explicit SharedState(std::uint32_t stripes) : header_locks(stripes) {}

  std::mutex scan_mutex;
  std::mutex free_mutex;
  std::vector<SpinLock> header_locks;
  std::atomic<Addr> scan{0};
  std::atomic<Addr> free{0};
  std::atomic<std::uint32_t> busy{0};
  std::atomic<bool> done{false};
};

}  // namespace

ParallelGcStats NaiveParallelCheney::collect(Heap& heap) {
  const auto t0 = std::chrono::steady_clock::now();
  WordMemory& mem = heap.memory();
  SharedState st(cfg_.header_lock_stripes);
  const Addr tospace_base = heap.layout().tospace_base();
  st.scan.store(tospace_base, std::memory_order_relaxed);
  st.free.store(tospace_base, std::memory_order_relaxed);

  std::vector<ThreadCounters> counters(cfg_.threads);

  auto stripe = [&](Addr a) -> SpinLock& {
    return st.header_locks[a % st.header_locks.size()];
  };

  // Evacuates `obj` under its header stripe; returns the tospace copy.
  // Mirrors the Section IV pseudo-code: lock header -> check mark ->
  // (lock free -> install forwarding + backlink + bump) -> unlock.
  auto evacuate = [&](Addr obj, ThreadCounters& tc) -> Addr {
    SpinLock& l = stripe(obj);
    l.lock(tc);
    const Word attrs = mem.load_atomic(attributes_addr(obj));
    Addr fwd;
    if (is_forwarded(attrs)) {
      fwd = mem.load_atomic(link_addr(obj));
    } else {
      std::lock_guard<std::mutex> g(st.free_mutex);
      ++tc.mutex_acquisitions;
      fwd = st.free.load(std::memory_order_relaxed);
      const Word size = object_words(attrs);
      assert(fwd + size <= heap.layout().tospace_end());
      // Gray 1: forwarding pointer in fromspace, gray frame in tospace.
      mem.store_atomic(attributes_addr(obj), attrs | kForwardedBit);
      mem.store_atomic(link_addr(obj), fwd);
      mem.store_atomic(attributes_addr(fwd), attrs);
      mem.store_atomic(link_addr(fwd), obj);
      st.free.store(fwd + size, std::memory_order_release);
      ++tc.objects;
    }
    l.unlock();
    return fwd;
  };

  // Roots: the main thread plays Core 1 (Section V-E).
  for (Addr& root : heap.roots()) {
    if (root != kNullPtr) root = evacuate(root, counters[0]);
  }

  TortureAgitator agitator(cfg_.torture, cfg_.threads);
  auto worker = [&](std::uint32_t tid) {
    ThreadCounters& tc = counters[tid];
    agitator.worker_start(tid);
    for (;;) {
      agitator.chaos(tid);
      if (st.done.load(std::memory_order_acquire)) return;
      Addr frame, orig;
      Word attrs;
      {
        std::lock_guard<std::mutex> g(st.scan_mutex);
        ++tc.mutex_acquisitions;
        const Addr scan = st.scan.load(std::memory_order_relaxed);
        if (scan == st.free.load(std::memory_order_acquire)) {
          // Termination needs scan == free AND all busy flags clear — and
          // the hardware SB evaluates that conjunction atomically in one
          // cycle (Section IV). In software the two loads are separate, so
          // after observing busy == 0 we must re-read free: a thread that
          // finished in between may have evacuated more objects before
          // clearing its flag, and our first free read predates them.
          if (st.busy.load(std::memory_order_acquire) == 0 &&
              scan == st.free.load(std::memory_order_acquire)) {
            st.done.store(true, std::memory_order_release);
            return;
          }
          continue;  // worklist momentarily empty; retry
        }
        frame = scan;
        attrs = mem.load_atomic(attributes_addr(frame));
        orig = mem.load_atomic(link_addr(frame));
        st.busy.fetch_add(1, std::memory_order_acq_rel);
        st.scan.store(frame + object_words(attrs),
                      std::memory_order_relaxed);
      }
      // Gray 2: copy the body, evacuating referenced white objects.
      const Word pi = pi_of(attrs);
      const Word delta = delta_of(attrs);
      for (Word i = 0; i < pi; ++i) {
        const Addr child = mem.load_atomic(pointer_field_addr(orig, i),
                                           std::memory_order_relaxed);
        const Addr fwd = child == kNullPtr ? kNullPtr : evacuate(child, tc);
        mem.store_atomic(pointer_field_addr(frame, i), fwd,
                         std::memory_order_relaxed);
      }
      for (Word j = 0; j < delta; ++j) {
        mem.store_atomic(data_field_addr(frame, pi, j),
                         mem.load_atomic(data_field_addr(orig, pi, j),
                                         std::memory_order_relaxed),
                         std::memory_order_relaxed);
      }
      mem.store_atomic(attributes_addr(frame), attrs | kBlackBit);
      mem.store_atomic(link_addr(frame), kNullPtr);
      st.busy.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg_.threads);
  for (std::uint32_t t = 0; t < cfg_.threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  const Addr free_final = st.free.load(std::memory_order_acquire);
  heap.flip();
  heap.set_alloc_ptr(free_final);

  ParallelGcStats stats;
  stats.threads = cfg_.threads;
  stats.words_copied = free_final - tospace_base;
  merge(stats, counters);
  stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace hwgc
