// The "ideal" fine-grained algorithm of Section IV, implemented with
// *software* synchronization primitives on the host.
//
// This is the straw man the paper's Introduction describes as
// "prohibitively expensive on standard shared memory based platforms":
// object-by-object work distribution from a single shared worklist, with
//   * a mutex around the scan pointer (one acquisition per object),
//   * striped spin locks standing in for the header-lock CAM (one
//     acquisition per pointer field), and
//   * a mutex around the free pointer (one acquisition per evacuation).
// The copy itself is lazy (backlink + deferred body copy), exactly like
// the coprocessor, so tospace stays densely packed in Cheney order.
//
// Compare its sync-op counters and scaling against the chunked /
// work-packet / work-stealing baselines (coarser granularity, Section III)
// in bench_baselines_software.
#pragma once

#include <cstdint>

#include "baselines/parallel_common.hpp"
#include "heap/heap.hpp"

namespace hwgc {

class NaiveParallelCheney {
 public:
  struct Config {
    std::uint32_t threads = 8;
    /// Number of striped header spin locks emulating the per-core header
    /// lock registers. More stripes = fewer false conflicts.
    std::uint32_t header_lock_stripes = 1024;
    /// Schedule perturbation for the torture harness (parallel_common.hpp).
    TortureKnobs torture{};
  };

  NaiveParallelCheney() : NaiveParallelCheney(Config{}) {}
  explicit NaiveParallelCheney(Config cfg) : cfg_(cfg) {}

  /// Runs one full collection cycle with cfg.threads worker threads.
  ParallelGcStats collect(Heap& heap);

 private:
  Config cfg_;
};

}  // namespace hwgc
