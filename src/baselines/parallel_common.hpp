// Shared machinery for the host-threaded software baseline collectors.
//
// These collectors reproduce the classes of parallel copying GC the paper
// reviews in Section III, running as real std::threads over the same heap
// layout the coprocessor collects. They exist to demonstrate the paper's
// motivating claim: at object-level granularity, software synchronization
// (mutexes / CAS per object) is so frequent that collectors must trade
// balance for coarser work units — chunks, packets, stolen deque segments.
//
// All software baselines copy object bodies *eagerly* at evacuation time
// (the standard software technique); the paper's lazy Gray-1/Gray-2 split
// is a hardware refinement enabled by the backlink + header FIFO. The
// forwarding-pointer installation protocol is the usual sentinel CAS:
//
//   link == 0         : not evacuated, unclaimed
//   link == kBusy     : some thread is copying the object right now
//   link == addr      : forwarded to `addr`
//
// Claiming thread: CAS(link, 0 -> kBusy), copy, publish link = addr.
// Others: spin while kBusy. The attributes word gets kForwardedBit only
// after publication (it is never read for synchronization here).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "heap/heap.hpp"
#include "heap/object_model.hpp"
#include "sim/rng.hpp"

namespace hwgc {

/// Schedule-perturbation knobs for the concurrency torture harness
/// (examples/torture_gc.cpp). The software collectors must be correct under
/// ANY host thread schedule; these knobs deliberately push the runs into
/// unlikely corners of the schedule space:
///   * a start barrier releases all workers at once (maximum contention on
///     the first claims, instead of thread 0 finishing before thread N-1
///     even launches — the common case on oversubscribed machines);
///   * seeded per-thread start stagger then skews the released pack, so
///     some workers race the termination detector of others;
///   * chaos yields hand the OS scheduler a seeded stream of extra
///     preemption points inside the work loops.
/// A zero seed disables everything: production configs pay one branch.
struct TortureKnobs {
  std::uint64_t seed = 0;  ///< 0 disables all perturbation
  bool start_barrier = true;
  /// Maximum seeded busy-spin iterations a worker inserts between the
  /// barrier release and its first claim.
  std::uint32_t max_start_stagger = 512;
  /// Roughly one forced yield per this many chaos points (0 = no yields).
  std::uint32_t yield_period = 5;

  bool enabled() const noexcept { return seed != 0; }
};

/// Per-collection agitator realizing TortureKnobs. Shared by all workers of
/// one collection; per-thread RNG state keeps chaos decisions data-race-free
/// and deterministic per (seed, tid) — though what the OS scheduler does
/// with the injected yields is of course not.
class TortureAgitator {
 public:
  TortureAgitator(const TortureKnobs& knobs, std::uint32_t workers)
      : knobs_(knobs), workers_(workers), state_(workers) {
    for (std::uint32_t t = 0; t < workers; ++t) {
      state_[t].s = knobs.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1));
    }
  }

  /// Called by each worker before its first claim: rendezvous with the
  /// other workers, then burn a seeded number of spin iterations.
  void worker_start(std::uint32_t tid) {
    if (!knobs_.enabled()) return;
    if (knobs_.start_barrier && workers_ > 1) {
      arrived_.fetch_add(1, std::memory_order_acq_rel);
      while (arrived_.load(std::memory_order_acquire) < workers_) {
        std::this_thread::yield();  // single-CPU hosts need the handoff
      }
    }
    if (knobs_.max_start_stagger > 0) {
      const std::uint64_t spins =
          splitmix64(state_[tid].s) % knobs_.max_start_stagger;
      for (std::uint64_t i = 0; i < spins; ++i) {
        pause_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// A chaos point: called at the top of a worker's claim loop; yields the
  /// thread's quantum with probability 1/yield_period.
  void chaos(std::uint32_t tid) {
    if (!knobs_.enabled() || knobs_.yield_period == 0) return;
    if (splitmix64(state_[tid].s) % knobs_.yield_period == 0) {
      std::this_thread::yield();
    }
  }

 private:
  struct alignas(64) PerThread {
    std::uint64_t s = 0;
  };

  TortureKnobs knobs_;
  std::uint32_t workers_;
  std::vector<PerThread> state_;
  std::atomic<std::uint32_t> arrived_{0};
  /// Dummy target so the stagger spin is not optimized away.
  std::atomic<std::uint64_t> pause_{0};
};

/// Statistics common to all software parallel collectors. The
/// synchronization counters quantify the Section I/III argument: compare
/// sync_ops against objects_copied to see the per-object burden.
struct ParallelGcStats {
  std::uint64_t objects_copied = 0;
  std::uint64_t words_copied = 0;      // live words (excludes waste)
  std::uint64_t wasted_words = 0;      // fragmentation: chunk/LAB tails
  std::uint64_t cas_ops = 0;           // CAS instructions executed
  std::uint64_t cas_failures = 0;      // lost races / retries
  std::uint64_t mutex_acquisitions = 0;
  std::uint64_t steal_attempts = 0;    // work-stealing only
  double elapsed_ms = 0.0;
  std::uint32_t threads = 0;
};

/// Sentinel stored in the link word while an object is being copied.
inline constexpr Addr kBusyForwarding = ~Addr{0};

namespace detail {

/// Copies header attributes + body of `obj` to `copy` (eager copy).
inline void copy_object_body(WordMemory& mem, Addr obj, Addr copy,
                             Word attrs) {
  mem.store_atomic(attributes_addr(copy), attrs, std::memory_order_relaxed);
  mem.store_atomic(link_addr(copy), kNullPtr, std::memory_order_relaxed);
  const Word body = pi_of(attrs) + delta_of(attrs);
  for (Word i = 0; i < body; ++i) {
    mem.store_atomic(copy + kHeaderWords + i,
                     mem.load_atomic(obj + kHeaderWords + i,
                                     std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
}

}  // namespace detail

/// Per-thread accounting, merged into ParallelGcStats at the end.
struct ThreadCounters {
  std::uint64_t objects = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t mutex_acquisitions = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t wasted_words = 0;
};

inline void merge(ParallelGcStats& stats,
                  const std::vector<ThreadCounters>& per_thread) {
  for (const auto& t : per_thread) {
    stats.objects_copied += t.objects;
    stats.cas_ops += t.cas_ops;
    stats.cas_failures += t.cas_failures;
    stats.mutex_acquisitions += t.mutex_acquisitions;
    stats.steal_attempts += t.steal_attempts;
    stats.wasted_words += t.wasted_words;
  }
}

}  // namespace hwgc
