// Shared machinery for the host-threaded software baseline collectors.
//
// These collectors reproduce the classes of parallel copying GC the paper
// reviews in Section III, running as real std::threads over the same heap
// layout the coprocessor collects. They exist to demonstrate the paper's
// motivating claim: at object-level granularity, software synchronization
// (mutexes / CAS per object) is so frequent that collectors must trade
// balance for coarser work units — chunks, packets, stolen deque segments.
//
// All software baselines copy object bodies *eagerly* at evacuation time
// (the standard software technique); the paper's lazy Gray-1/Gray-2 split
// is a hardware refinement enabled by the backlink + header FIFO. The
// forwarding-pointer installation protocol is the usual sentinel CAS:
//
//   link == 0         : not evacuated, unclaimed
//   link == kBusy     : some thread is copying the object right now
//   link == addr      : forwarded to `addr`
//
// Claiming thread: CAS(link, 0 -> kBusy), copy, publish link = addr.
// Others: spin while kBusy. The attributes word gets kForwardedBit only
// after publication (it is never read for synchronization here).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "heap/heap.hpp"
#include "heap/object_model.hpp"

namespace hwgc {

/// Statistics common to all software parallel collectors. The
/// synchronization counters quantify the Section I/III argument: compare
/// sync_ops against objects_copied to see the per-object burden.
struct ParallelGcStats {
  std::uint64_t objects_copied = 0;
  std::uint64_t words_copied = 0;      // live words (excludes waste)
  std::uint64_t wasted_words = 0;      // fragmentation: chunk/LAB tails
  std::uint64_t cas_ops = 0;           // CAS instructions executed
  std::uint64_t cas_failures = 0;      // lost races / retries
  std::uint64_t mutex_acquisitions = 0;
  std::uint64_t steal_attempts = 0;    // work-stealing only
  double elapsed_ms = 0.0;
  std::uint32_t threads = 0;
};

/// Sentinel stored in the link word while an object is being copied.
inline constexpr Addr kBusyForwarding = ~Addr{0};

namespace detail {

/// Copies header attributes + body of `obj` to `copy` (eager copy).
inline void copy_object_body(WordMemory& mem, Addr obj, Addr copy,
                             Word attrs) {
  mem.store_atomic(attributes_addr(copy), attrs, std::memory_order_relaxed);
  mem.store_atomic(link_addr(copy), kNullPtr, std::memory_order_relaxed);
  const Word body = pi_of(attrs) + delta_of(attrs);
  for (Word i = 0; i < body; ++i) {
    mem.store_atomic(copy + kHeaderWords + i,
                     mem.load_atomic(obj + kHeaderWords + i,
                                     std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
}

}  // namespace detail

/// Per-thread accounting, merged into ParallelGcStats at the end.
struct ThreadCounters {
  std::uint64_t objects = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t mutex_acquisitions = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t wasted_words = 0;
};

inline void merge(ParallelGcStats& stats,
                  const std::vector<ThreadCounters>& per_thread) {
  for (const auto& t : per_thread) {
    stats.objects_copied += t.objects;
    stats.cas_ops += t.cas_ops;
    stats.cas_failures += t.cas_failures;
    stats.mutex_acquisitions += t.mutex_acquisitions;
    stats.steal_attempts += t.steal_attempts;
    stats.wasted_words += t.wasted_words;
  }
}

}  // namespace hwgc
