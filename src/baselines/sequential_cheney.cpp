#include "baselines/sequential_cheney.hpp"

#include <cassert>

#include "heap/object_model.hpp"

namespace hwgc {

namespace {

/// Evacuates `obj` (if not already forwarded) and returns its tospace copy.
Addr evacuate(Heap& heap, Addr obj, Addr& free, SequentialGcStats& stats) {
  WordMemory& m = heap.memory();
  const Word attrs = m.load(attributes_addr(obj));
  if (is_forwarded(attrs)) return m.load(link_addr(obj));

  const Word size = object_words(attrs);
  const Addr copy = free;
  free += size;
  assert(free <= heap.layout().tospace_end() && "tospace overflow");

  // Gray 1 (Figure 4): forwarding pointer in fromspace, backlink + shape in
  // the tospace frame. The body is copied later, when scan reaches it.
  m.store(attributes_addr(obj), attrs | kForwardedBit);
  m.store(link_addr(obj), copy);
  m.store(attributes_addr(copy), attrs);
  m.store(link_addr(copy), obj);
  ++stats.objects_copied;
  return copy;
}

}  // namespace

SequentialGcStats SequentialCheney::collect(Heap& heap) {
  SequentialGcStats stats;
  WordMemory& m = heap.memory();
  Addr scan = heap.layout().tospace_base();
  Addr free = scan;

  for (Addr& root : heap.roots()) {
    if (root != kNullPtr) root = evacuate(heap, root, free, stats);
  }

  while (scan < free) {
    const Word attrs = m.load(attributes_addr(scan));
    const Addr orig = m.load(link_addr(scan));
    const Word pi = pi_of(attrs);
    const Word delta = delta_of(attrs);
    for (Word i = 0; i < pi; ++i) {
      const Addr child = m.load(pointer_field_addr(orig, i));
      const Addr fwd =
          child == kNullPtr ? kNullPtr : evacuate(heap, child, free, stats);
      m.store(pointer_field_addr(scan, i), fwd);
      ++stats.pointers_forwarded;
    }
    for (Word j = 0; j < delta; ++j) {
      m.store(data_field_addr(scan, pi, j),
              m.load(data_field_addr(orig, pi, j)));
    }
    m.store(attributes_addr(scan), attrs | kBlackBit);  // blacken
    m.store(link_addr(scan), kNullPtr);
    scan += object_words(attrs);
  }

  stats.words_copied = free - heap.layout().tospace_base();
  heap.flip();
  heap.set_alloc_ptr(free);
  return stats;
}

}  // namespace hwgc
