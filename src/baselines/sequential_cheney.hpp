// Reference implementation: Cheney's sequential copying collector
// (paper Section II), running functionally on the host.
//
// This is the algorithmic ground truth the simulator and all parallel
// baselines are checked against, and the natural "1 core" software
// comparator (the paper notes its single-core coprocessor configuration
// performs like the original sequential algorithm).
#pragma once

#include <cstdint>

#include "heap/heap.hpp"

namespace hwgc {

struct SequentialGcStats {
  std::uint64_t objects_copied = 0;
  std::uint64_t words_copied = 0;
  std::uint64_t pointers_forwarded = 0;
};

class SequentialCheney {
 public:
  /// Runs one collection cycle: copies everything reachable from the roots
  /// into tospace, updates the roots, flips the heap and publishes the new
  /// allocation frontier.
  static SequentialGcStats collect(Heap& heap);
};

}  // namespace hwgc
