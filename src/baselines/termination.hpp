// Distributed termination detection for the software parallel collectors.
//
// The invariant all collectors maintain: a worker publishes every piece of
// work it produced (increments `outstanding`) *before* it declares itself
// idle. Then `busy == 0 && outstanding == 0` implies no unscanned object
// exists anywhere — the same condition the coprocessor's ScanState busy
// bits check in hardware (Section IV), detected here with two atomics.
#pragma once

#include <atomic>
#include <cstdint>

namespace hwgc {

class TerminationDetector {
 public:
  explicit TerminationDetector(std::uint32_t workers) : busy_(workers) {}

  /// Work accounting: one unit per published-but-unclaimed work item
  /// (chunk, packet or deque entry, depending on the collector).
  void published(std::uint64_t n = 1) noexcept {
    outstanding_.fetch_add(n, std::memory_order_acq_rel);
  }
  void claimed(std::uint64_t n = 1) noexcept {
    outstanding_.fetch_sub(n, std::memory_order_acq_rel);
  }
  std::uint64_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_acquire);
  }

  /// Worker state transitions. A worker must only go_idle() after
  /// publishing all produced work.
  void go_idle() noexcept { busy_.fetch_sub(1, std::memory_order_acq_rel); }
  void go_busy() noexcept { busy_.fetch_add(1, std::memory_order_acq_rel); }

  /// Global termination test, valid from an idle worker.
  bool finished() const noexcept {
    return busy_.load(std::memory_order_acquire) == 0 &&
           outstanding_.load(std::memory_order_acquire) == 0;
  }

 private:
  std::atomic<std::uint32_t> busy_;
  std::atomic<std::uint64_t> outstanding_{0};
};

}  // namespace hwgc
