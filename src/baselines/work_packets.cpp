#include "baselines/work_packets.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "baselines/termination.hpp"

namespace hwgc {

namespace {

using Packet = std::vector<Addr>;

struct SharedState {
  std::atomic<Addr> free{0};
  Addr end = 0;
  std::mutex pool_mutex;
  std::vector<Packet> full_packets;
};

}  // namespace

ParallelGcStats WorkPacketCollector::collect(Heap& heap) {
  const auto t0 = std::chrono::steady_clock::now();
  WordMemory& mem = heap.memory();
  SharedState st;
  st.free.store(heap.layout().tospace_base(), std::memory_order_relaxed);
  st.end = heap.layout().tospace_end();

  TerminationDetector term(cfg_.threads);
  std::vector<ThreadCounters> counters(cfg_.threads);
  std::vector<Packet> out_packets(cfg_.threads);
  for (auto& p : out_packets) p.reserve(cfg_.packet_capacity);

  auto publish = [&](std::uint32_t tid) {
    if (out_packets[tid].empty()) return;
    {
      std::lock_guard<std::mutex> g(st.pool_mutex);
      ++counters[tid].mutex_acquisitions;
      st.full_packets.push_back(std::move(out_packets[tid]));
    }
    out_packets[tid] = Packet();
    out_packets[tid].reserve(cfg_.packet_capacity);
    term.published();
  };

  // Eager evacuation (sentinel CAS); the winner queues the copy for
  // scanning in its output packet.
  auto evacuate = [&](std::uint32_t tid, Addr obj) -> Addr {
    ThreadCounters& tc = counters[tid];
    for (;;) {
      Addr link = mem.load_atomic(link_addr(obj));
      if (link == kBusyForwarding) continue;
      if (link != kNullPtr) return link;
      ++tc.cas_ops;
      Addr expected = kNullPtr;
      if (!mem.cas(link_addr(obj), expected, kBusyForwarding)) {
        ++tc.cas_failures;
        continue;
      }
      const Word attrs = mem.load_atomic(attributes_addr(obj));
      const Word size = object_words(attrs);
      const Addr copy = st.free.fetch_add(size, std::memory_order_acq_rel);
      if (copy + size > st.end) {
        throw std::runtime_error("work-packet collector: tospace exhausted");
      }
      detail::copy_object_body(mem, obj, copy, attrs);
      mem.store_atomic(attributes_addr(obj), attrs | kForwardedBit);
      mem.store_atomic(link_addr(obj), copy, std::memory_order_release);
      ++tc.objects;
      out_packets[tid].push_back(copy);
      if (out_packets[tid].size() >= cfg_.packet_capacity) publish(tid);
      return copy;
    }
  };

  auto scan_copy = [&](std::uint32_t tid, Addr copy) {
    const Word attrs = mem.load_atomic(attributes_addr(copy));
    const Word pi = pi_of(attrs);
    for (Word i = 0; i < pi; ++i) {
      const Addr child = mem.load_atomic(pointer_field_addr(copy, i),
                                         std::memory_order_relaxed);
      if (child != kNullPtr && heap.layout().in_fromspace(child)) {
        mem.store_atomic(pointer_field_addr(copy, i), evacuate(tid, child),
                         std::memory_order_relaxed);
      }
    }
    mem.store_atomic(attributes_addr(copy), attrs | kBlackBit);
  };

  // Roots, queued through thread 0's output packet.
  for (Addr& root : heap.roots()) {
    if (root != kNullPtr) root = evacuate(0, root);
  }
  publish(0);

  TortureAgitator agitator(cfg_.torture, cfg_.threads);
  auto worker = [&](std::uint32_t tid) {
    agitator.worker_start(tid);
    for (;;) {
      agitator.chaos(tid);
      Packet in;
      {
        std::lock_guard<std::mutex> g(st.pool_mutex);
        ++counters[tid].mutex_acquisitions;
        if (!st.full_packets.empty()) {
          in = std::move(st.full_packets.back());
          st.full_packets.pop_back();
        }
      }
      if (!in.empty()) {
        term.claimed();
        for (Addr copy : in) scan_copy(tid, copy);
        continue;
      }
      // Drain the private output packet before idling — otherwise its
      // entries would be invisible to the termination detector.
      if (!out_packets[tid].empty()) {
        publish(tid);
        continue;
      }
      term.go_idle();
      for (;;) {
        if (term.finished()) return;
        if (term.outstanding() > 0) {
          term.go_busy();
          break;
        }
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg_.threads);
  for (std::uint32_t t = 0; t < cfg_.threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  const Addr high_water = st.free.load(std::memory_order_acquire);
  heap.flip();
  heap.set_alloc_ptr(high_water);

  ParallelGcStats stats;
  stats.threads = cfg_.threads;
  stats.words_copied = high_water - heap.layout().current_base();
  merge(stats, counters);
  stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace hwgc
