// Work-packet parallel copying collector, after Ossia et al. (Section III).
//
// The gray set is partitioned into *packets* of object references. A
// thread holds one input packet (references it scans) and one output
// packet (new gray references it produces); only full/empty packet
// exchanges touch the shared pool, so the shared-structure synchronization
// frequency drops from per-object to per-packet.
//
// Costs the paper attributes to this class: an auxiliary dynamic data
// structure apart from the heap, and balance limited by packet
// granularity (a near-empty pool with large packets strands work). The
// per-first-visit CAS for evacuation dedup remains.
//
// Allocation uses a global atomic bump pointer, so — unlike the chunked
// and work-stealing baselines — tospace stays hole-free.
#pragma once

#include <cstdint>

#include "baselines/parallel_common.hpp"
#include "heap/heap.hpp"

namespace hwgc {

class WorkPacketCollector {
 public:
  struct Config {
    std::uint32_t threads = 8;
    std::uint32_t packet_capacity = 256;
    /// Schedule perturbation for the torture harness (parallel_common.hpp).
    TortureKnobs torture{};
  };

  WorkPacketCollector() : WorkPacketCollector(Config{}) {}
  explicit WorkPacketCollector(Config cfg) : cfg_(cfg) {}

  ParallelGcStats collect(Heap& heap);

 private:
  Config cfg_;
};

}  // namespace hwgc
