#include "baselines/work_stealing.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "baselines/termination.hpp"

namespace hwgc {

namespace {

/// A mutex-guarded work deque. The owner pushes/pops at the back; thieves
/// take from the front. (A lock per operation is deliberately crude — it
/// still beats the naive collector because queue operations are one per
/// *object*, not several per pointer field, and contention is owner-local.)
struct WorkDeque {
  std::mutex m;
  std::deque<Addr> dq;
};

struct SharedState {
  std::atomic<Addr> region_free{0};
  Addr region_end = 0;
};

struct ThreadState {
  Addr lab_cur = kNullPtr;
  Addr lab_end = kNullPtr;
  ThreadCounters tc;
};

}  // namespace

ParallelGcStats WorkStealingCollector::collect(Heap& heap) {
  const auto t0 = std::chrono::steady_clock::now();
  WordMemory& mem = heap.memory();
  SharedState st;
  st.region_free.store(heap.layout().tospace_base(),
                       std::memory_order_relaxed);
  st.region_end = heap.layout().tospace_end();

  TerminationDetector term(cfg_.threads);
  std::vector<ThreadState> states(cfg_.threads);
  std::vector<WorkDeque> deques(cfg_.threads);

  // Small heaps cannot afford a full-size LAB per thread: clamp so that
  // total LAB slack stays well below the semispace headroom.
  const Word lab_words = std::max<Word>(
      16, std::min<Word>(cfg_.lab_words,
                         heap.layout().semispace_words() /
                             (4 * cfg_.threads)));

  auto grab_region = [&](Word words) -> Addr {
    const Addr a = st.region_free.fetch_add(words, std::memory_order_acq_rel);
    if (a + words > st.region_end) {
      throw std::runtime_error(
          "work-stealing collector: tospace exhausted (LAB fragmentation "
          "exceeded heap headroom)");
    }
    return a;
  };

  auto alloc = [&](ThreadState& ts, Word words) -> Addr {
    if (words > lab_words) return grab_region(words);  // jumbo
    if (ts.lab_cur + words > ts.lab_end || ts.lab_cur == kNullPtr) {
      if (ts.lab_cur != kNullPtr) ts.tc.wasted_words += ts.lab_end - ts.lab_cur;
      ts.lab_cur = grab_region(lab_words);
      ts.lab_end = ts.lab_cur + lab_words;
    }
    const Addr a = ts.lab_cur;
    ts.lab_cur += words;
    return a;
  };

  auto push_work = [&](std::uint32_t tid, Addr copy) {
    {
      std::lock_guard<std::mutex> g(deques[tid].m);
      ++states[tid].tc.mutex_acquisitions;
      deques[tid].dq.push_back(copy);
    }
    term.published();
  };

  auto evacuate = [&](std::uint32_t tid, Addr obj) -> Addr {
    ThreadState& ts = states[tid];
    for (;;) {
      Addr link = mem.load_atomic(link_addr(obj));
      if (link == kBusyForwarding) continue;
      if (link != kNullPtr) return link;
      ++ts.tc.cas_ops;
      Addr expected = kNullPtr;
      if (!mem.cas(link_addr(obj), expected, kBusyForwarding)) {
        ++ts.tc.cas_failures;
        continue;
      }
      const Word attrs = mem.load_atomic(attributes_addr(obj));
      const Addr copy = alloc(ts, object_words(attrs));
      detail::copy_object_body(mem, obj, copy, attrs);
      mem.store_atomic(attributes_addr(obj), attrs | kForwardedBit);
      mem.store_atomic(link_addr(obj), copy, std::memory_order_release);
      ++ts.tc.objects;
      push_work(tid, copy);
      return copy;
    }
  };

  auto scan_copy = [&](std::uint32_t tid, Addr copy) {
    const Word attrs = mem.load_atomic(attributes_addr(copy));
    const Word pi = pi_of(attrs);
    for (Word i = 0; i < pi; ++i) {
      const Addr child = mem.load_atomic(pointer_field_addr(copy, i),
                                         std::memory_order_relaxed);
      if (child != kNullPtr && heap.layout().in_fromspace(child)) {
        mem.store_atomic(pointer_field_addr(copy, i), evacuate(tid, child),
                         std::memory_order_relaxed);
      }
    }
    mem.store_atomic(attributes_addr(copy), attrs | kBlackBit);
  };

  // Roots, queued onto thread 0's deque.
  for (Addr& root : heap.roots()) {
    if (root != kNullPtr) root = evacuate(0, root);
  }

  TortureAgitator agitator(cfg_.torture, cfg_.threads);
  auto worker = [&](std::uint32_t tid) {
    ThreadState& ts = states[tid];
    std::uint32_t victim = (tid + 1) % cfg_.threads;
    agitator.worker_start(tid);
    for (;;) {
      agitator.chaos(tid);
      // 1. Own queue, bottom end.
      Addr copy = kNullPtr;
      {
        std::lock_guard<std::mutex> g(deques[tid].m);
        ++ts.tc.mutex_acquisitions;
        if (!deques[tid].dq.empty()) {
          copy = deques[tid].dq.back();
          deques[tid].dq.pop_back();
        }
      }
      if (copy != kNullPtr) {
        term.claimed();
        scan_copy(tid, copy);
        continue;
      }
      // 2. Steal from the top of another thread's queue.
      bool stole = false;
      for (std::uint32_t probe = 0; probe < cfg_.threads; ++probe) {
        victim = (victim + 1) % cfg_.threads;
        if (victim == tid) continue;
        ++ts.tc.steal_attempts;
        std::lock_guard<std::mutex> g(deques[victim].m);
        if (!deques[victim].dq.empty()) {
          copy = deques[victim].dq.front();
          deques[victim].dq.pop_front();
          stole = true;
          break;
        }
      }
      if (stole) {
        term.claimed();
        scan_copy(tid, copy);
        continue;
      }
      // 3. Every queue looked empty: idle until work appears or all done.
      term.go_idle();
      for (;;) {
        if (term.finished()) return;
        if (term.outstanding() > 0) {
          term.go_busy();
          break;
        }
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg_.threads);
  for (std::uint32_t t = 0; t < cfg_.threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  // Account the tail of each worker's final LAB: it was never retired
  // through alloc(), but it is fragmentation all the same — without it,
  // words_copied would overcount and the conformance oracle's accounting
  // check (words_copied == live words) would fail.
  for (auto& s : states) {
    if (s.lab_cur != kNullPtr) s.tc.wasted_words += s.lab_end - s.lab_cur;
  }

  const Addr high_water = st.region_free.load(std::memory_order_acquire);
  heap.flip();
  heap.set_alloc_ptr(high_water);

  ParallelGcStats stats;
  stats.threads = cfg_.threads;
  std::vector<ThreadCounters> counters;
  counters.reserve(states.size());
  for (auto& s : states) counters.push_back(s.tc);
  merge(stats, counters);
  stats.words_copied =
      (high_water - heap.layout().current_base()) - stats.wasted_words;
  stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace hwgc
