// Work-stealing parallel copying collector, after Flood et al.
// (Section III).
//
// Every thread owns a double-ended work queue of tospace references: it
// pushes and pops at the bottom (cheap), and threads whose queues run dry
// steal from the top of a victim's queue. Evacuations allocate from
// thread-local allocation buffers ("LABs" — Flood's local allocation
// buffers in tospace), so the common path performs no shared-memory
// synchronization at all.
//
// Costs the paper attributes to this class: tospace fragmentation from
// LAB tails (which motivated Petrank & Kolodner's delayed allocation),
// steal contention near termination, and the per-first-visit CAS.
#pragma once

#include <cstdint>

#include "baselines/parallel_common.hpp"
#include "heap/heap.hpp"

namespace hwgc {

class WorkStealingCollector {
 public:
  struct Config {
    std::uint32_t threads = 8;
    Word lab_words = 1024;  ///< local allocation buffer size
    /// Schedule perturbation for the torture harness (parallel_common.hpp).
    TortureKnobs torture{};
  };

  WorkStealingCollector() : WorkStealingCollector(Config{}) {}
  explicit WorkStealingCollector(Config cfg) : cfg_(cfg) {}

  ParallelGcStats collect(Heap& heap);

 private:
  Config cfg_;
};

}  // namespace hwgc
