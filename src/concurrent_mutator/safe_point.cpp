#include "concurrent_mutator/safe_point.hpp"

namespace hwgc {

SafePointRegistry::Scope::Scope(SafePointRegistry& reg) : reg_(reg) {
  reg_.enter();
}

SafePointRegistry::Scope::~Scope() { reg_.leave(); }

void SafePointRegistry::enter() {
  std::lock_guard<std::mutex> lk(mu_);
  if (++depth_[std::this_thread::get_id()] == 1) ++threads_;
}

void SafePointRegistry::leave() {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = depth_.find(std::this_thread::get_id());
  if (--it->second == 0) {
    depth_.erase(it);
    --threads_;
    // Opting out counts as reaching a safe point: a pending pause must not
    // wait for a thread that no longer exists.
    if (stop_.load(std::memory_order_relaxed) != 0 && all_parked_locked()) {
      all_in_.notify_all();
    }
  }
}

MutatorPhase SafePointRegistry::poll() {
  if (stop_.load(std::memory_order_acquire) == 0) return phase();
  std::unique_lock<std::mutex> lk(mu_);
  if (stop_.load(std::memory_order_relaxed) == 0) return phase();
  ++waits_;
  ++parked_;
  if (all_parked_locked()) all_in_.notify_all();
  released_.wait(lk, [&] {
    return stop_.load(std::memory_order_relaxed) == 0;
  });
  --parked_;
  return phase();
}

void SafePointRegistry::request_stop() {
  std::lock_guard<std::mutex> lk(mu_);
  stop_.store(1, std::memory_order_release);
  if (all_parked_locked()) all_in_.notify_all();
}

bool SafePointRegistry::await_parked_for(std::chrono::milliseconds budget) {
  std::unique_lock<std::mutex> lk(mu_);
  return all_in_.wait_for(lk, budget, [&] { return all_parked_locked(); });
}

void SafePointRegistry::await_parked() {
  std::unique_lock<std::mutex> lk(mu_);
  all_in_.wait(lk, [&] { return all_parked_locked(); });
}

void SafePointRegistry::resume(MutatorPhase next) {
  std::lock_guard<std::mutex> lk(mu_);
  phase_.store(static_cast<std::uint32_t>(next), std::memory_order_relaxed);
  stop_.store(0, std::memory_order_release);
  released_.notify_all();
}

std::size_t SafePointRegistry::opted_in() const {
  std::lock_guard<std::mutex> lk(mu_);
  return threads_;
}

std::size_t SafePointRegistry::parked() const {
  std::lock_guard<std::mutex> lk(mu_);
  return parked_;
}

std::uint64_t SafePointRegistry::safe_point_waits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return waits_;
}

}  // namespace hwgc
