// Safe-point rendezvous between real mutator threads and the pauseless
// collector.
//
// A mutator thread opts into collection discipline by holding a
// SafePointRegistry::Scope (RAII). While opted in it must call poll() at
// safe points — between heap operations, never inside one. The collector
// opens a pause by requesting a stop and waiting until every opted-in
// thread is parked inside poll(); it then owns the heap exclusively, may
// change the barrier phase, and releases the pack with resume(). A thread
// that opts *out* (Scope destruction) while a stop is pending counts as
// having reached its safe point — teardown never wedges a cycle. A thread
// that opts in but never polls stalls the cycle start indefinitely (and
// only that: the heap stays consistent), which is exactly the contract the
// edge-case tests pin down.
//
// Phase changes are only published while every opted-in thread is parked
// under the registry mutex, so a mutator can read the phase with a relaxed
// load between polls: no store it performs can race a phase transition.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace hwgc {

/// What the mutator write barrier must do right now.
enum class MutatorPhase : std::uint32_t {
  kIdle = 0,      ///< no cycle: pointer stores write both halves
  kSnapshot = 1,  ///< cycle running: live half only + reconciliation log
  kFinished = 2,  ///< cycle torn down: harness mutators drain and exit
};

class SafePointRegistry {
 public:
  /// RAII opt-in handle. Nesting on the same thread is supported: only the
  /// outermost Scope registers/unregisters, inner ones bump a depth count.
  class Scope {
   public:
    explicit Scope(SafePointRegistry& reg);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SafePointRegistry& reg_;
  };

  // --- Mutator side -------------------------------------------------------

  /// Safe point: cheap when no stop is pending; otherwise parks until the
  /// collector resumes. Returns the phase current at release time.
  MutatorPhase poll();

  /// Current barrier phase. Relaxed: transitions only happen while the
  /// caller is parked (see file comment).
  MutatorPhase phase() const noexcept {
    return static_cast<MutatorPhase>(
        phase_.load(std::memory_order_relaxed));
  }

  // --- Collector side -----------------------------------------------------

  /// Asks every opted-in thread to park at its next safe point. Idempotent.
  void request_stop();

  /// Blocks until every opted-in thread is parked (or opted out), or until
  /// `budget` elapses. Returns true when the pause is fully established;
  /// false on timeout, with the stop request still pending so the caller
  /// can keep waiting or diagnose the stuck thread.
  bool await_parked_for(std::chrono::milliseconds budget);

  /// await_parked_for without a deadline — the production collector path.
  void await_parked();

  /// Publishes `next` as the new phase and releases every parked thread.
  /// Must only be called with the pause established (or with no opted-in
  /// threads at all, where a pause is trivially established).
  void resume(MutatorPhase next);

  // --- Introspection ------------------------------------------------------

  std::size_t opted_in() const;
  std::size_t parked() const;
  /// Number of park events mutators served — the "safe-point waits" the
  /// bench schema surfaces.
  std::uint64_t safe_point_waits() const;

 private:
  friend class Scope;
  void enter();
  void leave();
  bool all_parked_locked() const noexcept { return parked_ == threads_; }

  mutable std::mutex mu_;
  std::condition_variable released_;  ///< mutators wait for resume()
  std::condition_variable all_in_;    ///< collector waits for the full park
  std::atomic<std::uint32_t> stop_{0};
  std::atomic<std::uint32_t> phase_{
      static_cast<std::uint32_t>(MutatorPhase::kIdle)};
  std::unordered_map<std::thread::id, std::uint32_t> depth_;
  std::size_t threads_ = 0;  ///< opted-in threads (outermost Scopes)
  std::size_t parked_ = 0;
  std::uint64_t waits_ = 0;
};

}  // namespace hwgc
