#include "concurrent_mutator/snapshot_collector.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "concurrent_mutator/safe_point.hpp"
#include "concurrent_mutator/snapshot_space.hpp"
#include "heap/object_model.hpp"
#include "sim/rng.hpp"

namespace hwgc {

namespace {

// Virtual-cycle cost model for the pause/concurrent split the service
// charges (DESIGN.md §17). The hardware's dual-slot store is a second
// write port, so the barrier itself is free; what costs mutator time is
// only the two rendezvous windows and the reconciliation work done inside
// them. Copy and scan work overlapped with the mutator is charged to
// concurrent_cycles, using the same one-cycle-per-word currency as the
// coprocessor's store path.
constexpr Cycle kRendezvousCost = 8;   // per pause: stop + release
constexpr Cycle kRootSlotCost = 2;     // per root slot examined in a pause
constexpr Cycle kRepairCost = 3;       // per reconciliation-log record
constexpr Cycle kScanCostPerObject = 2;
constexpr Cycle kPointerCost = 1;

/// One raw store the barrier diverted during the cycle: replayed against
/// the evacuated copy in the reconcile pause. `offset` is in words from
/// the object header, so the record does not care whether the slot is a
/// pointer or data word — the drain decides with offset_is_pointer_field.
struct LogRecord {
  Addr obj;
  Word offset;
};

struct alignas(64) WorkerCounters {
  std::uint64_t objects = 0;
  std::uint64_t words = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t scanned = 0;
  std::uint64_t pointers = 0;

  void merge_into(WorkerCounters& total) const {
    total.objects += objects;
    total.words += words;
    total.cas_ops += cas_ops;
    total.cas_failures += cas_failures;
    total.scanned += scanned;
    total.pointers += pointers;
  }
};

/// Private model of everything one mutator thread did to the heap. Kids
/// encode: -1 = null, >= 0 = index of another shadow node, <= -2 = a
/// reference to a pre-cycle root referent at fromspace address -(k + 2).
struct ShadowNode {
  Addr from = kNullPtr;
  Word pi = 0;
  Word delta = 0;
  std::vector<std::int64_t> kids;
  std::vector<Word> data;
};

struct MutatorState {
  std::vector<ShadowNode> nodes;
  std::vector<std::int64_t> regs;
  std::vector<LogRecord> log;
  std::size_t root_base = 0;
  std::uint64_t rng = 0;
  std::uint64_t ops = 0;
  std::uint64_t allocs = 0;
  std::uint64_t dual_writes = 0;
  std::uint64_t snapshot_stores = 0;
  std::uint64_t backoffs = 0;
  std::size_t mismatches = 0;
  std::atomic<std::uint64_t> warm{0};
};

class SnapshotCycle {
 public:
  SnapshotCycle(const SnapshotCollector::Config& cfg, Heap& heap)
      : cfg_(cfg),
        heap_(heap),
        mem_(heap.memory()),
        mirror_(heap.memory().size()) {}

  SnapshotGcStats run();

 private:
  // --- collector machinery ------------------------------------------------
  Addr evacuate(Addr obj, bool from_snapshot, WorkerCounters& tc);
  void scan_loop(bool from_snapshot, WorkerCounters& tc,
                 TortureAgitator* agi, std::uint32_t tid);
  void worker_main(std::uint32_t tid, TortureAgitator* agi);

  // --- mutator machinery --------------------------------------------------
  void mutator_main(std::uint32_t mid, TortureAgitator* agi);
  void mutator_op(MutatorState& m, MutatorPhase ph);
  void store_ptr(MutatorState& m, Addr obj, Word i, Addr v, MutatorPhase ph);
  void store_data(MutatorState& m, Addr obj, Word pi, Word j, Word v,
                  MutatorPhase ph);
  std::size_t validate_shadow(const MutatorState& m);

  bool in_tospace_extent(Addr a) const noexcept {
    return a >= to_base_ && a < to_end_;
  }

  SnapshotCollector::Config cfg_;
  Heap& heap_;
  WordMemory& mem_;
  SnapshotSpace mirror_;
  SafePointRegistry reg_;

  Addr to_base_ = 0;
  Addr to_end_ = 0;
  std::atomic<Addr> scan_{0};
  std::atomic<Addr> free_{0};
  std::atomic<std::uint32_t> busy_{0};
  std::atomic<bool> overflow_{false};

  std::vector<Addr> snap_roots_;
  std::vector<Addr> ext_roots_;
  std::vector<std::unique_ptr<MutatorState>> muts_;
  std::vector<WorkerCounters> counters_;
};

Addr SnapshotCycle::evacuate(Addr obj, bool from_snapshot,
                             WorkerCounters& tc) {
  for (;;) {
    if (overflow_.load(std::memory_order_relaxed)) return kNullPtr;
    const Word link = mem_.load_atomic(link_addr(obj),
                                       std::memory_order_acquire);
    if (link == kBusyForwarding) {
      std::this_thread::yield();
      continue;
    }
    if (link != kNullPtr) return link;  // already forwarded
    ++tc.cas_ops;
    Word expected = kNullPtr;
    if (!mem_.cas(link_addr(obj), expected, kBusyForwarding)) {
      ++tc.cas_failures;
      continue;
    }
    const Word raw_attrs = mem_.load_atomic(attributes_addr(obj),
                                            std::memory_order_relaxed);
    // Strip flags left by earlier cycles: a fromspace original that was a
    // tospace copy last cycle still carries kBlackBit.
    const Word pi = pi_of(raw_attrs);
    const Word delta = delta_of(raw_attrs);
    const Word attrs = make_attributes(pi, delta);
    const Word need = object_words(attrs);
    const Addr copy = free_.fetch_add(need, std::memory_order_relaxed);
    if (copy + need > to_end_) {
      // Unclaim so nobody spins on the busy sentinel forever, flag the
      // abort; run() throws once every thread has drained out.
      mem_.store_atomic(link_addr(obj), kNullPtr, std::memory_order_release);
      overflow_.store(true, std::memory_order_relaxed);
      return kNullPtr;
    }
    mem_.store_atomic(link_addr(copy), kNullPtr, std::memory_order_relaxed);
    for (Word i = 0; i < pi; ++i) {
      const Addr src = pointer_field_addr(obj, i);
      // The double-pointer read: during the concurrent phase the collector
      // trusts only the frozen snapshot half; in the reconcile pause (and
      // for objects allocated mid-cycle) the live half is authoritative.
      const Word v = from_snapshot
                         ? mirror_.load(src)
                         : mem_.load_atomic(src, std::memory_order_relaxed);
      mem_.store_atomic(pointer_field_addr(copy, i), v,
                        std::memory_order_relaxed);
      mirror_.store(pointer_field_addr(copy, i), v);
    }
    for (Word j = 0; j < delta; ++j) {
      mem_.store_atomic(data_field_addr(copy, pi, j),
                        mem_.load_atomic(data_field_addr(obj, pi, j),
                                         std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    // Publication order matters: the black bit releases the body to
    // scanners, then the forwarding link releases the copy to other
    // evacuators.
    mem_.store_atomic(attributes_addr(copy), attrs | kBlackBit,
                      std::memory_order_release);
    mem_.store_atomic(link_addr(obj), copy, std::memory_order_release);
    mem_.store_atomic(attributes_addr(obj), attrs | kForwardedBit,
                      std::memory_order_release);
    ++tc.objects;
    tc.words += need;
    return copy;
  }
}

void SnapshotCycle::scan_loop(bool from_snapshot, WorkerCounters& tc,
                              TortureAgitator* agi, std::uint32_t tid) {
  for (;;) {
    if (agi != nullptr) agi->chaos(tid);
    if (overflow_.load(std::memory_order_relaxed)) return;
    const Addr s = scan_.load(std::memory_order_acquire);
    const Addr f = free_.load(std::memory_order_acquire);
    if (s == f) {
      // Exiting early is safe: any worker that could still grow `free_`
      // holds a busy_ count (taken before its claim CAS), so work can
      // never strand — the last worker inside drains everything.
      if (busy_.load(std::memory_order_seq_cst) == 0 &&
          scan_.load(std::memory_order_seq_cst) == s &&
          free_.load(std::memory_order_seq_cst) == f) {
        return;
      }
      std::this_thread::yield();
      continue;
    }
    // The copy at `s` may still be mid-copy by its evacuator; its black
    // bit (released last) gates both the size read and the field scan.
    const Word attrs = mem_.load_atomic(attributes_addr(s),
                                        std::memory_order_acquire);
    if (!is_black(attrs)) {
      std::this_thread::yield();
      continue;
    }
    busy_.fetch_add(1, std::memory_order_acq_rel);
    Addr claim = s;
    ++tc.cas_ops;
    if (!scan_.compare_exchange_strong(claim, s + object_words(attrs),
                                       std::memory_order_acq_rel)) {
      ++tc.cas_failures;
      busy_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    const Word pi = pi_of(attrs);
    for (Word i = 0; i < pi; ++i) {
      const Addr fa = pointer_field_addr(s, i);
      const Word v = mem_.load_atomic(fa, std::memory_order_relaxed);
      // Fields repaired by the reconciliation drain are already
      // translated; only fromspace referents still need evacuation.
      if (v == kNullPtr || in_tospace_extent(v)) continue;
      const Addr nv = evacuate(v, from_snapshot, tc);
      mem_.store_atomic(fa, nv, std::memory_order_relaxed);
      mirror_.store(fa, nv);
      ++tc.pointers;
    }
    ++tc.scanned;
    busy_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void SnapshotCycle::worker_main(std::uint32_t tid, TortureAgitator* agi) {
  WorkerCounters& tc = counters_[tid];
  if (agi != nullptr) agi->worker_start(tid);
  busy_.fetch_add(1, std::memory_order_acq_rel);
  for (std::size_t i = tid; i < snap_roots_.size(); i += cfg_.threads) {
    if (snap_roots_[i] != kNullPtr) evacuate(snap_roots_[i], true, tc);
  }
  busy_.fetch_sub(1, std::memory_order_acq_rel);
  scan_loop(true, tc, agi, tid);
}

void SnapshotCycle::store_ptr(MutatorState& m, Addr obj, Word i, Addr v,
                              MutatorPhase ph) {
  const Addr a = pointer_field_addr(obj, i);
  mem_.store_atomic(a, v, std::memory_order_relaxed);
  if (ph == MutatorPhase::kIdle) {
    mirror_.store(a, v);  // the dual write: both halves agree
    ++m.dual_writes;
  } else {
    m.log.push_back({obj, static_cast<Word>(a - obj)});
    ++m.snapshot_stores;
  }
}

void SnapshotCycle::store_data(MutatorState& m, Addr obj, Word pi, Word j,
                               Word v, MutatorPhase ph) {
  const Addr a = data_field_addr(obj, pi, j);
  mem_.store_atomic(a, v, std::memory_order_relaxed);
  if (ph != MutatorPhase::kIdle) {
    // Data words have no snapshot half, but a store racing the body copy
    // may land before or after the copy read it — log it so the reconcile
    // pause repairs the copy either way.
    m.log.push_back({obj, static_cast<Word>(a - obj)});
    ++m.snapshot_stores;
  }
}

void SnapshotCycle::mutator_op(MutatorState& m, MutatorPhase ph) {
  ++m.ops;
  const std::uint64_t r = splitmix64(m.rng);
  const std::uint32_t nregs = cfg_.mutator_registers;
  const std::uint32_t reg = static_cast<std::uint32_t>(r % nregs);
  switch ((r >> 8) % 4) {
    case 0: {  // allocate a fresh object into a register
      const Word pi = static_cast<Word>((r >> 16) % 4);
      const Word delta = static_cast<Word>((r >> 20) % 4);
      const Addr obj = heap_.allocate_shared(pi, delta);
      if (obj == kNullPtr) {
        ++m.backoffs;
        return;
      }
      ++m.allocs;
      if (ph == MutatorPhase::kIdle) {
        // Dual-write discipline covers initialization: the new object's
        // null pointer slots exist in both halves.
        for (Word i = 0; i < pi; ++i) {
          mirror_.store(pointer_field_addr(obj, i), kNullPtr);
        }
      }
      ShadowNode n;
      n.from = obj;
      n.pi = pi;
      n.delta = delta;
      n.kids.assign(pi, -1);
      n.data.assign(delta, 0);
      m.nodes.push_back(std::move(n));
      m.regs[reg] = static_cast<std::int64_t>(m.nodes.size()) - 1;
      heap_.roots()[m.root_base + reg] = obj;
      return;
    }
    case 1: {  // rewrite a pointer field of an owned object
      const std::int64_t src = m.regs[reg];
      if (src < 0) return;
      ShadowNode& n = m.nodes[static_cast<std::size_t>(src)];
      if (n.pi == 0) return;
      const Word i = static_cast<Word>((r >> 16) % n.pi);
      std::int64_t kid = -1;
      Addr target = kNullPtr;
      const std::uint64_t pick = (r >> 24) % 8;
      if (pick < 4) {
        const std::int64_t t =
            m.regs[static_cast<std::size_t>((r >> 32) % nregs)];
        if (t >= 0) {
          kid = t;
          target = m.nodes[static_cast<std::size_t>(t)].from;
        }
      } else if (pick < 6 && !ext_roots_.empty()) {
        // Point into the pre-cycle graph: reconciliation must translate
        // this reference through the snapshot closure's forwarding.
        const Addr e = ext_roots_[(r >> 32) % ext_roots_.size()];
        kid = -static_cast<std::int64_t>(e) - 2;
        target = e;
      }
      store_ptr(m, n.from, i, target, ph);
      n.kids[i] = kid;
      return;
    }
    case 2: {  // data store
      const std::int64_t src = m.regs[reg];
      if (src < 0) return;
      ShadowNode& n = m.nodes[static_cast<std::size_t>(src)];
      if (n.delta == 0) return;
      const Word j = static_cast<Word>((r >> 16) % n.delta);
      const Word v = static_cast<Word>(r >> 24);
      store_data(m, n.from, n.pi, j, v, ph);
      n.data[j] = v;
      return;
    }
    default: {  // read-back probe of an owned data word
      const std::int64_t src = m.regs[reg];
      if (src < 0) return;
      const ShadowNode& n = m.nodes[static_cast<std::size_t>(src)];
      if (n.delta == 0) return;
      const Word j = static_cast<Word>((r >> 16) % n.delta);
      const Word got = mem_.load_atomic(data_field_addr(n.from, n.pi, j),
                                        std::memory_order_relaxed);
      if (got != n.data[j]) ++m.mismatches;
      return;
    }
  }
}

void SnapshotCycle::mutator_main(std::uint32_t mid, TortureAgitator* agi) {
  MutatorState& m = *muts_[mid];
  SafePointRegistry::Scope scope(reg_);
  if (agi != nullptr) agi->worker_start(mid);
  for (;;) {
    const MutatorPhase ph = reg_.poll();
    if (ph == MutatorPhase::kFinished) break;
    if (agi != nullptr) agi->chaos(mid);
    mutator_op(m, ph);
    m.warm.store(m.ops, std::memory_order_release);
  }
}

std::size_t SnapshotCycle::validate_shadow(const MutatorState& m) {
  std::size_t bad = m.mismatches;
  // Register-reachable shadow closure; unreachable nodes are garbage the
  // collector is free to drop.
  std::vector<char> seen(m.nodes.size(), 0);
  std::vector<std::size_t> stack;
  for (const std::int64_t r : m.regs) {
    if (r >= 0 && seen[static_cast<std::size_t>(r)] == 0) {
      seen[static_cast<std::size_t>(r)] = 1;
      stack.push_back(static_cast<std::size_t>(r));
    }
  }
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    for (const std::int64_t k : m.nodes[n].kids) {
      if (k >= 0 && seen[static_cast<std::size_t>(k)] == 0) {
        seen[static_cast<std::size_t>(k)] = 1;
        stack.push_back(static_cast<std::size_t>(k));
      }
    }
  }
  const auto translated = [&](Addr from) -> Addr {
    if (!is_forwarded(mem_.load(attributes_addr(from)))) return kNullPtr;
    return mem_.load(link_addr(from));
  };
  for (std::size_t n = 0; n < m.nodes.size(); ++n) {
    if (seen[n] == 0) continue;
    const ShadowNode& sn = m.nodes[n];
    const Addr copy = translated(sn.from);
    if (copy == kNullPtr) {
      ++bad;  // reachable at cycle end but never evacuated
      continue;
    }
    const Word cattrs = mem_.load(attributes_addr(copy));
    if (pi_of(cattrs) != sn.pi || delta_of(cattrs) != sn.delta) {
      ++bad;
      continue;
    }
    for (Word i = 0; i < sn.pi; ++i) {
      const Addr got = mem_.load(pointer_field_addr(copy, i));
      Addr want = kNullPtr;
      const std::int64_t k = sn.kids[i];
      if (k >= 0) {
        want = translated(m.nodes[static_cast<std::size_t>(k)].from);
      } else if (k <= -2) {
        want = translated(static_cast<Addr>(-(k + 2)));
      }
      if (got != want || (k != -1 && want == kNullPtr)) ++bad;
    }
    for (Word j = 0; j < sn.delta; ++j) {
      if (mem_.load(data_field_addr(copy, sn.pi, j)) != sn.data[j]) ++bad;
    }
  }
  for (std::size_t r = 0; r < m.regs.size(); ++r) {
    const Addr got = heap_.roots()[m.root_base + r];
    const std::int64_t k = m.regs[r];
    const Addr want =
        k >= 0 ? translated(m.nodes[static_cast<std::size_t>(k)].from)
               : kNullPtr;
    if (got != want || (k >= 0 && want == kNullPtr)) ++bad;
  }
  return bad;
}

SnapshotGcStats SnapshotCycle::run() {
  // --- setup (pre-cycle, single-threaded) ---------------------------------
  const Addr from_base = heap_.layout().current_base();
  const Addr from_alloc = heap_.alloc_ptr();
  // Resynchronize the snapshot half for heaps populated without the
  // barrier (setup state, not cycle cost — hardware maintains the pair on
  // every store for free).
  mirror_.sync_from(mem_, from_base, from_alloc);
  to_base_ = heap_.layout().tospace_base();
  to_end_ = heap_.layout().tospace_end();
  // Clear tospace so a stale header from two cycles ago can never satisfy
  // the scanner's black-bit gate.
  for (Addr a = to_base_; a < to_end_; ++a) mem_.store(a, 0);
  scan_.store(to_base_, std::memory_order_relaxed);
  free_.store(to_base_, std::memory_order_relaxed);

  const bool with_mutators =
      cfg_.mutator_threads > 0 && cfg_.mutator_registers > 0;

  // --- spawn mutators (dual-write phase) ----------------------------------
  std::vector<std::thread> mutator_threads;
  TortureAgitator mutator_agi(cfg_.torture, cfg_.mutator_threads);
  if (with_mutators) {
    for (const Addr r : heap_.roots()) {
      if (r != kNullPtr && ext_roots_.size() < 16) ext_roots_.push_back(r);
    }
    for (std::uint32_t mid = 0; mid < cfg_.mutator_threads; ++mid) {
      auto m = std::make_unique<MutatorState>();
      m->root_base = heap_.roots().size();
      m->regs.assign(cfg_.mutator_registers, -1);
      m->rng = cfg_.mutator_seed ^ (0x9e3779b97f4a7c15ULL * (mid + 1));
      heap_.roots().insert(heap_.roots().end(), cfg_.mutator_registers,
                           kNullPtr);
      muts_.push_back(std::move(m));
    }
    mutator_threads.reserve(cfg_.mutator_threads);
    for (std::uint32_t mid = 0; mid < cfg_.mutator_threads; ++mid) {
      mutator_threads.emplace_back(
          [this, mid, &mutator_agi] { mutator_main(mid, &mutator_agi); });
    }
    // Let every mutator exercise the dual-write barrier before the
    // snapshot freezes, so pre-cycle mutation is part of every run.
    for (const auto& m : muts_) {
      while (m->warm.load(std::memory_order_acquire) <
             cfg_.mutator_warmup_ops) {
        std::this_thread::yield();
      }
    }
  }

  // --- pause 1: freeze the snapshot ---------------------------------------
  reg_.request_stop();
  reg_.await_parked();
  snap_roots_ = heap_.roots();
  reg_.resume(MutatorPhase::kSnapshot);

  // --- concurrent phase: evacuate the snapshot closure --------------------
  counters_.assign(cfg_.threads, WorkerCounters{});
  TortureAgitator agi(cfg_.torture, cfg_.threads);
  {
    std::vector<std::thread> workers;
    workers.reserve(cfg_.threads);
    for (std::uint32_t t = 0; t < cfg_.threads; ++t) {
      workers.emplace_back([this, t, &agi] { worker_main(t, &agi); });
    }
    for (auto& w : workers) w.join();
  }
  WorkerCounters conc{};
  for (const auto& c : counters_) c.merge_into(conc);

  // --- pause 2: reconcile, flip, publish ----------------------------------
  reg_.request_stop();
  reg_.await_parked();
  WorkerCounters pause{};
  std::uint64_t repairs = 0;
  if (!overflow_.load(std::memory_order_relaxed)) {
    // Drain the reconciliation logs: re-read each mutated slot's live half
    // and repair the evacuated copy. Records against objects that were
    // never evacuated are skipped — if such an object is still reachable
    // it is copied below with its final field values anyway.
    for (const auto& m : muts_) {
      for (const LogRecord& rec : m->log) {
        const Word fattrs = mem_.load(attributes_addr(rec.obj));
        if (!is_forwarded(fattrs)) continue;
        const Addr copy = mem_.load(link_addr(rec.obj));
        const Word raw = mem_.load(rec.obj + rec.offset);
        Word v = raw;
        if (offset_is_pointer_field(fattrs, rec.offset)) {
          v = raw == kNullPtr ? kNullPtr : evacuate(raw, false, pause);
          mirror_.store(copy + rec.offset, v);
        }
        mem_.store(copy + rec.offset, v);
        ++repairs;
      }
    }
    // Redirect every root slot through the forwarding map, evacuating the
    // newly reachable (mid-cycle allocations) on demand…
    if (!overflow_.load(std::memory_order_relaxed)) {
      for (Addr& slot : heap_.roots()) {
        if (slot != kNullPtr) slot = evacuate(slot, false, pause);
      }
    }
    // …then run the bounded Cheney pass over just those copies.
    scan_loop(false, pause, nullptr, 0);
  }
  const bool failed = overflow_.load(std::memory_order_relaxed);
  if (!failed) {
    heap_.flip();
    heap_.set_alloc_ptr(free_.load(std::memory_order_relaxed));
  }
  reg_.resume(MutatorPhase::kFinished);
  for (auto& t : mutator_threads) t.join();
  if (failed) {
    throw std::runtime_error(
        "snapshot collector: tospace exhausted during evacuation");
  }

  // --- shadow validation + stats ------------------------------------------
  SnapshotGcStats s;
  s.threads = cfg_.threads;
  s.mutator_threads =
      with_mutators ? cfg_.mutator_threads : 0;
  s.objects_copied = conc.objects + pause.objects;
  s.words_copied = conc.words + pause.words;
  s.cas_ops = conc.cas_ops + pause.cas_ops;
  s.cas_failures = conc.cas_failures + pause.cas_failures;
  s.pause_evacuations = pause.objects;
  s.reconciliation_repairs = repairs;
  s.safe_point_waits = reg_.safe_point_waits();
  for (const auto& m : muts_) {
    s.dual_writes += m->dual_writes;
    s.snapshot_stores += m->snapshot_stores;
    s.mutator_ops += m->ops;
    s.mutator_allocations += m->allocs;
    s.alloc_backoffs += m->backoffs;
    s.validation_mismatches += validate_shadow(*m);
  }
  s.pause_cycles =
      2 * kRendezvousCost +
      static_cast<Cycle>(heap_.roots().size()) * kRootSlotCost +
      static_cast<Cycle>(repairs) * kRepairCost +
      static_cast<Cycle>(pause.words) +
      static_cast<Cycle>(pause.scanned) * kScanCostPerObject +
      static_cast<Cycle>(pause.pointers) * kPointerCost;
  s.concurrent_cycles = static_cast<Cycle>(conc.words) +
                        static_cast<Cycle>(conc.scanned) * kScanCostPerObject +
                        static_cast<Cycle>(conc.pointers) * kPointerCost;
  return s;
}

}  // namespace

SnapshotGcStats SnapshotCollector::collect(Heap& heap) {
  SnapshotCycle cycle(cfg_, heap);
  return cycle.run();
}

}  // namespace hwgc
