// Pauseless snapshot-at-the-beginning copying collector — the eighth
// collector, and the only one that runs while real mutator threads keep
// allocating and mutating the heap (ROADMAP item 1).
//
// Design (DESIGN.md §17). Every pointer slot is a double slot: the live
// half is the heap word, the snapshot half lives in a SnapshotSpace
// mirror. The cycle is two short safe-point pauses around a long
// concurrent phase:
//
//   pause 1 (snapshot) : all mutators park; the collector captures the
//     root set and freezes the snapshot half. Mutators resume in
//     kSnapshot phase: stores hit the live half only and append a raw
//     (object, offset) record to a per-thread reconciliation log.
//   concurrent phase   : worker threads evacuate the snapshot-reachable
//     closure into tospace with the familiar scan/free pointer pair (the
//     software analogue of the paper's hardware worklist) and the
//     sentinel-CAS forwarding protocol from the software baselines.
//     Pointer fields are read from the *frozen snapshot half*, so the
//     trace is immune to racing mutator stores. Mutators meanwhile keep
//     bump-allocating fromspace (Heap::allocate_shared) — nobody touches
//     tospace but the collector, so no read barrier is needed.
//   pause 2 (reconcile): all mutators park again; the collector drains the
//     logs (re-reading each mutated slot's live half and repairing the
//     evacuated copy), translates the current root values — evacuating
//     any newly allocated objects that became reachable, with a bounded
//     Cheney pass over just those — flips the heap, and publishes the
//     allocation pointer. Mutator threads observe kFinished and unwind
//     their RAII safe-point scopes.
//
// SATB gives the oracle a stronger property than the incremental-update
// concurrent cycle has: every object live at the snapshot is evacuated, so
// the forwarding map is *total* over the pre-cycle live set (see
// check_post_structure's concurrent_mutator branch).
#pragma once

#include <cstdint>

#include "baselines/parallel_common.hpp"
#include "heap/heap.hpp"
#include "sim/types.hpp"

namespace hwgc {

/// Counters for one pauseless cycle. The barrier/reconciliation counters
/// (dual_writes, snapshot_stores, reconciliation_repairs, safe_point_waits)
/// are the ones hwgc-bench-v1 surfaces for this collector family.
struct SnapshotGcStats {
  std::uint64_t objects_copied = 0;
  std::uint64_t words_copied = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t cas_failures = 0;
  /// Pointer stores that wrote both halves (outside the cycle window).
  std::uint64_t dual_writes = 0;
  /// Stores the barrier diverted to the live half + log during the cycle.
  std::uint64_t snapshot_stores = 0;
  /// Log records replayed onto evacuated copies in the reconcile pause.
  std::uint64_t reconciliation_repairs = 0;
  /// Park events mutator threads served across both pauses.
  std::uint64_t safe_point_waits = 0;
  std::uint64_t mutator_ops = 0;
  std::uint64_t mutator_allocations = 0;
  /// Allocation attempts that found fromspace exhausted and backed off.
  std::uint64_t alloc_backoffs = 0;
  /// Objects evacuated during the reconcile pause (newly reachable).
  std::uint64_t pause_evacuations = 0;
  /// Virtual cycles the mutator was actually stopped (both pauses).
  Cycle pause_cycles = 0;
  /// Virtual cycles of collector work overlapped with mutator execution.
  Cycle concurrent_cycles = 0;
  /// Shadow-graph mismatches found by the mutator validation; must be 0.
  std::size_t validation_mismatches = 0;
  std::uint32_t threads = 0;
  std::uint32_t mutator_threads = 0;
};

class SnapshotCollector {
 public:
  struct Config {
    /// Collector worker threads for the concurrent phase.
    std::uint32_t threads = 4;
    /// Real mutator threads that allocate and mutate during the cycle.
    /// 0 runs the cycle quiescent — deterministic with threads == 1, which
    /// is the trace replayer's and the service's mode.
    std::uint32_t mutator_threads = 2;
    /// Root-table slots each mutator owns (its register file). 0 also
    /// means quiescent, mirroring the concurrent cycle's convention.
    std::uint32_t mutator_registers = 16;
    std::uint64_t mutator_seed = 1;
    /// Ops each mutator must complete in kIdle phase before the snapshot
    /// pause opens (exercises the dual-write barrier deterministically).
    std::uint32_t mutator_warmup_ops = 32;
    TortureKnobs torture{};
  };

  explicit SnapshotCollector(const Config& cfg) : cfg_(cfg) {}

  /// Runs one full pauseless cycle: spawns the mutator threads (if
  /// configured), collects, reconciles, flips the heap, redirects every
  /// root slot and publishes the allocation pointer. Throws on tospace
  /// exhaustion. After return the mutator threads have been joined and
  /// their shadow graphs validated (stats.validation_mismatches).
  SnapshotGcStats collect(Heap& heap);

 private:
  Config cfg_;
};

}  // namespace hwgc
