// The snapshot half of the double-pointer reference encoding.
//
// The pauseless collector (snapshot_collector.hpp) gives every pointer slot
// a *pair* of words: the live half is the ordinary heap word, the snapshot
// half lives in this parallel address space. Outside a collection cycle the
// mutator write barrier stores to both halves, so the two spaces agree word
// for word on every pointer slot. When a cycle starts the snapshot half is
// frozen: mutator stores go to the live half only (and are logged for the
// reconciliation pass), while the collector walks the graph through the
// frozen half — a snapshot-at-the-beginning view that no mutator store can
// perturb. At cycle end the collector repairs the halves so they agree
// again on the freshly evacuated space.
//
// In the paper's hardware model the second slot is a second physical write
// port — the dual store is free. In this host-threaded reproduction it is
// a mirror array indexed by the same word addresses as the heap's
// WordMemory. Only pointer slots are ever consulted; the words mirroring
// headers and data areas are dead weight the model carries for addressing
// simplicity (exactly like the hardware, which pairs every heap word with
// a shadow word regardless of its role).
#pragma once

#include <atomic>
#include <cassert>
#include <vector>

#include "heap/word_memory.hpp"
#include "sim/types.hpp"

namespace hwgc {

class SnapshotSpace {
 public:
  explicit SnapshotSpace(std::size_t words) : words_(words, 0) {}

  std::size_t size() const noexcept { return words_.size(); }

  Word load(Addr a) const noexcept {
    assert(a < words_.size());
    return std::atomic_ref<const Word>(words_[a]).load(
        std::memory_order_relaxed);
  }

  void store(Addr a, Word v) noexcept {
    assert(a < words_.size());
    std::atomic_ref<Word>(words_[a]).store(v, std::memory_order_relaxed);
  }

  /// Bulk-resynchronizes the snapshot half from the live half over
  /// [begin, end). Used when a heap was populated without the dual-write
  /// barrier (the conformance harness materializes graphs through the plain
  /// Heap interface; the service runs quiescent shards the same way): the
  /// hardware would have maintained the pair on every store, so the copy
  /// models setup state, not cycle cost.
  void sync_from(WordMemory& mem, Addr begin, Addr end) {
    for (Addr a = begin; a < end; ++a) {
      store(a, mem.load_atomic(a, std::memory_order_relaxed));
    }
  }

 private:
  mutable std::vector<Word> words_;
};

}  // namespace hwgc
