#include "conformance/conformance.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "conformance/forwarding.hpp"
#include "heap/object_model.hpp"

namespace hwgc {

namespace {

std::string hex(Addr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

/// The concurrent collector's checks: its mutator may disconnect pre-live
/// objects mid-cycle (incremental update loses them by design) and keeps
/// rewriting fields, so the oracle verifies the *evacuated subset* — every
/// forwarded pre-live object maps injectively into a dense evacuation
/// extent [base, alloc_ptr), shapes survive, the untouched root prefix is
/// redirected, and the collector's own counters agree with the subset.
void check_concurrent_structure(const char* who, const HeapSnapshot& pre,
                                const Heap& post, const CycleReport& report,
                                std::vector<std::string>& errors) {
  const WordMemory& mem = post.memory();
  const Addr base = post.layout().current_base();

  std::unordered_map<Addr, Addr> fwd;
  std::unordered_map<Addr, Addr> image_to_pre;
  for (const auto& rec : pre.objects) {
    const Word attrs = mem.load(attributes_addr(rec.addr));
    if (!is_forwarded(attrs)) continue;  // disconnected mid-cycle: allowed
    const Addr copy = mem.load(link_addr(rec.addr));
    if (!image_to_pre.emplace(copy, rec.addr).second) {
      errors.push_back(std::string(who) +
                       ": forwarding map not injective at copy " + hex(copy));
      return;
    }
    fwd.emplace(rec.addr, copy);
    // Shape survival: the copy's header must describe the same object.
    const Word cattrs = mem.load(attributes_addr(copy));
    if (pi_of(cattrs) != rec.pi || delta_of(cattrs) != rec.delta) {
      errors.push_back(std::string(who) + ": copy of " + hex(rec.addr) +
                       " changed shape");
    }
  }

  // The evacuated copies must tile [base, alloc_ptr) exactly — evacuation
  // stays dense even while the mutator bump-allocates from the top.
  std::vector<Addr> sorted;
  sorted.reserve(image_to_pre.size());
  for (const auto& [copy, from] : image_to_pre) {
    (void)from;
    sorted.push_back(copy);
  }
  std::sort(sorted.begin(), sorted.end());
  Addr expect = base;
  for (Addr copy : sorted) {
    if (copy != expect) {
      errors.push_back(std::string(who) +
                       ": evacuated copies do not tile the evacuation "
                       "extent: expected image at " +
                       hex(expect) + ", next is " + hex(copy));
      return;
    }
    expect += object_words(mem.load(attributes_addr(copy)));
  }
  if (expect != post.alloc_ptr()) {
    errors.push_back(std::string(who) +
                     ": evacuation extent ends at " + hex(expect) +
                     ", published alloc pointer is " + hex(post.alloc_ptr()));
  }
  const std::uint64_t evac_words = expect - base;
  if (report.words_copied != evac_words) {
    errors.push_back(std::string(who) + ": words_copied counter " +
                     std::to_string(report.words_copied) + " != " +
                     std::to_string(evac_words) + " evacuated words");
  }
  if (report.evacuations != fwd.size()) {
    errors.push_back(std::string(who) + ": evacuation count " +
                     std::to_string(report.evacuations) + " != " +
                     std::to_string(fwd.size()) + " forwarded objects");
  }

  // The original root slots (the prefix before the mutator's registers,
  // which the mutator never writes) must be redirected through the map.
  const auto& roots = post.roots();
  for (std::size_t i = 0; i < pre.roots.size() && i < roots.size(); ++i) {
    const Addr old_root = pre.roots[i];
    if (old_root == kNullPtr) continue;
    const auto it = fwd.find(old_root);
    if (it == fwd.end()) {
      errors.push_back(std::string(who) + ": root " + std::to_string(i) +
                       " referent " + hex(old_root) + " was never evacuated");
    } else if (roots[i] != it->second) {
      errors.push_back(std::string(who) + ": root " + std::to_string(i) +
                       " not forwarded: holds " + hex(roots[i]) +
                       ", copy is at " + hex(it->second));
    }
  }
}

/// The pauseless snapshot collector's checks. SATB gives a *stronger*
/// property than the incremental-update concurrent cycle: every object live
/// at the snapshot is evacuated (totality), even if the racing mutators
/// dropped their last reference mid-cycle. The evacuation extent also holds
/// copies of mid-cycle allocations that became root-reachable, so instead
/// of tiling the extent with snapshot copies the oracle walks it header by
/// header and verifies it is closed: every copy is complete (black), every
/// pointer field lands on a copy start or null, every root slot does too,
/// and the collector's counters agree with the walk.
void check_snapshot_structure(const char* who, const HeapSnapshot& pre,
                              const Heap& post, const CycleReport& report,
                              std::vector<std::string>& errors) {
  const WordMemory& mem = post.memory();
  const Addr base = post.layout().current_base();
  const Addr end = post.alloc_ptr();

  // SATB totality + injectivity + shape survival over the snapshot set.
  std::unordered_map<Addr, Addr> fwd;
  std::unordered_set<Addr> images;
  for (const auto& rec : pre.objects) {
    const Word attrs = mem.load(attributes_addr(rec.addr));
    if (!is_forwarded(attrs)) {
      errors.push_back(std::string(who) + ": snapshot-live object " +
                       hex(rec.addr) +
                       " was never evacuated (SATB totality violated)");
      return;
    }
    const Addr copy = mem.load(link_addr(rec.addr));
    if (!images.insert(copy).second) {
      errors.push_back(std::string(who) +
                       ": forwarding map not injective at copy " + hex(copy));
      return;
    }
    fwd.emplace(rec.addr, copy);
    const Word cattrs = mem.load(attributes_addr(copy));
    if (pi_of(cattrs) != rec.pi || delta_of(cattrs) != rec.delta) {
      errors.push_back(std::string(who) + ": copy of " + hex(rec.addr) +
                       " changed shape");
    }
  }

  // Walk the dense evacuation extent [base, alloc_ptr): snapshot copies
  // interleave with copies of newly reachable mid-cycle allocations.
  std::unordered_set<Addr> starts;
  std::uint64_t walked = 0;
  Addr a = base;
  while (a < end) {
    const Word attrs = mem.load(attributes_addr(a));
    if (!is_black(attrs)) {
      errors.push_back(std::string(who) + ": copy at " + hex(a) +
                       " missing the copy-complete (black) bit");
      return;
    }
    starts.insert(a);
    ++walked;
    a += object_words(attrs);
  }
  if (a != end) {
    errors.push_back(std::string(who) + ": evacuation extent walk overruns "
                     "the published alloc pointer at " + hex(a));
    return;
  }
  for (const Addr copy : images) {
    if (starts.find(copy) == starts.end()) {
      errors.push_back(std::string(who) + ": snapshot copy " + hex(copy) +
                       " lies outside the evacuation extent");
    }
  }
  // Closure: no pointer field of any copy may dangle outside the extent.
  for (const Addr s : starts) {
    const Word attrs = mem.load(attributes_addr(s));
    for (Word i = 0; i < pi_of(attrs); ++i) {
      const Addr v = mem.load(pointer_field_addr(s, i));
      if (v != kNullPtr && starts.find(v) == starts.end()) {
        errors.push_back(std::string(who) + ": field " + std::to_string(i) +
                         " of copy " + hex(s) + " dangles to " + hex(v));
      }
    }
  }

  if (report.evacuations != walked) {
    errors.push_back(std::string(who) + ": evacuation count " +
                     std::to_string(report.evacuations) + " != " +
                     std::to_string(walked) + " copies in the extent");
  }
  if (report.objects_copied != walked) {
    errors.push_back(std::string(who) + ": objects_copied counter " +
                     std::to_string(report.objects_copied) + " != " +
                     std::to_string(walked) + " copies in the extent");
  }
  if (report.words_copied != end - base) {
    errors.push_back(std::string(who) + ": words_copied counter " +
                     std::to_string(report.words_copied) + " != " +
                     std::to_string(end - base) + " extent words");
  }

  // Original root slots (the prefix before the mutator registers, which
  // the mutators never write) are redirected through the snapshot map;
  // every slot, mutator registers included, must land inside the extent.
  const auto& roots = post.roots();
  for (std::size_t i = 0; i < pre.roots.size() && i < roots.size(); ++i) {
    const Addr old_root = pre.roots[i];
    if (old_root == kNullPtr) continue;
    const auto it = fwd.find(old_root);
    if (it == fwd.end()) {
      errors.push_back(std::string(who) + ": root " + std::to_string(i) +
                       " referent " + hex(old_root) + " was never evacuated");
    } else if (roots[i] != it->second) {
      errors.push_back(std::string(who) + ": root " + std::to_string(i) +
                       " not forwarded: holds " + hex(roots[i]) +
                       ", copy is at " + hex(it->second));
    }
  }
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (roots[i] != kNullPtr && starts.find(roots[i]) == starts.end()) {
      errors.push_back(std::string(who) + ": root " + std::to_string(i) +
                       " points outside the evacuation extent: " +
                       hex(roots[i]));
    }
  }
}

}  // namespace

std::string ConformanceVerdict::summary() const {
  if (ok) return "OK";
  std::ostringstream os;
  os << errors.size() << " conformance error(s):";
  for (const auto& e : errors) os << "\n  - " << e;
  return os.str();
}

double conformance_heap_factor(CollectorId id, const ConformanceCase& c) {
  const CollectorTraits t = traits_of(id);
  double factor = 2.0;  // the paper's rule of thumb (Section VI-B)
  if (t.threaded && !t.dense) {
    // Chunk/LAB collectors clamp their allocation unit to
    // semispace / (4 * threads) with a 16-word floor, so heavy
    // oversubscription of a small graph can burn more tospace in
    // per-thread slack than the 2x rule leaves. Scale headroom with the
    // thread count so the floor-sized chunks of every thread always fit.
    const double live =
        static_cast<double>(std::max<std::uint64_t>(1, c.plan.live_words()));
    factor += static_cast<double>(c.harness.threads) * 64.0 / live;
  }
  if (t.concurrent_mutator) {
    // Real mutator threads bump-allocate fromspace while the cycle runs;
    // give them room to make progress before they hit the backoff path.
    factor += 1.0;
  }
  return factor * c.extra_heap_factor;
}

void check_post_structure(CollectorId id, const HeapSnapshot& pre,
                          const Heap& post, const CycleReport& report,
                          std::vector<std::string>& errors) {
  const CollectorTraits t = traits_of(id);
  const char* who = to_string(id);

  for (const auto& x : report.lock_order_violations) {
    errors.push_back(std::string(who) + ": lock order: " + x);
  }
  if (report.validation_mismatches != 0) {
    errors.push_back(std::string(who) + ": " +
                     std::to_string(report.validation_mismatches) +
                     " shadow-graph validation mismatches");
  }

  if (t.concurrent_mutator) {
    check_snapshot_structure(who, pre, post, report, errors);
    return;
  }
  if (!t.preserves_image) {
    check_concurrent_structure(who, pre, post, report, errors);
    return;
  }

  // Liveness preservation + (where promised) dense compaction.
  VerifyOptions opts;
  opts.require_dense = t.dense;
  const VerifyResult vr = verify_collection(pre, post, opts);
  for (const auto& e : vr.errors) {
    errors.push_back(std::string(who) + ": " + e);
  }

  // Forwarding-map bijectivity; dense tiling where promised.
  std::unordered_map<Addr, Addr> fwd;
  if (extract_forwarding_map(who, pre, post, errors, fwd) && t.dense) {
    check_dense_tiling(who, pre, post, fwd, errors);
  }

  // Single-evacuation counters: injectivity above rules out double copies,
  // the collector's own counter rules out phantom or lost evacuations.
  if (report.evacuations != pre.objects.size()) {
    errors.push_back(std::string(who) + ": evacuation count " +
                     std::to_string(report.evacuations) + " != " +
                     std::to_string(pre.objects.size()) + " live objects");
  }
  if (report.objects_copied != pre.objects.size()) {
    errors.push_back(std::string(who) + ": objects_copied counter " +
                     std::to_string(report.objects_copied) + " != " +
                     std::to_string(pre.objects.size()) + " live objects");
  }
  if (report.words_copied != pre.live_words) {
    errors.push_back(std::string(who) + ": words_copied counter " +
                     std::to_string(report.words_copied) + " != " +
                     std::to_string(pre.live_words) + " live words");
  }

  // Fragmentation accounting: everything the collector took from tospace
  // is either a landed live word or admitted waste.
  const std::uint64_t consumed = post.alloc_ptr() - post.layout().current_base();
  if (report.words_copied + report.wasted_words != consumed) {
    errors.push_back(std::string(who) + ": tospace accounting: " +
                     std::to_string(report.words_copied) + " copied + " +
                     std::to_string(report.wasted_words) + " wasted != " +
                     std::to_string(consumed) + " words consumed");
  }
  if (t.dense && report.wasted_words != 0) {
    errors.push_back(std::string(who) + ": dense collector reported " +
                     std::to_string(report.wasted_words) + " wasted words");
  }
}

ConformanceVerdict run_conformance_case(CollectorId id,
                                        const ConformanceCase& c) {
  ConformanceVerdict v;
  const CollectorTraits t = traits_of(id);
  const char* who = to_string(id);

  Workload w = materialize(c.plan, conformance_heap_factor(id, c));
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  v.live_objects = pre.objects.size();
  v.live_words = pre.live_words;

  auto harness = make_harness(id, c.harness);
  try {
    v.report = harness->collect(*w.heap);
  } catch (const std::exception& e) {
    v.fail(std::string(who) + " threw: " + e.what());
    return v;
  }

  {
    std::vector<std::string> errs;
    check_post_structure(id, pre, *w.heap, v.report, errs);
    for (auto& e : errs) v.fail(std::move(e));
  }

  // Cross-collector equivalence: the same plan through the sequential
  // reference must yield the identical image modulo copy order.
  if (t.preserves_image && c.cross_compare && v.ok) {
    Workload ref = materialize(c.plan, conformance_heap_factor(id, c));
    const HeapSnapshot pre_ref = HeapSnapshot::capture(*ref.heap);
    if (pre_ref.objects.size() != pre.objects.size()) {
      v.fail("materialization diverged between the two heaps");
      return v;
    }
    SequentialCheney::collect(*ref.heap);
    std::vector<std::string> errs;
    std::unordered_map<Addr, Addr> fwd, fwd_ref;
    const bool a_ok = extract_forwarding_map(who, pre, *w.heap, errs, fwd);
    const bool b_ok =
        extract_forwarding_map("sequential", pre_ref, *ref.heap, errs, fwd_ref);
    if (a_ok && b_ok) {
      cross_compare_images(who, "sequential", pre, *w.heap, *ref.heap, fwd,
                           fwd_ref, errs);
    }
    for (auto& e : errs) v.fail(std::move(e));
  }

  // Idempotence: an immediate second cycle over the freshly collected heap
  // must preserve the graph again and copy exactly the same live set. The
  // concurrent collector's second cycle goes through the sequential
  // reference instead — re-running its mutator would change the graph.
  if (c.check_idempotence && v.ok) {
    const HeapSnapshot pre2 = HeapSnapshot::capture(*w.heap);
    if (t.preserves_image && pre2.objects.size() != pre.objects.size()) {
      v.fail(std::string(who) + ": re-collection sees " +
             std::to_string(pre2.objects.size()) + " live objects, first "
             "cycle had " + std::to_string(pre.objects.size()));
      return v;
    }
    std::vector<std::string> errs;
    if (t.preserves_image) {
      CycleReport second;
      try {
        second = harness->collect(*w.heap);
      } catch (const std::exception& e) {
        v.fail(std::string(who) + " threw on re-collection: " + e.what());
        return v;
      }
      check_post_structure(id, pre2, *w.heap, second, errs);
    } else {
      SequentialCheney::collect(*w.heap);
      const VerifyResult vr = verify_collection(pre2, *w.heap);
      errs = vr.errors;
    }
    for (auto& e : errs) v.fail("recollect: " + std::move(e));
  }

  return v;
}

}  // namespace hwgc
