// Property-based conformance oracle, shared by every collector.
//
// Generalizes the fuzz oracle (src/fuzz/oracle.cpp), which is specialized
// to the coprocessor-vs-Cheney differential pair, to any collector behind a
// CollectorHarness. One case = one graph plan + one harness configuration;
// the oracle materializes the plan, runs the collector, and checks the
// properties the collector's traits promise:
//
//   * forwarding-map bijectivity — total over the pre-live set and
//     injective (image-preserving collectors), injective over the
//     evacuated subset (concurrent, whose mutator may disconnect objects
//     mid-cycle so totality is not guaranteed by design);
//   * liveness preservation — verify_collection's graph isomorphism walk;
//   * dense tospace packing where the collector promises it, fragmentation
//     accounting (words_copied + wasted_words == consumed extent) where it
//     does not (chunk/LAB collectors);
//   * single-evacuation counters — the collector's own evacuation count
//     equals the pre-live object count (injectivity rules out doubles, the
//     counter rules out phantom or lost evacuations);
//   * cross-collector image equivalence against the sequential Cheney
//     reference run over the same plan;
//   * idempotence of immediate re-collection — a second cycle over the
//     freshly collected heap must preserve the graph again and copy
//     exactly the same live set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "conformance/harness.hpp"
#include "heap/verifier.hpp"
#include "workloads/graph_plan.hpp"

namespace hwgc {

struct ConformanceCase {
  GraphPlan plan;
  HarnessConfig harness{};
  /// Re-collect the collected heap and re-verify (skipped for the
  /// concurrent collector, where the second cycle goes through the
  /// sequential reference instead — its mutator would change the graph).
  bool check_idempotence = true;
  /// Compare the tospace image against a sequential Cheney run over the
  /// same plan (image-preserving collectors only).
  bool cross_compare = true;
  /// Extra heap headroom multiplier on top of the computed factor — the
  /// torture driver raises it for heavy oversubscription sweeps.
  double extra_heap_factor = 1.0;
};

struct ConformanceVerdict {
  bool ok = true;
  std::vector<std::string> errors;
  std::size_t live_objects = 0;
  std::uint64_t live_words = 0;
  CycleReport report;

  void fail(std::string msg) {
    ok = false;
    if (errors.size() < 64) errors.push_back(std::move(msg));
  }
  std::string summary() const;
};

/// Heap sizing for a case: the paper's 2x rule of thumb, widened for
/// chunk/LAB collectors under heavy thread counts so per-thread allocation
/// slack cannot exhaust tospace on small graphs.
double conformance_heap_factor(CollectorId id, const ConformanceCase& c);

/// Structural post-state checks on an already-collected heap: liveness
/// (verify_collection), forwarding bijectivity, density or fragmentation
/// accounting, and counter consistency — everything that can be judged
/// from (pre snapshot, post heap, report). Shared by run_conformance_case
/// and the negative tests, which seed deliberate corruptions into the post
/// heap and expect these checks to name them specifically.
void check_post_structure(CollectorId id, const HeapSnapshot& pre,
                          const Heap& post, const CycleReport& report,
                          std::vector<std::string>& errors);

/// Runs one full conformance case for `id`.
ConformanceVerdict run_conformance_case(CollectorId id,
                                        const ConformanceCase& c);

}  // namespace hwgc
