#include "conformance/forwarding.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "heap/object_model.hpp"

namespace hwgc {

namespace {

std::string hex(Addr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

}  // namespace

bool extract_forwarding_map(const char* who, const HeapSnapshot& pre,
                            const Heap& post,
                            std::vector<std::string>& errors,
                            std::unordered_map<Addr, Addr>& fwd) {
  const WordMemory& mem = post.memory();
  std::unordered_set<Addr> images;
  bool total = true;
  fwd.reserve(pre.objects.size());
  for (const auto& rec : pre.objects) {
    const Word attrs = mem.load(attributes_addr(rec.addr));
    if (!is_forwarded(attrs)) {
      errors.push_back(std::string(who) + ": live object " + hex(rec.addr) +
                       " has no forwarding pointer");
      total = false;
      continue;
    }
    const Addr copy = mem.load(link_addr(rec.addr));
    if (!images.insert(copy).second) {
      errors.push_back(std::string(who) +
                       ": forwarding map not injective at copy " + hex(copy));
      total = false;
      continue;
    }
    fwd.emplace(rec.addr, copy);
  }
  return total;
}

bool check_dense_tiling(const char* who, const HeapSnapshot& pre,
                        const Heap& post,
                        const std::unordered_map<Addr, Addr>& fwd,
                        std::vector<std::string>& errors) {
  const WordMemory& mem = post.memory();
  const Addr base = post.layout().current_base();
  std::vector<Addr> sorted;
  sorted.reserve(fwd.size());
  for (const auto& [from, copy] : fwd) {
    (void)from;
    sorted.push_back(copy);
  }
  std::sort(sorted.begin(), sorted.end());
  Addr expect = base;
  for (Addr copy : sorted) {
    if (copy != expect) {
      errors.push_back(std::string(who) +
                       ": forwarding images do not tile tospace: " +
                       "expected image at " + hex(expect) + ", next is " +
                       hex(copy));
      return false;
    }
    expect += object_words(mem.load(attributes_addr(copy)));
  }
  if (expect != base + pre.live_words || post.alloc_ptr() != expect) {
    errors.push_back(std::string(who) +
                     ": forwarding map not onto the live extent (" +
                     std::to_string(expect - base) + " image words, " +
                     std::to_string(pre.live_words) + " live words, alloc at " +
                     hex(post.alloc_ptr()) + ")");
    return false;
  }
  return true;
}

void cross_compare_images(const char* a_name, const char* b_name,
                          const HeapSnapshot& pre, const Heap& a,
                          const Heap& b,
                          const std::unordered_map<Addr, Addr>& fwd_a,
                          const std::unordered_map<Addr, Addr>& fwd_b,
                          std::vector<std::string>& errors,
                          bool shapes_only) {
  for (const auto& rec : pre.objects) {
    const Addr ca = fwd_a.at(rec.addr);
    const Addr cb = fwd_b.at(rec.addr);
    const Word attrs_a = a.memory().load(attributes_addr(ca));
    const Word attrs_b = b.memory().load(attributes_addr(cb));
    if (pi_of(attrs_a) != pi_of(attrs_b) ||
        delta_of(attrs_a) != delta_of(attrs_b)) {
      errors.push_back("image shapes diverge for pre object " + hex(rec.addr));
      continue;
    }
    if (shapes_only) continue;
    for (Word i = 0; i < rec.pi; ++i) {
      const Addr old_child = rec.pointers[i];
      const Addr want_a = old_child == kNullPtr ? kNullPtr : fwd_a.at(old_child);
      const Addr want_b = old_child == kNullPtr ? kNullPtr : fwd_b.at(old_child);
      const Addr got_a = a.memory().load(pointer_field_addr(ca, i));
      const Addr got_b = b.memory().load(pointer_field_addr(cb, i));
      if (got_a != want_a || got_b != want_b) {
        errors.push_back("pointer field " + std::to_string(i) +
                         " of pre object " + hex(rec.addr) +
                         " denotes different children: " + a_name + " " +
                         hex(got_a) + "/" + hex(want_a) + ", " + b_name + " " +
                         hex(got_b) + "/" + hex(want_b));
      }
    }
    for (Word j = 0; j < rec.delta; ++j) {
      const Word da = a.memory().load(data_field_addr(ca, rec.pi, j));
      const Word db = b.memory().load(data_field_addr(cb, rec.pi, j));
      if (da != db) {
        errors.push_back("data word " + std::to_string(j) + " of pre object " +
                         hex(rec.addr) + " diverges: " + std::to_string(da) +
                         " != " + std::to_string(db));
      }
    }
  }
}

}  // namespace hwgc
