// Forwarding-map extraction and cross-collector image comparison.
//
// These checks used to live file-local in src/fuzz/oracle.cpp, specialized
// to the coprocessor-vs-Cheney pair; the conformance kit generalizes them to
// any collector behind a CollectorHarness, so they are shared here and both
// the fuzz oracle and the conformance oracle call one implementation.
//
// All functions append human-readable diagnostics to `errors` and return
// false on the first structural failure that makes later checks unsound
// (e.g. a non-total forwarding map cannot be compared across collectors).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "heap/heap.hpp"
#include "heap/verifier.hpp"
#include "sim/types.hpp"

namespace hwgc {

/// Reads the forwarding map {pre addr -> copy} out of a collected heap and
/// checks totality over the pre-live set and injectivity. `who` prefixes
/// every diagnostic (collector name). Returns false when the map is unusable
/// for downstream comparison.
bool extract_forwarding_map(const char* who, const HeapSnapshot& pre,
                            const Heap& post,
                            std::vector<std::string>& errors,
                            std::unordered_map<Addr, Addr>& fwd);

/// Additionally checks that the forwarding images tile the dense tospace
/// extent [base, base + live words) with the published allocation pointer at
/// its end — the compaction guarantee of Cheney-order collectors. Call only
/// after extract_forwarding_map succeeded.
bool check_dense_tiling(const char* who, const HeapSnapshot& pre,
                        const Heap& post,
                        const std::unordered_map<Addr, Addr>& fwd,
                        std::vector<std::string>& errors);

/// Byte-for-byte equivalence of two collectors' tospace images modulo copy
/// order: for every pre-live object, the two copies must have the same
/// shape, the same data words, and pointer fields denoting the same
/// pre-cycle child (resolved through each heap's own forwarding map).
/// `a_name`/`b_name` label the two collectors in diagnostics. When
/// `shapes_only` is set, data words and pointer targets are skipped — the
/// comparison a concurrent collector admits, since its mutator keeps
/// changing field contents during the cycle.
void cross_compare_images(const char* a_name, const char* b_name,
                          const HeapSnapshot& pre, const Heap& a,
                          const Heap& b,
                          const std::unordered_map<Addr, Addr>& fwd_a,
                          const std::unordered_map<Addr, Addr>& fwd_b,
                          std::vector<std::string>& errors,
                          bool shapes_only = false);

}  // namespace hwgc
