#include "conformance/harness.hpp"

#include "baselines/chunked_copying.hpp"
#include "baselines/naive_parallel.hpp"
#include "baselines/work_packets.hpp"
#include "baselines/work_stealing.hpp"
#include "core/coprocessor.hpp"

namespace hwgc {

const char* to_string(CollectorId id) noexcept {
  switch (id) {
    case CollectorId::kCoprocessor: return "coprocessor";
    case CollectorId::kSequential: return "sequential";
    case CollectorId::kNaive: return "naive";
    case CollectorId::kChunked: return "chunked";
    case CollectorId::kPackets: return "packets";
    case CollectorId::kStealing: return "stealing";
    case CollectorId::kConcurrent: return "concurrent";
    case CollectorId::kSnapshot: return "snapshot";
    case CollectorId::kCount: break;
  }
  return "?";
}

std::optional<CollectorId> parse_collector(const std::string& name) {
  for (std::size_t i = 0; i < kCollectorCount; ++i) {
    const auto id = static_cast<CollectorId>(i);
    if (name == to_string(id)) return id;
  }
  return std::nullopt;
}

std::vector<CollectorId> all_collectors() {
  std::vector<CollectorId> v;
  v.reserve(kCollectorCount);
  for (std::size_t i = 0; i < kCollectorCount; ++i) {
    v.push_back(static_cast<CollectorId>(i));
  }
  return v;
}

CollectorTraits traits_of(CollectorId id) noexcept {
  CollectorTraits t;
  switch (id) {
    case CollectorId::kCoprocessor:
      break;  // dense, deterministic, image-preserving simulator
    case CollectorId::kSequential:
      t.cheney_order = true;
      break;
    case CollectorId::kNaive:
      t.deterministic = false;
      t.threaded = true;
      break;
    case CollectorId::kChunked:
      t.dense = false;
      t.deterministic = false;
      t.threaded = true;
      break;
    case CollectorId::kPackets:
      t.deterministic = false;
      t.threaded = true;
      break;
    case CollectorId::kStealing:
      t.dense = false;
      t.deterministic = false;
      t.threaded = true;
      break;
    case CollectorId::kConcurrent:
      t.preserves_image = false;
      break;
    case CollectorId::kSnapshot:
      t.deterministic = false;
      t.preserves_image = false;
      t.threaded = true;
      t.concurrent_mutator = true;
      break;
    case CollectorId::kCount:
      break;
  }
  return t;
}

namespace {

SimConfig sim_config_from(const HarnessConfig& cfg) {
  SimConfig sim;
  sim.coprocessor.num_cores = cfg.threads;
  sim.coprocessor.header_fifo_capacity = cfg.header_fifo_capacity;
  sim.coprocessor.schedule = cfg.schedule;
  sim.coprocessor.schedule_seed = cfg.schedule_seed;
  sim.memory.latency_jitter = cfg.latency_jitter;
  sim.memory.jitter_seed = cfg.schedule_seed ^ 0x9e3779b97f4a7c15ULL;
  return sim;
}

std::uint64_t parallel_sync_ops(const ParallelGcStats& s) {
  return s.cas_ops + s.mutex_acquisitions + s.steal_attempts;
}

CycleReport report_from(const ParallelGcStats& s) {
  CycleReport r;
  r.objects_copied = s.objects_copied;
  r.words_copied = s.words_copied;
  r.wasted_words = s.wasted_words;
  r.sync_ops = parallel_sync_ops(s);
  r.evacuations = s.objects_copied;
  r.parallel = s;
  return r;
}

class CoprocessorHarness final : public CollectorHarness {
 public:
  explicit CoprocessorHarness(const HarnessConfig& cfg) : cfg_(cfg) {}
  CollectorId id() const noexcept override {
    return CollectorId::kCoprocessor;
  }
  CycleReport collect(Heap& heap) override {
    Coprocessor coproc(sim_config_from(cfg_), heap);
    const GcCycleStats s = coproc.collect();
    CycleReport r;
    r.objects_copied = s.objects_copied;
    r.words_copied = s.words_copied;
    for (const auto& c : s.per_core) r.evacuations += c.objects_evacuated;
    r.lock_order_violations = s.lock_order_violations;
    r.coproc = s;
    return r;
  }

 private:
  HarnessConfig cfg_;
};

class SequentialHarness final : public CollectorHarness {
 public:
  CollectorId id() const noexcept override { return CollectorId::kSequential; }
  CycleReport collect(Heap& heap) override {
    const SequentialGcStats s = SequentialCheney::collect(heap);
    CycleReport r;
    r.objects_copied = s.objects_copied;
    r.words_copied = s.words_copied;
    r.evacuations = s.objects_copied;
    r.sequential = s;
    return r;
  }
};

class NaiveHarness final : public CollectorHarness {
 public:
  explicit NaiveHarness(const HarnessConfig& cfg) {
    cfg_.threads = cfg.threads;
    cfg_.torture = cfg.torture;
  }
  CollectorId id() const noexcept override { return CollectorId::kNaive; }
  CycleReport collect(Heap& heap) override {
    return report_from(NaiveParallelCheney(cfg_).collect(heap));
  }

 private:
  NaiveParallelCheney::Config cfg_;
};

class ChunkedHarness final : public CollectorHarness {
 public:
  explicit ChunkedHarness(const HarnessConfig& cfg) {
    cfg_.threads = cfg.threads;
    cfg_.torture = cfg.torture;
  }
  CollectorId id() const noexcept override { return CollectorId::kChunked; }
  CycleReport collect(Heap& heap) override {
    return report_from(ChunkedCopyingCollector(cfg_).collect(heap));
  }

 private:
  ChunkedCopyingCollector::Config cfg_;
};

class PacketsHarness final : public CollectorHarness {
 public:
  explicit PacketsHarness(const HarnessConfig& cfg) {
    cfg_.threads = cfg.threads;
    cfg_.torture = cfg.torture;
  }
  CollectorId id() const noexcept override { return CollectorId::kPackets; }
  CycleReport collect(Heap& heap) override {
    return report_from(WorkPacketCollector(cfg_).collect(heap));
  }

 private:
  WorkPacketCollector::Config cfg_;
};

class StealingHarness final : public CollectorHarness {
 public:
  explicit StealingHarness(const HarnessConfig& cfg) {
    cfg_.threads = cfg.threads;
    cfg_.torture = cfg.torture;
  }
  CollectorId id() const noexcept override { return CollectorId::kStealing; }
  CycleReport collect(Heap& heap) override {
    return report_from(WorkStealingCollector(cfg_).collect(heap));
  }

 private:
  WorkStealingCollector::Config cfg_;
};

class ConcurrentHarness final : public CollectorHarness {
 public:
  explicit ConcurrentHarness(const HarnessConfig& cfg) {
    cfg_.sim = sim_config_from(cfg);
    cfg_.mutator_seed = cfg.mutator_seed;
    cfg_.op_spacing = cfg.mutator_op_spacing;
    cfg_.registers = cfg.mutator_registers;
  }
  CollectorId id() const noexcept override { return CollectorId::kConcurrent; }
  CycleReport collect(Heap& heap) override {
    ConcurrentCycle cycle(cfg_, heap);
    const ConcurrentStats s = cycle.run();
    CycleReport r;
    // gc.objects_copied already includes the mutator's barrier-assisted
    // evacuations (see ConcurrentCycle::run).
    r.objects_copied = s.gc.objects_copied;
    r.words_copied = s.gc.words_copied;
    r.evacuations = s.gc.objects_copied;
    r.lock_order_violations = s.gc.lock_order_violations;
    r.validation_mismatches = s.validation_mismatches;
    r.concurrent = s;
    return r;
  }

 private:
  ConcurrentCycle::Config cfg_;
};

class SnapshotHarness final : public CollectorHarness {
 public:
  explicit SnapshotHarness(const HarnessConfig& cfg) {
    cfg_.threads = cfg.threads;
    cfg_.mutator_threads = cfg.mutator_threads;
    cfg_.mutator_registers = cfg.mutator_registers;
    cfg_.mutator_seed = cfg.mutator_seed;
    cfg_.torture = cfg.torture;
  }
  CollectorId id() const noexcept override { return CollectorId::kSnapshot; }
  CycleReport collect(Heap& heap) override {
    const SnapshotGcStats s = SnapshotCollector(cfg_).collect(heap);
    CycleReport r;
    r.objects_copied = s.objects_copied;
    r.words_copied = s.words_copied;
    r.sync_ops = s.cas_ops;
    r.evacuations = s.objects_copied;
    r.validation_mismatches = s.validation_mismatches;
    r.snapshot = s;
    return r;
  }

 private:
  SnapshotCollector::Config cfg_;
};

}  // namespace

std::unique_ptr<CollectorHarness> make_harness(CollectorId id,
                                               const HarnessConfig& cfg) {
  switch (id) {
    case CollectorId::kCoprocessor:
      return std::make_unique<CoprocessorHarness>(cfg);
    case CollectorId::kSequential:
      return std::make_unique<SequentialHarness>();
    case CollectorId::kNaive:
      return std::make_unique<NaiveHarness>(cfg);
    case CollectorId::kChunked:
      return std::make_unique<ChunkedHarness>(cfg);
    case CollectorId::kPackets:
      return std::make_unique<PacketsHarness>(cfg);
    case CollectorId::kStealing:
      return std::make_unique<StealingHarness>(cfg);
    case CollectorId::kConcurrent:
      return std::make_unique<ConcurrentHarness>(cfg);
    case CollectorId::kSnapshot:
      return std::make_unique<SnapshotHarness>(cfg);
    case CollectorId::kCount:
      break;
  }
  return nullptr;
}

}  // namespace hwgc
