// Collector-agnostic harness: every collector in the repository behind one
// `collect(Heap&) -> CycleReport` entry point.
//
// The eight collectors have eight different front doors — the coprocessor
// takes a SimConfig and optional traces, the sequential reference is a
// static function, the four software baselines each carry their own Config
// struct, and the concurrent cycle owns a mutator simulation. The
// conformance kit (conformance.hpp) and the torture driver
// (examples/torture_gc.cpp) need to run any of them over the same graph
// corpus without caring which one is underneath; the harness provides that
// seam, plus a traits record describing which guarantees each collector
// actually makes (so the oracle checks Cheney-order density only where it
// is promised, fragmentation accounting where it is not, and so on).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/parallel_common.hpp"
#include "baselines/sequential_cheney.hpp"
#include "concurrent_mutator/snapshot_collector.hpp"
#include "core/concurrent_cycle.hpp"
#include "heap/heap.hpp"
#include "sim/config.hpp"
#include "sim/counters.hpp"
#include "sim/types.hpp"

namespace hwgc {

/// Every collector the repository implements.
enum class CollectorId : std::uint8_t {
  kCoprocessor,   ///< cycle-accurate multi-core coprocessor simulation
  kSequential,    ///< single-threaded Cheney reference
  kNaive,         ///< fine-grained software locks, shared Cheney worklist
  kChunked,       ///< Imai & Tick chunk-based distribution
  kPackets,       ///< Ossia et al. work packets
  kStealing,      ///< Flood et al. work stealing with LABs
  kConcurrent,    ///< coprocessor + read-barrier mutator running during GC
  kSnapshot,      ///< pauseless SATB double-pointer collector, real mutator
                  ///< threads (src/concurrent_mutator/)
  kCount
};

inline constexpr std::size_t kCollectorCount =
    static_cast<std::size_t>(CollectorId::kCount);

const char* to_string(CollectorId id) noexcept;

/// Parses a collector name as printed by to_string; nullopt on junk.
std::optional<CollectorId> parse_collector(const std::string& name);

/// Every collector in enum order — for matrix drivers.
std::vector<CollectorId> all_collectors();

/// What each collector guarantees — drives which oracle checks apply.
struct CollectorTraits {
  /// Tospace is hole-free: copies tile [base, alloc_ptr) exactly. False
  /// only for the chunk/LAB collectors, whose fragmentation is accounted
  /// in wasted_words instead.
  bool dense = true;
  /// Copies land in breadth-first Cheney order (single-threaded only; any
  /// parallel collector's order depends on the schedule).
  bool cheney_order = false;
  /// Identical config + seed => identical counters. True for the two
  /// simulators (cycle-accurate, single host thread) and for any software
  /// baseline run with one thread; preemption makes multi-thread counter
  /// streams schedule-dependent — which is the paper's point.
  bool deterministic = true;
  /// The heap image after collection is an isomorphic copy of the pre-cycle
  /// graph. False for the concurrent cycle: its mutator keeps mutating, so
  /// only the shadow-graph validation and structural checks apply.
  bool preserves_image = true;
  /// Runs real std::threads (so it is interesting under TSan and torture).
  bool threaded = false;
  /// Real mutator threads allocate and mutate *while the cycle runs* (the
  /// pauseless snapshot collector only). Implies !preserves_image; the
  /// oracle switches to the snapshot-subset check plus the collector's own
  /// shadow-graph cross-validation of mutations that raced the cycle.
  bool concurrent_mutator = false;
};

CollectorTraits traits_of(CollectorId id) noexcept;

/// Uniform result of one collection cycle, whatever ran it. The per-family
/// payloads are kept whole for collectors that have them so callers can
/// drill into family-specific counters.
struct CycleReport {
  std::uint64_t objects_copied = 0;
  std::uint64_t words_copied = 0;   ///< live words landed (excludes waste)
  std::uint64_t wasted_words = 0;   ///< chunk/LAB fragmentation
  /// Software synchronization operations (CAS + mutex + steal probes);
  /// zero for the hardware simulators, whose arbitration is free.
  std::uint64_t sync_ops = 0;
  /// Per-object evacuation events as counted by the collector itself
  /// (per-core counters for the simulators, per-thread for the baselines).
  std::uint64_t evacuations = 0;
  /// Lock-order audit findings (simulators only); must stay empty.
  std::vector<std::string> lock_order_violations;
  /// Shadow-graph mismatches (concurrent cycle only); must stay zero.
  std::size_t validation_mismatches = 0;

  // Family payloads — exactly one is populated per run.
  std::optional<GcCycleStats> coproc;
  std::optional<SequentialGcStats> sequential;
  std::optional<ParallelGcStats> parallel;
  std::optional<ConcurrentStats> concurrent;
  std::optional<SnapshotGcStats> snapshot;
};

/// Knobs shared across the whole matrix; each harness picks out what its
/// collector understands and ignores the rest.
struct HarnessConfig {
  /// Worker threads (software baselines) or GC cores (simulators).
  std::uint32_t threads = 4;
  /// Schedule perturbation for the threaded baselines (no effect on the
  /// simulators, whose nondeterminism knob is `schedule`/`schedule_seed`).
  TortureKnobs torture{};
  /// Simulator core-step schedule policy and seed.
  SchedulePolicyKind schedule = SchedulePolicyKind::kFixedPriority;
  std::uint64_t schedule_seed = 0;
  /// Simulator memory-latency jitter (cycles).
  Cycle latency_jitter = 0;
  std::uint32_t header_fifo_capacity = 32 * 1024;
  /// Concurrent cycle: mutator program seed and op spacing.
  std::uint64_t mutator_seed = 1;
  std::uint32_t mutator_op_spacing = 3;
  /// Concurrent cycle + snapshot collector: mutator register-file size.
  /// 0 runs the cycle quiescent (no mutator roots, no mutator operations)
  /// — the trace replayer's mode, where the recorded op stream is the only
  /// mutator.
  std::uint32_t mutator_registers = 16;
  /// Snapshot collector only: real mutator threads spawned for the cycle.
  /// 0 is quiescent, same convention as mutator_registers.
  std::uint32_t mutator_threads = 2;
};

/// One collector behind the uniform entry point. Stateless between calls:
/// collect() may be invoked on any number of heaps in sequence.
class CollectorHarness {
 public:
  virtual ~CollectorHarness() = default;

  virtual CollectorId id() const noexcept = 0;
  const char* name() const noexcept { return to_string(id()); }
  CollectorTraits traits() const noexcept { return traits_of(id()); }

  /// Runs one full collection cycle: expects the live graph in the heap's
  /// current space; afterwards the heap is flipped, roots are redirected
  /// and the allocation pointer is published. Throws on collector failure
  /// (e.g. tospace exhaustion under fragmentation).
  virtual CycleReport collect(Heap& heap) = 0;
};

/// Builds the harness for `id` with the matrix knobs applied.
std::unique_ptr<CollectorHarness> make_harness(CollectorId id,
                                               const HarnessConfig& cfg = {});

}  // namespace hwgc
