#include "core/concurrent_cycle.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/gc_core.hpp"
#include "core/sync_block.hpp"
#include "heap/object_model.hpp"
#include "mem/header_fifo.hpp"
#include "mem/memory_system.hpp"

namespace hwgc {

namespace {

constexpr std::int64_t kUnknown = -2;
constexpr std::int64_t kNullChild = -1;

/// The main processor, kept running during the collection cycle. Executes
/// a synthetic register-based heap workload through the hardware read
/// barrier, and mirrors everything it learns or changes in a shadow graph
/// keyed by (stable) tospace addresses, so the final state can be checked.
class MutatorSim {
 public:
  MutatorSim(const ConcurrentCycle::Config& cfg, Heap& heap, SyncBlock& sb,
             MemorySystem& mem, HeaderFifo& fifo, CoreId id)
      : cfg_(cfg),
        heap_(heap),
        sb_(sb),
        mem_(mem),
        fifo_(fifo),
        id_(id),
        rng_(cfg.mutator_seed) {
    // Registers are root slots: the collector forwards them with the rest
    // of the root set, so after the start barrier they hold tospace
    // addresses.
    reg_base_ = heap_.roots().size();
    fromspace_used_ = heap_.used_words();
    const std::size_t seeded =
        std::min<std::size_t>(cfg_.registers / 2, reg_base_);
    for (std::uint32_t r = 0; r < cfg_.registers; ++r) {
      heap_.roots().push_back(r < seeded ? heap_.roots()[r] : kNullPtr);
    }
    // Quiescent mode (registers == 0): nothing to operate on — halt before
    // the first step so begin_op never draws from an empty register file.
    if (cfg_.registers == 0) halted_ = true;
  }

  void step(Cycle now);

  void halt() { halted_ = true; }
  bool mid_operation() const noexcept { return state_ != State::kIdle; }

  ConcurrentStats& stats() noexcept { return stats_; }

  /// Post-cycle validation: walks the shadow graph from the registers and
  /// compares every known fact against the heap.
  std::size_t validate() const;

 private:
  enum class State : std::uint8_t {
    kIdle,        // between operations (gap countdown)
    kGrayLoad,    // body load through the backlink in flight
    kChildLock,   // read barrier: acquiring the header lock
    kChildWait,   // read barrier: header load in flight
    kEvacuate,    // read barrier: free-lock critical section
  };

  struct ShadowNode {
    Word pi = 0;
    Word delta = 0;
    std::vector<std::int64_t> kids;          // kUnknown / kNullChild / index
    std::vector<std::optional<Word>> data;
  };

  Addr reg(std::uint32_t r) const { return heap_.roots()[reg_base_ + r]; }
  void set_reg(std::uint32_t r, Addr a) { heap_.roots()[reg_base_ + r] = a; }

  /// Shadow index for a tospace object, creating the node on first sight
  /// (shape read from the frame header, which is valid from Gray 1 on).
  std::size_t shadow_of(Addr tospace_addr);

  bool object_black(Addr a) const {
    return is_black(heap_.memory().load(attributes_addr(a)));
  }
  Addr backlink_of(Addr a) const {
    return heap_.memory().load(link_addr(a));
  }

  void begin_op();
  void finish_op() {
    sb_.set_busy(id_, false);
    state_ = State::kIdle;
    gap_ = 1 + static_cast<std::uint32_t>(rng_.below(
                   std::max<std::uint32_t>(1, cfg_.op_spacing) * 2));
    ++stats_.mutator_ops;
  }

  void do_idle();
  void do_gray_load();
  void do_child_lock();
  void do_child_wait();
  void do_evacuate();

  void stall() {
    ++stats_.mutator_stall_cycles;
    ++pause_run_;
    if (pause_run_ > stats_.longest_pause) stats_.longest_pause = pause_run_;
  }
  void progress() {
    ++stats_.mutator_busy_cycles;
    pause_run_ = 0;
  }

  ConcurrentCycle::Config cfg_;
  Heap& heap_;
  SyncBlock& sb_;
  MemorySystem& mem_;
  HeaderFifo& fifo_;
  CoreId id_;
  Rng rng_;
  ConcurrentStats stats_{};

  std::size_t reg_base_ = 0;
  Word fromspace_used_ = 0;  ///< worst-case evacuation demand (cycle start)
  bool halted_ = false;
  State state_ = State::kIdle;
  std::uint32_t gap_ = 0;
  Cycle pause_run_ = 0;

  // In-flight operation registers.
  std::uint32_t op_src_ = 0;   // register with the object being accessed
  std::uint32_t op_dst_ = 0;   // register receiving a loaded pointer
  Word op_field_ = 0;
  Addr op_obj_ = kNullPtr;     // tospace object being accessed
  Addr op_orig_ = kNullPtr;    // latched backlink (blackening clears it)
  Addr op_child_ = kNullPtr;   // raw value read from the original

  std::unordered_map<Addr, std::size_t> shadow_index_;
  std::vector<ShadowNode> shadow_;
};

std::size_t MutatorSim::shadow_of(Addr tospace_addr) {
  auto it = shadow_index_.find(tospace_addr);
  if (it != shadow_index_.end()) return it->second;
  const Word attrs = heap_.memory().load(attributes_addr(tospace_addr));
  if (std::getenv("HWGC_DEBUG_VALIDATE") != nullptr) {
    std::fprintf(stderr, "shadow_of: new node 0x%x attrs pi=%u d=%u black=%d state=%d\n",
                 tospace_addr, pi_of(attrs), delta_of(attrs), is_black(attrs),
                 static_cast<int>(state_));
  }
  ShadowNode node;
  node.pi = pi_of(attrs);
  node.delta = delta_of(attrs);
  node.kids.assign(node.pi, kUnknown);
  node.data.assign(node.delta, std::nullopt);
  shadow_.push_back(std::move(node));
  shadow_index_.emplace(tospace_addr, shadow_.size() - 1);
  return shadow_.size() - 1;
}

void MutatorSim::step(Cycle now) {
  (void)now;
  if (halted_) return;
  switch (state_) {
    case State::kIdle: do_idle(); break;
    case State::kGrayLoad: do_gray_load(); break;
    case State::kChildLock: do_child_lock(); break;
    case State::kChildWait: do_child_wait(); break;
    case State::kEvacuate: do_evacuate(); break;
  }
}

void MutatorSim::do_idle() {
  if (sb_.barrier_generation() == 0) return;  // collector still starting up
  if (gap_ > 0) {
    --gap_;
    return;
  }
  begin_op();
}

void MutatorSim::begin_op() {
  auto& m = heap_.memory();
  // Choose an operation the current register file allows.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double r = rng_.uniform01();
    if (r < 0.22) {
      // Allocate, Baker-style: bump DOWN from alloc_top, born black.
      const Word pi = static_cast<Word>(rng_.below(cfg_.max_pi + 1));
      const Word delta = static_cast<Word>(rng_.below(cfg_.max_delta + 1));
      const Word size = object_words(pi, delta);
      const Addr top = sb_.alloc_top();
      // Admission control: the collector's free pointer may still need to
      // evacuate every fromspace word not yet copied, so that worst case
      // stays reserved. (A real runtime would block the allocating thread
      // here until enough of fromspace is proven dead.)
      const Word copied = sb_.free() - heap_.layout().tospace_base();
      const Word reserve =
          fromspace_used_ > copied ? fromspace_used_ - copied : 0;
      if (top < size || top - size <= sb_.free() + reserve + 16) {
        ++stats_.mutator_alloc_backoffs;
        continue;  // heap too tight: pick another operation
      }
      const Addr obj = top - size;
      sb_.set_alloc_top(obj);
      m.store(attributes_addr(obj), make_attributes(pi, delta) | kBlackBit);
      m.store(link_addr(obj), kNullPtr);
      for (Word i = 0; i < pi + delta; ++i) m.store(obj + kHeaderWords + i, 0);
      const std::uint32_t dst = static_cast<std::uint32_t>(
          rng_.below(cfg_.registers));
      set_reg(dst, obj);
      const std::size_t s = shadow_of(obj);
      shadow_[s].kids.assign(shadow_[s].pi, kNullChild);
      for (Word j = 0; j < shadow_[s].delta; ++j) shadow_[s].data[j] = 0;
      ++stats_.mutator_allocations;
      progress();
      finish_op();
      return;
    }
    // Remaining ops need a non-null register.
    const std::uint32_t src = static_cast<std::uint32_t>(
        rng_.below(cfg_.registers));
    const Addr obj = reg(src);
    if (obj == kNullPtr) continue;
    const std::size_t s = shadow_of(obj);

    if (r < 0.30) {  // drop a register (future garbage)
      set_reg(src, kNullPtr);
      progress();
      finish_op();
      return;
    }
    if (r < 0.45 && shadow_[s].delta > 0) {  // write a data word
      const Word j = static_cast<Word>(rng_.below(shadow_[s].delta));
      const Word v = static_cast<Word>(rng_());
      shadow_[s].data[j] = v;
      m.store(data_field_addr(obj, shadow_[s].pi, j), v);
      if (!object_black(obj)) {
        // Gray: dual-write through to the fromspace original so the
        // copying core cannot lose the store (see header comment).
        m.store(data_field_addr(backlink_of(obj), shadow_[s].pi, j), v);
        ++stats_.barrier_dual_writes;
      }
      progress();
      finish_op();
      return;
    }
    if (r < 0.60 && shadow_[s].pi > 0) {  // write a pointer field
      const Word f = static_cast<Word>(rng_.below(shadow_[s].pi));
      const std::uint32_t from = static_cast<std::uint32_t>(
          rng_.below(cfg_.registers));
      const Addr target = reg(from);  // tospace or null: invariant holds
      shadow_[s].kids[f] =
          target == kNullPtr
              ? kNullChild
              : static_cast<std::int64_t>(shadow_of(target));
      m.store(pointer_field_addr(obj, f), target);
      if (!object_black(obj)) {
        m.store(pointer_field_addr(backlink_of(obj), f), target);
        ++stats_.barrier_dual_writes;
      }
      progress();
      finish_op();
      return;
    }
    if (r < 0.80 && shadow_[s].delta > 0) {  // read a data word
      const Word j = static_cast<Word>(rng_.below(shadow_[s].delta));
      op_obj_ = obj;
      op_src_ = src;
      op_field_ = j;
      sb_.set_busy(id_, true);
      if (object_black(obj)) {
        const Word v = m.load(data_field_addr(obj, shadow_[s].pi, j));
        if (shadow_[s].data[j] && *shadow_[s].data[j] != v) {
          ++stats_.validation_mismatches;  // caught live!
        }
        shadow_[s].data[j] = v;
        progress();
        finish_op();
        return;
      }
      // Gray: read through the backlink (one body load). Latch the
      // backlink now — blackening clears the frame's link word.
      ++stats_.barrier_gray_reads;
      op_orig_ = backlink_of(obj);
      mem_.issue_load(id_, Port::kBody,
                      data_field_addr(op_orig_, shadow_[s].pi, j));
      op_child_ = kNullPtr;
      op_dst_ = ~0u;  // data read marker
      state_ = State::kGrayLoad;
      progress();
      return;
    }
    if (shadow_[s].pi > 0) {  // read a pointer field through the barrier
      const Word f = static_cast<Word>(rng_.below(shadow_[s].pi));
      op_obj_ = obj;
      op_src_ = src;
      op_field_ = f;
      op_dst_ = static_cast<std::uint32_t>(rng_.below(cfg_.registers));
      sb_.set_busy(id_, true);
      if (object_black(obj)) {
        // Black fields are tospace-or-null already.
        const Addr child = m.load(pointer_field_addr(obj, f));
        set_reg(op_dst_, child);
        shadow_[s].kids[f] =
            child == kNullPtr
                ? kNullChild
                : static_cast<std::int64_t>(shadow_of(child));
        progress();
        finish_op();
        return;
      }
      ++stats_.barrier_gray_reads;
      op_orig_ = backlink_of(obj);
      mem_.issue_load(id_, Port::kBody, pointer_field_addr(op_orig_, f));
      state_ = State::kGrayLoad;
      progress();
      return;
    }
  }
  // Nothing suitable this cycle (e.g. every register null): count as gap.
  progress();
}

void MutatorSim::do_gray_load() {
  if (mem_.load_pending(id_, Port::kBody)) {
    stall();
    return;
  }
  auto& m = heap_.memory();
  const std::size_t s = shadow_of(op_obj_);
  if (op_dst_ == ~0u) {
    // Data read via backlink.
    const Word v =
        m.load(data_field_addr(op_orig_, shadow_[s].pi, op_field_));
    if (shadow_[s].data[op_field_] && *shadow_[s].data[op_field_] != v) {
      ++stats_.validation_mismatches;
    }
    shadow_[s].data[op_field_] = v;
    progress();
    finish_op();
    return;
  }
  // Pointer read via backlink: the original may still hold a fromspace
  // pointer — that is exactly what the barrier resolves.
  op_child_ = m.load(pointer_field_addr(op_orig_, op_field_));
  if (op_child_ == kNullPtr || heap_.layout().in_tospace(op_child_)) {
    set_reg(op_dst_, op_child_);
    shadow_[s].kids[op_field_] =
        op_child_ == kNullPtr
            ? kNullChild
            : static_cast<std::int64_t>(shadow_of(op_child_));
    progress();
    finish_op();
    return;
  }
  state_ = State::kChildLock;
  progress();
}

void MutatorSim::do_child_lock() {
  if (!sb_.try_lock_header(id_, attributes_addr(op_child_))) {
    stall();
    return;
  }
  mem_.issue_load(id_, Port::kHeader, attributes_addr(op_child_));
  state_ = State::kChildWait;
  progress();
}

void MutatorSim::do_child_wait() {
  if (mem_.load_pending(id_, Port::kHeader)) {
    stall();
    return;
  }
  const auto& m = heap_.memory();
  const Word attrs = m.load(attributes_addr(op_child_));
  if (is_forwarded(attrs)) {
    const Addr fwd = m.load(link_addr(op_child_));
    sb_.unlock_header(id_);
    set_reg(op_dst_, fwd);
    const std::size_t s = shadow_of(op_obj_);
    shadow_[s].kids[op_field_] = static_cast<std::int64_t>(shadow_of(fwd));
    progress();
    finish_op();
    return;
  }
  state_ = State::kEvacuate;
  progress();
}

void MutatorSim::do_evacuate() {
  if (mem_.store_slots_free(id_, Port::kHeader) < 2) {
    stall();
    return;
  }
  if (!sb_.try_lock_free(id_)) {
    stall();
    return;
  }
  auto& m = heap_.memory();
  const Word attrs = m.load(attributes_addr(op_child_));
  const Word size = object_words(attrs);
  const Addr new_addr = sb_.free();
  assert(new_addr + size <= sb_.alloc_top());
  sb_.set_free(new_addr + size);
  m.store(attributes_addr(op_child_), attrs | kForwardedBit);
  m.store(link_addr(op_child_), new_addr);
  mem_.issue_store(id_, Port::kHeader, attributes_addr(op_child_));
  m.store(attributes_addr(new_addr), attrs);
  m.store(link_addr(new_addr), op_child_);
  mem_.issue_store(id_, Port::kHeader, attributes_addr(new_addr));
  fifo_.push(HeaderFifo::Entry{new_addr, attrs, op_child_});
  sb_.unlock_free(id_);
  sb_.unlock_header(id_);
  ++stats_.barrier_evacuations;
  set_reg(op_dst_, new_addr);
  const std::size_t s = shadow_of(op_obj_);
  shadow_[s].kids[op_field_] = static_cast<std::int64_t>(shadow_of(new_addr));
  progress();
  finish_op();
}

std::size_t MutatorSim::validate() const {
  std::size_t mismatches = stats_.validation_mismatches;
  const auto& m = heap_.memory();
  // Reverse map: shadow index -> tospace address.
  std::vector<Addr> addr_of(shadow_.size(), kNullPtr);
  for (const auto& [a, i] : shadow_index_) addr_of[i] = a;
  // Every shadow node's known facts must hold in the final heap. Shadow
  // nodes are keyed by tospace address, so the index *is* the location.
  const bool debug = std::getenv("HWGC_DEBUG_VALIDATE") != nullptr;
  for (const auto& [addr, idx] : shadow_index_) {
    const ShadowNode& s = shadow_[idx];
    const Word attrs = m.load(attributes_addr(addr));
    if (!is_black(attrs)) {
      ++mismatches;  // everything must end black
      if (debug) std::fprintf(stderr, "validate: 0x%x not black\n", addr);
    }
    if (pi_of(attrs) != s.pi || delta_of(attrs) != s.delta) {
      ++mismatches;
      if (debug) {
        std::fprintf(stderr, "validate: 0x%x shape %u/%u vs shadow %u/%u\n",
                     addr, pi_of(attrs), delta_of(attrs), s.pi, s.delta);
      }
      continue;
    }
    for (Word f = 0; f < s.pi; ++f) {
      if (s.kids[f] == kUnknown) continue;
      const Addr actual = m.load(pointer_field_addr(addr, f));
      const Addr expect =
          s.kids[f] == kNullChild
              ? kNullPtr
              : addr_of[static_cast<std::size_t>(s.kids[f])];
      if (actual != expect) {
        ++mismatches;
        if (debug) {
          std::fprintf(stderr,
                       "validate: 0x%x ptr[%u] = 0x%x, shadow expects 0x%x\n",
                       addr, f, actual, expect);
        }
      }
    }
    for (Word j = 0; j < s.delta; ++j) {
      if (!s.data[j]) continue;
      const Word actual = m.load(data_field_addr(addr, s.pi, j));
      if (actual != *s.data[j]) {
        ++mismatches;
        if (debug) {
          std::fprintf(stderr,
                       "validate: 0x%x data[%u] = 0x%x, shadow has 0x%x\n",
                       addr, j, actual, *s.data[j]);
        }
      }
    }
  }
  return mismatches;
}

}  // namespace

ConcurrentStats ConcurrentCycle::run() {
  const std::uint32_t n = cfg_.sim.coprocessor.num_cores;
  const CoreId mut_id = n;  // the main processor participates as slot n

  SyncBlock sb(n + 1);
  MemorySystem mem(cfg_.sim.memory, n + 1);
  HeaderFifo fifo(cfg_.sim.coprocessor.header_fifo_capacity);
  GcContext ctx{sb, mem, fifo, heap_, cfg_.sim.coprocessor};

  const Addr tospace_base = heap_.layout().tospace_base();
  sb.set_scan(tospace_base);
  sb.set_free(tospace_base);
  sb.set_alloc_top(heap_.layout().tospace_end());

  MutatorSim mutator(cfg_, heap_, sb, mem, fifo, mut_id);

  std::vector<GcCore> cores;
  cores.reserve(n);
  for (CoreId id = 0; id < n; ++id) cores.emplace_back(id, ctx);

  // The mutator's barrier still arrives at the start barrier: the SB was
  // built with n+1 participants, so it must check in once.
  sb.barrier_arrive(mut_id);

  ConcurrentStats& stats = mutator.stats();
  Cycle now = 0;
  const std::uint64_t start_gen = sb.barrier_generation();
  bool cores_halted = false;
  // This loop deliberately ignores cfg.coprocessor.fast_forward: the
  // mutator steps every cycle (allocation arrivals are cycle-triggered),
  // so no cycle is ever quiescent in the DESIGN.md §13 sense. Per-tick
  // accounting below is therefore safe here — and only here.
  while (true) {
    mem.tick(now);
    sb.begin_cycle();
    if (!cores_halted) {
      // The mutator steps first each cycle: it raises its busy bit before
      // any core's termination check can run in the same cycle.
      mutator.step(now);
      for (auto& c : cores) c.step(now);
      bool all = true;
      for (const auto& c : cores) all = all && c.done();
      cores_halted = all;
      if (!cores_halted && sb.barrier_generation() > start_gen &&
          sb.worklist_empty()) {
        ++stats.gc.worklist_empty_cycles;
      }
    }
    ++now;
    if (cores_halted && mem.stores_drained()) break;
    if (now >= cfg_.sim.coprocessor.watchdog_cycles) {
      throw std::runtime_error("concurrent cycle watchdog expired");
    }
  }
  mutator.halt();
  assert(!mutator.mid_operation() &&
         "cycle terminated while the mutator held its busy bit");

  const Addr free_final = sb.free();
  heap_.flip();
  heap_.set_alloc_ptr(free_final);

  stats.gc.total_cycles = now;
  stats.gc.words_copied = free_final - tospace_base;
  stats.gc.fifo_overflows = fifo.overflows();
  stats.gc.fifo_hits = fifo.hits();
  stats.gc.fifo_misses = fifo.misses();
  stats.gc.mem_requests = mem.requests_issued();
  stats.gc.lock_order_violations = sb.violations();
  for (const auto& c : cores) {
    stats.gc.per_core.push_back(c.counters());
    stats.gc.objects_copied += c.counters().objects_evacuated;
    stats.gc.pointers_forwarded += c.counters().pointers_processed;
  }
  stats.gc.objects_copied += stats.barrier_evacuations;

  stats.validation_mismatches = mutator.validate();
  return stats;
}

}  // namespace hwgc
