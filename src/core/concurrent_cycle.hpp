// Concurrent collection — the paper's stated next step (Section V-B):
// "as a next step, we intend to allow the multi-core coprocessor to run
// concurrently to the main processor."
//
// This module combines the parallel collector with the hardware read
// barrier of the authors' prior real-time work ([26][27]): the main
// processor keeps executing during the collection cycle, and every pointer
// it loads passes through a barrier that maintains Baker's to-space
// invariant (the mutator only ever holds tospace references):
//
//   * reading a field of a BLACK object needs no work — black objects
//     contain only tospace pointers;
//   * reading a field of a GRAY object is redirected through the frame's
//     backlink to the fromspace original (the same mechanism the collector
//     cores use), and a fromspace value found there is evacuated on the
//     spot — the mutator briefly acts as one more collector core,
//     participating in the SB's header/free locks under the same
//     arbitration;
//   * writes to gray objects go to both the original and the copy, which
//     the in-order memory model makes equivalent to the prototype's
//     scheduler-serialized redirection;
//   * allocations during the cycle are served from the top of tospace
//     (Baker-style, bump-down from the SB's alloc_top register) and are
//     born black.
//
// Termination stays exactly the Section IV condition (scan == free and
// all busy bits clear): the mutator owns a busy bit of its own and holds
// it for the duration of any barrier-assisted operation, so the cycle can
// only complete while the mutator is between operations — at which point
// the to-space invariant guarantees no reachable fromspace pointer exists.
//
// The headline metric of a concurrent collector is the mutator's worst
// pause: instead of being stopped for the whole cycle, the main processor
// only ever waits for its own barrier work (a few lock acquisitions and
// memory accesses).
#pragma once

#include <cstdint>
#include <vector>

#include "heap/heap.hpp"
#include "sim/config.hpp"
#include "sim/counters.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace hwgc {

struct ConcurrentStats {
  GcCycleStats gc;                       ///< the collection cycle itself
  std::uint64_t mutator_ops = 0;         ///< operations completed during GC
  std::uint64_t barrier_gray_reads = 0;  ///< reads redirected via backlink
  std::uint64_t barrier_evacuations = 0; ///< evacuations done by the mutator
  /// Writes to gray objects that were dual-stored to both the tospace frame
  /// and the fromspace original (the write-to-gray protocol; see above).
  std::uint64_t barrier_dual_writes = 0;
  std::uint64_t mutator_allocations = 0;
  /// Allocation attempts refused by admission control (the reserve for the
  /// worst-case remaining evacuation demand was too tight). A real runtime
  /// would block the allocating thread at these points.
  std::uint64_t mutator_alloc_backoffs = 0;
  Cycle mutator_busy_cycles = 0;   ///< cycles the mutator made progress
  Cycle mutator_stall_cycles = 0;  ///< cycles spent in barrier waits
  Cycle longest_pause = 0;         ///< worst consecutive stall run

  /// Shadow-model mismatches found by the post-cycle validation walk
  /// (0 = the mutator's view of the graph survived the concurrent cycle).
  std::size_t validation_mismatches = 0;
};

class ConcurrentCycle {
 public:
  struct Config {
    SimConfig sim;
    /// Synthetic mutator program: operation mix over the mutator's
    /// register file, executed while the coprocessor collects.
    std::uint64_t mutator_seed = 1;
    /// Registers (root slots) the mutator works with. 0 = quiescent
    /// mutator: no register roots are appended and no operations run, so
    /// the cycle degenerates to a plain (concurrent-capable) collection —
    /// trace replay uses this to drive recorded workloads through the
    /// concurrent collector without perturbing the recorded heap image.
    std::uint32_t registers = 16;
    /// Average cycles between mutator operation starts (models the main
    /// processor's heap-access density; 1 = an op every cycle).
    std::uint32_t op_spacing = 3;
    Word max_pi = 3;
    Word max_delta = 6;
  };

  ConcurrentCycle(Config cfg, Heap& heap) : cfg_(cfg), heap_(heap) {}

  /// Runs one collection cycle with the mutator executing concurrently,
  /// then validates the mutator's shadow graph against the heap.
  ConcurrentStats run();

 private:
  Config cfg_;
  Heap& heap_;
};

}  // namespace hwgc
