#include "core/coprocessor.hpp"

#include <stdexcept>
#include <vector>

#include "core/gc_core.hpp"
#include "core/schedule_policy.hpp"
#include "core/sync_block.hpp"
#include "fault/fault_injector.hpp"
#include "mem/header_fifo.hpp"
#include "mem/memory_system.hpp"
#include "sim/abort.hpp"
#include "telemetry/telemetry_bus.hpp"

namespace hwgc {

GcCycleStats Coprocessor::collect(SignalTrace* trace,
                                  ScheduleTrace* schedule_trace,
                                  FaultInjector* fault,
                                  TelemetryBus* telemetry) {
  const std::uint32_t n = cfg_.coprocessor.num_cores;
  if (n == 0) throw std::invalid_argument("coprocessor needs >= 1 core");

  SyncBlock sb(n, fault);
  MemorySystem mem(cfg_.memory, n, fault);
  HeaderFifo fifo(cfg_.coprocessor.header_fifo_capacity);
  GcContext ctx{sb, mem, fifo, heap_, cfg_.coprocessor, telemetry};

  std::uint32_t sig_graywords_series = 0;
  if (telemetry != nullptr) {
    if (!telemetry->enabled()) telemetry->enable();
    telemetry->begin_collection("collection (" + std::to_string(n) +
                                " cores)");
    // Intern the main tracks in canonical order so exports list the
    // coprocessor first, then the cores, then the shared locks —
    // independent of which module happens to publish first.
    (void)telemetry->track("coprocessor");
    for (CoreId id = 0; id < n; ++id) (void)telemetry->core_track(id);
    (void)telemetry->track(to_string(SbLock::kScan));
    (void)telemetry->track(to_string(SbLock::kFree));
    sig_graywords_series = telemetry->counter_series("gray_words");
    sb.attach_telemetry(telemetry);
    fifo.attach_telemetry(telemetry);
    mem.attach_telemetry(telemetry);
    telemetry->begin_cycle(0);
    telemetry->phase(GcPhase::kRootEvacuation);
  }

  const Addr tospace_base = heap_.layout().tospace_base();
  sb.set_scan(tospace_base);
  sb.set_free(tospace_base);
  sb.set_alloc_top(heap_.layout().tospace_end());

  std::vector<GcCore> cores;
  cores.reserve(n);
  for (CoreId id = 0; id < n; ++id) cores.emplace_back(id, ctx);

  const auto policy = make_schedule_policy(cfg_.coprocessor.schedule,
                                           cfg_.coprocessor.schedule_seed);
  std::vector<CoreId> step_order;
  step_order.reserve(n);

  GcCycleStats stats;
  Cycle now = 0;
  const std::uint64_t start_gen = sb.barrier_generation();

  // Monitoring framework (Section VI-A): sample on change only, so the
  // ring stays useful for long cycles.
  std::uint16_t sig_scan = 0, sig_free = 0, sig_gray = 0, sig_busy = 0;
  std::uint64_t prev_scan = ~0ULL, prev_free = ~0ULL, prev_busy = ~0ULL;
  if (trace != nullptr) {
    sig_scan = trace->register_signal("scan");
    sig_free = trace->register_signal("free");
    sig_gray = trace->register_signal("gray_words");
    sig_busy = trace->register_signal("busy_cores");
    if (!trace->enabled()) trace->enable();
  }

  auto all_done = [&] {
    for (const auto& c : cores) {
      if (!c.done()) return false;
    }
    return true;
  };

  // Clock loop: memory retires/accepts first, then cores step in the order
  // the schedule policy picks. The default fixed order realizes the SB's
  // static-priority arbitration and its same-cycle lock hand-off; the
  // other policies explore alternative interleavings (src/fuzz/).
  // Watchdog activity monitor: per-core progress signature and the cycle it
  // last changed, so an expiry can localize the core that stopped making
  // progress (a fail-stopped core misses its clock and freezes; a merely
  // stalled or idle core still accrues stall/idle cycles).
  std::vector<Cycle> last_sig(n, 0), last_change(n, 0);

  bool cores_halted = false;
  Cycle halted_at = 0;
  bool tel_in_scan_phase = false;
  std::uint64_t tel_prev_gray = ~0ULL;
  try {
  while (true) {
    if (telemetry != nullptr) telemetry->begin_cycle(now);
    if (fault != nullptr) fault->begin_clock(now);
    mem.tick(now);
    if (!cores_halted) {
      sb.begin_cycle();
      policy->order(now, sb, step_order);
      if (schedule_trace != nullptr) schedule_trace->record(now, step_order);
      for (CoreId c : step_order) {
        if (fault != nullptr) {
          const CoreFate fate = fault->core_fate(c, sb.holds_free(c));
          if (fate == CoreFate::kStopped) continue;  // fail-stop: no clock
          if (fate == CoreFate::kStall) {
            cores[c].note_fault_stall();
            continue;
          }
        }
        cores[c].step(now);
      }
      for (CoreId c = 0; c < n; ++c) {
        const Cycle sig = cores[c].activity_signature();
        if (sig != last_sig[c]) {
          last_sig[c] = sig;
          last_change[c] = now;
        }
      }
      cores_halted = all_done();
      if (cores_halted) halted_at = now;
      if (telemetry != nullptr) {
        if (!tel_in_scan_phase && sb.barrier_generation() > start_gen) {
          tel_in_scan_phase = true;
          telemetry->phase(GcPhase::kParallelScan);
        }
        if (cores_halted) telemetry->phase(GcPhase::kDrain);
        const std::uint64_t gray = sb.free() - sb.scan();
        if (gray != tel_prev_gray) {
          tel_prev_gray = gray;
          telemetry->counter_sample(sig_graywords_series, gray);
        }
      }
      // Table I: cycles during which the worklist is empty. Counted over
      // the parallel scan phase (after the start barrier released).
      if (!cores_halted && sb.barrier_generation() > start_gen &&
          sb.worklist_empty()) {
        ++stats.worklist_empty_cycles;
      }
      if (trace != nullptr) {
        if (sb.scan() != prev_scan) {
          prev_scan = sb.scan();
          trace->sample(now, sig_scan, prev_scan);
        }
        if (sb.free() != prev_free) {
          prev_free = sb.free();
          trace->sample(now, sig_free, prev_free);
          trace->sample(now, sig_gray, sb.free() - sb.scan());
        }
        std::uint64_t busy = 0;
        for (CoreId c = 0; c < n; ++c) busy += sb.busy(c) ? 1 : 0;
        if (busy != prev_busy) {
          prev_busy = busy;
          trace->sample(now, sig_busy, busy);
        }
      }
    }
    ++now;
    if (cores_halted && (mem.stores_drained() ||
                         cfg_.coprocessor.skip_store_drain_for_test)) {
      break;  // flush complete (or deliberately defeated by a test)
    }
    if (now >= cfg_.coprocessor.watchdog_cycles) {
      // Localize a suspect before aborting. First preference: a ScanState
      // bit that reads busy while the core's architectural bit is clear
      // (stuck-at-1 fault). Second: the unfinished core whose activity
      // signature has been frozen the longest — a core that missed its
      // clock for an eighth of the whole budget is fail-stopped, not slow.
      CoreId suspect = kNoCore;
      for (CoreId c = 0; c < n && suspect == kNoCore; ++c) {
        if (sb.busy(c) && !sb.busy_raw(c)) suspect = c;
      }
      if (suspect == kNoCore) {
        Cycle worst = cfg_.coprocessor.watchdog_cycles / 8;
        for (CoreId c = 0; c < n; ++c) {
          if (cores[c].done()) continue;
          const Cycle stale = now - last_change[c];
          if (stale > worst) {
            worst = stale;
            suspect = c;
          }
        }
      }
      throw CollectionAbort(AbortReason::kWatchdog,
                            "GC coprocessor watchdog expired after " +
                                std::to_string(now) + " cycles" +
                                (suspect == kNoCore
                                     ? std::string{}
                                     : ", suspect core " +
                                           std::to_string(suspect)),
                            suspect, now);
    }
  }
  } catch (const CollectionAbort& abort) {
    // Close the telemetry epoch before propagating so the aborted attempt
    // still renders as a complete, labeled slice of the timeline.
    if (telemetry != nullptr) {
      telemetry->instant(telemetry->track("coprocessor"),
                         TelemetryCategory::kFault,
                         std::string("abort [") + to_string(abort.reason()) +
                             "]: " + abort.what());
      telemetry->end_collection(now);
    }
    throw;
  }

  // "Restart the main processor": publish the compacted heap.
  const Addr free_final = sb.free();
  heap_.flip();
  heap_.set_alloc_ptr(free_final);
  if (telemetry != nullptr) {
    telemetry->begin_cycle(now);
    telemetry->instant(telemetry->track("coprocessor"),
                       TelemetryCategory::kPhase, "flip");
    telemetry->end_collection(now);
  }

  stats.total_cycles = now;
  stats.drain_cycles = now - halted_at;
  stats.restart_stores_drained = mem.stores_drained();
  stats.faults_fired = fault != nullptr ? fault->fired_this_attempt() : 0;
  stats.words_copied = free_final - tospace_base;
  stats.fifo_overflows = fifo.overflows();
  stats.fifo_hits = fifo.hits();
  stats.fifo_misses = fifo.misses();
  stats.mem_requests = mem.requests_issued();
  stats.lock_order_violations = sb.violations();
  stats.per_core.reserve(n);
  for (const auto& c : cores) {
    stats.per_core.push_back(c.counters());
    stats.objects_copied += c.counters().objects_evacuated;
    stats.pointers_forwarded += c.counters().pointers_processed;
  }
  return stats;
}

}  // namespace hwgc
