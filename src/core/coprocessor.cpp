#include "core/coprocessor.hpp"

#include <stdexcept>
#include <vector>

#include "core/gc_core.hpp"
#include "core/schedule_policy.hpp"
#include "core/sync_block.hpp"
#include "mem/header_fifo.hpp"
#include "mem/memory_system.hpp"

namespace hwgc {

GcCycleStats Coprocessor::collect(SignalTrace* trace,
                                  ScheduleTrace* schedule_trace) {
  const std::uint32_t n = cfg_.coprocessor.num_cores;
  if (n == 0) throw std::invalid_argument("coprocessor needs >= 1 core");

  SyncBlock sb(n);
  MemorySystem mem(cfg_.memory, n);
  HeaderFifo fifo(cfg_.coprocessor.header_fifo_capacity);
  GcContext ctx{sb, mem, fifo, heap_, cfg_.coprocessor};

  const Addr tospace_base = heap_.layout().tospace_base();
  sb.set_scan(tospace_base);
  sb.set_free(tospace_base);
  sb.set_alloc_top(heap_.layout().tospace_end());

  std::vector<GcCore> cores;
  cores.reserve(n);
  for (CoreId id = 0; id < n; ++id) cores.emplace_back(id, ctx);

  const auto policy = make_schedule_policy(cfg_.coprocessor.schedule,
                                           cfg_.coprocessor.schedule_seed);
  std::vector<CoreId> step_order;
  step_order.reserve(n);

  GcCycleStats stats;
  Cycle now = 0;
  const std::uint64_t start_gen = sb.barrier_generation();

  // Monitoring framework (Section VI-A): sample on change only, so the
  // ring stays useful for long cycles.
  std::uint16_t sig_scan = 0, sig_free = 0, sig_gray = 0, sig_busy = 0;
  std::uint64_t prev_scan = ~0ULL, prev_free = ~0ULL, prev_busy = ~0ULL;
  if (trace != nullptr) {
    sig_scan = trace->register_signal("scan");
    sig_free = trace->register_signal("free");
    sig_gray = trace->register_signal("gray_words");
    sig_busy = trace->register_signal("busy_cores");
    if (!trace->enabled()) trace->enable();
  }

  auto all_done = [&] {
    for (const auto& c : cores) {
      if (!c.done()) return false;
    }
    return true;
  };

  // Clock loop: memory retires/accepts first, then cores step in the order
  // the schedule policy picks. The default fixed order realizes the SB's
  // static-priority arbitration and its same-cycle lock hand-off; the
  // other policies explore alternative interleavings (src/fuzz/).
  bool cores_halted = false;
  while (true) {
    mem.tick(now);
    if (!cores_halted) {
      sb.begin_cycle();
      policy->order(now, sb, step_order);
      if (schedule_trace != nullptr) schedule_trace->record(now, step_order);
      for (CoreId c : step_order) cores[c].step(now);
      cores_halted = all_done();
      // Table I: cycles during which the worklist is empty. Counted over
      // the parallel scan phase (after the start barrier released).
      if (!cores_halted && sb.barrier_generation() > start_gen &&
          sb.worklist_empty()) {
        ++stats.worklist_empty_cycles;
      }
      if (trace != nullptr) {
        if (sb.scan() != prev_scan) {
          prev_scan = sb.scan();
          trace->sample(now, sig_scan, prev_scan);
        }
        if (sb.free() != prev_free) {
          prev_free = sb.free();
          trace->sample(now, sig_free, prev_free);
          trace->sample(now, sig_gray, sb.free() - sb.scan());
        }
        std::uint64_t busy = 0;
        for (CoreId c = 0; c < n; ++c) busy += sb.busy(c) ? 1 : 0;
        if (busy != prev_busy) {
          prev_busy = busy;
          trace->sample(now, sig_busy, busy);
        }
      }
    }
    ++now;
    if (cores_halted && mem.stores_drained()) break;  // flush complete
    if (now >= cfg_.coprocessor.watchdog_cycles) {
      throw std::runtime_error("GC coprocessor watchdog expired after " +
                               std::to_string(now) + " cycles");
    }
  }

  // "Restart the main processor": publish the compacted heap.
  const Addr free_final = sb.free();
  heap_.flip();
  heap_.set_alloc_ptr(free_final);

  stats.total_cycles = now;
  stats.words_copied = free_final - tospace_base;
  stats.fifo_overflows = fifo.overflows();
  stats.fifo_hits = fifo.hits();
  stats.fifo_misses = fifo.misses();
  stats.mem_requests = mem.requests_issued();
  stats.lock_order_violations = sb.violations();
  stats.per_core.reserve(n);
  for (const auto& c : cores) {
    stats.per_core.push_back(c.counters());
    stats.objects_copied += c.counters().objects_evacuated;
    stats.pointers_forwarded += c.counters().pointers_processed;
  }
  return stats;
}

}  // namespace hwgc
