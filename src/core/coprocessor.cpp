#include "core/coprocessor.hpp"

#include <stdexcept>
#include <vector>

#include "core/gc_core.hpp"
#include "core/schedule_policy.hpp"
#include "core/sync_block.hpp"
#include "fault/fault_injector.hpp"
#include "mem/header_fifo.hpp"
#include "mem/memory_system.hpp"
#include "sim/abort.hpp"
#include "telemetry/telemetry_bus.hpp"

namespace hwgc {

GcCycleStats Coprocessor::collect(SignalTrace* trace,
                                  ScheduleTrace* schedule_trace,
                                  FaultInjector* fault,
                                  TelemetryBus* telemetry,
                                  CycleProfiler* profiler) {
  const std::uint32_t n = cfg_.coprocessor.num_cores;
  if (n == 0) throw std::invalid_argument("coprocessor needs >= 1 core");

  SyncBlock sb(n, fault);
  MemorySystem mem(cfg_.memory, n, fault);
  HeaderFifo fifo(cfg_.coprocessor.header_fifo_capacity);
  GcContext ctx{sb, mem, fifo, heap_, cfg_.coprocessor, telemetry, profiler};
  // A fresh attribution per attempt: an aborted attempt's partial profile
  // is wiped by the next begin_collection, so only the attempt that
  // completes survives in the profiler.
  if (profiler != nullptr) profiler->begin_collection(n);

  std::uint32_t sig_graywords_series = 0;
  if (telemetry != nullptr) {
    if (!telemetry->enabled()) telemetry->enable();
    telemetry->begin_collection("collection (" + std::to_string(n) +
                                " cores)");
    // Intern the main tracks in canonical order so exports list the
    // coprocessor first, then the cores, then the shared locks —
    // independent of which module happens to publish first.
    (void)telemetry->track("coprocessor");
    for (CoreId id = 0; id < n; ++id) (void)telemetry->core_track(id);
    (void)telemetry->track(to_string(SbLock::kScan));
    (void)telemetry->track(to_string(SbLock::kFree));
    sig_graywords_series = telemetry->counter_series("gray_words");
    sb.attach_telemetry(telemetry);
    fifo.attach_telemetry(telemetry);
    mem.attach_telemetry(telemetry);
    telemetry->begin_cycle(0);
    telemetry->phase(GcPhase::kRootEvacuation);
  }

  const Addr tospace_base = heap_.layout().tospace_base();
  sb.set_scan(tospace_base);
  sb.set_free(tospace_base);
  sb.set_alloc_top(heap_.layout().tospace_end());

  std::vector<GcCore> cores;
  cores.reserve(n);
  for (CoreId id = 0; id < n; ++id) cores.emplace_back(id, ctx);

  const auto policy = make_schedule_policy(cfg_.coprocessor.schedule,
                                           cfg_.coprocessor.schedule_seed);
  std::vector<CoreId> step_order;
  step_order.reserve(n);
  // The fixed-priority policy is stateless and always yields index order,
  // so its permutation is computed once instead of every cycle.
  const bool fixed_order =
      cfg_.coprocessor.schedule == SchedulePolicyKind::kFixedPriority;
  if (fixed_order) policy->order(0, sb, step_order);

  GcCycleStats stats;
  Cycle now = 0;
  const std::uint64_t start_gen = sb.barrier_generation();

  // Monitoring framework (Section VI-A): sample on change only, so the
  // ring stays useful for long cycles.
  std::uint16_t sig_scan = 0, sig_free = 0, sig_gray = 0, sig_busy = 0;
  std::uint64_t prev_scan = ~0ULL, prev_free = ~0ULL, prev_busy = ~0ULL;
  if (trace != nullptr) {
    sig_scan = trace->register_signal("scan");
    sig_free = trace->register_signal("free");
    sig_gray = trace->register_signal("gray_words");
    sig_busy = trace->register_signal("busy_cores");
    if (!trace->enabled()) trace->enable();
  }

  // Done bookkeeping: kDone is absorbing, so a per-core flag plus a count
  // replaces the every-cycle all-cores scan, and (fault-free) lets the
  // step and signature loops skip finished cores entirely.
  std::vector<std::uint8_t> core_done(n, 0);
  std::uint32_t done_count = 0;

  // Clock loop: memory retires/accepts first, then cores step in the order
  // the schedule policy picks. The default fixed order realizes the SB's
  // static-priority arbitration and its same-cycle lock hand-off; the
  // other policies explore alternative interleavings (src/fuzz/).
  // Watchdog activity monitor: per-core progress signature and the cycle it
  // last changed, so an expiry can localize the core that stopped making
  // progress (a fail-stopped core misses its clock and freezes; a merely
  // stalled or idle core still accrues stall/idle cycles).
  std::vector<Cycle> last_sig(n, 0), last_change(n, 0);

  bool cores_halted = false;
  Cycle halted_at = 0;
  bool tel_in_scan_phase = false;
  std::uint64_t tel_prev_gray = ~0ULL;

  // Watchdog expiry (shared by the ticked path and the fast-forward jump
  // to the budget boundary). Localize a suspect before aborting. First
  // preference: a ScanState bit that reads busy while the core's
  // architectural bit is clear (stuck-at-1 fault). Second: the unfinished
  // core whose activity signature has been frozen the longest — a core
  // that missed its clock for an eighth of the whole budget is
  // fail-stopped, not slow.
  const auto watchdog_abort = [&]() {
    CoreId suspect = kNoCore;
    for (CoreId c = 0; c < n && suspect == kNoCore; ++c) {
      if (sb.busy(c) && !sb.busy_raw(c)) suspect = c;
    }
    if (suspect == kNoCore) {
      Cycle worst = cfg_.coprocessor.watchdog_cycles / 8;
      for (CoreId c = 0; c < n; ++c) {
        if (cores[c].done()) continue;
        const Cycle stale = now - last_change[c];
        if (stale > worst) {
          worst = stale;
          suspect = c;
        }
      }
    }
    throw CollectionAbort(AbortReason::kWatchdog,
                          "GC coprocessor watchdog expired after " +
                              std::to_string(now) + " cycles" +
                              (suspect == kNoCore
                                   ? std::string{}
                                   : ", suspect core " +
                                         std::to_string(suspect)),
                          suspect, now);
  };

  // Event-driven fast-forward (DESIGN.md §13): when every component is
  // quiescent — memory ticks are pure waiting, every core's next steps are
  // exact repetitions with precomputable effects — jump the clock to the
  // next event (memory completion, fault boundary or watchdog budget)
  // instead of ticking, and apply the skipped cycles' counter increments
  // in bulk. Restricted to the fixed-priority schedule (the other policies
  // mutate per-cycle state in order()) and to runs without a telemetry bus
  // (the bus records per-cycle activity). SignalTrace and ScheduleTrace
  // stay bit-identical: no traced signal changes during a quiescent window
  // and the schedule ring is replayed via record_repeated().
  const bool ff_active =
      cfg_.coprocessor.fast_forward && telemetry == nullptr && fixed_order;
  std::vector<GcCore::FfPoll> ff_class(n);
  std::vector<StallClass> ff_prof_cls(profiler != nullptr ? n : 0);
  const auto try_fast_forward = [&]() -> Cycle {
    // Memory gate: nothing acceptable queued, no completion due this cycle.
    if (!mem.ff_quiescent()) return 0;
    const Cycle completion = mem.next_completion();
    if (completion <= now) return 0;
    // Fault gate: no armed event may be due (it would fire on a consult
    // this cycle) and no steady state may change before the jump target.
    if (fault != nullptr && fault->ff_blocked(now)) return 0;
    Cycle target = cfg_.coprocessor.watchdog_cycles;
    if (completion < target) target = completion;
    if (fault != nullptr) {
      const Cycle boundary = fault->next_cycle_boundary(now);
      if (boundary < target) target = boundary;
    }
    if (target <= now) return 0;

    if (!cores_halted) {
      // Classify every core; any kFail vetoes the jump. An injected fate
      // (fail-stop, latched stall window) overrides the state machine,
      // exactly as core_fate() does before step().
      bool all_idle_steady = true;
      for (CoreId c = 0; c < n && all_idle_steady; ++c) {
        all_idle_steady = !sb.busy_raw(c) &&
                          (fault == nullptr || !fault->stuck_busy_steady(c));
      }
      for (CoreId c = 0; c < n; ++c) {
        GcCore::FfPoll p;
        const CoreFate fate =
            fault != nullptr ? fault->steady_fate(c, now) : CoreFate::kRun;
        if (fate == CoreFate::kStopped) {
          p.kind = GcCore::FfPoll::Kind::kSkip;
        } else if (fate == CoreFate::kStall) {
          p.kind = GcCore::FfPoll::Kind::kStall;
          p.reason = StallReason::kFault;
        } else {
          p = cores[c].ff_poll();
          if (p.kind == GcCore::FfPoll::Kind::kIdle && all_idle_steady &&
              sb.stripes_idle()) {
            return 0;  // the spin ends: this core observes termination now
          }
          if (p.kind == GcCore::FfPoll::Kind::kFail &&
              p.if_suppressed != StallReason::kNone && fault != nullptr &&
              fault->lock_suppressed_steady(
                  p.if_suppressed == StallReason::kScanLock ? LockKind::kScan
                                                            : LockKind::kFree,
                  now)) {
            p.kind = GcCore::FfPoll::Kind::kStall;
            p.reason = p.if_suppressed;
          }
          if (p.kind == GcCore::FfPoll::Kind::kFail) return 0;
        }
        ff_class[c] = p;
      }
      // A lock waiter is steady only while the holder is: the holder must
      // itself be stalled (memory wait, fault stall) or fail-stopped.
      for (CoreId c = 0; c < n; ++c) {
        const GcCore::FfPoll& p = ff_class[c];
        if (p.kind == GcCore::FfPoll::Kind::kStall && p.blocker != kNoCore) {
          const auto bk = ff_class[p.blocker].kind;
          if (bk != GcCore::FfPoll::Kind::kStall &&
              bk != GcCore::FfPoll::Kind::kSkip) {
            return 0;
          }
        }
      }
    }

    // Commit the jump: apply k skipped cycles' effects in bulk.
    const Cycle k = target - now;
    if (!cores_halted) {
      for (CoreId c = 0; c < n; ++c) {
        const GcCore::FfPoll& p = ff_class[c];
        switch (p.kind) {
          case GcCore::FfPoll::Kind::kStall:
            cores[c].ff_absorb_stall(p.reason, k);
            break;
          case GcCore::FfPoll::Kind::kIdle:
            cores[c].ff_absorb_idle(k);
            break;
          default:
            continue;  // kSkip: counters frozen, signature unchanged
        }
        last_sig[c] = cores[c].activity_signature();
        last_change[c] = target - 1;
      }
      if (sb.barrier_generation() > start_gen && sb.worklist_empty()) {
        stats.worklist_empty_cycles += k;
      }
      if (schedule_trace != nullptr) {
        schedule_trace->record_repeated(now, k, step_order);
      }
      if (profiler != nullptr) {
        // The per-core classes are constant across the quiescent window,
        // so absorbing k copies of this snapshot reproduces the ticked
        // run's attribution (and its binding stream) exactly.
        for (CoreId c = 0; c < n; ++c) {
          switch (ff_class[c].kind) {
            case GcCore::FfPoll::Kind::kStall:
              ff_prof_cls[c] = class_of(ff_class[c].reason);
              break;
            case GcCore::FfPoll::Kind::kIdle:
              ff_prof_cls[c] = StallClass::kWorklistStarved;
              break;
            default:  // kSkip: done core misses its clock
              ff_prof_cls[c] = StallClass::kIdleDeconfigured;
              break;
          }
        }
        profiler->absorb(ff_prof_cls, k);
      }
    } else if (profiler != nullptr) {
      profiler->absorb_drain(k);
    }
    return k;
  };

  try {
  while (true) {
    if (ff_active) {
      const Cycle skipped = try_fast_forward();
      if (skipped > 0) {
        now += skipped;
        if (now >= cfg_.coprocessor.watchdog_cycles) {
          // Mirror the ticked run exactly: its last begin_clock() before
          // the expiry was for the final (here: skipped) cycle, and the
          // suspect scan's busy() consults run against that clock.
          if (fault != nullptr) fault->begin_clock(now - 1);
          watchdog_abort();
        }
      }
    }
    if (telemetry != nullptr) telemetry->begin_cycle(now);
    if (fault != nullptr) fault->begin_clock(now);
    mem.tick(now);
    if (!cores_halted) {
      sb.begin_cycle();
      if (!fixed_order) policy->order(now, sb, step_order);
      if (schedule_trace != nullptr) schedule_trace->record(now, step_order);
      for (CoreId c : step_order) {
        if (fault != nullptr) {
          const CoreFate fate = fault->core_fate(c, sb.holds_free(c));
          if (fate == CoreFate::kStopped) continue;  // fail-stop: no clock
          if (fate == CoreFate::kStall) {
            cores[c].note_fault_stall();
            continue;
          }
        } else if (core_done[c] != 0) {
          continue;  // fault-free: a finished core's step is a no-op
        }
        cores[c].step(now);
      }
      for (CoreId c = 0; c < n; ++c) {
        if (core_done[c] != 0) {
          if (fault == nullptr) continue;  // signature frozen once done
        } else if (cores[c].done()) {
          core_done[c] = 1;
          ++done_count;
        }
        const Cycle sig = cores[c].activity_signature();
        if (sig != last_sig[c]) {
          last_sig[c] = sig;
          last_change[c] = now;
        }
      }
      cores_halted = done_count == n;
      if (cores_halted) halted_at = now;
      if (telemetry != nullptr) {
        if (!tel_in_scan_phase && sb.barrier_generation() > start_gen) {
          tel_in_scan_phase = true;
          telemetry->phase(GcPhase::kParallelScan);
        }
        if (cores_halted) telemetry->phase(GcPhase::kDrain);
        const std::uint64_t gray = sb.free() - sb.scan();
        if (gray != tel_prev_gray) {
          tel_prev_gray = gray;
          telemetry->counter_sample(sig_graywords_series, gray);
        }
      }
      // Table I: cycles during which the worklist is empty. Counted over
      // the parallel scan phase (after the start barrier released).
      if (!cores_halted && sb.barrier_generation() > start_gen &&
          sb.worklist_empty()) {
        ++stats.worklist_empty_cycles;
      }
      if (trace != nullptr) {
        if (sb.scan() != prev_scan) {
          prev_scan = sb.scan();
          trace->sample(now, sig_scan, prev_scan);
        }
        if (sb.free() != prev_free) {
          prev_free = sb.free();
          trace->sample(now, sig_free, prev_free);
          trace->sample(now, sig_gray, sb.free() - sb.scan());
        }
        std::uint64_t busy = 0;
        for (CoreId c = 0; c < n; ++c) busy += sb.busy(c) ? 1 : 0;
        if (busy != prev_busy) {
          prev_busy = busy;
          trace->sample(now, sig_busy, busy);
        }
      }
      // Fold this cycle's per-core records (cores that missed their clock
      // — fail-stopped or already done — fold as idle-deconfigured) and
      // commit the cycle's binding class to the critical path.
      if (profiler != nullptr) profiler->end_cycle();
    } else if (profiler != nullptr) {
      profiler->drain_cycle();  // cores halted, store-drain window
    }
    ++now;
    if (cores_halted && (mem.stores_drained() ||
                         cfg_.coprocessor.skip_store_drain_for_test)) {
      break;  // flush complete (or deliberately defeated by a test)
    }
    if (now >= cfg_.coprocessor.watchdog_cycles) watchdog_abort();
  }
  } catch (const CollectionAbort& abort) {
    // Close the telemetry epoch before propagating so the aborted attempt
    // still renders as a complete, labeled slice of the timeline.
    if (telemetry != nullptr) {
      telemetry->instant(telemetry->track("coprocessor"),
                         TelemetryCategory::kFault,
                         std::string("abort [") + to_string(abort.reason()) +
                             "]: " + abort.what());
      telemetry->end_collection(now);
    }
    throw;
  }

  // "Restart the main processor": publish the compacted heap.
  const Addr free_final = sb.free();
  heap_.flip();
  heap_.set_alloc_ptr(free_final);
  if (telemetry != nullptr) {
    telemetry->begin_cycle(now);
    telemetry->instant(telemetry->track("coprocessor"),
                       TelemetryCategory::kPhase, "flip");
    telemetry->end_collection(now);
  }

  if (profiler != nullptr) profiler->end_collection();
  stats.total_cycles = now;
  stats.drain_cycles = now - halted_at;
  stats.restart_stores_drained = mem.stores_drained();
  stats.faults_fired = fault != nullptr ? fault->fired_this_attempt() : 0;
  stats.words_copied = free_final - tospace_base;
  stats.fifo_overflows = fifo.overflows();
  stats.fifo_hits = fifo.hits();
  stats.fifo_misses = fifo.misses();
  stats.mem_requests = mem.requests_issued();
  stats.lock_order_violations = sb.violations();
  stats.per_core.reserve(n);
  for (const auto& c : cores) {
    stats.per_core.push_back(c.counters());
    stats.objects_copied += c.counters().objects_evacuated;
    stats.pointers_forwarded += c.counters().pointers_processed;
  }
  return stats;
}

}  // namespace hwgc
