// The multi-core garbage-collection coprocessor (paper Figure 2).
//
// Owns the per-collection hardware state — Synchronization Block, memory
// access scheduler and header FIFO — instantiates N GC cores and clocks
// them to completion of one collection cycle. The "main processor" is
// stopped for the duration of the cycle (Section V-B); its root registers
// are the heap's root vector.
//
// A cycle runs:
//   1. scan/free initialized to the tospace base (Core 1's job, V-E);
//   2. core 0 evacuates all root-referenced objects;
//   3. start barrier releases every core into the parallel scan loop;
//   4. each core observes scan == free with all busy bits clear and halts;
//   5. the coprocessor waits until every store buffer has drained, then
//      "restarts the main processor": flips the heap and publishes the
//      final free pointer as the new allocation frontier.
#pragma once

#include <cstdint>

#include "heap/heap.hpp"
#include "sim/config.hpp"
#include "sim/counters.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace hwgc {

class ScheduleTrace;
class FaultInjector;
class TelemetryBus;
class CycleProfiler;

class Coprocessor {
 public:
  Coprocessor(const SimConfig& cfg, Heap& heap)
      : cfg_(cfg), heap_(heap) {}

  /// Runs one complete collection cycle on the attached heap and returns
  /// its statistics. The heap must hold the live graph in its current
  /// space; afterwards the graph lives compacted in the flipped space and
  /// the roots are redirected.
  ///
  /// Throws CollectionAbort (a std::runtime_error) when a detector trips:
  /// watchdog expiry, header checksum mismatch, wild access/pointer or
  /// evacuation overflow. Without fault injection the algorithm is
  /// deadlock-free by lock ordering, so an abort indicates a modeling bug;
  /// under injection the recovery layer (src/fault/recovery.hpp) catches
  /// the abort and retries.
  ///
  /// If `trace` is non-null, the scan pointer, free pointer, gray-object
  /// word count and busy-core count are sampled on change every cycle —
  /// the software counterpart of the prototype's 32-signal FPGA monitor
  /// (Section VI-A).
  ///
  /// Cores are stepped each cycle in the order produced by the configured
  /// SchedulePolicy (cfg.coprocessor.schedule; fixed index order — the
  /// prototype's static prioritization — by default). If `schedule_trace`
  /// is non-null the most recent step orders are recorded there, so a
  /// failing fuzz case can print the interleaving that broke it.
  ///
  /// `fault`, when non-null, is threaded through to the SyncBlock and the
  /// memory scheduler and consulted for each core's fate every cycle; the
  /// caller (normally RecoveringCollector) must have called begin_attempt.
  ///
  /// `telemetry`, when non-null, receives the full typed event stream of
  /// the cycle (phases, per-core activity spans, lock holds, FIFO and
  /// memory counters, the flip) as one bus epoch; on a CollectionAbort the
  /// epoch is closed with an abort instant before the exception propagates.
  /// Pure observation: simulated cycle counts are identical with and
  /// without a bus attached.
  ///
  /// `profiler`, when non-null, receives an exclusive stall-class
  /// attribution for every cycle of every core (profile/stall_class.hpp)
  /// plus the per-cycle binding class for the critical path. Unlike the
  /// telemetry bus it does not disable fast-forward: quiescent windows
  /// carry constant per-core classes, so they are absorbed in bulk and
  /// the resulting CycleProfile is bit-identical to a ticked run.
  GcCycleStats collect(SignalTrace* trace = nullptr,
                       ScheduleTrace* schedule_trace = nullptr,
                       FaultInjector* fault = nullptr,
                       TelemetryBus* telemetry = nullptr,
                       CycleProfiler* profiler = nullptr);

  const SimConfig& config() const noexcept { return cfg_; }

 private:
  SimConfig cfg_;
  Heap& heap_;
};

}  // namespace hwgc
