#include "core/gc_core.hpp"

#include <cassert>
#include <string>

#include "heap/object_model.hpp"
#include "sim/abort.hpp"

namespace hwgc {

GcCore::GcCore(CoreId id, GcContext& ctx)
    : id_(id),
      ctx_(ctx),
      state_(id == 0 ? State::kRootInit : State::kStartBarrier),
      start_barrier_gen_(ctx.sb.barrier_generation()) {}

GcCore::FfPoll GcCore::ff_poll() const {
  FfPoll p;  // defaults to kFail: execute the cycle normally
  switch (state_) {
    case State::kDone:
      p.kind = FfPoll::Kind::kSkip;
      return p;
    case State::kStartBarrier:
      // Steady only once this core's arrival is registered (re-arrival is
      // idempotent) and the barrier has not released; the first arrival
      // and the release transition must run live.
      if (ctx_.sb.barrier_generation() > start_barrier_gen_) return p;
      if (!ctx_.sb.barrier_arrived(id_)) return p;
      p.kind = FfPoll::Kind::kStall;
      p.reason = StallReason::kBarrier;
      return p;
    case State::kFetchWork: {
      if (ctx_.sb.worklist_empty()) {
        // An idle poll would grab dispensed stripe work — progress.
        if (ctx_.cfg.subobject_copy && ctx_.sb.stripe_work_available()) {
          return p;
        }
        // Spin on the empty worklist. The caller vetoes this when the
        // termination condition holds (the spin would end right now) —
        // that needs the fault-steady view of the busy bits.
        p.kind = FfPoll::Kind::kIdle;
        return p;
      }
      const CoreId owner = ctx_.sb.scan_owner();
      if (owner != SyncBlock::kNoOwner && owner != id_) {
        // Scan lock held across cycles: the owner sits in kFetchHeaderWait
        // (FIFO-miss header read under the lock). Steady while the owner is.
        p.kind = FfPoll::Kind::kStall;
        p.reason = StallReason::kScanLock;
        p.blocker = owner;
      } else if (owner == SyncBlock::kNoOwner) {
        // Would acquire and make progress — unless an injected grant
        // suppression is steadily withholding the lock.
        p.if_suppressed = StallReason::kScanLock;
      }
      return p;
    }
    case State::kFetchHeaderWait:
    case State::kChildPeekWait:
    case State::kChildHeaderWait:
      if (ctx_.mem.load_pending(id_, Port::kHeader)) {
        p.kind = FfPoll::Kind::kStall;
        p.reason = StallReason::kHeaderLoad;
      }
      return p;
    case State::kPtrLoadWait:
    case State::kDataLoadWait:
    case State::kStripeLoadWait:
      // The store-buffer-busy sub-cases of these states never coexist with
      // a fast-forward window: a waiting store sits in the scheduler queue
      // and is acceptable, which already fails the memory gate.
      if (ctx_.mem.load_pending(id_, Port::kBody)) {
        p.kind = FfPoll::Kind::kStall;
        p.reason = StallReason::kBodyLoad;
      }
      return p;
    case State::kChildLock: {
      const CoreId holder =
          ctx_.sb.header_lock_holder(id_, attributes_addr(child_));
      if (holder != SyncBlock::kNoOwner) {
        p.kind = FfPoll::Kind::kStall;
        p.reason = StallReason::kHeaderLock;
        p.blocker = holder;
      }
      return p;
    }
    case State::kEvacuate: {
      if (ctx_.mem.store_slots_free(id_, Port::kHeader) < 2) {
        return p;  // waiting stores fail the memory gate anyway: run live
      }
      const CoreId owner = ctx_.sb.free_owner();
      if (owner != SyncBlock::kNoOwner && owner != id_) {
        // Free lock held across cycles only by a fail-stopped core that
        // died at the grant; the blocker check confirms it is dead.
        p.kind = FfPoll::Kind::kStall;
        p.reason = StallReason::kFreeLock;
        p.blocker = owner;
      } else if (owner == SyncBlock::kNoOwner) {
        p.if_suppressed = StallReason::kFreeLock;
      }
      return p;
    }
    default:
      // Issue / store / blacken / publish / root states advance every
      // cycle (or depend on store buffers, which the memory gate covers).
      return p;
  }
}

void GcCore::step(Cycle now) {
  now_ = now;
  switch (state_) {
    case State::kRootInit: do_root_init(); break;
    case State::kStartBarrier: do_start_barrier(); break;
    case State::kFetchWork: do_fetch_work(); break;
    case State::kFetchHeaderWait: do_fetch_header_wait(); break;
    case State::kPtrLoadIssue: do_ptr_load_issue(); break;
    case State::kPtrLoadWait: do_ptr_load_wait(); break;
    case State::kChildPeek: do_child_peek(); break;
    case State::kChildPeekWait: do_child_peek_wait(); break;
    case State::kChildLock: do_child_lock(); break;
    case State::kChildHeaderWait: do_child_header_wait(); break;
    case State::kEvacuate: do_evacuate(); break;
    case State::kPtrStore: do_ptr_store(); break;
    case State::kDataLoadIssue: do_data_load_issue(); break;
    case State::kDataLoadWait: do_data_load_wait(); break;
    case State::kBlacken: do_blacken(); break;
    case State::kStripePublish: do_stripe_publish(); break;
    case State::kStripeLoadIssue: do_stripe_load_issue(); break;
    case State::kStripeLoadWait: do_stripe_load_wait(); break;
    case State::kStripeBlacken: do_stripe_blacken(); break;
    case State::kDone: break;
  }
}

// --- Root phase ------------------------------------------------------------

void GcCore::do_root_init() {
  assert(id_ == 0 && "only core 0 walks the root set");
  auto& roots = ctx_.heap.roots();
  // Skip null roots, one per cycle (register scan on the main processor).
  while (root_k_ < roots.size() && roots[root_k_] == kNullPtr) ++root_k_;
  if (root_k_ >= roots.size()) {
    state_ = State::kStartBarrier;
    work();
    return;
  }
  child_ = roots[root_k_];
  processing_root_ = true;
  state_ = ctx_.cfg.markbit_early_read ? State::kChildPeek : State::kChildLock;
  work();
}

void GcCore::do_start_barrier() {
  ctx_.sb.barrier_arrive(id_);
  if (ctx_.sb.barrier_generation() > start_barrier_gen_) {
    state_ = State::kFetchWork;
    work();
  } else {
    stall(StallReason::kBarrier);
  }
}

// --- Work fetch (scan-lock critical section) --------------------------------

void GcCore::do_fetch_work() {
  // The scan and free registers "can simultaneously be read by all cores"
  // (Section V-C), so the idle poll and the termination check are
  // lock-free; the scan lock is only claimed once work is visible.
  if (ctx_.sb.worklist_empty()) {
    // Sub-object extension: an idle core offers itself to the stripe
    // dispenser before spinning.
    if (ctx_.cfg.subobject_copy &&
        ctx_.sb.stripe_grab(ctx_.cfg.stripe_words, stripe_task_)) {
      stripe_j_ = 0;
      ctx_.sb.set_busy(id_, true);
      state_ = State::kStripeLoadIssue;
      work();
      return;
    }
    if (ctx_.sb.all_idle() && ctx_.sb.stripes_idle()) {
      // Termination: scan == free, no core mid-object (Section IV) and no
      // stripe job in flight.
      state_ = State::kDone;
      work();
      return;
    }
    idle();  // spin; gray objects may still appear
    return;
  }
  if (!ctx_.sb.try_lock_scan(id_)) {
    stall(StallReason::kScanLock);
    return;
  }
  if (ctx_.sb.worklist_empty()) {
    // Another core fetched the last gray object between our poll and the
    // lock acquisition; back off.
    ctx_.sb.unlock_scan(id_);
    idle();
    return;
  }
  frame_addr_ = ctx_.sb.scan();
  HeaderFifo::Entry entry;
  if (ctx_.fifo.pop(frame_addr_, entry)) {
    ++counters_.fifo_hits;
    begin_object(entry.attributes, entry.backlink);
    work();
    return;
  }
  // FIFO overflow made us lose this header: read it from memory while
  // holding the scan lock — the prolonged critical section the paper
  // reports for cup.
  ++counters_.fifo_misses;
  ctx_.mem.issue_load(id_, Port::kHeader, attributes_addr(frame_addr_));
  state_ = State::kFetchHeaderWait;
  work();
}

void GcCore::do_fetch_header_wait() {
  if (ctx_.mem.load_pending(id_, Port::kHeader)) {
    stall(StallReason::kHeaderLoad);
    return;
  }
  verify_header_ecc(frame_addr_);
  const auto& m = ctx_.heap.memory();
  begin_object(m.load(attributes_addr(frame_addr_)),
               m.load(link_addr(frame_addr_)));
  work();
}

void GcCore::verify_header_ecc(Addr obj) const {
  const auto& m = ctx_.heap.memory();
  if (!m.ecc_enabled()) return;
  for (const Addr a : {attributes_addr(obj), link_addr(obj)}) {
    if (!m.ecc_ok(a)) {
      throw CollectionAbort(AbortReason::kChecksum,
                            "core " + std::to_string(id_) +
                                ": header checksum mismatch at word " +
                                std::to_string(a),
                            id_, now_);
    }
  }
}

void GcCore::begin_object(Word attrs, Addr backlink) {
  assert(ctx_.sb.holds_scan(id_));
  attrs_ = attrs;
  pi_ = pi_of(attrs);
  delta_ = delta_of(attrs);
  orig_addr_ = backlink;
  field_i_ = 0;
  data_j_ = 0;
  ctx_.sb.set_scan(frame_addr_ + object_words(attrs));
  ctx_.sb.set_busy(id_, true);
  ctx_.sb.unlock_scan(id_);
  state_ = pi_ > 0 ? State::kPtrLoadIssue : data_phase_state();
}

GcCore::State GcCore::data_phase_state() const {
  if (delta_ == 0) return State::kBlacken;
  if (ctx_.cfg.subobject_copy && delta_ >= ctx_.cfg.stripe_threshold) {
    return State::kStripePublish;
  }
  return State::kDataLoadIssue;
}

// --- Pointer-field processing ------------------------------------------------

void GcCore::do_ptr_load_issue() {
  assert(!ctx_.mem.load_pending(id_, Port::kBody));
  ctx_.mem.issue_load(id_, Port::kBody,
                      pointer_field_addr(orig_addr_, field_i_));
  state_ = State::kPtrLoadWait;
  work();
}

void GcCore::do_ptr_load_wait() {
  if (ctx_.mem.load_pending(id_, Port::kBody)) {
    stall(StallReason::kBodyLoad);
    return;
  }
  child_ = ctx_.heap.memory().load(pointer_field_addr(orig_addr_, field_i_));
  ++counters_.pointers_processed;
  if (child_ == kNullPtr) {
    fwd_ = kNullPtr;
    state_ = State::kPtrStore;
  } else if (ctx_.heap.layout().in_tospace(child_)) {
    // Concurrent mode: the mutator's read barrier maintains the to-space
    // invariant, so a field it wrote during the cycle already holds a
    // tospace pointer — final as-is. (Never occurs when the main
    // processor is stopped.)
    fwd_ = child_;
    state_ = State::kPtrStore;
  } else if (!ctx_.heap.layout().in_fromspace(child_)) {
    // Address-decode fault detection: a pointer field must hold null or an
    // address inside one of the semispaces. Anything else is a corrupted
    // pointer (e.g. an injected bit flip) about to become a wild access.
    throw CollectionAbort(AbortReason::kWildPointer,
                          "core " + std::to_string(id_) +
                              ": pointer field holds " +
                              std::to_string(child_) +
                              ", outside both semispaces",
                          id_, now_);
  } else {
    state_ =
        ctx_.cfg.markbit_early_read ? State::kChildPeek : State::kChildLock;
  }
  work();
}

void GcCore::do_child_peek() {
  // Mark-bit early read (Section VI-B): inspect the child header WITHOUT
  // acquiring the header lock. The header transaction is atomic and the
  // comparator array orders it after any in-flight store, so the core sees
  // either the pre-evacuation or the complete post-evacuation header.
  assert(!ctx_.mem.load_pending(id_, Port::kHeader));
  ctx_.mem.issue_load(id_, Port::kHeader, attributes_addr(child_));
  state_ = State::kChildPeekWait;
  work();
}

void GcCore::do_child_peek_wait() {
  if (ctx_.mem.load_pending(id_, Port::kHeader)) {
    stall(StallReason::kHeaderLoad);
    return;
  }
  verify_header_ecc(child_);
  const auto& m = ctx_.heap.memory();
  const Word attrs = m.load(attributes_addr(child_));
  if (is_forwarded(attrs)) {
    fwd_ = m.load(link_addr(child_));
    child_resolved();  // no lock was needed
  } else {
    state_ = State::kChildLock;  // must lock and re-read
  }
  work();
}

void GcCore::do_child_lock() {
  if (!ctx_.sb.try_lock_header(id_, attributes_addr(child_))) {
    stall(StallReason::kHeaderLock);
    return;
  }
  assert(!ctx_.mem.load_pending(id_, Port::kHeader));
  ctx_.mem.issue_load(id_, Port::kHeader, attributes_addr(child_));
  state_ = State::kChildHeaderWait;
  work();
}

void GcCore::do_child_header_wait() {
  if (ctx_.mem.load_pending(id_, Port::kHeader)) {
    stall(StallReason::kHeaderLoad);
    return;
  }
  verify_header_ecc(child_);
  const auto& m = ctx_.heap.memory();
  child_attrs_ = m.load(attributes_addr(child_));
  if (is_forwarded(child_attrs_)) {
    fwd_ = m.load(link_addr(child_));
    ctx_.sb.unlock_header(id_);
    child_resolved();
  } else {
    state_ = State::kEvacuate;
  }
  work();
}

void GcCore::do_evacuate() {
  // Keep the free-lock critical section at one cycle: both header stores
  // must be issuable immediately, so wait for two free slots first.
  if (ctx_.mem.store_slots_free(id_, Port::kHeader) < 2) {
    stall(StallReason::kHeaderStore);
    return;
  }
  if (!ctx_.sb.try_lock_free(id_)) {
    stall(StallReason::kFreeLock);
    return;
  }
  const Word size_c = object_words(child_attrs_);
  const Addr new_addr = ctx_.sb.free();
  if (new_addr + size_c > ctx_.heap.layout().tospace_end() ||
      new_addr + size_c > ctx_.sb.alloc_top()) {
    // Never reachable with equally sized semispaces and the concurrent
    // mutator's allocation admission control — unless a fault corrupted a
    // header's size field; a hard failure beats silent corruption of the
    // allocation region.
    throw CollectionAbort(AbortReason::kOverflow,
                          "core " + std::to_string(id_) +
                              ": evacuation overflow, tospace exhausted "
                              "during collection",
                          id_, now_);
  }
  ctx_.sb.set_free(new_addr + size_c);

  auto& m = ctx_.heap.memory();
  // Fromspace original: mark evacuated + install forwarding pointer.
  m.store(attributes_addr(child_), child_attrs_ | kForwardedBit);
  m.store(link_addr(child_), new_addr);
  ctx_.mem.issue_store(id_, Port::kHeader, attributes_addr(child_));
  // Tospace frame: gray header {pi, delta} + backlink to the original.
  m.store(attributes_addr(new_addr), child_attrs_);
  m.store(link_addr(new_addr), child_);
  ctx_.mem.issue_store(id_, Port::kHeader, attributes_addr(new_addr));
  ctx_.fifo.push(HeaderFifo::Entry{new_addr, child_attrs_, child_});

  ctx_.sb.unlock_free(id_);
  ctx_.sb.unlock_header(id_);
  fwd_ = new_addr;
  ++counters_.objects_evacuated;
  child_resolved();
  work();
}

void GcCore::child_resolved() {
  if (processing_root_) {
    // Roots live in main-processor registers: updating them needs no heap
    // memory operation (Section V-E).
    ctx_.heap.roots()[root_k_] = fwd_;
    ++root_k_;
    processing_root_ = false;
    state_ = State::kRootInit;
  } else {
    state_ = State::kPtrStore;
  }
}

void GcCore::do_ptr_store() {
  if (ctx_.mem.store_busy(id_, Port::kBody)) {
    stall(StallReason::kBodyStore);
    return;
  }
  // Concurrent mode: a mutator store may have overwritten this field of
  // the original between our load and now. The read barrier guarantees
  // mutator stores carry tospace (or null) pointers, so a changed value is
  // final and replaces our resolution. (No-op when the main processor is
  // stopped: nothing mutates fromspace during the cycle.)
  const Addr current =
      ctx_.heap.memory().load(pointer_field_addr(orig_addr_, field_i_));
  if (current != child_) {
    assert(current == kNullPtr || ctx_.heap.layout().in_tospace(current));
    fwd_ = current;
  }
  const Addr dst = pointer_field_addr(frame_addr_, field_i_);
  ctx_.heap.memory().store(dst, fwd_);
  ctx_.mem.issue_store(id_, Port::kBody, dst);
  ++field_i_;
  advance_field();
  work();
}

void GcCore::advance_field() {
  state_ = field_i_ < pi_ ? State::kPtrLoadIssue : data_phase_state();
}

// --- Data-area copy ----------------------------------------------------------

void GcCore::do_data_load_issue() {
  assert(!ctx_.mem.load_pending(id_, Port::kBody));
  ctx_.mem.issue_load(id_, Port::kBody,
                      data_field_addr(orig_addr_, pi_, data_j_));
  state_ = State::kDataLoadWait;
  work();
}

void GcCore::do_data_load_wait() {
  if (ctx_.mem.load_pending(id_, Port::kBody)) {
    stall(StallReason::kBodyLoad);
    return;
  }
  if (ctx_.mem.store_busy(id_, Port::kBody)) {
    stall(StallReason::kBodyStore);
    return;
  }
  auto& m = ctx_.heap.memory();
  const Word v = m.load(data_field_addr(orig_addr_, pi_, data_j_));
  const Addr dst = data_field_addr(frame_addr_, pi_, data_j_);
  m.store(dst, v);
  ctx_.mem.issue_store(id_, Port::kBody, dst);
  ++data_j_;
  state_ = data_j_ < delta_ ? State::kDataLoadIssue : State::kBlacken;
  work();
}

// --- Sub-object striped copy (Section VII future work 1) --------------------

void GcCore::do_stripe_publish() {
  // Hand the data area to the SB dispenser; this core is then free to
  // fetch more scan work while idle cores copy the stripes. On a full
  // dispenser, fall back to the ordinary sequential copy.
  if (!ctx_.sb.stripe_publish(orig_addr_, frame_addr_, attrs_)) {
    state_ = State::kDataLoadIssue;
    work();
    return;
  }
  ++counters_.objects_scanned;  // pointer area done; data now dispensed
  ctx_.sb.set_busy(id_, false);
  state_ = State::kFetchWork;
  work();
}

void GcCore::do_stripe_load_issue() {
  assert(!ctx_.mem.load_pending(id_, Port::kBody));
  ctx_.mem.issue_load(id_, Port::kBody,
                      data_field_addr(stripe_task_.orig, stripe_task_.pi,
                                      stripe_task_.offset + stripe_j_));
  state_ = State::kStripeLoadWait;
  work();
}

void GcCore::do_stripe_load_wait() {
  if (ctx_.mem.load_pending(id_, Port::kBody)) {
    stall(StallReason::kBodyLoad);
    return;
  }
  if (ctx_.mem.store_busy(id_, Port::kBody)) {
    stall(StallReason::kBodyStore);
    return;
  }
  auto& m = ctx_.heap.memory();
  const Word j = stripe_task_.offset + stripe_j_;
  const Word v = m.load(data_field_addr(stripe_task_.orig, stripe_task_.pi, j));
  const Addr dst = data_field_addr(stripe_task_.copy, stripe_task_.pi, j);
  m.store(dst, v);
  ctx_.mem.issue_store(id_, Port::kBody, dst);
  ++stripe_j_;
  if (stripe_j_ < stripe_task_.length) {
    state_ = State::kStripeLoadIssue;
  } else if (ctx_.sb.stripe_complete(stripe_task_.slot)) {
    state_ = State::kStripeBlacken;  // last stripe: finish the object
  } else {
    ctx_.sb.set_busy(id_, false);
    state_ = State::kFetchWork;
  }
  work();
}

void GcCore::do_stripe_blacken() {
  if (ctx_.mem.store_busy(id_, Port::kHeader)) {
    stall(StallReason::kHeaderStore);
    return;
  }
  auto& m = ctx_.heap.memory();
  m.store(attributes_addr(stripe_task_.copy),
          stripe_task_.attrs | kBlackBit);
  m.store(link_addr(stripe_task_.copy), kNullPtr);
  ctx_.mem.issue_store(id_, Port::kHeader,
                       attributes_addr(stripe_task_.copy));
  ctx_.sb.set_busy(id_, false);
  state_ = State::kFetchWork;
  work();
}

// --- Blackening ----------------------------------------------------------------

void GcCore::do_blacken() {
  if (ctx_.mem.store_busy(id_, Port::kHeader)) {
    stall(StallReason::kHeaderStore);
    return;
  }
  auto& m = ctx_.heap.memory();
  m.store(attributes_addr(frame_addr_), attrs_ | kBlackBit);
  m.store(link_addr(frame_addr_), kNullPtr);
  ctx_.mem.issue_store(id_, Port::kHeader, attributes_addr(frame_addr_));
  ctx_.sb.set_busy(id_, false);
  ++counters_.objects_scanned;
  state_ = State::kFetchWork;
  work();
}

}  // namespace hwgc
