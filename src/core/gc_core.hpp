// One microprogrammed GC core (paper Sections IV and V).
//
// Each core executes the parallel Cheney scan loop as a per-cycle state
// machine — the software analogue of the prototype's 180-word microprogram.
// One state transition per clock; memory operations are initiated
// asynchronously through the core's four port buffers, and the core stalls
// (attributing the cycle to a StallReason) only when
//   * a lock is contended (scan / free / header CAM),
//   * it needs load data that has not arrived,
//   * it issues a store into a full store buffer, or
//   * it waits at a synchronizing micro-instruction (barrier).
//
// Core 0 plays the paper's "Core 1" role: it evacuates the root set before
// the start barrier releases the other cores into the scan loop
// (Section V-E).
#pragma once

#include <cstdint>

#include "core/sync_block.hpp"
#include "heap/heap.hpp"
#include "mem/header_fifo.hpp"
#include "mem/memory_system.hpp"
#include "profile/cycle_profiler.hpp"
#include "sim/config.hpp"
#include "sim/counters.hpp"
#include "sim/types.hpp"
#include "telemetry/telemetry_bus.hpp"

namespace hwgc {

/// Shared hardware context visible to every core.
struct GcContext {
  SyncBlock& sb;
  MemorySystem& mem;
  HeaderFifo& fifo;
  Heap& heap;
  CoprocessorConfig cfg;
  TelemetryBus* bus = nullptr;  ///< optional observability sink
  /// Optional stall-attribution sink (profile/cycle_profiler.hpp). Same
  /// pay-for-use contract as the bus: null costs one branch per
  /// core-cycle — but unlike the bus it does not suppress fast-forward
  /// (quiescent windows are absorbed in bulk, bit-identically).
  CycleProfiler* profiler = nullptr;
};

class GcCore {
 public:
  GcCore(CoreId id, GcContext& ctx);

  /// Advances the core by one clock cycle.
  void step(Cycle now);

  /// True once the core has observed global termination (scan == free with
  /// every busy bit clear) and left the scan loop.
  bool done() const noexcept { return state_ == State::kDone; }

  CoreId id() const noexcept { return id_; }
  const CoreCounters& counters() const noexcept { return counters_; }

  /// Called by the clock loop instead of step() when an injected transient
  /// stall holds the core's clock for this cycle.
  void note_fault_stall() { stall(StallReason::kFault); }

  /// Monotone progress signature for the watchdog's per-core activity
  /// monitor: advances every cycle the core is stepped (work, idle spin or
  /// stall all count), freezes only when the core misses its clock — which
  /// under fault injection means a fail-stopped core.
  Cycle activity_signature() const noexcept {
    return counters_.busy_cycles + counters_.idle_cycles +
           counters_.total_stalls();
  }

  // --- fast-forward support (DESIGN.md §13) -------------------------------

  /// Core-local quiescence classification. A core is quiescent when every
  /// upcoming step() until some external event is an exact repetition with
  /// a precomputable effect:
  ///   kSkip  — done: step() is a no-op, counters frozen;
  ///   kStall — stalls with `reason` every cycle; when the stall is on a
  ///            lock, `blocker` names the holder, who must be quiescent
  ///            too for the wait to be steady;
  ///   kIdle  — spins on an empty worklist (idle_cycles advances); the
  ///            caller must still rule out the termination transition and
  ///            stripe work (they need fault-steady global views);
  ///   kFail  — the next step makes progress or mutates shared state: the
  ///            cycle must be executed normally.
  /// Pure: consults no fault hooks and mutates nothing. Fault fates
  /// (stall windows, fail-stop) override this in the clock loop.
  struct FfPoll {
    enum class Kind : std::uint8_t { kFail, kSkip, kStall, kIdle };
    Kind kind = Kind::kFail;
    StallReason reason = StallReason::kNone;
    CoreId blocker = kNoCore;
    /// kFail while an uncontended scan/free lock acquisition is the only
    /// obstacle: an injected steady grant suppression turns these into
    /// kStall(kScanLock/kFreeLock). kNone otherwise.
    StallReason if_suppressed = StallReason::kNone;
  };
  FfPoll ff_poll() const;

  /// Applies `k` cycles of the classified steady behavior in one step.
  void ff_absorb_stall(StallReason r, Cycle k) noexcept {
    counters_.stalls[static_cast<std::size_t>(r)] += k;
  }
  void ff_absorb_idle(Cycle k) noexcept { counters_.idle_cycles += k; }

 private:
  enum class State : std::uint8_t {
    // Root phase (core 0) / start barrier (all cores).
    kRootInit,
    kStartBarrier,
    // Scan loop.
    kFetchWork,
    kFetchHeaderWait,  // header FIFO miss: memory read under the scan lock
    kPtrLoadIssue,
    kPtrLoadWait,
    kChildPeek,        // markbit_early_read: unlocked header read
    kChildPeekWait,
    kChildLock,
    kChildHeaderWait,
    kEvacuate,
    kPtrStore,
    kDataLoadIssue,
    kDataLoadWait,
    kBlacken,
    // Sub-object copying (Section VII future work 1).
    kStripePublish,
    kStripeLoadIssue,
    kStripeLoadWait,
    kStripeBlacken,
    kDone,
  };

  // Every clock cycle a stepped core spends lands in exactly one of these
  // three accountings; each also publishes the cycle's activity to the
  // telemetry bus (observation only — simulated timing is unaffected).
  void stall(StallReason r) {
    counters_.add_stall(r);
    if (ctx_.bus != nullptr) {
      ctx_.bus->core_cycle(id_, CoreActivity::kStall, r);
    }
    if (ctx_.profiler != nullptr) ctx_.profiler->record_stall(id_, r);
  }
  void work() {
    ++counters_.busy_cycles;
    if (ctx_.bus != nullptr) ctx_.bus->core_cycle(id_, CoreActivity::kBusy);
    if (ctx_.profiler != nullptr) ctx_.profiler->record_work(id_);
  }
  void idle() {
    ++counters_.idle_cycles;
    if (ctx_.bus != nullptr) ctx_.bus->core_cycle(id_, CoreActivity::kIdle);
    if (ctx_.profiler != nullptr) ctx_.profiler->record_idle(id_);
  }

  // State handlers; each models exactly one clock cycle.
  void do_root_init();
  void do_start_barrier();
  void do_fetch_work();
  void do_fetch_header_wait();
  void do_ptr_load_issue();
  void do_ptr_load_wait();
  void do_child_peek();
  void do_child_peek_wait();
  void do_child_lock();
  void do_child_header_wait();
  void do_evacuate();
  void do_ptr_store();
  void do_data_load_issue();
  void do_data_load_wait();
  void do_blacken();
  void do_stripe_publish();
  void do_stripe_load_issue();
  void do_stripe_load_wait();
  void do_stripe_blacken();

  /// Common continuation once the header of the object at `scan` is known:
  /// advance scan past it, mark this core busy, release the scan lock.
  void begin_object(Word attrs, Addr backlink);

  /// Continuation after a child pointer has been resolved to `fwd_`.
  void child_resolved();

  /// Next state after pointer field `field_i_` has been written.
  void advance_field();

  /// State that starts the data-area phase of the current object: plain
  /// sequential copy, striped hand-off (large objects with subobject_copy
  /// enabled) or straight to blackening when there is no data.
  State data_phase_state() const;

  /// Header-load ECC check (fault detection): verifies the checksums of
  /// both header words of `obj` before the core consumes them. Throws
  /// CollectionAbort(kChecksum) on a mismatch. No-op with ECC disabled.
  void verify_header_ecc(Addr obj) const;

  CoreId id_;
  GcContext& ctx_;
  CoreCounters counters_{};
  State state_;
  Cycle now_ = 0;  ///< current clock, for abort reports

  // Per-object registers (the core's register file).
  Addr frame_addr_ = kNullPtr;  ///< tospace copy under construction
  Addr orig_addr_ = kNullPtr;   ///< fromspace original (from the backlink)
  Word attrs_ = 0;
  Word pi_ = 0;
  Word delta_ = 0;
  Word field_i_ = 0;
  Word data_j_ = 0;
  Addr child_ = kNullPtr;
  Word child_attrs_ = 0;
  Addr fwd_ = kNullPtr;

  // Sub-object copying registers.
  SyncBlock::StripeTask stripe_task_{};
  Word stripe_j_ = 0;

  // Root-evacuation bookkeeping (core 0 only).
  std::size_t root_k_ = 0;
  bool processing_root_ = false;

  std::uint64_t start_barrier_gen_ = 0;
};

}  // namespace hwgc
