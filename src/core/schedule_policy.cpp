#include "core/schedule_policy.hpp"

#include <numeric>
#include <sstream>

#include "sim/rng.hpp"

namespace hwgc {

namespace {

/// Index order — the prototype's static prioritization.
class FixedPrioritySchedule final : public SchedulePolicy {
 public:
  void order(Cycle, const SyncBlock& sb, std::vector<CoreId>& out) override {
    out.resize(sb.num_cores());
    std::iota(out.begin(), out.end(), CoreId{0});
  }
};

/// Round-robin: the highest-priority core advances by one every cycle, so
/// no core is permanently favored by the arbiter.
class RotatingSchedule final : public SchedulePolicy {
 public:
  void order(Cycle now, const SyncBlock& sb, std::vector<CoreId>& out) override {
    const std::uint32_t n = sb.num_cores();
    out.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      out[i] = static_cast<CoreId>((now + i) % n);
    }
  }
};

/// Fresh seeded permutation every cycle (Fisher-Yates over the core ids).
class RandomSchedule final : public SchedulePolicy {
 public:
  explicit RandomSchedule(std::uint64_t seed) : rng_(seed) {}

  void order(Cycle, const SyncBlock& sb, std::vector<CoreId>& out) override {
    const std::uint32_t n = sb.num_cores();
    out.resize(n);
    std::iota(out.begin(), out.end(), CoreId{0});
    for (std::uint32_t i = n; i > 1; --i) {
      std::swap(out[i - 1], out[rng_.below(i)]);
    }
  }

 private:
  Rng rng_;
};

/// Steps every core that holds an SB lock (scan, free, or a header-lock
/// register) after all cores that hold none. A lock held at the start of a
/// cycle then stays visibly held while every contender steps first — the
/// worst case for the release/re-acquire windows of the protocol.
class AdversarialSchedule final : public SchedulePolicy {
 public:
  void order(Cycle, const SyncBlock& sb, std::vector<CoreId>& out) override {
    out.clear();
    const std::uint32_t n = sb.num_cores();
    for (CoreId c = 0; c < n; ++c) {
      if (!holds_any(sb, c)) out.push_back(c);
    }
    for (CoreId c = 0; c < n; ++c) {
      if (holds_any(sb, c)) out.push_back(c);
    }
  }

 private:
  static bool holds_any(const SyncBlock& sb, CoreId c) {
    return sb.holds_scan(c) || sb.holds_free(c) || sb.holds_header(c);
  }
};

}  // namespace

std::unique_ptr<SchedulePolicy> make_schedule_policy(SchedulePolicyKind kind,
                                                     std::uint64_t seed) {
  switch (kind) {
    case SchedulePolicyKind::kFixedPriority:
      return std::make_unique<FixedPrioritySchedule>();
    case SchedulePolicyKind::kRotating:
      return std::make_unique<RotatingSchedule>();
    case SchedulePolicyKind::kRandom:
      return std::make_unique<RandomSchedule>(seed);
    case SchedulePolicyKind::kAdversarial:
      return std::make_unique<AdversarialSchedule>();
  }
  return std::make_unique<FixedPrioritySchedule>();
}

bool parse_schedule_policy(const std::string& name, SchedulePolicyKind& out) {
  for (auto k : {SchedulePolicyKind::kFixedPriority,
                 SchedulePolicyKind::kRotating, SchedulePolicyKind::kRandom,
                 SchedulePolicyKind::kAdversarial}) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::string ScheduleTrace::dump() const {
  std::ostringstream os;
  if (recorded_ > ring_.size()) {
    os << "(" << (recorded_ - ring_.size()) << " earlier cycles elided)\n";
  }
  for (const auto& [cycle, order] : ring_) {
    os << "cycle " << cycle << ":";
    for (CoreId c : order) os << ' ' << c;
    os << '\n';
  }
  return os.str();
}

}  // namespace hwgc
