// Pluggable per-cycle core step order.
//
// Within one clock cycle the simulator steps every core once; because the
// SB's per-cycle acquisition budgets make the first core to claim a lock
// win, the step order IS the arbitration policy. The prototype hard-wires
// static prioritization (lower index wins), which kFixedPriority
// reproduces. The other policies explore alternative interleavings of the
// scan/free/header protocol: a correct algorithm must produce the same
// live graph under every one of them (the property the fuzz harness in
// src/fuzz/ checks), the same way NB-FEB and SynCron validate their
// primitives against many executions of a sequential specification.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sync_block.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace hwgc {

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  /// Writes the permutation of core ids to step this cycle into `out`.
  /// Called once per clock, after begin_cycle() and before any core steps;
  /// `sb` exposes the lock ownership left by the previous cycle.
  virtual void order(Cycle now, const SyncBlock& sb,
                     std::vector<CoreId>& out) = 0;
};

/// Builds the policy for `kind`. `seed` feeds the kRandom permutation
/// stream and is ignored by the deterministic policies.
std::unique_ptr<SchedulePolicy> make_schedule_policy(SchedulePolicyKind kind,
                                                     std::uint64_t seed);

/// Parses a policy name ("fixed", "rotating", "random", "adversarial") as
/// printed by to_string(SchedulePolicyKind). Returns false on unknown names.
bool parse_schedule_policy(const std::string& name, SchedulePolicyKind& out);

/// Bounded ring of the most recent step orders. The fuzz driver attaches
/// one to Coprocessor::collect and prints it when the differential oracle
/// fails, so the interleaving that produced the failure can be read off.
class ScheduleTrace {
 public:
  explicit ScheduleTrace(std::size_t capacity = 64) : capacity_(capacity) {}

  void record(Cycle now, const std::vector<CoreId>& order) {
    ++recorded_;
    if (ring_.size() >= capacity_) ring_.pop_front();
    ring_.emplace_back(now, order);
  }

  /// Equivalent of `count` consecutive record() calls for cycles
  /// [first, first+count) that all step the same `order` — the fast-forward
  /// path's way of keeping the ring and the recorded count bit-identical
  /// to a ticked run without materializing the skipped cycles.
  void record_repeated(Cycle first, Cycle count,
                       const std::vector<CoreId>& order) {
    recorded_ += count;
    Cycle i = count > capacity_ ? count - capacity_ : 0;
    for (; i < count; ++i) {
      if (ring_.size() >= capacity_) ring_.pop_front();
      ring_.emplace_back(first + i, order);
    }
  }

  std::uint64_t cycles_recorded() const noexcept { return recorded_; }
  const std::deque<std::pair<Cycle, std::vector<CoreId>>>& orders() const {
    return ring_;
  }

  /// Human-readable tail of the schedule, one line per cycle:
  /// "cycle 1234: 3 0 1 2".
  std::string dump() const;

 private:
  std::size_t capacity_;
  std::deque<std::pair<Cycle, std::vector<CoreId>>> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace hwgc
