#include "core/sync_block.hpp"

#include <algorithm>
#include <cassert>

namespace hwgc {

SyncBlock::SyncBlock(std::uint32_t num_cores)
    : header_locks_(num_cores),
      busy_(num_cores, 0),
      barrier_arrived_(num_cores, 0) {
  assert(num_cores >= 1);
}

void SyncBlock::audit(CoreId core, const char* acquiring) {
  // Fixed ordering scan < header < free: while holding a header lock a core
  // must not claim scan; while holding free it must claim neither header
  // nor scan (Section IV).
  const bool holds_h = holds_header(core);
  const bool holds_f = holds_free(core);
  const std::string_view what{acquiring};
  const bool bad = (what == "scan" && (holds_h || holds_f)) ||
                   (what == "header" && holds_f);
  if (bad) {
    violations_.push_back("core " + std::to_string(core) + " acquires " +
                          std::string(what) + " while holding " +
                          (holds_f ? "free" : "header"));
  }
}

bool SyncBlock::try_lock_scan(CoreId core) {
  assert(core < num_cores());
  if (scan_owner_ == core) return true;
  if (scan_owner_ != kNoOwner || scan_acquired_this_cycle_) return false;
  audit(core, "scan");
  scan_owner_ = core;
  scan_acquired_this_cycle_ = true;
  return true;
}

void SyncBlock::unlock_scan(CoreId core) {
  assert(scan_owner_ == core && "unlock by non-owner");
  (void)core;
  scan_owner_ = kNoOwner;
}

bool SyncBlock::try_lock_free(CoreId core) {
  assert(core < num_cores());
  if (free_owner_ == core) return true;
  if (free_owner_ != kNoOwner || free_acquired_this_cycle_) return false;
  free_owner_ = core;
  free_acquired_this_cycle_ = true;
  return true;
}

void SyncBlock::unlock_free(CoreId core) {
  assert(free_owner_ == core && "unlock by non-owner");
  (void)core;
  free_owner_ = kNoOwner;
}

bool SyncBlock::try_lock_header(CoreId core, Addr addr) {
  assert(core < num_cores());
  assert(addr != kNullPtr);
  // CAM compare against all other cores' header-lock registers, in
  // parallel in hardware.
  for (CoreId other = 0; other < num_cores(); ++other) {
    if (other != core && header_locks_[other] == addr) return false;
  }
  audit(core, "header");
  header_locks_[core] = addr;
  return true;
}

void SyncBlock::unlock_header(CoreId core) {
  assert(header_locks_[core].has_value() && "unlock of unheld header lock");
  header_locks_[core].reset();
}

bool SyncBlock::all_idle() const noexcept {
  return std::all_of(busy_.begin(), busy_.end(),
                     [](std::uint8_t b) { return b == 0; });
}

bool SyncBlock::stripe_publish(Addr orig, Addr copy, Word attrs) {
  for (std::uint32_t s = 0; s < kStripeSlots; ++s) {
    if (!stripe_slot_active_[s]) {
      stripe_slot_active_[s] = true;
      stripe_slots_[s] = StripeJob{orig, copy, attrs, 0, 0};
      return true;
    }
  }
  return false;
}

bool SyncBlock::stripe_grab(Word stripe_words, StripeTask& out) {
  if (stripe_grabbed_this_cycle_) return false;
  for (std::uint32_t s = 0; s < kStripeSlots; ++s) {
    if (!stripe_slot_active_[s]) continue;
    StripeJob& job = stripe_slots_[s];
    const Word delta = delta_of(job.attrs);
    if (job.next_offset >= delta) continue;  // fully dispensed, draining
    out.orig = job.orig;
    out.copy = job.copy;
    out.attrs = job.attrs;
    out.pi = pi_of(job.attrs);
    out.offset = job.next_offset;
    out.length = std::min<Word>(stripe_words, delta - job.next_offset);
    out.slot = s;
    job.next_offset += out.length;
    ++job.outstanding;
    stripe_grabbed_this_cycle_ = true;
    return true;
  }
  return false;
}

bool SyncBlock::stripe_complete(std::uint32_t slot) {
  assert(slot < kStripeSlots && stripe_slot_active_[slot]);
  StripeJob& job = stripe_slots_[slot];
  assert(job.outstanding > 0);
  --job.outstanding;
  if (job.outstanding == 0 && job.next_offset >= delta_of(job.attrs)) {
    stripe_slot_active_[slot] = false;  // job done; caller blackens
    return true;
  }
  return false;
}

bool SyncBlock::stripes_idle() const noexcept {
  for (std::uint32_t s = 0; s < kStripeSlots; ++s) {
    if (stripe_slot_active_[s]) return false;
  }
  return true;
}

void SyncBlock::barrier_arrive(CoreId core) {
  assert(core < num_cores());
  if (barrier_arrived_[core]) return;
  barrier_arrived_[core] = 1;
  if (++barrier_count_ == num_cores()) {
    std::fill(barrier_arrived_.begin(), barrier_arrived_.end(),
              std::uint8_t{0});
    barrier_count_ = 0;
    ++barrier_gen_;
  }
}

}  // namespace hwgc
