#include "core/sync_block.hpp"

#include <algorithm>
#include <cassert>

#include "fault/fault_injector.hpp"
#include "telemetry/telemetry_bus.hpp"

namespace hwgc {

SyncBlock::SyncBlock(std::uint32_t num_cores, FaultInjector* fault)
    : fault_(fault),
      header_locks_(num_cores),
      busy_(num_cores, 0),
      barrier_arrived_(num_cores, 0) {
  assert(num_cores >= 1);
}

void SyncBlock::audit(CoreId core, const char* acquiring) {
  // Fixed ordering scan < header < free: while holding a header lock a core
  // must not claim scan; while holding free it must claim neither header
  // nor scan (Section IV).
  const bool holds_h = holds_header(core);
  const bool holds_f = holds_free(core);
  const std::string_view what{acquiring};
  const bool bad = (what == "scan" && (holds_h || holds_f)) ||
                   (what == "header" && holds_f);
  if (bad) {
    violations_.push_back("core " + std::to_string(core) + " acquires " +
                          std::string(what) + " while holding " +
                          (holds_f ? "free" : "header"));
  }
}

bool SyncBlock::try_lock_scan(CoreId core) {
  assert(core < num_cores());
  if (scan_owner_ == core) return true;
  if (scan_owner_ != kNoOwner || scan_acquired_this_cycle_) return false;
  if (fault_ != nullptr && fault_->lock_grant_suppressed(LockKind::kScan)) {
    return false;  // injected arbitration glitch: grant withheld this cycle
  }
  audit(core, "scan");
  scan_owner_ = core;
  scan_acquired_this_cycle_ = true;
  if (tel_ != nullptr) tel_->lock_acquired(SbLock::kScan, core);
  return true;
}

void SyncBlock::unlock_scan(CoreId core) {
  assert(scan_owner_ == core && "unlock by non-owner");
  (void)core;
  scan_owner_ = kNoOwner;
  if (tel_ != nullptr) tel_->lock_released(SbLock::kScan, core);
}

bool SyncBlock::try_lock_free(CoreId core) {
  assert(core < num_cores());
  if (free_owner_ == core) return true;
  if (free_owner_ != kNoOwner || free_acquired_this_cycle_) return false;
  if (fault_ != nullptr && fault_->lock_grant_suppressed(LockKind::kFree)) {
    return false;
  }
  if (fault_ != nullptr && fault_->free_grant_fatal(core)) {
    // The core dies at the grant, inside the 1-cycle free critical section:
    // the lock stays held by a dead core and is never released, so every
    // other core stalls on it until the watchdog aborts the attempt and
    // recovery deconfigures the core.
    free_owner_ = core;
    free_acquired_this_cycle_ = true;
    // Publish the acquisition: the timeline should show the dead core
    // holding the free lock for the rest of the attempt.
    if (tel_ != nullptr) tel_->lock_acquired(SbLock::kFree, core);
    return false;
  }
  free_owner_ = core;
  free_acquired_this_cycle_ = true;
  if (tel_ != nullptr) tel_->lock_acquired(SbLock::kFree, core);
  return true;
}

void SyncBlock::unlock_free(CoreId core) {
  assert(free_owner_ == core && "unlock by non-owner");
  (void)core;
  free_owner_ = kNoOwner;
  if (tel_ != nullptr) tel_->lock_released(SbLock::kFree, core);
}

bool SyncBlock::try_lock_header(CoreId core, Addr addr) {
  assert(core < num_cores());
  assert(addr != kNullPtr);
  // CAM compare against all other cores' header-lock registers, in
  // parallel in hardware.
  for (CoreId other = 0; other < num_cores(); ++other) {
    if (other != core && header_locks_[other] == addr) return false;
  }
  audit(core, "header");
  header_locks_[core] = addr;
  return true;
}

void SyncBlock::unlock_header(CoreId core) {
  assert(header_locks_[core].has_value() && "unlock of unheld header lock");
  header_locks_[core].reset();
}

bool SyncBlock::busy(CoreId core) const {
  if (busy_[core] != 0) return true;
  return fault_ != nullptr && fault_->busy_stuck(core);
}

bool SyncBlock::all_idle() const {
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (busy(c)) return false;
  }
  return true;
}

bool SyncBlock::stripe_publish(Addr orig, Addr copy, Word attrs) {
  for (std::uint32_t s = 0; s < kStripeSlots; ++s) {
    if (!stripe_slot_active_[s]) {
      stripe_slot_active_[s] = true;
      stripe_slots_[s] = StripeJob{orig, copy, attrs, 0, 0};
      return true;
    }
  }
  return false;
}

bool SyncBlock::stripe_grab(Word stripe_words, StripeTask& out) {
  if (stripe_grabbed_this_cycle_) return false;
  for (std::uint32_t s = 0; s < kStripeSlots; ++s) {
    if (!stripe_slot_active_[s]) continue;
    StripeJob& job = stripe_slots_[s];
    const Word delta = delta_of(job.attrs);
    if (job.next_offset >= delta) continue;  // fully dispensed, draining
    out.orig = job.orig;
    out.copy = job.copy;
    out.attrs = job.attrs;
    out.pi = pi_of(job.attrs);
    out.offset = job.next_offset;
    out.length = std::min<Word>(stripe_words, delta - job.next_offset);
    out.slot = s;
    job.next_offset += out.length;
    ++job.outstanding;
    stripe_grabbed_this_cycle_ = true;
    return true;
  }
  return false;
}

bool SyncBlock::stripe_complete(std::uint32_t slot) {
  assert(slot < kStripeSlots && stripe_slot_active_[slot]);
  StripeJob& job = stripe_slots_[slot];
  assert(job.outstanding > 0);
  --job.outstanding;
  if (job.outstanding == 0 && job.next_offset >= delta_of(job.attrs)) {
    stripe_slot_active_[slot] = false;  // job done; caller blackens
    return true;
  }
  return false;
}

bool SyncBlock::stripes_idle() const noexcept {
  for (std::uint32_t s = 0; s < kStripeSlots; ++s) {
    if (stripe_slot_active_[s]) return false;
  }
  return true;
}

void SyncBlock::barrier_arrive(CoreId core) {
  assert(core < num_cores());
  if (barrier_arrived_[core]) return;
  barrier_arrived_[core] = 1;
  if (++barrier_count_ == num_cores()) {
    std::fill(barrier_arrived_.begin(), barrier_arrived_.end(),
              std::uint8_t{0});
    barrier_count_ = 0;
    ++barrier_gen_;
  }
}

}  // namespace hwgc
