// The Synchronization Block (SB) — paper Section V-C.
//
// Hardware state:
//  * `scan` and `free` registers readable by all cores every cycle, each
//    guarded by a lock with static-priority arbitration;
//  * one header-lock register per core, compared associatively against all
//    other cores' registers (a small CAM) on each acquisition attempt;
//  * the ScanState register of per-core busy bits for termination
//    detection;
//  * a barrier: any micro-instruction can be marked synchronizing, and the
//    SB stalls a core executing one until all cores have reached such an
//    instruction.
//
// Cost model, matching Section V-C: acquisition and release are free in the
// uncontended case, and a lock released by one core can be re-acquired by
// another core in the same clock cycle. The simulator steps cores in index
// order within a cycle, which realizes the static prioritization scheme
// (lower core index wins simultaneous claims).
//
// The SB also hosts a lock-order auditor. The algorithm's fixed ordering
// scan < header < free guarantees deadlock freedom (Habermann); the auditor
// records any violation so tests can assert there are none.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "heap/object_model.hpp"

#include "sim/types.hpp"

namespace hwgc {

class FaultInjector;
class TelemetryBus;
enum class SbLock : std::uint8_t;

class SyncBlock {
 public:
  /// `fault`, when non-null, can suppress scan/free lock grants (spurious
  /// arbitration failure) and force busy bits to read stuck-at-1.
  explicit SyncBlock(std::uint32_t num_cores, FaultInjector* fault = nullptr);

  /// Publishes scan-/free-lock hold spans to the bus (observability only;
  /// never affects arbitration).
  void attach_telemetry(TelemetryBus* bus) noexcept { tel_ = bus; }

  std::uint32_t num_cores() const noexcept {
    return static_cast<std::uint32_t>(busy_.size());
  }

  // --- scan / free registers ---------------------------------------------

  Addr scan() const noexcept { return scan_; }
  Addr free() const noexcept { return free_; }
  void set_scan(Addr a) noexcept { scan_ = a; }
  void set_free(Addr a) noexcept { free_ = a; }

  /// Upper bound for evacuation allocation. In stop-the-world cycles this
  /// is the tospace end; in concurrent cycles the mutator bump-allocates
  /// new (black) objects downward from the top of tospace, Baker-style,
  /// and this register holds the boundary.
  Addr alloc_top() const noexcept { return alloc_top_; }
  void set_alloc_top(Addr a) noexcept { alloc_top_ = a; }

  /// True while the worklist is empty (no gray object available).
  bool worklist_empty() const noexcept { return scan_ == free_; }

  // --- locks ---------------------------------------------------------------

  /// Clock edge: resets the per-cycle acquisition budget of the scan and
  /// free locks. "At most one core may modify each of these two registers
  /// during a clock cycle" (Section V-C) — so each lock admits at most one
  /// acquisition per cycle, while a multi-cycle hold can still be handed
  /// off in the cycle it is released.
  void begin_cycle() noexcept {
    scan_acquired_this_cycle_ = false;
    free_acquired_this_cycle_ = false;
    stripe_grabbed_this_cycle_ = false;
  }

  [[nodiscard]] bool try_lock_scan(CoreId core);
  void unlock_scan(CoreId core);
  [[nodiscard]] bool try_lock_free(CoreId core);
  void unlock_free(CoreId core);

  /// Attempts to set this core's header-lock register to `addr`. Fails when
  /// any other core's register currently holds the same address.
  [[nodiscard]] bool try_lock_header(CoreId core, Addr addr);
  void unlock_header(CoreId core);

  bool holds_scan(CoreId core) const noexcept { return scan_owner_ == core; }
  bool holds_free(CoreId core) const noexcept { return free_owner_ == core; }
  bool holds_header(CoreId core) const noexcept {
    return header_locks_[core].has_value();
  }

  /// Sentinel for "no core" in the owner accessors below.
  static constexpr CoreId kNoOwner = ~CoreId{0};

  /// Current scan-/free-lock owner, kNoOwner when free. Pure reads for the
  /// clock loop's quiescence classification (fast-forward): a core stalled
  /// on one of these locks is quiescent exactly while the owner is.
  CoreId scan_owner() const noexcept { return scan_owner_; }
  CoreId free_owner() const noexcept { return free_owner_; }

  /// CAM lookup without acquisition: which other core's header-lock
  /// register holds `addr`? kNoOwner when none (the acquisition would
  /// succeed). Pure; never fires fault hooks.
  CoreId header_lock_holder(CoreId self, Addr addr) const noexcept {
    for (CoreId other = 0; other < num_cores(); ++other) {
      if (other != self && header_locks_[other] == addr) return other;
    }
    return kNoOwner;
  }

  // --- ScanState (termination detection) ----------------------------------

  void set_busy(CoreId core, bool b) noexcept { busy_[core] = b; }

  /// Reads the ScanState bit as the hardware would — including any injected
  /// stuck-at-1 fault on it.
  bool busy(CoreId core) const;

  /// The core's actual architectural busy bit, bypassing stuck-at faults
  /// (the watchdog's consistency check compares the two).
  bool busy_raw(CoreId core) const noexcept { return busy_[core] != 0; }

  /// True when no core's busy bit is set — combined with scan == free this
  /// is the termination condition of Section IV.
  bool all_idle() const;

  // --- stripe dispenser (Section VII future work 1) -------------------------
  //
  // Sub-object work distribution: the data area of a large object is
  // split into fixed-size stripes that idle cores copy in parallel. The
  // dispenser is a small register file in the SB (one slot per concurrent
  // big object); like the scan/free registers it admits one grab per
  // clock cycle.

  struct StripeJob {
    Addr orig = kNullPtr;   ///< fromspace original (body source)
    Addr copy = kNullPtr;   ///< tospace frame (body destination)
    Word attrs = 0;         ///< attributes for the final blacken
    Word next_offset = 0;   ///< first data word not yet handed out
    Word outstanding = 0;   ///< stripes handed out but not completed
  };

  struct StripeTask {
    Addr orig = kNullPtr;
    Addr copy = kNullPtr;
    Word attrs = 0;  ///< full attributes (for the final blacken)
    Word pi = 0;
    Word offset = 0;  ///< first data word of this stripe
    Word length = 0;
    std::uint32_t slot = 0;
  };

  static constexpr std::uint32_t kStripeSlots = 4;

  /// Registers a large object's data area for striped copying. Fails when
  /// every dispenser slot is occupied (the caller falls back to a normal
  /// sequential copy).
  [[nodiscard]] bool stripe_publish(Addr orig, Addr copy, Word attrs);

  /// Hands out the next stripe of any active job (lowest slot first,
  /// static prioritization; at most one grab per clock cycle). Returns
  /// false when no job has stripes left to dispense.
  [[nodiscard]] bool stripe_grab(Word stripe_words, StripeTask& out);

  /// Reports a stripe finished. Returns true when its job is fully copied
  /// — the caller must then blacken the object; the slot is freed.
  [[nodiscard]] bool stripe_complete(std::uint32_t slot);

  /// True when no dispenser slot holds unfinished work (part of the
  /// extended termination condition).
  bool stripes_idle() const noexcept;

  /// True when a stripe_grab() would hand out work: some active job still
  /// has undispensed stripes. Pure mirror of stripe_grab's scan, for the
  /// quiescence classification (an idle core would grab, not spin).
  bool stripe_work_available() const noexcept {
    for (std::uint32_t s = 0; s < kStripeSlots; ++s) {
      if (stripe_slot_active_[s] &&
          stripe_slots_[s].next_offset < delta_of(stripe_slots_[s].attrs)) {
        return true;
      }
    }
    return false;
  }

  const StripeJob& stripe_slot(std::uint32_t slot) const {
    return stripe_slots_[slot];
  }

  // --- barrier -------------------------------------------------------------

  /// Current barrier generation; a core snapshots this before waiting.
  std::uint64_t barrier_generation() const noexcept { return barrier_gen_; }

  /// Signals arrival at a synchronizing micro-instruction. When the last
  /// core arrives the barrier releases: the generation advances and all
  /// arrival bits reset. Idempotent per generation.
  void barrier_arrive(CoreId core);

  /// True when `core` has already arrived at the pending barrier. A
  /// barrier-stalled core that has arrived is quiescent (re-arrival is
  /// idempotent); one that has not would mutate the barrier on its next
  /// step, so fast-forward must let that cycle run.
  bool barrier_arrived(CoreId core) const noexcept {
    return barrier_arrived_[core] != 0;
  }

  // --- lock-order audit ----------------------------------------------------

  const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }

 private:
  void audit(CoreId core, const char* acquiring);

  FaultInjector* fault_ = nullptr;
  TelemetryBus* tel_ = nullptr;
  Addr scan_ = 0;
  Addr free_ = 0;
  Addr alloc_top_ = ~Addr{0};
  CoreId scan_owner_ = kNoOwner;
  CoreId free_owner_ = kNoOwner;
  bool scan_acquired_this_cycle_ = false;
  bool free_acquired_this_cycle_ = false;
  bool stripe_grabbed_this_cycle_ = false;
  std::array<StripeJob, kStripeSlots> stripe_slots_{};
  std::array<bool, kStripeSlots> stripe_slot_active_{};
  std::vector<std::optional<Addr>> header_locks_;
  std::vector<std::uint8_t> busy_;
  std::vector<std::uint8_t> barrier_arrived_;
  std::uint32_t barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace hwgc
