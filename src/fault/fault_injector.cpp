#include "fault/fault_injector.hpp"

#include "heap/word_memory.hpp"
#include "telemetry/telemetry_bus.hpp"

namespace hwgc {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), state_(plan_.events.size()) {}

void FaultInjector::begin_attempt(std::uint32_t attempt,
                                  const std::vector<CoreId>& active_physical) {
  attempt_ = attempt;
  logical_to_physical_ = active_physical;
  fired_attempt_ = 0;
  now_ = 0;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    EventState& s = state_[i];
    s.matches = 0;
    s.latched = false;
    // A transient fires at most once over the whole collection; a hard
    // fault re-arms every attempt. Either way the event stays dormant when
    // its physical core has been deconfigured out of the active set.
    bool target_active = false;
    for (CoreId p : active_physical) target_active |= (p == e.target_core);
    s.armed = target_active && (e.persistent || !s.fired_ever);
  }
}

void FaultInjector::fire(std::size_t i) {
  EventState& s = state_[i];
  s.armed = false;
  s.fired_ever = true;
  ++fired_total_;
  ++fired_attempt_;
  ++fired_by_kind_[static_cast<std::size_t>(plan_.events[i].kind)];
  const std::string entry = "attempt " + std::to_string(attempt_) + " cycle " +
                            std::to_string(now_) + ": " +
                            plan_.events[i].summary();
  log_.push_back(entry);
  if (trace_ != nullptr) trace_->note(now_, "fault: " + entry);
  if (tel_ != nullptr) {
    tel_->instant(tel_->track("faults"), TelemetryCategory::kFault,
                  plan_.events[i].summary());
  }
}

MemFaultAction FaultInjector::on_mem_accept(CoreId logical, Port port,
                                            MemOp op, Addr addr) {
  MemFaultAction action;
  if (logical >= logical_to_physical_.size()) return action;
  const CoreId physical = logical_to_physical_[logical];
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (!is_mem_fault(e.kind) || e.target_core != physical ||
        e.port != port || e.op != op) {
      continue;
    }
    EventState& s = state_[i];
    if (!s.armed) continue;
    if (s.matches++ != e.trigger) continue;
    switch (e.kind) {
      case FaultKind::kMemDrop:
        action.kind = MemFaultAction::Kind::kDrop;
        break;
      case FaultKind::kMemDuplicate:
        // Duplicates of loads are absorbed by the split-transaction
        // protocol (a second reply to a free buffer is ignored); only a
        // duplicated store has an architectural effect.
        if (op == MemOp::kStore && mem_ != nullptr) {
          action.kind = MemFaultAction::Kind::kDuplicate;
          action.replay_value = mem_->load(addr);
          action.ghost_lag = e.param;
        }
        break;
      case FaultKind::kMemDelay:
        action.extra_delay += e.param;
        break;
      case FaultKind::kMemCorrupt:
        if (mem_ != nullptr) mem_->corrupt(addr, e.bit);
        break;
      default:
        break;
    }
    fire(i);
  }
  return action;
}

void FaultInjector::on_ghost_store_retire(Addr addr, Word value) {
  // The duplicated store arrives a second time carrying the value it was
  // accepted with — resurrecting a stale word if the location has been
  // overwritten since. It goes through store(), so the ECC shadow matches:
  // ECC cannot catch a well-formed duplicate, only the verifier can.
  if (mem_ != nullptr) mem_->store(addr, value);
}

bool FaultInjector::lock_grant_suppressed(LockKind lock) {
  bool suppressed = false;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kLockDelay || e.lock != lock) continue;
    EventState& s = state_[i];
    if (now_ < e.trigger || now_ >= e.trigger + e.param) continue;
    if (s.armed) {
      fire(i);  // counted once per attempt, on the first suppression
      s.latched = true;
    }
    suppressed |= s.latched;
  }
  return suppressed;
}

bool FaultInjector::free_grant_fatal(CoreId logical) {
  if (logical >= logical_to_physical_.size()) return false;
  const CoreId physical = logical_to_physical_[logical];
  bool fatal = false;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kCoreFailStop || !e.when_holding_free ||
        e.target_core != physical) {
      continue;
    }
    EventState& s = state_[i];
    if (!s.armed || s.latched) continue;
    fire(i);
    s.latched = true;  // core_fate() reads the latch: dead from here on
    fatal = true;
  }
  return fatal;
}

bool FaultInjector::busy_stuck(CoreId logical) {
  if (logical >= logical_to_physical_.size()) return false;
  const CoreId physical = logical_to_physical_[logical];
  bool stuck = false;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kStuckBusy || e.target_core != physical) continue;
    EventState& s = state_[i];
    if (now_ < e.trigger) continue;
    if (s.armed) {
      fire(i);
      s.latched = true;  // the bit stays stuck for the rest of the attempt
    }
    stuck |= s.latched;
  }
  return stuck;
}

namespace {

/// Cycle-triggered fault kinds — the ones whose firing depends on the
/// clock rather than on a memory-transaction count. when_holding_free
/// fail-stops are condition-triggered (they fire at a free-lock grant,
/// which never happens during a quiescent window) and are excluded.
bool cycle_triggered(const FaultEvent& e) noexcept {
  switch (e.kind) {
    case FaultKind::kCoreStall:
    case FaultKind::kStuckBusy:
    case FaultKind::kLockDelay:
      return true;
    case FaultKind::kCoreFailStop:
      return !e.when_holding_free;
    default:
      return false;
  }
}

/// Does the event describe a [trigger, trigger+param) window (as opposed
/// to a latch-forever onset at trigger)?
bool windowed(const FaultEvent& e) noexcept {
  return e.kind == FaultKind::kCoreStall || e.kind == FaultKind::kLockDelay;
}

}  // namespace

bool FaultInjector::ff_blocked(Cycle now) const noexcept {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (!state_[i].armed || !cycle_triggered(e)) continue;
    if (now < e.trigger) continue;
    if (windowed(e) && now >= e.trigger + e.param) continue;
    return true;  // would fire on its next consult — run this cycle live
  }
  return false;
}

Cycle FaultInjector::next_cycle_boundary(Cycle now) const noexcept {
  Cycle next = ~Cycle{0};
  const auto consider = [&next, now](Cycle boundary) {
    if (boundary > now && boundary < next) next = boundary;
  };
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (!cycle_triggered(e)) continue;
    const EventState& s = state_[i];
    if (s.armed) consider(e.trigger);
    if (windowed(e) && (s.armed || s.latched)) consider(e.trigger + e.param);
  }
  return next;
}

CoreFate FaultInjector::steady_fate(CoreId logical, Cycle now) const noexcept {
  if (logical >= logical_to_physical_.size()) return CoreFate::kRun;
  const CoreId physical = logical_to_physical_[logical];
  CoreFate fate = CoreFate::kRun;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.target_core != physical || !state_[i].latched) continue;
    if (e.kind == FaultKind::kCoreStall) {
      if (now >= e.trigger && now < e.trigger + e.param &&
          fate == CoreFate::kRun) {
        fate = CoreFate::kStall;
      }
    } else if (e.kind == FaultKind::kCoreFailStop) {
      fate = CoreFate::kStopped;  // same precedence as core_fate()
    }
  }
  return fate;
}

bool FaultInjector::stuck_busy_steady(CoreId logical) const noexcept {
  if (logical >= logical_to_physical_.size()) return false;
  const CoreId physical = logical_to_physical_[logical];
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind == FaultKind::kStuckBusy && e.target_core == physical &&
        state_[i].latched) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::lock_suppressed_steady(LockKind lock,
                                           Cycle now) const noexcept {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind == FaultKind::kLockDelay && e.lock == lock &&
        state_[i].latched && now >= e.trigger && now < e.trigger + e.param) {
      return true;
    }
  }
  return false;
}

CoreFate FaultInjector::core_fate(CoreId logical, bool holds_free) {
  if (logical >= logical_to_physical_.size()) return CoreFate::kRun;
  const CoreId physical = logical_to_physical_[logical];
  CoreFate fate = CoreFate::kRun;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.target_core != physical) continue;
    EventState& s = state_[i];
    if (e.kind == FaultKind::kCoreStall) {
      if (now_ < e.trigger || now_ >= e.trigger + e.param) continue;
      if (s.armed) {
        fire(i);
        s.latched = true;
      }
      if (s.latched && fate == CoreFate::kRun) fate = CoreFate::kStall;
    } else if (e.kind == FaultKind::kCoreFailStop) {
      if (s.latched) {  // already dead for the rest of this attempt
        fate = CoreFate::kStopped;
        continue;
      }
      if (!s.armed) continue;
      const bool due = e.when_holding_free ? holds_free : now_ >= e.trigger;
      if (due) {
        fire(i);
        s.latched = true;
        fate = CoreFate::kStopped;
      }
    }
  }
  return fate;
}

}  // namespace hwgc
