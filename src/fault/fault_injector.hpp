// FaultInjector — executes a FaultPlan against one collection attempt.
//
// The injector is the cross-cutting piece the hardware modules consult:
//   * MemorySystem asks on_mem_accept() for every transaction it accepts
//     and applies the returned action (drop / ghost-duplicate / delay);
//     single-bit corruption is applied by the injector itself through the
//     attached WordMemory (the functional store), bypassing the ECC shadow.
//   * SyncBlock asks lock_grant_suppressed() before granting the scan or
//     free lock, and busy_stuck() when reading the ScanState register.
//   * Coprocessor asks core_fate() before stepping each core.
//
// Core identities: fault events target PHYSICAL cores; the hardware modules
// pass LOGICAL core indices of the current attempt. begin_attempt() installs
// the logical->physical mapping for the attempt's active set, so events
// bound to a deconfigured physical core simply never fire again.
//
// Transient events fire at most once across the whole collection (retries
// included); persistent events re-arm on every attempt.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace hwgc {

class WordMemory;
class TelemetryBus;

/// What the memory scheduler must do with an accepted transaction.
struct MemFaultAction {
  enum class Kind : std::uint8_t { kNone = 0, kDrop, kDuplicate };
  Kind kind = Kind::kNone;
  Cycle extra_delay = 0;   ///< kMemDelay contribution (combinable with kNone)
  Word replay_value = 0;   ///< kDuplicate: stale value the ghost store carries
  Cycle ghost_lag = 0;     ///< kDuplicate: cycles the ghost trails the original
};

/// What the clock loop must do with a core this cycle.
enum class CoreFate : std::uint8_t { kRun = 0, kStall, kStopped };

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Functional memory the corrupt/duplicate classes act on. Must be set
  /// before the first attempt when the plan contains memory faults.
  void attach_memory(WordMemory* mem) noexcept { mem_ = mem; }

  /// Optional trace: every fired event is note()d with its clock cycle.
  void attach_trace(SignalTrace* trace) noexcept { trace_ = trace; }

  /// Optional bus: every fired event becomes an instant on its "faults"
  /// track, so injections line up with the stalls they cause.
  void attach_telemetry(TelemetryBus* bus) noexcept { tel_ = bus; }

  /// Starts an attempt: logical core i of this attempt is physical core
  /// active_physical[i]. Re-arms persistent events; resets per-attempt
  /// transaction counters and fire counts.
  void begin_attempt(std::uint32_t attempt,
                     const std::vector<CoreId>& active_physical);

  /// Clock edge, called once per cycle before any hardware hook.
  void begin_clock(Cycle now) noexcept { now_ = now; }

  // --- hooks (logical core ids) ------------------------------------------

  MemFaultAction on_mem_accept(CoreId logical, Port port, MemOp op, Addr addr);

  /// Ghost duplicate retiring: replay the stale value into memory.
  void on_ghost_store_retire(Addr addr, Word value);

  bool lock_grant_suppressed(LockKind lock);

  /// Consulted by the SB at the moment a free-lock grant would succeed:
  /// a kCoreFailStop event with when_holding_free set kills the core right
  /// there, inside the 1-cycle critical section. Returns true when the core
  /// died — the SB then leaves the lock held by the dead core forever (the
  /// nastiest hang: every other core stalls on the free lock).
  bool free_grant_fatal(CoreId logical);

  bool busy_stuck(CoreId logical);

  /// `holds_free`: whether the core currently owns the free lock — used by
  /// fail-stop events conditioned on the free critical section.
  CoreFate core_fate(CoreId logical, bool holds_free);

  // --- pure steady-state views (fast-forward classification) --------------
  //
  // The clock loop's fast-forward must decide whether upcoming cycles are
  // observationally steady WITHOUT consulting the mutating hooks above
  // (a consult can fire an event, which is itself observable). These const
  // views expose only latched state plus the future cycle boundaries at
  // which the steady state would change; the classification refuses to
  // skip any cycle on which an armed event could fire (ff_blocked) and
  // clamps every jump to the next boundary, so armed events always fire on
  // normally executed cycles — at exactly the cycle a ticked run fires
  // them.

  /// True when some armed, not-yet-fired cycle-triggered event is already
  /// due at `now` (it would fire on the next consult): the current cycle
  /// must be executed normally, never skipped.
  bool ff_blocked(Cycle now) const noexcept;

  /// Next cycle boundary strictly after `now` at which any cycle-triggered
  /// event's steady behavior changes: an armed trigger (window entry /
  /// fail-stop / stuck-busy onset) or a window exit of an armed-or-latched
  /// kCoreStall / kLockDelay. ~Cycle{0} when none.
  Cycle next_cycle_boundary(Cycle now) const noexcept;

  /// core_fate() restricted to latched events — the fate every consult in
  /// [now, next boundary) returns, with no event able to fire (pure).
  CoreFate steady_fate(CoreId logical, Cycle now) const noexcept;

  /// busy_stuck() restricted to latched events (pure).
  bool stuck_busy_steady(CoreId logical) const noexcept;

  /// lock_grant_suppressed() restricted to latched events (pure).
  bool lock_suppressed_steady(LockKind lock, Cycle now) const noexcept;

  // --- accounting ----------------------------------------------------------

  const FaultPlan& plan() const noexcept { return plan_; }
  std::uint64_t fired_total() const noexcept { return fired_total_; }
  std::uint64_t fired_this_attempt() const noexcept { return fired_attempt_; }
  std::uint64_t fired_by_kind(FaultKind k) const noexcept {
    return fired_by_kind_[static_cast<std::size_t>(k)];
  }

  /// Human-readable log of every fired event ("cycle 123: mem-drop ...").
  const std::vector<std::string>& log() const noexcept { return log_; }

 private:
  struct EventState {
    bool armed = false;        ///< may still fire in this attempt
    bool fired_ever = false;   ///< transients: fired in some earlier attempt
    bool latched = false;      ///< standing condition active for the attempt
    std::uint64_t matches = 0; ///< mem faults: matching transactions seen
  };

  /// Marks event `i` fired at the current cycle.
  void fire(std::size_t i);

  FaultPlan plan_;
  std::vector<EventState> state_;
  std::vector<CoreId> logical_to_physical_;
  WordMemory* mem_ = nullptr;
  SignalTrace* trace_ = nullptr;
  TelemetryBus* tel_ = nullptr;
  Cycle now_ = 0;
  std::uint32_t attempt_ = 0;
  std::uint64_t fired_total_ = 0;
  std::uint64_t fired_attempt_ = 0;
  std::vector<std::uint64_t> fired_by_kind_ =
      std::vector<std::uint64_t>(kFaultKindCount, 0);
  std::vector<std::string> log_;
};

}  // namespace hwgc
