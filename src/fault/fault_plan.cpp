#include "fault/fault_plan.hpp"

#include <sstream>

#include "sim/rng.hpp"

namespace hwgc {

bool parse_fault_kind(const std::string& name, FaultKind& out) {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (name == to_string(static_cast<FaultKind>(k))) {
      out = static_cast<FaultKind>(k);
      return true;
    }
  }
  return false;
}

std::string FaultEvent::summary() const {
  std::ostringstream os;
  os << to_string(kind) << (persistent ? "[hard]" : "[transient]") << " core "
     << target_core;
  if (is_mem_fault(kind)) {
    os << ' ' << to_string(port) << '-' << to_string(op) << " #" << trigger;
    if (kind == FaultKind::kMemDelay) os << " +" << param << "cy";
    if (kind == FaultKind::kMemCorrupt) os << " bit " << bit;
  } else if (kind == FaultKind::kLockDelay) {
    os << ' ' << (lock == LockKind::kScan ? "scan" : "free") << " @" << trigger
       << " for " << param << "cy";
  } else if (kind == FaultKind::kCoreStall) {
    os << " @" << trigger << " for " << param << "cy";
  } else if (kind == FaultKind::kCoreFailStop && when_holding_free) {
    os << " when-holding-free";
  } else {
    os << " @" << trigger;
  }
  return os.str();
}

std::string FaultPlan::summary() const {
  std::ostringstream os;
  os << events.size() << " fault event(s)";
  for (const auto& e : events) os << "\n  " << e.summary();
  return os.str();
}

FaultPlan FaultPlan::from_config(const FaultConfig& cfg,
                                 std::uint32_t num_cores) {
  FaultPlan plan;
  if (!cfg.enabled() || num_cores == 0) return plan;

  // Collect the enabled classes so the seed stream stays aligned no matter
  // which mask is set (each event consumes a fixed number of draws).
  std::vector<FaultKind> classes;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (cfg.class_mask & (1u << k)) classes.push_back(static_cast<FaultKind>(k));
  }
  if (classes.empty()) return plan;

  Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 0xfa017ULL);
  const std::uint64_t scale = cfg.trigger_scale == 0 ? 1 : cfg.trigger_scale;
  plan.events.reserve(cfg.events);
  for (std::uint32_t i = 0; i < cfg.events; ++i) {
    FaultEvent e;
    e.kind = classes[rng.below(classes.size())];
    e.persistent = rng.chance(cfg.persistent_fraction);
    e.target_core = static_cast<CoreId>(rng.below(num_cores));
    e.port = rng.below(2) == 0 ? Port::kHeader : Port::kBody;
    e.op = rng.below(2) == 0 ? MemOp::kLoad : MemOp::kStore;
    if (is_mem_fault(e.kind)) {
      e.trigger = rng.below(scale);
    } else {
      e.trigger = rng.below(8 * scale);
    }
    e.param = 1 + rng.below(4 * scale);
    e.bit = static_cast<std::uint32_t>(rng.below(32));
    e.lock = rng.below(2) == 0 ? LockKind::kScan : LockKind::kFree;
    e.when_holding_free =
        e.kind == FaultKind::kCoreFailStop && rng.chance(0.25);
    plan.events.push_back(e);
  }
  return plan;
}

}  // namespace hwgc
