// Seeded hardware fault plans (tentpole of the robustness work).
//
// A FaultPlan is a deterministic list of fault events derived from a seed:
// the same (seed, config) pair reproduces the same faults at the same
// trigger points, which makes every fault run replayable from a one-line
// reproducer — the same property the schedule fuzzer relies on.
//
// Fault classes, mapped to the hardware they break:
//   MemorySystem (split-transaction scheduler, Section V-D):
//     kMemDrop      an accepted transaction vanishes (lost reply / lost
//                   store commit) — detected by the watchdog via a stalled
//                   load buffer or a never-draining store buffer
//     kMemDuplicate a store is replayed later with its stale accepted-time
//                   value — masked unless the location was overwritten in
//                   between, in which case the verifier catches it
//     kMemDelay     an accepted transaction completes late — masked, costs
//                   cycles
//     kMemCorrupt   a single bit of the accessed word flips without its ECC
//                   being updated — header corruption is caught by the
//                   cores' checksum check, body corruption by the verifier
//   SyncBlock (Section V-C):
//     kLockDelay    spurious arbitration failure: a scan/free lock grant is
//                   suppressed for a window of cycles — masked, costs cycles
//     kStuckBusy    a core's ScanState busy bit reads stuck-at-1 — the
//                   termination condition never holds; watchdog detects it
//   GcCore:
//     kCoreStall    the core misses its clock for a window — masked
//     kCoreFailStop the core stops executing permanently (optionally timed
//                   to the moment it holds the free lock) — watchdog
//                   detects it; the activity monitor localizes the core and
//                   recovery deconfigures it
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/ports.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace hwgc {

enum class FaultKind : std::uint8_t {
  kMemDrop = 0,
  kMemDuplicate,
  kMemDelay,
  kMemCorrupt,
  kLockDelay,
  kStuckBusy,
  kCoreStall,
  kCoreFailStop,
  kCount
};

constexpr std::size_t kFaultKindCount =
    static_cast<std::size_t>(FaultKind::kCount);

constexpr const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kMemDrop: return "mem-drop";
    case FaultKind::kMemDuplicate: return "mem-dup";
    case FaultKind::kMemDelay: return "mem-delay";
    case FaultKind::kMemCorrupt: return "mem-corrupt";
    case FaultKind::kLockDelay: return "lock-delay";
    case FaultKind::kStuckBusy: return "stuck-busy";
    case FaultKind::kCoreStall: return "core-stall";
    case FaultKind::kCoreFailStop: return "core-failstop";
    case FaultKind::kCount: break;
  }
  return "?";
}

/// Parses a fault-class name as printed by to_string. Returns false on
/// unknown names.
bool parse_fault_kind(const std::string& name, FaultKind& out);

constexpr bool is_mem_fault(FaultKind k) noexcept {
  return k == FaultKind::kMemDrop || k == FaultKind::kMemDuplicate ||
         k == FaultKind::kMemDelay || k == FaultKind::kMemCorrupt;
}

/// Which SB pointer lock a kLockDelay event suppresses.
enum class LockKind : std::uint8_t { kScan = 0, kFree };

/// One fault event. `target_core` is a PHYSICAL core id: when recovery
/// deconfigures that core, events bound to it become dormant — the faulty
/// hardware is no longer in the active set.
struct FaultEvent {
  FaultKind kind = FaultKind::kMemDelay;

  /// Hard fault: re-fires on every attempt while its target core is still
  /// configured. Transients fire at most once across the whole collection,
  /// retries included.
  bool persistent = false;

  CoreId target_core = 0;  ///< physical core id

  // Memory faults: fire on the trigger-th accepted transaction matching
  // (target core, port, op). Other classes: trigger is a clock cycle.
  Port port = Port::kHeader;
  MemOp op = MemOp::kLoad;
  std::uint64_t trigger = 0;

  /// kMemDelay: extra completion cycles. kLockDelay / kCoreStall: window
  /// length in cycles.
  Cycle param = 0;

  std::uint32_t bit = 0;             ///< kMemCorrupt: bit index to flip
  LockKind lock = LockKind::kScan;   ///< kLockDelay: which lock

  /// kCoreFailStop: defer the stop until the core holds the free lock
  /// (models dying inside the 1-cycle free critical section — the nastiest
  /// moment, since every other core then stalls on the free lock).
  bool when_holding_free = false;

  std::string summary() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const noexcept { return events.empty(); }
  std::size_t size() const noexcept { return events.size(); }

  /// Derives a deterministic plan from the config. `num_cores` bounds the
  /// physical core ids targeted by core-bound events.
  static FaultPlan from_config(const FaultConfig& cfg, std::uint32_t num_cores);

  std::string summary() const;
};

}  // namespace hwgc
