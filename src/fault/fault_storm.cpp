#include "fault/fault_storm.hpp"

#include <algorithm>
#include <cmath>

#include "sim/rng.hpp"

namespace hwgc {

FaultStorm::FaultStorm(const FaultStormConfig& cfg, std::size_t shards)
    : cfg_(cfg), shards_(shards) {
  if (!cfg.enabled() || shards == 0) return;
  enabled_ = true;

  // Seeded choice of primary victims: first k of a Fisher-Yates shuffle.
  std::size_t k = static_cast<std::size_t>(
      std::ceil(cfg.shard_fraction * static_cast<double>(shards)));
  k = std::clamp<std::size_t>(k, 1, shards);
  std::vector<std::size_t> order(shards);
  for (std::size_t i = 0; i < shards; ++i) order[i] = i;
  Rng rng(cfg.seed);
  for (std::size_t i = shards; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  const std::uint32_t events = std::max<std::uint32_t>(
      cfg.events_per_collection, 1);
  for (std::size_t i = 0; i < k; ++i) {
    PerShard& s = shards_[order[i]];
    s.stormed = true;
    s.events = events;
  }
  if (cfg.correlate_neighbors) {
    // Half-strength spill onto each primary's neighbor — same rack, same
    // power domain. Never weakens a shard that is already a primary.
    for (std::size_t i = 0; i < k; ++i) {
      PerShard& n = shards_[(order[i] + 1) % shards];
      if (!n.stormed) {
        n.stormed = true;
        n.events = std::max<std::uint32_t>(events / 2, 1);
      }
    }
  }

  const std::uint64_t period =
      cfg.burst_requests > 0
          ? std::uint64_t{cfg.burst_requests} + cfg.calm_requests
          : 0;
  for (std::size_t i = 0; i < shards; ++i) {
    PerShard& s = shards_[i];
    if (!s.stormed) continue;
    ++stormed_count_;
    std::uint64_t sm = cfg.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    s.seed = splitmix64(sm);
    s.phase = period > 0 ? splitmix64(sm) % period : 0;
    s.initial_active = window_open(s, 0);
    s.active = s.initial_active;
  }
}

bool FaultStorm::window_open(const PerShard& s, std::uint64_t arrival) const {
  if (cfg_.burst_requests == 0) return true;
  const std::uint64_t period =
      std::uint64_t{cfg_.burst_requests} + cfg_.calm_requests;
  return (arrival + s.phase) % period < cfg_.burst_requests;
}

StormTick FaultStorm::tick(std::size_t shard) {
  StormTick t;
  PerShard& s = shards_[shard];
  if (!s.stormed) return t;
  const bool open = window_open(s, s.arrivals);
  t.fault_active = open;
  t.toggled = open != s.active;
  s.active = open;
  if (open) {
    ++s.active_seen;
    t.crash = cfg_.crash_period > 0 && s.active_seen % cfg_.crash_period == 0;
  }
  ++s.arrivals;
  return t;
}

FaultConfig storm_fault_config(const FaultStorm& storm, std::size_t shard,
                               const FaultConfig& base, bool active) {
  FaultConfig f = base;
  f.seed = storm.fault_seed(shard);
  f.events = active ? storm.events(shard) : 0;
  f.persistent_fraction = storm.config().persistent_fraction;
  return f;
}

}  // namespace hwgc
