// Seeded multi-shard fault storms for the heap service (src/service/).
//
// PR 5's fault story was a single knob: route N fault events into every
// collection on ONE shard. Real fleets see *sustained* storms — a bad
// batch of DIMMs, a marginal power rail — that hit a fraction of the
// fleet at once, re-fire for as long as the condition lasts, come in
// bursts, spill onto correlated neighbors (same rack, same power domain),
// and occasionally kill a shard outright. FaultStorm is the seeded,
// deterministic plan for such a storm:
//
//   * shard selection — a seeded choice of round(shard_fraction * N)
//     primary victims; with correlate_neighbors each primary also drags
//     its (s+1) % N neighbor in at half the event count;
//   * repeating faults — each stormed shard gets a per-shard fault seed;
//     the runtime re-derives the SAME FaultPlan for every collection, so
//     faults re-fire cycle after cycle (persistent_fraction controls how
//     many re-fire within a cycle's retry ladder too);
//   * bursts — storm activity toggles on/off in windows measured in
//     per-shard request arrivals (burst_requests active, calm_requests
//     quiet, per-shard phase offset from the seed), modeling intermittent
//     conditions;
//   * crashes — every crash_period-th storm-active arrival at a stormed
//     shard kills it outright (the service layer quarantines the shard and
//     restores it from its last checkpoint).
//
// The plan is pure data derived from (config, shard count): the same seed
// produces the same storm on the serial and the shard-pool engine, which
// is what keeps chaos runs bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace hwgc {

struct FaultStormConfig {
  std::uint64_t seed = 1;

  /// Fraction of the fleet stormed (primary victims); ceil(fraction * N),
  /// at least 1 when > 0. 0 disables the storm entirely.
  double shard_fraction = 0.0;

  /// Fault events injected into every collection on a primary victim
  /// (correlated neighbors get half, minimum 1).
  std::uint32_t events_per_collection = 2;

  /// Probability that an event is a hard fault re-firing across the
  /// recovery ladder's retries (FaultConfig::persistent_fraction).
  double persistent_fraction = 0.25;

  /// Each primary victim also storms its (s+1) % N neighbor.
  bool correlate_neighbors = true;

  /// Burst windows, in per-shard request arrivals: burst_requests active
  /// then calm_requests quiet, repeating, with a seeded per-shard phase.
  /// burst_requests == 0 keeps the storm active for the whole run.
  std::uint32_t burst_requests = 0;
  std::uint32_t calm_requests = 0;

  /// Every crash_period-th storm-active arrival at a stormed shard crashes
  /// it (supervisor quarantine + checkpoint restore). 0 disables crashes.
  std::uint32_t crash_period = 0;

  bool enabled() const noexcept { return shard_fraction > 0.0; }
};

/// What the storm does to one shard at one request arrival.
struct StormTick {
  bool fault_active = false;  ///< burst window open after this arrival
  bool toggled = false;       ///< window state changed AT this arrival
  bool crash = false;         ///< this arrival crashes the shard
};

/// The derived plan plus per-shard burst/crash counters. The service's
/// conductor owns the instance and calls tick() exactly once per request
/// arrival at the shard's home, in request order — the counters are part
/// of the deterministic cross-shard state, never touched by shard lanes.
class FaultStorm {
 public:
  FaultStorm() = default;
  FaultStorm(const FaultStormConfig& cfg, std::size_t shards);

  bool enabled() const noexcept { return enabled_; }
  std::size_t stormed_count() const noexcept { return stormed_count_; }
  const FaultStormConfig& config() const noexcept { return cfg_; }

  bool stormed(std::size_t shard) const { return shards_[shard].stormed; }
  std::uint32_t events(std::size_t shard) const {
    return shards_[shard].events;
  }
  std::uint64_t fault_seed(std::size_t shard) const {
    return shards_[shard].seed;
  }

  /// Burst-window state before any arrival has been ticked — what the
  /// shard's initial FaultConfig must reflect.
  bool initially_active(std::size_t shard) const {
    return shards_[shard].initial_active;
  }

  /// Advances the shard's arrival counter and reports window transitions
  /// and scheduled crashes. Non-stormed shards always return a quiet tick.
  StormTick tick(std::size_t shard);

 private:
  struct PerShard {
    bool stormed = false;
    std::uint32_t events = 0;
    std::uint64_t seed = 0;
    std::uint64_t phase = 0;
    bool initial_active = false;
    // Counters advanced by tick():
    std::uint64_t arrivals = 0;
    std::uint64_t active_seen = 0;
    bool active = false;
  };

  bool window_open(const PerShard& s, std::uint64_t arrival) const;

  FaultStormConfig cfg_{};
  bool enabled_ = false;
  std::size_t stormed_count_ = 0;
  std::vector<PerShard> shards_;
};

/// The per-shard FaultConfig a storm implies, overlaid on `base` (class
/// mask and trigger scale are inherited from the base config). `active`
/// false produces the calm-window config: same seed, zero events.
FaultConfig storm_fault_config(const FaultStorm& storm, std::size_t shard,
                               const FaultConfig& base, bool active);

}  // namespace hwgc
