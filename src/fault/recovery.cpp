#include "fault/recovery.hpp"

#include <sstream>
#include <utility>

#include "baselines/sequential_cheney.hpp"
#include "core/coprocessor.hpp"
#include "profile/cycle_profiler.hpp"
#include "telemetry/telemetry_bus.hpp"

namespace hwgc {

namespace {

/// Pre-cycle image of the mutator-visible heap state. Fromspace data is
/// intact until the flip, but collection does mutate fromspace *headers*
/// (forwarding bit + forwarding address), so recovery restores the full
/// allocated prefix of the pre-cycle space, the roots and the allocation
/// frontier.
struct PreImage {
  Addr base = 0;
  Addr alloc = 0;
  std::vector<Word> words;
  std::vector<Addr> roots;

  static PreImage save(const Heap& heap) {
    PreImage img;
    img.base = heap.layout().current_base();
    img.alloc = heap.alloc_ptr();
    img.roots = heap.roots();
    img.words.reserve(static_cast<std::size_t>(img.alloc - img.base));
    for (Addr a = img.base; a < img.alloc; ++a) {
      img.words.push_back(heap.memory().load(a));
    }
    return img;
  }

  void restore(Heap& heap) const {
    // A verifier-detected failure is observed after the flip; aborts thrown
    // mid-cycle happen before it. Flip back first so `base` is current again.
    if (heap.layout().current_base() != base) heap.flip();
    heap.set_alloc_ptr(alloc);
    heap.roots() = roots;
    Addr a = base;
    for (Word w : words) heap.memory().store(a++, w);
    // Heal any checksum mismatch left behind in either space (corruption
    // outside the restored range, e.g. a bit flipped in partially-built
    // tospace) so a stale mismatch cannot re-abort the next attempt.
    if (heap.memory().ecc_enabled()) heap.memory().enable_ecc();
  }
};

}  // namespace

RecoveringCollector::RecoveringCollector(const SimConfig& cfg, Heap& heap)
    : RecoveringCollector(
          cfg, heap,
          FaultPlan::from_config(cfg.fault, cfg.coprocessor.num_cores)) {}

RecoveringCollector::RecoveringCollector(const SimConfig& cfg, Heap& heap,
                                         FaultPlan plan)
    : cfg_(cfg), heap_(heap), injector_(std::move(plan)) {
  injector_.attach_memory(&heap_.memory());
}

Cycle RecoveringCollector::watchdog_budget(Word live_words) const noexcept {
  const RecoveryConfig& r = cfg_.recovery;
  return r.watchdog_base + r.watchdog_per_live_word * live_words;
}

RecoveryReport RecoveringCollector::collect(SignalTrace* trace,
                                            TelemetryBus* telemetry,
                                            CycleProfiler* profiler) {
  RecoveryReport report;
  report.faults_injected = injector_.plan().size();
  injector_.attach_trace(trace);
  injector_.attach_telemetry(telemetry);
  const auto recovery_note = [&](std::string text) {
    if (telemetry != nullptr) {
      telemetry->instant(telemetry->track("recovery"),
                         TelemetryCategory::kRecovery, std::move(text));
    }
  };

  if (cfg_.recovery.header_ecc) heap_.memory().enable_ecc();

  const HeapSnapshot pre = HeapSnapshot::capture(heap_);
  const PreImage image = PreImage::save(heap_);
  const Cycle budget = watchdog_budget(pre.live_words);

  // Active physical cores; shrinks as recovery deconfigures suspects.
  std::vector<CoreId> active;
  for (CoreId c = 0; c < cfg_.coprocessor.num_cores; ++c) active.push_back(c);

  std::uint32_t attempt = 0;
  std::uint32_t failures_this_config = 0;
  bool coprocessor_usable = true;

  while (coprocessor_usable) {
    AttemptRecord rec;
    rec.attempt = attempt;
    rec.num_cores = static_cast<std::uint32_t>(active.size());

    SimConfig attempt_cfg = cfg_;
    attempt_cfg.coprocessor.num_cores = rec.num_cores;
    attempt_cfg.coprocessor.watchdog_cycles = budget;

    injector_.begin_attempt(attempt, active);
    Coprocessor coproc(attempt_cfg, heap_);
    bool aborted = false;
    try {
      report.stats =
          coproc.collect(trace, nullptr, &injector_, telemetry, profiler);
      rec.cycles = report.stats.total_cycles;
      if (cfg_.recovery.verify_heap) {
        const VerifyResult vr = verify_collection(pre, heap_);
        if (!vr.ok) {
          aborted = true;
          rec.abort_reason = AbortReason::kVerifier;
          rec.detail = vr.summary();
        }
      }
    } catch (const CollectionAbort& ex) {
      aborted = true;
      rec.abort_reason = ex.reason();
      rec.detail = ex.what();
      rec.suspect_logical = ex.suspect();
      rec.cycles = ex.at();
      if (rec.suspect_logical != kNoCore &&
          rec.suspect_logical < active.size()) {
        rec.suspect_physical = active[rec.suspect_logical];
      }
    }
    rec.faults_fired = injector_.fired_this_attempt();
    rec.success = !aborted;
    report.attempts.push_back(rec);
    ++attempt;

    if (!aborted) {
      report.ok = true;
      report.faults_masked = rec.faults_fired;
      break;
    }

    if (trace != nullptr) {
      trace->note(rec.cycles, "recovery: attempt " +
                                  std::to_string(rec.attempt) + " aborted (" +
                                  std::string(to_string(rec.abort_reason)) +
                                  "), restoring pre-cycle image");
    }
    recovery_note("attempt " + std::to_string(rec.attempt) + " aborted (" +
                  std::string(to_string(rec.abort_reason)) +
                  "), restoring pre-cycle image");
    image.restore(heap_);
    ++failures_this_config;

    if (failures_this_config <= cfg_.recovery.max_retries) continue;

    // Retries exhausted on this configuration: deconfigure the suspect
    // core (if one was localized) and start over on the reduced set.
    if (cfg_.recovery.allow_deconfigure && active.size() > 1 &&
        rec.suspect_physical != kNoCore) {
      std::erase(active, rec.suspect_physical);
      report.deconfigured.push_back(rec.suspect_physical);
      failures_this_config = 0;
      if (trace != nullptr) {
        trace->note(rec.cycles,
                    "recovery: deconfigured physical core " +
                        std::to_string(rec.suspect_physical) + ", " +
                        std::to_string(active.size()) + " core(s) remain");
      }
      recovery_note("deconfigured physical core " +
                    std::to_string(rec.suspect_physical) + ", " +
                    std::to_string(active.size()) + " core(s) remain");
      continue;
    }
    coprocessor_usable = false;
  }

  if (!report.ok && cfg_.recovery.allow_sequential_fallback) {
    // Last resort: the main processor collects with the software Cheney
    // pass, bypassing the (faulty) coprocessor and memory scheduler. The
    // heap already holds the restored pre-cycle image.
    report.used_sequential_fallback = true;
    if (trace != nullptr) {
      trace->note(0, "recovery: falling back to sequential software GC");
    }
    recovery_note("falling back to sequential software GC");
    AttemptRecord rec;
    rec.attempt = attempt;
    rec.num_cores = 0;  // runs on the main processor, not the coprocessor
    const SequentialGcStats seq = SequentialCheney::collect(heap_);
    bool ok = true;
    if (cfg_.recovery.verify_heap) {
      const VerifyResult vr = verify_collection(pre, heap_);
      ok = vr.ok;
      if (!ok) {
        rec.abort_reason = AbortReason::kUnrecoverable;
        rec.detail = vr.summary();
        image.restore(heap_);
      }
    }
    rec.success = ok;
    report.attempts.push_back(rec);
    if (ok) {
      report.ok = true;
      report.stats = GcCycleStats{};
      report.stats.objects_copied = seq.objects_copied;
      report.stats.words_copied = seq.words_copied;
      report.stats.pointers_forwarded = seq.pointers_forwarded;
      report.stats.restart_stores_drained = true;
      // The fallback runs outside the coprocessor clock — there are no
      // simulated cycles to attribute, only the failed attempt's partial
      // profile, which must not escape as if it covered this collection.
      if (profiler != nullptr) profiler->mark_unprofiled();
    }
  }

  report.faults_fired = injector_.fired_total();
  report.fault_log = injector_.log();
  return report;
}

std::string RecoveryReport::summary() const {
  std::ostringstream os;
  os << (ok ? "recovered" : "FAILED") << " after " << attempts.size()
     << " attempt(s); faults injected=" << faults_injected
     << " fired=" << faults_fired << " masked=" << faults_masked;
  if (!deconfigured.empty()) {
    os << "; deconfigured core(s):";
    for (CoreId c : deconfigured) os << ' ' << c;
  }
  if (used_sequential_fallback) os << "; sequential fallback";
  for (const auto& a : attempts) {
    os << "\n  attempt " << a.attempt << " [" << a.num_cores << " core(s)] "
       << (a.success ? "ok" : std::string("abort: ") +
                                  std::string(to_string(a.abort_reason)));
    if (!a.success && !a.detail.empty()) os << " — " << a.detail;
  }
  return os.str();
}

}  // namespace hwgc
