// Abort-and-retry recovery orchestration (tentpole of the robustness work).
//
// The stop-the-world design gives a free crash-consistency property the
// paper never exploits: fromspace is intact until the flip, so a detected
// fault at ANY point of a collection cycle can be recovered by restoring
// the pre-cycle image and re-running the whole collection. The escalation
// ladder, bounded at every level:
//
//   1. abort-and-retry on the same core configuration (max_retries times);
//   2. deconfigure the suspect core (watchdog activity monitor / stuck-busy
//      consistency check) and re-run on N-1 cores;
//   3. last resort: the software sequential Cheney collector runs on the
//      main processor, bypassing the (faulty) coprocessor entirely.
//
// Detection sources feeding the ladder (sim/abort.hpp AbortReason):
//   * per-collection watchdog with a cycle budget derived from live bytes,
//   * header ECC verification on every header load,
//   * bounds checks on every functional memory access,
//   * the end-of-cycle heap verifier — run before the mutator is restarted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "heap/heap.hpp"
#include "heap/verifier.hpp"
#include "sim/abort.hpp"
#include "sim/config.hpp"
#include "sim/counters.hpp"
#include "sim/trace.hpp"

namespace hwgc {

class CycleProfiler;

/// Outcome of one collection attempt inside the recovery loop.
struct AttemptRecord {
  std::uint32_t attempt = 0;
  std::uint32_t num_cores = 0;      ///< active cores during the attempt
  bool success = false;
  AbortReason abort_reason = AbortReason::kWatchdog;  ///< valid when !success
  std::string detail;               ///< abort message / verifier findings
  CoreId suspect_logical = kNoCore; ///< as reported by the detector
  CoreId suspect_physical = kNoCore;
  Cycle cycles = 0;                 ///< clock cycles the attempt consumed
  std::uint64_t faults_fired = 0;   ///< fault events fired in this attempt
};

/// Full account of one recovered (or failed) collection.
struct RecoveryReport {
  bool ok = false;                  ///< heap verified and mutator restarted
  GcCycleStats stats;               ///< stats of the successful attempt
  std::vector<AttemptRecord> attempts;
  std::vector<CoreId> deconfigured; ///< physical cores dropped along the way
  bool used_sequential_fallback = false;

  std::uint64_t faults_injected = 0;  ///< events in the plan
  std::uint64_t faults_fired = 0;     ///< firings across all attempts
  /// Events that fired during the final, successful attempt — by
  /// definition masked, since the verifier accepted the resulting heap.
  std::uint64_t faults_masked = 0;

  /// Every fired fault event, with attempt and cycle ("the trace").
  std::vector<std::string> fault_log;

  std::uint32_t aborts(AbortReason r) const noexcept {
    std::uint32_t n = 0;
    for (const auto& a : attempts) {
      if (!a.success && a.abort_reason == r) ++n;
    }
    return n;
  }

  std::string summary() const;
};

/// Runs collections through the detection-and-recovery machinery. One
/// instance per heap; collect() may be called repeatedly (one call per GC).
class RecoveringCollector {
 public:
  /// The fault plan defaults to the one derived from cfg.fault; pass an
  /// explicit plan to inject hand-crafted events (tests do this).
  RecoveringCollector(const SimConfig& cfg, Heap& heap);
  RecoveringCollector(const SimConfig& cfg, Heap& heap, FaultPlan plan);

  /// Runs one fully recovered collection cycle. Returns a report whose
  /// `ok` is true iff the final heap passed verification; on `ok` the heap
  /// has been flipped and the roots updated exactly as Coprocessor::collect
  /// would have. Never lets a detectably corrupt heap reach the mutator:
  /// if every escalation level fails, `ok` is false and the heap holds the
  /// restored pre-cycle image.
  ///
  /// `telemetry`, when non-null, records every attempt as its own epoch
  /// plus recovery-track instants for image restores, core deconfigurations
  /// and the sequential fallback.
  ///
  /// `profiler`, when non-null, is threaded into every coprocessor attempt;
  /// each attempt resets it, so on return it holds the attribution of the
  /// final successful attempt only. The sequential fallback runs on the
  /// main processor, outside the coprocessor clock, so it marks the
  /// profile unprofiled instead of inventing cycle classes.
  RecoveryReport collect(SignalTrace* trace = nullptr,
                         TelemetryBus* telemetry = nullptr,
                         CycleProfiler* profiler = nullptr);

  const FaultInjector& injector() const noexcept { return injector_; }

 private:
  /// Derived watchdog budget for a live set of `live_words`.
  Cycle watchdog_budget(Word live_words) const noexcept;

  SimConfig cfg_;
  Heap& heap_;
  FaultInjector injector_;
};

}  // namespace hwgc
