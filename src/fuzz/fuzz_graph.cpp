#include "fuzz/fuzz_graph.hpp"

#include <algorithm>
#include <vector>

#include "sim/rng.hpp"

namespace hwgc {

GraphPlan make_fuzz_plan(std::uint64_t seed, const FuzzGraphConfig& cfg) {
  Rng rng(seed);
  GraphPlan p;

  const std::uint32_t nodes = static_cast<std::uint32_t>(
      rng.between(cfg.min_nodes, std::max(cfg.min_nodes, cfg.max_nodes)));

  std::vector<std::uint32_t> pool;  // linkable (non-garbage) nodes
  pool.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    const bool garbage = rng.chance(cfg.garbage_fraction);
    const Word pi = static_cast<Word>(rng.below(cfg.max_pi + 1));
    const Word delta =
        rng.chance(cfg.huge_fraction)
            ? static_cast<Word>(rng.between(
                  cfg.max_delta, std::max(cfg.max_delta, cfg.huge_delta)))
            : static_cast<Word>(rng.below(cfg.max_delta + 1));
    const std::uint32_t node = p.add(pi, delta, garbage);
    if (!garbage) pool.push_back(node);
  }
  if (pool.empty()) pool.push_back(p.add(1, 1));

  // Hubs first, so the ordinary wiring below can also hit them: a slice of
  // the pool gets a dedicated edge into each hub (shared subgraphs, and at
  // collection time a hot header-lock address).
  const std::uint32_t hub_count =
      std::min<std::uint32_t>(cfg.hubs,
                              static_cast<std::uint32_t>(pool.size()));
  for (std::uint32_t h = 0; h < hub_count; ++h) {
    const std::uint32_t hub = pool[rng.below(pool.size())];
    for (std::uint32_t n : pool) {
      if (p.nodes[n].pi == 0 || !rng.chance(cfg.hub_in_probability)) continue;
      p.link(n, static_cast<Word>(rng.below(p.nodes[n].pi)), hub);
    }
  }

  // Initial wiring: any-to-any, so back edges, cycles and self-loops all
  // occur. Later links overwrite earlier ones at materialization, so this
  // may silently re-target a hub edge — intended, the dice rule.
  for (std::uint32_t n : pool) {
    for (Word f = 0; f < p.nodes[n].pi; ++f) {
      if (rng.chance(cfg.edge_probability)) {
        p.link(n, f, pool[rng.below(pool.size())]);
      }
    }
  }

  // Roots.
  if (!rng.chance(cfg.empty_root_probability)) {
    const std::uint32_t root_count = static_cast<std::uint32_t>(
        rng.between(1, std::max<std::uint32_t>(1, cfg.max_roots)));
    for (std::uint32_t r = 0; r < root_count; ++r) {
      p.add_root(pool[rng.below(pool.size())]);
    }
  }

  // Mid-build mutation pass: re-target a fraction of the wired fields and
  // re-pick roots. Appended links win at materialization, so the final
  // graph can strand whole subgraphs that the initial wiring reached.
  const std::size_t wired = p.edges.size();
  const std::size_t mutations =
      static_cast<std::size_t>(cfg.mutation_fraction *
                               static_cast<double>(wired));
  for (std::size_t m = 0; m < mutations; ++m) {
    const GraphPlan::Edge victim = p.edges[rng.below(wired)];
    p.link(victim.src, victim.field, pool[rng.below(pool.size())]);
  }
  for (auto& r : p.roots) {
    if (rng.chance(cfg.mutation_fraction)) r = pool[rng.below(pool.size())];
  }

  return p;
}

}  // namespace hwgc
