// Seeded random heap-graph fuzzer.
//
// Builds on workloads/random_graph but aims for hostile shapes rather than
// benchmark-like ones: cycles and self-loops, shared subgraphs funneled
// through hub objects (header-lock contention), a tail of huge objects
// (long copies, the sub-object stripe path), and mid-build mutations that
// re-target already-wired fields and roots — emulating a mutator that
// changed the graph after construction, so the reachable set is decided by
// the final state, not the build order. The verifier snapshot remains the
// ground truth for reachability.
#pragma once

#include <cstdint>

#include "sim/types.hpp"
#include "workloads/graph_plan.hpp"

namespace hwgc {

struct FuzzGraphConfig {
  /// Node count is drawn uniformly from [min_nodes, max_nodes].
  std::uint32_t min_nodes = 16;
  std::uint32_t max_nodes = 160;

  Word max_pi = 8;
  Word max_delta = 12;

  /// Probability that a pointer field is wired at initial construction.
  double edge_probability = 0.55;

  /// Fraction of nodes that are never referenced and never rooted.
  double garbage_fraction = 0.12;

  /// Fraction of nodes grown huge: data area uniform in
  /// [max_delta, huge_delta] words (exercises long copies and, with
  /// subobject_copy on, the stripe dispenser).
  double huge_fraction = 0.05;
  Word huge_delta = 96;

  /// Hub objects: nodes that a large share of other nodes point at,
  /// concentrating header-lock traffic the way javac's symbol hubs do.
  std::uint32_t hubs = 2;
  double hub_in_probability = 0.3;

  /// Mid-build mutation pass: this fraction of all wired fields is
  /// re-targeted after construction (later links overwrite earlier ones at
  /// materialization), and each root is re-picked with the same chance.
  double mutation_fraction = 0.15;

  /// Root count is drawn from [1, max_roots] — except with
  /// empty_root_probability the plan ships no roots at all, the
  /// empty-cycle edge case.
  std::uint32_t max_roots = 6;
  double empty_root_probability = 0.02;
};

/// Builds a fuzz plan. Deterministic: the same (seed, cfg) pair yields the
/// identical plan, so any failing case replays bit-for-bit.
GraphPlan make_fuzz_plan(std::uint64_t seed, const FuzzGraphConfig& cfg = {});

}  // namespace hwgc
