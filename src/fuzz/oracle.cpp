#include "fuzz/oracle.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "conformance/forwarding.hpp"
#include "core/coprocessor.hpp"
#include "core/schedule_policy.hpp"
#include "heap/object_model.hpp"
#include "heap/verifier.hpp"
#include "sim/rng.hpp"

namespace hwgc {

SimConfig FuzzCase::sim_config() const {
  SimConfig cfg;
  cfg.coprocessor.num_cores = num_cores;
  cfg.coprocessor.header_fifo_capacity = header_fifo_capacity;
  cfg.coprocessor.schedule = schedule;
  cfg.coprocessor.schedule_seed = schedule_seed;
  cfg.coprocessor.subobject_copy = subobject_copy;
  cfg.coprocessor.markbit_early_read = markbit_early_read;
  cfg.memory.latency_jitter = latency_jitter;
  cfg.memory.jitter_seed = schedule_seed ^ 0x9e3779b97f4a7c15ULL;
  cfg.fault = fault;
  cfg.recovery.enabled = fault.enabled();
  return cfg;
}

std::string FuzzCase::summary() const {
  std::ostringstream os;
  os << "--graph-seed " << graph_seed << " --schedule " << to_string(schedule)
     << " --schedule-seed " << schedule_seed << " --cores " << num_cores
     << " --fifo " << header_fifo_capacity << " --jitter " << latency_jitter;
  if (subobject_copy) os << " --subobject";
  if (markbit_early_read) os << " --earlyread";
  if (fault.enabled()) {
    os << " --fault-events " << fault.events << " --fault-seed " << fault.seed;
    const FaultConfig fdef;
    if (fault.class_mask != fdef.class_mask) {
      os << " --fault-mask " << fault.class_mask;
    }
    if (fault.persistent_fraction != fdef.persistent_fraction) {
      os << " --fault-persistent " << fault.persistent_fraction;
    }
    if (fault.trigger_scale != fdef.trigger_scale) {
      os << " --fault-scale " << fault.trigger_scale;
    }
  }
  const FuzzGraphConfig def;
  if (graph.min_nodes != def.min_nodes) os << " --min-nodes " << graph.min_nodes;
  if (graph.max_nodes != def.max_nodes) os << " --max-nodes " << graph.max_nodes;
  if (graph.max_pi != def.max_pi) os << " --max-pi " << graph.max_pi;
  if (graph.max_delta != def.max_delta) os << " --max-delta " << graph.max_delta;
  if (graph.edge_probability != def.edge_probability) {
    os << " --edge-prob " << graph.edge_probability;
  }
  if (graph.garbage_fraction != def.garbage_fraction) {
    os << " --garbage " << graph.garbage_fraction;
  }
  if (graph.huge_fraction != def.huge_fraction) {
    os << " --huge-frac " << graph.huge_fraction;
  }
  if (graph.huge_delta != def.huge_delta) os << " --huge-delta " << graph.huge_delta;
  if (graph.hubs != def.hubs) os << " --hubs " << graph.hubs;
  if (graph.mutation_fraction != def.mutation_fraction) {
    os << " --mutation " << graph.mutation_fraction;
  }
  if (graph.max_roots != def.max_roots) os << " --max-roots " << graph.max_roots;
  return os.str();
}

std::string FuzzVerdict::summary() const {
  if (ok) return "OK";
  std::ostringstream os;
  os << errors.size() << " oracle error(s):";
  for (const auto& e : errors) os << "\n  - " << e;
  if (!schedule_tail.empty()) {
    os << "\nschedule tail:\n" << schedule_tail;
  }
  return os.str();
}

namespace {

/// Forwarding-map bijectivity + dense-tiling check, via the shared
/// implementation in src/conformance/forwarding.hpp (the coprocessor and
/// the sequential reference are both Cheney-dense, so tiling is required).
bool build_forwarding_map(const char* who, const HeapSnapshot& pre,
                          const Heap& post, FuzzVerdict& v,
                          std::unordered_map<Addr, Addr>& fwd) {
  std::vector<std::string> errors;
  const bool ok = extract_forwarding_map(who, pre, post, errors, fwd) &&
                  check_dense_tiling(who, pre, post, fwd, errors);
  for (auto& e : errors) v.fail(std::move(e));
  return ok;
}

}  // namespace

FuzzVerdict run_fuzz_case(const FuzzCase& fc, TelemetryBus* telemetry) {
  FuzzVerdict v;
  const GraphPlan plan = make_fuzz_plan(fc.graph_seed, fc.graph);
  Workload hw = materialize(plan);
  Workload ref = materialize(plan);

  const HeapSnapshot pre = HeapSnapshot::capture(*hw.heap);
  const HeapSnapshot pre_ref = HeapSnapshot::capture(*ref.heap);
  v.live_objects = pre.objects.size();
  if (pre.objects.size() != pre_ref.objects.size()) {
    v.fail("materialization diverged between the two heaps");
    return v;
  }

  ScheduleTrace sched(64);
  if (fc.fault.enabled()) {
    // Fault-injected runs go through the recovery machinery. The oracle's
    // contract: the run either completes with a verified-identical heap
    // (fault masked or explicitly recovered) or fails loudly here — an
    // injected fault must never corrupt silently.
    v.fault_run = true;
    RecoveringCollector collector(fc.sim_config(), *hw.heap);
    v.recovery = collector.collect(nullptr, telemetry);
    v.coproc = v.recovery.stats;
    if (!v.recovery.ok) {
      v.fail("recovery failed: " + v.recovery.summary());
      return v;
    }
    if (v.recovery.faults_injected != fc.fault.events) {
      v.fail("fault plan holds " + std::to_string(v.recovery.faults_injected) +
             " events, config requested " + std::to_string(fc.fault.events));
    }
    std::uint64_t fired = 0;
    for (const auto& a : v.recovery.attempts) fired += a.faults_fired;
    if (fired != v.recovery.faults_fired) {
      v.fail("fault accounting mismatch: attempts account for " +
             std::to_string(fired) + " firings, injector reports " +
             std::to_string(v.recovery.faults_fired));
    }
    if (v.recovery.faults_fired != v.recovery.fault_log.size()) {
      v.fail("fault log holds " + std::to_string(v.recovery.fault_log.size()) +
             " entries for " + std::to_string(v.recovery.faults_fired) +
             " firings");
    }
  } else {
    Coprocessor coproc(fc.sim_config(), *hw.heap);
    try {
      v.coproc = coproc.collect(nullptr, &sched, nullptr, telemetry);
    } catch (const std::exception& e) {
      v.fail(std::string("coprocessor threw: ") + e.what());
      v.schedule_tail = sched.dump();
      return v;
    }
  }
  v.sequential = SequentialCheney::collect(*ref.heap);

  // Per-heap verification against the pre-cycle snapshots.
  const VerifyResult vr = verify_collection(pre, *hw.heap);
  for (const auto& e : vr.errors) v.fail("coprocessor: " + e);
  const VerifyResult vs = verify_collection(pre_ref, *ref.heap);
  for (const auto& e : vs.errors) v.fail("sequential: " + e);

  // Lock-order auditor must be silent (DESIGN.md invariant 6).
  for (const auto& x : v.coproc.lock_order_violations) {
    v.fail("lock order: " + x);
  }

  // Per-object single-evacuation counters. (Not meaningful when recovery
  // escalated to the software fallback: the sequential pass reports no
  // per-core counters.)
  if (!v.recovery.used_sequential_fallback) {
    std::uint64_t evacuations = 0;
    for (const auto& c : v.coproc.per_core) evacuations += c.objects_evacuated;
    if (evacuations != pre.objects.size()) {
      v.fail("evacuation count " + std::to_string(evacuations) +
             " != " + std::to_string(pre.objects.size()) + " live objects");
    }
  }
  if (v.coproc.objects_copied != v.sequential.objects_copied ||
      v.coproc.words_copied != v.sequential.words_copied) {
    v.fail("copy totals diverge from sequential reference: objects " +
           std::to_string(v.coproc.objects_copied) + "/" +
           std::to_string(v.sequential.objects_copied) + ", words " +
           std::to_string(v.coproc.words_copied) + "/" +
           std::to_string(v.sequential.words_copied));
  }

  // Forwarding-map bijectivity, then image equivalence modulo copy order.
  std::unordered_map<Addr, Addr> fwd_hw, fwd_ref;
  const bool hw_ok = build_forwarding_map("coprocessor", pre, *hw.heap, v, fwd_hw);
  const bool ref_ok =
      build_forwarding_map("sequential", pre_ref, *ref.heap, v, fwd_ref);
  if (hw_ok && ref_ok) {
    std::vector<std::string> errors;
    cross_compare_images("coprocessor", "sequential", pre, *hw.heap,
                         *ref.heap, fwd_hw, fwd_ref, errors);
    for (auto& e : errors) v.fail(std::move(e));
  }

  if (!v.ok) v.schedule_tail = sched.dump();
  return v;
}

FuzzCase case_from_seed(std::uint64_t master_seed) {
  std::uint64_t s = master_seed;
  FuzzCase fc;
  fc.graph_seed = splitmix64(s);
  fc.schedule = static_cast<SchedulePolicyKind>(splitmix64(s) % 4);
  fc.schedule_seed = splitmix64(s);
  static constexpr std::uint32_t kCores[] = {1, 2, 3, 4, 6, 8, 12, 16};
  fc.num_cores = kCores[splitmix64(s) % 8];
  // Tiny capacities force the FIFO-overflow path (scan-locked header
  // loads); 32k is the prototype's configuration.
  static constexpr std::uint32_t kFifo[] = {32 * 1024, 32 * 1024, 64, 4, 0};
  fc.header_fifo_capacity = kFifo[splitmix64(s) % 5];
  static constexpr Cycle kJitter[] = {0, 0, 1, 3, 7};
  fc.latency_jitter = kJitter[splitmix64(s) % 5];
  const std::uint64_t features = splitmix64(s);
  fc.subobject_copy = features % 4 == 0;
  fc.markbit_early_read = features % 8 >= 6;
  return fc;
}

FuzzCase minimize_case(const FuzzCase& failing, std::uint32_t budget) {
  FuzzCase best = failing;
  const auto fails = [&budget](const FuzzCase& c) {
    if (budget == 0) return false;
    --budget;
    return !run_fuzz_case(c).ok;
  };

  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    std::vector<FuzzCase> candidates;
    const auto propose = [&](auto&& mutate) {
      FuzzCase c = best;
      if (mutate(c)) candidates.push_back(c);
    };
    // Shrink the graph first — a small graph makes every later probe cheap.
    propose([](FuzzCase& c) {
      if (c.graph.max_nodes <= 4) return false;
      c.graph.max_nodes /= 2;
      c.graph.min_nodes = std::min(c.graph.min_nodes, c.graph.max_nodes);
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.graph.max_delta <= 1 && c.graph.huge_fraction == 0.0) return false;
      c.graph.max_delta = std::max<Word>(1, c.graph.max_delta / 2);
      c.graph.huge_fraction = 0.0;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.graph.hubs == 0 && c.graph.mutation_fraction == 0.0) return false;
      c.graph.hubs = 0;
      c.graph.mutation_fraction = 0.0;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.graph.garbage_fraction == 0.0) return false;
      c.graph.garbage_fraction = 0.0;
      return true;
    });
    // Then the collector features and hardware knobs.
    propose([](FuzzCase& c) {
      if (!c.subobject_copy && !c.markbit_early_read) return false;
      c.subobject_copy = false;
      c.markbit_early_read = false;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.latency_jitter == 0) return false;
      c.latency_jitter = 0;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.header_fifo_capacity >= 32 * 1024) return false;
      c.header_fifo_capacity = 32 * 1024;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.schedule == SchedulePolicyKind::kFixedPriority) return false;
      c.schedule = SchedulePolicyKind::kFixedPriority;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.num_cores <= 2) return false;
      c.num_cores /= 2;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.num_cores <= 1) return false;
      --c.num_cores;
      return true;
    });
    for (const auto& c : candidates) {
      if (fails(c)) {
        best = c;
        progress = true;
        break;
      }
      if (budget == 0) break;
    }
  }
  return best;
}

}  // namespace hwgc
