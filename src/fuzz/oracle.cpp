#include "fuzz/oracle.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/coprocessor.hpp"
#include "core/schedule_policy.hpp"
#include "heap/object_model.hpp"
#include "heap/verifier.hpp"
#include "sim/rng.hpp"

namespace hwgc {

SimConfig FuzzCase::sim_config() const {
  SimConfig cfg;
  cfg.coprocessor.num_cores = num_cores;
  cfg.coprocessor.header_fifo_capacity = header_fifo_capacity;
  cfg.coprocessor.schedule = schedule;
  cfg.coprocessor.schedule_seed = schedule_seed;
  cfg.coprocessor.subobject_copy = subobject_copy;
  cfg.coprocessor.markbit_early_read = markbit_early_read;
  cfg.memory.latency_jitter = latency_jitter;
  cfg.memory.jitter_seed = schedule_seed ^ 0x9e3779b97f4a7c15ULL;
  cfg.fault = fault;
  cfg.recovery.enabled = fault.enabled();
  return cfg;
}

std::string FuzzCase::summary() const {
  std::ostringstream os;
  os << "--graph-seed " << graph_seed << " --schedule " << to_string(schedule)
     << " --schedule-seed " << schedule_seed << " --cores " << num_cores
     << " --fifo " << header_fifo_capacity << " --jitter " << latency_jitter;
  if (subobject_copy) os << " --subobject";
  if (markbit_early_read) os << " --earlyread";
  if (fault.enabled()) {
    os << " --fault-events " << fault.events << " --fault-seed " << fault.seed;
    const FaultConfig fdef;
    if (fault.class_mask != fdef.class_mask) {
      os << " --fault-mask " << fault.class_mask;
    }
    if (fault.persistent_fraction != fdef.persistent_fraction) {
      os << " --fault-persistent " << fault.persistent_fraction;
    }
    if (fault.trigger_scale != fdef.trigger_scale) {
      os << " --fault-scale " << fault.trigger_scale;
    }
  }
  const FuzzGraphConfig def;
  if (graph.min_nodes != def.min_nodes) os << " --min-nodes " << graph.min_nodes;
  if (graph.max_nodes != def.max_nodes) os << " --max-nodes " << graph.max_nodes;
  if (graph.max_pi != def.max_pi) os << " --max-pi " << graph.max_pi;
  if (graph.max_delta != def.max_delta) os << " --max-delta " << graph.max_delta;
  if (graph.edge_probability != def.edge_probability) {
    os << " --edge-prob " << graph.edge_probability;
  }
  if (graph.garbage_fraction != def.garbage_fraction) {
    os << " --garbage " << graph.garbage_fraction;
  }
  if (graph.huge_fraction != def.huge_fraction) {
    os << " --huge-frac " << graph.huge_fraction;
  }
  if (graph.huge_delta != def.huge_delta) os << " --huge-delta " << graph.huge_delta;
  if (graph.hubs != def.hubs) os << " --hubs " << graph.hubs;
  if (graph.mutation_fraction != def.mutation_fraction) {
    os << " --mutation " << graph.mutation_fraction;
  }
  if (graph.max_roots != def.max_roots) os << " --max-roots " << graph.max_roots;
  return os.str();
}

std::string FuzzVerdict::summary() const {
  if (ok) return "OK";
  std::ostringstream os;
  os << errors.size() << " oracle error(s):";
  for (const auto& e : errors) os << "\n  - " << e;
  if (!schedule_tail.empty()) {
    os << "\nschedule tail:\n" << schedule_tail;
  }
  return os.str();
}

namespace {

std::string hex(Addr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

/// Reads the forwarding map {pre addr -> copy} out of a collected heap and
/// checks it is a bijection onto the dense tospace extent: total over the
/// pre-live set, injective, and its images tile exactly
/// [base, base + live_words) with the allocation pointer at the end.
bool build_forwarding_map(const char* who, const HeapSnapshot& pre,
                          const Heap& post, FuzzVerdict& v,
                          std::unordered_map<Addr, Addr>& fwd) {
  const WordMemory& mem = post.memory();
  const Addr base = post.layout().current_base();
  std::unordered_set<Addr> images;
  bool total = true;
  fwd.reserve(pre.objects.size());
  for (const auto& rec : pre.objects) {
    const Word attrs = mem.load(attributes_addr(rec.addr));
    if (!is_forwarded(attrs)) {
      v.fail(std::string(who) + ": live object " + hex(rec.addr) +
             " has no forwarding pointer");
      total = false;
      continue;
    }
    const Addr copy = mem.load(link_addr(rec.addr));
    if (!images.insert(copy).second) {
      v.fail(std::string(who) + ": forwarding map not injective at copy " +
             hex(copy));
      total = false;
      continue;
    }
    fwd.emplace(rec.addr, copy);
  }
  if (!total) return false;

  std::vector<Addr> sorted(images.begin(), images.end());
  std::sort(sorted.begin(), sorted.end());
  Addr expect = base;
  for (Addr copy : sorted) {
    if (copy != expect) {
      v.fail(std::string(who) + ": forwarding images do not tile tospace: " +
             "expected image at " + hex(expect) + ", next is " + hex(copy));
      return false;
    }
    expect += object_words(mem.load(attributes_addr(copy)));
  }
  if (expect != base + pre.live_words || post.alloc_ptr() != expect) {
    v.fail(std::string(who) + ": forwarding map not onto the live extent (" +
           std::to_string(expect - base) + " image words, " +
           std::to_string(pre.live_words) + " live words, alloc at " +
           hex(post.alloc_ptr()) + ")");
    return false;
  }
  return true;
}

/// Byte-for-byte equivalence of the two tospace images modulo copy order:
/// for every pre-live object, its two copies must have the same shape, the
/// same data words, and pointer fields that denote the same pre-cycle
/// child (resolved through each heap's own forwarding map).
void cross_compare_images(const HeapSnapshot& pre, const Heap& a,
                          const Heap& b,
                          const std::unordered_map<Addr, Addr>& fwd_a,
                          const std::unordered_map<Addr, Addr>& fwd_b,
                          FuzzVerdict& v) {
  for (const auto& rec : pre.objects) {
    const Addr ca = fwd_a.at(rec.addr);
    const Addr cb = fwd_b.at(rec.addr);
    const Word attrs_a = a.memory().load(attributes_addr(ca));
    const Word attrs_b = b.memory().load(attributes_addr(cb));
    if (pi_of(attrs_a) != pi_of(attrs_b) ||
        delta_of(attrs_a) != delta_of(attrs_b)) {
      v.fail("image shapes diverge for pre object " + hex(rec.addr));
      continue;
    }
    for (Word i = 0; i < rec.pi; ++i) {
      const Addr old_child = rec.pointers[i];
      const Addr want_a = old_child == kNullPtr ? kNullPtr : fwd_a.at(old_child);
      const Addr want_b = old_child == kNullPtr ? kNullPtr : fwd_b.at(old_child);
      const Addr got_a = a.memory().load(pointer_field_addr(ca, i));
      const Addr got_b = b.memory().load(pointer_field_addr(cb, i));
      if (got_a != want_a || got_b != want_b) {
        v.fail("pointer field " + std::to_string(i) + " of pre object " +
               hex(rec.addr) + " denotes different children: coprocessor " +
               hex(got_a) + "/" + hex(want_a) + ", sequential " + hex(got_b) +
               "/" + hex(want_b));
      }
    }
    for (Word j = 0; j < rec.delta; ++j) {
      const Word da = a.memory().load(data_field_addr(ca, rec.pi, j));
      const Word db = b.memory().load(data_field_addr(cb, rec.pi, j));
      if (da != db) {
        v.fail("data word " + std::to_string(j) + " of pre object " +
               hex(rec.addr) + " diverges: " + std::to_string(da) + " != " +
               std::to_string(db));
      }
    }
  }
}

}  // namespace

FuzzVerdict run_fuzz_case(const FuzzCase& fc, TelemetryBus* telemetry) {
  FuzzVerdict v;
  const GraphPlan plan = make_fuzz_plan(fc.graph_seed, fc.graph);
  Workload hw = materialize(plan);
  Workload ref = materialize(plan);

  const HeapSnapshot pre = HeapSnapshot::capture(*hw.heap);
  const HeapSnapshot pre_ref = HeapSnapshot::capture(*ref.heap);
  v.live_objects = pre.objects.size();
  if (pre.objects.size() != pre_ref.objects.size()) {
    v.fail("materialization diverged between the two heaps");
    return v;
  }

  ScheduleTrace sched(64);
  if (fc.fault.enabled()) {
    // Fault-injected runs go through the recovery machinery. The oracle's
    // contract: the run either completes with a verified-identical heap
    // (fault masked or explicitly recovered) or fails loudly here — an
    // injected fault must never corrupt silently.
    v.fault_run = true;
    RecoveringCollector collector(fc.sim_config(), *hw.heap);
    v.recovery = collector.collect(nullptr, telemetry);
    v.coproc = v.recovery.stats;
    if (!v.recovery.ok) {
      v.fail("recovery failed: " + v.recovery.summary());
      return v;
    }
    if (v.recovery.faults_injected != fc.fault.events) {
      v.fail("fault plan holds " + std::to_string(v.recovery.faults_injected) +
             " events, config requested " + std::to_string(fc.fault.events));
    }
    std::uint64_t fired = 0;
    for (const auto& a : v.recovery.attempts) fired += a.faults_fired;
    if (fired != v.recovery.faults_fired) {
      v.fail("fault accounting mismatch: attempts account for " +
             std::to_string(fired) + " firings, injector reports " +
             std::to_string(v.recovery.faults_fired));
    }
    if (v.recovery.faults_fired != v.recovery.fault_log.size()) {
      v.fail("fault log holds " + std::to_string(v.recovery.fault_log.size()) +
             " entries for " + std::to_string(v.recovery.faults_fired) +
             " firings");
    }
  } else {
    Coprocessor coproc(fc.sim_config(), *hw.heap);
    try {
      v.coproc = coproc.collect(nullptr, &sched, nullptr, telemetry);
    } catch (const std::exception& e) {
      v.fail(std::string("coprocessor threw: ") + e.what());
      v.schedule_tail = sched.dump();
      return v;
    }
  }
  v.sequential = SequentialCheney::collect(*ref.heap);

  // Per-heap verification against the pre-cycle snapshots.
  const VerifyResult vr = verify_collection(pre, *hw.heap);
  for (const auto& e : vr.errors) v.fail("coprocessor: " + e);
  const VerifyResult vs = verify_collection(pre_ref, *ref.heap);
  for (const auto& e : vs.errors) v.fail("sequential: " + e);

  // Lock-order auditor must be silent (DESIGN.md invariant 6).
  for (const auto& x : v.coproc.lock_order_violations) {
    v.fail("lock order: " + x);
  }

  // Per-object single-evacuation counters. (Not meaningful when recovery
  // escalated to the software fallback: the sequential pass reports no
  // per-core counters.)
  if (!v.recovery.used_sequential_fallback) {
    std::uint64_t evacuations = 0;
    for (const auto& c : v.coproc.per_core) evacuations += c.objects_evacuated;
    if (evacuations != pre.objects.size()) {
      v.fail("evacuation count " + std::to_string(evacuations) +
             " != " + std::to_string(pre.objects.size()) + " live objects");
    }
  }
  if (v.coproc.objects_copied != v.sequential.objects_copied ||
      v.coproc.words_copied != v.sequential.words_copied) {
    v.fail("copy totals diverge from sequential reference: objects " +
           std::to_string(v.coproc.objects_copied) + "/" +
           std::to_string(v.sequential.objects_copied) + ", words " +
           std::to_string(v.coproc.words_copied) + "/" +
           std::to_string(v.sequential.words_copied));
  }

  // Forwarding-map bijectivity, then image equivalence modulo copy order.
  std::unordered_map<Addr, Addr> fwd_hw, fwd_ref;
  const bool hw_ok = build_forwarding_map("coprocessor", pre, *hw.heap, v, fwd_hw);
  const bool ref_ok =
      build_forwarding_map("sequential", pre_ref, *ref.heap, v, fwd_ref);
  if (hw_ok && ref_ok) {
    cross_compare_images(pre, *hw.heap, *ref.heap, fwd_hw, fwd_ref, v);
  }

  if (!v.ok) v.schedule_tail = sched.dump();
  return v;
}

FuzzCase case_from_seed(std::uint64_t master_seed) {
  std::uint64_t s = master_seed;
  FuzzCase fc;
  fc.graph_seed = splitmix64(s);
  fc.schedule = static_cast<SchedulePolicyKind>(splitmix64(s) % 4);
  fc.schedule_seed = splitmix64(s);
  static constexpr std::uint32_t kCores[] = {1, 2, 3, 4, 6, 8, 12, 16};
  fc.num_cores = kCores[splitmix64(s) % 8];
  // Tiny capacities force the FIFO-overflow path (scan-locked header
  // loads); 32k is the prototype's configuration.
  static constexpr std::uint32_t kFifo[] = {32 * 1024, 32 * 1024, 64, 4, 0};
  fc.header_fifo_capacity = kFifo[splitmix64(s) % 5];
  static constexpr Cycle kJitter[] = {0, 0, 1, 3, 7};
  fc.latency_jitter = kJitter[splitmix64(s) % 5];
  const std::uint64_t features = splitmix64(s);
  fc.subobject_copy = features % 4 == 0;
  fc.markbit_early_read = features % 8 >= 6;
  return fc;
}

FuzzCase minimize_case(const FuzzCase& failing, std::uint32_t budget) {
  FuzzCase best = failing;
  const auto fails = [&budget](const FuzzCase& c) {
    if (budget == 0) return false;
    --budget;
    return !run_fuzz_case(c).ok;
  };

  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    std::vector<FuzzCase> candidates;
    const auto propose = [&](auto&& mutate) {
      FuzzCase c = best;
      if (mutate(c)) candidates.push_back(c);
    };
    // Shrink the graph first — a small graph makes every later probe cheap.
    propose([](FuzzCase& c) {
      if (c.graph.max_nodes <= 4) return false;
      c.graph.max_nodes /= 2;
      c.graph.min_nodes = std::min(c.graph.min_nodes, c.graph.max_nodes);
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.graph.max_delta <= 1 && c.graph.huge_fraction == 0.0) return false;
      c.graph.max_delta = std::max<Word>(1, c.graph.max_delta / 2);
      c.graph.huge_fraction = 0.0;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.graph.hubs == 0 && c.graph.mutation_fraction == 0.0) return false;
      c.graph.hubs = 0;
      c.graph.mutation_fraction = 0.0;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.graph.garbage_fraction == 0.0) return false;
      c.graph.garbage_fraction = 0.0;
      return true;
    });
    // Then the collector features and hardware knobs.
    propose([](FuzzCase& c) {
      if (!c.subobject_copy && !c.markbit_early_read) return false;
      c.subobject_copy = false;
      c.markbit_early_read = false;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.latency_jitter == 0) return false;
      c.latency_jitter = 0;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.header_fifo_capacity >= 32 * 1024) return false;
      c.header_fifo_capacity = 32 * 1024;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.schedule == SchedulePolicyKind::kFixedPriority) return false;
      c.schedule = SchedulePolicyKind::kFixedPriority;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.num_cores <= 2) return false;
      c.num_cores /= 2;
      return true;
    });
    propose([](FuzzCase& c) {
      if (c.num_cores <= 1) return false;
      --c.num_cores;
      return true;
    });
    for (const auto& c : candidates) {
      if (fails(c)) {
        best = c;
        progress = true;
        break;
      }
      if (budget == 0) break;
    }
  }
  return best;
}

}  // namespace hwgc
