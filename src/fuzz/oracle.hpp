// Differential oracle for schedule-exploration fuzzing.
//
// A FuzzCase fixes one (graph × schedule × hardware-knob) configuration.
// run_fuzz_case materializes the same plan twice, collects one heap with
// the coprocessor under the case's schedule policy and the other with the
// sequential Cheney reference, then checks:
//   * both heaps against their pre-cycle HeapSnapshot (DESIGN.md inv. 1-4),
//   * forwarding-map bijectivity onto the dense tospace extent,
//   * byte-for-byte equivalence of the two tospace images modulo copy
//     order (shapes, data words, and pointer fields resolved back to the
//     pre-cycle object they denote),
//   * lock-order-auditor emptiness,
//   * per-object single-evacuation counters against the snapshot and the
//     sequential reference.
// Everything is deterministic: the same FuzzCase reproduces the same run
// bit-for-bit, which is what makes minimized reproducers possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/sequential_cheney.hpp"
#include "fault/recovery.hpp"
#include "fuzz/fuzz_graph.hpp"
#include "sim/config.hpp"
#include "sim/counters.hpp"

namespace hwgc {

struct FuzzCase {
  std::uint64_t graph_seed = 1;
  FuzzGraphConfig graph{};

  SchedulePolicyKind schedule = SchedulePolicyKind::kFixedPriority;
  std::uint64_t schedule_seed = 0;

  std::uint32_t num_cores = 8;
  std::uint32_t header_fifo_capacity = 32 * 1024;
  Cycle latency_jitter = 0;
  bool subobject_copy = false;
  bool markbit_early_read = false;

  /// Hardware fault injection (fault.enabled() routes the case through the
  /// detection-and-recovery machinery instead of the bare coprocessor).
  FaultConfig fault{};

  /// The simulator configuration this case runs under.
  SimConfig sim_config() const;

  /// Replayable one-line description in `fuzz_gc` flag syntax.
  std::string summary() const;
};

struct FuzzVerdict {
  bool ok = true;
  std::vector<std::string> errors;

  GcCycleStats coproc;
  SequentialGcStats sequential;
  std::uint64_t live_objects = 0;

  /// Filled for fault-injected cases: how the run was recovered. The
  /// oracle guarantees that a !ok verdict is raised whenever recovery
  /// reported failure, the accounting doesn't add up, or the recovered
  /// heap diverges from the sequential reference — an injected fault can
  /// be masked or explicitly recovered, never silently corrupting.
  bool fault_run = false;
  RecoveryReport recovery;

  /// Tail of the per-cycle step orders; filled only on failure.
  std::string schedule_tail;

  void fail(std::string msg) {
    ok = false;
    if (errors.size() < 64) errors.push_back(std::move(msg));
  }
  std::string summary() const;
};

/// Runs one case through the differential oracle. `telemetry`, when
/// non-null, records the coprocessor (or recovery) run of the case — handy
/// for exporting the timeline of a failing schedule.
FuzzVerdict run_fuzz_case(const FuzzCase& fc, TelemetryBus* telemetry = nullptr);

/// Expands a single master seed into a full case: graph seed, schedule
/// policy and seed, core count, FIFO capacity, latency jitter and the
/// optional collector features are all derived from `master_seed` via
/// splitmix64, so `fuzz_gc --seed N` is a complete reproducer.
FuzzCase case_from_seed(std::uint64_t master_seed);

/// Greedy reproducer minimization: repeatedly tries to shrink the graph,
/// drop collector features and reduce the core count while the oracle
/// still fails, spending at most `budget` oracle runs. Returns the
/// smallest still-failing case found (the input itself in the worst case).
FuzzCase minimize_case(const FuzzCase& failing, std::uint32_t budget = 48);

}  // namespace hwgc
