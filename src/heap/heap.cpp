#include "heap/heap.hpp"

#include <atomic>
#include <cassert>

namespace hwgc {

Heap::Heap(Word semispace_words)
    : layout_(semispace_words),
      mem_(layout_.total_words()),
      alloc_(layout_.current_base()) {}

Addr Heap::allocate(Word pi, Word delta) {
  assert(pi <= kMaxPi && delta <= kMaxDelta);
  const Word need = object_words(pi, delta);
  if (alloc_ + need > layout_.current_end()) return kNullPtr;
  const Addr obj = alloc_;
  alloc_ += need;
  mem_.store(attributes_addr(obj), make_attributes(pi, delta));
  mem_.store(link_addr(obj), kNullPtr);
  for (Word i = 0; i < pi; ++i) {
    mem_.store(pointer_field_addr(obj, i), kNullPtr);
  }
  for (Word j = 0; j < delta; ++j) {
    mem_.store(data_field_addr(obj, pi, j), 0);
  }
  ++allocated_;
  return obj;
}

Addr Heap::allocate_shared(Word pi, Word delta) {
  assert(pi <= kMaxPi && delta <= kMaxDelta);
  const Word need = object_words(pi, delta);
  std::atomic_ref<Addr> alloc(alloc_);
  Addr obj;
  Addr cur = alloc.load(std::memory_order_relaxed);
  do {
    if (cur + need > layout_.current_end()) return kNullPtr;
    obj = cur;
  } while (!alloc.compare_exchange_weak(cur, cur + need,
                                        std::memory_order_relaxed));
  mem_.store_atomic(attributes_addr(obj), make_attributes(pi, delta),
                    std::memory_order_relaxed);
  mem_.store_atomic(link_addr(obj), kNullPtr, std::memory_order_relaxed);
  for (Word i = 0; i < pi; ++i) {
    mem_.store_atomic(pointer_field_addr(obj, i), kNullPtr,
                      std::memory_order_relaxed);
  }
  for (Word j = 0; j < delta; ++j) {
    mem_.store_atomic(data_field_addr(obj, pi, j), 0,
                      std::memory_order_relaxed);
  }
  std::atomic_ref<std::uint64_t>(allocated_).fetch_add(
      1, std::memory_order_relaxed);
  return obj;
}

Addr Heap::pointer(Addr obj, Word i) const {
  assert(i < pi(obj));
  return mem_.load(pointer_field_addr(obj, i));
}

void Heap::set_pointer(Addr obj, Word i, Addr target) {
  assert(i < pi(obj));
  mem_.store(pointer_field_addr(obj, i), target);
}

Word Heap::data(Addr obj, Word j) const {
  assert(j < delta(obj));
  return mem_.load(data_field_addr(obj, pi(obj), j));
}

void Heap::set_data(Addr obj, Word j, Word value) {
  assert(j < delta(obj));
  mem_.store(data_field_addr(obj, pi(obj), j), value);
}

}  // namespace hwgc
