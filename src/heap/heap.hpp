// The managed heap: allocation, field access and root registration over a
// semispace word memory. This is the substrate shared by the coprocessor
// simulator and by all software baseline collectors.
#pragma once

#include <cstdint>
#include <vector>

#include "heap/object_model.hpp"
#include "heap/semispace.hpp"
#include "heap/word_memory.hpp"
#include "sim/types.hpp"

namespace hwgc {

class Heap {
 public:
  explicit Heap(Word semispace_words);

  // --- Mutator interface -------------------------------------------------

  /// Bump-allocates an object with `pi` pointer fields and `delta` data
  /// words in the current space. Pointer fields are null-initialized, data
  /// words zeroed. Returns kNullPtr when the space is exhausted (a real
  /// runtime would trigger a collection; see runtime/).
  Addr allocate(Word pi, Word delta);

  /// Thread-safe variant of allocate() for real concurrent mutator threads
  /// (src/concurrent_mutator/): the bump pointer is advanced with a CAS
  /// loop and the object is initialized through the atomic word interface,
  /// so concurrent allocators never hand out overlapping extents and the
  /// collector may observe the header under the language memory model.
  /// Returns kNullPtr when the space is exhausted — concurrent callers are
  /// expected to back off, not to trigger a collection themselves.
  Addr allocate_shared(Word pi, Word delta);

  Word attributes(Addr obj) const { return mem_.load(attributes_addr(obj)); }
  Word pi(Addr obj) const { return pi_of(attributes(obj)); }
  Word delta(Addr obj) const { return delta_of(attributes(obj)); }
  Word size_words(Addr obj) const { return object_words(attributes(obj)); }

  Addr pointer(Addr obj, Word i) const;
  void set_pointer(Addr obj, Word i, Addr target);
  Word data(Addr obj, Word j) const;
  void set_data(Addr obj, Word j, Word value);

  /// Mutable root set (models the main processor's registers and stacks,
  /// which Core 1 reads at the start of a cycle, Section V-E).
  std::vector<Addr>& roots() noexcept { return roots_; }
  const std::vector<Addr>& roots() const noexcept { return roots_; }

  // --- Collector interface -----------------------------------------------

  /// Flips the semispaces: the current space becomes fromspace and the
  /// other space the (empty) tospace. The collector then owns `free`.
  void flip() { layout_.flip(); }

  /// Publishes the collector's final `free` pointer as the mutator's new
  /// allocation frontier after a completed cycle.
  void set_alloc_ptr(Addr a) noexcept { alloc_ = a; }
  Addr alloc_ptr() const noexcept { return alloc_; }

  /// Words currently allocated in the active space.
  Word used_words() const noexcept {
    return alloc_ - layout_.current_base();
  }
  Word capacity_words() const noexcept { return layout_.semispace_words(); }

  SemispaceLayout& layout() noexcept { return layout_; }
  const SemispaceLayout& layout() const noexcept { return layout_; }
  WordMemory& memory() noexcept { return mem_; }
  const WordMemory& memory() const noexcept { return mem_; }

  /// Number of objects allocated since construction (across all cycles).
  std::uint64_t objects_allocated() const noexcept { return allocated_; }

 private:
  SemispaceLayout layout_;
  WordMemory mem_;
  Addr alloc_;
  std::vector<Addr> roots_;
  std::uint64_t allocated_ = 0;
};

}  // namespace hwgc
