// Object layout (paper Figure 3) and header encoding (paper Figure 4).
//
// Every object is
//
//     [ header word 0: attributes ][ header word 1: link ]
//     [ pointer area: pi words    ][ data area: delta words ]
//
// Attributes pack the GC state bits and the two area lengths; the link word
// holds the forwarding pointer (in a fromspace original, once evacuated) or
// the backlink to the fromspace original (in a tospace frame, while gray).
//
// The object-state life cycle during a collection cycle is:
//   White : untouched fromspace object; attributes = {pi, delta}, no flags.
//   Gray1 : evacuated. Fromspace original: kForwardedBit set, link =
//           forwarding pointer. Tospace frame: attributes = {pi, delta},
//           link = backlink; body not yet copied.
//   Gray2 : a core is copying the body word by word (transient).
//   Black : tospace copy complete; kBlackBit set, link cleared.
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/types.hpp"

namespace hwgc {

/// Header bit budget: 2 state bits + 12 bits of pointer-area length + 18
/// bits of data-area length. Pointer areas are bounded by real fan-out
/// (4095 fields); data areas must accommodate the multi-hundred-KiB buffer
/// arrays of compress-like applications (up to 1 MiB per object).
inline constexpr Word kMaxPi = (1u << 12) - 1;
inline constexpr Word kMaxDelta = (1u << 18) - 1;

/// Attribute bit: set in a *fromspace* header when the object has been
/// evacuated (this is the paper's per-object mark/evacuated bit).
inline constexpr Word kForwardedBit = 1u << 31;

/// Attribute bit: set in a *tospace* header when the copy is complete.
inline constexpr Word kBlackBit = 1u << 30;

/// Builds an attributes word from pointer-area and data-area lengths.
constexpr Word make_attributes(Word pi, Word delta, Word flags = 0) noexcept {
  return flags | (pi << 18) | delta;
}

constexpr Word pi_of(Word attributes) noexcept {
  return (attributes >> 18) & kMaxPi;
}

constexpr Word delta_of(Word attributes) noexcept {
  return attributes & kMaxDelta;
}

constexpr bool is_forwarded(Word attributes) noexcept {
  return (attributes & kForwardedBit) != 0;
}

constexpr bool is_black(Word attributes) noexcept {
  return (attributes & kBlackBit) != 0;
}

/// Total object footprint in words, header included.
constexpr Word object_words(Word attributes) noexcept {
  return kHeaderWords + pi_of(attributes) + delta_of(attributes);
}

constexpr Word object_words(Word pi, Word delta) noexcept {
  return kHeaderWords + pi + delta;
}

/// Field addressing helpers. `obj` is the address of header word 0.
constexpr Addr attributes_addr(Addr obj) noexcept { return obj; }
constexpr Addr link_addr(Addr obj) noexcept { return obj + 1; }
constexpr Addr pointer_field_addr(Addr obj, Word i) noexcept {
  return obj + kHeaderWords + i;
}
constexpr Addr data_field_addr(Addr obj, Word pi, Word j) noexcept {
  return obj + kHeaderWords + pi + j;
}

/// True when the body word at `offset` (words from the object header) is a
/// pointer slot under `attributes`. The snapshot collector's reconciliation
/// pass logs raw (object, offset) pairs during a cycle and needs to decide
/// afterwards whether the slot takes part in the double-pointer encoding
/// (pointer slots are paired with a snapshot half) or is plain data.
constexpr bool offset_is_pointer_field(Word attributes, Word offset) noexcept {
  return offset >= kHeaderWords && offset < kHeaderWords + pi_of(attributes);
}

}  // namespace hwgc
