// Semispace geometry for the copying collector (paper Section II).
//
// The heap is split into two equal semispaces. The mutator allocates into
// the current space; a collection cycle flips the roles and copies the live
// graph from the (old current =) fromspace into the tospace.
#pragma once

#include <cassert>

#include "sim/types.hpp"

namespace hwgc {

class SemispaceLayout {
 public:
  /// Lays the two semispaces out back to back starting at word 1 (word 0
  /// is the reserved null word).
  explicit SemispaceLayout(Word semispace_words)
      : words_(semispace_words), base0_(1), base1_(1 + semispace_words) {
    assert(semispace_words > 0);
  }

  Word semispace_words() const noexcept { return words_; }

  /// Total memory words needed, including the reserved null word.
  std::size_t total_words() const noexcept {
    return static_cast<std::size_t>(words_) * 2 + 1;
  }

  Addr fromspace_base() const noexcept { return current_is_0_ ? base0_ : base1_; }
  Addr tospace_base() const noexcept { return current_is_0_ ? base1_ : base0_; }
  Addr fromspace_end() const noexcept { return fromspace_base() + words_; }
  Addr tospace_end() const noexcept { return tospace_base() + words_; }

  /// The space the mutator currently allocates into (becomes fromspace at
  /// the next flip).
  Addr current_base() const noexcept { return fromspace_base(); }
  Addr current_end() const noexcept { return fromspace_end(); }

  bool in_fromspace(Addr a) const noexcept {
    return a >= fromspace_base() && a < fromspace_end();
  }
  bool in_tospace(Addr a) const noexcept {
    return a >= tospace_base() && a < tospace_end();
  }

  /// Swaps the roles of the two spaces (start of a collection cycle).
  void flip() noexcept { current_is_0_ = !current_is_0_; }

 private:
  Word words_;
  Addr base0_;
  Addr base1_;
  bool current_is_0_ = true;
};

}  // namespace hwgc
