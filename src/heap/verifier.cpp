#include "heap/verifier.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>

#include "heap/object_model.hpp"

namespace hwgc {

HeapSnapshot HeapSnapshot::capture(const Heap& heap) {
  HeapSnapshot snap;
  snap.roots = heap.roots();
  snap.space_base = heap.layout().current_base();
  snap.space_end = heap.layout().current_end();

  std::deque<Addr> queue;
  for (Addr r : snap.roots) {
    if (r != kNullPtr && !snap.index.contains(r)) {
      snap.index.emplace(r, snap.objects.size());
      snap.objects.push_back({});
      queue.push_back(r);
    }
  }
  // BFS; record full contents of every reachable object.
  std::size_t next = 0;
  while (!queue.empty()) {
    const Addr obj = queue.front();
    queue.pop_front();
    // Fill a local record: enqueueing children below grows snap.objects,
    // which would invalidate a reference into it.
    ObjectRecord rec;
    rec.addr = obj;
    rec.pi = heap.pi(obj);
    rec.delta = heap.delta(obj);
    rec.pointers.reserve(rec.pi);
    for (Word i = 0; i < rec.pi; ++i) {
      const Addr child = heap.pointer(obj, i);
      rec.pointers.push_back(child);
      if (child != kNullPtr && !snap.index.contains(child)) {
        snap.index.emplace(child, snap.objects.size());
        snap.objects.push_back({});
        queue.push_back(child);
      }
    }
    rec.data.reserve(rec.delta);
    for (Word j = 0; j < rec.delta; ++j) rec.data.push_back(heap.data(obj, j));
    snap.live_words += object_words(rec.pi, rec.delta);
    snap.objects[next++] = std::move(rec);
  }
  return snap;
}

std::string VerifyResult::summary() const {
  if (ok) return "OK";
  std::ostringstream os;
  os << errors.size() << (errors.size() == 32 ? "+" : "") << " error(s): ";
  for (const auto& e : errors) os << "\n  - " << e;
  return os.str();
}

namespace {

std::string hex(Addr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

}  // namespace

VerifyResult verify_collection(const HeapSnapshot& pre, const Heap& post,
                               VerifyOptions options) {
  VerifyResult res;
  const WordMemory& mem = post.memory();
  const Addr new_base = post.layout().current_base();
  const Addr new_end = post.layout().current_end();

  // The collector must have flipped: the new space must not be the space
  // the snapshot was taken in.
  if (new_base == pre.space_base) {
    res.fail("heap was not flipped after collection");
    return res;
  }

  // Invariant 1: every pre-live object is forwarded exactly once, into the
  // new space, and the forwarding map is injective.
  std::unordered_map<Addr, Addr> fwd;  // old addr -> new addr
  std::unordered_set<Addr> images;
  fwd.reserve(pre.objects.size());
  for (const auto& rec : pre.objects) {
    const Word attrs = mem.load(attributes_addr(rec.addr));
    if (!is_forwarded(attrs)) {
      res.fail("live object " + hex(rec.addr) + " was not evacuated");
      continue;
    }
    const Addr copy = mem.load(link_addr(rec.addr));
    if (copy < new_base || copy >= new_end) {
      res.fail("forwarding pointer of " + hex(rec.addr) +
               " points outside tospace: " + hex(copy));
      continue;
    }
    if (!images.insert(copy).second) {
      res.fail("two objects forwarded to the same copy " + hex(copy));
      continue;
    }
    fwd.emplace(rec.addr, copy);
  }
  if (!res.ok) return res;

  // Invariant 2: each copy is black, carries identical attributes, has
  // pointer fields mapped through fwd and bit-identical data words.
  for (const auto& rec : pre.objects) {
    const Addr copy = fwd.at(rec.addr);
    const Word attrs = mem.load(attributes_addr(copy));
    if (!is_black(attrs)) {
      res.fail("copy " + hex(copy) + " of " + hex(rec.addr) + " is not black");
    }
    if (pi_of(attrs) != rec.pi || delta_of(attrs) != rec.delta) {
      res.fail("copy " + hex(copy) + " has wrong shape: pi " +
               std::to_string(pi_of(attrs)) + "/" + std::to_string(rec.pi) +
               " delta " + std::to_string(delta_of(attrs)) + "/" +
               std::to_string(rec.delta));
      continue;
    }
    for (Word i = 0; i < rec.pi; ++i) {
      const Addr old_child = rec.pointers[i];
      const Addr new_child = mem.load(pointer_field_addr(copy, i));
      const Addr expect =
          old_child == kNullPtr ? kNullPtr : fwd.at(old_child);
      if (new_child != expect) {
        res.fail("pointer field " + std::to_string(i) + " of copy " +
                 hex(copy) + " is " + hex(new_child) + ", expected " +
                 hex(expect));
      }
      // Invariant 4: no pointer may refer into the evacuated space.
      if (new_child != kNullPtr &&
          (new_child >= pre.space_base && new_child < pre.space_end)) {
        res.fail("stale fromspace pointer in copy " + hex(copy));
      }
    }
    for (Word j = 0; j < rec.delta; ++j) {
      const Word v = mem.load(data_field_addr(copy, rec.pi, j));
      if (v != rec.data[j]) {
        res.fail("data word " + std::to_string(j) + " of copy " + hex(copy) +
                 " corrupted: " + std::to_string(v) + " != " +
                 std::to_string(rec.data[j]));
      }
    }
  }

  // Invariant 3: compaction. For Cheney-order collectors the copies tile
  // the new space contiguously from its base and the published allocation
  // pointer sits right behind the last copy. Chunk/LAB collectors are
  // checked for non-overlap and containment below the allocation pointer
  // instead (their holes are the fragmentation cost the paper cites).
  std::vector<Addr> sorted(images.begin(), images.end());
  std::sort(sorted.begin(), sorted.end());
  if (options.require_dense) {
    Addr expect = new_base;
    for (Addr copy : sorted) {
      if (copy != expect) {
        res.fail("compaction hole: expected object at " + hex(expect) +
                 ", found " + hex(copy));
        break;
      }
      expect += object_words(mem.load(attributes_addr(copy)));
    }
    if (expect != new_base + pre.live_words) {
      res.fail("tospace extent mismatch: " +
               std::to_string(expect - new_base) + " words copied, snapshot " +
               "had " + std::to_string(pre.live_words) + " live words");
    }
    if (post.alloc_ptr() != expect) {
      res.fail("allocation pointer not at end of copied data: " +
               hex(post.alloc_ptr()) + " != " + hex(expect));
    }
  } else {
    Addr prev_end = new_base;
    for (Addr copy : sorted) {
      if (copy < prev_end) {
        res.fail("overlapping copies near " + hex(copy));
        break;
      }
      prev_end = copy + object_words(mem.load(attributes_addr(copy)));
    }
    if (prev_end > post.alloc_ptr()) {
      res.fail("copy extends past the published allocation pointer");
    }
  }

  // Roots must have been redirected to the copies.
  if (post.roots().size() != pre.roots.size()) {
    res.fail("root count changed during collection");
  } else {
    for (std::size_t k = 0; k < pre.roots.size(); ++k) {
      const Addr expect_root =
          pre.roots[k] == kNullPtr ? kNullPtr : fwd.at(pre.roots[k]);
      if (post.roots()[k] != expect_root) {
        res.fail("root " + std::to_string(k) + " not forwarded: " +
                 hex(post.roots()[k]) + " != " + hex(expect_root));
      }
    }
  }
  return res;
}

}  // namespace hwgc
