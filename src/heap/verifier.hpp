// Heap verifier: proves that a collection cycle preserved the live graph.
//
// Usage: capture a HeapSnapshot of the live graph *before* the cycle, run
// any collector, then verify(). The checks implement DESIGN.md invariants
// 1-4: single evacuation, graph isomorphism through the forwarding map,
// dense compaction and absence of stale fromspace pointers.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "heap/heap.hpp"
#include "sim/types.hpp"

namespace hwgc {

/// Deep copy of the live object graph, in BFS order from the roots.
struct HeapSnapshot {
  struct ObjectRecord {
    Addr addr = kNullPtr;
    Word pi = 0;
    Word delta = 0;
    std::vector<Addr> pointers;
    std::vector<Word> data;
  };

  std::vector<ObjectRecord> objects;
  std::unordered_map<Addr, std::size_t> index;  // addr -> objects[] slot
  std::vector<Addr> roots;
  Addr space_base = 0;  ///< base of the space the snapshot was taken in
  Addr space_end = 0;
  Word live_words = 0;

  /// Walks the heap's current space from its roots.
  static HeapSnapshot capture(const Heap& heap);
};

struct VerifyResult {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string msg) {
    ok = false;
    if (errors.size() < 32) errors.push_back(std::move(msg));
  }
  std::string summary() const;
};

struct VerifyOptions {
  /// Cheney-order collectors (the coprocessor, sequential, naive parallel,
  /// work-packets) produce a densely packed tospace; chunk- and LAB-based
  /// collectors legitimately leave holes (the fragmentation the paper holds
  /// against them), so they are verified for containment and non-overlap
  /// instead.
  bool require_dense = true;
};

/// Checks a completed collection cycle against the pre-cycle snapshot.
/// Expects the collector to have flipped the heap, updated the roots and
/// published the final free pointer via set_alloc_ptr().
VerifyResult verify_collection(const HeapSnapshot& pre, const Heap& post,
                               VerifyOptions options = {});

}  // namespace hwgc
