// Flat word-addressed memory — the functional storage behind both the
// coprocessor simulator and the software baseline collectors.
//
// Timing is modeled elsewhere (src/mem); this class only provides the
// architectural contents. Address 0 is reserved so that 0 can serve as the
// null pointer, exactly as in the prototype's object-based memory model.
//
// Every access is bounds-checked: an access outside the simulated memory
// raises CollectionAbort(kWildAccess) rather than corrupting host memory.
// A wild access can only result from a corrupted pointer or header, so the
// check doubles as the memory module's address-decode fault detector.
//
// Optional ECC shadow (enable_ecc): a per-word checksum maintained on every
// store. The fault injector's corrupt() flips a data bit *without* updating
// the checksum — exactly what a DRAM bit flip does to a word protected by
// ECC — so a later check (GC cores verify both header words on every header
// load) detects the corruption.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/abort.hpp"
#include "sim/types.hpp"

namespace hwgc {

class WordMemory {
 public:
  explicit WordMemory(std::size_t words) : words_(words, 0) {
    assert(words >= 1 && "need at least the reserved null word");
  }

  std::size_t size() const noexcept { return words_.size(); }

  Word load(Addr a) const {
    check(a);
    return words_[a];
  }

  void store(Addr a, Word v) {
    check(a);
    words_[a] = v;
    if (!ecc_.empty()) ecc_[a] = ecc_of(v);
  }

  /// Atomic access for the host-threaded software baselines. The simulator
  /// never needs these (it is single-threaded and sequentializes cores
  /// within a cycle); the baselines run real std::threads over this memory
  /// and must synchronize through the language memory model. The ECC shadow
  /// is not maintained here — it belongs to the single-threaded simulator's
  /// fault runs, which never use the atomic interface.
  Word load_atomic(Addr a,
                   std::memory_order mo = std::memory_order_acquire) {
    check(a);
    return std::atomic_ref<Word>(words_[a]).load(mo);
  }

  void store_atomic(Addr a, Word v,
                    std::memory_order mo = std::memory_order_release) {
    check(a);
    std::atomic_ref<Word>(words_[a]).store(v, mo);
  }

  /// Compare-and-swap on one word; returns true on success and updates
  /// `expected` with the observed value on failure.
  bool cas(Addr a, Word& expected, Word desired) {
    check(a);
    return std::atomic_ref<Word>(words_[a]).compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel);
  }

  void fill(Word v) {
    for (auto& w : words_) w = v;
    if (!ecc_.empty()) {
      const std::uint8_t e = ecc_of(v);
      for (auto& c : ecc_) c = e;
    }
  }

  // --- ECC shadow (fault-injection support) ------------------------------

  /// (Re)computes the checksum of every word and starts maintaining it on
  /// each store. Idempotent; also heals any pending mismatch, which is what
  /// the recovery layer relies on after restoring a pre-cycle image.
  void enable_ecc() {
    ecc_.resize(words_.size());
    for (std::size_t a = 0; a < words_.size(); ++a) ecc_[a] = ecc_of(words_[a]);
  }

  bool ecc_enabled() const noexcept { return !ecc_.empty(); }

  /// True when the word's checksum matches its contents (vacuously true
  /// with ECC disabled).
  bool ecc_ok(Addr a) const {
    check(a);
    return ecc_.empty() || ecc_[a] == ecc_of(words_[a]);
  }

  /// Fault injection: flip one bit of the stored word WITHOUT updating the
  /// checksum — models an in-flight or in-array single-bit upset.
  void corrupt(Addr a, unsigned bit) {
    check(a);
    words_[a] ^= Word{1} << (bit % 32);
  }

  /// XOR-fold checksum: any single-bit flip changes the fold, so every
  /// injected single-bit corruption is detectable (parity-byte ECC model).
  static std::uint8_t ecc_of(Word v) noexcept {
    v ^= v >> 16;
    v ^= v >> 8;
    return static_cast<std::uint8_t>(v & 0xffu);
  }

 private:
  void check(Addr a) const {
    if (a == kNullPtr || a >= words_.size()) {
      throw CollectionAbort(
          AbortReason::kWildAccess,
          "wild memory access at word address " + std::to_string(a) +
              " (memory holds " + std::to_string(words_.size()) + " words)");
    }
  }

  std::vector<Word> words_;
  std::vector<std::uint8_t> ecc_;
};

}  // namespace hwgc
