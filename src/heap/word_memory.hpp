// Flat word-addressed memory — the functional storage behind both the
// coprocessor simulator and the software baseline collectors.
//
// Timing is modeled elsewhere (src/mem); this class only provides the
// architectural contents. Address 0 is reserved so that 0 can serve as the
// null pointer, exactly as in the prototype's object-based memory model.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace hwgc {

class WordMemory {
 public:
  explicit WordMemory(std::size_t words) : words_(words, 0) {
    assert(words >= 1 && "need at least the reserved null word");
  }

  std::size_t size() const noexcept { return words_.size(); }

  Word load(Addr a) const noexcept {
    assert(a != kNullPtr && a < words_.size());
    return words_[a];
  }

  void store(Addr a, Word v) noexcept {
    assert(a != kNullPtr && a < words_.size());
    words_[a] = v;
  }

  /// Atomic access for the host-threaded software baselines. The simulator
  /// never needs these (it is single-threaded and sequentializes cores
  /// within a cycle); the baselines run real std::threads over this memory
  /// and must synchronize through the language memory model.
  Word load_atomic(Addr a,
                   std::memory_order mo = std::memory_order_acquire) noexcept {
    assert(a != kNullPtr && a < words_.size());
    return std::atomic_ref<Word>(words_[a]).load(mo);
  }

  void store_atomic(Addr a, Word v,
                    std::memory_order mo = std::memory_order_release) noexcept {
    assert(a != kNullPtr && a < words_.size());
    std::atomic_ref<Word>(words_[a]).store(v, mo);
  }

  /// Compare-and-swap on one word; returns true on success and updates
  /// `expected` with the observed value on failure.
  bool cas(Addr a, Word& expected, Word desired) noexcept {
    assert(a != kNullPtr && a < words_.size());
    return std::atomic_ref<Word>(words_[a]).compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel);
  }

  void fill(Word v) noexcept {
    for (auto& w : words_) w = v;
  }

 private:
  std::vector<Word> words_;
};

}  // namespace hwgc
