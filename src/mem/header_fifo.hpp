// On-chip gray-header FIFO (paper Section V-D, last paragraph).
//
// Scan can only advance once the size of the object at `scan` is known,
// i.e. once its tospace header has been read — so header loads inside the
// scan critical section are a serial bottleneck. Because gray tospace
// headers are read in *exactly* the order they are written, the hardware
// buffers them in a FIFO: as long as the number of gray objects does not
// exceed its capacity, scanning needs no memory access for the header.
//
// On overflow, an evacuation simply skips the push (the header still goes
// to memory through the normal store path); the scanning core then takes a
// FIFO miss for that object and must load the header from memory while
// holding the scan lock — the effect the paper observes for `cup`.
//
// Attribution note: a header *store* stalled behind this FIFO is charged
// to the `fifo-backpressure` StallClass by the cycle profiler; the FIFO
// *miss* path surfaces as `mem-port-contention` on the scanning core
// (the header load it forces), matching how Table II separates the two.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/types.hpp"
#include "telemetry/telemetry_bus.hpp"

namespace hwgc {

class HeaderFifo {
 public:
  struct Entry {
    Addr tospace_addr = kNullPtr;  ///< address of the gray frame's header
    Word attributes = 0;           ///< {pi, delta} of the object
    Addr backlink = kNullPtr;      ///< fromspace original
  };

  explicit HeaderFifo(std::uint32_t capacity) : capacity_(capacity) {}

  /// Publishes FIFO occupancy (counter) and overflow events to the bus.
  void attach_telemetry(TelemetryBus* bus) {
    tel_ = bus;
    if (bus != nullptr) depth_series_ = bus->counter_series("fifo_depth");
  }

  std::uint32_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Attempts to record an evacuated header. Returns false (and counts an
  /// overflow) when the FIFO is full or disabled.
  bool push(Entry e) {
    if (entries_.size() >= capacity_) {
      ++overflows_;
      if (tel_ != nullptr) {
        // The first overflow is the interesting state change; later ones
        // only move the counter (cup overflows tens of thousands of times).
        if (overflows_ == 1) {
          tel_->instant(tel_->track("header-fifo"), TelemetryCategory::kFifo,
                        "header FIFO overflow (capacity " +
                            std::to_string(capacity_) + ")");
        }
        tel_->counter_sample(tel_->counter_series("fifo_overflows"),
                             overflows_);
      }
      return false;
    }
    entries_.push_back(e);
    if (tel_ != nullptr) tel_->counter_sample(depth_series_, entries_.size());
    return true;
  }

  /// Attempts to serve the header of the gray object at `tospace_addr`.
  /// Hit: pops and returns the entry. Miss (the entry was lost to an
  /// overflow): returns false and the caller falls back to a memory load.
  ///
  /// Because pushes and pops follow the same global order (allocation order
  /// of tospace frames), a miss can only mean the entry was never pushed —
  /// the front entry is then for a *later* frame and must stay queued.
  bool pop(Addr tospace_addr, Entry& out) {
    if (entries_.empty() || entries_.front().tospace_addr != tospace_addr) {
      ++misses_;
      return false;
    }
    out = entries_.front();
    entries_.pop_front();
    ++hits_;
    if (tel_ != nullptr) tel_->counter_sample(depth_series_, entries_.size());
    return true;
  }

  void clear() { entries_.clear(); }

  std::uint64_t overflows() const noexcept { return overflows_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  std::uint32_t capacity_;
  TelemetryBus* tel_ = nullptr;
  std::uint32_t depth_series_ = 0;
  std::deque<Entry> entries_;
  std::uint64_t overflows_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hwgc
