#include "mem/memory_system.hpp"

#include <cassert>

#include "fault/fault_injector.hpp"
#include "telemetry/telemetry_bus.hpp"

namespace hwgc {

MemorySystem::MemorySystem(const MemoryConfig& cfg, std::uint32_t num_cores,
                           FaultInjector* fault)
    : cfg_(cfg),
      fault_(fault),
      buffers_(static_cast<std::size_t>(num_cores) * kPortCount),
      jitter_rng_(cfg.jitter_seed) {
  if (cfg_.max_outstanding == 0) cfg_.max_outstanding = 4 * num_cores;
  cache_tags_.assign(cfg_.header_cache_entries, kNullPtr);
}

void MemorySystem::attach_telemetry(TelemetryBus* bus) {
  tel_ = bus;
  if (bus != nullptr) tel_inflight_series_ = bus->counter_series("mem_inflight");
}

bool MemorySystem::header_cache_lookup_and_fill(Addr addr) {
  if (cache_tags_.empty()) return false;
  Addr& tag = cache_tags_[addr % cache_tags_.size()];
  if (tag == addr) {
    ++cache_hits_;
    return true;
  }
  ++cache_misses_;
  tag = addr;  // allocate on miss (loads and stores alike)
  return false;
}

void MemorySystem::issue_store(CoreId core, Port port, Addr addr) {
  PortBuffer& b = buf(core, port);
  assert(b.stores_waiting < kStoreDepth &&
         "core must stall on a full store buffer");
  ++b.stores_waiting;
  ++uncommitted_stores_;
  if (port == Port::kHeader) ++pending_header_stores_[addr];
  ++requests_;
  queue_.push_back(Request{core, port, MemOp::kStore, addr});
}

void MemorySystem::issue_load(CoreId core, Port port, Addr addr) {
  PortBuffer& b = buf(core, port);
  assert(!b.load_inflight && "core must consume the previous load first");
  b.load_inflight = true;
  ++requests_;
  queue_.push_back(Request{core, port, MemOp::kLoad, addr});
}

void MemorySystem::tick(Cycle now) {
  // Idle early-out: with nothing queued or in flight the retire and accept
  // passes are no-ops, so skip them (idle components cost nothing). Only
  // the sample-on-change telemetry contract must still be honored: the
  // first idle tick after activity (or ever) publishes the 0.
  if (queue_.empty() && inflight_header_.empty() &&
      inflight_header_fast_.empty() && inflight_body_.empty()) {
    if (tel_ != nullptr && tel_prev_inflight_ != 0) {
      tel_prev_inflight_ = 0;
      tel_->counter_sample(tel_inflight_series_, 0);
    }
    return;
  }
  // 1. Retire transactions whose latency has elapsed. Within each port
  //    class acceptance order is completion order (constant per-class
  //    latency), so only the fronts can retire — unless latency jitter is
  //    on, in which case completions interleave and the deque is scanned.
  // Injected delays stretch individual latencies, so fault runs need the
  // out-of-order retire scan just like jittered ones.
  const bool out_of_order = cfg_.latency_jitter != 0 || fault_ != nullptr;
  const auto retire = [&](std::deque<Inflight>& inflight) {
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (it->complete_at > now) {
        if (!out_of_order) break;
        ++it;
        continue;
      }
      const Request& r = it->req;
      if (it->ghost) {
        // The duplicated store arrives a second time, resurrecting the
        // value it was accepted with. No accounting: the original already
        // committed and freed its slot.
        fault_->on_ghost_store_retire(r.addr, it->replay_value);
        it = inflight.erase(it);
        continue;
      }
      if (r.op == MemOp::kLoad) {
        buf(r.core, r.port).load_inflight = false;  // data arrived
      } else {
        --uncommitted_stores_;  // committed to memory
        if (r.port == Port::kHeader) {
          auto ps = pending_header_stores_.find(r.addr);
          assert(ps != pending_header_stores_.end());
          if (--ps->second == 0) pending_header_stores_.erase(ps);
        }
      }
      it = inflight.erase(it);
    }
  };
  retire(inflight_header_);
  retire(inflight_header_fast_);
  retire(inflight_body_);

  // 2. Accept up to bandwidth_per_cycle queued requests, oldest first.
  //    Header loads held back by the comparator array let younger,
  //    independent requests pass (split transactions).
  std::uint32_t accepted = 0;
  for (auto it = queue_.begin();
       it != queue_.end() && accepted < cfg_.bandwidth_per_cycle;) {
    const Request r = *it;
    if (r.op == MemOp::kLoad && r.port == Port::kHeader &&
        header_store_uncommitted(r.addr)) {
      ++it;  // comparator array delays this header load
      continue;
    }
    if (r.op == MemOp::kStore) {
      --buf(r.core, r.port).stores_waiting;  // slot frees on acceptance
    }
    MemFaultAction fa;
    if (fault_ != nullptr) {
      fa = fault_->on_mem_accept(r.core, r.port, r.op, r.addr);
    }
    if (fa.kind == MemFaultAction::Kind::kDrop) {
      // The transaction vanishes after acceptance: a dropped load never
      // returns data (load_inflight stays set, the core stalls forever); a
      // dropped store never commits (uncommitted_stores_ and the comparator
      // array keep its entry, so the drain condition never holds). Either
      // way only the watchdog can end the cycle.
      it = queue_.erase(it);
      ++accepted;
      continue;
    }
    Cycle extra =
        out_of_order && cfg_.latency_jitter != 0
            ? jitter_rng_.below(cfg_.latency_jitter + 1)
            : 0;
    extra += fa.extra_delay;
    Cycle complete_at;
    std::deque<Inflight>* inflight;
    if (r.port == Port::kHeader) {
      if (header_cache_lookup_and_fill(r.addr)) {
        complete_at = now + cfg_.header_cache_hit_latency + extra;
        inflight = &inflight_header_fast_;
      } else {
        complete_at = now + cfg_.header_latency + extra;
        inflight = &inflight_header_;
      }
    } else {
      complete_at = now + cfg_.latency + extra;
      inflight = &inflight_body_;
    }
    inflight->push_back(Inflight{r, complete_at, false, 0});
    if (fa.kind == MemFaultAction::Kind::kDuplicate) {
      inflight->push_back(Inflight{r, complete_at + 1 + fa.ghost_lag, true,
                                   fa.replay_value});
    }
    it = queue_.erase(it);
    ++accepted;
  }

  if (tel_ != nullptr) {
    const std::uint64_t inflight_now = inflight_header_.size() +
                                       inflight_header_fast_.size() +
                                       inflight_body_.size();
    if (inflight_now != tel_prev_inflight_) {
      tel_prev_inflight_ = inflight_now;
      tel_->counter_sample(tel_inflight_series_, inflight_now);
    }
  }
}

}  // namespace hwgc
