// Split-transaction memory access scheduler (paper Section V-D).
//
// Timing model only — architectural memory contents live in WordMemory and
// are updated by the cores at issue time, which is semantically equivalent
// because the locking protocol guarantees a single writer and ordered
// access for every location (see DESIGN.md §5).
//
// Modeled behaviour:
//  * Each core owns one load and one store buffer per port (header/body):
//    four buffers per core, as in the prototype.
//  * Store buffers hold up to kStoreDepth entries awaiting *acceptance* by
//    the scheduler; a store needs no reply, so its slot frees as soon as
//    the scheduler picks it up. A core stalls only when it issues a store
//    into a full buffer.
//  * A load occupies its buffer until the data returns (full latency); the
//    core stalls when it needs the data earlier.
//  * The scheduler accepts up to `bandwidth_per_cycle` requests per clock,
//    oldest first; an accepted request completes `latency` cycles later.
//  * Comparator array: a *header load* is not accepted while any header
//    store to the same address is still uncommitted. Body accesses are
//    never ordered (each body word is touched exactly once per cycle).
//  * stores_drained(): end-of-cycle flush — the main processor may only be
//    restarted once every store has committed (Section V-E).
//  * Optional seeded latency jitter (MemoryConfig::latency_jitter) for
//    schedule-exploration fuzzing: adds a random number of cycles to each
//    accepted request, so completions can retire out of acceptance order
//    as they would under real DRAM bank conflicts or refresh.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mem/ports.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace hwgc {

class FaultInjector;
class TelemetryBus;

class MemorySystem {
 public:
  /// Entries per store buffer. Two slots let an evacuation issue its pair
  /// of header stores (fromspace forwarding + tospace frame) in
  /// consecutive cycles without stalling, which the prototype's 1-cycle
  /// free-lock critical section requires.
  static constexpr std::uint8_t kStoreDepth = 2;

  /// `fault`, when non-null, is consulted for every accepted transaction
  /// (src/fault/): it can drop the transaction, stretch its latency or
  /// schedule a ghost duplicate of a store.
  MemorySystem(const MemoryConfig& cfg, std::uint32_t num_cores,
               FaultInjector* fault = nullptr);

  /// Publishes the in-flight transaction count (sampled on change each
  /// tick) to the bus. Observability only; timing is unaffected.
  void attach_telemetry(TelemetryBus* bus);

  // --- Core-side buffer interface ---------------------------------------

  /// True when the store buffer is full; the core must stall before
  /// issuing another store on this port.
  bool store_busy(CoreId core, Port port) const noexcept {
    return buf(core, port).stores_waiting >= kStoreDepth;
  }

  /// Free slots in the store buffer (0..kStoreDepth).
  std::uint8_t store_slots_free(CoreId core, Port port) const noexcept {
    return static_cast<std::uint8_t>(kStoreDepth -
                                     buf(core, port).stores_waiting);
  }

  /// True while a load is outstanding and its data has not yet arrived.
  bool load_pending(CoreId core, Port port) const noexcept {
    return buf(core, port).load_inflight;
  }

  /// Issues a store. Precondition: !store_busy(core, port).
  void issue_store(CoreId core, Port port, Addr addr);

  /// Issues a load. Precondition: !load_pending(core, port).
  void issue_load(CoreId core, Port port, Addr addr);

  // --- Global timing -----------------------------------------------------

  /// Advances the memory system by one clock cycle: completes transactions
  /// whose latency elapsed, then accepts up to bandwidth_per_cycle queued
  /// requests.
  void tick(Cycle now);

  /// True when no store (any port, any core) is still uncommitted.
  bool stores_drained() const noexcept { return uncommitted_stores_ == 0; }

  /// True when nothing at all is in flight.
  bool idle() const noexcept {
    return queue_.empty() && inflight_header_.empty() &&
           inflight_header_fast_.empty() && inflight_body_.empty();
  }

  /// Sentinel returned by next_completion() when nothing is in flight.
  static constexpr Cycle kNever = ~Cycle{0};

  /// True when the next tick would accept nothing: the queue is empty or
  /// holds only header loads held back by the comparator array. Ticks are
  /// then pure waiting until the next completion — the memory-side
  /// precondition for fast-forwarding the clock.
  bool ff_quiescent() const noexcept {
    for (const Request& r : queue_) {
      if (r.op != MemOp::kLoad || r.port != Port::kHeader ||
          !header_store_uncommitted(r.addr)) {
        return false;
      }
    }
    return true;
  }

  /// Earliest complete_at over every in-flight transaction (ghost replays
  /// included — they mutate memory when they retire); kNever when nothing
  /// is in flight. The first cycle whose tick is not a pure no-op.
  Cycle next_completion() const noexcept {
    Cycle t = kNever;
    const auto scan = [&t](const std::deque<Inflight>& q) {
      for (const Inflight& f : q) {
        if (f.complete_at < t) t = f.complete_at;
      }
    };
    scan(inflight_header_);
    scan(inflight_header_fast_);
    scan(inflight_body_);
    return t;
  }

  std::uint64_t requests_issued() const noexcept { return requests_; }
  std::uint64_t header_cache_hits() const noexcept { return cache_hits_; }
  std::uint64_t header_cache_misses() const noexcept { return cache_misses_; }
  std::uint32_t num_cores() const noexcept {
    return static_cast<std::uint32_t>(buffers_.size() / kPortCount);
  }

 private:
  struct PortBuffer {
    bool load_inflight = false;
    std::uint8_t stores_waiting = 0;  // issued, not yet accepted
  };

  struct Request {
    CoreId core = 0;
    Port port = Port::kHeader;
    MemOp op = MemOp::kLoad;
    Addr addr = 0;
  };

  struct Inflight {
    Request req;
    Cycle complete_at = 0;
    /// Injected duplicate of a store: replays `replay_value` into the
    /// functional memory when it retires; carries no buffer/drain
    /// accounting (the architectural original already committed).
    bool ghost = false;
    Word replay_value = 0;
  };

  PortBuffer& buf(CoreId core, Port port) noexcept {
    return buffers_[core * kPortCount + static_cast<std::size_t>(port)];
  }
  const PortBuffer& buf(CoreId core, Port port) const noexcept {
    return buffers_[core * kPortCount + static_cast<std::size_t>(port)];
  }

  /// Comparator array: is a header store to `addr` queued or in flight?
  bool header_store_uncommitted(Addr addr) const noexcept {
    return pending_header_stores_.contains(addr);
  }

  MemoryConfig cfg_;
  FaultInjector* fault_ = nullptr;
  TelemetryBus* tel_ = nullptr;
  std::uint32_t tel_inflight_series_ = 0;
  std::uint64_t tel_prev_inflight_ = ~std::uint64_t{0};
  std::vector<PortBuffer> buffers_;  // num_cores x kPortCount
  std::deque<Request> queue_;        // issued, not yet accepted
  // Accepted requests of one latency class complete in acceptance order
  // (constant per-class latency), so one deque per class suffices: the
  // front always retires first. Header-cache hits form their own, faster
  // class. With latency_jitter enabled, completions within a class can
  // retire out of acceptance order and the whole deque is scanned instead
  // (fuzzing only — never the measured configuration).
  Rng jitter_rng_{0};
  std::deque<Inflight> inflight_header_;
  std::deque<Inflight> inflight_header_fast_;
  std::deque<Inflight> inflight_body_;

  /// Header cache (Section VII future work 2): direct-mapped tag array.
  /// Contents are architectural memory (functional state is elsewhere), so
  /// only tags are modeled. Loads and stores both allocate.
  bool header_cache_lookup_and_fill(Addr addr);
  std::vector<Addr> cache_tags_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  // Comparator array: uncommitted header-store count per address.
  std::unordered_map<Addr, std::uint32_t> pending_header_stores_;
  std::uint64_t uncommitted_stores_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace hwgc
