// Memory port taxonomy of the coprocessor (paper Section V-D).
//
// Each GC core owns four asynchronous buffers: header-load, header-store,
// body-load and body-store. Headers and bodies are disjoint address sets
// with completely different access patterns, so the hardware (and this
// model) handles them independently.
#pragma once

#include <cstdint>
#include <string_view>

namespace hwgc {

enum class Port : std::uint8_t { kHeader = 0, kBody = 1 };
inline constexpr std::size_t kPortCount = 2;

enum class MemOp : std::uint8_t { kLoad = 0, kStore = 1 };

constexpr std::string_view to_string(Port p) noexcept {
  return p == Port::kHeader ? "header" : "body";
}
constexpr std::string_view to_string(MemOp o) noexcept {
  return o == MemOp::kLoad ? "load" : "store";
}

}  // namespace hwgc
