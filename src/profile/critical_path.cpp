#include "profile/critical_path.hpp"

#include <cstdio>

namespace hwgc {

namespace {

std::string fmt_pct(double share) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", share * 100.0);
  return buf;
}

}  // namespace

std::string CriticalPathReport::summary() const {
  if (!valid) return "unprofiled (sequential fallback)";
  std::string s = "bound by " + std::string(to_string(binding)) + " (" +
                  fmt_pct(binding_share) + " of " +
                  std::to_string(total_cycles) + " cycles)";
  if (longest_run.length > 0) {
    s += ", longest run " + std::to_string(longest_run.length) + " cycles (" +
         std::string(to_string(longest_run.binding)) + ") @ " +
         std::to_string(longest_run.begin);
  }
  s += ", " + std::to_string(chain_length) + " path segment(s)";
  return s;
}

CriticalPathReport critical_path(const CycleProfile& profile) {
  CriticalPathReport r;
  r.valid = profile.valid;
  r.total_cycles = profile.total_cycles;
  if (!profile.valid) return r;
  r.binding = profile.binding();
  r.binding_share = profile.binding_share();
  r.chain_length = profile.segments.size();
  for (const auto& seg : profile.segments) {
    if (seg.length > r.longest_run.length) r.longest_run = seg;
  }
  return r;
}

bool validate_cycle_profile(const CycleProfile& profile, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!profile.valid) {
    if (profile.total_cycles != 0 || !profile.segments.empty()) {
      return fail("invalid profile carries cycle data");
    }
    return true;
  }
  if (profile.per_core.size() != profile.cores) {
    return fail("per_core size does not match core count");
  }
  for (std::size_t c = 0; c < profile.per_core.size(); ++c) {
    Cycle sum = 0;
    for (Cycle v : profile.per_core[c]) sum += v;
    if (sum != profile.total_cycles) {
      return fail("core " + std::to_string(c) + " class totals sum to " +
                  std::to_string(sum) + ", expected " +
                  std::to_string(profile.total_cycles));
    }
  }
  Cycle crit_sum = 0;
  for (Cycle v : profile.critical) crit_sum += v;
  if (crit_sum != profile.total_cycles) {
    return fail("critical totals sum to " + std::to_string(crit_sum) +
                ", expected " + std::to_string(profile.total_cycles));
  }
  Cycle at = 0;
  CycleProfile::ClassTotals from_segments{};
  for (std::size_t i = 0; i < profile.segments.size(); ++i) {
    const auto& seg = profile.segments[i];
    if (seg.begin != at) {
      return fail("segment " + std::to_string(i) + " begins at " +
                  std::to_string(seg.begin) + ", expected " +
                  std::to_string(at));
    }
    if (seg.length == 0) {
      return fail("segment " + std::to_string(i) + " has zero length");
    }
    if (i > 0 && profile.segments[i - 1].binding == seg.binding) {
      return fail("segments " + std::to_string(i - 1) + " and " +
                  std::to_string(i) + " are not maximal (same binding)");
    }
    from_segments[static_cast<std::size_t>(seg.binding)] += seg.length;
    at += seg.length;
  }
  if (at != profile.total_cycles) {
    return fail("segments tile " + std::to_string(at) + " cycles, expected " +
                std::to_string(profile.total_cycles));
  }
  if (from_segments != profile.critical) {
    return fail("segment lengths do not reproduce the critical totals");
  }
  return true;
}

void annotate_critical_path(SignalTrace& trace, const CycleProfile& profile) {
  if (!profile.valid) return;
  for (const auto& seg : profile.segments) {
    trace.note(seg.begin, "crit: " + std::string(to_string(seg.binding)) +
                              " x" + std::to_string(seg.length));
  }
}

}  // namespace hwgc
