// Critical-path walker + profile validator (DESIGN.md §15).
//
// The critical path of a collection is its binding stream: the chain of
// maximal runs of cycles bound by one resource, covering [0, total_cycles)
// with no gaps — each run is "dependent" on the previous one in the sense
// that the collection could not reach it earlier (virtual time is total).
// The walker names the binding resource of the whole collection (the class
// bound for the most cycles), the longest single run (the knee a scaling
// study is looking for), and the per-class share of the path — which is
// what fig5-style runs print per core count ("the knee at N cores is X%
// sb-scan-wait").
#pragma once

#include <string>
#include <vector>

#include "profile/cycle_profiler.hpp"
#include "sim/trace.hpp"

namespace hwgc {

struct CriticalPathReport {
  bool valid = false;             ///< false for unprofiled collections
  Cycle total_cycles = 0;
  StallClass binding = StallClass::kIdleDeconfigured;
  double binding_share = 0.0;     ///< critical[binding] / total_cycles
  /// Longest maximal single-class run on the path (the knee).
  CycleProfile::Segment longest_run;
  std::size_t chain_length = 0;   ///< number of runs on the path

  /// One line: "bound by sb-scan-wait (43.2% of 1234 cycles), longest run
  /// 220 cycles @ 17, 9 path segments".
  std::string summary() const;
};

/// Walks the profile's binding stream. O(#segments).
CriticalPathReport critical_path(const CycleProfile& profile);

/// Enforces the attribution identities on a finished profile:
///   * per core, the class totals sum to total_cycles exactly;
///   * the critical (binding) totals sum to total_cycles exactly;
///   * the RLE segments tile [0, total_cycles) contiguously and their
///     per-class lengths reproduce the critical totals;
///   * an invalid profile carries no cycles at all.
/// Returns false and sets `error` on the first violation.
bool validate_cycle_profile(const CycleProfile& profile, std::string* error);

/// Merges the critical path into a SignalTrace as notes ("crit: <class>
/// xN @ cycle") at each segment boundary, so VCD/CSV dumps and the Chrome
/// exporter (which folds SignalTrace notes in) show the binding resource
/// over time. Observation only.
void annotate_critical_path(SignalTrace& trace, const CycleProfile& profile);

}  // namespace hwgc
