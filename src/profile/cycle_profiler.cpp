#include "profile/cycle_profiler.hpp"

namespace hwgc {

namespace {

/// Binding class of one cycle, from the per-class population of clocked
/// cores. Pure, so the ticked and fast-forward paths cannot diverge.
StallClass binding_of(const std::array<std::uint32_t, kStallClassCount>& pop,
                      std::uint32_t clocked) {
  if (pop[static_cast<std::size_t>(StallClass::kCompute)] > 0) {
    return StallClass::kCompute;
  }
  if (clocked == 0) return StallClass::kIdleDeconfigured;
  std::size_t best = 0;
  std::uint32_t best_pop = 0;
  for (std::size_t i = 0; i < kStallClassCount; ++i) {
    if (i == static_cast<std::size_t>(StallClass::kIdleDeconfigured)) continue;
    if (pop[i] > best_pop) {
      best_pop = pop[i];
      best = i;
    }
  }
  return static_cast<StallClass>(best);
}

}  // namespace

void CycleProfiler::begin_collection(std::uint32_t cores) {
  profile_ = CycleProfile{};
  profile_.cores = cores;
  profile_.per_core.assign(cores, CycleProfile::ClassTotals{});
  cur_.assign(cores, StallClass::kIdleDeconfigured);
  seen_.assign(cores, 0);
}

void CycleProfiler::commit(StallClass b, Cycle k) {
  profile_.critical[static_cast<std::size_t>(b)] += k;
  if (!profile_.segments.empty() && profile_.segments.back().binding == b) {
    profile_.segments.back().length += k;
  } else {
    profile_.segments.push_back({profile_.total_cycles, k, b});
  }
  profile_.total_cycles += k;
}

void CycleProfiler::end_cycle() {
  std::array<std::uint32_t, kStallClassCount> pop{};
  std::uint32_t clocked = 0;
  for (std::size_t c = 0; c < cur_.size(); ++c) {
    const StallClass cls =
        seen_[c] != 0 ? cur_[c] : StallClass::kIdleDeconfigured;
    clocked += seen_[c] != 0 ? 1u : 0u;
    seen_[c] = 0;
    ++profile_.per_core[c][static_cast<std::size_t>(cls)];
    ++pop[static_cast<std::size_t>(cls)];
  }
  commit(binding_of(pop, clocked), 1);
}

void CycleProfiler::drain_cycle() { absorb_drain(1); }

void CycleProfiler::absorb(const std::vector<StallClass>& cls, Cycle k) {
  std::array<std::uint32_t, kStallClassCount> pop{};
  std::uint32_t clocked = 0;
  for (std::size_t c = 0; c < cls.size(); ++c) {
    profile_.per_core[c][static_cast<std::size_t>(cls[c])] += k;
    ++pop[static_cast<std::size_t>(cls[c])];
    if (cls[c] != StallClass::kIdleDeconfigured) ++clocked;
  }
  commit(binding_of(pop, clocked), k);
}

void CycleProfiler::absorb_drain(Cycle k) {
  constexpr auto kDeconf =
      static_cast<std::size_t>(StallClass::kIdleDeconfigured);
  for (auto& pc : profile_.per_core) pc[kDeconf] += k;
  commit(StallClass::kMemPort, k);
}

}  // namespace hwgc
