// CycleProfiler — per-cycle stall attribution for one collection cycle
// (the tentpole of the observability work; DESIGN.md §15).
//
// The profiler rides the same seam as the TelemetryBus: GcCore's three-way
// work()/stall()/idle() accounting publishes each stepped core's cycle
// class, and the Coprocessor clock loop closes every cycle — folding
// unstepped cores (done, fail-stopped, drain window) into
// idle-deconfigured, so the attribution is *exhaustive*: for every core,
// the per-class totals sum to the collection's elapsed cycles exactly.
//
// On top of the per-core totals the profiler keeps a per-cycle *binding
// class* — which resource bound that cycle — as a run-length-encoded
// stream (profile.segments). The rule, a pure function of the cycle's
// class multiset:
//   * if any core computed, the cycle advanced the collection: kCompute;
//   * otherwise the most-populous class among clocked cores binds (ties
//     break toward the smaller enum value, i.e. the scan lock outranks
//     memory);
//   * a cycle with no clocked core at all is idle-deconfigured — except
//     the store-drain window, which is bound by the memory ports
//     (drain_cycle(): the only thing the coprocessor is waiting on is
//     its store buffers).
// The critical path of a collection is this binding stream (see
// profile/critical_path.hpp for the walker and the validator).
//
// Pay-for-use: a null profiler pointer costs one branch per core-cycle,
// the same contract as the bus — and unlike the bus the profiler does NOT
// suppress quiescent fast-forward: during a quiescent window every core's
// class is constant by construction, so the clock loop applies the window
// in bulk through absorb()/absorb_drain() and the resulting profile is
// bit-identical to a ticked run (tests/test_profile.cpp proves it).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "profile/stall_class.hpp"
#include "sim/counters.hpp"
#include "sim/types.hpp"

namespace hwgc {

/// Attribution of one collection cycle. `valid` is false for collections
/// that never ran on the coprocessor (the recovery ladder's sequential
/// software fallback) — such entries keep profile history aligned with
/// gc_history but carry no cycle data.
struct CycleProfile {
  using ClassTotals = std::array<Cycle, kStallClassCount>;

  /// One maximal run of cycles with the same binding class.
  struct Segment {
    Cycle begin = 0;
    Cycle length = 0;
    StallClass binding = StallClass::kIdleDeconfigured;
    bool operator==(const Segment&) const = default;
  };

  std::uint32_t cores = 0;
  Cycle total_cycles = 0;
  bool valid = false;
  std::vector<ClassTotals> per_core;  ///< [core][class] cycle totals
  ClassTotals critical{};             ///< cycles each class was binding
  std::vector<Segment> segments;      ///< RLE binding stream, tiles [0, total)

  bool operator==(const CycleProfile&) const = default;

  /// Sum of one class across all cores.
  Cycle cls_total(StallClass c) const noexcept {
    Cycle sum = 0;
    for (const auto& pc : per_core) sum += pc[static_cast<std::size_t>(c)];
    return sum;
  }

  /// Denominator of attribution shares: cores x elapsed cycles.
  Cycle core_cycles() const noexcept {
    return static_cast<Cycle>(per_core.size()) * total_cycles;
  }

  /// The collection's binding resource: the class that was binding for
  /// the most cycles (ties toward the smaller enum value).
  StallClass binding() const noexcept {
    std::size_t best = 0;
    for (std::size_t i = 1; i < kStallClassCount; ++i) {
      if (critical[i] > critical[best]) best = i;
    }
    return static_cast<StallClass>(best);
  }

  /// Fraction of cycles bound by binding() (0 for an empty profile).
  double binding_share() const noexcept {
    if (total_cycles == 0) return 0.0;
    return static_cast<double>(
               critical[static_cast<std::size_t>(binding())]) /
           static_cast<double>(total_cycles);
  }
};

class CycleProfiler {
 public:
  /// Resets all state for a fresh collection attempt on `cores` cores.
  /// The recovery ladder calls this once per attempt, so an aborted
  /// attempt's partial attribution is discarded and only the final,
  /// successful attempt's profile survives.
  void begin_collection(std::uint32_t cores);

  // --- per-cycle publications from GcCore (exactly one per stepped core) --
  void record_work(CoreId c) noexcept { set(c, StallClass::kCompute); }
  void record_stall(CoreId c, StallReason r) noexcept { set(c, class_of(r)); }
  void record_idle(CoreId c) noexcept { set(c, StallClass::kWorklistStarved); }

  // --- clock-loop hooks ---------------------------------------------------
  /// Closes one live (core-stepping) cycle: cores that did not report are
  /// charged idle-deconfigured, the binding class is computed and the RLE
  /// stream extended.
  void end_cycle();

  /// Closes one store-drain cycle (all cores halted): every core is
  /// idle-deconfigured and the memory ports bind.
  void drain_cycle();

  /// Bulk application of `k` quiescent cycles whose per-core classes are
  /// `cls` (one entry per core, constant across the window) — the
  /// fast-forward path. Exactly equivalent to k end_cycle() calls with
  /// the same per-core reports.
  void absorb(const std::vector<StallClass>& cls, Cycle k);

  /// Bulk application of `k` store-drain cycles (fast-forward while
  /// halted). Exactly equivalent to k drain_cycle() calls.
  void absorb_drain(Cycle k);

  /// Finalizes the profile of a completed collection.
  void end_collection() { profile_.valid = true; }

  /// Marks the collection as not coprocessor-profiled (sequential
  /// fallback): the profile stays invalid and empty of cycles.
  void mark_unprofiled() {
    begin_collection(0);
    profile_.valid = false;
  }

  const CycleProfile& profile() const noexcept { return profile_; }
  CycleProfile take_profile() { return std::move(profile_); }

 private:
  void set(CoreId c, StallClass cls) noexcept {
    cur_[c] = cls;
    seen_[c] = 1;
  }

  /// Adds `k` cycles bound by `b` to the critical totals + RLE stream.
  void commit(StallClass b, Cycle k);

  CycleProfile profile_;
  std::vector<StallClass> cur_;
  std::vector<std::uint8_t> seen_;
};

}  // namespace hwgc
