#include "profile/profile_metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "telemetry/metrics.hpp"

namespace hwgc {

void ProfileAttribution::add(const CycleProfile& p) {
  ++collections;
  if (!p.valid) {
    ++unprofiled;
    return;
  }
  if (p.cores > cores) cores = p.cores;
  total_cycles += p.total_cycles;
  core_cycles += p.core_cycles();
  for (std::size_t i = 0; i < kStallClassCount; ++i) {
    cls[i] += p.cls_total(static_cast<StallClass>(i));
    crit[i] += p.critical[i];
  }
}

StallClass ProfileAttribution::binding() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kStallClassCount; ++i) {
    if (crit[i] > crit[best]) best = i;
  }
  return static_cast<StallClass>(best);
}

double ProfileAttribution::share(StallClass c) const noexcept {
  if (core_cycles == 0) return 0.0;
  return static_cast<double>(cls[static_cast<std::size_t>(c)]) /
         static_cast<double>(core_cycles);
}

std::string profile_attribution_jsonl(const ProfileAttribution& a,
                                      const std::string& suite) {
  std::string out = "{\"schema\":\"hwgc-profile-v1\",\"kind\":\"attribution\"";
  out += ",\"suite\":\"" + suite + "\"";
  out += ",\"source\":\"" + a.source + "\"";
  out += ",\"shard\":" + std::to_string(a.shard);
  out += ",\"cores\":" + std::to_string(a.cores);
  out += ",\"collections\":" + std::to_string(a.collections);
  out += ",\"unprofiled\":" + std::to_string(a.unprofiled);
  out += ",\"total_cycles\":" + std::to_string(a.total_cycles);
  out += ",\"core_cycles\":" + std::to_string(a.core_cycles);
  for (std::size_t i = 0; i < kStallClassCount; ++i) {
    out += ",\"cls_" +
           std::string(field_suffix(static_cast<StallClass>(i))) +
           "\":" + std::to_string(a.cls[i]);
  }
  for (std::size_t i = 0; i < kStallClassCount; ++i) {
    out += ",\"crit_" +
           std::string(field_suffix(static_cast<StallClass>(i))) +
           "\":" + std::to_string(a.crit[i]);
  }
  out += ",\"binding\":\"" + std::string(to_string(a.binding())) + "\"";
  out += "}\n";
  return out;
}

bool known_span_name(const std::string& name) {
  return name == "request" || name == "admission" || name == "hop" ||
         name == "queue" || name == "gc-inherited" || name == "gc-own" ||
         name == "service" || name == "gc-charge" || name == "gc-concurrent";
}

std::string span_record_jsonl(const SpanRecord& s, const std::string& suite) {
  std::string out = "{\"schema\":\"hwgc-profile-v1\",\"kind\":\"span\"";
  out += ",\"suite\":\"" + suite + "\"";
  out += ",\"shard\":" + std::to_string(s.shard);
  out += ",\"trace\":" + std::to_string(s.trace);
  out += ",\"span\":" + std::to_string(s.span);
  out += ",\"parent\":" + std::to_string(s.parent);
  out += ",\"name\":\"" + s.name + "\"";
  out += ",\"begin_cycle\":" + std::to_string(s.begin);
  out += ",\"end_cycle\":" + std::to_string(s.end);
  out += ",\"gc_collection\":" + std::to_string(s.gc_collection);
  out += ",\"gc_cycles\":" + std::to_string(s.gc_cycles);
  out += "}\n";
  return out;
}

namespace {

using Kv = std::vector<std::pair<std::string, std::string>>;

const std::string* find(const Kv& kv, const std::string& key) {
  for (const auto& [k, v] : kv) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

/// Requires an unquoted (numeric) field and parses it as u64.
bool req_u64(const Kv& kv, const char* key, std::uint64_t& out,
             std::string* error) {
  const std::string* v = find(kv, key);
  if (v == nullptr) {
    return set_error(error, std::string("missing field \"") + key + "\"");
  }
  if (!v->empty() && v->front() == '"') {
    return set_error(error, std::string("field \"") + key +
                                "\" has the wrong type");
  }
  out = std::strtoull(v->c_str(), nullptr, 10);
  return true;
}

/// Same, but the field may be a (small) negative sentinel.
bool req_i64(const Kv& kv, const char* key, long long& out,
             std::string* error) {
  const std::string* v = find(kv, key);
  if (v == nullptr) {
    return set_error(error, std::string("missing field \"") + key + "\"");
  }
  if (!v->empty() && v->front() == '"') {
    return set_error(error, std::string("field \"") + key +
                                "\" has the wrong type");
  }
  out = std::strtoll(v->c_str(), nullptr, 10);
  return true;
}

/// Requires a quoted field and strips the quotes.
bool req_str(const Kv& kv, const char* key, std::string& out,
             std::string* error) {
  const std::string* v = find(kv, key);
  if (v == nullptr) {
    return set_error(error, std::string("missing field \"") + key + "\"");
  }
  if (v->size() < 2 || v->front() != '"' || v->back() != '"') {
    return set_error(error, std::string("field \"") + key +
                                "\" has the wrong type");
  }
  out = v->substr(1, v->size() - 2);
  return true;
}

bool known_class_name(const std::string& name) {
  for (std::size_t i = 0; i < kStallClassCount; ++i) {
    if (name == to_string(static_cast<StallClass>(i))) return true;
  }
  return false;
}

bool validate_attribution(const Kv& kv, std::string* error) {
  std::string source;
  long long shard = 0;
  std::uint64_t cores = 0, collections = 0, unprofiled = 0;
  std::uint64_t total_cycles = 0, core_cycles = 0;
  if (!req_str(kv, "source", source, error)) return false;
  if (!req_i64(kv, "shard", shard, error)) return false;
  if (!req_u64(kv, "cores", cores, error)) return false;
  if (!req_u64(kv, "collections", collections, error)) return false;
  if (!req_u64(kv, "unprofiled", unprofiled, error)) return false;
  if (!req_u64(kv, "total_cycles", total_cycles, error)) return false;
  if (!req_u64(kv, "core_cycles", core_cycles, error)) return false;
  if (shard < -1) return set_error(error, "shard must be >= -1");
  if (unprofiled > collections) {
    return set_error(error, "unprofiled exceeds collections");
  }
  std::uint64_t cls_sum = 0, crit_sum = 0;
  std::uint64_t crit[kStallClassCount] = {};
  for (std::size_t i = 0; i < kStallClassCount; ++i) {
    const std::string suffix(field_suffix(static_cast<StallClass>(i)));
    std::uint64_t v = 0;
    if (!req_u64(kv, ("cls_" + suffix).c_str(), v, error)) return false;
    cls_sum += v;
    if (!req_u64(kv, ("crit_" + suffix).c_str(), v, error)) return false;
    crit[i] = v;
    crit_sum += v;
  }
  if (cls_sum != core_cycles) {
    return set_error(error,
                     "attribution shares do not sum to the total: "
                     "sum(cls_*) != core_cycles");
  }
  if (crit_sum != total_cycles) {
    return set_error(error,
                     "critical-path shares do not sum to the total: "
                     "sum(crit_*) != total_cycles");
  }
  std::string binding;
  if (!req_str(kv, "binding", binding, error)) return false;
  if (!known_class_name(binding)) {
    return set_error(error, "unknown stall class \"" + binding + "\"");
  }
  std::uint64_t crit_binding = 0, crit_max = 0;
  for (std::size_t i = 0; i < kStallClassCount; ++i) {
    if (binding == to_string(static_cast<StallClass>(i))) {
      crit_binding = crit[i];
    }
    if (crit[i] > crit_max) crit_max = crit[i];
  }
  if (crit_binding != crit_max) {
    return set_error(error, "binding class is not the critical-path maximum");
  }
  return true;
}

bool validate_span(const Kv& kv, std::string* error) {
  long long shard = 0, gc_collection = 0;
  std::uint64_t trace = 0, span = 0, parent = 0;
  std::uint64_t begin = 0, end = 0, gc_cycles = 0;
  std::string name;
  if (!req_i64(kv, "shard", shard, error)) return false;
  if (!req_u64(kv, "trace", trace, error)) return false;
  if (!req_u64(kv, "span", span, error)) return false;
  if (!req_u64(kv, "parent", parent, error)) return false;
  if (!req_str(kv, "name", name, error)) return false;
  if (!req_u64(kv, "begin_cycle", begin, error)) return false;
  if (!req_u64(kv, "end_cycle", end, error)) return false;
  if (!req_i64(kv, "gc_collection", gc_collection, error)) return false;
  if (!req_u64(kv, "gc_cycles", gc_cycles, error)) return false;
  if (shard < 0) return set_error(error, "span shard must be >= 0");
  if (span == 0) return set_error(error, "span ids are 1-based");
  if (parent >= span) {
    return set_error(error, "span parent must precede the span");
  }
  if ((span == 1) != (parent == 0)) {
    return set_error(error, "exactly the root span (1) has parent 0");
  }
  if (!known_span_name(name)) {
    return set_error(error, "unknown span name \"" + name + "\"");
  }
  if (begin > end) {
    return set_error(error, "span cycle range out of order (begin > end)");
  }
  if (gc_collection < -1) {
    return set_error(error, "gc_collection must be >= -1");
  }
  if ((name == "gc-charge") != (gc_collection >= 0)) {
    return set_error(error,
                     "gc_collection links are for gc-charge spans exactly");
  }
  return true;
}

}  // namespace

bool validate_profile_jsonl_line(const std::string& line, std::string* error) {
  Kv kv;
  if (!parse_flat_json_object(line, kv, error)) return false;
  std::string schema, kind;
  if (!req_str(kv, "schema", schema, error)) return false;
  if (schema != "hwgc-profile-v1") {
    return set_error(error, "schema is not hwgc-profile-v1");
  }
  if (!req_str(kv, "kind", kind, error)) return false;
  std::string suite;
  if (!req_str(kv, "suite", suite, error)) return false;
  if (kind == "attribution") return validate_attribution(kv, error);
  if (kind == "span") return validate_span(kv, error);
  return set_error(error, "unknown record kind \"" + kind + "\"");
}

bool ProfileSpanChecker::check(const std::string& line, std::string* error) {
  if (line.find("\"schema\":\"hwgc-profile-v1\"") == std::string::npos ||
      line.find("\"kind\":\"span\"") == std::string::npos) {
    return true;
  }
  Kv kv;
  std::string err;
  if (!parse_flat_json_object(line, kv, &err)) return true;  // line check
  std::uint64_t trace = 0, span = 0;
  if (!req_u64(kv, "trace", trace, &err)) return true;
  if (!req_u64(kv, "span", span, &err)) return true;
  const std::string key =
      std::to_string(trace) + "/" + std::to_string(span);
  if (!seen_.insert(key).second) {
    return set_error(error, "duplicate span id " + std::to_string(span) +
                                " in trace " + std::to_string(trace));
  }
  return true;
}

bool validate_profile_jsonl_file(const std::string& path,
                                 std::vector<std::string>* errors) {
  std::ifstream f(path);
  if (!f) {
    if (errors != nullptr) errors->push_back("cannot open " + path);
    return false;
  }
  std::string line;
  std::size_t lineno = 0, records = 0;
  bool ok = true;
  ProfileSpanChecker spans;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++records;
    std::string err;
    if (!validate_profile_jsonl_line(line, &err) ||
        !spans.check(line, &err)) {
      ok = false;
      if (errors != nullptr) {
        errors->push_back(path + ":" + std::to_string(lineno) + ": " + err);
      }
    }
  }
  if (records == 0) {
    ok = false;
    if (errors != nullptr) errors->push_back(path + ": no records");
  }
  return ok;
}

namespace {

struct BaselineRecord {
  double share[kStallClassCount] = {};
  std::string binding;
};

/// Loads every attribution record of `path`, keyed (suite, source, shard).
bool load_attributions(const std::string& path,
                       std::map<std::string, BaselineRecord>& out,
                       std::vector<std::string>* errors) {
  std::ifstream f(path);
  if (!f) {
    if (errors != nullptr) errors->push_back("cannot open " + path);
    return false;
  }
  std::string line;
  while (std::getline(f, line)) {
    if (line.find("\"schema\":\"hwgc-profile-v1\"") == std::string::npos ||
        line.find("\"kind\":\"attribution\"") == std::string::npos) {
      continue;
    }
    std::string err;
    if (!validate_profile_jsonl_line(line, &err)) {
      if (errors != nullptr) errors->push_back(path + ": " + err);
      return false;
    }
    Kv kv;
    (void)parse_flat_json_object(line, kv, nullptr);
    std::string suite, source, binding;
    long long shard = 0;
    std::uint64_t core_cycles = 0;
    (void)req_str(kv, "suite", suite, nullptr);
    (void)req_str(kv, "source", source, nullptr);
    (void)req_i64(kv, "shard", shard, nullptr);
    (void)req_u64(kv, "core_cycles", core_cycles, nullptr);
    (void)req_str(kv, "binding", binding, nullptr);
    BaselineRecord rec;
    rec.binding = binding;
    for (std::size_t i = 0; i < kStallClassCount; ++i) {
      const std::string key =
          "cls_" + std::string(field_suffix(static_cast<StallClass>(i)));
      std::uint64_t v = 0;
      (void)req_u64(kv, key.c_str(), v, nullptr);
      rec.share[i] = core_cycles == 0
                         ? 0.0
                         : static_cast<double>(v) /
                               static_cast<double>(core_cycles);
    }
    out[suite + "/" + source + "/shard" + std::to_string(shard)] = rec;
  }
  return true;
}

}  // namespace

bool compare_profile_baselines(const std::string& base_path,
                               const std::string& cur_path, double tolerance,
                               std::vector<std::string>* errors) {
  std::map<std::string, BaselineRecord> base, cur;
  if (!load_attributions(base_path, base, errors)) return false;
  if (!load_attributions(cur_path, cur, errors)) return false;
  if (base.empty()) {
    if (errors != nullptr) {
      errors->push_back(base_path + ": no attribution records");
    }
    return false;
  }
  bool ok = true;
  const auto complain = [&](const std::string& msg) {
    ok = false;
    if (errors != nullptr) errors->push_back(msg);
  };
  for (const auto& [key, b] : base) {
    const auto it = cur.find(key);
    if (it == cur.end()) {
      complain(key + ": missing from " + cur_path);
      continue;
    }
    const BaselineRecord& c = it->second;
    if (b.binding != c.binding) {
      complain(key + ": binding resource changed " + b.binding + " -> " +
               c.binding);
    }
    for (std::size_t i = 0; i < kStallClassCount; ++i) {
      const double delta = c.share[i] - b.share[i];
      if (delta > tolerance || delta < -tolerance) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "%s: %s share moved %.4f -> %.4f (tolerance %.4f)",
                      key.c_str(),
                      std::string(to_string(static_cast<StallClass>(i)))
                          .c_str(),
                      b.share[i], c.share[i], tolerance);
        complain(buf);
      }
    }
  }
  for (const auto& [key, c] : cur) {
    (void)c;
    if (base.find(key) == base.end()) {
      complain(key + ": not present in baseline " + base_path);
    }
  }
  return ok;
}

}  // namespace hwgc
