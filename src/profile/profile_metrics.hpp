// hwgc-profile-v1 — the profiling subsystem's stable JSONL section
// (regression sentinel of the observability work).
//
// Two record kinds share the schema, dispatched on the "kind" field:
//
//   * kind=attribution — per (suite, source, shard) stall-attribution
//     aggregate over a run's collections: cls_<class> totals (per-core
//     cycles summed over every profiled collection) against the
//     core_cycles denominator, crit_<class> totals (binding-stream cycles)
//     against total_cycles, plus the run's binding resource by name.
//     Validator identities: sum(cls_*) == core_cycles, sum(crit_*) ==
//     total_cycles, unprofiled <= collections, binding is a known class
//     whose crit_* is maximal.
//
//   * kind=span — one span of a request exemplar's tree: (trace, span)
//     ids, parent link, name from the fixed span vocabulary, [begin_cycle,
//     end_cycle] in virtual fleet time, and — for gc-charge spans — the
//     linked shard collection index and the cycles it charged. Validator:
//     begin <= end, parent < span, known name; duplicate (trace, span)
//     pairs are a *file-level* violation (ProfileSpanChecker).
//
// Flat and append-only exactly like hwgc-bench-v1 / hwgc-service-v1:
// tooling may add fields, never rename or remove them. bench_validate
// dispatches per line on the "schema" field, so one heapd output file can
// carry bench + service + profile sections.
//
// The regression comparator (compare_profile_baselines) pairs attribution
// records across two files by (suite, source, shard) and fails when any
// class's share of core_cycles moved more than `tolerance`, or the
// binding resource changed — the CI profile-smoke job runs it against the
// committed BENCH_profile.json snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "profile/cycle_profiler.hpp"

namespace hwgc {

/// Stall-attribution aggregate over many collections of one source.
struct ProfileAttribution {
  std::string source;        ///< benchmark name / "heapd" / CLI tag
  long long shard = -1;      ///< -1 for single-runtime sources
  std::uint32_t cores = 0;   ///< max cores across profiled collections
  std::uint64_t collections = 0;
  std::uint64_t unprofiled = 0;  ///< sequential-fallback collections
  Cycle total_cycles = 0;        ///< sum of elapsed cycles
  Cycle core_cycles = 0;         ///< sum of cores_i * cycles_i (denominator)
  CycleProfile::ClassTotals cls{};
  CycleProfile::ClassTotals crit{};

  /// Folds one collection's profile in (invalid profiles count as
  /// unprofiled collections and contribute no cycles).
  void add(const CycleProfile& p);

  /// The aggregate's binding resource (argmax of crit, ties toward the
  /// smaller enum value — same rule as CycleProfile::binding()).
  StallClass binding() const noexcept;

  /// Share of `c` in the per-core attribution (cls[c] / core_cycles).
  double share(StallClass c) const noexcept;
};

/// One attribution record as a JSONL line (with trailing newline).
std::string profile_attribution_jsonl(const ProfileAttribution& a,
                                      const std::string& suite);

/// One span of a request exemplar's tree.
struct SpanRecord {
  long long shard = -1;
  std::uint64_t trace = 0;       ///< request id
  std::uint64_t span = 0;        ///< 1-based, unique within the trace
  std::uint64_t parent = 0;      ///< 0 = root
  std::string name;              ///< one of kSpanNames
  Cycle begin = 0;
  Cycle end = 0;
  long long gc_collection = -1;  ///< linked shard collection index, or -1
  Cycle gc_cycles = 0;           ///< cycles that collection charged here
};

/// The fixed span vocabulary (request tree nodes).
bool known_span_name(const std::string& name);

/// One span record as a JSONL line (with trailing newline).
std::string span_record_jsonl(const SpanRecord& s, const std::string& suite);

/// Validates one hwgc-profile-v1 line (either kind), stateless.
bool validate_profile_jsonl_line(const std::string& line, std::string* error);

/// Cross-line state for file-level span checks: duplicate (trace, span)
/// ids. Feed every line of a file in order; non-span lines are ignored.
class ProfileSpanChecker {
 public:
  bool check(const std::string& line, std::string* error);

 private:
  std::unordered_set<std::string> seen_;  ///< "trace/span" keys
};

/// Validates a whole file of hwgc-profile-v1 records (per-line schema +
/// file-level span checks).
bool validate_profile_jsonl_file(const std::string& path,
                                 std::vector<std::string>* errors);

/// Regression comparator: pairs attribution records of `base_path` and
/// `cur_path` by (suite, source, shard) and fails on a missing/extra
/// record, a binding-resource change, or any class share moving more than
/// `tolerance` (absolute). Span records are ignored. Returns true when
/// the two files agree within tolerance.
bool compare_profile_baselines(const std::string& base_path,
                               const std::string& cur_path, double tolerance,
                               std::vector<std::string>* errors);

}  // namespace hwgc
