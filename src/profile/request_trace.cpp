#include "profile/request_trace.hpp"

#include <algorithm>
#include <fstream>

namespace hwgc {

std::vector<SpanRecord> exemplar_spans(const RequestExemplar& e) {
  const long long shard = static_cast<long long>(e.shard);
  // Phase boundaries on the virtual-time axis (monotone by construction:
  // start >= arrival + penalty, and the inherited window is clamped into
  // the wait).
  const Cycle b0 = e.arrival;
  const Cycle b1 = e.arrival + e.penalty;
  const Cycle b3 = e.start;
  const Cycle b2 = std::max(b1, b3 - std::min(e.inherited_stall, b3));
  const Cycle b4 = e.start + e.own_gc;
  const Cycle b5 = e.completion;

  std::vector<SpanRecord> out;
  std::uint64_t next_id = 0;
  const auto emit = [&](std::uint64_t parent, const char* name, Cycle begin,
                        Cycle end, long long gc_collection,
                        Cycle gc_cycles) -> std::uint64_t {
    SpanRecord s;
    s.shard = shard;
    s.trace = e.request_id;
    s.span = ++next_id;
    s.parent = parent;
    s.name = name;
    s.begin = begin;
    s.end = end;
    s.gc_collection = gc_collection;
    s.gc_cycles = gc_cycles;
    out.push_back(std::move(s));
    return next_id;
  };

  const std::uint64_t root = emit(0, "request", b0, b5, -1, 0);
  const std::uint64_t admission = emit(root, "admission", b0, b1, -1, 0);
  if (e.hops > 0) {
    // Tile the backoff window with one span per failover hop (the last
    // hop absorbs the integer-division remainder).
    Cycle at = b0;
    for (std::uint32_t h = 0; h < e.hops; ++h) {
      const Cycle end = h + 1 == e.hops ? b1 : at + e.penalty / e.hops;
      emit(admission, "hop", at, end, -1, 0);
      at = end;
    }
  }
  emit(root, "queue", b1, b2, -1, 0);
  const std::uint64_t gi = emit(root, "gc-inherited", b2, b3, -1, 0);
  if (!e.inherited.empty()) {
    // Inherited collections drained immediately before `start`; lay them
    // back-to-back ending at b3 and clamp the display into [b2, b3] (the
    // request only inherited min(wait, backlog) as stall). gc_cycles
    // keeps each collection's uncut charge.
    std::vector<Cycle> begins(e.inherited.size());
    Cycle end = b3;
    for (std::size_t i = e.inherited.size(); i-- > 0;) {
      const Cycle begin =
          std::max(b2, end - std::min(e.inherited[i].cycles, end));
      begins[i] = begin;
      end = begin;
    }
    for (std::size_t i = 0; i < e.inherited.size(); ++i) {
      const Cycle seg_end = i + 1 < e.inherited.size() ? begins[i + 1] : b3;
      emit(gi, "gc-charge", begins[i], seg_end, e.inherited[i].collection,
           e.inherited[i].cycles);
    }
  }
  const std::uint64_t go = emit(root, "gc-own", b3, b4, -1, 0);
  Cycle at = b3;
  for (const GcCharge& c : e.own) {
    emit(go, "gc-charge", at, at + c.cycles, c.collection, c.cycles);
    at += c.cycles;
  }
  const std::uint64_t service = emit(root, "service", b4, b5, -1, 0);
  if (e.gc_concurrent > 0) {
    // Pauseless mode: the slice of the service window that was actually
    // concurrent-collection debt being drained. Laid at the front of the
    // window; gc_cycles carries the exact overhead charged.
    emit(service, "gc-concurrent", b4,
         std::min(b5, b4 + e.gc_concurrent), -1, e.gc_concurrent);
  }
  return out;
}

std::string exemplar_spans_jsonl(const std::vector<RequestExemplar>& exemplars,
                                 const std::string& suite) {
  std::string out;
  for (const RequestExemplar& e : exemplars) {
    for (const SpanRecord& s : exemplar_spans(e)) {
      out += span_record_jsonl(s, suite);
    }
  }
  return out;
}

bool write_exemplar_flame(const std::vector<RequestExemplar>& exemplars,
                          const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const RequestExemplar& e : exemplars) {
    for (const SpanRecord& s : exemplar_spans(e)) {
      if (!first) out += ",";
      first = false;
      out += "\n{\"name\":\"" + s.name + "\",\"ph\":\"X\",\"pid\":" +
             std::to_string(s.shard) + ",\"tid\":" + std::to_string(s.trace) +
             ",\"ts\":" + std::to_string(s.begin) +
             ",\"dur\":" + std::to_string(s.end - s.begin) +
             ",\"args\":{\"span\":" + std::to_string(s.span) +
             ",\"parent\":" + std::to_string(s.parent) +
             ",\"gc_collection\":" + std::to_string(s.gc_collection) +
             ",\"gc_cycles\":" + std::to_string(s.gc_cycles) + "}}";
    }
  }
  out += "\n]}\n";
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  f.flush();
  return f.good();
}

void insert_exemplar(std::vector<RequestExemplar>& top, std::size_t k,
                     RequestExemplar e) {
  if (k == 0) return;
  const auto pos =
      std::lower_bound(top.begin(), top.end(), e, RequestExemplar::slower);
  if (pos == top.end() && top.size() >= k) return;
  top.insert(pos, std::move(e));
  if (top.size() > k) top.pop_back();
}

}  // namespace hwgc
