// Fleet request tracing — per-request span trees with GC stall links
// (piece 2 of the observability tentpole).
//
// The heap service's latency identity (service + queue + stall ==
// latency, DESIGN.md §12) says *how long* a request took; the span tree
// says *where*. Every exemplar request decomposes into five consecutive
// phases on the virtual-time axis, children of one root span:
//
//   request                      [arrival, completion]
//   ├─ admission                 [arrival, arrival+penalty]   failover
//   │   └─ hop ...               one span per failover hop      backoff
//   ├─ queue                     non-GC wait behind the shard backlog
//   ├─ gc-inherited              backlog collection debt charged as stall
//   │   └─ gc-charge ...         one span per linked collection
//   ├─ gc-own                    collections triggered during execution
//   │   └─ gc-charge ...         one span per linked collection
//   └─ service                   [completion-service, completion]
//       └─ gc-concurrent         pauseless-mode concurrent-collection
//                                overhead drained inside the service
//                                window (emitted only when non-zero, so
//                                STW-scheduler span trees are unchanged)
//
// gc-charge spans carry the shard collection index they link to — the
// join key into the same run's CycleProfile history and hwgc-profile-v1
// attribution records — plus the exact cycles that collection charged
// (gc_cycles). Displayed inherited spans are clamped into the queue
// window (a request only inherits min(wait, backlog) as stall), but the
// gc_cycles field keeps the uncut charge.
//
// Exemplar capture is deterministic: each shard's lane keeps its K
// slowest completions (latency desc, request id asc — ids are assigned by
// the serial conductor), and the fleet-level merge re-sorts the union by
// the same key, so serial and shard-pool runs export byte-identical span
// trees at any host thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profile/profile_metrics.hpp"
#include "sim/types.hpp"

namespace hwgc {

/// One collection's contribution to a request's GC stall.
struct GcCharge {
  long long collection = -1;  ///< shard collection index (gc_history slot)
  Cycle cycles = 0;
  bool operator==(const GcCharge&) const = default;
};

/// One captured slow request, everything needed to rebuild its span tree.
struct RequestExemplar {
  std::uint64_t request_id = 0;  ///< conductor-assigned, fleet-unique
  std::size_t shard = 0;         ///< shard that completed the request
  Cycle arrival = 0;
  Cycle start = 0;       ///< execution start (backlog drained)
  Cycle completion = 0;
  Cycle penalty = 0;     ///< failover retry backoff (inside the wait)
  Cycle inherited_stall = 0;
  Cycle own_gc = 0;
  Cycle service = 0;
  /// Pauseless-mode concurrent-collection overhead drained inside the
  /// service window (a sub-component of `service`; 0 under STW schedulers).
  Cycle gc_concurrent = 0;
  std::uint32_t hops = 0;  ///< failover hops taken (0 = served at home)
  std::vector<GcCharge> own;        ///< collections during execution
  std::vector<GcCharge> inherited;  ///< backlog collections inherited

  Cycle latency() const noexcept { return completion - arrival; }

  /// The deterministic exemplar order: slowest first, ties by request id.
  static bool slower(const RequestExemplar& a, const RequestExemplar& b) {
    if (a.latency() != b.latency()) return a.latency() > b.latency();
    return a.request_id < b.request_id;
  }
};

/// Expands one exemplar into its span tree (root first, ids 1..N, every
/// parent before its children). All five phase spans are always present —
/// zero-length phases keep the tree shape stable for tooling.
std::vector<SpanRecord> exemplar_spans(const RequestExemplar& e);

/// All exemplars' spans as hwgc-profile-v1 JSONL (exemplars must already
/// be in RequestExemplar::slower order).
std::string exemplar_spans_jsonl(const std::vector<RequestExemplar>& exemplars,
                                 const std::string& suite);

/// Chrome-trace flame view of the exemplars ({"traceEvents":[...]}, "X"
/// complete events; pid = shard, tid = request id, 1 cycle = 1 us).
/// Deterministic byte-for-byte. Returns false on I/O failure.
bool write_exemplar_flame(const std::vector<RequestExemplar>& exemplars,
                          const std::string& path);

/// Maintains a bounded top-K set in RequestExemplar::slower order (the
/// per-shard capture buffer; also used for the fleet merge).
void insert_exemplar(std::vector<RequestExemplar>& top, std::size_t k,
                     RequestExemplar e);

}  // namespace hwgc
