// The exclusive stall taxonomy behind cycle attribution (DESIGN.md §15).
//
// Every simulated clock cycle of every GC core lands in exactly one of
// these classes. The mapping folds the hardware-level StallReason counters
// (sim/counters.hpp, the paper's Table II taxonomy) into the *resources*
// that bound the cycle:
//
//   compute            the core executed a micro-instruction (busy);
//   sb-scan-wait       SyncBlock scan-pointer lock arbitration;
//   sb-free-lock-wait  SyncBlock free-pointer lock arbitration;
//   cam-busy           header-lock CAM conflict;
//   mem-port-contention body/header *load* data not arrived, or a body
//                      store buffer still draining — the four per-core
//                      memory ports;
//   fifo-backpressure  the header-write path is full: header-store buffer
//                      busy, which is where a full header FIFO and the
//                      store-queue both push back (do_evacuate waits for
//                      two free header-store slots before entering the
//                      free-lock critical section);
//   sb-barrier         waiting at the synchronizing start barrier;
//   worklist-starved   spinning on an empty worklist (idle but clocked);
//   idle-deconfigured  the core was not clocked at all this cycle: it has
//                      halted (kDone), was fail-stopped by fault
//                      injection, or the whole coprocessor is in the
//                      store-drain window;
//   fault              an injected transient stall held the core's clock.
//
// Exclusivity is inherited from the core's step accounting: each stepped
// cycle calls exactly one of work()/stall()/idle(), and every unstepped
// cycle is charged idle-deconfigured by the clock loop — so per core,
// the class totals sum to the collection's elapsed cycles exactly
// (validator-enforced; see profile/critical_path.hpp).
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/counters.hpp"

namespace hwgc {

enum class StallClass : std::uint8_t {
  kCompute = 0,
  kSbScanWait,
  kSbFreeWait,
  kCamBusy,
  kMemPort,
  kFifoBackpressure,
  kSbBarrier,
  kWorklistStarved,
  kIdleDeconfigured,
  kFault,
  kCount
};

constexpr std::size_t kStallClassCount =
    static_cast<std::size_t>(StallClass::kCount);

/// Human-readable class names (the strings the JSONL "binding" field and
/// the fig5 knee report use).
constexpr std::string_view to_string(StallClass c) noexcept {
  switch (c) {
    case StallClass::kCompute: return "compute";
    case StallClass::kSbScanWait: return "sb-scan-wait";
    case StallClass::kSbFreeWait: return "sb-free-lock-wait";
    case StallClass::kCamBusy: return "cam-busy";
    case StallClass::kMemPort: return "mem-port-contention";
    case StallClass::kFifoBackpressure: return "fifo-backpressure";
    case StallClass::kSbBarrier: return "sb-barrier";
    case StallClass::kWorklistStarved: return "worklist-starved";
    case StallClass::kIdleDeconfigured: return "idle-deconfigured";
    case StallClass::kFault: return "fault";
    case StallClass::kCount: break;
  }
  return "?";
}

/// JSONL field suffix per class ("cls_<suffix>" / "crit_<suffix>" in the
/// hwgc-profile-v1 attribution record).
constexpr std::string_view field_suffix(StallClass c) noexcept {
  switch (c) {
    case StallClass::kCompute: return "compute";
    case StallClass::kSbScanWait: return "scan_wait";
    case StallClass::kSbFreeWait: return "free_wait";
    case StallClass::kCamBusy: return "cam_busy";
    case StallClass::kMemPort: return "mem_port";
    case StallClass::kFifoBackpressure: return "fifo_bp";
    case StallClass::kSbBarrier: return "barrier";
    case StallClass::kWorklistStarved: return "starved";
    case StallClass::kIdleDeconfigured: return "deconf";
    case StallClass::kFault: return "fault";
    case StallClass::kCount: break;
  }
  return "?";
}

/// Folds a hardware stall reason into its attribution class. Total: every
/// StallReason a core can report maps to exactly one class.
constexpr StallClass class_of(StallReason r) noexcept {
  switch (r) {
    case StallReason::kScanLock: return StallClass::kSbScanWait;
    case StallReason::kFreeLock: return StallClass::kSbFreeWait;
    case StallReason::kHeaderLock: return StallClass::kCamBusy;
    case StallReason::kBodyLoad:
    case StallReason::kBodyStore:
    case StallReason::kHeaderLoad: return StallClass::kMemPort;
    case StallReason::kHeaderStore: return StallClass::kFifoBackpressure;
    case StallReason::kBarrier: return StallClass::kSbBarrier;
    case StallReason::kFault: return StallClass::kFault;
    case StallReason::kNone:
    case StallReason::kCount: break;
  }
  // kNone never reaches the profiler (a stalled cycle always has a
  // reason); mapping it to mem-port keeps the function total anyway.
  return StallClass::kMemPort;
}

}  // namespace hwgc
