#include "runtime/runtime.hpp"

#include <stdexcept>

#include "core/coprocessor.hpp"

namespace hwgc {

Runtime::Runtime(Word semispace_words, SimConfig cfg)
    : heap_(semispace_words), cfg_(cfg) {
  cfg_.heap.semispace_words = semispace_words;
}

Addr Runtime::addr(Ref ref) const {
  if (ref.is_null()) return kNullPtr;
  return heap_.roots()[ref.slot_];
}

std::size_t Runtime::take_slot(Addr a) {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    const std::size_t live = heap_.roots().size() - free_slots_.size();
    if (live > root_high_water_) root_high_water_ = live;
    heap_.roots()[slot] = a;
    return slot;
  }
  heap_.roots().push_back(a);
  const std::size_t live = heap_.roots().size() - free_slots_.size();
  if (live > root_high_water_) root_high_water_ = live;
  return heap_.roots().size() - 1;
}

Runtime::Ref Runtime::alloc(Word pi, Word delta) {
  Addr obj = heap_.allocate(pi, delta);
  if (obj == kNullPtr) {
    // Exhaustion cycles run unrecorded (collect_now, not collect): replay
    // of the same allocation sequence re-triggers them deterministically.
    collect_now();
    obj = heap_.allocate(pi, delta);
    if (obj == kNullPtr) {
      throw std::runtime_error(
          "Runtime: heap exhausted even after a collection cycle");
    }
  }
  const Ref ref(take_slot(obj));
  if (sink_ != nullptr) sink_->on_alloc(*this, ref.slot_, pi, delta);
  return ref;
}

void Runtime::release(Ref ref) {
  if (ref.is_null()) return;
  if (sink_ != nullptr) sink_->on_release(*this, ref.slot_);
  heap_.roots()[ref.slot_] = kNullPtr;
  free_slots_.push_back(ref.slot_);
}

void Runtime::set_ptr(Ref obj, Word field, Ref target) {
  heap_.set_pointer(addr(obj), field, addr(target));
  if (sink_ != nullptr) {
    sink_->on_set_ptr(*this, obj.slot_, field, target.is_null(),
                      target.slot_);
  }
}

void Runtime::set_ptr_null(Ref obj, Word field) {
  heap_.set_pointer(addr(obj), field, kNullPtr);
  if (sink_ != nullptr) sink_->on_set_ptr(*this, obj.slot_, field, true, 0);
}

Runtime::Ref Runtime::load_ptr(Ref obj, Word field) {
  const Addr child = heap_.pointer(addr(obj), field);
  if (child == kNullPtr) return Ref{};
  const Ref out(take_slot(child));
  if (sink_ != nullptr) sink_->on_load_ptr(*this, obj.slot_, field, out.slot_);
  return out;
}

Runtime::Ref Runtime::dup(Ref ref) {
  if (ref.is_null()) return Ref{};
  const Ref out(take_slot(addr(ref)));
  if (sink_ != nullptr) sink_->on_dup(*this, ref.slot_, out.slot_);
  return out;
}

void Runtime::set_data(Ref obj, Word j, Word value) {
  heap_.set_data(addr(obj), j, value);
  if (sink_ != nullptr) sink_->on_set_data(*this, obj.slot_, j, value);
}

ReadProbe Runtime::read_probe(Ref obj) {
  const Addr a = addr(obj);
  ReadProbe probe;
  probe.words = heap_.delta(a);
  std::uint64_t h = 14695981039346656037ull;
  for (Word j = 0; j < probe.words; ++j) {
    Word w = heap_.data(a, j);
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ (w & 0xffu)) * 1099511628211ull;
      w >>= 8;
    }
  }
  probe.digest = h;
  if (sink_ != nullptr) sink_->on_read(*this, obj.slot_, probe);
  return probe;
}

Word Runtime::get_data(Ref obj, Word j) const {
  return heap_.data(addr(obj), j);
}

Word Runtime::pi(Ref obj) const { return heap_.pi(addr(obj)); }
Word Runtime::delta(Ref obj) const { return heap_.delta(addr(obj)); }

Runtime::Image Runtime::save_image() const {
  Image img;
  img.base = heap_.layout().current_base();
  img.alloc = heap_.alloc_ptr();
  img.words.reserve(static_cast<std::size_t>(img.alloc - img.base));
  for (Addr a = img.base; a < img.alloc; ++a) {
    img.words.push_back(heap_.memory().load(a));
  }
  img.roots = heap_.roots();
  img.free_slots = free_slots_;
  img.root_high_water = root_high_water_;
  return img;
}

void Runtime::restore_image(const Image& img) {
  if (heap_.layout().current_base() != img.base) heap_.flip();
  for (std::size_t i = 0; i < img.words.size(); ++i) {
    heap_.memory().store(img.base + static_cast<Addr>(i), img.words[i]);
  }
  heap_.set_alloc_ptr(img.alloc);
  heap_.roots() = img.roots;
  free_slots_ = img.free_slots;
  root_high_water_ = img.root_high_water;
  // An aborted fault run may have left stale checksums outside the restored
  // prefix; enable_ecc() recomputes every word's checksum (idempotent).
  if (heap_.memory().ecc_enabled()) heap_.memory().enable_ecc();
}

const GcCycleStats& Runtime::collect() {
  if (sink_ != nullptr) sink_->on_collect(*this);
  return collect_now();
}

const GcCycleStats& Runtime::collect_now() {
  if (observer_ != nullptr) observer_->before_collection(*this);
  CycleProfiler profiler;
  CycleProfiler* prof = profiling_ ? &profiler : nullptr;
  // Allocation into the current space is dense, so alloc_ptr is already
  // consistent; the coprocessor flips the heap and republishes it.
  if (plugin_ != nullptr) {
    if (cfg_.fault.enabled() || cfg_.recovery.enabled) {
      throw std::logic_error(
          "Runtime: a collector plugin cannot be combined with fault "
          "injection/recovery (the recovery ladder owns the cycle)");
    }
    history_.push_back(plugin_->collect(heap_));
    // Plugin cycles run outside the coprocessor clock: keep
    // profile_history_ index-aligned with an invalid profile.
    if (prof != nullptr) profile_history_.emplace_back();
    if (!history_.back().restart_stores_drained) {
      ++drain_violations_;
      if (prof != nullptr) profile_history_.pop_back();
      history_.pop_back();
      throw std::logic_error(
          "Runtime: mutator restart with undrained GC store buffers "
          "(Section V-E restart condition violated)");
    }
    if (observer_ != nullptr) {
      observer_->after_collection(*this, history_.back());
    }
    return history_.back();
  }
  if (cfg_.fault.enabled() || cfg_.recovery.enabled) {
    RecoveringCollector collector(cfg_, heap_);
    RecoveryReport report = collector.collect(nullptr, telemetry_, prof);
    if (!report.ok) {
      recovery_history_.push_back(std::move(report));
      throw std::runtime_error(
          "Runtime: collection unrecoverable — " +
          recovery_history_.back().summary());
    }
    history_.push_back(report.stats);
    recovery_history_.push_back(std::move(report));
  } else {
    Coprocessor coproc(cfg_, heap_);
    history_.push_back(
        coproc.collect(signal_trace_, nullptr, nullptr, telemetry_, prof));
  }
  // Section V-E: "the main processor is only restarted after all updates
  // are written back to the memory". A cycle whose store buffers had not
  // drained at restart must never publish its heap to the mutator.
  if (!history_.back().restart_stores_drained) {
    ++drain_violations_;
    history_.pop_back();
    throw std::logic_error(
        "Runtime: mutator restart with undrained GC store buffers "
        "(Section V-E restart condition violated)");
  }
  // Kept aligned with history_: pushed only once the cycle is accepted
  // (the drain-violation path above pops and never reaches here).
  if (prof != nullptr) profile_history_.push_back(profiler.take_profile());
  if (observer_ != nullptr) observer_->after_collection(*this, history_.back());
  return history_.back();
}

}  // namespace hwgc
