// Managed-runtime façade — the public API example applications program
// against.
//
// The paper's system runs Java on an object-based main processor whose
// memory the GC coprocessor collects. This class plays the role of that
// runtime for our examples and multi-cycle tests: it owns a Heap and a
// coprocessor configuration, hands out *stable references* (objects move
// during collection, so raw addresses must never be held across an
// allocation), and transparently runs a collection cycle on the simulated
// coprocessor whenever the allocator runs out of space — the moment the
// prototype's Core 1 would stop the main processor (Section V-E).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/recovery.hpp"
#include "heap/heap.hpp"
#include "profile/cycle_profiler.hpp"
#include "sim/config.hpp"
#include "sim/counters.hpp"

namespace hwgc {

class Runtime;
class SignalTrace;

/// Observation seam around every collection cycle the runtime runs —
/// explicit or allocation-triggered. The service layer (src/service/)
/// hooks it to snapshot the live graph before a cycle and run the
/// conformance post-structure oracle after it, and to account GC-induced
/// request stall; tests hook it to prove exhaustion-triggered cycles are
/// observed too. Callbacks run on the mutator's thread, before_collection
/// with the pre-cycle heap, after_collection once the flipped heap has
/// been published to the mutator (never for refused or unrecoverable
/// cycles).
class CollectionObserver {
 public:
  virtual ~CollectionObserver() = default;
  virtual void before_collection(Runtime&) {}
  virtual void after_collection(Runtime&, const GcCycleStats&) {}
};

/// Result of a read probe over one object's data area (read_probe below):
/// the number of data words read and an FNV-1a 64 digest over them. The
/// trace subsystem records probes as (words, digest) pairs so a replayed
/// read can verify the heap content without shipping the words themselves.
struct ReadProbe {
  Word words = 0;
  std::uint64_t digest = 0;
};

/// Mutator-operation seam (src/trace/): every mutator-visible operation the
/// Runtime performs notifies the attached sink, in execution order, with
/// the *resulting* Ref for operations that create one. Null sink (the
/// default) costs one pointer test per operation and changes nothing else.
///
/// Allocation-triggered collections deliberately do NOT reach on_collect:
/// they are a deterministic consequence of the allocation sequence and the
/// heap size, so a replay reproduces them without an explicit event — which
/// is what makes record -> replay -> re-record a byte-identical round trip.
class RuntimeTraceSink {
 public:
  virtual ~RuntimeTraceSink() = default;
  virtual void on_alloc(Runtime&, std::size_t /*slot*/, Word /*pi*/,
                        Word /*delta*/) {}
  virtual void on_release(Runtime&, std::size_t /*slot*/) {}
  virtual void on_set_ptr(Runtime&, std::size_t /*obj_slot*/, Word /*field*/,
                          bool /*target_null*/, std::size_t /*target_slot*/) {}
  virtual void on_load_ptr(Runtime&, std::size_t /*obj_slot*/, Word /*field*/,
                           std::size_t /*out_slot*/) {}
  virtual void on_dup(Runtime&, std::size_t /*src_slot*/,
                      std::size_t /*out_slot*/) {}
  virtual void on_set_data(Runtime&, std::size_t /*obj_slot*/, Word /*j*/,
                           Word /*value*/) {}
  virtual void on_read(Runtime&, std::size_t /*obj_slot*/, const ReadProbe&) {}
  virtual void on_collect(Runtime&) {}
};

/// Pluggable collection backend (src/trace/): when attached, explicit and
/// allocation-triggered cycles run through it instead of the built-in
/// coprocessor. The plugin must leave the heap flipped with roots
/// redirected and the allocation pointer published (the CollectorHarness
/// contract). The replayer uses this to drive one recorded trace under any
/// collector in the inventory.
class CollectorPlugin {
 public:
  virtual ~CollectorPlugin() = default;
  virtual GcCycleStats collect(Heap& heap) = 0;
};

class Runtime {
 public:
  /// A GC-safe object reference: a slot in the root table, kept up to date
  /// by every collection. Copyable; release() frees the slot.
  class Ref {
   public:
    Ref() = default;
    bool is_null() const noexcept { return slot_ == kInvalid; }

    /// Root-table slot index backing this reference (kInvalid for null).
    /// Exposed for state digests (service-layer shard checkpoints); not a
    /// heap address — use Runtime::address_of for that.
    std::size_t slot_index() const noexcept { return slot_; }

   private:
    friend class Runtime;
    explicit Ref(std::size_t slot) : slot_(slot) {}
    static constexpr std::size_t kInvalid = ~std::size_t{0};
    std::size_t slot_ = kInvalid;
  };

  explicit Runtime(Word semispace_words, SimConfig cfg = {});

  /// Allocates a rooted object with `pi` pointer fields and `delta` data
  /// words. Triggers a collection cycle when the semispace is exhausted;
  /// throws std::runtime_error if even a fresh semispace cannot satisfy
  /// the request.
  Ref alloc(Word pi, Word delta);

  /// Drops the root slot; the object stays alive only through other paths.
  void release(Ref ref);

  void set_ptr(Ref obj, Word field, Ref target);
  void set_ptr_null(Ref obj, Word field);

  /// Reads a pointer field and roots the referenced object in a new slot
  /// (returns a null Ref for a null field).
  Ref load_ptr(Ref obj, Word field);

  /// Roots the same object in a fresh slot (reference duplication); both
  /// refs must eventually be released independently.
  Ref dup(Ref ref);

  void set_data(Ref obj, Word j, Word value);
  Word get_data(Ref obj, Word j) const;
  Word pi(Ref obj) const;
  Word delta(Ref obj) const;

  /// Reads every data word of `obj` and returns (word count, FNV-1a 64
  /// digest). The one observable read operation of the runtime API: the
  /// trace recorder captures probes through the sink, and a replayed probe
  /// recomputes the digest against the replayed heap — a mismatch means the
  /// collector under replay corrupted (or failed to copy) the data area.
  ReadProbe read_probe(Ref obj);

  /// Checkpoint seam (service-layer shard checkpoint/restore). An Image is
  /// everything the mutator-visible runtime state consists of: the
  /// allocated prefix of the current semispace, the allocation frontier,
  /// the root table with its freelist, and the root high-water mark.
  /// History vectors (gc_history, recovery_history) are monotone logs, not
  /// state, and survive a restore untouched.
  struct Image {
    Addr base = 0;   ///< current-space base at capture (orientation)
    Addr alloc = 0;  ///< allocation frontier at capture
    std::vector<Word> words;             ///< [base, alloc) of current space
    std::vector<Addr> roots;             ///< full root table
    std::vector<std::size_t> free_slots; ///< root-slot freelist
    std::size_t root_high_water = 0;
  };

  /// Captures the current mutator-visible state. Cheap relative to a
  /// collection: one pass over the allocated prefix.
  Image save_image() const;

  /// Restores a previously captured image: flips the semispaces back to
  /// the captured orientation if needed, rewrites the allocated prefix,
  /// republishes the allocation frontier and root table, and re-enables
  /// the ECC shadow (healing any stale checksums) when it was active.
  void restore_image(const Image& img);

  /// Swaps the fault-injection plan for future collections — the fault
  /// storm's burst windows toggle per-shard injection on and off through
  /// this without rebuilding the runtime.
  void set_fault_config(const FaultConfig& f) noexcept { cfg_.fault = f; }

  /// Forces a collection cycle now.
  ///
  /// Section V-E restart condition: the main processor may only resume
  /// once every GC store has been committed. The runtime enforces it —
  /// a cycle that reports undrained store buffers (only possible through
  /// the skip_store_drain_for_test backdoor) is refused with
  /// std::logic_error and counted in drain_violations().
  ///
  /// With fault injection or recovery enabled in the config, the cycle
  /// runs through the RecoveringCollector instead of the bare
  /// coprocessor; per-cycle reports accumulate in recovery_history().
  const GcCycleStats& collect();

  /// Attaches an observability bus: every subsequent collection (explicit
  /// or allocation-triggered) publishes its full event stream there, each
  /// as its own epoch on one continuous timeline. Pass nullptr to detach.
  void set_telemetry(TelemetryBus* bus) noexcept { telemetry_ = bus; }
  TelemetryBus* telemetry() const noexcept { return telemetry_; }

  /// Turns per-cycle stall attribution on or off for future collections.
  /// Pay-for-use: off (the default) leaves every hot path untouched and
  /// keeps traces and telemetry bit-identical to a build without the
  /// profiler. On, every collection appends one CycleProfile to
  /// profile_history() — index-aligned with gc_history() as long as
  /// profiling stays enabled for the runtime's whole life (the service
  /// layer enables it at shard construction and never toggles it).
  void enable_profiling(bool on = true) noexcept { profiling_ = on; }
  bool profiling_enabled() const noexcept { return profiling_; }

  /// One CycleProfile per collection run while profiling was enabled
  /// (invalid — `valid == false` — for cycles that fell back to the
  /// sequential software collector, which runs outside the coprocessor
  /// clock).
  const std::vector<CycleProfile>& profile_history() const noexcept {
    return profile_history_;
  }

  /// Attaches an observer notified around every collection cycle (explicit
  /// or allocation-triggered). Pass nullptr to detach.
  void set_collection_observer(CollectionObserver* obs) noexcept {
    observer_ = obs;
  }
  CollectionObserver* collection_observer() const noexcept {
    return observer_;
  }

  /// Attaches a mutator-operation sink (trace recording). Pass nullptr to
  /// detach. See RuntimeTraceSink for the exact notification contract.
  void set_trace_sink(RuntimeTraceSink* sink) noexcept { sink_ = sink; }
  RuntimeTraceSink* trace_sink() const noexcept { return sink_; }

  /// Swaps the collection backend (trace replay under any collector). Pass
  /// nullptr to restore the built-in coprocessor. Incompatible with fault
  /// injection/recovery: collect() throws std::logic_error if both are
  /// configured, rather than silently picking one.
  void set_collector(CollectorPlugin* plugin) noexcept { plugin_ = plugin; }
  CollectorPlugin* collector() const noexcept { return plugin_; }

  /// Attaches a hardware signal trace sampled by every coprocessor-path
  /// collection (nullptr to detach). Used by the trace round-trip identity
  /// proof: record and replay of the same trace must produce bit-identical
  /// SignalTrace event streams.
  void set_signal_trace(SignalTrace* st) noexcept { signal_trace_ = st; }

  /// Current heap address of a rooted reference. Only stable until the
  /// next collection — exposed for tests and debugging tools (e.g. the
  /// shadow-mutator validation and the heap inspector example).
  Addr address_of(Ref ref) const { return addr(ref); }

  /// Statistics of every collection cycle run so far.
  const std::vector<GcCycleStats>& gc_history() const noexcept {
    return history_;
  }

  /// Recovery reports, one per collection, when cycles run through the
  /// fault-injection/recovery path (empty otherwise).
  const std::vector<RecoveryReport>& recovery_history() const noexcept {
    return recovery_history_;
  }

  /// Cycles that attempted to restart the mutator with undrained store
  /// buffers (each one also raised std::logic_error).
  std::uint64_t drain_violations() const noexcept { return drain_violations_; }
  std::uint64_t words_in_use() const noexcept { return heap_.used_words(); }
  std::uint64_t live_roots() const noexcept {
    return heap_.roots().size() - free_slots_.size();
  }

  /// Total root-table slots (live + freelisted). Released slots are reused
  /// before the table grows, so this never exceeds root_high_water() — the
  /// freelist-hygiene invariant the service layer's occupancy pacing
  /// depends on (and tests/test_runtime.cpp regression-tests).
  std::size_t root_count() const noexcept { return heap_.roots().size(); }

  /// Peak simultaneous live roots observed since construction.
  std::size_t root_high_water() const noexcept { return root_high_water_; }

  Heap& heap() noexcept { return heap_; }
  const Heap& heap() const noexcept { return heap_; }
  const SimConfig& config() const noexcept { return cfg_; }

 private:
  Addr addr(Ref ref) const;
  std::size_t take_slot(Addr a);

  /// Runs one cycle without notifying the trace sink — the shared body of
  /// collect() and the allocation-exhaustion path (which must stay
  /// unrecorded; see RuntimeTraceSink).
  const GcCycleStats& collect_now();

  Heap heap_;
  SimConfig cfg_;
  std::vector<std::size_t> free_slots_;
  std::vector<GcCycleStats> history_;
  std::vector<RecoveryReport> recovery_history_;
  std::vector<CycleProfile> profile_history_;
  bool profiling_ = false;
  std::uint64_t drain_violations_ = 0;
  std::size_t root_high_water_ = 0;
  TelemetryBus* telemetry_ = nullptr;
  CollectionObserver* observer_ = nullptr;
  RuntimeTraceSink* sink_ = nullptr;
  CollectorPlugin* plugin_ = nullptr;
  SignalTrace* signal_trace_ = nullptr;
};

}  // namespace hwgc
