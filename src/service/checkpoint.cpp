#include "service/checkpoint.hpp"

namespace hwgc {

namespace {

/// Streaming FNV-1a 64. Every field is folded in full width with a length
/// prefix per vector, so reorderings and truncations change the digest.
struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  }

  template <typename T>
  void mix_vec(const std::vector<T>& v) noexcept {
    mix(v.size());
    for (const T& x : v) mix(static_cast<std::uint64_t>(x));
  }
};

}  // namespace

ShardCheckpoint ShardCheckpoint::capture(std::size_t shard,
                                         std::uint32_t sessions,
                                         const Runtime& rt,
                                         const ShadowMutator& m,
                                         std::uint64_t collections) {
  ShardCheckpoint cp;
  cp.shard = shard;
  cp.sessions = sessions;
  cp.collections_at = collections;
  cp.runtime = rt.save_image();
  cp.mutator = m.save_image();
  cp.digest = cp.compute_digest();
  return cp;
}

std::uint64_t ShardCheckpoint::compute_digest() const {
  Fnv1a f;
  f.mix(shard);
  f.mix(sessions);
  f.mix(collections_at);
  f.mix(runtime.base);
  f.mix(runtime.alloc);
  f.mix_vec(runtime.words);
  f.mix_vec(runtime.roots);
  f.mix_vec(runtime.free_slots);
  f.mix(runtime.root_high_water);
  for (std::uint64_t w : mutator.rng) f.mix(w);
  f.mix(mutator.objs.size());
  for (const ShadowMutator::ShadowObj& o : mutator.objs) {
    f.mix(o.ref.slot_index());
    f.mix(o.rooted ? 1 : 0);
    f.mix(o.pi);
    f.mix(o.delta);
    f.mix_vec(o.children);
    f.mix_vec(o.data);
  }
  f.mix_vec(mutator.live);
  f.mix(mutator.allocations);
  return f.h;
}

bool ShardCheckpoint::restore_into(Runtime& rt, ShadowMutator& m) const {
  if (!verify()) return false;
  rt.restore_image(runtime);
  m.restore_image(mutator);
  return true;
}

}  // namespace hwgc
