// Deterministic shard checkpoints with an integrity digest.
//
// A quarantined shard must come back — and it must come back to a state
// the service can PROVE is the one it saved. A ShardCheckpoint captures
// everything one shard's behavior depends on:
//
//   * the runtime image — allocated heap prefix, allocation frontier,
//     root-table namespace with its freelist, root high-water mark
//     (Runtime::Image);
//   * the shadow-mutator graph — every shadow object, the live set, the
//     RNG stream position, the allocation count (ShadowMutator::Image);
//   * session affinity — the session count whose (session % shards)
//     pinning routed traffic here, so a restore provably resumes the same
//     session partition;
//   * an FNV-1a 64 digest over all of the above, computed at capture.
//
// Checkpoints are taken at VERIFIED-CLEAN cycle boundaries only: right
// after a collection whose post-structure oracle reported no findings (the
// conductor never checkpoints state it has not verified). Because heap and
// shadow are captured at the same instant on the shard's own lane, the
// pair is consistent by construction — no stop-the-fleet barrier needed.
//
// restore_into() recomputes the digest first and refuses a checkpoint that
// does not match bit-for-bit; a capture → restore → capture round trip
// yields an identical digest (tests/test_checkpoint.cpp), which is the
// "round-trips bit-identically" acceptance criterion.
#pragma once

#include <cstdint>

#include "runtime/runtime.hpp"
#include "workloads/mutator.hpp"

namespace hwgc {

struct ShardCheckpoint {
  std::size_t shard = 0;           ///< owning shard index
  std::uint32_t sessions = 0;      ///< session-affinity record
  std::uint64_t collections_at = 0; ///< GC cycles completed at capture
  Runtime::Image runtime;
  ShadowMutator::Image mutator;
  std::uint64_t digest = 0;        ///< FNV-1a 64 over everything above

  static ShardCheckpoint capture(std::size_t shard, std::uint32_t sessions,
                                 const Runtime& rt, const ShadowMutator& m,
                                 std::uint64_t collections);

  /// Recomputes the digest from the stored state.
  std::uint64_t compute_digest() const;

  bool verify() const { return digest == compute_digest(); }

  /// Digest-checked restore. Returns false — leaving rt and m untouched —
  /// when the stored digest does not match the recomputed one (a corrupted
  /// or tampered checkpoint must never be restored).
  bool restore_into(Runtime& rt, ShadowMutator& m) const;
};

}  // namespace hwgc
