#include "service/heap_service.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include <map>

#include "conformance/conformance.hpp"
#include "conformance/harness.hpp"
#include "heap/object_model.hpp"
#include "service/checkpoint.hpp"
#include "trace/replayer.hpp"

namespace hwgc {

namespace {

/// Independent per-shard streams from one service seed.
std::uint64_t shard_seed(std::uint64_t base, std::size_t shard) {
  std::uint64_t s = base + 0x9e3779b97f4a7c15ULL * (shard + 1);
  return splitmix64(s);
}

/// Work volume per request kind, in mutator steps. Allocation-heavy
/// requests churn more (sessions building state), releases less (teardown
/// is cheap); the ShadowMutator's internal policy keeps the shadow graph
/// consistent whatever the mix.
std::uint32_t steps_for(RequestKind kind, std::uint32_t base) {
  switch (kind) {
    case RequestKind::kAllocate: return base + 2;
    case RequestKind::kMutate: return base;
    case RequestKind::kRelease: return base > 2 ? base / 2 : 1;
    case RequestKind::kRead:
    case RequestKind::kCount: break;
  }
  return 0;
}

/// Trace mode: op budget per request kind — same shape bias as steps_for,
/// scaled up because one trace op is much lighter than one mutator step.
std::size_t trace_ops_for(RequestKind kind, std::uint32_t base) {
  const std::size_t b = std::max<std::uint32_t>(base, 1);
  switch (kind) {
    case RequestKind::kAllocate: return b + b / 2;
    case RequestKind::kMutate: return b;
    case RequestKind::kRelease: return std::max<std::size_t>(b / 2, 1);
    case RequestKind::kRead: return std::max<std::size_t>(b / 2, 1);
    case RequestKind::kCount: break;
  }
  return 1;
}

}  // namespace

/// One shard: a full Runtime + shadow model + virtual-time bookkeeping.
/// Doubles as the runtime's CollectionObserver so scheduled AND
/// exhaustion-triggered cycles get identical oracle + stall accounting.
struct HeapService::ShardState final : CollectionObserver {
  ShardState(std::size_t index_, const ServiceConfig& cfg,
             const FaultStorm& storm)
      : index(index_),
        fault_injected((cfg.fault_shard == index_ && cfg.fault_events > 0) ||
                       (storm.enabled() && storm.stormed(index_))),
        oracle(cfg.oracle),
        resilient(cfg.resilience.enabled()),
        profiling(cfg.profile.enabled),
        pauseless(cfg.scheduler == GcSchedulerKind::kPauseless),
        exemplar_cap(cfg.profile.exemplars),
        checkpoint_interval(cfg.resilience.checkpoint_interval),
        sessions(cfg.traffic.sessions),
        traces(cfg.traces),
        rt(cfg.semispace_words, shard_sim_config(index_, cfg, storm)),
        mutator(shard_mutator_config(index_, cfg)) {
    rt.set_collection_observer(this);
    if (pauseless) {
      // Every cycle on this shard — scheduled or exhaustion-triggered —
      // runs through the pauseless SATB snapshot collector. One worker
      // thread keeps the quiescent cycle bit-deterministic (the byte-
      // identity proof across host thread counts depends on it); the
      // plugin forces mutator_threads = 0 because the shard's sessions ARE
      // the mutator — their stores all land between cycles.
      HarnessConfig hc;
      hc.threads = 1;
      plugin = std::make_unique<HarnessPlugin>(CollectorId::kSnapshot, hc);
      rt.set_collector(plugin.get());
    }
    if (profiling) rt.enable_profiling();
    if (resilient) {
      // Checkpoint 0: the pristine construction state, so a restore is
      // always possible even before the first verified-clean cycle.
      take_checkpoint();
      slo_ring.assign(std::max<std::uint32_t>(cfg.resilience.slo_window, 1),
                      0);
    }
  }

  static SimConfig shard_sim_config(std::size_t index,
                                    const ServiceConfig& cfg,
                                    const FaultStorm& storm) {
    SimConfig sim = cfg.sim;
    if (cfg.fault_shard == index && cfg.fault_events > 0) {
      sim.fault.events = cfg.fault_events;
      sim.fault.seed = shard_seed(cfg.fault_seed, index);
    }
    if (storm.enabled() && storm.stormed(index)) {
      sim.fault = storm_fault_config(storm, index, sim.fault,
                                     storm.initially_active(index));
      // Keep the detection/recovery machinery armed through calm burst
      // windows too: every collection on a stormed shard goes through the
      // RecoveringCollector, so its counters stay in one family.
      sim.recovery.enabled = true;
    }
    return sim;
  }

  static ShadowMutator::Config shard_mutator_config(std::size_t index,
                                                    const ServiceConfig& cfg) {
    ShadowMutator::Config m = cfg.traffic.mutator;
    m.seed = shard_seed(cfg.traffic.seed, index);
    // The mutator's steady-state live set runs about 2× target_live objects
    // of mean shape (interior links keep released roots reachable). Clamp
    // target_live so that fits in half the semispace — a shard whose live
    // set alone exceeds capacity dies on "exhausted even after a
    // collection", which no scheduler can prevent.
    const Word mean_words =
        kHeaderWords + (m.max_pi + m.max_delta) / 2;
    const std::size_t cap = static_cast<std::size_t>(
        cfg.semispace_words / (4 * std::max<Word>(mean_words, 1)));
    m.target_live = std::max<std::size_t>(1, std::min(m.target_live, cap));
    return m;
  }

  // --- CollectionObserver ---------------------------------------------------

  void before_collection(Runtime& r) override {
    if (oracle) pre.emplace(HeapSnapshot::capture(r.heap()));
  }

  void after_collection(Runtime& r, const GcCycleStats& s) override {
    ++stats.collections;
    stats.gc_cycle_total += s.total_cycles;
    // Pauseless split: only the two rendezvous pauses block the shard; the
    // concurrent copying phase becomes debt drained as per-request service
    // overhead (execute_request) instead of stall.
    Cycle blocking = s.total_cycles;
    if (pauseless && plugin != nullptr && plugin->has_report() &&
        plugin->last_report().snapshot.has_value()) {
      const SnapshotGcStats& snap = *plugin->last_report().snapshot;
      blocking = snap.pause_cycles;
      concurrent_debt += snap.concurrent_cycles;
    }
    pending_gc += blocking;
    if (profiling) {
      // Link key for the exemplar span trees: the slot this cycle took in
      // the runtime's gc_history / profile_history (pushed just before the
      // observer ran). The charge carries only the stall-chargeable cycles.
      pending_charges.push_back(
          {static_cast<long long>(r.gc_history().size()) - 1, blocking});
    }
    requests_since_gc = 0;
    if (!r.recovery_history().empty()) {
      const RecoveryReport& rep = r.recovery_history().back();
      if (rep.faults_fired > 0 || rep.attempts.size() > 1) {
        ++stats.recovered_collections;
      }
      // Escalated recoveries — anything beyond a clean first attempt —
      // feed the supervisor's degrade/quarantine thresholds.
      if (rep.attempts.size() > 1 || rep.used_sequential_fallback ||
          !rep.deconfigured.empty()) {
        ++escalations;
      }
    }
    std::size_t errors = 0;
    if (oracle && pre.has_value()) {
      errors = run_oracle(r, s);
      pre.reset();
    }
    // Verified-clean cycle boundary: the only place a checkpoint may be
    // taken (the service never checkpoints state it has not verified —
    // with the oracle off, every completed cycle counts as clean).
    if (resilient && checkpoint_interval > 0 && errors == 0) {
      if (++clean_cycles >= checkpoint_interval) {
        take_checkpoint();
        clean_cycles = 0;
      }
    }
  }

  void take_checkpoint() {
    checkpoint = ShardCheckpoint::capture(index, sessions, rt, mutator,
                                          stats.collections);
    ++stats.checkpoints;
    completed_since_checkpoint = 0;
  }

  /// Quarantine response, on the shard's lane: rewinds heap + shadow to
  /// the last verified-clean checkpoint (digest-checked) and occupies the
  /// shard until `ready`. Completions since the checkpoint are counted
  /// rolled_back; a digest mismatch refuses the restore (the shard then
  /// continues from its crash-consistent pre-cycle image — the recovery
  /// ladder already restored that — and the mismatch is counted).
  void run_restore(Cycle ready) {
    ++stats.restores;
    if (checkpoint.has_value() && checkpoint->restore_into(rt, mutator)) {
      stats.rolled_back += completed_since_checkpoint;
    } else {
      ++stats.checkpoint_digest_failures;
    }
    completed_since_checkpoint = 0;
    clean_cycles = 0;
    gc_backlog = 0;
    pending_gc = 0;
    concurrent_debt = 0;
    pending_charges.clear();
    uncharged.clear();
    requests_since_gc = 0;
    ring_pos = 0;
    ring_size = 0;
    ring_violations = 0;
    next_free = std::max(next_free, ready);
  }

  /// Post-structure oracle over the cycle that just ran. Fault-free shards
  /// get the conformance kit's full coprocessor contract (forwarding
  /// bijectivity, dense tiling, single-evacuation counters); the
  /// fault-injected shard may have finished through the recovery ladder's
  /// sequential fallback, whose counters are a different family, so it is
  /// held to the image properties only (liveness + dense compaction).
  std::size_t run_oracle(Runtime& r, const GcCycleStats& s) {
    std::vector<std::string> errors;
    if (pauseless && plugin != nullptr && plugin->has_report()) {
      // The snapshot collector has its own structure oracle (SATB totality,
      // injectivity, dense extent, reconciliation counters) keyed off the
      // full CycleReport the plugin kept.
      check_post_structure(CollectorId::kSnapshot, *pre, r.heap(),
                           plugin->last_report(), errors);
    } else if (fault_injected) {
      const VerifyResult vr = verify_collection(*pre, r.heap());
      errors = vr.errors;
    } else {
      CycleReport report;
      report.objects_copied = s.objects_copied;
      report.words_copied = s.words_copied;
      report.lock_order_violations = s.lock_order_violations;
      std::uint64_t evac = 0;
      for (const auto& c : s.per_core) evac += c.objects_evacuated;
      report.evacuations = evac;
      report.coproc = s;
      check_post_structure(CollectorId::kCoprocessor, *pre, r.heap(), report,
                           errors);
    }
    stats.oracle_failures += errors.size();
    if (!errors.empty() && oracle_diagnostics.size() < 16) {
      for (const auto& e : errors) {
        if (oracle_diagnostics.size() >= 16) break;
        oracle_diagnostics.push_back("shard " + std::to_string(index) + ": " +
                                     e);
      }
    }
    return errors.size();
  }

  bool trace_mode() const noexcept { return traces != nullptr; }

  /// Lazily built per-session replay cursor (trace-per-session). Lives on
  /// the shard's lane like every other shard-local state; std::map keeps
  /// iteration deterministic should anyone ever walk it.
  TraceCursor& session_cursor(std::uint32_t session) {
    auto it = cursors.find(session);
    if (it == cursors.end()) {
      const std::vector<Trace>& ts = *traces;
      const Trace* t = &ts[session % ts.size()];
      it = cursors.emplace(session, TraceCursor(t, /*wrap=*/true)).first;
    }
    return it->second;
  }

  Cycle take_pending_gc() noexcept {
    const Cycle g = pending_gc;
    pending_gc = 0;
    return g;
  }

  std::vector<GcCharge> take_pending_charges() {
    std::vector<GcCharge> c = std::move(pending_charges);
    pending_charges.clear();
    return c;
  }

  const std::size_t index;
  const bool fault_injected;
  const bool oracle;
  const bool resilient;
  const bool profiling;
  const bool pauseless;
  const std::size_t exemplar_cap;
  const std::uint32_t checkpoint_interval;
  const std::uint32_t sessions;
  /// Shared corpus keep-alive for trace mode (null = churn mode).
  const std::shared_ptr<const std::vector<Trace>> traces;
  Runtime rt;
  ShadowMutator mutator;
  /// Pauseless mode: the shard's snapshot-collector backend (installed as
  /// the runtime's CollectorPlugin at construction; null otherwise).
  std::unique_ptr<HarnessPlugin> plugin;
  std::map<std::uint32_t, TraceCursor> cursors;  ///< per-session replay

  Cycle next_free = 0;          ///< virtual cycle the backlog drains
  Cycle gc_backlog = 0;         ///< collection cycles inside the backlog
                                ///< not yet charged to any request
  std::uint64_t requests_since_gc = 0;
  Cycle pending_gc = 0;         ///< cycles collected since last harvest
  /// Pauseless mode: concurrent-phase cycles not yet drained into any
  /// request's service overhead (always 0 under the STW schedulers).
  Cycle concurrent_debt = 0;

  // --- Profiling state (lane-owned, mirrors the cycle bookkeeping above;
  // all empty when profiling is off) --------------------------------------
  std::vector<GcCharge> pending_charges;  ///< charge twins of pending_gc
  std::vector<GcCharge> uncharged;        ///< charge twins of gc_backlog
  std::vector<RequestExemplar> exemplars; ///< this lane's K slowest

  std::optional<HeapSnapshot> pre;
  SloStats stats;
  std::vector<std::string> oracle_diagnostics;

  // --- Resilience state (lane-owned; conductor reads only after a join) --
  std::uint64_t escalations = 0;  ///< cumulative escalated recoveries
  std::uint64_t failures = 0;     ///< cumulative unrecoverable failures
  std::uint64_t clean_cycles = 0; ///< clean cycles since last checkpoint
  std::uint64_t completed_since_checkpoint = 0;
  std::optional<ShardCheckpoint> checkpoint;
  /// SLO-burn sliding window over recent completions (1 = violation).
  std::vector<std::uint8_t> slo_ring;
  std::size_t ring_pos = 0;
  std::uint64_t ring_size = 0;
  std::uint64_t ring_violations = 0;
};

HeapService::HeapService(const ServiceConfig& cfg)
    : cfg_(cfg),
      traffic_(cfg.traffic, cfg.shards),
      scheduler_(make_scheduler(cfg.scheduler, cfg.scheduling)) {
  if (cfg_.shards == 0) {
    throw std::invalid_argument("HeapService: need at least one shard");
  }
  if (cfg_.fault_shard != ServiceConfig::kNoShard &&
      cfg_.fault_shard >= cfg_.shards) {
    throw std::invalid_argument("HeapService: fault_shard out of range");
  }
  if (cfg_.scheduler == GcSchedulerKind::kPauseless &&
      (cfg_.fault_shard != ServiceConfig::kNoShard || cfg_.storm.enabled() ||
       cfg_.sim.fault.events > 0 || cfg_.sim.recovery.enabled)) {
    // Faulted shards collect through the RecoveringCollector, which the
    // runtime refuses to combine with a collector plugin — and the
    // pauseless snapshot collector has no fault-injection model of its own.
    throw std::invalid_argument(
        "HeapService: the pauseless scheduler cannot run with fault "
        "injection or recovery (the snapshot collector replaces the "
        "coprocessor path the fault model instruments)");
  }
  if (cfg_.storm.enabled() && cfg_.storm.crash_period > 0 &&
      !cfg_.resilience.supervise) {
    throw std::invalid_argument(
        "HeapService: storm crash_period needs resilience.supervise (a "
        "crashed shard must be quarantined and restored)");
  }
  if (cfg_.traces != nullptr) {
    if (cfg_.traces->empty()) {
      throw std::invalid_argument("HeapService: trace list is empty");
    }
    if (cfg_.resilience.enabled()) {
      // A checkpoint restore rewinds the root table under the sessions'
      // replay cursors, whose Refs would silently dangle.
      throw std::invalid_argument(
          "HeapService: trace-driven sessions cannot run with resilience "
          "restores (cursor roots cannot be rewound)");
    }
    // Every session's live set is bounded by its trace's recorded semispace
    // (the trace was captured inside one). Sessions pinned to a shard share
    // its heap, so size the shard for the worst case — all of its sessions
    // at their recorded bound at once, plus one trace of allocation slack —
    // or the default 8192 words wedges under ~16 replaying sessions.
    Word max_trace = 0;
    for (const Trace& t : *cfg_.traces) {
      max_trace = std::max(max_trace, t.header.semispace_words);
    }
    const std::size_t per_shard =
        (cfg_.traffic.sessions + cfg_.shards - 1) / cfg_.shards;
    const std::uint64_t required =
        (static_cast<std::uint64_t>(per_shard) + 1) * max_trace;
    if (required > std::numeric_limits<Word>::max()) {
      throw std::invalid_argument(
          "HeapService: trace-driven shard heap needs " +
          std::to_string(required) +
          " words, beyond the Word range; spread sessions over more shards "
          "or replay smaller traces");
    }
    cfg_.semispace_words =
        std::max(cfg_.semispace_words, static_cast<Word>(required));
  }
  storm_ = FaultStorm(cfg_.storm, cfg_.shards);
  if (cfg_.resilience.enabled()) {
    supervisor_ =
        std::make_unique<ShardSupervisor>(cfg_.shards, cfg_.resilience);
  }
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>(i, cfg_, storm_));
  }
  fleet_size_view_.resize(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    fleet_size_view_[i].shard = i;
  }
  rebuild_pool();
}

HeapService::~HeapService() = default;

void HeapService::rebuild_pool() {
  // One lane per shard. A telemetry bus is shared mutable state across
  // every shard's runtime, so its presence forces the inline (serial)
  // engine; serve() fully drains before returning, so swapping engines
  // between serves is safe.
  const std::size_t threads = telemetry_attached_ ? 1 : cfg_.host_threads;
  pool_ = std::make_unique<ShardPool>(cfg_.shards, threads);
}

ShardObservation HeapService::observe(std::size_t shard) const {
  const ShardState& s = *shards_.at(shard);
  ShardObservation o;
  o.shard = shard;
  o.occupancy = static_cast<double>(s.rt.words_in_use()) /
                static_cast<double>(s.rt.heap().capacity_words());
  o.live_roots = s.rt.live_roots();
  o.root_high_water = s.rt.root_high_water();
  o.requests_since_gc = s.requests_since_gc;
  o.backlog = s.next_free > now_ ? s.next_free - now_ : 0;
  o.collections = s.stats.collections;
  return o;
}

std::vector<ShardObservation> HeapService::observations(Cycle at) const {
  std::vector<ShardObservation> v;
  v.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardObservation o = observe(i);
    o.backlog = shards_[i]->next_free > at ? shards_[i]->next_free - at : 0;
    v.push_back(o);
  }
  return v;
}

void HeapService::run_scheduled_collection(ShardState& shard, Cycle at) {
  shard.pending_gc = 0;
  shard.pending_charges.clear();
  if (shard.resilient) {
    // A scheduler-forced cycle can die on a stormed shard too; record the
    // failure for the supervisor instead of unwinding the conductor. The
    // failed attempt published nothing (observer never ran), so neither
    // collections nor scheduled_collections counts it.
    try {
      shard.rt.collect();
    } catch (const std::runtime_error&) {
      ++shard.failures;
      return;
    }
  } else {
    shard.rt.collect();  // observer handles oracle + per-cycle accounting
  }
  const Cycle dur = shard.take_pending_gc();
  shard.next_free = std::max(shard.next_free, at) + dur;
  shard.gc_backlog += dur;
  if (shard.profiling) {
    // The cycles went into the backlog; their charge records ride along
    // until a later completion inherits them as stall.
    std::vector<GcCharge> c = shard.take_pending_charges();
    shard.uncharged.insert(shard.uncharged.end(), c.begin(), c.end());
  }
  ++shard.stats.scheduled_collections;
}

/// Everything that touches only the target shard's state — runs on the
/// shard's pool lane (or inline in serial mode). `req.arrival` is final by
/// the time this executes; the lane's FIFO order makes the shard see the
/// exact serial sequence of collections and requests. `penalty` is retry
/// backoff accrued over `hops` failover hops (part of the request's queue
/// latency); `req_id` is the conductor-assigned fleet-unique id exemplar
/// capture keys on.
void HeapService::execute_request(ShardState& sh, const Request& req,
                                  Cycle penalty, std::uint32_t hops,
                                  std::uint64_t req_id) {
  ++sh.stats.offered;
  const Cycle start = std::max(req.arrival + penalty, sh.next_free);
  const Cycle wait = start - req.arrival;
  // Collection debt from earlier dispatches drains into this request's
  // stall component — charged to at most one request, never two. The
  // shard is a FIFO server, so by `start` its queue (GC included) has
  // fully drained: whatever debt this wait did not cover elapsed before
  // the request arrived and delayed nobody. That discarded remainder is
  // precisely the GC a proactive scheduler hides in idle time.
  const Cycle inherited_stall = std::min(wait, sh.gc_backlog);
  const Cycle prior_gc_backlog = sh.gc_backlog;
  sh.gc_backlog = 0;
  std::vector<GcCharge> inherited;
  if (sh.profiling) {
    inherited = std::move(sh.uncharged);
    sh.uncharged.clear();
  }

  sh.pending_gc = 0;
  sh.pending_charges.clear();
  std::uint32_t steps = 0;
  std::size_t read_words = 0;
  bool failed = false;
  if (sh.trace_mode()) {
    // Trace-driven session: advance this session's cursor by the request's
    // op budget. The cursor verifies recorded read digests as it goes;
    // collections (explicit hints and exhaustion) run through the shard's
    // normal observer, so oracle + stall accounting are identical to churn
    // mode.
    TraceCursor& cursor = sh.session_cursor(req.session);
    const std::size_t budget =
        trace_ops_for(req.kind, cfg_.trace_ops_per_request);
    const std::uint64_t mismatches_before = cursor.read_mismatches();
    std::size_t applied = 0;
    if (sh.resilient) {
      try {
        applied = cursor.apply(sh.rt, budget);
      } catch (const std::runtime_error&) {
        failed = true;
        ++sh.failures;
      }
    } else {
      applied = cursor.apply(sh.rt, budget);
    }
    sh.stats.read_mismatches += cursor.read_mismatches() - mismatches_before;
    if (req.kind == RequestKind::kRead) {
      read_words = applied;
    } else {
      steps = static_cast<std::uint32_t>(applied);
    }
  } else if (req.kind == RequestKind::kRead) {
    std::size_t mismatches = 0;
    read_words = sh.mutator.probe(sh.rt, &mismatches);
    sh.stats.read_mismatches += mismatches;
  } else {
    steps = steps_for(req.kind, traffic_.config().steps_per_request);
    if (sh.resilient) {
      // Graceful degradation: an unrecoverable collection (every rung of
      // the escalation ladder failed) or heap exhaustion kills THIS
      // request, not the fleet. The heap still holds the recovery
      // ladder's restored pre-cycle image and the shadow was only mutated
      // by fully completed steps, so shard state stays consistent; the
      // supervisor quarantines and restores at the next conductor join.
      try {
        for (std::uint32_t i = 0; i < steps; ++i) sh.mutator.step(sh.rt);
      } catch (const std::runtime_error&) {
        failed = true;
        ++sh.failures;
      }
    } else {
      for (std::uint32_t i = 0; i < steps; ++i) sh.mutator.step(sh.rt);
    }
  }
  // Cycles of exhaustion-triggered collection during this request's own
  // execution (harvested from the observer).
  const Cycle own_gc = sh.take_pending_gc();
  std::vector<GcCharge> own;
  if (sh.profiling) own = sh.take_pending_charges();
  if (failed) {
    // The request dies without a completion record, so it charges no
    // latency components. GC debt — what it would have inherited plus
    // cycles that DID run before the failure — stays in the backlog for a
    // later completion to inherit as stall (the at-most-one-request
    // charging rule holds — this request charges nothing).
    sh.next_free = start + own_gc;
    sh.gc_backlog = prior_gc_backlog + own_gc;
    if (sh.profiling) {
      // Charge records track the backlog exactly: restore the inherited
      // list and append the cycles that ran before the failure.
      sh.uncharged = std::move(inherited);
      sh.uncharged.insert(sh.uncharged.end(), own.begin(), own.end());
    }
    ++sh.stats.failed;
    return;
  }
  Cycle service = traffic_.service_cost(steps, read_words);
  // Pauseless mode: drain a slice of the outstanding concurrent-phase debt
  // as overhead INSIDE this request's service time — an eighth of the
  // request's own cost, plus one so the debt always shrinks. The latency
  // partition (service + queue + stall == latency) is untouched; the
  // gc_concurrent_cycles counter records the sub-component so the A/B
  // against a stop-the-world scheduler stays honest about where the
  // concurrent collector's work went.
  Cycle concurrent_overhead = 0;
  if (sh.concurrent_debt > 0) {
    concurrent_overhead = std::min(sh.concurrent_debt, service / 8 + 1);
    sh.concurrent_debt -= concurrent_overhead;
    service += concurrent_overhead;
  }
  const Cycle total = wait + own_gc + service;

  sh.next_free = start + own_gc + service;
  ++sh.stats.completed;
  if (hops > 0) ++sh.stats.retried;
  if (sh.profiling) {
    RequestExemplar e;
    e.request_id = req_id;
    e.shard = sh.index;
    e.arrival = req.arrival;
    e.start = start;
    e.completion = start + own_gc + service;
    e.penalty = penalty;
    e.inherited_stall = inherited_stall;
    e.own_gc = own_gc;
    e.service = service;
    e.gc_concurrent = concurrent_overhead;
    e.hops = hops;
    e.own = std::move(own);
    e.inherited = std::move(inherited);
    insert_exemplar(sh.exemplars, sh.exemplar_cap, std::move(e));
  }
  ++sh.completed_since_checkpoint;
  ++sh.requests_since_gc;
  sh.stats.latency.record(total);
  sh.stats.service_cycles += service;
  sh.stats.gc_concurrent_cycles += concurrent_overhead;
  sh.stats.queue_cycles += wait - inherited_stall;
  sh.stats.stall_cycles += inherited_stall + own_gc;
  const bool violation = cfg_.slo_cycles > 0 && total > cfg_.slo_cycles;
  if (violation) ++sh.stats.slo_violations;
  if (sh.resilient && !sh.slo_ring.empty()) {
    if (sh.ring_size == sh.slo_ring.size()) {
      sh.ring_violations -= sh.slo_ring[sh.ring_pos];
    } else {
      ++sh.ring_size;
    }
    sh.slo_ring[sh.ring_pos] = violation ? 1 : 0;
    sh.ring_violations += violation ? 1 : 0;
    sh.ring_pos = (sh.ring_pos + 1) % sh.slo_ring.size();
  }
}

void HeapService::supervise(std::size_t shard, Cycle at) {
  // Caller has joined the shard's lane: its counters are quiescent.
  ShardState& sh = *shards_[shard];
  HealthSignals sig;
  sig.escalations = sh.escalations;
  sig.failures = sh.failures;
  sig.completions = sh.stats.completed;
  sig.window_size = sh.ring_size;
  sig.window_violations = sh.ring_violations;
  const ShardSupervisor::Verdict v = supervisor_->observe(shard, at, sig);
  if (v.degraded) ++sh.stats.degradations;
  if (v.reset_window) {
    sh.ring_pos = 0;
    sh.ring_size = 0;
    sh.ring_violations = 0;
  }
  if (v.quarantined) {
    ++sh.stats.quarantines;
    restore_shard(shard, at);
  }
}

void HeapService::restore_shard(std::size_t shard, Cycle at) {
  // The restore occupies the shard for restore_cost virtual cycles;
  // arrivals before `ready` fail over to healthy shards. The rewind runs
  // on the shard's own lane (FIFO after anything already queued there).
  ShardState* sh = shards_[shard].get();
  const Cycle ready = at + cfg_.resilience.restore_cost;
  HealthSignals sig;
  sig.escalations = sh->escalations;
  sig.failures = sh->failures;
  sig.completions = sh->stats.completed;
  supervisor_->restored(shard, ready, sig);
  pool_->submit(shard, [sh, ready] { sh->run_restore(ready); });
}

std::size_t HeapService::route(const Request& req, Cycle& penalty,
                               std::uint32_t& hops) {
  const ResilienceConfig& rc = cfg_.resilience;
  const std::size_t n = shards_.size();
  const std::size_t max_hops =
      std::min<std::size_t>(std::size_t{rc.max_retries} + 1, n);
  for (std::size_t h = 0; h < max_hops; ++h) {
    const std::size_t cand = (req.shard + h) % n;
    penalty = rc.retry_backoff * h;
    const Cycle eff = req.arrival + penalty;
    if (!supervisor_->serving(cand, eff)) continue;
    pool_->join(cand);
    const ShardState& cs = *shards_[cand];
    const Cycle backlog = cs.next_free > eff ? cs.next_free - eff : 0;
    if (cfg_.max_backlog > 0 && backlog > cfg_.max_backlog) continue;
    if (rc.deadline_cycles > 0 && backlog + penalty > rc.deadline_cycles) {
      continue;
    }
    hops = static_cast<std::uint32_t>(h);
    return cand;
  }
  penalty = 0;
  hops = 0;
  return ServiceConfig::kNoShard;
}

void HeapService::serve(std::uint64_t requests) {
  // Conductor loop (DESIGN.md §13). The conductor owns every cross-shard
  // decision — traffic RNG, virtual clock, storm schedule, supervision,
  // routing, admission, scheduling — in strict request order, and ships
  // shard-local work to the shards' FIFO lanes. It joins a lane exactly
  // where the serial engine would read that shard's state: closed-loop
  // arrival sampling, supervision harvests, admission control and failover
  // candidate probing join the target shard; a kFull scheduler observation
  // joins the whole fleet. With host_threads <= 1 every submit runs
  // inline, reproducing the serial engine verbatim — which is why serial
  // and shard-pool runs stay bit-identical even mid-storm.
  const ObservationNeeds needs = scheduler_->needs();
  const bool resilient = supervisor_ != nullptr;
  for (std::uint64_t n = 0; n < requests; ++n) {
    Request req = traffic_.draw();
    const std::size_t home = req.shard;
    if (!traffic_.config().open_loop) {
      pool_->join(home);
      traffic_.finalize_closed(req, shards_[home]->next_free);
    }
    if (req.arrival > now_) now_ = req.arrival;
    ++offered_;
    ShardState& sh = *shards_[home];

    // Fault-storm schedule for the home shard: burst-window toggles ship a
    // new fault config down the lane; crash events kill the shard as this
    // request arrives (the request is lost, the shard restores).
    bool crash_now = false;
    if (storm_.enabled() && storm_.stormed(home)) {
      const StormTick t = storm_.tick(home);
      if (t.toggled) {
        const FaultConfig fc = storm_fault_config(storm_, home,
                                                  cfg_.sim.fault,
                                                  t.fault_active);
        ShardState* hs = &sh;
        pool_->submit(home, [hs, fc] { hs->rt.set_fault_config(fc); });
      }
      crash_now = t.crash && resilient;
    }

    std::size_t target = home;
    Cycle penalty = 0;
    std::uint32_t hops = 0;
    if (resilient) {
      pool_->join(home);
      supervise(home, req.arrival);
      if (crash_now) {
        ++sh.stats.offered;
        ++sh.stats.failed;
        ++sh.stats.crashes;
        if (supervisor_->crash(home, req.arrival, "storm-crash")) {
          ++sh.stats.quarantines;
          restore_shard(home, req.arrival);
        }
        continue;
      }
      // Failover routing with deadline budget; shed when no serving shard
      // can take the request.
      target = route(req, penalty, hops);
      if (target == ServiceConfig::kNoShard) {
        ++sh.stats.offered;
        ++sh.stats.rejected;
        continue;
      }
    } else if (cfg_.max_backlog > 0) {
      // Admission control: shed instead of queueing past the debt bound.
      // Joined above for closed-loop traffic; open-loop joins here.
      pool_->join(home);
      const Cycle backlog =
          sh.next_free > req.arrival ? sh.next_free - req.arrival : 0;
      if (backlog > cfg_.max_backlog) {
        ++sh.stats.offered;
        ++sh.stats.rejected;
        continue;
      }
    }

    // One scheduling decision per dispatch — the scheduler may collect any
    // shard, not just the one this request lands on. Policies that do not
    // read live shard state skip both the fleet join and the observation
    // build (the big O(shards)-per-request cost at 1000-shard scale).
    std::optional<std::size_t> pick;
    switch (needs) {
      case ObservationNeeds::kNone:
        pick = scheduler_->pick(fleet_size_view_);
        break;
      case ObservationNeeds::kFleetSize:
        pick = scheduler_->pick(fleet_size_view_);
        break;
      case ObservationNeeds::kFull:
        pool_->join_all();
        pick = scheduler_->pick(observations(req.arrival));
        break;
    }
    if (pick) {
      ShardState& sched_target = *shards_[*pick];
      const Cycle at = req.arrival;
      pool_->submit(*pick, [this, &sched_target, at] {
        run_scheduled_collection(sched_target, at);
      });
    }

    ShardState* ts = shards_[target].get();
    const std::uint64_t req_id = offered_;
    pool_->submit(target, [this, ts, req, penalty, hops, req_id] {
      execute_request(*ts, req, penalty, hops, req_id);
    });
  }
  pool_->join_all();
}

const SloStats& HeapService::shard_stats(std::size_t shard) const {
  return shards_.at(shard)->stats;
}

const std::vector<std::string>& HeapService::oracle_diagnostics(
    std::size_t shard) const {
  return shards_.at(shard)->oracle_diagnostics;
}

SloStats HeapService::fleet_stats() const {
  SloStats fleet;
  for (const auto& s : shards_) fleet.merge(s->stats);
  return fleet;
}

Runtime& HeapService::runtime(std::size_t shard) {
  return shards_.at(shard)->rt;
}

const Runtime& HeapService::runtime(std::size_t shard) const {
  return shards_.at(shard)->rt;
}

std::size_t HeapService::validate_shard(std::size_t shard) {
  ShardState& s = *shards_.at(shard);
  return s.mutator.validate(s.rt);
}

std::size_t HeapService::validate_all_shards() {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    mismatches += validate_shard(i);
  }
  return mismatches;
}

ShardHealth HeapService::shard_health(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("HeapService::shard_health: shard out of range");
  }
  return supervisor_ ? supervisor_->state(shard) : ShardHealth::kHealthy;
}

ShardHealth HeapService::fleet_health() const {
  ShardHealth worst = ShardHealth::kHealthy;
  if (supervisor_) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const ShardHealth h = supervisor_->state(i);
      if (severity(h) > severity(worst)) worst = h;
    }
  }
  return worst;
}

const std::vector<HealthEvent>& HeapService::health_events() const {
  static const std::vector<HealthEvent> kEmpty;
  return supervisor_ ? supervisor_->events() : kEmpty;
}

ProfileAttribution HeapService::shard_attribution(std::size_t shard) const {
  const ShardState& s = *shards_.at(shard);
  ProfileAttribution a;
  a.source = "service";
  a.shard = static_cast<long long>(shard);
  for (const CycleProfile& p : s.rt.profile_history()) a.add(p);
  return a;
}

std::vector<RequestExemplar> HeapService::slowest_requests() const {
  std::vector<RequestExemplar> top;
  for (const auto& s : shards_) {
    for (const RequestExemplar& e : s->exemplars) {
      insert_exemplar(top, cfg_.profile.exemplars, e);
    }
  }
  return top;
}

void HeapService::set_telemetry(TelemetryBus* bus) {
  for (auto& s : shards_) s->rt.set_telemetry(bus);
  const bool attached = bus != nullptr;
  if (attached != telemetry_attached_) {
    telemetry_attached_ = attached;
    rebuild_pool();
  }
}

}  // namespace hwgc
