#include "service/heap_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "conformance/conformance.hpp"
#include "conformance/harness.hpp"
#include "heap/object_model.hpp"

namespace hwgc {

namespace {

/// Independent per-shard streams from one service seed.
std::uint64_t shard_seed(std::uint64_t base, std::size_t shard) {
  std::uint64_t s = base + 0x9e3779b97f4a7c15ULL * (shard + 1);
  return splitmix64(s);
}

/// Work volume per request kind, in mutator steps. Allocation-heavy
/// requests churn more (sessions building state), releases less (teardown
/// is cheap); the ShadowMutator's internal policy keeps the shadow graph
/// consistent whatever the mix.
std::uint32_t steps_for(RequestKind kind, std::uint32_t base) {
  switch (kind) {
    case RequestKind::kAllocate: return base + 2;
    case RequestKind::kMutate: return base;
    case RequestKind::kRelease: return base > 2 ? base / 2 : 1;
    case RequestKind::kRead:
    case RequestKind::kCount: break;
  }
  return 0;
}

}  // namespace

/// One shard: a full Runtime + shadow model + virtual-time bookkeeping.
/// Doubles as the runtime's CollectionObserver so scheduled AND
/// exhaustion-triggered cycles get identical oracle + stall accounting.
struct HeapService::ShardState final : CollectionObserver {
  ShardState(std::size_t index_, const ServiceConfig& cfg)
      : index(index_),
        fault_injected(cfg.fault_shard == index_ && cfg.fault_events > 0),
        oracle(cfg.oracle),
        rt(cfg.semispace_words, shard_sim_config(index_, cfg)),
        mutator(shard_mutator_config(index_, cfg)) {
    rt.set_collection_observer(this);
  }

  static SimConfig shard_sim_config(std::size_t index,
                                    const ServiceConfig& cfg) {
    SimConfig sim = cfg.sim;
    if (cfg.fault_shard == index && cfg.fault_events > 0) {
      sim.fault.events = cfg.fault_events;
      sim.fault.seed = shard_seed(cfg.fault_seed, index);
    }
    return sim;
  }

  static ShadowMutator::Config shard_mutator_config(std::size_t index,
                                                    const ServiceConfig& cfg) {
    ShadowMutator::Config m = cfg.traffic.mutator;
    m.seed = shard_seed(cfg.traffic.seed, index);
    // The mutator's steady-state live set runs about 2× target_live objects
    // of mean shape (interior links keep released roots reachable). Clamp
    // target_live so that fits in half the semispace — a shard whose live
    // set alone exceeds capacity dies on "exhausted even after a
    // collection", which no scheduler can prevent.
    const Word mean_words =
        kHeaderWords + (m.max_pi + m.max_delta) / 2;
    const std::size_t cap = static_cast<std::size_t>(
        cfg.semispace_words / (4 * std::max<Word>(mean_words, 1)));
    m.target_live = std::max<std::size_t>(1, std::min(m.target_live, cap));
    return m;
  }

  // --- CollectionObserver ---------------------------------------------------

  void before_collection(Runtime& r) override {
    if (oracle) pre.emplace(HeapSnapshot::capture(r.heap()));
  }

  void after_collection(Runtime& r, const GcCycleStats& s) override {
    ++stats.collections;
    stats.gc_cycle_total += s.total_cycles;
    pending_gc += s.total_cycles;
    requests_since_gc = 0;
    if (!r.recovery_history().empty()) {
      const RecoveryReport& rep = r.recovery_history().back();
      if (rep.faults_fired > 0 || rep.attempts.size() > 1) {
        ++stats.recovered_collections;
      }
    }
    if (oracle && pre.has_value()) {
      run_oracle(r, s);
      pre.reset();
    }
  }

  /// Post-structure oracle over the cycle that just ran. Fault-free shards
  /// get the conformance kit's full coprocessor contract (forwarding
  /// bijectivity, dense tiling, single-evacuation counters); the
  /// fault-injected shard may have finished through the recovery ladder's
  /// sequential fallback, whose counters are a different family, so it is
  /// held to the image properties only (liveness + dense compaction).
  void run_oracle(Runtime& r, const GcCycleStats& s) {
    std::vector<std::string> errors;
    if (fault_injected) {
      const VerifyResult vr = verify_collection(*pre, r.heap());
      errors = vr.errors;
    } else {
      CycleReport report;
      report.objects_copied = s.objects_copied;
      report.words_copied = s.words_copied;
      report.lock_order_violations = s.lock_order_violations;
      std::uint64_t evac = 0;
      for (const auto& c : s.per_core) evac += c.objects_evacuated;
      report.evacuations = evac;
      report.coproc = s;
      check_post_structure(CollectorId::kCoprocessor, *pre, r.heap(), report,
                           errors);
    }
    stats.oracle_failures += errors.size();
    if (!errors.empty() && oracle_diagnostics.size() < 16) {
      for (const auto& e : errors) {
        if (oracle_diagnostics.size() >= 16) break;
        oracle_diagnostics.push_back("shard " + std::to_string(index) + ": " +
                                     e);
      }
    }
  }

  Cycle take_pending_gc() noexcept {
    const Cycle g = pending_gc;
    pending_gc = 0;
    return g;
  }

  const std::size_t index;
  const bool fault_injected;
  const bool oracle;
  Runtime rt;
  ShadowMutator mutator;

  Cycle next_free = 0;          ///< virtual cycle the backlog drains
  Cycle gc_backlog = 0;         ///< collection cycles inside the backlog
                                ///< not yet charged to any request
  std::uint64_t requests_since_gc = 0;
  Cycle pending_gc = 0;         ///< cycles collected since last harvest
  std::optional<HeapSnapshot> pre;
  SloStats stats;
  std::vector<std::string> oracle_diagnostics;
};

HeapService::HeapService(const ServiceConfig& cfg)
    : cfg_(cfg),
      traffic_(cfg.traffic, cfg.shards),
      scheduler_(make_scheduler(cfg.scheduler, cfg.scheduling)) {
  if (cfg_.shards == 0) {
    throw std::invalid_argument("HeapService: need at least one shard");
  }
  if (cfg_.fault_shard != ServiceConfig::kNoShard &&
      cfg_.fault_shard >= cfg_.shards) {
    throw std::invalid_argument("HeapService: fault_shard out of range");
  }
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>(i, cfg_));
  }
  fleet_size_view_.resize(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    fleet_size_view_[i].shard = i;
  }
  rebuild_pool();
}

HeapService::~HeapService() = default;

void HeapService::rebuild_pool() {
  // One lane per shard. A telemetry bus is shared mutable state across
  // every shard's runtime, so its presence forces the inline (serial)
  // engine; serve() fully drains before returning, so swapping engines
  // between serves is safe.
  const std::size_t threads = telemetry_attached_ ? 1 : cfg_.host_threads;
  pool_ = std::make_unique<ShardPool>(cfg_.shards, threads);
}

ShardObservation HeapService::observe(std::size_t shard) const {
  const ShardState& s = *shards_.at(shard);
  ShardObservation o;
  o.shard = shard;
  o.occupancy = static_cast<double>(s.rt.words_in_use()) /
                static_cast<double>(s.rt.heap().capacity_words());
  o.live_roots = s.rt.live_roots();
  o.root_high_water = s.rt.root_high_water();
  o.requests_since_gc = s.requests_since_gc;
  o.backlog = s.next_free > now_ ? s.next_free - now_ : 0;
  o.collections = s.stats.collections;
  return o;
}

std::vector<ShardObservation> HeapService::observations(Cycle at) const {
  std::vector<ShardObservation> v;
  v.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardObservation o = observe(i);
    o.backlog = shards_[i]->next_free > at ? shards_[i]->next_free - at : 0;
    v.push_back(o);
  }
  return v;
}

void HeapService::run_scheduled_collection(ShardState& shard, Cycle at) {
  shard.pending_gc = 0;
  shard.rt.collect();  // observer handles oracle + per-cycle accounting
  const Cycle dur = shard.take_pending_gc();
  shard.next_free = std::max(shard.next_free, at) + dur;
  shard.gc_backlog += dur;
  ++shard.stats.scheduled_collections;
}

/// Everything that touches only the target shard's state — runs on the
/// shard's pool lane (or inline in serial mode). `req.arrival` is final by
/// the time this executes; the lane's FIFO order makes the shard see the
/// exact serial sequence of collections and requests.
void HeapService::execute_request(ShardState& sh, const Request& req) {
  ++sh.stats.offered;
  const Cycle start = std::max(req.arrival, sh.next_free);
  const Cycle wait = start - req.arrival;
  // Collection debt from earlier dispatches drains into this request's
  // stall component — charged to at most one request, never two. The
  // shard is a FIFO server, so by `start` its queue (GC included) has
  // fully drained: whatever debt this wait did not cover elapsed before
  // the request arrived and delayed nobody. That discarded remainder is
  // precisely the GC a proactive scheduler hides in idle time.
  const Cycle inherited_stall = std::min(wait, sh.gc_backlog);
  sh.gc_backlog = 0;

  sh.pending_gc = 0;
  std::uint32_t steps = 0;
  std::size_t read_words = 0;
  if (req.kind == RequestKind::kRead) {
    std::size_t mismatches = 0;
    read_words = sh.mutator.probe(sh.rt, &mismatches);
    sh.stats.read_mismatches += mismatches;
  } else {
    steps = steps_for(req.kind, traffic_.config().steps_per_request);
    for (std::uint32_t i = 0; i < steps; ++i) sh.mutator.step(sh.rt);
  }
  // Cycles of exhaustion-triggered collection during this request's own
  // execution (harvested from the observer).
  const Cycle own_gc = sh.take_pending_gc();
  const Cycle service = traffic_.service_cost(steps, read_words);
  const Cycle total = wait + own_gc + service;

  sh.next_free = start + own_gc + service;
  ++sh.stats.completed;
  ++sh.requests_since_gc;
  sh.stats.latency.record(total);
  sh.stats.service_cycles += service;
  sh.stats.queue_cycles += wait - inherited_stall;
  sh.stats.stall_cycles += inherited_stall + own_gc;
  if (cfg_.slo_cycles > 0 && total > cfg_.slo_cycles) {
    ++sh.stats.slo_violations;
  }
}

void HeapService::serve(std::uint64_t requests) {
  // Conductor loop (DESIGN.md §13). The conductor owns every cross-shard
  // decision — traffic RNG, virtual clock, admission, scheduling — in
  // strict request order, and ships shard-local work to the shards' FIFO
  // lanes. It joins a lane exactly where the serial engine would read that
  // shard's state: closed-loop arrival sampling and admission control join
  // the target shard; a kFull scheduler observation joins the whole fleet.
  // With host_threads <= 1 every submit runs inline, reproducing the
  // serial engine verbatim.
  const ObservationNeeds needs = scheduler_->needs();
  for (std::uint64_t n = 0; n < requests; ++n) {
    Request req = traffic_.draw();
    if (!traffic_.config().open_loop) {
      pool_->join(req.shard);
      traffic_.finalize_closed(req, shards_[req.shard]->next_free);
    }
    if (req.arrival > now_) now_ = req.arrival;
    ++offered_;
    ShardState& sh = *shards_[req.shard];

    // Admission control: shed instead of queueing past the debt bound.
    // Joined above for closed-loop traffic; open-loop joins here.
    if (cfg_.max_backlog > 0) {
      pool_->join(req.shard);
      const Cycle backlog =
          sh.next_free > req.arrival ? sh.next_free - req.arrival : 0;
      if (backlog > cfg_.max_backlog) {
        ++sh.stats.offered;
        ++sh.stats.rejected;
        continue;
      }
    }

    // One scheduling decision per dispatch — the scheduler may collect any
    // shard, not just the one this request lands on. Policies that do not
    // read live shard state skip both the fleet join and the observation
    // build (the big O(shards)-per-request cost at 1000-shard scale).
    std::optional<std::size_t> pick;
    switch (needs) {
      case ObservationNeeds::kNone:
        pick = scheduler_->pick(fleet_size_view_);
        break;
      case ObservationNeeds::kFleetSize:
        pick = scheduler_->pick(fleet_size_view_);
        break;
      case ObservationNeeds::kFull:
        pool_->join_all();
        pick = scheduler_->pick(observations(req.arrival));
        break;
    }
    if (pick) {
      ShardState& target = *shards_[*pick];
      const Cycle at = req.arrival;
      pool_->submit(*pick,
                    [this, &target, at] { run_scheduled_collection(target, at); });
    }

    pool_->submit(req.shard, [this, &sh, req] { execute_request(sh, req); });
  }
  pool_->join_all();
}

const SloStats& HeapService::shard_stats(std::size_t shard) const {
  return shards_.at(shard)->stats;
}

const std::vector<std::string>& HeapService::oracle_diagnostics(
    std::size_t shard) const {
  return shards_.at(shard)->oracle_diagnostics;
}

SloStats HeapService::fleet_stats() const {
  SloStats fleet;
  for (const auto& s : shards_) fleet.merge(s->stats);
  return fleet;
}

Runtime& HeapService::runtime(std::size_t shard) {
  return shards_.at(shard)->rt;
}

const Runtime& HeapService::runtime(std::size_t shard) const {
  return shards_.at(shard)->rt;
}

std::size_t HeapService::validate_shard(std::size_t shard) {
  ShardState& s = *shards_.at(shard);
  return s.mutator.validate(s.rt);
}

std::size_t HeapService::validate_all_shards() {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    mismatches += validate_shard(i);
  }
  return mismatches;
}

void HeapService::set_telemetry(TelemetryBus* bus) {
  for (auto& s : shards_) s->rt.set_telemetry(bus);
  const bool attached = bus != nullptr;
  if (attached != telemetry_attached_) {
    telemetry_attached_ = attached;
    rebuild_pool();
  }
}

}  // namespace hwgc
