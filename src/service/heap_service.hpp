// HeapService — the multi-tenant heap layer (tentpole of the service work).
//
// The paper stops one application processor while the coprocessor collects
// one heap (Section V-E). A production-scale runtime serves heavy traffic
// from many tenants, which means MANY heaps collected under a latency
// budget. The service composes everything below it into that layer:
//
//   * N independent shards, each a full Runtime (own Heap, own root-table
//     namespace, own simulated coprocessor) plus a ShadowMutator that
//     models the shard's expected object graph — shards share NOTHING, so
//     a fault or a collection on one cannot perturb a neighbor, and the
//     cross-shard verifier can prove it;
//   * a seeded TrafficModel turning session requests (allocate / mutate /
//     read / release) into shard work, open- or closed-loop;
//   * a pluggable GcScheduler multiplexing collection across shards
//     (reactive exhaustion, proactive occupancy pacing, budgeted
//     round-robin), consulted before every dispatch;
//   * admission control: a request arriving at a shard whose backlog
//     (queued work + uncharged collection debt) exceeds max_backlog is
//     rejected instead of queued — backpressure instead of unbounded tail
//     latency;
//   * end-to-end SLO accounting (slo.hpp): every completed request's
//     latency is split exactly into service + queue + GC stall, with each
//     collection cycle charged to exactly one request;
//   * an optional per-cycle oracle: the conformance kit's post-structure
//     checks (forwarding bijectivity, dense tiling, counter consistency)
//     run against a pre-cycle snapshot after EVERY collection, on every
//     shard — the service never trusts a cycle it did not verify.
//
// Time is virtual (simulated clock cycles): request interarrivals and
// service costs come from the seeded traffic model, collection durations
// from the cycle-accurate coprocessor simulation. The whole service is
// bit-deterministic from its seeds, across scheduler policies — AND across
// host thread counts: with host_threads > 1 shard work executes on a
// ShardPool (per-shard FIFO lanes, DESIGN.md §13) while a serial conductor
// keeps every cross-shard decision in request order, so parallel output is
// byte-identical to serial (tests/test_service_parallel.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault_storm.hpp"
#include "heap/verifier.hpp"
#include "profile/request_trace.hpp"
#include "runtime/runtime.hpp"
#include "service/scheduler.hpp"
#include "service/slo.hpp"
#include "service/supervisor.hpp"
#include "service/traffic.hpp"
#include "sim/config.hpp"
#include "sim/shard_pool.hpp"
#include "trace/trace_format.hpp"
#include "workloads/mutator.hpp"

namespace hwgc {

struct ServiceConfig {
  static constexpr std::size_t kNoShard = ~std::size_t{0};

  std::size_t shards = 4;

  /// Per-shard semispace size in words.
  Word semispace_words = 8192;

  /// Per-shard simulator configuration (cores, memory model, ...).
  SimConfig sim{};

  TrafficConfig traffic{};

  GcSchedulerKind scheduler = GcSchedulerKind::kReactive;
  SchedulerConfig scheduling{};

  /// Admission control: reject a request whose shard backlog exceeds this
  /// many cycles. 0 = queue without bound.
  Cycle max_backlog = 0;

  /// SLO bound on end-to-end request latency; completions above it count
  /// as violations. 0 = no SLO accounting.
  Cycle slo_cycles = 1u << 14;

  /// Run the conformance post-structure oracle after every collection
  /// cycle, on every shard (costs a pre-cycle snapshot per collection).
  bool oracle = true;

  /// Per-shard fault injection: route `fault_events` seeded fault events
  /// into every collection on `fault_shard` (collections there then run
  /// through the RecoveringCollector). kNoShard disables. The multi-shard
  /// generalization is `storm` below; both may be active at once (the
  /// storm's plan wins on a shard it covers).
  std::size_t fault_shard = kNoShard;
  std::uint32_t fault_events = 0;
  std::uint64_t fault_seed = 1;

  /// Seeded multi-shard fault storm (fault/fault_storm.hpp): a fraction of
  /// the fleet takes repeating per-collection faults, in bursts, with
  /// correlated neighbors and an optional crash schedule. Stormed shards
  /// always run collections through the RecoveringCollector.
  FaultStormConfig storm{};

  /// Fleet resilience (service/supervisor.hpp): health supervision,
  /// verified-clean checkpoints, restore-on-quarantine, failover routing
  /// with deadline budgets and load shedding. Disabled by default — the
  /// engine is then byte-identical to the pre-resilience service.
  ResilienceConfig resilience{};

  /// Request tracing + stall attribution (src/profile/). Off by default;
  /// the serving math is untouched either way — profiling only *observes*
  /// (per-shard CycleProfiles, GC charge links, slow-request exemplars),
  /// so disabled runs are byte-identical to a profile-free build.
  /// `exemplars` bounds both the per-shard capture buffers and the fleet
  /// top-K returned by slowest_requests().
  struct ProfileConfig {
    bool enabled = false;
    std::uint32_t exemplars = 4;
  };
  ProfileConfig profile{};

  /// Trace-driven sessions (src/trace/): when set (non-empty), requests
  /// replay recorded hwgc-trace-v1 op streams instead of seeded
  /// ShadowMutator churn. Each session gets its own wrapping TraceCursor
  /// over traces[session % traces.size()] — trace-per-session, scaled
  /// across shards by the usual session-affinity pinning. Read probes in
  /// the stream verify their recorded digests (mismatches land in
  /// SloStats::read_mismatches), and the per-cycle oracle still checks
  /// every collection. Deterministic like the churn engine: serial and
  /// shard-pool runs stay byte-identical.
  std::shared_ptr<const std::vector<Trace>> traces;

  /// Trace mode: baseline op budget per request; scaled by request kind
  /// like steps_per_request (allocate-biased requests apply more ops).
  std::uint32_t trace_ops_per_request = 16;

  /// Host threads executing shard work (simulation, not virtual time).
  /// <= 1 runs everything inline on the caller's thread — the serial
  /// reference engine. Any thread count produces byte-identical output
  /// (enforced by tests/test_service_parallel.cpp): shards share nothing,
  /// tasks for one shard run FIFO, and the conductor joins at every data
  /// dependency. Ignored (forced serial) while a telemetry bus is
  /// attached, because one bus is shared by every shard.
  std::size_t host_threads = 1;
};

class HeapService {
 public:
  explicit HeapService(const ServiceConfig& cfg);
  ~HeapService();

  HeapService(const HeapService&) = delete;
  HeapService& operator=(const HeapService&) = delete;

  /// Serves the next `requests` requests from the traffic stream. May be
  /// called repeatedly; state (virtual clock, backlogs, shard graphs)
  /// carries over — gc_top uses this to animate a live panel.
  void serve(std::uint64_t requests);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  const ServiceConfig& config() const noexcept { return cfg_; }

  const SloStats& shard_stats(std::size_t shard) const;
  /// Fleet-wide aggregate (per-shard stats merged).
  SloStats fleet_stats() const;

  /// First findings (capped) of the shard's post-structure oracle; empty
  /// when every cycle verified clean.
  const std::vector<std::string>& oracle_diagnostics(std::size_t shard) const;

  Runtime& runtime(std::size_t shard);
  const Runtime& runtime(std::size_t shard) const;

  /// Scheduler-visible view of one shard, at the current virtual time.
  ShardObservation observe(std::size_t shard) const;

  /// Virtual fleet clock: the latest request arrival processed so far.
  Cycle now() const noexcept { return now_; }
  std::uint64_t requests_offered() const noexcept { return offered_; }

  /// Walks every shard's shadow graph against its heap; returns the total
  /// mismatch count (0 = every shard's heap agrees with its model). THE
  /// cross-shard isolation check: run it after a fault-injected run to
  /// prove neighbor shards were not perturbed.
  std::size_t validate_all_shards();
  std::size_t validate_shard(std::size_t shard);

  /// Attaches one bus to every shard runtime: collections from all shards
  /// land on a single fleet timeline, one epoch per cycle (core tracks are
  /// shared across shards; epochs identify the collecting shard).
  void set_telemetry(TelemetryBus* bus);

  // --- Fleet resilience ----------------------------------------------------

  /// True when health supervision / failover routing is active (the
  /// resilience config's enabled() — supervise or a deadline budget).
  bool resilient() const noexcept { return supervisor_ != nullptr; }

  /// Current health of one shard (kHealthy when supervision is off).
  ShardHealth shard_health(std::size_t shard) const;

  /// Worst health across the fleet (severity order in supervisor.hpp).
  ShardHealth fleet_health() const;

  /// Health transition log (empty when supervision is off).
  const std::vector<HealthEvent>& health_events() const;

  /// The storm plan in effect (enabled() false without a storm config).
  const FaultStorm& storm() const noexcept { return storm_; }

  // --- Profiling (cfg.profile.enabled) -------------------------------------

  bool profiling() const noexcept { return cfg_.profile.enabled; }

  /// Stall-attribution aggregate over every collection the shard has run
  /// (source "service"). Call between serve() calls — the lanes are then
  /// drained. Empty (zero collections) when profiling is off.
  ProfileAttribution shard_attribution(std::size_t shard) const;

  /// The fleet's K slowest completed requests (cfg.profile.exemplars), in
  /// RequestExemplar::slower order — deterministic across host thread
  /// counts because ids are conductor-assigned and each lane's top-K is
  /// merged with the same comparator. Empty when profiling is off.
  std::vector<RequestExemplar> slowest_requests() const;

 private:
  struct ShardState;

  std::vector<ShardObservation> observations(Cycle at) const;
  void run_scheduled_collection(ShardState& shard, Cycle at);
  void execute_request(ShardState& shard, const Request& req, Cycle penalty,
                       std::uint32_t hops, std::uint64_t req_id);
  void rebuild_pool();

  /// Harvests the shard's health signals (its lane must be joined) and
  /// runs the supervisor's state machine; performs the restore on a
  /// quarantine verdict.
  void supervise(std::size_t shard, Cycle at);

  /// Quarantine response: submits the checkpoint restore to the shard's
  /// lane and marks the shard restoring until `at` + restore_cost.
  void restore_shard(std::size_t shard, Cycle at);

  /// Failover routing: picks the first serving candidate in (home + k) %
  /// shards order whose backlog passes admission and the deadline budget;
  /// sets `penalty` to the accumulated retry backoff and `hops` to the
  /// number of failover hops taken. Returns ServiceConfig::kNoShard when
  /// every candidate fails (shed).
  std::size_t route(const Request& req, Cycle& penalty, std::uint32_t& hops);

  ServiceConfig cfg_;
  TrafficModel traffic_;
  std::unique_ptr<GcScheduler> scheduler_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  FaultStorm storm_;
  std::unique_ptr<ShardSupervisor> supervisor_;
  Cycle now_ = 0;
  std::uint64_t offered_ = 0;
  bool telemetry_attached_ = false;

  /// Placeholder fleet view for ObservationNeeds::kFleetSize policies:
  /// only .shard is populated (built once; the contract in scheduler.hpp
  /// forbids such policies from reading anything else).
  std::vector<ShardObservation> fleet_size_view_;

  /// Declared last so workers are joined (and the pool drained) before any
  /// shard state is destroyed.
  std::unique_ptr<ShardPool> pool_;
};

}  // namespace hwgc
