#include "service/scheduler.hpp"

namespace hwgc {

std::optional<GcSchedulerKind> parse_scheduler(const std::string& name) {
  for (auto k : all_schedulers()) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

std::vector<GcSchedulerKind> all_schedulers() {
  return {GcSchedulerKind::kReactive, GcSchedulerKind::kProactive,
          GcSchedulerKind::kRoundRobin, GcSchedulerKind::kPauseless};
}

namespace {

class ReactiveScheduler final : public GcScheduler {
 public:
  GcSchedulerKind kind() const noexcept override {
    return GcSchedulerKind::kReactive;
  }
  ObservationNeeds needs() const noexcept override {
    return ObservationNeeds::kNone;
  }
  std::optional<std::size_t> pick(
      const std::vector<ShardObservation>&) override {
    return std::nullopt;
  }
};

class ProactiveScheduler : public GcScheduler {
 public:
  explicit ProactiveScheduler(const SchedulerConfig& cfg) : cfg_(cfg) {}
  GcSchedulerKind kind() const noexcept override {
    return GcSchedulerKind::kProactive;
  }
  std::optional<std::size_t> pick(
      const std::vector<ShardObservation>& fleet) override {
    // Most-occupied eligible shard first: under fleet-wide pressure the
    // shard closest to exhaustion is the one whose next request would
    // otherwise eat the reactive stall.
    std::optional<std::size_t> best;
    double best_occ = 0.0;
    for (const auto& s : fleet) {
      if (s.occupancy < cfg_.occupancy_threshold) continue;
      if (s.requests_since_gc < cfg_.min_requests_between) continue;
      if (!best || s.occupancy > best_occ) {
        best = s.shard;
        best_occ = s.occupancy;
      }
    }
    return best;
  }

 private:
  SchedulerConfig cfg_;
};

/// The pauseless policy picks exactly like proactive — occupancy pacing is
/// still the right trigger — but its kind tells the service to run every
/// cycle (scheduled AND exhaustion-triggered) through the pauseless
/// snapshot collector and split pause from concurrent overhead.
class PauselessScheduler final : public ProactiveScheduler {
 public:
  explicit PauselessScheduler(const SchedulerConfig& cfg)
      : ProactiveScheduler(cfg) {}
  GcSchedulerKind kind() const noexcept override {
    return GcSchedulerKind::kPauseless;
  }
};

class RoundRobinScheduler final : public GcScheduler {
 public:
  explicit RoundRobinScheduler(const SchedulerConfig& cfg) : cfg_(cfg) {}
  GcSchedulerKind kind() const noexcept override {
    return GcSchedulerKind::kRoundRobin;
  }
  ObservationNeeds needs() const noexcept override {
    return ObservationNeeds::kFleetSize;
  }
  std::optional<std::size_t> pick(
      const std::vector<ShardObservation>& fleet) override {
    if (fleet.empty() || cfg_.round_robin_period == 0) return std::nullopt;
    if (++since_ < cfg_.round_robin_period) return std::nullopt;
    since_ = 0;
    const std::size_t shard = next_ % fleet.size();
    next_ = (next_ + 1) % fleet.size();
    return shard;
  }

 private:
  SchedulerConfig cfg_;
  std::uint64_t since_ = 0;
  std::size_t next_ = 0;
};

}  // namespace

std::unique_ptr<GcScheduler> make_scheduler(GcSchedulerKind kind,
                                            const SchedulerConfig& cfg) {
  switch (kind) {
    case GcSchedulerKind::kReactive:
      return std::make_unique<ReactiveScheduler>();
    case GcSchedulerKind::kProactive:
      return std::make_unique<ProactiveScheduler>(cfg);
    case GcSchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(cfg);
    case GcSchedulerKind::kPauseless:
      return std::make_unique<PauselessScheduler>(cfg);
    case GcSchedulerKind::kCount: break;
  }
  return std::make_unique<ReactiveScheduler>();
}

}  // namespace hwgc
