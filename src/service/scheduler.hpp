// Pluggable collection scheduling across the shards of a HeapService.
//
// The paper's system stops ONE application processor while the coprocessor
// collects ONE heap (Section V-E). A production service owns many
// per-shard heaps and must decide WHICH heap to collect WHEN, trading GC
// stall against allocation headroom. Three policies bracket the space:
//
//   * reactive    — never collect proactively; every cycle is triggered by
//     allocation exhaustion inside the shard's Runtime (the paper's model,
//     N-plexed). Cheapest in GC cycles, worst-case stall lands on the
//     request that happened to exhaust the semispace.
//   * proactive   — collect a shard as soon as its semispace occupancy
//     crosses a threshold (and it has absorbed a minimum number of
//     requests since its last cycle, so a large live set cannot thrash).
//     Converts rare large stalls into paced smaller ones.
//   * round-robin — budgeted pacing: every `period` fleet-wide requests,
//     the next shard in rotation is collected regardless of occupancy.
//     The fully predictable baseline the other two are judged against.
//   * pauseless   — proactive occupancy pacing, but the service runs every
//     collection through the pauseless SATB snapshot collector
//     (src/concurrent_mutator/, DESIGN.md §17): only the two brief
//     rendezvous pauses block the shard; the concurrent copying phase is
//     drained as a small per-request overhead inside later requests'
//     service time instead of a stall. The tail-latency policy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace hwgc {

enum class GcSchedulerKind : std::uint8_t {
  kReactive = 0,
  kProactive,
  kRoundRobin,
  kPauseless,
  kCount
};

constexpr const char* to_string(GcSchedulerKind k) noexcept {
  switch (k) {
    case GcSchedulerKind::kReactive: return "reactive";
    case GcSchedulerKind::kProactive: return "proactive";
    case GcSchedulerKind::kRoundRobin: return "roundrobin";
    case GcSchedulerKind::kPauseless: return "pauseless";
    case GcSchedulerKind::kCount: break;
  }
  return "?";
}

/// Parses a scheduler name as printed by to_string; nullopt on junk.
std::optional<GcSchedulerKind> parse_scheduler(const std::string& name);

/// All policies, in enum order — for sweep drivers.
std::vector<GcSchedulerKind> all_schedulers();

/// What a scheduler may look at when deciding (one entry per shard,
/// refreshed before every dispatch).
struct ShardObservation {
  std::size_t shard = 0;
  double occupancy = 0.0;          ///< used / capacity of the active space
  std::uint64_t live_roots = 0;
  std::uint64_t root_high_water = 0;
  std::uint64_t requests_since_gc = 0;
  Cycle backlog = 0;               ///< cycles of queued work on the shard
  std::uint64_t collections = 0;
};

struct SchedulerConfig {
  /// Proactive: collect when occupancy >= threshold.
  double occupancy_threshold = 0.75;
  /// Proactive: minimum requests a shard must absorb between scheduled
  /// cycles (prevents thrash when the live set alone exceeds the
  /// threshold).
  std::uint64_t min_requests_between = 16;
  /// Round-robin: fleet-wide requests between budgeted collections.
  std::uint64_t round_robin_period = 256;
};

/// How much of the fleet a policy actually reads at each decision point.
/// The parallel conductor (heap_service.cpp, DESIGN.md §13) uses this to
/// skip building observations — and, for kFull, to know it must join every
/// shard lane first, since a full observation reads live shard state.
enum class ObservationNeeds : std::uint8_t {
  kNone = 0,   ///< pick() ignores the fleet entirely
  kFleetSize,  ///< pick() reads only fleet.size() and fleet[i].shard
  kFull,       ///< pick() reads per-shard occupancy/backlog/etc.
};

/// One decision point per request dispatch: return the shard to collect
/// now, or nullopt to let allocation exhaustion take its course.
class GcScheduler {
 public:
  virtual ~GcScheduler() = default;
  virtual GcSchedulerKind kind() const noexcept = 0;
  const char* name() const noexcept { return to_string(kind()); }

  /// Contract: a policy returning less than kFull must not read the fields
  /// its tier excludes — the service passes placeholder observations then.
  virtual ObservationNeeds needs() const noexcept {
    return ObservationNeeds::kFull;
  }

  virtual std::optional<std::size_t> pick(
      const std::vector<ShardObservation>& fleet) = 0;
};

std::unique_ptr<GcScheduler> make_scheduler(GcSchedulerKind kind,
                                            const SchedulerConfig& cfg = {});

}  // namespace hwgc
