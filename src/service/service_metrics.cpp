#include "service/service_metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "profile/profile_metrics.hpp"
#include "telemetry/metrics.hpp"
#include "trace/trace_format.hpp"

namespace hwgc {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

void append_record(std::string& out, const HeapService& service,
                   const std::string& suite, long long shard,
                   const SloStats& s) {
  const ServiceConfig& cfg = service.config();
  out += "{\"schema\":\"hwgc-service-v1\"";
  out += ",\"suite\":\"" + suite + "\"";
  out += ",\"scheduler\":\"" + std::string(to_string(cfg.scheduler)) + "\"";
  out += ",\"shards\":" + std::to_string(cfg.shards);
  out += ",\"shard\":" + std::to_string(shard);
  out += ",\"seed\":" + std::to_string(cfg.traffic.seed);
  out += ",\"cores\":" + std::to_string(cfg.sim.coprocessor.num_cores);
  out += ",\"semispace_words\":" + std::to_string(cfg.semispace_words);
  out += ",\"load\":" + fmt_double(cfg.traffic.load);
  out += ",\"open_loop\":" + std::to_string(cfg.traffic.open_loop ? 1 : 0);
  out += ",\"requests\":" + std::to_string(s.offered);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"rejected\":" + std::to_string(s.rejected);
  out += ",\"collections\":" + std::to_string(s.collections);
  out += ",\"scheduled_collections\":" +
         std::to_string(s.scheduled_collections);
  out += ",\"recovered_collections\":" +
         std::to_string(s.recovered_collections);
  out += ",\"gc_cycle_total\":" + std::to_string(s.gc_cycle_total);
  out += ",\"oracle_failures\":" + std::to_string(s.oracle_failures);
  out += ",\"read_mismatches\":" + std::to_string(s.read_mismatches);
  out += ",\"latency_p50\":" + std::to_string(s.latency.percentile(0.50));
  out += ",\"latency_p99\":" + std::to_string(s.latency.percentile(0.99));
  out += ",\"latency_p999\":" + std::to_string(s.latency.percentile(0.999));
  out += ",\"latency_max\":" + std::to_string(s.latency.max());
  out += ",\"latency_mean\":" + fmt_double(s.latency.mean());
  out += ",\"latency_cycles\":" + std::to_string(s.latency.sum());
  out += ",\"service_cycles\":" + std::to_string(s.service_cycles);
  out += ",\"queue_cycles\":" + std::to_string(s.queue_cycles);
  out += ",\"stall_cycles\":" + std::to_string(s.stall_cycles);
  out += ",\"slo_cycles\":" + std::to_string(cfg.slo_cycles);
  out += ",\"slo_violations\":" + std::to_string(s.slo_violations);
  out += ",\"served\":" + std::to_string(s.served());
  out += ",\"retried\":" + std::to_string(s.retried);
  out += ",\"failed\":" + std::to_string(s.failed);
  out += ",\"rolled_back\":" + std::to_string(s.rolled_back);
  out += ",\"checkpoints\":" + std::to_string(s.checkpoints);
  out += ",\"restores\":" + std::to_string(s.restores);
  out += ",\"quarantines\":" + std::to_string(s.quarantines);
  out += ",\"degradations\":" + std::to_string(s.degradations);
  out += ",\"crashes\":" + std::to_string(s.crashes);
  out += ",\"health\":\"" + std::string(to_string(shard < 0
                                                      ? service.fleet_health()
                                                      : service.shard_health(
                                                            static_cast<
                                                                std::size_t>(
                                                                shard)))) +
         "\"";
  out += ",\"gc_concurrent_cycles\":" + std::to_string(s.gc_concurrent_cycles);
  out += "}\n";
}

struct FieldSpec {
  const char* name;
  bool is_string;
};

// The hwgc-service-v1 schema: required fields and their types, in emission
// order. New fields may be appended; none may be renamed or removed.
constexpr FieldSpec kServiceSchemaV1[] = {
    {"schema", true},
    {"suite", true},
    {"scheduler", true},
    {"shards", false},
    {"shard", false},
    {"seed", false},
    {"cores", false},
    {"semispace_words", false},
    {"load", false},
    {"open_loop", false},
    {"requests", false},
    {"completed", false},
    {"rejected", false},
    {"collections", false},
    {"scheduled_collections", false},
    {"recovered_collections", false},
    {"gc_cycle_total", false},
    {"oracle_failures", false},
    {"read_mismatches", false},
    {"latency_p50", false},
    {"latency_p99", false},
    {"latency_p999", false},
    {"latency_max", false},
    {"latency_mean", false},
    {"latency_cycles", false},
    {"service_cycles", false},
    {"queue_cycles", false},
    {"stall_cycles", false},
    {"slo_cycles", false},
    {"slo_violations", false},
    {"served", false},
    {"retried", false},
    {"failed", false},
    {"rolled_back", false},
    {"checkpoints", false},
    {"restores", false},
    {"quarantines", false},
    {"degradations", false},
    {"crashes", false},
    {"health", true},
};

}  // namespace

std::string service_report_jsonl(const HeapService& service,
                                 const std::string& suite) {
  std::string out;
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    append_record(out, service, suite, static_cast<long long>(i),
                  service.shard_stats(i));
  }
  append_record(out, service, suite, -1, service.fleet_stats());
  return out;
}

bool write_service_jsonl(const HeapService& service, const std::string& path,
                         const std::string& suite, bool append) {
  std::ofstream f(path, append ? std::ios::binary | std::ios::app
                               : std::ios::binary);
  if (!f) return false;
  const std::string jsonl = service_report_jsonl(service, suite);
  f.write(jsonl.data(), static_cast<std::streamsize>(jsonl.size()));
  f.flush();
  return f.good();
}

std::string profile_report_jsonl(const HeapService& service,
                                 const std::string& suite) {
  std::string out;
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    out += profile_attribution_jsonl(service.shard_attribution(i), suite);
  }
  out += exemplar_spans_jsonl(service.slowest_requests(), suite);
  return out;
}

bool write_profile_jsonl(const HeapService& service, const std::string& path,
                         const std::string& suite, bool append) {
  std::ofstream f(path, append ? std::ios::binary | std::ios::app
                               : std::ios::binary);
  if (!f) return false;
  const std::string jsonl = profile_report_jsonl(service, suite);
  f.write(jsonl.data(), static_cast<std::streamsize>(jsonl.size()));
  f.flush();
  return f.good();
}

bool validate_service_jsonl_line(const std::string& line, std::string* error) {
  std::vector<std::pair<std::string, std::string>> kv;
  if (!parse_flat_json_object(line, kv, error)) return false;
  const auto find = [&](const std::string& key) -> const std::string* {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  const auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  for (const FieldSpec& f : kServiceSchemaV1) {
    const std::string* v = find(f.name);
    if (v == nullptr) {
      return set_error(std::string("missing field \"") + f.name + "\"");
    }
    const bool is_string = !v->empty() && v->front() == '"';
    if (is_string != f.is_string) {
      return set_error(std::string("field \"") + f.name +
                       "\" has the wrong type");
    }
  }
  if (*find("schema") != "\"hwgc-service-v1\"") {
    return set_error("schema is not hwgc-service-v1");
  }
  const auto num = [&](const char* key) {
    return std::strtod(find(key)->c_str(), nullptr);
  };
  if (num("shards") < 1) return set_error("shards must be >= 1");
  const double shard = num("shard");
  if (shard < -1 || shard >= num("shards")) {
    return set_error("shard must be -1 (fleet) or in [0, shards)");
  }
  if (num("completed") + num("rejected") + num("failed") != num("requests")) {
    return set_error("completed + rejected + failed != requests");
  }
  if (num("served") + num("retried") != num("completed")) {
    return set_error("served + retried != completed");
  }
  if (num("crashes") > num("failed")) {
    return set_error("crashes exceeds failed requests");
  }
  if (num("restores") > num("quarantines")) {
    return set_error("restores exceeds quarantines");
  }
  const std::string& health = *find("health");
  if (health != "\"healthy\"" && health != "\"degraded\"" &&
      health != "\"quarantined\"" && health != "\"restoring\"") {
    return set_error("health is not a known shard-health state");
  }
  const double p50 = num("latency_p50"), p99 = num("latency_p99"),
               p999 = num("latency_p999"), mx = num("latency_max");
  if (!(p50 <= p99 && p99 <= p999 && p999 <= mx)) {
    return set_error(
        "latency percentiles not ordered (p50<=p99<=p999<=max)");
  }
  const double service = num("service_cycles"), queue = num("queue_cycles"),
               stall = num("stall_cycles");
  if (service < 0 || queue < 0 || stall < 0) {
    return set_error("negative latency-component accounting");
  }
  if (service + queue + stall != num("latency_cycles")) {
    return set_error(
        "stall accounting does not add up: service + queue + stall != "
        "latency_cycles");
  }
  if (num("slo_violations") > num("completed")) {
    return set_error("slo_violations exceeds completed requests");
  }
  if (num("scheduled_collections") > num("collections")) {
    return set_error("scheduled_collections exceeds collections");
  }
  // Appended after the v1 freeze, so optional: committed pre-pauseless
  // snapshots stay valid. When present it is a numeric sub-component of
  // service_cycles (the pauseless concurrent-overhead drain).
  if (const std::string* gcc = find("gc_concurrent_cycles")) {
    if (!gcc->empty() && gcc->front() == '"') {
      return set_error("field \"gc_concurrent_cycles\" has the wrong type");
    }
    if (num("gc_concurrent_cycles") > service) {
      return set_error("gc_concurrent_cycles exceeds service_cycles");
    }
  }
  return true;
}

namespace {

using LineValidator = bool (*)(const std::string&, std::string*);

bool validate_file_with(const std::string& path,
                        std::vector<std::string>* errors,
                        LineValidator pick(const std::string& line)) {
  std::ifstream f(path);
  if (!f) {
    if (errors != nullptr) errors->push_back("cannot open " + path);
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  std::size_t records = 0;
  bool ok = true;
  ProfileSpanChecker spans;  // file-level duplicate-span-id check
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++records;
    std::string err;
    LineValidator v = pick(line);
    if (v == nullptr) {
      ok = false;
      if (errors != nullptr) {
        errors->push_back(path + ":" + std::to_string(lineno) +
                          ": unknown or missing schema field");
      }
      continue;
    }
    if (!v(line, &err) || !spans.check(line, &err)) {
      ok = false;
      if (errors != nullptr) {
        errors->push_back(path + ":" + std::to_string(lineno) + ": " + err);
      }
    }
  }
  if (records == 0) {
    ok = false;
    if (errors != nullptr) errors->push_back(path + ": no records");
  }
  return ok;
}

LineValidator service_only(const std::string&) {
  return &validate_service_jsonl_line;
}

LineValidator dispatch_by_schema(const std::string& line) {
  if (line.find("\"schema\":\"hwgc-service-v1\"") != std::string::npos) {
    return &validate_service_jsonl_line;
  }
  if (line.find("\"schema\":\"hwgc-bench-v1\"") != std::string::npos) {
    return &validate_bench_jsonl_line;
  }
  if (line.find("\"schema\":\"hwgc-profile-v1\"") != std::string::npos) {
    return &validate_profile_jsonl_line;
  }
  if (line.find("\"schema\":\"hwgc-trace-v1\"") != std::string::npos) {
    return &validate_trace_jsonl_line;
  }
  return nullptr;
}

}  // namespace

bool validate_service_jsonl_file(const std::string& path,
                                 std::vector<std::string>* errors) {
  return validate_file_with(path, errors, service_only);
}

bool validate_metrics_jsonl_file(const std::string& path,
                                 std::vector<std::string>* errors) {
  return validate_file_with(path, errors, dispatch_by_schema);
}

}  // namespace hwgc
