// hwgc-service-v1 — the heap service's stable JSONL metrics section.
//
// One record per shard plus one fleet-wide aggregate (shard = -1), flat
// and append-only exactly like hwgc-bench-v1 (telemetry/metrics.hpp):
// tooling may add fields, never rename or remove them. A heapd output
// file typically carries BOTH sections — per-shard collection-cycle
// aggregates as hwgc-bench-v1 lines and request-latency/SLO accounting as
// hwgc-service-v1 lines — so validation dispatches per line on the
// "schema" field (validate_metrics_jsonl_file), which is what the
// bench_validate gate runs in CI.
//
// Schema invariants enforced by the validator:
//   * field presence and types;
//   * latency percentiles monotone (p50 <= p99 <= p999 <= max);
//   * non-negative stall accounting that adds up exactly:
//     service_cycles + queue_cycles + stall_cycles == latency_cycles;
//   * the request partition: completed + rejected + failed == requests and
//     served + retried == completed (resilience additions keep the
//     identities exact under failover retries and load shedding);
//   * crashes <= failed, restores <= quarantines, and health is one of
//     healthy / degraded / quarantined / restoring;
//   * scheduled_collections <= collections, slo_violations <= completed.
#pragma once

#include <string>
#include <vector>

#include "service/heap_service.hpp"

namespace hwgc {

/// All shard records + the fleet record as JSONL, one "hwgc-service-v1"
/// object per line (deterministic byte-for-byte for a deterministic run).
std::string service_report_jsonl(const HeapService& service,
                                 const std::string& suite);

/// Appends service_report_jsonl() to `path` when `append` (so one file can
/// hold an hwgc-bench-v1 section followed by the service section);
/// truncates otherwise. Returns false on I/O failure.
bool write_service_jsonl(const HeapService& service, const std::string& path,
                         const std::string& suite, bool append = false);

/// Validates one JSONL line against the hwgc-service-v1 schema.
bool validate_service_jsonl_line(const std::string& line, std::string* error);

/// Validates a whole file of hwgc-service-v1 records.
bool validate_service_jsonl_file(const std::string& path,
                                 std::vector<std::string>* errors);

/// The service's hwgc-profile-v1 section (cfg.profile.enabled runs): one
/// attribution record per shard followed by the span trees of the fleet's
/// K slowest requests. Deterministic byte-for-byte, at any host thread
/// count. Call between serve() calls (lanes drained).
std::string profile_report_jsonl(const HeapService& service,
                                 const std::string& suite);

/// Appends (or writes) profile_report_jsonl() to `path`, exactly like
/// write_service_jsonl. Returns false on I/O failure.
bool write_profile_jsonl(const HeapService& service, const std::string& path,
                         const std::string& suite, bool append = false);

/// Mixed-schema gate: validates every line of `path` against the schema its
/// "schema" field names (hwgc-bench-v1, hwgc-service-v1 or
/// hwgc-profile-v1); unknown or missing schemas are violations, and
/// duplicate profile span ids are caught file-wide. This is what
/// examples/bench_validate runs over CI artifacts.
bool validate_metrics_jsonl_file(const std::string& path,
                                 std::vector<std::string>* errors);

}  // namespace hwgc
