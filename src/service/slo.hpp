// Latency accounting for the multi-tenant heap service.
//
// Every request the service completes is accounted end-to-end in simulated
// clock cycles, split into three exclusive components whose sum is the
// request's total latency:
//
//   * service  — cycles the request itself spent executing (mutator steps,
//     data-word reads),
//   * queue    — cycles spent waiting behind earlier requests on the same
//     shard (backlog that is NOT collection work),
//   * stall    — GC-induced cycles: collections that ran between the
//     request's arrival and its completion, whether scheduled by the
//     GcScheduler, triggered by allocation exhaustion mid-request, or
//     inherited as backlog from an earlier dispatch. Each collection cycle
//     is charged to AT MOST one request — never two. Exhaustion-triggered
//     cycles always land on the request that triggered them (so under the
//     reactive policy, fleet-wide stall equals fleet-wide collection
//     time); scheduled cycles that drain while their shard sits idle delay
//     nobody and are charged to nobody — that hidden remainder is exactly
//     the win proactive pacing buys.
//
// Distributions are kept in a deterministic log2 histogram (8 linear
// sub-buckets per power of two — HdrHistogram's trick, shrunk): quantiles
// are reproducible bit-for-bit from a seed, which the determinism suite
// relies on, and the memory footprint is fixed regardless of run length.
#pragma once

#include <bit>
#include <cstdint>

#include "sim/types.hpp"

namespace hwgc {

/// Fixed-footprint log2 latency histogram over Cycle values.
class LatencyHistogram {
 public:
  static constexpr std::uint32_t kSubBits = 3;  ///< 8 sub-buckets / octave
  static constexpr std::uint32_t kSub = 1u << kSubBits;
  static constexpr std::uint32_t kOctaves = 64;
  static constexpr std::uint32_t kBuckets = kOctaves * kSub;

  void record(Cycle v) noexcept {
    ++counts_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    if (count_ == 1 || v < min_) min_ = v;
  }

  /// Folds another histogram in (per-shard -> fleet aggregation).
  void merge(const LatencyHistogram& o) noexcept {
    for (std::uint32_t b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    if (o.count_ > 0) {
      if (count_ == 0 || o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
    }
    count_ += o.count_;
    sum_ += o.sum_;
  }

  std::uint64_t count() const noexcept { return count_; }
  Cycle sum() const noexcept { return sum_; }
  Cycle max() const noexcept { return max_; }
  Cycle min() const noexcept { return count_ == 0 ? 0 : min_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Nearest-rank quantile, reported as the lower bound of the bucket the
  /// rank falls into (so percentile(p) <= an exact-sample percentile and
  /// percentiles are monotone in p by construction). p in [0, 1].
  Cycle percentile(double p) const noexcept {
    if (count_ == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        p * static_cast<double>(count_ - 1) + 0.5);
    if (rank >= count_) rank = count_ - 1;
    std::uint64_t seen = 0;
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen > rank) return bucket_floor(b);
    }
    return max_;
  }

 private:
  static std::uint32_t bucket_of(Cycle v) noexcept {
    if (v < kSub) return static_cast<std::uint32_t>(v);
    const std::uint32_t msb =
        63u - static_cast<std::uint32_t>(std::countl_zero(v));
    const std::uint32_t sub =
        static_cast<std::uint32_t>(v >> (msb - kSubBits)) & (kSub - 1);
    return msb * kSub + sub;
  }
  static Cycle bucket_floor(std::uint32_t b) noexcept {
    const std::uint32_t msb = b / kSub, sub = b % kSub;
    if (msb == 0) return sub;
    return (Cycle{1} << msb) | (Cycle{sub} << (msb - kSubBits));
  }

  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  Cycle sum_ = 0;
  Cycle min_ = 0;
  Cycle max_ = 0;
};

/// Per-shard (and, merged, fleet-wide) service-level statistics.
///
/// Request-accounting partition (validator-enforced in service_metrics):
/// every admitted request ends in exactly one of completed / rejected /
/// failed, so completed + rejected + failed == offered; and every
/// completion was served either on its home shard or via failover, so
/// served + retried == completed (served = completed - retried is derived
/// at report time). rolled_back counts completions later undone by a
/// checkpoint restore — informational, NOT part of the partition (those
/// requests were answered; the restore rewinds shard state, not history).
struct SloStats {
  std::uint64_t offered = 0;    ///< requests routed to the shard
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   ///< shed: admission control or deadline

  LatencyHistogram latency;     ///< end-to-end completed-request latency
  Cycle service_cycles = 0;     ///< sums of the three exclusive components;
  Cycle queue_cycles = 0;       ///< service + queue + stall == latency.sum()
  Cycle stall_cycles = 0;

  std::uint64_t slo_violations = 0;  ///< completions above the SLO bound

  std::uint64_t collections = 0;       ///< GC cycles run on the shard
  std::uint64_t scheduled_collections = 0;  ///< subset the scheduler forced
  Cycle gc_cycle_total = 0;            ///< simulated cycles spent collecting

  /// Pauseless mode (GcSchedulerKind::kPauseless) only: collection cycles
  /// that ran concurrently with the mutator and were drained as small
  /// per-request overhead INSIDE service_cycles instead of stall. A
  /// sub-component of service_cycles (never double-counted against the
  /// latency partition); always 0 under the stop-the-world schedulers.
  Cycle gc_concurrent_cycles = 0;
  std::uint64_t recovered_collections = 0;  ///< went through fault recovery
  std::uint64_t oracle_failures = 0;   ///< post-structure oracle findings
  std::uint64_t read_mismatches = 0;   ///< probe reads diverging from shadow

  // --- Fleet resilience (supervisor / checkpoint / fault storm) ----------
  std::uint64_t retried = 0;      ///< completions served by a failover shard
  std::uint64_t failed = 0;       ///< admitted but terminally failed
  std::uint64_t crashes = 0;      ///< storm crash events (subset of failed)
  std::uint64_t rolled_back = 0;  ///< completions undone by a restore
  std::uint64_t checkpoints = 0;  ///< verified-clean checkpoints taken
  std::uint64_t restores = 0;     ///< checkpoint restores performed
  std::uint64_t checkpoint_digest_failures = 0;  ///< must stay 0
  std::uint64_t degradations = 0; ///< health transitions into degraded
  std::uint64_t quarantines = 0;  ///< health transitions into quarantined

  /// Completions served first-try on their home shard (the partition's
  /// derived member: served + retried == completed).
  std::uint64_t served() const noexcept { return completed - retried; }

  void merge(const SloStats& o) noexcept {
    offered += o.offered;
    completed += o.completed;
    rejected += o.rejected;
    latency.merge(o.latency);
    service_cycles += o.service_cycles;
    queue_cycles += o.queue_cycles;
    stall_cycles += o.stall_cycles;
    slo_violations += o.slo_violations;
    collections += o.collections;
    scheduled_collections += o.scheduled_collections;
    gc_cycle_total += o.gc_cycle_total;
    gc_concurrent_cycles += o.gc_concurrent_cycles;
    recovered_collections += o.recovered_collections;
    oracle_failures += o.oracle_failures;
    read_mismatches += o.read_mismatches;
    retried += o.retried;
    failed += o.failed;
    crashes += o.crashes;
    rolled_back += o.rolled_back;
    checkpoints += o.checkpoints;
    restores += o.restores;
    checkpoint_digest_failures += o.checkpoint_digest_failures;
    degradations += o.degradations;
    quarantines += o.quarantines;
  }
};

}  // namespace hwgc
