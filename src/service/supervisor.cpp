#include "service/supervisor.hpp"

namespace hwgc {

ShardSupervisor::ShardSupervisor(std::size_t shards,
                                 const ResilienceConfig& cfg)
    : cfg_(cfg), shards_(shards) {}

void ShardSupervisor::transition(std::size_t shard, Cycle at, ShardHealth to,
                                 const char* reason) {
  Shard& s = shards_[shard];
  ++events_total_;
  if (events_.size() < kMaxEvents) {
    events_.push_back({at, shard, s.state, to, reason});
  }
  s.state = to;
}

ShardSupervisor::Verdict ShardSupervisor::observe(std::size_t shard,
                                                  Cycle now,
                                                  const HealthSignals& sig) {
  Verdict v;
  Shard& s = shards_[shard];
  if (s.state == ShardHealth::kQuarantined) return v;  // awaiting restore

  const std::uint64_t esc = sig.escalations - s.esc_base;
  const std::uint64_t fails = sig.failures - s.fail_base;
  const bool burn =
      cfg_.slo_window > 0 && sig.window_size >= cfg_.slo_window &&
      static_cast<double>(sig.window_violations) >=
          cfg_.slo_burn * static_cast<double>(sig.window_size);
  if (burn) v.reset_window = true;

  // Unrecoverable collections (or heap exhaustion past recovery) trump
  // everything: the shard's lane already failed requests; quarantine now.
  if (fails > 0) {
    transition(shard, now, ShardHealth::kQuarantined, "unrecoverable");
    v.quarantined = true;
    return v;
  }
  if (esc >= cfg_.quarantine_after) {
    transition(shard, now, ShardHealth::kQuarantined, "escalation-storm");
    v.quarantined = true;
    return v;
  }

  switch (s.state) {
    case ShardHealth::kHealthy:
      if (esc >= cfg_.degrade_after) {
        transition(shard, now, ShardHealth::kDegraded, "escalations");
        s.esc_base = sig.escalations;
        v.degraded = true;
      } else if (burn) {
        transition(shard, now, ShardHealth::kDegraded, "slo-burn");
        s.esc_base = sig.escalations;
        v.degraded = true;
      }
      break;
    case ShardHealth::kDegraded:
      if (burn) {
        transition(shard, now, ShardHealth::kQuarantined, "slo-burn");
        v.quarantined = true;
      }
      break;
    case ShardHealth::kRestoring:
      if (now >= s.ready &&
          sig.completions - s.probation_base >= cfg_.probation) {
        transition(shard, now, ShardHealth::kHealthy, "probation-complete");
        s.esc_base = sig.escalations;
        v.recovered = true;
      }
      break;
    case ShardHealth::kQuarantined:
      break;
  }
  return v;
}

bool ShardSupervisor::crash(std::size_t shard, Cycle now, const char* reason) {
  Shard& s = shards_[shard];
  if (s.state == ShardHealth::kQuarantined) return false;
  transition(shard, now, ShardHealth::kQuarantined, reason);
  return true;
}

void ShardSupervisor::restored(std::size_t shard, Cycle ready,
                               const HealthSignals& sig) {
  Shard& s = shards_[shard];
  transition(shard, ready, ShardHealth::kRestoring, "checkpoint-restore");
  s.ready = ready;
  s.esc_base = sig.escalations;
  s.fail_base = sig.failures;
  s.probation_base = sig.completions;
}

}  // namespace hwgc
