// ShardSupervisor — per-shard health tracking and the fleet's resilience
// policy knobs.
//
// Health state machine (DESIGN.md §14):
//
//             escalations / SLO burn            escalations / burn again
//   healthy ───────────────────────► degraded ─────────────────────────┐
//      ▲                                │                              │
//      │ probation complete             │ unrecoverable / crash        ▼
//   restoring ◄──── restore ──────  quarantined ◄──────────── (any state on
//      │                                                       crash or un-
//      └── new failure ────────────────►                       recoverable)
//
// Signals are harvested by the service's conductor at join points only
// (the shard's lane is drained before its counters are read), so the
// machine is fed the exact same sequence on the serial and the shard-pool
// engine — health transitions are part of the bit-reproducible output.
//
//   * escalations — recovered collections that needed more than a clean
//     first attempt (retry, core deconfiguration, sequential fallback);
//     degrade_after of them since the last transition degrade the shard,
//     quarantine_after quarantine it.
//   * failures — unrecoverable collections / heap exhaustion observed on
//     the shard's lane, and storm crash events: immediate quarantine.
//   * SLO burn — a sliding window of recent completions; when the window
//     is full and the violating fraction reaches slo_burn, a healthy shard
//     degrades and an already-degraded shard is quarantined.
//
// Quarantine is always answered by a checkpoint restore: the conductor
// restores the shard's last verified-clean checkpoint on its lane, marks
// the shard restoring until the restore's virtual completion time
// (restore_ready), fails in-flight arrivals over to healthy shards
// meanwhile, and re-promotes to healthy after `probation` clean
// completions. Every transition lands in the event log (capped) and in
// the per-shard SloStats counters the JSONL report exposes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace hwgc {

enum class ShardHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded,
  kQuarantined,
  kRestoring,
};

constexpr const char* to_string(ShardHealth h) noexcept {
  switch (h) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kQuarantined: return "quarantined";
    case ShardHealth::kRestoring: return "restoring";
  }
  return "?";
}

/// Severity order for fleet aggregation (worst state wins): healthy <
/// degraded < restoring < quarantined.
constexpr int severity(ShardHealth h) noexcept {
  switch (h) {
    case ShardHealth::kHealthy: return 0;
    case ShardHealth::kDegraded: return 1;
    case ShardHealth::kRestoring: return 2;
    case ShardHealth::kQuarantined: return 3;
  }
  return 0;
}

/// Fleet-resilience knobs (ServiceConfig::resilience).
struct ResilienceConfig {
  /// Master switch: health supervision, checkpointing, restore-on-
  /// quarantine, failover routing. Off keeps the service byte-identical
  /// to the pre-resilience engine.
  bool supervise = false;

  /// Checkpoint every Nth verified-clean collection cycle (0 keeps only
  /// the initial checkpoint taken at construction).
  std::uint32_t checkpoint_interval = 8;

  /// Virtual cycles a checkpoint restore occupies the shard.
  Cycle restore_cost = 20'000;

  /// Escalated recoveries since the last transition that degrade /
  /// quarantine the shard.
  std::uint32_t degrade_after = 2;
  std::uint32_t quarantine_after = 4;

  /// SLO-burn window: completions tracked per shard; when the window is
  /// full and violations >= slo_burn * window, the shard degrades (or, if
  /// already degraded, is quarantined). slo_window == 0 disables.
  std::uint32_t slo_window = 64;
  double slo_burn = 0.5;

  /// Clean completions a restoring shard must serve to re-earn healthy.
  std::uint32_t probation = 32;

  /// Per-request deadline budget on queueing delay (backlog + retry
  /// backoff): a candidate shard whose backlog would blow the budget is
  /// skipped, and a request no candidate can meet is shed. 0 disables.
  /// Setting it enables supervision implicitly.
  Cycle deadline_cycles = 0;

  /// Failover: candidates tried after the home shard (deterministic
  /// (home + k) % shards order) before the request is shed.
  std::uint32_t max_retries = 2;

  /// Extra arrival delay per failover hop (retry backoff), charged to the
  /// request's queue latency.
  Cycle retry_backoff = 200;

  bool enabled() const noexcept {
    return supervise || deadline_cycles > 0;
  }
};

/// Cumulative per-shard counters the conductor harvests at a join point.
struct HealthSignals {
  std::uint64_t escalations = 0;  ///< escalated recoveries (monotone)
  std::uint64_t failures = 0;     ///< unrecoverable collections (monotone)
  std::uint64_t completions = 0;  ///< completed requests (monotone)
  std::uint64_t window_size = 0;  ///< SLO-burn window occupancy
  std::uint64_t window_violations = 0;
};

struct HealthEvent {
  Cycle at = 0;
  std::size_t shard = 0;
  ShardHealth from = ShardHealth::kHealthy;
  ShardHealth to = ShardHealth::kHealthy;
  std::string reason;
};

class ShardSupervisor {
 public:
  ShardSupervisor(std::size_t shards, const ResilienceConfig& cfg);

  ShardHealth state(std::size_t shard) const {
    return shards_[shard].state;
  }

  /// Virtual cycle the shard's pending restore completes (meaningful in
  /// kRestoring; 0 before the first restore).
  Cycle restore_ready(std::size_t shard) const {
    return shards_[shard].ready;
  }

  /// May a request arriving at `arrival` be routed to the shard?
  /// Quarantined shards never serve; restoring shards serve once the
  /// restore has completed in virtual time (probation traffic).
  bool serving(std::size_t shard, Cycle arrival) const {
    const Shard& s = shards_[shard];
    if (s.state == ShardHealth::kQuarantined) return false;
    if (s.state == ShardHealth::kRestoring && arrival < s.ready) return false;
    return true;
  }

  /// What observe() decided; the conductor mirrors it into SloStats and
  /// performs the restore.
  struct Verdict {
    bool degraded = false;     ///< entered kDegraded
    bool quarantined = false;  ///< entered kQuarantined — restore now
    bool recovered = false;    ///< probation complete, back to kHealthy
    bool reset_window = false; ///< clear the shard's SLO-burn window
  };

  /// Feeds freshly harvested signals at virtual time `now` and runs the
  /// state machine.
  Verdict observe(std::size_t shard, Cycle now, const HealthSignals& sig);

  /// External kill (fault-storm crash schedule): quarantines the shard
  /// regardless of state. Returns true when a restore is now required
  /// (false only if the shard was already quarantined).
  bool crash(std::size_t shard, Cycle now, const char* reason);

  /// The conductor restored the shard's checkpoint; it serves again (on
  /// probation) for arrivals at or after `ready`.
  void restored(std::size_t shard, Cycle ready, const HealthSignals& sig);

  /// Transition log, in occurrence order (capped at kMaxEvents; the total
  /// including dropped ones is events_total()).
  const std::vector<HealthEvent>& events() const noexcept { return events_; }
  std::uint64_t events_total() const noexcept { return events_total_; }

  static constexpr std::size_t kMaxEvents = 4096;

 private:
  struct Shard {
    ShardHealth state = ShardHealth::kHealthy;
    Cycle ready = 0;
    std::uint64_t esc_base = 0;   ///< escalations at last transition
    std::uint64_t fail_base = 0;  ///< failures at last restore
    std::uint64_t probation_base = 0;  ///< completions at last restore
  };

  void transition(std::size_t shard, Cycle at, ShardHealth to,
                  const char* reason);

  ResilienceConfig cfg_;
  std::vector<Shard> shards_;
  std::vector<HealthEvent> events_;
  std::uint64_t events_total_ = 0;
};

}  // namespace hwgc
