#include "service/traffic.hpp"

#include <algorithm>
#include <stdexcept>

namespace hwgc {

TrafficModel::TrafficModel(const TrafficConfig& cfg, std::size_t shards)
    : cfg_(cfg), shards_(shards), rng_(cfg.seed) {
  if (shards_ == 0) {
    throw std::invalid_argument("TrafficModel: need at least one shard");
  }
  if (cfg_.sessions == 0) {
    throw std::invalid_argument("TrafficModel: need at least one session");
  }
  if (cfg_.allocate_sixteenths + cfg_.read_sixteenths +
          cfg_.release_sixteenths > 16) {
    throw std::invalid_argument(
        "TrafficModel: request-kind mix exceeds 16/16");
  }
  if (!cfg_.open_loop) session_ready_.assign(cfg_.sessions, 0);
}

Request TrafficModel::draw() {
  Request r;
  r.id = next_id_++;
  r.session = static_cast<std::uint32_t>(rng_.below(cfg_.sessions));
  r.shard = r.session % shards_;

  const std::uint64_t mix = rng_.below(16);
  if (mix < cfg_.allocate_sixteenths) {
    r.kind = RequestKind::kAllocate;
  } else if (mix < cfg_.allocate_sixteenths + cfg_.read_sixteenths) {
    r.kind = RequestKind::kRead;
  } else if (mix < cfg_.allocate_sixteenths + cfg_.read_sixteenths +
                       cfg_.release_sixteenths) {
    r.kind = RequestKind::kRelease;
  } else {
    r.kind = RequestKind::kMutate;
  }

  if (cfg_.open_loop) {
    // Seeded-uniform interarrival in [1, 2*mean - 1], mean scaled by load.
    const double load = cfg_.load > 0.0 ? cfg_.load : 1.0;
    const Cycle mean = std::max<Cycle>(
        1, static_cast<Cycle>(static_cast<double>(cfg_.mean_interarrival) /
                              load));
    clock_ += 1 + rng_.below(2 * mean > 1 ? 2 * mean - 1 : 1);
    r.arrival = clock_;
  }
  return r;
}

void TrafficModel::finalize_closed(Request& r, Cycle shard_free) {
  if (cfg_.open_loop) return;
  // Closed loop: the session waits for its previous request AND its
  // shard's backlog to drain before issuing the next one.
  r.arrival = std::max(session_ready_[r.session], shard_free);
  session_ready_[r.session] = r.arrival + 1;
}

Request TrafficModel::next(const std::vector<Cycle>& shard_next_free) {
  Request r = draw();
  if (!cfg_.open_loop) {
    finalize_closed(r, r.shard < shard_next_free.size()
                           ? shard_next_free[r.shard]
                           : 0);
  }
  return r;
}

}  // namespace hwgc
