// Seeded request-stream generator for the heap service.
//
// Models the traffic a multi-tenant runtime fleet actually serves:
// sessions (think: user connections) pinned to shards by affinity, each
// issuing allocate / mutate / read / release requests. The write-side
// kinds are executed through the shard's ShadowMutator, so the shard keeps
// a host-side model of its expected object graph and ANY number of
// collection cycles can be validated against it; reads go through
// ShadowMutator::probe, so every read request doubles as a data-integrity
// check.
//
// Arrival model, in simulated cycles:
//   * open loop   — arrivals are independent of completions; interarrival
//     times are seeded-uniform with mean mean_interarrival / load. Load
//     above the service rate builds real queues (and, with admission
//     control, real rejections).
//   * closed loop — a session's next request arrives when its shard has
//     drained (arrival = the shard's next-free time): classic
//     one-outstanding-request-per-session behavior, no queueing.
//
// Everything is derived from `seed`; the stream is bit-reproducible, which
// the determinism suite asserts across scheduler policies.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "workloads/mutator.hpp"

namespace hwgc {

enum class RequestKind : std::uint8_t {
  kAllocate = 0,  ///< session creates state: allocation-biased churn
  kMutate,        ///< session updates state: link/unlink/data writes
  kRead,          ///< read-only probe, verified against the shadow graph
  kRelease,       ///< session drops state: release-biased churn
  kCount
};

constexpr const char* to_string(RequestKind k) noexcept {
  switch (k) {
    case RequestKind::kAllocate: return "allocate";
    case RequestKind::kMutate: return "mutate";
    case RequestKind::kRead: return "read";
    case RequestKind::kRelease: return "release";
    case RequestKind::kCount: break;
  }
  return "?";
}

struct Request {
  std::uint64_t id = 0;
  std::uint32_t session = 0;
  std::size_t shard = 0;
  RequestKind kind = RequestKind::kMutate;
  Cycle arrival = 0;
};

struct TrafficConfig {
  std::uint64_t seed = 1;

  /// Concurrent sessions; each is pinned to shard (session % shards).
  std::uint32_t sessions = 64;

  bool open_loop = true;

  /// Open loop: mean interarrival = mean_interarrival / load. load > 1
  /// overdrives the fleet; load < 1 leaves it idle between requests.
  double load = 1.0;
  Cycle mean_interarrival = 400;

  /// Mutator steps a write-kind request executes (allocate and release
  /// requests run the same count with their own churn bias inside
  /// ShadowMutator; the kind mix below shapes the aggregate).
  std::uint32_t steps_per_request = 4;

  /// Request-kind mix, in units of 1/16 (must sum to <= 16; the remainder
  /// goes to kMutate).
  std::uint32_t allocate_sixteenths = 5;
  std::uint32_t read_sixteenths = 5;
  std::uint32_t release_sixteenths = 2;

  /// Deterministic service-cost model, in cycles.
  Cycle request_base_cost = 60;  ///< fixed per-request overhead
  Cycle step_cost = 24;          ///< per executed mutator step
  Cycle read_word_cost = 2;      ///< per data word a read probe touches

  /// Shape of the per-shard object graphs.
  ShadowMutator::Config mutator{};
};

class TrafficModel {
 public:
  TrafficModel(const TrafficConfig& cfg, std::size_t shards);

  /// Draws the next request. `shard_next_free[s]` is the cycle shard s
  /// drains its current backlog (closed-loop arrivals latch onto it).
  /// Equivalent to draw() + finalize_closed() — kept for callers that hold
  /// the whole fleet view.
  Request next(const std::vector<Cycle>& shard_next_free);

  /// First half of next(): everything derived from the RNG alone (session,
  /// shard affinity, kind, open-loop arrival). In closed-loop mode the
  /// returned request is NOT finished — its arrival must be latched with
  /// finalize_closed() once the target shard's drain time is known. The
  /// split lets the parallel conductor draw requests without a fleet-wide
  /// synchronization point: only the target shard's lane must be joined
  /// (DESIGN.md §13).
  Request draw();

  /// Second half for closed-loop mode: latches `r.arrival` onto
  /// max(session ready time, `shard_free` of r.shard) and advances the
  /// session gate. No-op in open-loop mode (draw() already set arrival).
  void finalize_closed(Request& r, Cycle shard_free);

  /// Service cost of executing `steps` mutator steps + `read_words` probe
  /// words for one request.
  Cycle service_cost(std::uint32_t steps, std::size_t read_words) const {
    return cfg_.request_base_cost + Cycle{steps} * cfg_.step_cost +
           Cycle{read_words} * cfg_.read_word_cost;
  }

  const TrafficConfig& config() const noexcept { return cfg_; }

 private:
  TrafficConfig cfg_;
  std::size_t shards_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
  Cycle clock_ = 0;                      ///< open-loop arrival clock
  std::vector<Cycle> session_ready_;     ///< closed-loop per-session gate
};

}  // namespace hwgc
