// Detected-fault abort of a collection cycle.
//
// The paper's coprocessor has no fault story: the lock protocol and
// termination condition are argued correct assuming fault-free hardware.
// The fault-injection subsystem (src/fault/) adds the detection machinery
// the paper lacks; every detector reports through this exception so the
// recovery layer can distinguish *why* a cycle was aborted and choose the
// right escalation (retry, core deconfiguration, sequential fallback).
//
// CollectionAbort derives from std::runtime_error, so pre-existing callers
// that treat any collection failure as fatal keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

#include "sim/types.hpp"

namespace hwgc {

/// Why a collection cycle was aborted. Each value corresponds to one
/// detector in the fault-tolerance machinery.
enum class AbortReason : std::uint8_t {
  kWatchdog,     ///< per-collection cycle budget exceeded (hang / lost wakeup)
  kChecksum,     ///< header ECC mismatch on a header load
  kWildAccess,   ///< word access outside the simulated memory
  kWildPointer,  ///< loaded pointer field outside both semispaces
  kOverflow,     ///< evacuation ran past the tospace end
  kVerifier,     ///< end-of-cycle heap verifier rejected the result
  kUnrecoverable,///< recovery exhausted every escalation level
};

constexpr const char* to_string(AbortReason r) noexcept {
  switch (r) {
    case AbortReason::kWatchdog: return "watchdog";
    case AbortReason::kChecksum: return "checksum";
    case AbortReason::kWildAccess: return "wild-access";
    case AbortReason::kWildPointer: return "wild-pointer";
    case AbortReason::kOverflow: return "overflow";
    case AbortReason::kVerifier: return "verifier";
    case AbortReason::kUnrecoverable: return "unrecoverable";
  }
  return "?";
}

class CollectionAbort : public std::runtime_error {
 public:
  CollectionAbort(AbortReason reason, const std::string& what,
                  CoreId suspect = kNoCore, Cycle at = 0)
      : std::runtime_error(what), reason_(reason), suspect_(suspect), at_(at) {}

  AbortReason reason() const noexcept { return reason_; }

  /// Core the detector suspects caused the abort (kNoCore when the fault
  /// could not be localized). Logical core id within the aborting attempt.
  CoreId suspect() const noexcept { return suspect_; }

  /// Clock cycle at which the abort was raised (0 when outside the clock).
  Cycle at() const noexcept { return at_; }

 private:
  AbortReason reason_;
  CoreId suspect_;
  Cycle at_;
};

}  // namespace hwgc
