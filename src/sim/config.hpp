// Configuration of the simulated coprocessor, memory system and heap.
//
// Every knob the paper's evaluation turns is a field here:
//   - number of GC cores (Figure 5/6 sweeps 1..16),
//   - memory latency (Figure 6 adds an artificial +20 cycles),
//   - memory bandwidth (Section VII names it as the second scalability
//     limit),
//   - header-FIFO capacity (Section V-D, the `cup` discussion in VI-B),
//   - the mark-bit early-read optimization the authors propose for javac.
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace hwgc {

/// Per-cycle core step order. The prototype arbitrates simultaneous SB
/// claims by static priority, which the simulator realizes by stepping
/// cores in index order (kFixedPriority). The other policies exist for
/// schedule-exploration testing: the algorithm's correctness must not
/// depend on which interleaving the arbiter happens to pick, so the fuzz
/// harness sweeps them all (src/fuzz/).
enum class SchedulePolicyKind : std::uint8_t {
  kFixedPriority = 0,  ///< index order — the paper's static prioritization
  kRotating,           ///< round-robin rotation of the highest-priority core
  kRandom,             ///< fresh seeded random permutation every cycle
  kAdversarial,        ///< cores holding an SB lock always step last
};

constexpr const char* to_string(SchedulePolicyKind k) noexcept {
  switch (k) {
    case SchedulePolicyKind::kFixedPriority: return "fixed";
    case SchedulePolicyKind::kRotating: return "rotating";
    case SchedulePolicyKind::kRandom: return "random";
    case SchedulePolicyKind::kAdversarial: return "adversarial";
  }
  return "?";
}

/// Timing model of the off-chip memory (DDR-SDRAM module in the prototype).
struct MemoryConfig {
  /// Cycles between a *body* request being accepted by the scheduler and
  /// its data being available. Body accesses are highly sequential
  /// (Section V-D), so they stream from open DRAM rows; the prototype's
  /// effective latency is "a few clock cycles" (Section VI-B).
  /// Figure 6 uses base + 20.
  Cycle latency = 4;

  /// Completion latency of *header* transactions (both 32-bit header words
  /// move in one transaction over the 64-bit DDR interface). Headers show
  /// no spatial locality (Section V-D), so nearly every access pays a DRAM
  /// row activation on top of the base latency.
  Cycle header_latency = 10;

  /// Requests the memory system can start servicing per core clock cycle.
  /// Models the DDR interface running at 4x the 25 MHz core clock.
  std::uint32_t bandwidth_per_cycle = 4;

  /// Maximum outstanding split transactions accepted from the cores.
  /// The paper allows 4 x N pending requests; the scheduler additionally
  /// respects this global cap (0 = derive 4 x num_cores automatically).
  std::uint32_t max_outstanding = 0;

  /// Header cache (Section VII, future work 2): an on-chip direct-mapped
  /// tag store for header transactions. Hot headers (javac's symbol hubs,
  /// re-checked fromspace headers) then complete in
  /// header_cache_hit_latency cycles instead of paying the DRAM row miss.
  /// 0 disables the cache — the paper's measured configuration.
  std::uint32_t header_cache_entries = 0;
  Cycle header_cache_hit_latency = 2;

  /// Schedule-exploration fuzzing: maximum extra completion latency added
  /// per accepted request, uniform in [0, latency_jitter] from a stream
  /// seeded with `jitter_seed`. Nonzero jitter makes completions within a
  /// latency class retire out of acceptance order, probing orderings a
  /// real DRAM controller (bank conflicts, refresh) could produce. 0 keeps
  /// the prototype's constant per-class latencies.
  Cycle latency_jitter = 0;
  std::uint64_t jitter_seed = 0;
};

/// Configuration of the multi-core GC coprocessor.
struct CoprocessorConfig {
  /// Number of GC cores, 1..16 in the prototype. One core behaves exactly
  /// like sequential Cheney (Section VI-B).
  std::uint32_t num_cores = 8;

  /// Capacity (entries) of the on-chip gray-header FIFO. Each entry caches
  /// one evacuated tospace header (attributes + backlink). The prototype
  /// supports up to 32k entries. 0 disables the FIFO entirely.
  std::uint32_t header_fifo_capacity = 32 * 1024;

  /// Sub-object work distribution (Section VII, future work 1): the data
  /// areas of large objects are split into cache-line-sized stripes that
  /// idle cores copy in parallel through the SB's stripe dispenser. Off by
  /// default, as in the paper's measured configuration.
  bool subobject_copy = false;

  /// Stripe length in words (16 words = one 64-byte cache line).
  Word stripe_words = 16;

  /// Objects whose data area has at least this many words are striped.
  Word stripe_threshold = 64;

  /// Mark-bit early-read optimization (Section VI-B, javac discussion):
  /// read the mark bit without acquiring the header lock first, and only
  /// perform a locking read when the bit is clear. Off by default, as in
  /// the paper's measured configuration.
  bool markbit_early_read = false;

  /// Per-cycle core step order (see SchedulePolicyKind). Anything other
  /// than kFixedPriority deviates from the prototype's arbitration and is
  /// meant for correctness fuzzing, not for performance measurement.
  SchedulePolicyKind schedule = SchedulePolicyKind::kFixedPriority;

  /// Seed for the kRandom permutation stream (ignored by other policies).
  std::uint64_t schedule_seed = 0;

  /// Record a per-cycle signal trace (costly; for debugging/inspection).
  bool enable_trace = false;

  /// Event-driven fast-forward of the clock loop: when every core is
  /// quiescent (done, fail-stopped, or stalled on a condition only a
  /// future memory completion / fault window / watchdog boundary can
  /// change) the clock jumps to the next such event instead of ticking.
  /// Observationally invisible — GcCycleStats, ScheduleTrace, SignalTrace
  /// and watchdog behavior are bit-identical to the ticked run (enforced
  /// by tests/test_fast_forward.cpp; invariants in DESIGN.md §13).
  /// Automatically bypassed when a telemetry bus is attached or a
  /// non-fixed schedule policy is active.
  bool fast_forward = true;

  /// Watchdog: abort a collection cycle that exceeds this many clock
  /// cycles. With a fault-free coprocessor this is a modeling-bug backstop
  /// (the algorithm is deadlock-free); under fault injection the recovery
  /// layer tightens it to a budget derived from the live bytes so hangs
  /// (dropped transactions, fail-stopped cores, stuck busy bits) are
  /// detected in bounded time.
  Cycle watchdog_cycles = 4'000'000'000ULL;

  /// TESTING BACKDOOR: restart the main processor as soon as the cores
  /// halt, without waiting for the store buffers to drain — deliberately
  /// violating the Section V-E restart condition so the Runtime-level
  /// drain check can be regression-tested. Never set outside tests.
  bool skip_store_drain_for_test = false;
};

/// Hardware fault injection (src/fault/). A nonzero `events` derives a
/// seeded FaultPlan: each event targets one fault class (memory drop /
/// duplicate / delay / single-bit corrupt per port class, SB lock-grant
/// delay, stuck ScanState busy bit, core transient stall or fail-stop) on
/// one physical core. The class values are FaultKind (fault/fault_plan.hpp);
/// `class_mask` selects which classes the plan may draw from (bit i enables
/// FaultKind i).
struct FaultConfig {
  std::uint64_t seed = 0;

  /// Number of fault events to derive; 0 disables injection entirely.
  std::uint32_t events = 0;

  /// Probability that an event is a *hard* (persistent) fault that re-fires
  /// on every retry until its target core is deconfigured. The remainder
  /// are transients that fire at most once across the whole collection.
  double persistent_fraction = 0.25;

  /// Bitmask over FaultKind values (fault/fault_plan.hpp). Default: all.
  std::uint32_t class_mask = 0xffffffffu;

  /// Scale of fault trigger points: memory-transaction triggers are drawn
  /// from [0, trigger_scale), cycle triggers from [0, 8 * trigger_scale).
  std::uint32_t trigger_scale = 512;

  bool enabled() const noexcept { return events > 0; }
};

/// Detection-and-recovery machinery (src/fault/recovery.hpp): watchdog
/// budget derived from live bytes, header ECC verification, end-of-cycle
/// heap verification, and the abort-and-retry / core-deconfiguration /
/// sequential-fallback escalation ladder. Fromspace is intact until the
/// flip, so an aborted cycle is recovered by restoring the pre-cycle image
/// and re-running the whole collection.
struct RecoveryConfig {
  /// Force the recovery wrapper even with an empty fault plan (useful to
  /// measure the detection machinery's overhead in fault-free runs).
  bool enabled = false;

  /// Watchdog budget = base + per_live_word * live words of the cycle.
  /// Generous upper bounds: a healthy collection is far below them (even a
  /// single core at full memory latency stays under ~60 cycles/word, and
  /// the base absorbs injected delay/stall windows), while a hang is still
  /// detected in time proportional to the live set.
  Cycle watchdog_base = 25'000;
  Cycle watchdog_per_live_word = 128;

  /// Aborted attempts allowed per core configuration before escalating
  /// (deconfigure the suspect core, or fall back to sequential Cheney).
  std::uint32_t max_retries = 2;

  /// Allow dropping a suspect core and re-running on N-1 cores.
  bool allow_deconfigure = true;

  /// Allow the last-resort escalation: run the software sequential Cheney
  /// collector (the main processor collects; the coprocessor is bypassed).
  bool allow_sequential_fallback = true;

  /// Run the end-of-cycle heap verifier after every attempt — the
  /// crash-consistency check before the mutator is restarted.
  bool verify_heap = true;

  /// Maintain and check the per-word header checksum (ECC-style): cores
  /// verify both header words on every header load consumption.
  bool header_ecc = true;
};

/// Heap geometry.
struct HeapConfig {
  /// Words per semispace. The paper sizes the heap at twice the minimal
  /// heap (Section VI-B); generators compute this from their live set.
  std::uint32_t semispace_words = 1u << 22;  // 16 MiB of 32-bit words
};

/// Bundle of all knobs for one simulation run.
struct SimConfig {
  CoprocessorConfig coprocessor;
  MemoryConfig memory;
  HeapConfig heap;
  FaultConfig fault;
  RecoveryConfig recovery;

  /// Human-readable one-line summary, used by bench harness headers.
  std::string summary() const {
    std::string s = "cores=" + std::to_string(coprocessor.num_cores) +
                    " lat=" + std::to_string(memory.latency) +
                    " bw=" + std::to_string(memory.bandwidth_per_cycle) +
                    " fifo=" + std::to_string(coprocessor.header_fifo_capacity) +
                    " earlyread=" + (coprocessor.markbit_early_read ? "on" : "off");
    if (coprocessor.schedule != SchedulePolicyKind::kFixedPriority) {
      s += std::string(" sched=") + to_string(coprocessor.schedule);
    }
    if (memory.latency_jitter != 0) {
      s += " jitter=" + std::to_string(memory.latency_jitter);
    }
    if (fault.enabled()) {
      s += " faults=" + std::to_string(fault.events) + "@" +
           std::to_string(fault.seed);
    }
    return s;
  }
};

}  // namespace hwgc
