// Hardware performance counters.
//
// The FPGA prototype exposes "a range of hardware performance counters"
// through its monitoring framework (Section VI-A). We reproduce the exact
// taxonomy of Table II — per-core stall counters for the two pointer locks,
// the header-lock CAM and the four memory buffers — plus the worklist-empty
// counter behind Table I.
//
// The profiler (src/profile/stall_class.hpp) folds these per-reason
// counters into its coarser exclusive StallClass taxonomy via
// class_of(StallReason) — that map must stay total, so any new
// StallReason added here needs a StallClass assignment there.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace hwgc {

/// Reasons a GC core can be stalled for one clock cycle. A core is stalled
/// for at most one reason per cycle (the first blocking condition it hits),
/// matching how the prototype's counters attribute cycles.
enum class StallReason : std::uint8_t {
  kNone = 0,
  kScanLock,     ///< waiting for the SB scan-pointer lock
  kFreeLock,     ///< waiting for the SB free-pointer lock
  kHeaderLock,   ///< header-lock CAM reported a conflict
  kBodyLoad,     ///< body-load buffer data not yet available
  kBodyStore,    ///< body-store buffer still busy with the previous store
  kHeaderLoad,   ///< header-load buffer data not yet available
  kHeaderStore,  ///< header-store buffer still busy
  kBarrier,      ///< waiting at a synchronizing micro-instruction
  kFault,        ///< injected transient stall / fail-stop (src/fault/)
  kCount
};

constexpr std::size_t kStallReasonCount =
    static_cast<std::size_t>(StallReason::kCount);

constexpr std::string_view to_string(StallReason r) noexcept {
  switch (r) {
    case StallReason::kNone: return "none";
    case StallReason::kScanLock: return "scan-lock";
    case StallReason::kFreeLock: return "free-lock";
    case StallReason::kHeaderLock: return "header-lock";
    case StallReason::kBodyLoad: return "body-load";
    case StallReason::kBodyStore: return "body-store";
    case StallReason::kHeaderLoad: return "header-load";
    case StallReason::kHeaderStore: return "header-store";
    case StallReason::kBarrier: return "barrier";
    case StallReason::kFault: return "fault";
    case StallReason::kCount: break;
  }
  return "?";
}

/// Per-core cycle accounting for one collection cycle.
struct CoreCounters {
  std::array<Cycle, kStallReasonCount> stalls{};
  Cycle busy_cycles = 0;      ///< cycles spent executing (not stalled)
  Cycle idle_cycles = 0;      ///< cycles spinning on an empty worklist
  Cycle objects_scanned = 0;  ///< gray objects this core blackened
  Cycle objects_evacuated = 0;
  Cycle pointers_processed = 0;
  Cycle fifo_hits = 0;    ///< scan headers served from the header FIFO
  Cycle fifo_misses = 0;  ///< scan headers that required a memory load

  void add_stall(StallReason r) noexcept {
    ++stalls[static_cast<std::size_t>(r)];
  }
  Cycle stall(StallReason r) const noexcept {
    return stalls[static_cast<std::size_t>(r)];
  }
  /// Saturating sum: a counter driven near the Cycle ceiling (hardware
  /// counters latch at all-ones) must not wrap the total back to a small
  /// number — a wrapped total would fool the watchdog's activity monitor
  /// into seeing "progress".
  Cycle total_stalls() const noexcept {
    Cycle sum = 0;
    for (auto s : stalls) {
      if (s > ~Cycle{0} - sum) return ~Cycle{0};
      sum += s;
    }
    return sum;
  }
};

/// Whole-coprocessor statistics for one collection cycle. This is what the
/// bench harness turns into the paper's tables and figures.
struct GcCycleStats {
  Cycle total_cycles = 0;          ///< wall clock of the collection cycle
  Cycle worklist_empty_cycles = 0; ///< cycles during which scan == free
  std::uint64_t objects_copied = 0;
  std::uint64_t words_copied = 0;
  std::uint64_t pointers_forwarded = 0;
  std::uint64_t fifo_overflows = 0;  ///< evacuations that bypassed the FIFO
  std::uint64_t mem_requests = 0;
  std::uint64_t fifo_hits = 0;
  std::uint64_t fifo_misses = 0;

  /// Cycles spent between the last core halting and the store buffers
  /// draining — the Section V-E restart condition window.
  Cycle drain_cycles = 0;

  /// True when every store had committed at the moment the main processor
  /// was (logically) restarted. Always true unless the
  /// skip_store_drain_for_test backdoor defeated the drain wait; the
  /// Runtime refuses to restart the mutator when this is false.
  bool restart_stores_drained = true;

  /// Fault events that fired during this cycle (0 without injection).
  std::uint64_t faults_fired = 0;

  /// Pauseless snapshot collector (src/concurrent_mutator/) barrier and
  /// reconciliation counters; zero for every other collector family.
  std::uint64_t snapshot_stores = 0;       ///< stores diverted mid-cycle
  std::uint64_t reconciliation_repairs = 0;  ///< log records replayed
  std::uint64_t safe_point_waits = 0;      ///< mutator park events served

  std::vector<CoreCounters> per_core;

  /// Lock-order audit findings; must be empty (DESIGN.md invariant 6).
  std::vector<std::string> lock_order_violations;

  /// Fraction of cycles with an empty worklist — Table I. Clamped to
  /// [0, 1]: the empty-cycle counter is only incremented during the scan
  /// phase, but an aborted or hand-assembled stats object could hold
  /// inconsistent counters and a fraction > 1 would corrupt downstream
  /// aggregation (JSONL schema validation rejects it).
  double worklist_empty_fraction() const noexcept {
    if (total_cycles == 0) return 0.0;
    if (worklist_empty_cycles >= total_cycles) return 1.0;
    return static_cast<double>(worklist_empty_cycles) /
           static_cast<double>(total_cycles);
  }

  /// Mean per-core stall count for one reason — Table II columns.
  double mean_stall(StallReason r) const noexcept {
    if (per_core.empty()) return 0.0;
    Cycle sum = 0;
    for (const auto& c : per_core) sum += c.stall(r);
    return static_cast<double>(sum) / static_cast<double>(per_core.size());
  }
};

}  // namespace hwgc
