// Deterministic pseudo-random number generation for workload synthesis.
//
// All heap-shape generators must be exactly reproducible from a seed so that
// a benchmark row can be regenerated bit-for-bit (DESIGN.md invariant 7).
// We use SplitMix64 for seeding and xoshiro256** for the stream; both are
// tiny, fast and well analyzed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hwgc {

/// SplitMix64 step; used to expand a single 64-bit seed into stream state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1c0ffee5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire-style rejection-free reduction is overkill here; the modulo
    // bias for bounds << 2^64 is immaterial for workload shaping.
    return (*this)() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform01() < p; }

  /// Raw generator state, for checkpoint/restore of seeded components
  /// (service-layer shard checkpoints). A restored state resumes the exact
  /// stream — the bit-reproducibility invariant extends across restores.
  constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hwgc
