// Deterministic keyed task pool — the host-side execution engine behind
// parallel shard simulation (DESIGN.md §13).
//
// The heap service's shards are independent simulators: each owns its
// Runtime, ShadowMutator and scheduler bookkeeping, and is bit-deterministic
// from its seed. Cross-shard host parallelism therefore preserves the
// serial semantics as long as
//   (1) tasks for the SAME key run in submission order, one at a time
//       (per-key FIFO), and
//   (2) the submitter joins a key before reading that shard's state.
// The pool enforces (1); HeapService's conductor loop enforces (2) by
// joining exactly at its data dependencies (closed-loop arrival sampling,
// admission control, fleet observation).
//
// With `threads <= 1` the pool degenerates to inline execution on the
// caller's thread — byte-for-byte the serial engine, with identical
// exception propagation. This is the reference mode the parallel mode is
// tested against (tests/test_service_parallel.cpp).
//
// Exception contract (parallel mode): the first exception thrown by a task
// is captured; every task still queued afterwards is discarded (mirroring
// serial execution, where a throw prevents all later work from starting),
// and the exception is rethrown from the next join()/join_all() once the
// pool has fully drained — so no worker can be touching shard state while
// the caller unwinds.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hwgc {

class ShardPool {
 public:
  using Task = std::function<void()>;

  /// `keys` is the number of independent FIFO lanes (one per shard);
  /// `threads <= 1` selects inline (serial) execution.
  ShardPool(std::size_t keys, std::size_t threads) : state_(keys) {
    if (threads > 1) {
      workers_.reserve(threads);
      for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker(); });
      }
    }
  }

  ~ShardPool() {
    if (workers_.empty()) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  bool parallel() const noexcept { return !workers_.empty(); }
  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task on `key`'s FIFO lane. Inline mode runs it before
  /// returning (exceptions propagate to the caller directly).
  void submit(std::size_t key, Task task) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      KeyState& st = state_[key];
      st.queue.push_back(std::move(task));
      ++st.pending;
      ++total_pending_;
      if (!st.scheduled && !st.running) {
        st.scheduled = true;
        ready_.push_back(key);
      }
    }
    cv_work_.notify_one();
  }

  /// Blocks until every task submitted on `key` has finished. Rethrows a
  /// captured task exception (after a full drain; see contract above).
  void join(std::size_t key) {
    if (workers_.empty()) return;
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      if (failure_) return total_pending_ == 0;
      return state_[key].pending == 0;
    });
    rethrow_locked(lk);
  }

  /// Blocks until every submitted task has finished; rethrows a captured
  /// task exception.
  void join_all() {
    if (workers_.empty()) return;
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return total_pending_ == 0; });
    rethrow_locked(lk);
  }

 private:
  struct KeyState {
    std::deque<Task> queue;
    std::size_t pending = 0;  ///< queued + running
    bool running = false;
    bool scheduled = false;  ///< on ready_ awaiting a worker
  };

  void rethrow_locked(std::unique_lock<std::mutex>& lk) {
    if (!failure_) return;
    std::exception_ptr e = failure_;
    failure_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }

  void worker() {
    for (;;) {
      std::size_t key = 0;
      Task task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return stop_ || !ready_.empty(); });
        if (stop_) return;
        key = ready_.front();
        ready_.pop_front();
        KeyState& st = state_[key];
        st.scheduled = false;
        if (failure_) {
          // Discard the lane: serial execution would never have reached
          // these tasks either.
          const std::size_t n = st.queue.size();
          st.queue.clear();
          st.pending -= n;
          total_pending_ -= n;
          if (st.pending == 0 || total_pending_ == 0) cv_done_.notify_all();
          continue;
        }
        task = std::move(st.queue.front());
        st.queue.pop_front();
        st.running = true;
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!failure_) failure_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        KeyState& st = state_[key];
        st.running = false;
        --st.pending;
        --total_pending_;
        if (!st.queue.empty() && !st.scheduled) {
          st.scheduled = true;
          ready_.push_back(key);
          cv_work_.notify_one();
        }
        if (st.pending == 0 || total_pending_ == 0) cv_done_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<KeyState> state_;
  std::deque<std::size_t> ready_;  ///< keys with work and no worker
  std::size_t total_pending_ = 0;
  bool stop_ = false;
  std::exception_ptr failure_;
  std::vector<std::thread> workers_;
};

}  // namespace hwgc
