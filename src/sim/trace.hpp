// Signal tracing — software stand-in for the prototype's on-FPGA monitoring
// framework (Section VI-A: "trace up to 32 internal signals in each clock
// cycle", streamed over a dedicated Gigabit Ethernet link).
//
// We write named signal samples to an in-memory ring and optionally to a
// CSV file for offline analysis, mirroring their measurement flow.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace hwgc {

/// One sampled signal transition.
struct TraceEvent {
  Cycle cycle = 0;
  std::uint16_t signal = 0;
  std::uint64_t value = 0;
};

/// Records signal samples with bounded memory. Disabled tracers compile to
/// near-no-ops on the hot path.
class SignalTrace {
 public:
  static constexpr std::size_t kMaxSignals = 32;  // as in the prototype

  SignalTrace() = default;

  /// Registers a signal name; returns its id. At most kMaxSignals signals
  /// may be registered, matching the hardware monitor's channel count.
  std::uint16_t register_signal(std::string name) {
    names_.push_back(std::move(name));
    return static_cast<std::uint16_t>(names_.size() - 1);
  }

  void enable(std::size_t max_events = 1u << 20) {
    enabled_ = true;
    max_events_ = max_events;
  }
  void disable() { enabled_ = false; }
  bool enabled() const noexcept { return enabled_; }

  void sample(Cycle cycle, std::uint16_t signal, std::uint64_t value) {
    if (!enabled_) return;
    if (events_.size() >= max_events_) events_.pop_front();
    events_.push_back(TraceEvent{cycle, signal, value});
  }

  const std::deque<TraceEvent>& events() const noexcept { return events_; }
  const std::vector<std::string>& signal_names() const noexcept {
    return names_;
  }
  void clear() {
    events_.clear();
    notes_.clear();
  }

  /// Timestamped free-form annotation — the software counterpart of the
  /// monitor's event markers. The fault subsystem notes every injected
  /// fault, abort, deconfiguration and fallback here so a trace tells the
  /// full recovery story alongside the signal samples.
  void note(Cycle cycle, std::string text) {
    if (!enabled_) return;
    if (notes_.size() >= max_events_) notes_.pop_front();
    notes_.emplace_back(cycle, std::move(text));
  }
  const std::deque<std::pair<Cycle, std::string>>& notes() const noexcept {
    return notes_;
  }

  /// Dumps the trace as CSV (cycle,signal,value). Returns false on I/O
  /// failure.
  bool write_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "cycle,signal,value\n";
    for (const auto& e : events_) {
      const auto& name = e.signal < names_.size()
                             ? names_[e.signal]
                             : std::string("sig") + std::to_string(e.signal);
      out << e.cycle << ',' << name << ',' << e.value << '\n';
    }
    return static_cast<bool>(out);
  }

  /// Dumps the trace as a Value Change Dump for waveform viewers
  /// (GTKWave etc.) — the natural habitat of an FPGA prototype's signals.
  /// Signals are emitted as 64-bit vectors. Returns false on I/O failure.
  bool write_vcd(const std::string& path,
                 const std::string& module = "hwgc") const {
    std::ofstream out(path);
    if (!out) return false;
    out << "$timescale 1ns $end\n$scope module " << module << " $end\n";
    for (std::size_t i = 0; i < names_.size(); ++i) {
      out << "$var wire 64 " << vcd_id(i) << ' ' << names_[i] << " $end\n";
    }
    out << "$upscope $end\n$enddefinitions $end\n";
    Cycle current = ~Cycle{0};
    for (const auto& e : events_) {
      if (e.cycle != current) {
        current = e.cycle;
        out << '#' << current << '\n';
      }
      out << 'b';
      for (int bit = 63; bit >= 0; --bit) {
        out << ((e.value >> bit) & 1u);
      }
      out << ' ' << vcd_id(e.signal) << '\n';
    }
    return static_cast<bool>(out);
  }

 private:
  /// Short printable VCD identifier for a signal index.
  static std::string vcd_id(std::size_t i) {
    std::string id;
    do {
      id.push_back(static_cast<char>('!' + i % 94));
      i /= 94;
    } while (i != 0);
    return id;
  }

  bool enabled_ = false;
  std::size_t max_events_ = 1u << 20;
  std::deque<TraceEvent> events_;
  std::deque<std::pair<Cycle, std::string>> notes_;
  std::vector<std::string> names_;
};

}  // namespace hwgc
