// Signal tracing — software stand-in for the prototype's on-FPGA monitoring
// framework (Section VI-A: "trace up to 32 internal signals in each clock
// cycle", streamed over a dedicated Gigabit Ethernet link).
//
// We write named signal samples to an in-memory ring and optionally to a
// CSV file for offline analysis, mirroring their measurement flow.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace hwgc {

/// One sampled signal transition.
struct TraceEvent {
  Cycle cycle = 0;
  std::uint16_t signal = 0;
  std::uint64_t value = 0;
};

/// Records signal samples with bounded memory. Disabled tracers compile to
/// near-no-ops on the hot path.
class SignalTrace {
 public:
  static constexpr std::size_t kMaxSignals = 32;  // as in the prototype

  SignalTrace() = default;

  /// Registers a signal name; returns its id. At most kMaxSignals signals
  /// may be registered, matching the hardware monitor's channel count.
  std::uint16_t register_signal(std::string name) {
    names_.push_back(std::move(name));
    return static_cast<std::uint16_t>(names_.size() - 1);
  }

  void enable(std::size_t max_events = 1u << 20) {
    enabled_ = true;
    max_events_ = max_events;
  }
  void disable() { enabled_ = false; }
  bool enabled() const noexcept { return enabled_; }

  void sample(Cycle cycle, std::uint16_t signal, std::uint64_t value) {
    if (!enabled_) return;
    if (events_.size() >= max_events_) events_.pop_front();
    events_.push_back(TraceEvent{cycle, signal, value});
  }

  const std::deque<TraceEvent>& events() const noexcept { return events_; }
  const std::vector<std::string>& signal_names() const noexcept {
    return names_;
  }
  void clear() {
    events_.clear();
    notes_.clear();
  }

  /// Timestamped free-form annotation — the software counterpart of the
  /// monitor's event markers. The fault subsystem notes every injected
  /// fault, abort, deconfiguration and fallback here so a trace tells the
  /// full recovery story alongside the signal samples.
  void note(Cycle cycle, std::string text) {
    if (!enabled_) return;
    if (notes_.size() >= max_events_) notes_.pop_front();
    notes_.emplace_back(cycle, std::move(text));
  }
  const std::deque<std::pair<Cycle, std::string>>& notes() const noexcept {
    return notes_;
  }

  /// Dumps the trace as CSV (cycle,signal,value,note). Signal samples
  /// leave the note column empty; notes become their own rows with signal
  /// `note` and an empty value, merged into the sample stream by cycle so
  /// fault/recovery annotations land next to the samples they explain.
  /// Returns false on I/O failure (checked after an explicit flush).
  bool write_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "cycle,signal,value,note\n";
    auto ev = events_.begin();
    auto nt = notes_.begin();
    const auto put_event = [&] {
      const auto& name = ev->signal < names_.size()
                             ? names_[ev->signal]
                             : std::string("sig") + std::to_string(ev->signal);
      out << ev->cycle << ',' << name << ',' << ev->value << ",\n";
      ++ev;
    };
    const auto put_note = [&] {
      out << nt->first << ",note,," << csv_quote(nt->second) << '\n';
      ++nt;
    };
    while (ev != events_.end() && nt != notes_.end()) {
      if (nt->first < ev->cycle) {
        put_note();
      } else {
        put_event();
      }
    }
    while (ev != events_.end()) put_event();
    while (nt != notes_.end()) put_note();
    out.flush();
    return static_cast<bool>(out);
  }

  /// Dumps the trace as a Value Change Dump for waveform viewers
  /// (GTKWave etc.) — the natural habitat of an FPGA prototype's signals.
  /// Signals are emitted as 64-bit vectors. Returns false on I/O failure.
  bool write_vcd(const std::string& path,
                 const std::string& module = "hwgc") const {
    std::ofstream out(path);
    if (!out) return false;
    out << "$timescale 1ns $end\n$scope module " << module << " $end\n";
    for (std::size_t i = 0; i < names_.size(); ++i) {
      out << "$var wire 64 " << vcd_id(i) << ' ' << names_[i] << " $end\n";
    }
    out << "$upscope $end\n$enddefinitions $end\n";
    Cycle current = ~Cycle{0};
    auto nt = notes_.begin();
    const auto emit_notes_up_to = [&](Cycle cycle) {
      // Notes ride along as $comment events at their cycle's timestamp —
      // the only annotation mechanism VCD viewers tolerate mid-dump.
      for (; nt != notes_.end() && nt->first <= cycle; ++nt) {
        if (nt->first != current) {
          current = nt->first;
          out << '#' << current << '\n';
        }
        out << "$comment " << vcd_sanitize(nt->second) << " $end\n";
      }
    };
    for (const auto& e : events_) {
      emit_notes_up_to(e.cycle);
      if (e.cycle != current) {
        current = e.cycle;
        out << '#' << current << '\n';
      }
      out << 'b';
      for (int bit = 63; bit >= 0; --bit) {
        out << ((e.value >> bit) & 1u);
      }
      out << ' ' << vcd_id(e.signal) << '\n';
    }
    emit_notes_up_to(~Cycle{0});
    out.flush();
    return static_cast<bool>(out);
  }

 private:
  /// RFC-4180 quoting: the field is wrapped in double quotes and internal
  /// quotes are doubled, so notes with commas/newlines stay one field.
  static std::string csv_quote(const std::string& text) {
    std::string q;
    q.reserve(text.size() + 2);
    q.push_back('"');
    for (char c : text) {
      if (c == '"') q.push_back('"');
      q.push_back(c);
    }
    q.push_back('"');
    return q;
  }

  /// A literal "$end" inside a comment would terminate the $comment block
  /// early and desynchronize the parser; break the token.
  static std::string vcd_sanitize(const std::string& text) {
    std::string s = text;
    for (std::size_t pos = 0; (pos = s.find("$end", pos)) != std::string::npos;
         pos += 5) {
      s.insert(pos + 1, " ");
    }
    return s;
  }

  /// Short printable VCD identifier for a signal index.
  static std::string vcd_id(std::size_t i) {
    std::string id;
    do {
      id.push_back(static_cast<char>('!' + i % 94));
      i /= 94;
    } while (i != 0);
    return id;
  }

  bool enabled_ = false;
  std::size_t max_events_ = 1u << 20;
  std::deque<TraceEvent> events_;
  std::deque<std::pair<Cycle, std::string>> notes_;
  std::vector<std::string> names_;
};

}  // namespace hwgc
