// Fundamental scalar types shared by every hwgc module.
//
// The prototype in the paper is a 32-bit word machine: the heap is an array
// of 32-bit words, pointers are word addresses, and all coprocessor
// datapaths are 32 bits wide. We mirror that exactly so that header
// encodings, object sizes and address arithmetic carry over unchanged.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hwgc {

/// One 32-bit machine word, the unit of all heap storage.
using Word = std::uint32_t;

/// A word address into the simulated memory (not a byte address).
/// Address 0 is reserved as the null pointer.
using Addr = std::uint32_t;

/// A clock-cycle count. The FPGA prototype runs for millions of cycles per
/// collection; 64 bits keeps every counter overflow-free.
using Cycle = std::uint64_t;

/// Identifier of a coprocessor core, 0-based. The paper's "Core 1" is id 0.
using CoreId = std::uint32_t;

/// Null pointer value inside the simulated heap.
inline constexpr Addr kNullPtr = 0;

/// Sentinel CoreId meaning "no core" (e.g. no suspect identified by the
/// watchdog's per-core activity monitor).
inline constexpr CoreId kNoCore = ~CoreId{0};

/// Number of header words per object (attributes word + link word).
inline constexpr Word kHeaderWords = 2;

}  // namespace hwgc
