#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

namespace hwgc {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

Cycle percentile(const std::vector<Cycle>& sorted, double p) {
  if (sorted.empty()) return 0;
  // Nearest-rank on the sorted samples.
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

std::string baseline_key(const std::string& benchmark, double scale,
                         std::uint64_t seed) {
  return benchmark + "|" + fmt_double(scale) + "|" + std::to_string(seed);
}

/// Stall-reason JSONL field name: "stall_scan_lock" etc.
std::string stall_field(StallReason r) {
  std::string name = "stall_";
  for (char c : std::string(to_string(r))) {
    name += c == '-' ? '_' : c;
  }
  return name;
}

}  // namespace

void MetricsRegistry::record(const Key& key, const SimConfig& cfg,
                             const GcCycleStats& s) {
  Aggregate& a = aggregates_[key];
  if (a.config.empty()) a.config = cfg.summary();
  a.cycle_samples.push_back(s.total_cycles);
  a.worklist_empty_sum += s.worklist_empty_fraction();
  for (std::size_t r = 0; r < kStallReasonCount; ++r) {
    a.stall_sum[r] += s.mean_stall(static_cast<StallReason>(r));
  }
  a.objects_copied += s.objects_copied;
  a.words_copied += s.words_copied;
  a.pointers_forwarded += s.pointers_forwarded;
  a.mem_requests += s.mem_requests;
  a.fifo_hits += s.fifo_hits;
  a.fifo_misses += s.fifo_misses;
  a.fifo_overflows += s.fifo_overflows;
  a.faults_fired += s.faults_fired;
  a.drain_cycles += s.drain_cycles;
  a.snapshot_stores += s.snapshot_stores;
  a.reconciliation_repairs += s.reconciliation_repairs;
  a.safe_point_waits += s.safe_point_waits;
}

void MetricsRegistry::set_sequential_baseline(const std::string& benchmark,
                                              double scale,
                                              std::uint64_t seed,
                                              double mean_cycles) {
  explicit_baselines_[baseline_key(benchmark, scale, seed)] = mean_cycles;
}

double MetricsRegistry::baseline_mean(const Key& key) const {
  const auto it =
      explicit_baselines_.find(baseline_key(key.benchmark, key.scale, key.seed));
  if (it != explicit_baselines_.end()) return it->second;
  Key one = key;
  one.cores = 1;
  const auto agg = aggregates_.find(one);
  if (agg == aggregates_.end() || agg->second.cycle_samples.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (Cycle c : agg->second.cycle_samples) sum += static_cast<double>(c);
  return sum / static_cast<double>(agg->second.cycle_samples.size());
}

std::string MetricsRegistry::to_jsonl(const std::string& suite) const {
  std::string out;
  for (const auto& [key, a] : aggregates_) {
    std::vector<Cycle> sorted = a.cycle_samples;
    std::sort(sorted.begin(), sorted.end());
    const double n = static_cast<double>(sorted.size());
    double mean = 0.0;
    for (Cycle c : sorted) mean += static_cast<double>(c);
    mean = sorted.empty() ? 0.0 : mean / n;
    const double base = baseline_mean(key);
    const double speedup = mean > 0.0 && base > 0.0 ? base / mean : 0.0;

    out += "{\"schema\":\"hwgc-bench-v1\"";
    out += ",\"suite\":\"" + suite + "\"";
    out += ",\"benchmark\":\"" + key.benchmark + "\"";
    out += ",\"cores\":" + std::to_string(key.cores);
    out += ",\"scale\":" + fmt_double(key.scale);
    out += ",\"seed\":" + std::to_string(key.seed);
    out += ",\"config\":\"" + a.config + "\"";
    out += ",\"samples\":" + std::to_string(sorted.size());
    out += ",\"cycles_min\":" +
           std::to_string(sorted.empty() ? 0 : sorted.front());
    out += ",\"cycles_p50\":" + std::to_string(percentile(sorted, 0.50));
    out += ",\"cycles_mean\":" + fmt_double(mean);
    out += ",\"cycles_p99\":" + std::to_string(percentile(sorted, 0.99));
    out += ",\"cycles_max\":" +
           std::to_string(sorted.empty() ? 0 : sorted.back());
    out += ",\"speedup_vs_sequential\":" + fmt_double(speedup);
    out += ",\"worklist_empty_fraction\":" +
           fmt_double(sorted.empty() ? 0.0 : a.worklist_empty_sum / n);
    out += ",\"drain_cycles\":" + std::to_string(a.drain_cycles);
    out += ",\"objects_copied\":" + std::to_string(a.objects_copied);
    out += ",\"words_copied\":" + std::to_string(a.words_copied);
    out += ",\"pointers_forwarded\":" + std::to_string(a.pointers_forwarded);
    out += ",\"mem_requests\":" + std::to_string(a.mem_requests);
    out += ",\"fifo_hits\":" + std::to_string(a.fifo_hits);
    out += ",\"fifo_misses\":" + std::to_string(a.fifo_misses);
    out += ",\"fifo_overflows\":" + std::to_string(a.fifo_overflows);
    out += ",\"faults_fired\":" + std::to_string(a.faults_fired);
    for (std::size_t r = 0; r < kStallReasonCount; ++r) {
      if (static_cast<StallReason>(r) == StallReason::kNone) continue;
      out += ",\"" + stall_field(static_cast<StallReason>(r)) +
             "\":" + fmt_double(sorted.empty() ? 0.0 : a.stall_sum[r] / n);
    }
    out += ",\"snapshot_stores\":" + std::to_string(a.snapshot_stores);
    out += ",\"reconciliation_repairs\":" +
           std::to_string(a.reconciliation_repairs);
    out += ",\"safe_point_waits\":" + std::to_string(a.safe_point_waits);
    out += "}\n";
  }
  return out;
}

bool MetricsRegistry::write_jsonl(const std::string& path,
                                  const std::string& suite) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string jsonl = to_jsonl(suite);
  f.write(jsonl.data(), static_cast<std::streamsize>(jsonl.size()));
  f.flush();
  return f.good();
}

// --- schema validation ------------------------------------------------------

/// Minimal scanner for the flat one-level JSON objects the registry emits:
/// {"key":value,...} with string or number values, no nesting. Returns
/// false with a diagnostic on malformed input.
bool parse_flat_json_object(
    const std::string& line,
    std::vector<std::pair<std::string, std::string>>& kv, std::string* error) {
  std::size_t i = 0;
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg + " at offset " + std::to_string(i);
    }
    return false;
  };
  const auto skip_ws = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  };
  const auto parse_string = [&](std::string& out) {
    if (line[i] != '"') return false;
    ++i;
    out.clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        if (i + 1 >= line.size()) return false;
        out += line[i + 1];
        i += 2;
      } else {
        out += line[i++];
      }
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return fail("expected '{'");
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return true;  // empty object
  while (true) {
    skip_ws();
    std::string key;
    if (i >= line.size() || !parse_string(key)) return fail("expected key string");
    skip_ws();
    if (i >= line.size() || line[i] != ':') return fail("expected ':'");
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(value)) return fail("unterminated string value");
      value = "\"" + value + "\"";  // marker: string-typed
    } else {
      const std::size_t start = i;
      while (i < line.size() && (std::isdigit(static_cast<unsigned char>(line[i])) ||
                                 line[i] == '-' || line[i] == '+' ||
                                 line[i] == '.' || line[i] == 'e' ||
                                 line[i] == 'E')) {
        ++i;
      }
      if (i == start) return fail("expected number");
      value = line.substr(start, i - start);
    }
    kv.emplace_back(key, value);
    skip_ws();
    if (i >= line.size()) return fail("unterminated object");
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') break;
    return fail("expected ',' or '}'");
  }
  return true;
}

namespace {

struct FieldSpec {
  const char* name;
  bool is_string;
};

// The hwgc-bench-v1 schema: required fields and their types, in emission
// order. New fields may be appended; none may be renamed or removed.
constexpr FieldSpec kSchemaV1[] = {
    {"schema", true},       {"suite", true},
    {"benchmark", true},    {"cores", false},
    {"scale", false},       {"seed", false},
    {"config", true},       {"samples", false},
    {"cycles_min", false},  {"cycles_p50", false},
    {"cycles_mean", false}, {"cycles_p99", false},
    {"cycles_max", false},  {"speedup_vs_sequential", false},
    {"worklist_empty_fraction", false},
    {"drain_cycles", false},
    {"objects_copied", false},
    {"words_copied", false},
    {"pointers_forwarded", false},
    {"mem_requests", false},
    {"fifo_hits", false},
    {"fifo_misses", false},
    {"fifo_overflows", false},
    {"faults_fired", false},
    {"stall_scan_lock", false},
    {"stall_free_lock", false},
    {"stall_header_lock", false},
    {"stall_body_load", false},
    {"stall_body_store", false},
    {"stall_header_load", false},
    {"stall_header_store", false},
    {"stall_barrier", false},
    {"stall_fault", false},
    {"snapshot_stores", false},
    {"reconciliation_repairs", false},
    {"safe_point_waits", false},
};

}  // namespace

bool validate_bench_jsonl_line(const std::string& line, std::string* error) {
  std::vector<std::pair<std::string, std::string>> kv;
  if (!parse_flat_json_object(line, kv, error)) return false;
  const auto find = [&](const std::string& key) -> const std::string* {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  for (const FieldSpec& f : kSchemaV1) {
    const std::string* v = find(f.name);
    if (v == nullptr) {
      if (error != nullptr) *error = std::string("missing field \"") + f.name + "\"";
      return false;
    }
    const bool is_string = !v->empty() && v->front() == '"';
    if (is_string != f.is_string) {
      if (error != nullptr) {
        *error = std::string("field \"") + f.name + "\" has the wrong type";
      }
      return false;
    }
  }
  if (*find("schema") != "\"hwgc-bench-v1\"") {
    if (error != nullptr) *error = "schema is not hwgc-bench-v1";
    return false;
  }
  const auto num = [&](const char* key) {
    return std::strtod(find(key)->c_str(), nullptr);
  };
  if (num("cores") < 1) {
    if (error != nullptr) *error = "cores must be >= 1";
    return false;
  }
  if (num("samples") < 1) {
    if (error != nullptr) *error = "samples must be >= 1";
    return false;
  }
  const double mn = num("cycles_min"), p50 = num("cycles_p50"),
               p99 = num("cycles_p99"), mx = num("cycles_max");
  if (!(mn <= p50 && p50 <= p99 && p99 <= mx)) {
    if (error != nullptr) {
      *error = "cycle percentiles not ordered (min<=p50<=p99<=max)";
    }
    return false;
  }
  const double wef = num("worklist_empty_fraction");
  if (wef < 0.0 || wef > 1.0) {
    if (error != nullptr) *error = "worklist_empty_fraction outside [0,1]";
    return false;
  }
  // Pauseless barrier accounting: every reconciliation repair replays a
  // logged mid-cycle store, so repairs can never exceed the stores the
  // barrier diverted.
  if (num("reconciliation_repairs") > num("snapshot_stores")) {
    if (error != nullptr) {
      *error = "reconciliation_repairs exceeds snapshot_stores";
    }
    return false;
  }
  return true;
}

bool validate_bench_jsonl_file(const std::string& path,
                               std::vector<std::string>* errors) {
  std::ifstream f(path);
  if (!f) {
    if (errors != nullptr) errors->push_back("cannot open " + path);
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  std::size_t records = 0;
  bool ok = true;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++records;
    std::string err;
    if (!validate_bench_jsonl_line(line, &err)) {
      ok = false;
      if (errors != nullptr) {
        errors->push_back(path + ":" + std::to_string(lineno) + ": " + err);
      }
    }
  }
  if (records == 0) {
    ok = false;
    if (errors != nullptr) errors->push_back(path + ": no records");
  }
  return ok;
}

}  // namespace hwgc
