// MetricsRegistry — cross-cycle, cross-run aggregation of GcCycleStats,
// emitted as stable-schema JSONL (`BENCH_<name>.json`).
//
// One record aggregates every collection cycle observed for one
// (suite, benchmark, cores, scale, seed) key: min/mean/p50/p99/max pause
// cycles, the Table-II stall-reason breakdown, Table-I worklist-empty
// fraction, FIFO and memory counters, fault/recovery totals, and the
// speedup against the sequential baseline (the 1-core configuration of the
// same workload, which executes the identical algorithm as the software
// sequential Cheney collector — Section VI-B).
//
// The JSONL schema ("hwgc-bench-v1") is flat and append-only: tooling may
// add fields, never rename or remove them, so CI regression guards and the
// BENCH_* trajectory stay parseable forever. validate_bench_jsonl() is the
// single source of truth for the schema and is enforced in tests and CI.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "sim/counters.hpp"

namespace hwgc {

class MetricsRegistry {
 public:
  /// Identity of one measured configuration.
  struct Key {
    std::string benchmark;
    std::uint32_t cores = 0;
    double scale = 0.0;
    std::uint64_t seed = 0;

    bool operator<(const Key& o) const {
      if (benchmark != o.benchmark) return benchmark < o.benchmark;
      if (cores != o.cores) return cores < o.cores;
      if (scale != o.scale) return scale < o.scale;
      return seed < o.seed;
    }
  };

  /// Folds one collection cycle into the aggregate for its key.
  void record(const Key& key, const SimConfig& cfg, const GcCycleStats& s);

  /// Overrides the sequential baseline for one workload; without it, the
  /// registry uses the recorded 1-core configuration of the same
  /// (benchmark, scale, seed) as the baseline.
  void set_sequential_baseline(const std::string& benchmark, double scale,
                               std::uint64_t seed, double mean_cycles);

  std::size_t size() const noexcept { return aggregates_.size(); }
  bool empty() const noexcept { return aggregates_.empty(); }

  /// All records as JSONL, one "hwgc-bench-v1" object per line, sorted by
  /// key (deterministic byte-for-byte for a deterministic run).
  std::string to_jsonl(const std::string& suite) const;

  /// Writes to_jsonl() to `path` (conventionally `BENCH_<suite>.json`).
  /// Returns false on I/O failure.
  bool write_jsonl(const std::string& path, const std::string& suite) const;

 private:
  struct Aggregate {
    std::string config;  ///< SimConfig::summary() of the first sample
    std::vector<Cycle> cycle_samples;
    double worklist_empty_sum = 0.0;
    double stall_sum[kStallReasonCount] = {};
    std::uint64_t objects_copied = 0;
    std::uint64_t words_copied = 0;
    std::uint64_t pointers_forwarded = 0;
    std::uint64_t mem_requests = 0;
    std::uint64_t fifo_hits = 0;
    std::uint64_t fifo_misses = 0;
    std::uint64_t fifo_overflows = 0;
    std::uint64_t faults_fired = 0;
    Cycle drain_cycles = 0;
    /// Pauseless snapshot collector barrier/reconciliation counters
    /// (sim/counters.hpp); stay 0 for every other collector family.
    std::uint64_t snapshot_stores = 0;
    std::uint64_t reconciliation_repairs = 0;
    std::uint64_t safe_point_waits = 0;
  };

  std::map<Key, Aggregate> aggregates_;
  std::map<std::string, double> explicit_baselines_;  ///< serialized key

  double baseline_mean(const Key& key) const;
};

/// Scans one flat one-level JSON object ({"key":value,...}, string or
/// number values, no nesting) into key/value pairs; string values keep a
/// leading '"' marker. Shared by the hwgc-bench-v1 validator below and the
/// hwgc-service-v1 validator (service/service_metrics.hpp). Returns false
/// with a diagnostic on malformed input.
bool parse_flat_json_object(
    const std::string& line,
    std::vector<std::pair<std::string, std::string>>& kv, std::string* error);

/// Validates one JSONL line against the hwgc-bench-v1 schema. Returns true
/// when the line conforms; otherwise false with a diagnostic in `error`.
bool validate_bench_jsonl_line(const std::string& line, std::string* error);

/// Validates a whole BENCH_*.json file. Appends one message per violation;
/// returns true when every line conforms and the file is readable.
bool validate_bench_jsonl_file(const std::string& path,
                               std::vector<std::string>* errors);

}  // namespace hwgc
