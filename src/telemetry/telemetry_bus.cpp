#include "telemetry/telemetry_bus.hpp"

#include <utility>

namespace hwgc {

#ifdef HWGC_NO_TELEMETRY
// Publishing compiled out: only the interning / bookkeeping entry points
// keep real bodies so exporters still link.
void TelemetryBus::begin_collection(std::string) {}
void TelemetryBus::end_collection(Cycle) {}
void TelemetryBus::core_cycle(CoreId, CoreActivity, StallReason) {}
void TelemetryBus::phase(GcPhase) {}
void TelemetryBus::lock_acquired(SbLock, CoreId) {}
void TelemetryBus::lock_released(SbLock, CoreId) {}
void TelemetryBus::instant(std::uint32_t, TelemetryCategory, std::string) {}
void TelemetryBus::counter_sample(std::uint32_t, std::uint64_t) {}
#else

void TelemetryBus::begin_collection(std::string label) {
  if (!enabled_) return;
  epoch_ = cursor_;
  now_ = epoch_;
  TelemetryEpoch e;
  e.begin = epoch_;
  e.end = epoch_;
  e.label = std::move(label);
  epochs_.push_back(std::move(e));
}

void TelemetryBus::end_collection(Cycle local_end) {
  if (!enabled_) return;
  const Cycle global_end = epoch_ + local_end;
  for (CoreId c = 0; c < open_cores_.size(); ++c) close_core_span(c);
  close_lock_span(SbLock::kScan);
  close_lock_span(SbLock::kFree);
  close_phase_span(global_end);
  if (!epochs_.empty()) epochs_.back().end = global_end;
  // One idle cycle of daylight between collections keeps adjacent epochs
  // visually separable in the exported timeline.
  cursor_ = global_end + 1;
  now_ = cursor_;
}

void TelemetryBus::core_cycle(CoreId core, CoreActivity activity,
                              StallReason reason) {
  if (!enabled_) return;
  if (core >= open_cores_.size()) open_cores_.resize(core + 1);
  OpenCoreSpan& st = open_cores_[core];
  if (st.open && st.activity == activity && st.reason == reason &&
      now_ == st.last + 1) {
    st.last = now_;
    return;
  }
  close_core_span(core);
  st.open = true;
  st.activity = activity;
  st.reason = reason;
  st.begin = now_;
  st.last = now_;
}

void TelemetryBus::phase(GcPhase p) {
  if (!enabled_) return;
  close_phase_span(now_);
  open_phase_.open = true;
  open_phase_.phase = p;
  open_phase_.begin = now_;
}

void TelemetryBus::lock_acquired(SbLock lock, CoreId core) {
  if (!enabled_) return;
  OpenLockSpan& st = open_locks_[static_cast<std::size_t>(lock)];
  if (st.open) close_lock_span(lock);  // same-cycle hand-off
  st.open = true;
  st.owner = core;
  st.begin = now_;
}

void TelemetryBus::lock_released(SbLock lock, CoreId core) {
  if (!enabled_) return;
  OpenLockSpan& st = open_locks_[static_cast<std::size_t>(lock)];
  if (st.open && st.owner == core) close_lock_span(lock);
}

void TelemetryBus::instant(std::uint32_t track_id, TelemetryCategory cat,
                           std::string name) {
  if (!enabled_ || !room()) return;
  TelemetryInstant e;
  e.track = track_id;
  e.at = now_;
  e.cat = cat;
  e.name = std::move(name);
  instants_.push_back(std::move(e));
}

void TelemetryBus::counter_sample(std::uint32_t series, std::uint64_t value) {
  if (!enabled_ || !room()) return;
  counters_.push_back(TelemetryCounter{series, now_, value});
}

#endif  // HWGC_NO_TELEMETRY

std::uint32_t TelemetryBus::track(const std::string& name) {
  for (std::uint32_t i = 0; i < track_names_.size(); ++i) {
    if (track_names_[i] == name) return i;
  }
  track_names_.push_back(name);
  return static_cast<std::uint32_t>(track_names_.size() - 1);
}

std::uint32_t TelemetryBus::counter_series(const std::string& name) {
  for (std::uint32_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return i;
  }
  counter_names_.push_back(name);
  return static_cast<std::uint32_t>(counter_names_.size() - 1);
}

std::uint32_t TelemetryBus::core_track(CoreId core) {
  if (core >= core_tracks_.size()) core_tracks_.resize(core + 1, 0);
  if (core_tracks_[core] == 0) {
    core_tracks_[core] = track("core " + std::to_string(core)) + 1;
  }
  return core_tracks_[core] - 1;
}

void TelemetryBus::clear() {
  spans_.clear();
  instants_.clear();
  counters_.clear();
  epochs_.clear();
  track_names_.clear();
  counter_names_.clear();
  core_tracks_.clear();
  open_cores_.clear();
  open_locks_[0] = OpenLockSpan{};
  open_locks_[1] = OpenLockSpan{};
  open_phase_ = OpenPhaseSpan{};
  phase_track_ = 0;
  epoch_ = cursor_ = now_ = 0;
  dropped_ = 0;
}

void TelemetryBus::push_span(std::uint32_t track_id, Cycle begin, Cycle end,
                             TelemetryCategory cat, std::string name) {
  if (!room()) return;
  TelemetrySpan s;
  s.track = track_id;
  s.begin = begin;
  s.end = end;
  s.cat = cat;
  s.name = std::move(name);
  spans_.push_back(std::move(s));
}

void TelemetryBus::close_core_span(CoreId core) {
  if (core >= open_cores_.size()) return;
  OpenCoreSpan& st = open_cores_[core];
  if (!st.open) return;
  st.open = false;
  push_span(core_track(core), st.begin, st.last + 1, TelemetryCategory::kCore,
            activity_name(st.activity, st.reason));
}

void TelemetryBus::close_lock_span(SbLock lock) {
  OpenLockSpan& st = open_locks_[static_cast<std::size_t>(lock)];
  if (!st.open) return;
  st.open = false;
  // A hold acquired and released within one cycle still spans that cycle.
  push_span(track(to_string(lock)), st.begin, now_ + 1,
            TelemetryCategory::kLock,
            "held by core " + std::to_string(st.owner));
}

void TelemetryBus::close_phase_span(Cycle end) {
  if (!open_phase_.open) return;
  open_phase_.open = false;
  if (phase_track_ == 0) phase_track_ = track("coprocessor") + 1;
  push_span(phase_track_ - 1, open_phase_.begin, end, TelemetryCategory::kPhase,
            to_string(open_phase_.phase));
}

std::string TelemetryBus::activity_name(CoreActivity a, StallReason r) {
  switch (a) {
    case CoreActivity::kBusy: return "busy";
    case CoreActivity::kIdle: return "idle";
    case CoreActivity::kStall: return "stall:" + std::string(to_string(r));
  }
  return "?";
}

}  // namespace hwgc
