// TelemetryBus — the unified observability substrate (software counterpart
// of the prototype's Section VI-A monitoring framework, generalized).
//
// Every hardware module publishes *typed* events into one bus:
//   * the Coprocessor publishes collection phases (root evacuation /
//     parallel scan / store drain) and the flip,
//   * each GcCore publishes its per-cycle activity (busy / idle / stalled
//     with a StallReason), which the bus coalesces into spans,
//   * the SyncBlock publishes scan- and free-lock hold spans,
//   * the HeaderFifo publishes occupancy and overflow events,
//   * the MemorySystem publishes its in-flight transaction count,
//   * the fault/recovery layer publishes injected faults, aborts,
//     deconfigurations and fallbacks as instant events.
//
// Exporters (trace_export.hpp) turn the recorded events into a
// Chrome-trace/Perfetto timeline; the MetricsRegistry (metrics.hpp)
// aggregates the per-cycle statistics across collections and runs.
//
// Overhead contract: the bus is pure observation — it never feeds back
// into simulated timing, so cycle counts are bit-identical with and
// without it (tested in tests/test_telemetry.cpp). Publishing is guarded
// by an `enabled()` flag; with HWGC_NO_TELEMETRY defined every publish
// method additionally compiles to an empty inline body.
//
// Time base: each collection runs its own clock from cycle 0. The bus maps
// collection-local cycles onto one monotone global timeline: a
// begin_collection() epoch starts where the previous collection ended, so
// multi-collection runs (Runtime churn, recovery retries) render as one
// continuous trace with every attempt visible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/counters.hpp"
#include "sim/types.hpp"

namespace hwgc {

/// Collection phases published by the coprocessor clock loop.
enum class GcPhase : std::uint8_t { kRootEvacuation, kParallelScan, kDrain };

constexpr const char* to_string(GcPhase p) noexcept {
  switch (p) {
    case GcPhase::kRootEvacuation: return "root-evacuation";
    case GcPhase::kParallelScan: return "parallel-scan";
    case GcPhase::kDrain: return "drain";
  }
  return "?";
}

/// What a core did during one clock cycle (kStall carries a StallReason).
enum class CoreActivity : std::uint8_t { kBusy, kIdle, kStall };

/// The two SB registers whose hold spans are traced.
enum class SbLock : std::uint8_t { kScan = 0, kFree = 1 };

constexpr const char* to_string(SbLock l) noexcept {
  return l == SbLock::kScan ? "scan-lock" : "free-lock";
}

/// Event category, carried into the exported trace's `cat` field.
enum class TelemetryCategory : std::uint8_t {
  kPhase,
  kCore,
  kLock,
  kFifo,
  kMemory,
  kFault,
  kRecovery,
  kRuntime,
};

constexpr const char* to_string(TelemetryCategory c) noexcept {
  switch (c) {
    case TelemetryCategory::kPhase: return "phase";
    case TelemetryCategory::kCore: return "core";
    case TelemetryCategory::kLock: return "lock";
    case TelemetryCategory::kFifo: return "fifo";
    case TelemetryCategory::kMemory: return "memory";
    case TelemetryCategory::kFault: return "fault";
    case TelemetryCategory::kRecovery: return "recovery";
    case TelemetryCategory::kRuntime: return "runtime";
  }
  return "?";
}

/// A duration event on one track, global cycles, half-open [begin, end).
struct TelemetrySpan {
  std::uint32_t track = 0;
  Cycle begin = 0;
  Cycle end = 0;
  TelemetryCategory cat = TelemetryCategory::kCore;
  std::string name;
};

/// A point event on one track.
struct TelemetryInstant {
  std::uint32_t track = 0;
  Cycle at = 0;
  TelemetryCategory cat = TelemetryCategory::kFault;
  std::string name;
};

/// A sample of a named counter series.
struct TelemetryCounter {
  std::uint32_t series = 0;
  Cycle at = 0;
  std::uint64_t value = 0;
};

/// One collection recorded on the bus (for labeling the timeline).
struct TelemetryEpoch {
  Cycle begin = 0;   ///< global cycle the collection's cycle 0 maps to
  Cycle end = 0;     ///< global cycle of the collection's last cycle + 1
  std::string label;
};

class TelemetryBus {
 public:
  TelemetryBus() = default;

  void enable(std::size_t max_events = std::size_t{1} << 20) {
    enabled_ = true;
    max_events_ = max_events;
  }
  void disable() noexcept { enabled_ = false; }
  bool enabled() const noexcept { return enabled_; }

  /// True when the library was built with telemetry publishing compiled in
  /// (i.e. without HWGC_NO_TELEMETRY).
  static constexpr bool compiled_in() noexcept {
#ifdef HWGC_NO_TELEMETRY
    return false;
#else
    return true;
#endif
  }

  // --- time base ----------------------------------------------------------

  /// Opens a new collection epoch: the collection's local cycle 0 maps to
  /// the first free global cycle. Safe to call repeatedly (recovery runs
  /// one epoch per attempt).
  void begin_collection(std::string label);

  /// Clock edge: stamps all events published during this simulated cycle.
  void begin_cycle(Cycle local) noexcept { now_ = epoch_ + local; }

  /// Closes the epoch at local cycle `local_end`: flushes every open core,
  /// lock and phase span and advances the global cursor.
  void end_collection(Cycle local_end);

  /// Global cycle the next published event will be stamped with.
  Cycle now() const noexcept { return now_; }

  // --- track / counter-series interning ------------------------------------

  std::uint32_t track(const std::string& name);
  std::uint32_t counter_series(const std::string& name);
  std::uint32_t core_track(CoreId core);

  const std::vector<std::string>& track_names() const noexcept {
    return track_names_;
  }
  const std::vector<std::string>& counter_names() const noexcept {
    return counter_names_;
  }

  // --- publishers (all no-ops when disabled) -------------------------------

  /// Per-core per-cycle activity; consecutive same-state cycles coalesce
  /// into one span. A clock gap (a fail-stopped core missing its clock)
  /// closes the open span, so holes are visible in the timeline.
  void core_cycle(CoreId core, CoreActivity activity,
                  StallReason reason = StallReason::kNone);

  /// Phase transition at the current cycle; closes the previous phase.
  void phase(GcPhase p);

  void lock_acquired(SbLock lock, CoreId core);
  void lock_released(SbLock lock, CoreId core);

  void instant(std::uint32_t track_id, TelemetryCategory cat,
               std::string name);
  void counter_sample(std::uint32_t series, std::uint64_t value);

  // --- recorded data (exporter interface) ----------------------------------

  const std::vector<TelemetrySpan>& spans() const noexcept { return spans_; }
  const std::vector<TelemetryInstant>& instants() const noexcept {
    return instants_;
  }
  const std::vector<TelemetryCounter>& counters() const noexcept {
    return counters_;
  }
  const std::vector<TelemetryEpoch>& epochs() const noexcept {
    return epochs_;
  }

  /// Events discarded after the max_events cap was hit (never silently:
  /// exporters surface this number).
  std::uint64_t dropped() const noexcept { return dropped_; }

  void clear();

 private:
  struct OpenCoreSpan {
    bool open = false;
    CoreActivity activity = CoreActivity::kBusy;
    StallReason reason = StallReason::kNone;
    Cycle begin = 0;
    Cycle last = 0;
  };
  struct OpenLockSpan {
    bool open = false;
    CoreId owner = kNoCore;
    Cycle begin = 0;
  };
  struct OpenPhaseSpan {
    bool open = false;
    GcPhase phase = GcPhase::kRootEvacuation;
    Cycle begin = 0;
  };

  bool room() noexcept {
    if (spans_.size() + instants_.size() + counters_.size() < max_events_) {
      return true;
    }
    ++dropped_;
    return false;
  }

  void push_span(std::uint32_t track_id, Cycle begin, Cycle end,
                 TelemetryCategory cat, std::string name);
  void close_core_span(CoreId core);
  void close_lock_span(SbLock lock);
  void close_phase_span(Cycle end);

  static std::string activity_name(CoreActivity a, StallReason r);

  bool enabled_ = false;
  std::size_t max_events_ = std::size_t{1} << 20;
  Cycle epoch_ = 0;   ///< global cycle local 0 of the current epoch maps to
  Cycle cursor_ = 0;  ///< first free global cycle after everything recorded
  Cycle now_ = 0;

  std::vector<std::string> track_names_;
  std::vector<std::string> counter_names_;
  std::vector<std::uint32_t> core_tracks_;  ///< core id -> track id (+1; 0 = none)

  std::vector<TelemetrySpan> spans_;
  std::vector<TelemetryInstant> instants_;
  std::vector<TelemetryCounter> counters_;
  std::vector<TelemetryEpoch> epochs_;
  std::uint64_t dropped_ = 0;

  std::vector<OpenCoreSpan> open_cores_;
  OpenLockSpan open_locks_[2];
  OpenPhaseSpan open_phase_;
  std::uint32_t phase_track_ = 0;  ///< +1; 0 = not yet interned
};

}  // namespace hwgc
