#include "telemetry/trace_export.hpp"

#include <cstdio>
#include <fstream>

namespace hwgc {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  append_escaped(out, s);
  return out;
}

/// Catapult reserved color name for a span, keyed off its name/category —
/// this is what makes stall reasons visually distinct in the timeline.
const char* cname_for(const TelemetrySpan& s) {
  if (s.cat == TelemetryCategory::kCore) {
    if (s.name == "busy") return "thread_state_running";
    if (s.name == "idle") return "grey";
    if (s.name == "stall:fault") return "terrible";
    if (s.name == "stall:scan-lock" || s.name == "stall:free-lock" ||
        s.name == "stall:header-lock") {
      return "bad";
    }
    if (s.name == "stall:barrier") return "white";
    return "thread_state_iowait";  // memory waits (loads/stores)
  }
  if (s.cat == TelemetryCategory::kPhase) {
    if (s.name == "root-evacuation") return "startup";
    if (s.name == "parallel-scan") return "rail_animation";
    return "rail_idle";  // drain
  }
  if (s.cat == TelemetryCategory::kLock) return "generic_work";
  if (s.cat == TelemetryCategory::kRecovery) return "cq_build_failed";
  return "generic_work";
}

void u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

}  // namespace

std::string chrome_trace_json(const TelemetryBus& bus,
                              const ChromeTraceOptions& opt) {
  std::string out;
  out.reserve(1u << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Track naming + ordering (one "thread" per track, pid 1).
  const auto& tracks = bus.track_names();
  for (std::uint32_t t = 0; t < tracks.size(); ++t) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    u64(out, t);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(out, tracks[t]);
    out += "\"}}";
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    u64(out, t);
    out += ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":";
    u64(out, t);
    out += "}}";
  }

  // Collection epoch markers.
  for (const TelemetryEpoch& e : bus.epochs()) {
    sep();
    out += "{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":";
    u64(out, e.begin);
    out += ",\"cat\":\"runtime\",\"name\":\"";
    append_escaped(out, e.label.empty() ? std::string("collection")
                                        : e.label);
    out += "\"}";
  }

  for (const TelemetrySpan& s : bus.spans()) {
    sep();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    u64(out, s.track);
    out += ",\"ts\":";
    u64(out, s.begin);
    out += ",\"dur\":";
    u64(out, s.end - s.begin);
    out += ",\"cat\":\"";
    out += to_string(s.cat);
    out += "\",\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"cname\":\"";
    out += cname_for(s);
    out += "\"}";
  }

  for (const TelemetryInstant& i : bus.instants()) {
    sep();
    out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
    u64(out, i.track);
    out += ",\"ts\":";
    u64(out, i.at);
    out += ",\"cat\":\"";
    out += to_string(i.cat);
    out += "\",\"name\":\"";
    append_escaped(out, i.name);
    out += "\"}";
  }

  const auto& counter_names = bus.counter_names();
  for (const TelemetryCounter& c : bus.counters()) {
    sep();
    out += "{\"ph\":\"C\",\"pid\":1,\"ts\":";
    u64(out, c.at);
    out += ",\"name\":\"";
    append_escaped(out, c.series < counter_names.size()
                            ? counter_names[c.series]
                            : "counter " + std::to_string(c.series));
    out += "\",\"args\":{\"value\":";
    u64(out, c.value);
    out += "}}";
  }

  // Legacy SignalTrace merge: the 32-signal monitor's samples as counter
  // series, its notes as global instants. Signal cycles are relative to
  // the first recorded epoch (cycle 0 of the first collection).
  if (opt.signals != nullptr) {
    const Cycle base = bus.epochs().empty() ? 0 : bus.epochs().front().begin;
    const auto& names = opt.signals->signal_names();
    for (const TraceEvent& e : opt.signals->events()) {
      sep();
      out += "{\"ph\":\"C\",\"pid\":1,\"ts\":";
      u64(out, base + e.cycle);
      out += ",\"name\":\"sig:";
      append_escaped(out, e.signal < names.size()
                              ? names[e.signal]
                              : "sig" + std::to_string(e.signal));
      out += "\",\"args\":{\"value\":";
      u64(out, e.value);
      out += "}}";
    }
    for (const auto& [cycle, text] : opt.signals->notes()) {
      sep();
      out += "{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":";
      u64(out, base + cycle);
      out += ",\"cat\":\"note\",\"name\":\"";
      append_escaped(out, text);
      out += "\"}";
    }
  }

  if (bus.dropped() != 0) {
    sep();
    out += "{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":0,"
           "\"cat\":\"telemetry\",\"name\":\"telemetry: ";
    u64(out, bus.dropped());
    out += " event(s) dropped past the max_events cap\"}";
  }

  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const TelemetryBus& bus, const std::string& path,
                        const ChromeTraceOptions& opt) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string json = chrome_trace_json(bus, opt);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.flush();
  return f.good();
}

}  // namespace hwgc
