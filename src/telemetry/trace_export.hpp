// Timeline exporter: renders the TelemetryBus recording as a Chrome-trace
// JSON file loadable in chrome://tracing and ui.perfetto.dev.
//
// Mapping:
//   * every bus track becomes one named thread (tid) under pid 1, ordered
//     by registration: coprocessor phases first, then one track per core,
//     then the scan-/free-lock occupancy tracks and the fault/recovery
//     tracks;
//   * spans become "X" complete events; stall spans carry a `cname` so the
//     stall reason is color-coded (locks red, memory waits yellow, faults
//     dark red, busy green, idle grey);
//   * instants ("i", thread-scoped) mark injected faults, aborts,
//     deconfigurations, fallbacks and the flip;
//   * counter series (gray words, FIFO depth, memory in-flight) become "C"
//     counter events;
//   * optionally, SignalTrace samples and notes are merged in as counter
//     events / global instants (`sig:<name>`), folding the legacy 32-signal
//     monitor into the same timeline.
//
// Output is deterministic byte-for-byte for a deterministic run: integer
// timestamps only (1 simulated clock cycle = 1 trace microsecond), events
// emitted in recording order — the golden-file test relies on this.
#pragma once

#include <string>

#include "sim/trace.hpp"
#include "telemetry/telemetry_bus.hpp"

namespace hwgc {

struct ChromeTraceOptions {
  /// Merge the legacy SignalTrace (samples as counters, notes as global
  /// instants) into the exported timeline. The signal cycles are taken
  /// relative to the bus's first epoch.
  const SignalTrace* signals = nullptr;
};

/// The trace as one JSON string ({"traceEvents":[...]}).
std::string chrome_trace_json(const TelemetryBus& bus,
                              const ChromeTraceOptions& opt = {});

/// Writes chrome_trace_json() to `path`. Returns false on I/O failure.
bool write_chrome_trace(const TelemetryBus& bus, const std::string& path,
                        const ChromeTraceOptions& opt = {});

}  // namespace hwgc
