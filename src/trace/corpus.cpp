#include "trace/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "heap/object_model.hpp"
#include "trace/recorder.hpp"
#include "workloads/lisp.hpp"
#include "workloads/mutator.hpp"

namespace hwgc {

namespace {

/// Deterministic data-word pattern for plan-derived traces (splitmix64 of
/// the node/word coordinates — any fixed function works, it only has to be
/// reproducible and non-trivial so read digests actually verify content).
Word plan_word(std::uint64_t node, std::uint64_t j) {
  std::uint64_t z = node * 0x9e3779b97f4a7c15ull + (j + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Trace trace_from_plan(const GraphPlan& plan, TraceHeader header) {
  // Size the semispace so the fully-rooted build phase cannot exhaust it
  // (every node holds a build root until the graph is wired), with slack
  // for the chunk/LAB collectors' fragmentation on replay.
  std::uint64_t total = 0;
  std::uint64_t live = 0;
  for (const GraphPlan::Node& n : plan.nodes) {
    const std::uint64_t words = object_words(n.pi, n.delta);
    total += words;
    if (!n.garbage) live += words;
  }
  header.semispace_words = std::max(total + total / 2, 2 * live) + 64;

  Runtime rt(header.semispace_words, header.sim_config());
  TraceRecorder recorder(header);
  recorder.attach(rt);

  std::vector<Runtime::Ref> refs;
  refs.reserve(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const GraphPlan::Node& n = plan.nodes[i];
    const Runtime::Ref ref = rt.alloc(n.pi, n.delta);
    const Word words = std::min<Word>(n.delta, 4);
    for (Word j = 0; j < words; ++j) rt.set_data(ref, j, plan_word(i, j));
    refs.push_back(ref);
  }
  for (const GraphPlan::Edge& e : plan.edges) {
    rt.set_ptr(refs[e.src], e.field, refs[e.dst]);
  }

  std::vector<bool> rooted(plan.nodes.size(), false);
  for (std::uint32_t r : plan.roots) rooted[r] = true;

  // Probe a prefix of the roots before dropping the build roots, so the
  // replay verifies pre-collection content too.
  std::size_t probed = 0;
  for (std::uint32_t r : plan.roots) {
    if (probed++ >= 8) break;
    rt.read_probe(refs[r]);
  }
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (!rooted[i]) rt.release(refs[i]);
  }

  rt.collect();

  // Post-collection: reload children through the heap (kLoad ops) and
  // digest-verify them — the replay side proves the collector under test
  // preserved both topology and content.
  std::size_t walked = 0;
  for (std::uint32_t r : plan.roots) {
    if (walked++ >= 4) break;
    const Word pi = rt.pi(refs[r]);
    for (Word f = 0; f < pi; ++f) {
      const Runtime::Ref child = rt.load_ptr(refs[r], f);
      if (child.is_null()) continue;
      rt.read_probe(child);
      rt.release(child);
    }
  }

  rt.collect();

  probed = 0;
  for (std::uint32_t r : plan.roots) {
    if (probed++ >= 8) break;
    rt.read_probe(refs[r]);
  }

  recorder.detach(rt);
  return recorder.take();
}

Trace trace_from_benchmark(BenchmarkId id, double scale, std::uint64_t seed) {
  TraceHeader header;
  header.name = "bench_" + std::string(benchmark_name(id));
  return trace_from_plan(make_benchmark_plan(id, scale, seed), header);
}

Trace trace_from_fuzz_case(const FuzzCase& fc) {
  TraceHeader header;
  header.name = "adversarial";
  header.cores = fc.num_cores;
  header.header_fifo_capacity = fc.header_fifo_capacity;
  header.schedule = fc.schedule;
  header.schedule_seed = fc.schedule_seed;
  header.latency_jitter = fc.latency_jitter;
  header.subobject_copy = fc.subobject_copy;
  header.markbit_early_read = fc.markbit_early_read;
  // fc.fault is deliberately not carried: traces replay under a pluggable
  // collector, which is incompatible with the fault-recovery ladder.
  return trace_from_plan(make_fuzz_plan(fc.graph_seed, fc.graph), header);
}

Trace trace_from_fuzz_seed(std::uint64_t master_seed) {
  return trace_from_fuzz_case(case_from_seed(master_seed));
}

Trace trace_from_churn(std::uint64_t seed, std::size_t steps) {
  TraceHeader header;
  header.name = "churn";
  // Sized with headroom over the mutator's ~48-object live target: the
  // chunk/LAB collectors trade space for lock-free allocation and need
  // roughly 2x the live set before an implicit cycle stops helping.
  header.semispace_words = 2048;
  header.cores = 4;

  Runtime rt(header.semispace_words, header.sim_config());
  TraceRecorder recorder(header);
  recorder.attach(rt);

  ShadowMutator::Config mc;
  mc.seed = seed;
  mc.target_live = 48;
  ShadowMutator mut(mc);

  const std::size_t phase = std::max<std::size_t>(steps / 4, 1);
  for (int p = 0; p < 4; ++p) {
    mut.run(rt, phase);
    for (int k = 0; k < 4; ++k) mut.probe(rt);
    rt.collect();
  }

  recorder.detach(rt);
  return recorder.take();
}

Trace trace_from_lisp(unsigned fib_n, unsigned range_n) {
  TraceHeader header;
  header.name = "lisp";
  // Small enough that evaluation churn triggers implicit exhaustion cycles
  // mid-statement (the interesting case: replay must re-trigger them at the
  // same allocation boundaries), with explicit hints between statements.
  header.semispace_words = 1200;

  Lisp lisp(header.semispace_words, header.sim_config());
  TraceRecorder recorder(header);
  recorder.attach(lisp.runtime());
  for (const std::string& src : Lisp::demo_program(fib_n, range_n)) {
    lisp.run(src);
    lisp.runtime().collect();
  }
  recorder.detach(lisp.runtime());
  return recorder.take();
}

std::vector<Trace> build_corpus() {
  std::vector<Trace> corpus;
  corpus.reserve(13);
  for (BenchmarkId id : all_benchmarks()) {
    // cup's two-level parser table is ~100x wider than the others at equal
    // scale; shrink it so the committed corpus stays a few hundred KB while
    // keeping its very-wide-fanout shape.
    const double scale = id == BenchmarkId::kCup ? 0.0002 : 0.002;
    corpus.push_back(trace_from_benchmark(id, scale));
  }
  const std::uint64_t fuzz_seeds[] = {0xA11CEull, 0xBEEFull, 0xC0FFEEull};
  int n = 0;
  for (std::uint64_t seed : fuzz_seeds) {
    Trace t = trace_from_fuzz_seed(seed);
    t.header.name = "adversarial_" + std::to_string(++n);
    corpus.push_back(std::move(t));
  }
  corpus.push_back(trace_from_churn(7));
  corpus.push_back(trace_from_lisp());
  return corpus;
}

std::size_t write_corpus(const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::size_t written = 0;
  for (const Trace& t : build_corpus()) {
    // Bulky traces (cup's fixed-size parser table) go in the compact binary
    // variant — 25 bytes/op instead of ~90 of JSONL — which also keeps the
    // committed corpus exercising both loader paths.
    const bool binary = t.ops.size() > 100'000;
    const char* ext = binary ? ".bin" : ".jsonl";
    save_trace(dir + "/" + t.header.name + ext, t, binary);
    ++written;
  }
  return written;
}

}  // namespace hwgc
