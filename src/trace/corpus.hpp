// The committed trace corpus (traces/): every canonical workload of the
// repository, recorded once as hwgc-trace-v1 and regenerable bit-for-bit.
//
// Four generator families feed it:
//   * the eight benchmark shapes of the paper (workloads/benchmarks.hpp),
//     recorded at a small scale — shape, not magnitude, is what the replay
//     matrix exercises;
//   * adversarial graphs from the schedule fuzzer's generator (cycles,
//     hubs, huge objects, mid-build mutation), with the fuzz case's
//     hardware knobs carried into the trace header;
//   * shadow-mutator churn (allocate/link/unlink/release across many
//     collection cycles, with digest-verified read probes);
//   * a Lisp interpreter session (the jlisp stand-in running real
//     programs against the Runtime façade).
//
// Every generator is deterministic: regenerating the corpus from the same
// repository state yields byte-identical files — which `tracectl corpus`
// does and the corpus regeneration test proves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracle.hpp"
#include "trace/trace_format.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/graph_plan.hpp"

namespace hwgc {

/// Records a trace that builds the plan's graph through a fresh Runtime:
/// allocate every node (data words seeded deterministically), wire every
/// edge, drop the build roots of everything the plan does not root, then
/// probe, collect, reload and re-probe so the replay exercises reads and
/// explicit cycles over both live and garbage populations. The header's
/// semispace is sized so the fully-rooted build phase cannot exhaust the
/// heap, but explicit collections still run with real garbage to reclaim.
Trace trace_from_plan(const GraphPlan& plan, TraceHeader header);

/// One of the paper's eight benchmark shapes, default corpus scale.
Trace trace_from_benchmark(BenchmarkId id, double scale = 0.002,
                           std::uint64_t seed = 42);

/// Adversarial graph + hardware knobs from a fuzzer master seed
/// (case_from_seed): the graph is hostile by construction and the case's
/// schedule/FIFO/jitter/feature knobs land in the trace header.
Trace trace_from_fuzz_case(const FuzzCase& fc);
Trace trace_from_fuzz_seed(std::uint64_t master_seed);

/// Shadow-mutator churn: `steps` mutation steps with periodic read probes
/// and explicit collections interleaved.
Trace trace_from_churn(std::uint64_t seed, std::size_t steps = 600);

/// A recorded Lisp session (fib + range/sum, scaled down from the demo).
Trace trace_from_lisp(unsigned fib_n = 8, unsigned range_n = 16);

/// The full canonical corpus, in committed order: 8 benchmarks, 3
/// adversarial fuzz graphs, 1 churn, 1 lisp.
std::vector<Trace> build_corpus();

/// Writes the corpus to `<dir>/<name>.jsonl` (or `.bin` for bulky traces);
/// returns the number of files written. Byte-identical on every run
/// (determinism of the generators + canonical serialization).
std::size_t write_corpus(const std::string& dir);

}  // namespace hwgc
