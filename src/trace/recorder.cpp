#include "trace/recorder.hpp"

#include <stdexcept>
#include <string>

namespace hwgc {

TraceRecorder::TraceRecorder(TraceHeader header) {
  trace_.header = std::move(header);
}

void TraceRecorder::attach(Runtime& rt) {
  if (rt.live_roots() != 0) {
    throw std::logic_error(
        "TraceRecorder: recording must start on a runtime without live "
        "roots (" +
        std::to_string(rt.live_roots()) +
        " live) — a trace replays against a fresh runtime");
  }
  const SimConfig& cfg = rt.config();
  trace_.header.semispace_words = rt.heap().capacity_words();
  trace_.header.cores = cfg.coprocessor.num_cores;
  trace_.header.header_fifo_capacity = cfg.coprocessor.header_fifo_capacity;
  trace_.header.schedule = cfg.coprocessor.schedule;
  trace_.header.schedule_seed = cfg.coprocessor.schedule_seed;
  trace_.header.latency_jitter = cfg.memory.latency_jitter;
  trace_.header.subobject_copy = cfg.coprocessor.subobject_copy;
  trace_.header.markbit_early_read = cfg.coprocessor.markbit_early_read;
  rt.set_trace_sink(this);
}

void TraceRecorder::detach(Runtime& rt) {
  if (rt.trace_sink() == this) rt.set_trace_sink(nullptr);
}

std::uint64_t TraceRecorder::id_of(std::size_t slot) const {
  const auto it = slot_to_id_.find(slot);
  if (it == slot_to_id_.end()) {
    throw std::logic_error(
        "TraceRecorder: operation on root slot " + std::to_string(slot) +
        " that the recorder never saw created (attach the recorder before "
        "the first allocation)");
  }
  return it->second;
}

void TraceRecorder::bind(std::size_t slot, std::uint64_t id) {
  slot_to_id_[slot] = id;
  live_slots_[id].push_back(slot);
}

void TraceRecorder::on_alloc(Runtime&, std::size_t slot, Word pi, Word delta) {
  const std::uint64_t id = next_id_++;
  live_slots_.emplace_back();
  children_.emplace_back(pi, kNoTraceId);
  bind(slot, id);
  trace_.ops.push_back({TraceOp::Kind::kAlloc, id, pi, delta});
}

void TraceRecorder::on_release(Runtime&, std::size_t slot) {
  const std::uint64_t id = id_of(slot);
  auto& slots = live_slots_[id];
  std::size_t which = 0;
  while (which < slots.size() && slots[which] != slot) ++which;
  trace_.ops.push_back({TraceOp::Kind::kRelease, id, which, 0});
  slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(which));
  slot_to_id_.erase(slot);
}

void TraceRecorder::on_set_ptr(Runtime&, std::size_t obj_slot, Word field,
                               bool target_null, std::size_t target_slot) {
  const std::uint64_t src = id_of(obj_slot);
  const std::uint64_t dst = target_null ? kNoTraceId : id_of(target_slot);
  children_[src][field] = dst;
  trace_.ops.push_back({TraceOp::Kind::kLink, src, field, dst});
}

void TraceRecorder::on_load_ptr(Runtime&, std::size_t obj_slot, Word field,
                                std::size_t out_slot) {
  const std::uint64_t parent = id_of(obj_slot);
  const std::uint64_t child = children_[parent][field];
  if (child == kNoTraceId) {
    throw std::logic_error(
        "TraceRecorder: load_ptr returned an object through a field the "
        "recorded link stream believes is null — a pointer store bypassed "
        "the Runtime facade while recording");
  }
  bind(out_slot, child);
  trace_.ops.push_back({TraceOp::Kind::kLoad, parent, field, child});
}

void TraceRecorder::on_dup(Runtime&, std::size_t src_slot,
                           std::size_t out_slot) {
  const std::uint64_t id = id_of(src_slot);
  bind(out_slot, id);
  trace_.ops.push_back({TraceOp::Kind::kRetain, id, 0, 0});
}

void TraceRecorder::on_set_data(Runtime&, std::size_t obj_slot, Word j,
                                Word value) {
  trace_.ops.push_back({TraceOp::Kind::kData, id_of(obj_slot), j, value});
}

void TraceRecorder::on_read(Runtime&, std::size_t obj_slot,
                            const ReadProbe& probe) {
  trace_.ops.push_back(
      {TraceOp::Kind::kRead, id_of(obj_slot), probe.words, probe.digest});
}

void TraceRecorder::on_collect(Runtime&) {
  trace_.ops.push_back({TraceOp::Kind::kCollect, 0, 0, 0});
}

}  // namespace hwgc
