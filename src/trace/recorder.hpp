// TraceRecorder: captures every mutator-visible Runtime operation as an
// hwgc-trace-v1 op stream through the RuntimeTraceSink seam.
//
// The recorder translates root-slot indices (the runtime's currency) into
// allocation-order object ids (the trace's currency) by mirroring the root
// table: each live slot maps to the id it roots, and each id keeps its live
// slots in creation order. A release is recorded as (id, position in that
// list) so the replayer frees the *same* slot — slot allocation and the
// freelist order are then bit-identical between record and replay, which is
// what makes record -> replay -> re-record a byte-identical round trip.
#pragma once

#include <unordered_map>
#include <vector>

#include "runtime/runtime.hpp"
#include "trace/trace_format.hpp"

namespace hwgc {

class TraceRecorder final : public RuntimeTraceSink {
 public:
  explicit TraceRecorder(TraceHeader header = {});

  /// Starts recording. The runtime must not have live roots yet (a trace
  /// replays against a fresh runtime, so recording must start from one);
  /// throws std::logic_error otherwise. Fills the header's runtime-derived
  /// fields (semispace, cores, fifo, schedule...) from rt.config().
  void attach(Runtime& rt);

  /// Stops recording (detaches the sink). The trace stays available.
  void detach(Runtime& rt);

  const Trace& trace() const noexcept { return trace_; }
  Trace take() { return std::move(trace_); }

  // RuntimeTraceSink implementation.
  void on_alloc(Runtime&, std::size_t slot, Word pi, Word delta) override;
  void on_release(Runtime&, std::size_t slot) override;
  void on_set_ptr(Runtime&, std::size_t obj_slot, Word field, bool target_null,
                  std::size_t target_slot) override;
  void on_load_ptr(Runtime&, std::size_t obj_slot, Word field,
                   std::size_t out_slot) override;
  void on_dup(Runtime&, std::size_t src_slot, std::size_t out_slot) override;
  void on_set_data(Runtime&, std::size_t obj_slot, Word j, Word value) override;
  void on_read(Runtime&, std::size_t obj_slot, const ReadProbe& probe) override;
  void on_collect(Runtime&) override;

 private:
  std::uint64_t id_of(std::size_t slot) const;
  void bind(std::size_t slot, std::uint64_t id);

  Trace trace_;
  std::uint64_t next_id_ = 0;
  std::unordered_map<std::size_t, std::uint64_t> slot_to_id_;
  /// Per id: the slots currently rooting it, in creation order.
  std::vector<std::vector<std::size_t>> live_slots_;
  /// Per id: current pointer-field targets (kNoTraceId = null), maintained
  /// from the link stream so a load_ptr can be resolved to the child id
  /// without consulting heap addresses (which move under collection).
  std::vector<std::vector<std::uint64_t>> children_;
};

}  // namespace hwgc
