#include "trace/replayer.hpp"

#include <sstream>
#include <stdexcept>

#include "heap/verifier.hpp"
#include "trace/recorder.hpp"

namespace hwgc {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xffu)) * kFnvPrime;
    v >>= 8;
  }
}

/// The coprocessor-path CycleReport, synthesized from GcCycleStats the
/// same way the service layer's per-shard oracle does.
CycleReport report_from_stats(const GcCycleStats& s) {
  CycleReport r;
  r.objects_copied = s.objects_copied;
  r.words_copied = s.words_copied;
  r.lock_order_violations = s.lock_order_violations;
  for (const CoreCounters& c : s.per_core) r.evacuations += c.objects_evacuated;
  r.coproc = s;
  return r;
}

}  // namespace

HarnessPlugin::HarnessPlugin(CollectorId id, HarnessConfig cfg) : id_(id) {
  // The recorded op stream is the only mutator a replay may have: run the
  // concurrent cycle's synthetic mutator and the snapshot collector's real
  // mutator threads quiescent.
  if (id == CollectorId::kConcurrent) cfg.mutator_registers = 0;
  if (id == CollectorId::kSnapshot) cfg.mutator_threads = 0;
  harness_ = make_harness(id, cfg);
}

GcCycleStats HarnessPlugin::collect(Heap& heap) {
  last_ = harness_->collect(heap);
  has_report_ = true;
  if (last_.coproc.has_value()) return *last_.coproc;
  GcCycleStats stats;
  stats.objects_copied = last_.objects_copied;
  stats.words_copied = last_.words_copied;
  stats.lock_order_violations = last_.lock_order_violations;
  if (last_.snapshot.has_value()) {
    // The pauseless collector has a virtual clock of its own: total wall
    // time is the two pauses plus the overlapped concurrent phase, and the
    // barrier/reconciliation counters ride the coprocessor stat block into
    // hwgc-bench-v1.
    stats.total_cycles =
        last_.snapshot->pause_cycles + last_.snapshot->concurrent_cycles;
    stats.snapshot_stores = last_.snapshot->snapshot_stores;
    stats.reconciliation_repairs = last_.snapshot->reconciliation_repairs;
    stats.safe_point_waits = last_.snapshot->safe_point_waits;
  }
  // Software collectors run outside the coprocessor clock; the stats they
  // cannot fill stay zero and restart_stores_drained stays true (their
  // stores are plain memory writes, committed before collect() returns).
  return stats;
}

TraceCursor::TraceCursor(const Trace* trace, bool wrap)
    : trace_(trace), wrap_(wrap) {
  if (trace_ == nullptr) {
    throw std::invalid_argument("TraceCursor: null trace");
  }
}

std::uint64_t TraceCursor::live_ids() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : refs_) {
    if (!r.empty()) ++n;
  }
  return n;
}

std::uint64_t TraceCursor::live_graph_digest(Runtime& rt) const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t id = 0; id < refs_.size(); ++id) {
    if (refs_[id].empty()) continue;
    const Runtime::Ref ref = refs_[id].front();
    fnv_u64(h, id);
    const Word pi = rt.pi(ref);
    const Word delta = rt.delta(ref);
    fnv_u64(h, pi);
    fnv_u64(h, delta);
    for (Word j = 0; j < delta; ++j) fnv_u64(h, rt.get_data(ref, j));
    for (Word f = 0; f < pi; ++f) fnv_u64(h, children_[id][f]);
    fnv_u64(h, refs_[id].size());
  }
  return h;
}

void TraceCursor::wrap_around(Runtime& rt) {
  for (auto& list : refs_) {
    for (Runtime::Ref ref : list) rt.release(ref);
    list.clear();
  }
  refs_.clear();
  children_.clear();
  pos_ = 0;
  ++wraps_;
}

std::size_t TraceCursor::apply(Runtime& rt, std::size_t max_ops) {
  std::size_t applied = 0;
  while (applied < max_ops) {
    if (pos_ >= trace_->ops.size()) {
      if (!wrap_) break;
      wrap_around(rt);
      if (trace_->ops.empty()) break;
    }
    apply_one(rt, trace_->ops[pos_]);
    ++pos_;
    ++applied;
  }
  return applied;
}

void TraceCursor::apply_one(Runtime& rt, const TraceOp& op) {
  switch (op.kind) {
    case TraceOp::Kind::kAlloc: {
      const Runtime::Ref ref = rt.alloc(op.b, op.c);
      refs_.emplace_back();
      children_.emplace_back(op.b, kNoTraceId);
      refs_[op.a].push_back(ref);
      break;
    }
    case TraceOp::Kind::kData:
      rt.set_data(refs_[op.a].back(), op.b, op.c);
      break;
    case TraceOp::Kind::kLink:
      if (op.c == kNoTraceId) {
        rt.set_ptr_null(refs_[op.a].back(), op.b);
      } else {
        rt.set_ptr(refs_[op.a].back(), op.b, refs_[op.c].back());
      }
      children_[op.a][op.b] = op.c;
      break;
    case TraceOp::Kind::kRetain:
      refs_[op.a].push_back(rt.dup(refs_[op.a].back()));
      break;
    case TraceOp::Kind::kLoad: {
      const Runtime::Ref child = rt.load_ptr(refs_[op.a].back(), op.b);
      if (child.is_null()) {
        // The link-stream mirror proved this field non-null at load time;
        // a null here means the collector under replay lost the pointer.
        ++read_mismatches_;
      } else {
        refs_[op.c].push_back(child);
      }
      break;
    }
    case TraceOp::Kind::kRelease: {
      auto& list = refs_[op.a];
      rt.release(list[op.b]);
      list.erase(list.begin() + static_cast<std::ptrdiff_t>(op.b));
      break;
    }
    case TraceOp::Kind::kRead: {
      const ReadProbe probe = rt.read_probe(refs_[op.a].back());
      if (probe.words != op.b || probe.digest != op.c) ++read_mismatches_;
      break;
    }
    case TraceOp::Kind::kCollect:
      rt.collect();
      ++explicit_collects_;
      break;
    case TraceOp::Kind::kCount:
      break;
  }
}

namespace {

/// Per-cycle conformance check: snapshot before, post-structure oracle
/// after — for explicit and exhaustion-triggered cycles alike.
class OracleObserver final : public CollectionObserver {
 public:
  OracleObserver(CollectorId id, const HarnessPlugin* plugin,
                 ReplayResult& result)
      : id_(id), plugin_(plugin), result_(result) {}

  void before_collection(Runtime& rt) override {
    pre_ = HeapSnapshot::capture(rt.heap());
  }

  void after_collection(Runtime& rt, const GcCycleStats& stats) override {
    const CycleReport report = (plugin_ != nullptr && plugin_->has_report())
                                   ? plugin_->last_report()
                                   : report_from_stats(stats);
    std::vector<std::string> errors;
    check_post_structure(id_, pre_, rt.heap(), report, errors);
    if (report.validation_mismatches != 0) {
      errors.push_back("concurrent shadow validation reported " +
                       std::to_string(report.validation_mismatches) +
                       " mismatches");
    }
    const std::string where =
        "cycle " + std::to_string(result_.collections) + ": ";
    for (std::string& e : errors) {
      if (result_.findings.size() < 64) {
        result_.findings.push_back(where + std::move(e));
      }
      result_.ok = false;
    }
    ++result_.collections;
  }

 private:
  CollectorId id_;
  const HarnessPlugin* plugin_;
  ReplayResult& result_;
  HeapSnapshot pre_;
};

}  // namespace

std::string ReplayResult::summary() const {
  std::ostringstream os;
  os << (ok ? "ok" : "FAIL") << ": " << ops_applied << " ops, " << collections
     << " collections (" << explicit_collects << " explicit), " << live_ids
     << " live ids, digest 0x" << std::hex << live_graph_digest << std::dec;
  if (read_mismatches != 0) os << ", " << read_mismatches << " read mismatches";
  for (const std::string& f : findings) os << "\n  " << f;
  return os.str();
}

ReplayResult replay_trace(const Trace& trace, const ReplayConfig& cfg) {
  ReplayResult result;
  const TraceHeader& h = trace.header;
  const Word semispace =
      cfg.semispace_words != 0 ? cfg.semispace_words : h.semispace_words;
  Runtime rt(semispace, h.sim_config());

  std::unique_ptr<HarnessPlugin> plugin;
  if (cfg.collector != CollectorId::kCoprocessor) {
    HarnessConfig hc;
    hc.threads = cfg.threads;
    hc.schedule = h.schedule;
    hc.schedule_seed =
        cfg.schedule_seed == ~std::uint64_t{0} ? h.schedule_seed
                                               : cfg.schedule_seed;
    hc.torture.seed = hc.schedule_seed;
    hc.latency_jitter = h.latency_jitter;
    hc.header_fifo_capacity = h.header_fifo_capacity;
    plugin = std::make_unique<HarnessPlugin>(cfg.collector, hc);
    rt.set_collector(plugin.get());
  } else if (cfg.signal_trace != nullptr) {
    rt.set_signal_trace(cfg.signal_trace);
  }

  OracleObserver oracle(cfg.collector, plugin.get(), result);
  if (cfg.oracle) rt.set_collection_observer(&oracle);

  TraceRecorder rerec(h);
  if (cfg.rerecord) rerec.attach(rt);

  TraceCursor cursor(&trace, /*wrap=*/false);
  result.ops_applied = cursor.apply(rt, trace.ops.size());
  result.read_mismatches = cursor.read_mismatches();
  result.explicit_collects = cursor.explicit_collects();
  result.live_ids = cursor.live_ids();
  result.live_graph_digest = cursor.live_graph_digest(rt);
  result.gc_history = rt.gc_history();
  result.collections = result.gc_history.size();
  if (result.read_mismatches != 0) {
    result.ok = false;
    result.findings.push_back(std::to_string(result.read_mismatches) +
                              " replayed read(s) diverged from the recorded "
                              "digests");
  }
  if (cfg.rerecord) {
    rerec.detach(rt);
    result.rerecorded = rerec.take();
  }
  return result;
}

}  // namespace hwgc
