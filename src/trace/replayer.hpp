// TraceReplayer: drives a recorded hwgc-trace-v1 op stream against a live
// Runtime — under any collector in the inventory — and verifies it as it goes.
//
// Determinism argument (DESIGN.md §16): a trace is a closed mutator
// program over allocation-order object ids. Replay keeps, per id, the live
// Refs in creation order; every op resolves through that table, and release
// ops name the creation-order position of the slot to free, so the
// runtime's root table and slot freelist evolve bit-identically to the
// recording run. Collections — explicit (kCollect) or allocation-triggered
// (implicit, unrecorded) — therefore happen at the same op boundaries with
// the same root sets, which is why record -> replay -> re-record is a
// byte-identical round trip and why per-cycle GcCycleStats and SignalTrace
// streams reproduce bit-for-bit on the coprocessor path.
//
// Self-verification: every collection is checked by the conformance
// post-structure oracle (pre-cycle HeapSnapshot vs post heap), and every
// kRead op recomputes the FNV-1a data digest recorded at capture time — a
// replay that passes has proven the collector under test preserved the
// recorded workload's entire observable behavior.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "conformance/conformance.hpp"
#include "conformance/harness.hpp"
#include "runtime/runtime.hpp"
#include "trace/trace_format.hpp"

namespace hwgc {

/// Runtime::CollectorPlugin adapter over a CollectorHarness: routes the
/// runtime's collection cycles (explicit and exhaustion-triggered) through
/// any collector in the inventory. The concurrent collector runs quiescent
/// (mutator_registers forced to 0): the recorded op stream is the only
/// mutator, so its reads/data must not be perturbed by a synthetic one.
class HarnessPlugin final : public CollectorPlugin {
 public:
  HarnessPlugin(CollectorId id, HarnessConfig cfg);

  GcCycleStats collect(Heap& heap) override;

  CollectorId id() const noexcept { return id_; }
  /// Report of the most recent cycle (for the per-cycle oracle).
  const CycleReport& last_report() const noexcept { return last_; }
  bool has_report() const noexcept { return has_report_; }

 private:
  CollectorId id_;
  std::unique_ptr<CollectorHarness> harness_;
  CycleReport last_;
  bool has_report_ = false;
};

/// Incremental trace application — the heapd session driver. Owns the
/// per-id Ref table; apply() advances through the op stream in request-
/// sized budgets. With wrapping enabled the cursor releases every live
/// ref at end-of-trace and restarts (the released graph becomes garbage
/// for the next cycle), so one finite trace models an arbitrarily long
/// session deterministically.
class TraceCursor {
 public:
  /// `trace` must outlive the cursor (heapd keeps the corpus alive in the
  /// ServiceConfig; replay_trace keeps it on the stack).
  explicit TraceCursor(const Trace* trace, bool wrap = true);

  /// Applies up to `max_ops` operations; returns the number applied
  /// (short only when wrapping is off and the stream ends).
  std::size_t apply(Runtime& rt, std::size_t max_ops);

  bool done() const noexcept {
    return !wrap_ && pos_ >= trace_->ops.size();
  }
  std::uint64_t wraps() const noexcept { return wraps_; }
  std::uint64_t read_mismatches() const noexcept { return read_mismatches_; }
  std::uint64_t explicit_collects() const noexcept {
    return explicit_collects_;
  }

  /// Number of ids currently holding at least one live root.
  std::uint64_t live_ids() const noexcept;

  /// Canonical digest of the live-rooted graph: per id in id order —
  /// shape, heap data words, and link topology (trace ids, not
  /// addresses). Identical across collectors iff they all preserved the
  /// replayed workload's observable state.
  std::uint64_t live_graph_digest(Runtime& rt) const;

 private:
  void apply_one(Runtime& rt, const TraceOp& op);
  void wrap_around(Runtime& rt);

  const Trace* trace_;
  bool wrap_;
  std::size_t pos_ = 0;
  std::uint64_t wraps_ = 0;
  std::uint64_t read_mismatches_ = 0;
  std::uint64_t explicit_collects_ = 0;
  std::vector<std::vector<Runtime::Ref>> refs_;       ///< per id, creation order
  std::vector<std::vector<std::uint64_t>> children_;  ///< link-stream mirror
};

struct ReplayConfig {
  CollectorId collector = CollectorId::kCoprocessor;
  /// Worker threads for the threaded software baselines.
  std::uint32_t threads = 4;
  /// Overrides the header's schedule seed (simulators: step order + memory
  /// jitter; baselines: torture stream). ~0 keeps the header's seed.
  std::uint64_t schedule_seed = ~std::uint64_t{0};
  /// Overrides the header's semispace size (0 keeps it).
  Word semispace_words = 0;
  /// Run the conformance post-structure oracle around every cycle.
  bool oracle = true;
  /// Re-record the replay through a fresh TraceRecorder (round-trip
  /// identity proof); the result lands in ReplayResult::rerecorded.
  bool rerecord = false;
  /// Sampled by every coprocessor-path collection when non-null (the
  /// SignalTrace bit-identity proof). Ignored for harness collectors.
  SignalTrace* signal_trace = nullptr;
};

struct ReplayResult {
  bool ok = true;
  std::vector<std::string> findings;
  std::uint64_t ops_applied = 0;
  std::uint64_t collections = 0;         ///< total cycles (incl. implicit)
  std::uint64_t explicit_collects = 0;
  std::uint64_t read_mismatches = 0;
  std::uint64_t live_ids = 0;
  std::uint64_t live_graph_digest = 0;
  std::vector<GcCycleStats> gc_history;
  Trace rerecorded;  ///< filled when ReplayConfig::rerecord

  std::string summary() const;
};

/// Replays a whole trace against a fresh Runtime built from the trace
/// header (semispace, cores, FIFO, schedule, jitter). The trace must have
/// come through load_trace/check_trace — replay assumes structural
/// validity.
ReplayResult replay_trace(const Trace& trace, const ReplayConfig& cfg = {});

}  // namespace hwgc
