#include "trace/trace_format.hpp"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/schedule_policy.hpp"
#include "heap/object_model.hpp"
#include "telemetry/metrics.hpp"

namespace hwgc {

namespace {

constexpr char kMagic[8] = {'H', 'W', 'G', 'C', 'T', 'R', 'C', '1'};
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_u8(std::uint64_t& h, std::uint8_t byte) {
  h = (h ^ byte) * kFnvPrime;
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    fnv_u8(h, static_cast<std::uint8_t>(v & 0xffu));
    v >>= 8;
  }
}

[[noreturn]] void fail(const std::string& msg) {
  throw TraceError("hwgc-trace-v1: " + msg);
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

bool parse_u64_str(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-' || s[0] == '"') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

/// Strips the string-typed marker quotes parse_flat_json_object adds.
std::string unquote(const std::string& v) {
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
    return v.substr(1, v.size() - 2);
  }
  return v;
}

/// Both loaders read semispace_words as u64 on the wire but store a Word;
/// reject out-of-range values instead of silently truncating to a tiny
/// semispace that fails later with a confusing object-does-not-fit error.
Word checked_semispace_words(std::uint64_t v) {
  if (v > std::numeric_limits<Word>::max()) {
    fail("semispace_words " + std::to_string(v) + " out of range (max " +
         std::to_string(std::numeric_limits<Word>::max()) + ")");
  }
  return static_cast<Word>(v);
}

bool parse_kind(const std::string& name, TraceOp::Kind& out) {
  for (std::uint8_t k = 0;
       k < static_cast<std::uint8_t>(TraceOp::Kind::kCount); ++k) {
    if (name == to_string(static_cast<TraceOp::Kind>(k))) {
      out = static_cast<TraceOp::Kind>(k);
      return true;
    }
  }
  return false;
}

/// Writer-side name hygiene: the JSONL emitter never needs escapes because
/// anything outside this set is replaced on save.
std::string sanitize_name(const std::string& name) {
  std::string out;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out += ok ? c : '_';
  }
  return out.empty() ? "trace" : out;
}

}  // namespace

const char* to_string(TraceOp::Kind k) noexcept {
  switch (k) {
    case TraceOp::Kind::kAlloc: return "alloc";
    case TraceOp::Kind::kData: return "data";
    case TraceOp::Kind::kLink: return "link";
    case TraceOp::Kind::kRetain: return "retain";
    case TraceOp::Kind::kLoad: return "load";
    case TraceOp::Kind::kRelease: return "release";
    case TraceOp::Kind::kRead: return "read";
    case TraceOp::Kind::kCollect: return "collect";
    case TraceOp::Kind::kCount: break;
  }
  return "?";
}

SimConfig TraceHeader::sim_config() const {
  SimConfig cfg;
  cfg.coprocessor.num_cores = cores;
  cfg.coprocessor.header_fifo_capacity = header_fifo_capacity;
  cfg.coprocessor.schedule = schedule;
  cfg.coprocessor.schedule_seed = schedule_seed;
  cfg.coprocessor.subobject_copy = subobject_copy;
  cfg.coprocessor.markbit_early_read = markbit_early_read;
  cfg.memory.latency_jitter = latency_jitter;
  // Same derivation as the conformance harness: one seed knob drives both
  // the schedule permutation and the memory-jitter stream.
  cfg.memory.jitter_seed = schedule_seed ^ 0x9e3779b97f4a7c15ull;
  return cfg;
}

std::uint64_t Trace::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const TraceOp& op : ops) {
    fnv_u8(h, static_cast<std::uint8_t>(op.kind));
    fnv_u64(h, op.a);
    fnv_u64(h, op.b);
    fnv_u64(h, op.c);
  }
  return h;
}

std::uint64_t Trace::objects() const {
  std::uint64_t n = 0;
  for (const TraceOp& op : ops) {
    if (op.kind == TraceOp::Kind::kAlloc) ++n;
  }
  return n;
}

std::uint64_t Trace::collect_hints() const {
  std::uint64_t n = 0;
  for (const TraceOp& op : ops) {
    if (op.kind == TraceOp::Kind::kCollect) ++n;
  }
  return n;
}

std::vector<std::string> check_trace(const Trace& trace) {
  std::vector<std::string> findings;
  const auto note = [&](std::size_t seq, const std::string& msg) {
    if (findings.size() < 64) {
      findings.push_back(msg + " at seq " + std::to_string(seq));
    }
  };
  struct ObjState {
    Word pi = 0;
    Word delta = 0;
    std::uint64_t live_roots = 0;
    std::vector<std::uint64_t> children;  ///< link-stream mirror
  };
  std::vector<ObjState> objs;
  const auto id_ok = [&](std::size_t seq, std::uint64_t id) {
    if (id < objs.size()) return true;
    note(seq, "out-of-range object id " + std::to_string(id) + " (only " +
                  std::to_string(objs.size()) + " objects allocated by then)");
    return false;
  };
  const auto live_ok = [&](std::size_t seq, std::uint64_t id) {
    if (!id_ok(seq, id)) return false;
    if (objs[id].live_roots > 0) return true;
    note(seq, "operation on unrooted object id " + std::to_string(id));
    return false;
  };
  for (std::size_t seq = 0; seq < trace.ops.size(); ++seq) {
    const TraceOp& op = trace.ops[seq];
    switch (op.kind) {
      case TraceOp::Kind::kAlloc: {
        if (op.a != objs.size()) {
          note(seq, "non-sequential allocation id " + std::to_string(op.a) +
                        " (expected " + std::to_string(objs.size()) + ")");
        }
        if (op.b > kMaxPi || op.c > kMaxDelta) {
          note(seq, "object shape pi=" + std::to_string(op.b) +
                        " delta=" + std::to_string(op.c) +
                        " exceeds the header encoding");
        } else if (object_words(static_cast<Word>(op.b),
                                static_cast<Word>(op.c)) >
                   trace.header.semispace_words) {
          note(seq, "object of " +
                        std::to_string(object_words(static_cast<Word>(op.b),
                                                    static_cast<Word>(op.c))) +
                        " words cannot fit the declared semispace");
        }
        ObjState st;
        // An out-of-encoding shape was noted above; record it as a zero
        // shape so later field/index checks bound against the children
        // mirror actually allocated instead of a truncated pi.
        const bool shape_ok = op.b <= kMaxPi && op.c <= kMaxDelta;
        st.pi = shape_ok ? static_cast<Word>(op.b) : 0;
        st.delta = shape_ok ? static_cast<Word>(op.c) : 0;
        st.live_roots = 1;
        st.children.assign(st.pi, kNoTraceId);
        objs.push_back(std::move(st));
        break;
      }
      case TraceOp::Kind::kData:
        if (live_ok(seq, op.a) && op.b >= objs[op.a].delta) {
          note(seq, "data index " + std::to_string(op.b) +
                        " out of range for object id " + std::to_string(op.a));
        }
        break;
      case TraceOp::Kind::kLink:
        if (live_ok(seq, op.a)) {
          if (op.b >= objs[op.a].pi) {
            note(seq, "pointer field " + std::to_string(op.b) +
                          " out of range for object id " +
                          std::to_string(op.a));
          } else if (op.c == kNoTraceId || id_ok(seq, op.c)) {
            objs[op.a].children[op.b] = op.c;
          }
        }
        if (op.c != kNoTraceId) live_ok(seq, op.c);
        break;
      case TraceOp::Kind::kRetain:
        if (live_ok(seq, op.a)) ++objs[op.a].live_roots;
        break;
      case TraceOp::Kind::kLoad:
        if (live_ok(seq, op.a)) {
          if (op.b >= objs[op.a].pi) {
            note(seq, "pointer field " + std::to_string(op.b) +
                          " out of range for object id " +
                          std::to_string(op.a));
          } else if (objs[op.a].children[op.b] != op.c ||
                     op.c == kNoTraceId) {
            note(seq, "load through field " + std::to_string(op.b) +
                          " of object id " + std::to_string(op.a) +
                          " resolves to id " +
                          (objs[op.a].children[op.b] == kNoTraceId
                               ? std::string("null")
                               : std::to_string(objs[op.a].children[op.b])) +
                          " per the link stream, trace says " +
                          std::to_string(op.c));
          } else {
            ++objs[op.c].live_roots;
          }
        }
        break;
      case TraceOp::Kind::kRelease:
        if (live_ok(seq, op.a)) {
          if (op.b >= objs[op.a].live_roots) {
            note(seq, "release index " + std::to_string(op.b) +
                          " out of range for object id " +
                          std::to_string(op.a));
          }
          --objs[op.a].live_roots;
        }
        break;
      case TraceOp::Kind::kRead:
        if (live_ok(seq, op.a) && op.b != objs[op.a].delta) {
          note(seq, "read word count " + std::to_string(op.b) +
                        " does not match object delta " +
                        std::to_string(objs[op.a].delta));
        }
        break;
      case TraceOp::Kind::kCollect:
        break;
      case TraceOp::Kind::kCount:
        note(seq, "unknown event kind");
        break;
    }
  }
  return findings;
}

Trace scale_trace_sizes(const Trace& trace, double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument(
        "scale_trace_sizes: factor must be > 0, got " +
        std::to_string(factor));
  }
  Trace out;
  out.header = trace.header;
  out.ops.reserve(trace.ops.size());
  // Replay-state shadow of the transformed stream: per-id rescaled delta
  // and current data words (allocation zero-fills), so every kRead can be
  // re-derived exactly as Runtime::read_probe would observe it.
  std::vector<std::uint64_t> deltas;
  std::vector<std::vector<std::uint64_t>> data;
  Word max_object = 0;
  for (const TraceOp& op : trace.ops) {
    switch (op.kind) {
      case TraceOp::Kind::kAlloc: {
        std::uint64_t scaled = static_cast<std::uint64_t>(
            static_cast<double>(op.c) * factor + 0.5);
        if (scaled > kMaxDelta) scaled = kMaxDelta;
        deltas.push_back(scaled);
        data.emplace_back(scaled, 0);
        if (op.b <= kMaxPi) {
          const Word words =
              object_words(static_cast<Word>(op.b), static_cast<Word>(scaled));
          if (words > max_object) max_object = words;
        }
        out.ops.push_back({op.kind, op.a, op.b, scaled});
        break;
      }
      case TraceOp::Kind::kData:
        if (op.a < data.size() && op.b < deltas[op.a]) {
          data[op.a][op.b] = op.c;
          out.ops.push_back(op);
        }
        break;
      case TraceOp::Kind::kRead: {
        std::uint64_t digest = kFnvOffset;
        if (op.a < data.size()) {
          for (std::uint64_t w : data[op.a]) fnv_u64(digest, w);
          out.ops.push_back({op.kind, op.a, deltas[op.a], digest});
        }
        break;
      }
      default:
        out.ops.push_back(op);
        break;
    }
  }
  // Grow the declared semispace with the workload so the scaled stream
  // still fits: proportionally for factor > 1, and never below the largest
  // single object (check_trace's fit invariant). Shrinking traces keep
  // their original semispace — less occupancy just means fewer implicit
  // collections, which is always replayable.
  if (factor > 1.0) {
    const double grown =
        static_cast<double>(trace.header.semispace_words) * factor;
    out.header.semispace_words = static_cast<Word>(grown + 0.5);
  }
  if (out.header.semispace_words < max_object) {
    out.header.semispace_words = max_object;
  }
  return out;
}

std::string trace_to_jsonl(const Trace& trace) {
  const TraceHeader& h = trace.header;
  std::ostringstream os;
  os << "{\"schema\":\"hwgc-trace-v1\",\"record\":\"header\",\"name\":\""
     << sanitize_name(h.name) << "\",\"version\":" << h.version
     << ",\"semispace_words\":" << h.semispace_words
     << ",\"cores\":" << h.cores << ",\"fifo\":" << h.header_fifo_capacity
     << ",\"schedule\":\"" << to_string(h.schedule) << "\""
     << ",\"schedule_seed\":" << h.schedule_seed
     << ",\"jitter\":" << h.latency_jitter
     << ",\"subobject\":" << (h.subobject_copy ? 1 : 0)
     << ",\"earlyread\":" << (h.markbit_early_read ? 1 : 0)
     << ",\"events\":" << trace.ops.size() << ",\"digest\":" << trace.digest()
     << "}\n";
  for (std::size_t seq = 0; seq < trace.ops.size(); ++seq) {
    const TraceOp& op = trace.ops[seq];
    os << "{\"schema\":\"hwgc-trace-v1\",\"record\":\"op\",\"seq\":" << seq
       << ",\"k\":\"" << to_string(op.kind) << "\",\"a\":" << op.a
       << ",\"b\":" << op.b << ",\"c\":" << op.c << "}\n";
  }
  return os.str();
}

namespace {

const std::string* find_key(
    const std::vector<std::pair<std::string, std::string>>& kv,
    const std::string& key) {
  for (const auto& [k, v] : kv) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t need_u64(
    const std::vector<std::pair<std::string, std::string>>& kv,
    const std::string& key, const std::string& where) {
  const std::string* v = find_key(kv, key);
  if (v == nullptr) fail("missing field \"" + key + "\" in " + where);
  std::uint64_t out = 0;
  if (!parse_u64_str(*v, out)) {
    fail("field \"" + key + "\" is not an unsigned number in " + where);
  }
  return out;
}

std::string need_str(
    const std::vector<std::pair<std::string, std::string>>& kv,
    const std::string& key, const std::string& where) {
  const std::string* v = find_key(kv, key);
  if (v == nullptr) fail("missing field \"" + key + "\" in " + where);
  if (v->empty() || v->front() != '"') {
    fail("field \"" + key + "\" is not a string in " + where);
  }
  return unquote(*v);
}

/// Shared tail of both loaders: event count, digest, structure — in that
/// order, so a truncated stream is named as truncation rather than as the
/// digest mismatch it would also produce.
void finish_load(Trace& trace, std::size_t declared_events,
                 std::uint64_t declared_digest) {
  if (trace.ops.size() < declared_events) {
    fail("truncated stream (header declares " +
         std::to_string(declared_events) + " events, found " +
         std::to_string(trace.ops.size()) + ")");
  }
  if (trace.ops.size() > declared_events) {
    fail("trailing events beyond the declared count (header declares " +
         std::to_string(declared_events) + " events, found " +
         std::to_string(trace.ops.size()) + ")");
  }
  const std::uint64_t computed = trace.digest();
  if (computed != declared_digest) {
    fail("stream digest mismatch (header declares " + hex(declared_digest) +
         ", stream is " + hex(computed) + ")");
  }
  const std::vector<std::string> findings = check_trace(trace);
  if (!findings.empty()) fail(findings.front());
}

}  // namespace

Trace trace_from_jsonl(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  Trace trace;
  bool have_header = false;
  std::size_t declared_events = 0;
  std::uint64_t declared_digest = 0;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::pair<std::string, std::string>> kv;
    std::string perr;
    if (!parse_flat_json_object(line, kv, &perr)) {
      fail("malformed JSONL line " + std::to_string(lineno) + " (" + perr +
           ")");
    }
    const std::string where = "line " + std::to_string(lineno);
    const std::string* schema = find_key(kv, "schema");
    if (schema == nullptr || unquote(*schema) != "hwgc-trace-v1") {
      fail("line " + std::to_string(lineno) +
           " does not carry the hwgc-trace-v1 schema");
    }
    const std::string record = need_str(kv, "record", where);
    if (record == "header") {
      if (have_header) fail("duplicate header at line " + std::to_string(lineno));
      const std::uint64_t version = need_u64(kv, "version", where);
      if (version != 1) {
        fail("unsupported hwgc-trace version " + std::to_string(version) +
             " (this build reads version 1)");
      }
      TraceHeader h;
      h.name = need_str(kv, "name", where);
      h.version = 1;
      h.semispace_words =
          checked_semispace_words(need_u64(kv, "semispace_words", where));
      h.cores = static_cast<std::uint32_t>(need_u64(kv, "cores", where));
      h.header_fifo_capacity =
          static_cast<std::uint32_t>(need_u64(kv, "fifo", where));
      const std::string sched = need_str(kv, "schedule", where);
      if (!parse_schedule_policy(sched, h.schedule)) {
        fail("unknown schedule policy '" + sched + "' in " + where);
      }
      h.schedule_seed = need_u64(kv, "schedule_seed", where);
      h.latency_jitter = need_u64(kv, "jitter", where);
      h.subobject_copy = need_u64(kv, "subobject", where) != 0;
      h.markbit_early_read = need_u64(kv, "earlyread", where) != 0;
      declared_events =
          static_cast<std::size_t>(need_u64(kv, "events", where));
      declared_digest = need_u64(kv, "digest", where);
      trace.header = h;
      have_header = true;
      continue;
    }
    if (record != "op") {
      fail("unknown record type '" + record + "' at line " +
           std::to_string(lineno));
    }
    if (!have_header) {
      fail("op record before the header at line " + std::to_string(lineno));
    }
    TraceOp op;
    const std::string kind = need_str(kv, "k", where);
    if (!parse_kind(kind, op.kind)) {
      fail("unknown event kind '" + kind + "' at seq " +
           std::to_string(need_u64(kv, "seq", where)));
    }
    op.a = need_u64(kv, "a", where);
    op.b = need_u64(kv, "b", where);
    op.c = need_u64(kv, "c", where);
    trace.ops.push_back(op);
  }
  if (!have_header) fail("truncated stream (no header line)");
  finish_load(trace, declared_events, declared_digest);
  return trace;
}

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>(v & 0xffu);
    v >>= 8;
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>(v & 0xffu);
    v >>= 8;
  }
}

struct ByteReader {
  const std::string& bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > bytes.size()) {
      fail("truncated stream (binary record cut short at byte " +
           std::to_string(bytes.size()) + ")");
    }
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes[pos++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes[pos++]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes[pos++]))
           << (8 * i);
    }
    return v;
  }
  std::string str(std::size_t n) {
    need(n);
    std::string s = bytes.substr(pos, n);
    pos += n;
    return s;
  }
};

}  // namespace

std::string trace_to_binary(const Trace& trace) {
  const TraceHeader& h = trace.header;
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, h.version);
  const std::string name = sanitize_name(h.name);
  put_u32(out, static_cast<std::uint32_t>(name.size()));
  out += name;
  put_u64(out, h.semispace_words);
  put_u32(out, h.cores);
  put_u32(out, h.header_fifo_capacity);
  out += static_cast<char>(h.schedule);
  put_u64(out, h.schedule_seed);
  put_u64(out, h.latency_jitter);
  out += static_cast<char>(h.subobject_copy ? 1 : 0);
  out += static_cast<char>(h.markbit_early_read ? 1 : 0);
  put_u64(out, trace.ops.size());
  put_u64(out, trace.digest());
  for (const TraceOp& op : trace.ops) {
    out += static_cast<char>(op.kind);
    put_u64(out, op.a);
    put_u64(out, op.b);
    put_u64(out, op.c);
  }
  return out;
}

Trace trace_from_binary(const std::string& bytes) {
  ByteReader r{bytes};
  if (r.str(sizeof(kMagic)) != std::string(kMagic, sizeof(kMagic))) {
    fail("not an hwgc trace (bad magic)");
  }
  const std::uint32_t version = r.u32();
  if (version != 1) {
    fail("unsupported hwgc-trace version " + std::to_string(version) +
         " (this build reads version 1)");
  }
  Trace trace;
  TraceHeader& h = trace.header;
  h.version = 1;
  h.name = r.str(r.u32());
  h.semispace_words = checked_semispace_words(r.u64());
  h.cores = r.u32();
  h.header_fifo_capacity = r.u32();
  const std::uint8_t sched = r.u8();
  if (sched > static_cast<std::uint8_t>(SchedulePolicyKind::kAdversarial)) {
    fail("unknown schedule policy byte " + std::to_string(sched));
  }
  h.schedule = static_cast<SchedulePolicyKind>(sched);
  h.schedule_seed = r.u64();
  h.latency_jitter = r.u64();
  h.subobject_copy = r.u8() != 0;
  h.markbit_early_read = r.u8() != 0;
  const std::uint64_t declared_events = r.u64();
  const std::uint64_t declared_digest = r.u64();
  for (std::uint64_t seq = 0; seq < declared_events; ++seq) {
    TraceOp op;
    const std::uint8_t kind = r.u8();
    if (kind >= static_cast<std::uint8_t>(TraceOp::Kind::kCount)) {
      fail("unknown event kind " + std::to_string(kind) + " at seq " +
           std::to_string(seq));
    }
    op.kind = static_cast<TraceOp::Kind>(kind);
    op.a = r.u64();
    op.b = r.u64();
    op.c = r.u64();
    trace.ops.push_back(op);
  }
  if (r.pos != bytes.size()) {
    fail("trailing events beyond the declared count (header declares " +
         std::to_string(declared_events) + " events, stream has " +
         std::to_string(bytes.size() - r.pos) + " extra bytes)");
  }
  finish_load(trace, static_cast<std::size_t>(declared_events),
              declared_digest);
  return trace;
}

void save_trace(const std::string& path, const Trace& trace, bool binary) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open '" + path + "' for writing");
  const std::string body =
      binary ? trace_to_binary(trace) : trace_to_jsonl(trace);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) fail("short write to '" + path + "'");
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();
  if (body.size() >= sizeof(kMagic) &&
      body.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) == 0) {
    return trace_from_binary(body);
  }
  return trace_from_jsonl(body);
}

bool validate_trace_jsonl_line(const std::string& line, std::string* error) {
  std::vector<std::pair<std::string, std::string>> kv;
  if (!parse_flat_json_object(line, kv, error)) return false;
  const auto err = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  const auto str_field = [&](const char* key, std::string& out) {
    const std::string* v = find_key(kv, key);
    if (v == nullptr || v->empty() || v->front() != '"') return false;
    out = unquote(*v);
    return true;
  };
  const auto u64_field = [&](const char* key, std::uint64_t& out) {
    const std::string* v = find_key(kv, key);
    return v != nullptr && parse_u64_str(*v, out);
  };
  std::string schema;
  if (!str_field("schema", schema) || schema != "hwgc-trace-v1") {
    return err("missing or wrong \"schema\"");
  }
  std::string record;
  if (!str_field("record", record)) return err("missing \"record\"");
  std::uint64_t u = 0;
  if (record == "header") {
    std::string name;
    if (!str_field("name", name) || name.empty()) {
      return err("header: missing \"name\"");
    }
    if (!u64_field("version", u) || u != 1) {
      return err("header: \"version\" must be 1");
    }
    if (!u64_field("semispace_words", u) || u == 0) {
      return err("header: \"semispace_words\" must be a positive number");
    }
    if (!u64_field("cores", u) || u == 0) {
      return err("header: \"cores\" must be a positive number");
    }
    if (!u64_field("fifo", u)) {
      return err("header: \"fifo\" must be a number");
    }
    std::string sched;
    SchedulePolicyKind kind;
    if (!str_field("schedule", sched) || !parse_schedule_policy(sched, kind)) {
      return err("header: unknown \"schedule\" policy");
    }
    for (const char* key : {"schedule_seed", "jitter", "events", "digest"}) {
      if (!u64_field(key, u)) {
        return err(std::string("header: \"") + key + "\" must be a number");
      }
    }
    for (const char* key : {"subobject", "earlyread"}) {
      if (!u64_field(key, u) || u > 1) {
        return err(std::string("header: \"") + key + "\" must be 0 or 1");
      }
    }
    return true;
  }
  if (record == "op") {
    if (!u64_field("seq", u)) return err("op: \"seq\" must be a number");
    std::string kind;
    TraceOp::Kind k;
    if (!str_field("k", kind) || !parse_kind(kind, k)) {
      return err("op: unknown event kind \"" + kind + "\"");
    }
    for (const char* key : {"a", "b", "c"}) {
      if (!u64_field(key, u)) {
        return err(std::string("op: \"") + key + "\" must be a number");
      }
    }
    return true;
  }
  return err("unknown \"record\" type \"" + record + "\"");
}

}  // namespace hwgc
