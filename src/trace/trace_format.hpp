// hwgc-trace-v1: recorded mutator workloads as a first-class scenario
// source (ROADMAP open item 4).
//
// A trace is a deterministic, collector-independent mutator program: a
// header naming the runtime configuration it was recorded under, followed
// by a flat stream of object-id-level operations (allocate, data store,
// pointer store, root retain/release, read probe, collection hint). Object
// ids are assigned in allocation order starting at 0, so a trace never
// mentions heap addresses or root-slot indices — which is exactly what
// makes one trace replayable under every collector in the repository,
// whose object layouts differ.
//
// Two serializations share one FNV-1a 64 stream digest computed over the
// canonical binary encoding of the operations:
//   * JSONL ("hwgc-trace-v1" schema, gated by bench_validate like the
//     bench/service/profile schemas): one header line, one line per op;
//   * binary ("HWGCTRC1" magic): fixed-width little-endian records, ~6x
//     smaller, natural truncation detection.
// Loading verifies the digest and the structural invariants before
// returning, so a trace that loads at all is safe to replay: every op
// references an id that was allocated earlier and still has a live root,
// fields/indices are in shape bounds, and release indices are valid.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace hwgc {

/// Any load/parse failure of a trace stream. The message always starts
/// with "hwgc-trace-v1:" and names the specific defect (truncation, digest
/// mismatch, unknown event kind, out-of-range object id, version skew...).
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Null object id in kLink operations (a pointer-field clear).
inline constexpr std::uint64_t kNoTraceId = ~std::uint64_t{0};

/// One recorded mutator operation. `a`/`b`/`c` are interpreted per kind:
///   kAlloc    a=id (sequential from 0)  b=pi           c=delta
///   kData     a=id                      b=word index   c=value
///   kLink     a=src id                  b=field        c=dst id | kNoTraceId
///   kRetain   a=id   (dup: root an already-rooted object in one more slot)
///   kLoad     a=parent id  b=field  c=child id (load_ptr: roots the child,
///             which may have no other root — reachable through the parent)
///   kRelease  a=id   b=index into the id's live-root list (creation order)
///   kRead     a=id   b=data words       c=FNV-1a data digest at record time
///   kCollect  explicit collection request (exhaustion cycles are implicit)
struct TraceOp {
  enum class Kind : std::uint8_t {
    kAlloc = 0,
    kData,
    kLink,
    kRetain,
    kLoad,
    kRelease,
    kRead,
    kCollect,
    kCount
  };
  Kind kind = Kind::kCollect;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  friend bool operator==(const TraceOp& x, const TraceOp& y) noexcept {
    return x.kind == y.kind && x.a == y.a && x.b == y.b && x.c == y.c;
  }
};

const char* to_string(TraceOp::Kind k) noexcept;

/// The runtime configuration a trace was recorded under — enough to
/// reconstruct the exact SimConfig (and heap size) for bit-identical
/// replay on the coprocessor path.
struct TraceHeader {
  std::string name = "trace";
  std::uint32_t version = 1;
  Word semispace_words = 4096;
  std::uint32_t cores = 8;
  std::uint32_t header_fifo_capacity = 32 * 1024;
  SchedulePolicyKind schedule = SchedulePolicyKind::kFixedPriority;
  std::uint64_t schedule_seed = 0;
  Cycle latency_jitter = 0;
  bool subobject_copy = false;
  bool markbit_early_read = false;

  /// The coprocessor configuration for replaying this trace (jitter seed
  /// derived from schedule_seed exactly like the conformance harness).
  SimConfig sim_config() const;

  friend bool operator==(const TraceHeader& x, const TraceHeader& y) noexcept {
    return x.name == y.name && x.version == y.version &&
           x.semispace_words == y.semispace_words && x.cores == y.cores &&
           x.header_fifo_capacity == y.header_fifo_capacity &&
           x.schedule == y.schedule && x.schedule_seed == y.schedule_seed &&
           x.latency_jitter == y.latency_jitter &&
           x.subobject_copy == y.subobject_copy &&
           x.markbit_early_read == y.markbit_early_read;
  }
};

struct Trace {
  TraceHeader header;
  std::vector<TraceOp> ops;

  /// FNV-1a 64 over the canonical binary op encoding (kind byte + three
  /// 8-byte little-endian operands per op). Identical for the JSONL and
  /// binary serializations of the same trace.
  std::uint64_t digest() const;

  /// Number of distinct objects the trace allocates.
  std::uint64_t objects() const;

  /// Explicit kCollect hints (implicit exhaustion cycles not included).
  std::uint64_t collect_hints() const;

  friend bool operator==(const Trace& x, const Trace& y) noexcept {
    return x.header == y.header && x.ops == y.ops;
  }
};

/// Structural validation: simulates root accounting over the op stream and
/// returns every defect found (empty = replayable). load_trace* run this
/// and throw on the first finding, so a successfully loaded trace never
/// needs re-checking.
std::vector<std::string> check_trace(const Trace& trace);

/// JSONL serialization (hwgc-trace-v1 schema; trailing newline included).
std::string trace_to_jsonl(const Trace& trace);
Trace trace_from_jsonl(const std::string& text);

/// Compact binary serialization ("HWGCTRC1" magic, little-endian).
std::string trace_to_binary(const Trace& trace);
Trace trace_from_binary(const std::string& bytes);

/// File round trip. load_trace autodetects the serialization from the
/// leading bytes; both loaders verify digest + structure before returning
/// (TraceError otherwise), so nothing downstream sees a malformed trace.
void save_trace(const std::string& path, const Trace& trace,
                bool binary = false);
Trace load_trace(const std::string& path);

/// Size-scaling transform (`tracectl transform --scale-sizes F`): returns
/// a copy of `trace` whose object data areas are `factor` times larger.
/// Every kAlloc delta is rescaled (rounded, clamped to kMaxDelta), kData
/// stores whose word index falls outside the rescaled area are dropped,
/// and every kRead probe is re-derived — its word count and FNV-1a data
/// digest are recomputed against the transformed stream, so the scaled
/// trace still replays with zero read mismatches. Pointer shapes (pi) and
/// the link topology are untouched: the live graph keeps its structure,
/// only its memory footprint changes. The header's semispace grows when
/// the scaled allocations need the room. Throws std::invalid_argument
/// unless factor > 0; factor == 1 is the identity.
Trace scale_trace_sizes(const Trace& trace, double factor);

/// Schema gate for one hwgc-trace-v1 JSONL line — same contract as
/// validate_bench_jsonl_line, dispatched by schema from bench_validate.
bool validate_trace_jsonl_line(const std::string& line, std::string* error);

}  // namespace hwgc
