#include "workloads/benchmarks.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.hpp"

namespace hwgc {

std::string_view benchmark_name(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kCompress: return "compress";
    case BenchmarkId::kCup: return "cup";
    case BenchmarkId::kDb: return "db";
    case BenchmarkId::kJavac: return "javac";
    case BenchmarkId::kJavacc: return "javacc";
    case BenchmarkId::kJflex: return "jflex";
    case BenchmarkId::kJlisp: return "jlisp";
    case BenchmarkId::kSearch: return "search";
  }
  return "?";
}

const std::vector<BenchmarkId>& all_benchmarks() {
  static const std::vector<BenchmarkId> kAll = {
      BenchmarkId::kCompress, BenchmarkId::kCup,    BenchmarkId::kDb,
      BenchmarkId::kJavac,    BenchmarkId::kJavacc, BenchmarkId::kJflex,
      BenchmarkId::kJlisp,    BenchmarkId::kSearch,
  };
  return kAll;
}

namespace {

std::uint32_t scaled(double scale, std::uint32_t base,
                     std::uint32_t minimum = 1) {
  const double v = static_cast<double>(base) * scale;
  return std::max(minimum, static_cast<std::uint32_t>(std::llround(v)));
}

/// Roots `children` through as many array objects as needed to respect the
/// kMaxPi pointer-area limit (large scales can exceed one array's fan-out).
void attach_rooted_array(GraphPlan& p,
                         const std::vector<std::uint32_t>& children) {
  for (std::size_t start = 0; start < children.size(); start += kMaxPi) {
    const std::size_t count = std::min<std::size_t>(kMaxPi, children.size() - start);
    const std::uint32_t arr = p.add(static_cast<Word>(count), 2);
    p.add_root(arr);
    for (std::size_t i = 0; i < count; ++i) {
      p.link(arr, static_cast<Word>(i), children[start + i]);
    }
  }
}

/// compress — SPEC _201_compress keeps long chains of buffer segments with
/// small side payloads. Object-level parallelism ~2.5: a vine whose nodes
/// carry one cheap leaf each. Extra cores beyond 2-3 find the worklist
/// empty almost always.
GraphPlan plan_compress(double scale, std::uint64_t seed) {
  GraphPlan p;
  Rng rng(seed);
  const std::uint32_t n = scaled(scale, 120'000, 16);
  // Two huge compression buffers: single objects no parallel object-level
  // collector can split (the paper's Section VII motivates sub-object,
  // cache-line-granularity work distribution with exactly this case).
  const std::uint32_t buffers = p.add(2, 2);
  p.add_root(buffers);
  p.link(buffers, 0, p.add(0, std::min<Word>(kMaxDelta, scaled(scale, 60'000))));
  p.link(buffers, 1, p.add(0, std::min<Word>(kMaxDelta, scaled(scale, 60'000))));
  // The segment chain: `next` in field 0 (pipelines across ~2 cores), one
  // cheap side payload per segment. Object-level parallelism saturates
  // around 3 cores (Table I row `compress`).
  std::uint32_t prev = p.add(2, 0);
  p.add_root(prev);
  for (std::uint32_t i = 1; i < n; ++i) {
    const std::uint32_t node = p.add(2, 0);
    const std::uint32_t leaf = p.add(0, rng.chance(0.5) ? 3 : 1);
    p.link(prev, 0, node);
    p.link(prev, 1, leaf);
    prev = node;
  }
  return p;
}

/// search — a recursive linear search structure: a bare chain of tiny
/// nodes. The critical path equals the whole graph; speedup plateaus
/// almost immediately (Table I: 74 % empty at 2 cores already).
GraphPlan plan_search(double scale, std::uint64_t seed) {
  GraphPlan p;
  Rng rng(seed);
  const std::uint32_t n = scaled(scale, 150'000, 8);
  // Field 0 holds an (often null) side branch and field 1 the `next` link:
  // the chain can only advance after the whole node is processed, so the
  // critical path is essentially the sequential walk — no speedup from 2
  // cores on. The 2-deep side branches keep ~1 gray object around so the
  // worklist is rarely empty at 1 core but runs dry with any second core.
  std::uint32_t prev = p.add(2, 1);
  p.add_root(prev);
  for (std::uint32_t i = 1; i < n; ++i) {
    const std::uint32_t node = p.add(2, 1);
    p.link(prev, 1, node);
    if (rng.chance(0.75)) {
      const std::uint32_t side = p.add(1, 0);
      const std::uint32_t tail = p.add(0, 0);
      p.link(side, 0, tail);
      p.link(prev, 0, side);
    }
    prev = node;
  }
  return p;
}

/// db — an in-memory database: an index fans out into thousands of
/// independent record chains; each record owns a small value object.
/// Plenty of parallelism, dominated by header loads for the many small
/// objects.
GraphPlan plan_db(double scale, std::uint64_t seed) {
  GraphPlan p;
  Rng rng(seed);
  const std::uint32_t chains = scaled(scale, 3'000, 4);
  const std::uint32_t records_per_chain = 42;

  const std::uint32_t root = p.add(0, 4);
  p.add_root(root);
  // Index layer: root -> index nodes -> chain heads.
  const std::uint32_t index_fan = 64;
  const std::uint32_t num_index = (chains + index_fan - 1) / index_fan;
  const std::uint32_t index_root = p.add(static_cast<Word>(num_index), 2);
  p.add_root(index_root);
  std::vector<std::uint32_t> index_nodes;
  for (std::uint32_t i = 0; i < num_index; ++i) {
    const std::uint32_t idx = p.add(index_fan, 2);
    index_nodes.push_back(idx);
    p.link(index_root, i, idx);
  }
  for (std::uint32_t c = 0; c < chains; ++c) {
    std::uint32_t prev = 0;
    for (std::uint32_t r = 0; r < records_per_chain; ++r) {
      const std::uint32_t rec = p.add(2, 1);  // field 0: next, 1: value
      const std::uint32_t val = p.add(0, 1 + static_cast<Word>(rng.below(2)));
      p.link(rec, 1, val);
      if (r == 0) {
        p.link(index_nodes[c / index_fan], c % index_fan, rec);
      } else {
        p.link(prev, 0, rec);
      }
      prev = rec;
    }
  }
  return p;
}

/// javac — compiler ASTs: many statement chains whose expression nodes
/// also reference a small set of symbol-table hubs. The hubs are hit by a
/// large fraction of all pointer fields, producing the header-lock CAM
/// conflicts of Table II (29 % at 16 cores).
GraphPlan plan_javac(double scale, std::uint64_t seed) {
  GraphPlan p;
  Rng rng(seed);
  const std::uint32_t methods = scaled(scale, 4'000, 2);
  const std::uint32_t stmts_per_method = 40;
  const std::uint32_t num_hubs = 24;

  // Hot symbol-table hubs; selection is heavily skewed so a handful of
  // addresses collide in the header-lock CAM.
  std::vector<std::uint32_t> hubs;
  const std::uint32_t symtab = p.add(num_hubs, 2);
  p.add_root(symtab);
  for (std::uint32_t h = 0; h < num_hubs; ++h) {
    const std::uint32_t hub = p.add(0, 6);
    p.link(symtab, h, hub);
    hubs.push_back(hub);
  }
  auto pick_hub = [&]() -> std::uint32_t {
    // ~70 % of references go to the two hottest hubs; this fan-in is what
    // collides in the header-lock CAM (Table II row `javac`).
    return rng.chance(0.7) ? hubs[rng.below(2)] : hubs[rng.below(num_hubs)];
  };

  std::vector<std::uint32_t> method_heads;
  method_heads.reserve(methods);
  for (std::uint32_t m = 0; m < methods; ++m) {
    std::uint32_t prev = 0;
    for (std::uint32_t s = 0; s < stmts_per_method; ++s) {
      // Statement: next + expression + two symbol references.
      const std::uint32_t stmt = p.add(4, 2);
      const std::uint32_t expr = p.add(2, 1);
      p.link(stmt, 1, expr);
      p.link(stmt, 2, pick_hub());
      p.link(stmt, 3, pick_hub());
      p.link(expr, 0, pick_hub());
      if (rng.chance(0.5)) {
        const std::uint32_t lit = p.add(0, 2);
        p.link(expr, 1, lit);
      }
      if (s == 0) {
        method_heads.push_back(stmt);
      } else {
        p.link(prev, 0, stmt);
      }
      prev = stmt;
    }
  }
  attach_rooted_array(p, method_heads);
  return p;
}

/// javacc — parser generator: a forest of narrow production trees. Wide
/// enough for 16 cores, with moderate per-node work.
GraphPlan plan_javacc(double scale, std::uint64_t seed) {
  GraphPlan p;
  Rng rng(seed);
  const std::uint32_t trees = scaled(scale, 5'000, 2);
  std::vector<std::uint32_t> tree_heads;
  tree_heads.reserve(trees);
  for (std::uint32_t t = 0; t < trees; ++t) {
    // Narrow tree: a spine of ~16 nodes, each with a small branch.
    std::uint32_t prev = 0;
    for (std::uint32_t s = 0; s < 16; ++s) {
      const std::uint32_t node = p.add(2, 1 + static_cast<Word>(rng.below(2)));
      if (s == 0) {
        tree_heads.push_back(node);
      } else {
        p.link(prev, 0, node);
      }
      if (rng.chance(0.7)) {
        const std::uint32_t branch = p.add(rng.chance(0.3) ? 1 : 0, 1);
        p.link(node, 1, branch);
        if (p.nodes[branch].pi == 1) {
          const std::uint32_t leaf = p.add(0, 1);
          p.link(branch, 0, leaf);
        }
      }
      prev = node;
    }
  }
  attach_rooted_array(p, tree_heads);
  return p;
}

/// jflex — scanner generator: a few long DFA transition chains. Enough
/// parallelism for ~8 cores; at 16 the worklist runs dry (Table I: 35 %).
GraphPlan plan_jflex(double scale, std::uint64_t seed) {
  GraphPlan p;
  Rng rng(seed);
  const std::uint32_t chains = 6;  // parallelism knob — deliberately fixed
  const std::uint32_t len = scaled(scale, 14'000, 4);
  const std::uint32_t root = p.add(chains, 2);
  p.add_root(root);
  for (std::uint32_t c = 0; c < chains; ++c) {
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i < len; ++i) {
      // State node: next + one cheap attached action.
      const std::uint32_t node = p.add(2, 2);
      const std::uint32_t action = p.add(0, static_cast<Word>(rng.below(2)));
      p.link(node, 1, action);
      if (i == 0) {
        p.link(root, c, node);
      } else {
        p.link(prev, 0, node);
      }
      prev = node;
    }
  }
  return p;
}

/// jlisp — a Lisp interpreter's small cons-cell heap: a modest binary tree.
GraphPlan plan_jlisp(double scale, std::uint64_t seed) {
  GraphPlan p;
  Rng rng(seed);
  const std::uint32_t n = scaled(scale, 15'000, 8);
  const std::uint32_t root = p.add(2, 1);
  p.add_root(root);
  std::vector<std::uint32_t> frontier{root};
  std::uint32_t made = 1;
  std::size_t next = 0;
  while (made + 1 < n && next < frontier.size()) {
    const std::uint32_t parent = frontier[next++];
    for (Word f = 0; f < 2 && made + 1 < n; ++f) {
      // 70 % interior cons cells, 30 % atoms (pi = 0), so interior pointer
      // fields are almost always non-null and incur header transactions.
      // Force an interior cell when the frontier is about to die out.
      const bool must_extend = frontier.size() - next < 2;
      if (must_extend || rng.chance(0.7)) {
        const std::uint32_t cell = p.add(2, 0);
        p.link(parent, f, cell);
        frontier.push_back(cell);
        ++made;
      } else {
        const std::uint32_t atom = p.add(0, 1);
        p.link(parent, f, atom);
        ++made;
      }
    }
  }
  return p;
}

/// cup — parser tables: a very wide, shallow graph. Scanning the spine
/// floods the worklist with far more gray objects than the 32k-entry
/// header FIFO can hold; the resulting overflow misses stretch the scan
/// critical section (Table II: 10.5 % scan-lock, 38.6 % header-load).
GraphPlan plan_cup(double scale, std::uint64_t seed) {
  GraphPlan p;
  Rng rng(seed);
  // Part 1: the bulk of the parser's data — a deep forest of production
  // chains that provides most of the collection work at healthy
  // parallelism.
  const std::uint32_t chains = scaled(scale, 2'600, 4);
  const std::uint32_t chain_len = 28;
  std::vector<std::uint32_t> chain_heads;
  chain_heads.reserve(chains);
  for (std::uint32_t c = 0; c < chains; ++c) {
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i < chain_len; ++i) {
      const std::uint32_t node = p.add(2, 2);
      const std::uint32_t leaf = p.add(0, 1);
      p.link(node, 1, leaf);
      if (i == 0) {
        chain_heads.push_back(node);
      } else {
        p.link(prev, 0, node);
      }
      prev = node;
    }
  }
  attach_rooted_array(p, chain_heads);
  // Part 2: the parse tables — a large *bushy* tree of tiny entries.
  // While every core is busy scanning interior nodes, each scan produces
  // ~3 evacuations but only one fetch, so the gray population balloons
  // past the 32k-entry header FIFO. The lost headers must then be re-read
  // from memory *inside* the scan critical section: Table II's 10 %
  // scan-lock / high header-load stalls. The tree size is deliberately
  // INDEPENDENT of `scale`: the FIFO is a fixed hardware resource and
  // cup's tables a fixed artifact of its grammar.
  const std::uint32_t table_nodes = 80'000;
  const std::uint32_t table_root = p.add(3, 0);
  p.add_root(table_root);
  std::vector<std::uint32_t> frontier{table_root};
  std::size_t next = 0;
  for (std::uint32_t made = 1; made < table_nodes;) {
    const std::uint32_t parent = frontier[next++];
    for (Word f = 0; f < 3 && made < table_nodes; ++f, ++made) {
      if (rng.chance(0.8)) {
        const std::uint32_t entry = p.add(3, 0);
        p.link(parent, f, entry);
        frontier.push_back(entry);
      } else {
        p.link(parent, f, p.add(0, 1));
      }
    }
  }
  return p;
}

}  // namespace

GraphPlan make_benchmark_plan(BenchmarkId id, double scale,
                              std::uint64_t seed) {
  if (scale <= 0.0) throw std::invalid_argument("scale must be positive");
  switch (id) {
    case BenchmarkId::kCompress: return plan_compress(scale, seed);
    case BenchmarkId::kCup: return plan_cup(scale, seed);
    case BenchmarkId::kDb: return plan_db(scale, seed);
    case BenchmarkId::kJavac: return plan_javac(scale, seed);
    case BenchmarkId::kJavacc: return plan_javacc(scale, seed);
    case BenchmarkId::kJflex: return plan_jflex(scale, seed);
    case BenchmarkId::kJlisp: return plan_jlisp(scale, seed);
    case BenchmarkId::kSearch: return plan_search(scale, seed);
  }
  throw std::invalid_argument("unknown benchmark id");
}

Workload make_benchmark(BenchmarkId id, double scale, std::uint64_t seed) {
  return materialize(make_benchmark_plan(id, scale, seed));
}

}  // namespace hwgc
