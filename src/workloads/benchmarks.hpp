// Synthetic stand-ins for the paper's eight Java benchmarks.
//
// We cannot run SPEC-jvm98/javacc/jflex/jlisp on the simulated coprocessor
// (the prototype's Java toolchain is not available), but the collection-
// time behaviour the paper measures is a function of the *heap shape*
// alone: object-size distribution, graph linearity (object-level
// parallelism), fan-in hot spots and gray-population width. Each generator
// below reproduces the shape the paper attributes to its benchmark; see
// DESIGN.md §6 for the recipe table and EXPERIMENTS.md for the calibration.
//
//   compress  linear vine with cheap leaf nodes — object-level parallelism
//             saturates around 2-3 cores (Table I: empty worklist >98 %
//             from 4 cores on).
//   search    pure linear chain of tiny nodes — essentially no parallelism
//             (empty worklist from 2 cores on).
//   db        thousands of independent record chains with per-record value
//             objects — scales well; header-load bound at 16 cores.
//   javac     many statement chains whose expression nodes reference a few
//             hot symbol-table "hub" objects — header-LOCK contention.
//   javacc    a forest of narrow parse trees — scales well, modest stalls.
//   jflex     a handful of long transition chains — scales to ~8 cores,
//             starves at 16 (Table I: 35 % empty).
//   jlisp     a small cons-cell tree — tiny live set, small totals.
//   cup       very wide two-level parser-table graph — the gray population
//             exceeds the 32k-entry header FIFO, causing overflow misses
//             and the prolonged scan critical section of Table II.
#pragma once

#include <string_view>
#include <vector>

#include "workloads/graph_plan.hpp"

namespace hwgc {

enum class BenchmarkId {
  kCompress,
  kCup,
  kDb,
  kJavac,
  kJavacc,
  kJflex,
  kJlisp,
  kSearch,
};

std::string_view benchmark_name(BenchmarkId id);

/// All eight benchmarks in the paper's (alphabetical) table order.
const std::vector<BenchmarkId>& all_benchmarks();

/// Builds the graph plan for one benchmark. `scale` multiplies the live-set
/// size (1.0 reproduces paper-magnitude collection cycles; benches default
/// to smaller scales for runtime, which does not change the shape of the
/// results — the paper notes heap size had little influence). `seed` varies
/// the pseudo-random details of the shape.
GraphPlan make_benchmark_plan(BenchmarkId id, double scale = 1.0,
                              std::uint64_t seed = 42);

/// Convenience: plan + materialize with the default 2x heap factor.
Workload make_benchmark(BenchmarkId id, double scale = 1.0,
                        std::uint64_t seed = 42);

}  // namespace hwgc
