// Convenience layer for constructing object graphs in a Heap.
//
// The benchmark generators (benchmarks.hpp) use this to lay down the
// synthetic heap shapes that stand in for the paper's Java benchmark heaps.
// The builder tracks every allocation so generators can post-link nodes and
// tests can reason about the constructed graph.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "heap/heap.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace hwgc {

class GraphBuilder {
 public:
  explicit GraphBuilder(Heap& heap, std::uint64_t seed = 1)
      : heap_(heap), rng_(seed) {}

  /// Allocates a node; data words are filled with a deterministic pattern
  /// derived from the allocation index so the verifier can detect any
  /// corruption during copying.
  Addr node(Word pi, Word delta) {
    const Addr obj = heap_.allocate(pi, delta);
    if (obj == kNullPtr) {
      throw std::runtime_error(
          "GraphBuilder: heap exhausted while building workload");
    }
    for (Word j = 0; j < delta; ++j) {
      heap_.set_data(obj, j,
                     static_cast<Word>(0x9e370000u ^ (count_ * 31 + j)));
    }
    ++count_;
    nodes_.push_back(obj);
    return obj;
  }

  void link(Addr parent, Word field, Addr child) {
    heap_.set_pointer(parent, field, child);
  }

  void add_root(Addr obj) { heap_.roots().push_back(obj); }

  /// All nodes allocated through this builder, in allocation order.
  const std::vector<Addr>& nodes() const noexcept { return nodes_; }
  std::uint64_t count() const noexcept { return count_; }

  Heap& heap() noexcept { return heap_; }
  Rng& rng() noexcept { return rng_; }

 private:
  Heap& heap_;
  Rng rng_;
  std::uint64_t count_ = 0;
  std::vector<Addr> nodes_;
};

}  // namespace hwgc
