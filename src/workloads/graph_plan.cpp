#include "workloads/graph_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "heap/object_model.hpp"

namespace hwgc {

std::uint64_t GraphPlan::live_words() const {
  std::uint64_t words = 0;
  for (const auto& n : nodes) {
    if (!n.garbage) words += object_words(n.pi, n.delta);
  }
  return words;
}

std::uint64_t GraphPlan::total_words() const {
  std::uint64_t words = 0;
  for (const auto& n : nodes) words += object_words(n.pi, n.delta);
  return words;
}

std::uint64_t GraphPlan::live_nodes() const {
  std::uint64_t count = 0;
  for (const auto& n : nodes) {
    if (!n.garbage) ++count;
  }
  return count;
}

Workload materialize(const GraphPlan& plan, double heap_factor) {
  const std::uint64_t live = plan.live_words();
  const std::uint64_t total = plan.total_words();
  const std::uint64_t wanted =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(
                                  static_cast<double>(live) * heap_factor),
                              total + 64);
  if (wanted > 0xF0000000ULL) {
    throw std::invalid_argument("workload too large for a 32-bit heap");
  }

  Workload w;
  w.heap = std::make_unique<Heap>(static_cast<Word>(wanted));
  w.live_objects = plan.live_nodes();
  w.live_words = live;
  w.node_addrs.reserve(plan.nodes.size());

  std::uint64_t salt = 0;
  for (const auto& n : plan.nodes) {
    const Addr obj = w.heap->allocate(n.pi, n.delta);
    if (obj == kNullPtr) {
      throw std::runtime_error("materialize: heap sizing bug (allocation failed)");
    }
    // Deterministic data pattern so the verifier catches copy corruption.
    for (Word j = 0; j < n.delta; ++j) {
      w.heap->set_data(obj, j, static_cast<Word>(0x5eed0000u ^ (salt + j)));
    }
    salt += 131;
    w.node_addrs.push_back(obj);
  }
  for (const auto& e : plan.edges) {
    w.heap->set_pointer(w.node_addrs[e.src], e.field, w.node_addrs[e.dst]);
  }
  for (std::uint32_t r : plan.roots) {
    w.heap->roots().push_back(w.node_addrs[r]);
  }
  return w;
}

}  // namespace hwgc
