// Host-side description of an object graph, independent of any Heap.
//
// Benchmark generators produce a GraphPlan; `materialize` lays it out in a
// fresh Heap sized per the paper's rule of thumb (twice the minimal heap,
// Section VI-B). Keeping the plan separate from the heap lets the
// coprocessor simulator, the software baselines and the property tests all
// run the *same* graph.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "heap/heap.hpp"
#include "sim/types.hpp"

namespace hwgc {

struct GraphPlan {
  struct Node {
    Word pi = 0;
    Word delta = 0;
    bool garbage = false;  ///< allocated but never reachable from a root
  };
  struct Edge {
    std::uint32_t src = 0;
    Word field = 0;
    std::uint32_t dst = 0;
  };

  std::vector<Node> nodes;
  std::vector<Edge> edges;
  std::vector<std::uint32_t> roots;  ///< indices into nodes

  std::uint32_t add(Word pi, Word delta, bool garbage = false) {
    nodes.push_back(Node{pi, delta, garbage});
    return static_cast<std::uint32_t>(nodes.size() - 1);
  }
  void link(std::uint32_t src, Word field, std::uint32_t dst) {
    edges.push_back(Edge{src, field, dst});
  }
  void add_root(std::uint32_t n) { roots.push_back(n); }

  /// Words occupied by live (non-garbage) nodes. Note: reachability is the
  /// generator's responsibility; a node marked live must be linked from a
  /// root.
  std::uint64_t live_words() const;
  std::uint64_t total_words() const;
  std::uint64_t live_nodes() const;
};

/// A materialized workload: the heap plus bookkeeping for benches/tests.
struct Workload {
  std::unique_ptr<Heap> heap;
  std::vector<Addr> node_addrs;  ///< plan index -> heap address
  std::uint64_t live_objects = 0;
  std::uint64_t live_words = 0;
};

/// Builds a heap containing the plan's graph. The semispace is sized
/// `heap_factor` x the live words (default 2.0, the paper's rule of thumb),
/// but never smaller than needed to hold everything allocated.
Workload materialize(const GraphPlan& plan, double heap_factor = 2.0);

}  // namespace hwgc
