#include "workloads/lisp.hpp"

#include <cctype>
#include <stdexcept>

namespace hwgc {

namespace {
enum Tag : Word { kConsTag = 0, kIntTag = 1, kSymTag = 2, kClosureTag = 3 };
}  // namespace

SimConfig Lisp::default_config() {
  SimConfig cfg;
  cfg.coprocessor.num_cores = 8;
  return cfg;
}

std::vector<std::string> Lisp::demo_program(unsigned fib_n, unsigned range_n) {
  return {
      "(define fib (lambda (n) (if (< n 2) n (+ (fib (- n 1)) "
      "(fib (- n 2))))))",
      "(fib " + std::to_string(fib_n) + ")",
      "(define range (lambda (n) (if (= n 0) (quote ()) "
      "(cons n (range (- n 1))))))",
      "(define sum (lambda (l acc) (if (null? l) acc "
      "(sum (cdr l) (+ acc (car l))))))",
      "(sum (range " + std::to_string(range_n) + ") 0)",
      "(car (cdr (quote (10 20 30))))",
  };
}

Lisp::Lisp(Word semispace_words, SimConfig cfg) : rt_(semispace_words, cfg) {}

std::string Lisp::run(const std::string& src) {
  std::size_t pos = 0;
  Ref expr = parse(src, pos);
  Ref result = eval(expr, globals_);
  release(expr);
  const std::string out = print(result);
  release(result);
  return out;
}

void Lisp::define_global(const std::string& name, Ref value) {
  Ref sym = symbol(name);
  Ref pair = cons(sym, value);
  Ref extended = cons(pair, globals_);
  release(sym);
  release(pair);
  release(globals_);
  globals_ = extended;
}

// --- constructors ----------------------------------------------------------

Runtime::Ref Lisp::cons(Ref car_v, Ref cdr_v) {
  Ref c = rt_.alloc(2, 1);
  rt_.set_data(c, 0, kConsTag);
  rt_.set_ptr(c, 0, car_v);
  rt_.set_ptr(c, 1, cdr_v);
  return c;
}

Runtime::Ref Lisp::number(std::int32_t v) {
  Ref n = rt_.alloc(0, 2);
  rt_.set_data(n, 0, kIntTag);
  rt_.set_data(n, 1, static_cast<Word>(v));
  return n;
}

std::int32_t Lisp::int_of(Ref n) const {
  if (n.is_null() || tag(n) != kIntTag) {
    throw std::runtime_error("type error: expected an integer");
  }
  return static_cast<std::int32_t>(rt_.get_data(n, 1));
}

Runtime::Ref Lisp::symbol(const std::string& name) {
  // The interned table owns one permanent root per symbol; callers get
  // (and may freely release) duplicates.
  auto it = interned_.find(name);
  if (it != interned_.end()) return rt_.dup(it->second);
  Ref s = rt_.alloc(0, 1 + static_cast<Word>(name.size()));
  rt_.set_data(s, 0, kSymTag);
  for (std::size_t i = 0; i < name.size(); ++i) {
    rt_.set_data(s, 1 + static_cast<Word>(i), static_cast<Word>(name[i]));
  }
  interned_.emplace(name, s);
  return rt_.dup(s);
}

std::string Lisp::sym_name(Ref s) const {
  std::string out;
  for (Word i = 1; i < rt_.delta(s); ++i) {
    out.push_back(static_cast<char>(rt_.get_data(s, i)));
  }
  return out;
}

Runtime::Ref Lisp::closure(Ref params, Ref body, Ref env) {
  Ref c = rt_.alloc(3, 1);
  rt_.set_data(c, 0, kClosureTag);
  rt_.set_ptr(c, 0, params);
  rt_.set_ptr(c, 1, body);
  rt_.set_ptr(c, 2, env);
  return c;
}

// --- parser ----------------------------------------------------------------

Runtime::Ref Lisp::parse(const std::string& s, std::size_t& pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
    ++pos;
  if (pos >= s.size()) throw std::runtime_error("unexpected end of input");
  if (s[pos] == '(') {
    ++pos;
    return parse_list(s, pos);
  }
  if (s[pos] == ')') throw std::runtime_error("unexpected )");
  std::size_t start = pos;
  while (pos < s.size() && !std::isspace(static_cast<unsigned char>(s[pos])) &&
         s[pos] != '(' && s[pos] != ')')
    ++pos;
  const std::string token = s.substr(start, pos - start);
  if (std::isdigit(static_cast<unsigned char>(token[0])) ||
      (token.size() > 1 && token[0] == '-')) {
    return number(std::stoi(token));
  }
  return symbol(token);
}

Runtime::Ref Lisp::parse_list(const std::string& s, std::size_t& pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
    ++pos;
  if (pos >= s.size()) throw std::runtime_error("unterminated list");
  if (s[pos] == ')') {
    ++pos;
    return Ref{};  // nil
  }
  Ref head = parse(s, pos);
  Ref tail = parse_list(s, pos);
  Ref cell = cons(head, tail);
  release(head);
  release(tail);
  return cell;
}

// --- evaluator -------------------------------------------------------------

bool Lisp::try_lookup(Ref env, Ref sym, Ref& out) {
  // env is an assoc list of (symbol . value) pairs.
  Ref cur = rt_.dup(env);
  while (!cur.is_null()) {
    Ref pair = car(cur);
    Ref key = car(pair);
    if (rt_.address_of(key) == rt_.address_of(sym)) {
      out = cdr(pair);
      release(pair);
      release(key);
      release(cur);
      return true;
    }
    Ref next = cdr(cur);
    release(pair);
    release(key);
    release(cur);
    cur = next;
  }
  return false;
}

Runtime::Ref Lisp::lookup(Ref env, Ref sym) {
  Ref out;
  if (try_lookup(env, sym, out)) return out;
  // Top-level definitions made after a closure was created are still
  // visible (needed for self-recursive functions like fib).
  if (try_lookup(globals_, sym, out)) return out;
  throw std::runtime_error("unbound symbol: " + sym_name(sym));
}

Runtime::Ref Lisp::eval(Ref expr, Ref env) {
  if (expr.is_null()) return Ref{};
  switch (tag(expr)) {
    case kIntTag:
    case kClosureTag:
      return rt_.dup(expr);
    case kSymTag:
      return lookup(env, expr);
    default:
      break;
  }
  // A form: dispatch on the head.
  Ref head = car(expr);
  const std::string op = tag(head) == kSymTag ? sym_name(head) : "";
  release(head);
  Ref args = cdr(expr);

  if (op == "quote") {
    Ref quoted = car(args);
    release(args);
    return quoted;
  }
  if (op == "if") {
    Ref cond_e = car(args);
    Ref rest = cdr(args);
    Ref cond = eval(cond_e, env);
    const bool truthy =
        !cond.is_null() && !(tag(cond) == kIntTag && int_of(cond) == 0);
    release(cond_e);
    release(cond);
    Ref then_e = car(rest);
    Ref else_l = cdr(rest);
    Ref result;
    if (truthy) {
      result = eval(then_e, env);
    } else if (!else_l.is_null()) {
      Ref else_e = car(else_l);
      result = eval(else_e, env);
      release(else_e);
    }
    release(then_e);
    release(else_l);
    release(rest);
    release(args);
    return result;
  }
  if (op == "define") {
    Ref name = car(args);
    Ref rest = cdr(args);
    Ref value_e = car(rest);
    Ref value = eval(value_e, env);
    define_global(sym_name(name), value);
    release(name);
    release(rest);
    release(value_e);
    release(args);
    return value;
  }
  if (op == "lambda") {
    Ref params = car(args);
    Ref rest = cdr(args);
    Ref body = car(rest);
    Ref result = closure(params, body, env);
    release(params);
    release(rest);
    release(body);
    release(args);
    return result;
  }

  // Application: evaluate the operator (unless it names a builtin)
  // and the operands.
  Ref fn;
  if (!is_builtin(op)) {
    Ref fn_e = car(expr);
    fn = eval(fn_e, env);
    release(fn_e);
  }
  std::vector<Ref> vals;
  Ref cur = rt_.dup(args);
  while (!cur.is_null()) {
    Ref arg_e = car(cur);
    vals.push_back(eval(arg_e, env));
    release(arg_e);
    Ref next = cdr(cur);
    release(cur);
    cur = next;
  }
  release(args);

  Ref result = apply(fn, vals, op);
  release(fn);
  for (Ref v : vals) release(v);
  return result;
}

bool Lisp::is_builtin(const std::string& op) {
  return op == "+" || op == "-" || op == "*" || op == "<" || op == "=" ||
         op == "cons" || op == "car" || op == "cdr" || op == "null?";
}

Runtime::Ref Lisp::apply(Ref fn, const std::vector<Ref>& vals,
                         const std::string& op) {
  if (!fn.is_null() && tag(fn) == kClosureTag) {
    Ref params = rt_.load_ptr(fn, 0);
    Ref body = rt_.load_ptr(fn, 1);
    Ref env = rt_.load_ptr(fn, 2);
    // Bind arguments (walk a duplicate; params stays owned separately).
    Ref cur = rt_.dup(params);
    std::size_t i = 0;
    while (!cur.is_null() && i < vals.size()) {
      Ref name = car(cur);
      Ref pair = cons(name, vals[i]);
      Ref new_env = cons(pair, env);
      release(pair);
      release(name);
      release(env);
      env = new_env;
      Ref next = cdr(cur);
      release(cur);
      cur = next;
      ++i;
    }
    release(cur);
    Ref result = eval(body, env);
    release(params);
    release(body);
    release(env);
    return result;
  }
  // Builtins.
  auto need = [&](std::size_t n) {
    if (vals.size() != n) throw std::runtime_error("arity error in " + op);
  };
  if (op == "+" || op == "-" || op == "*" || op == "<" || op == "=") {
    need(2);
    const std::int32_t a = int_of(vals[0]);
    const std::int32_t b = int_of(vals[1]);
    if (op == "+") return number(a + b);
    if (op == "-") return number(a - b);
    if (op == "*") return number(a * b);
    if (op == "<") return number(a < b ? 1 : 0);
    return number(a == b ? 1 : 0);
  }
  if (op == "null?") {
    need(1);
    return number(vals[0].is_null() ? 1 : 0);
  }
  if (op == "cons") {
    need(2);
    return cons(vals[0], vals[1]);
  }
  if (op == "car") {
    need(1);
    return car(vals[0]);
  }
  if (op == "cdr") {
    need(1);
    return cdr(vals[0]);
  }
  throw std::runtime_error("not a function: " + op);
}

// --- printer ---------------------------------------------------------------

std::string Lisp::print(Ref v) {
  if (v.is_null()) return "()";
  switch (tag(v)) {
    case kIntTag:
      return std::to_string(int_of(v));
    case kSymTag:
      return sym_name(v);
    case kClosureTag:
      return "#<closure>";
    default: {
      std::string out = "(";
      Ref cur = rt_.dup(v);
      bool first = true;
      while (!cur.is_null() && tag(cur) == kConsTag) {
        Ref head = car(cur);
        out += (first ? "" : " ") + print(head);
        release(head);
        first = false;
        Ref next = cdr(cur);
        release(cur);
        cur = next;
      }
      release(cur);
      return out + ")";
    }
  }
}

}  // namespace hwgc
