// A miniature Lisp interpreter running on the managed heap — the
// "representative program" behind examples/lisp_interpreter and the trace
// corpus (the paper's prototype ran Java applications; jlisp, one of its
// benchmarks, is a Lisp interpreter, which this recreates natively).
//
// All interpreter data lives in collected objects:
//   cons cell : pi=2 (car, cdr), delta=1 (tag)
//   integer   : pi=0, delta=2 (tag, value)
//   symbol    : pi=0, delta=1+n (tag, chars)  — interned
//   closure   : pi=3 (params, body, env), delta=1 (tag)
// Environments are assoc lists of cons cells, so deep recursion churns the
// heap and the GC coprocessor runs many cycles mid-evaluation. Host-side
// Refs are GC roots, which gives exact rooting for free — and every heap
// operation goes through the Runtime façade, so a TraceRecorder attached to
// runtime() captures a complete, replayable hwgc-trace-v1 stream of an
// evaluation session.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace hwgc {

class Lisp {
 public:
  /// The constructor performs no heap operations, so a TraceRecorder may be
  /// attached to runtime() right after construction (zero live roots).
  explicit Lisp(Word semispace_words = 20'000, SimConfig cfg = default_config());

  /// Parses and evaluates one expression; returns its printed form.
  std::string run(const std::string& src);

  void define_global(const std::string& name, Runtime::Ref value);

  std::size_t gc_cycles() const { return rt_.gc_history().size(); }
  std::uint64_t allocations() const { return rt_.heap().objects_allocated(); }

  Runtime& runtime() noexcept { return rt_; }

  /// 8 GC cores — the paper's prototype configuration.
  static SimConfig default_config();

  /// The demo session examples/lisp_interpreter runs (fib, range/sum,
  /// list accessors); `scale` bounds the recursion depths so the trace
  /// corpus can record a compact variant of the same program.
  static std::vector<std::string> demo_program(unsigned fib_n = 16,
                                               unsigned range_n = 60);

 private:
  using Ref = Runtime::Ref;

  Word tag(Ref r) const { return rt_.get_data(r, 0); }
  void release(Ref r) { rt_.release(r); }

  Ref cons(Ref car_v, Ref cdr_v);
  Ref number(std::int32_t v);
  std::int32_t int_of(Ref n) const;
  Ref symbol(const std::string& name);
  std::string sym_name(Ref s) const;
  Ref closure(Ref params, Ref body, Ref env);
  Ref car(Ref c) { return rt_.load_ptr(c, 0); }
  Ref cdr(Ref c) { return rt_.load_ptr(c, 1); }

  Ref parse(const std::string& s, std::size_t& pos);
  Ref parse_list(const std::string& s, std::size_t& pos);

  bool try_lookup(Ref env, Ref sym, Ref& out);
  Ref lookup(Ref env, Ref sym);
  Ref eval(Ref expr, Ref env);
  static bool is_builtin(const std::string& op);
  Ref apply(Ref fn, const std::vector<Ref>& vals, const std::string& op);
  std::string print(Ref v);

  Runtime rt_;
  Ref globals_{};  // assoc list of global bindings
  std::map<std::string, Ref> interned_;
};

}  // namespace hwgc
