#include "workloads/mutator.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "heap/object_model.hpp"

namespace hwgc {

ShadowMutator::ShadowMutator(Config cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.target_live == 0) {
    throw std::invalid_argument(
        "ShadowMutator: target_live must be >= 1 (a target of 0 can never "
        "hold a rooted object)");
  }
  if (cfg_.max_pi > kMaxPi || cfg_.max_delta > kMaxDelta) {
    throw std::invalid_argument(
        "ShadowMutator: max_pi/max_delta (" + std::to_string(cfg_.max_pi) +
        "/" + std::to_string(cfg_.max_delta) +
        ") exceed the header encoding limits (" + std::to_string(kMaxPi) +
        "/" + std::to_string(kMaxDelta) + ")");
  }
}

ShadowMutator::Image ShadowMutator::save_image() const {
  Image img;
  img.rng = rng_.state();
  img.objs = objs_;
  img.live = live_;
  img.allocations = allocations_;
  return img;
}

void ShadowMutator::restore_image(const Image& img) {
  rng_.set_state(img.rng);
  objs_ = img.objs;
  live_ = img.live;
  allocations_ = img.allocations;
}

std::size_t ShadowMutator::live_rooted() const noexcept {
  std::size_t n = 0;
  for (std::size_t i : live_) {
    if (objs_[i].rooted) ++n;
  }
  return n;
}

std::size_t ShadowMutator::pick_live() {
  return live_[rng_.below(live_.size())];
}

void ShadowMutator::step(Runtime& rt) {
  // A max-shape object that cannot fit an *empty* semispace would survive
  // any number of collections and still throw from alloc() — reject the
  // configuration the first time the target heap is known instead.
  const Word worst = object_words(cfg_.max_pi, cfg_.max_delta);
  if (worst > rt.heap().capacity_words()) {
    throw std::invalid_argument(
        "ShadowMutator: a max-shape object needs " + std::to_string(worst) +
        " words (header + max_pi=" + std::to_string(cfg_.max_pi) +
        " + max_delta=" + std::to_string(cfg_.max_delta) +
        ") but the semispace holds only " +
        std::to_string(rt.heap().capacity_words()) +
        " — this churn can never fit");
  }
  const std::size_t rooted = live_rooted();
  const double r = rng_.uniform01();

  // Allocation pressure grows when below target; release pressure above.
  if (live_.empty() || (r < 0.45 && rooted < cfg_.target_live * 2)) {
    const Word pi = static_cast<Word>(rng_.below(cfg_.max_pi + 1));
    const Word delta = static_cast<Word>(rng_.below(cfg_.max_delta + 1));
    ShadowObj obj;
    obj.ref = rt.alloc(pi, delta);
    obj.rooted = true;
    obj.pi = pi;
    obj.delta = delta;
    obj.children.assign(pi, -1);
    obj.data.resize(delta);
    for (Word j = 0; j < delta; ++j) {
      obj.data[j] = static_cast<Word>(rng_());
      rt.set_data(obj.ref, j, obj.data[j]);
    }
    objs_.push_back(std::move(obj));
    live_.push_back(objs_.size() - 1);
    ++allocations_;
    return;
  }
  if (r < 0.65) {  // link two rooted objects
    const std::size_t pi_idx = pick_live();
    ShadowObj& parent = objs_[pi_idx];
    if (!parent.rooted || parent.pi == 0) return;
    const std::size_t ci = pick_live();
    if (!objs_[ci].rooted) return;
    const Word field = static_cast<Word>(rng_.below(parent.pi));
    rt.set_ptr(parent.ref, field, objs_[ci].ref);
    parent.children[field] = static_cast<std::int64_t>(ci);
    return;
  }
  if (r < 0.75) {  // unlink a field
    const std::size_t idx = pick_live();
    ShadowObj& parent = objs_[idx];
    if (!parent.rooted || parent.pi == 0) return;
    const Word field = static_cast<Word>(rng_.below(parent.pi));
    rt.set_ptr_null(parent.ref, field);
    parent.children[field] = -1;
    return;
  }
  if (r < 0.9) {  // overwrite a data word
    const std::size_t idx = pick_live();
    ShadowObj& obj = objs_[idx];
    if (!obj.rooted || obj.delta == 0) return;
    const Word j = static_cast<Word>(rng_.below(obj.delta));
    obj.data[j] = static_cast<Word>(rng_());
    rt.set_data(obj.ref, j, obj.data[j]);
    return;
  }
  // Release a root: the object (and whatever only it reaches) becomes
  // garbage unless still linked from another reachable object.
  if (rooted > cfg_.target_live / 2) {
    const std::size_t idx = pick_live();
    ShadowObj& obj = objs_[idx];
    if (!obj.rooted) return;
    rt.release(obj.ref);
    obj.rooted = false;
    obj.ref = Runtime::Ref();
    shadow_collect();
  }
}

void ShadowMutator::shadow_collect() {
  // Mark from rooted shadow objects.
  std::vector<char> mark(objs_.size(), 0);
  std::deque<std::size_t> queue;
  for (std::size_t i : live_) {
    if (objs_[i].rooted && !mark[i]) {
      mark[i] = 1;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const std::size_t i = queue.front();
    queue.pop_front();
    for (std::int64_t c : objs_[i].children) {
      if (c >= 0 && !mark[static_cast<std::size_t>(c)]) {
        mark[static_cast<std::size_t>(c)] = 1;
        queue.push_back(static_cast<std::size_t>(c));
      }
    }
  }
  std::vector<std::size_t> survivors;
  survivors.reserve(live_.size());
  for (std::size_t i : live_) {
    if (mark[i]) survivors.push_back(i);
  }
  live_ = std::move(survivors);
}

std::size_t ShadowMutator::validate(Runtime& rt) const {
  std::size_t mismatches = 0;
  // shadow index -> heap address as discovered during the walk.
  std::unordered_map<std::size_t, Addr> seen;

  struct Visit {
    std::size_t shadow;
    Runtime::Ref ref;
    bool owned;  // temp root to release after the walk
  };
  std::vector<Visit> stack;
  std::vector<Runtime::Ref> temps;

  for (std::size_t i : live_) {
    if (objs_[i].rooted) stack.push_back({i, objs_[i].ref, false});
  }
  while (!stack.empty()) {
    const Visit v = stack.back();
    stack.pop_back();
    const ShadowObj& s = objs_[v.shadow];
    const Addr addr = rt.address_of(v.ref);
    auto [it, inserted] = seen.emplace(v.shadow, addr);
    if (!inserted) {
      if (it->second != addr) ++mismatches;  // aliasing broken
      continue;
    }
    if (rt.pi(v.ref) != s.pi || rt.delta(v.ref) != s.delta) {
      ++mismatches;
      continue;
    }
    for (Word j = 0; j < s.delta; ++j) {
      if (rt.get_data(v.ref, j) != s.data[j]) ++mismatches;
    }
    for (Word f = 0; f < s.pi; ++f) {
      Runtime::Ref child = rt.load_ptr(v.ref, f);
      if (s.children[f] < 0) {
        if (!child.is_null()) {
          ++mismatches;
          rt.release(child);
        }
        continue;
      }
      if (child.is_null()) {
        ++mismatches;
        continue;
      }
      temps.push_back(child);
      stack.push_back(
          {static_cast<std::size_t>(s.children[f]), child, true});
    }
  }
  for (Runtime::Ref r : temps) rt.release(r);
  return mismatches;
}

std::uint64_t ShadowMutator::data_digest(const std::vector<Word>& data) {
  std::uint64_t h = 14695981039346656037ull;
  for (Word w : data) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ (w & 0xffu)) * 1099511628211ull;
      w >>= 8;
    }
  }
  return h;
}

std::size_t ShadowMutator::probe(Runtime& rt, std::size_t* mismatches) {
  if (live_.empty()) return 0;
  // A released-but-reachable shadow object has no Ref to read through;
  // retry a few draws before giving up on this probe.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const ShadowObj& obj = objs_[pick_live()];
    if (!obj.rooted) continue;
    if (rt.pi(obj.ref) != obj.pi || rt.delta(obj.ref) != obj.delta) {
      if (mismatches != nullptr) ++*mismatches;
      return 1;
    }
    // One observable read event per probe: read_probe digests the whole
    // data area through the runtime's trace seam, so recorded traces carry
    // exactly the reads the service layer issued. Only on divergence does
    // the probe re-read word-by-word to count exact mismatches.
    const ReadProbe read = rt.read_probe(obj.ref);
    if (read.digest != data_digest(obj.data)) {
      for (Word j = 0; j < obj.delta; ++j) {
        if (rt.get_data(obj.ref, j) != obj.data[j] && mismatches != nullptr) {
          ++*mismatches;
        }
      }
    }
    return static_cast<std::size_t>(obj.delta);
  }
  return 0;
}

}  // namespace hwgc
