// A churning mutator with a shadow model — the stand-in for the paper's
// Java applications *between* collection cycles.
//
// The FPGA system runs real programs that allocate, mutate and drop
// references; Core 1 stops them when the semispace fills and the
// coprocessor collects (Section V-E). ShadowMutator reproduces that
// allocate/mutate/release churn against the Runtime facade and keeps a
// host-side shadow of the expected object graph, so tests can prove that
// *arbitrarily many* collection cycles preserve every reachable object,
// pointer and data word — not just the single cycle the HeapSnapshot
// verifier covers.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "runtime/runtime.hpp"
#include "sim/rng.hpp"

namespace hwgc {

class ShadowMutator {
 public:
  struct Config {
    std::uint64_t seed = 1;
    Word max_pi = 4;
    Word max_delta = 8;
    /// Rough number of rooted objects the mutator tries to keep alive;
    /// beyond it, allocation steps are balanced by root releases (creating
    /// garbage for the next cycle).
    std::size_t target_live = 256;
  };

  ShadowMutator() : ShadowMutator(Config{}) {}

  /// Validates the configuration eagerly: target_live == 0 (the mutator
  /// could never hold an object, so every step would be a no-op or a
  /// release of nothing) and max_pi/max_delta beyond the header encoding
  /// (object_model.hpp kMaxPi/kMaxDelta) throw std::invalid_argument here
  /// instead of corrupting headers or failing on a late allocation.
  explicit ShadowMutator(Config cfg);

  /// Performs one mutation action: allocate, link, unlink, overwrite data
  /// or release a root. Throws std::invalid_argument on the first call
  /// against a runtime whose semispace cannot hold even one max-shape
  /// object (such a config would otherwise die much later, whenever the
  /// rng first draws the unsatisfiable shape).
  void step(Runtime& rt);

  void run(Runtime& rt, std::size_t steps) {
    for (std::size_t i = 0; i < steps; ++i) step(rt);
  }

  /// Walks the shadow graph and compares every reachable object's shape,
  /// data words and link structure against the real heap. Returns the
  /// number of mismatches (0 = heap and shadow agree).
  std::size_t validate(Runtime& rt) const;

  /// Read-only probe for service-style read traffic (src/service/): picks
  /// one rooted object and compares every data word against the shadow.
  /// Returns the number of words read (0 when nothing is rooted); each
  /// divergent word increments *mismatches when non-null. Unlike
  /// validate() this is O(object), cheap enough to run per request.
  std::size_t probe(Runtime& rt, std::size_t* mismatches = nullptr);

  std::size_t live_rooted() const noexcept;
  std::uint64_t allocations() const noexcept { return allocations_; }

  /// One shadow object. Public only so Image below can be a value type the
  /// service-layer checkpoint stores and digests; not part of the mutation
  /// API.
  struct ShadowObj {
    Runtime::Ref ref;  ///< valid while rooted
    bool rooted = false;
    Word pi = 0;
    Word delta = 0;
    std::vector<std::int64_t> children;  ///< shadow index or -1
    std::vector<Word> data;
  };

  /// Checkpoint seam: the complete mutator state — shadow graph, live set,
  /// RNG stream position and allocation count. Restoring an image resumes
  /// the exact step sequence the mutator would have produced from the
  /// capture point (paired with Runtime::restore_image so the shadow and
  /// the real heap stay in lockstep).
  struct Image {
    std::array<std::uint64_t, 4> rng{};
    std::vector<ShadowObj> objs;
    std::vector<std::size_t> live;
    std::uint64_t allocations = 0;
  };

  Image save_image() const;
  void restore_image(const Image& img);

  /// FNV-1a 64 over a data-word vector — the shadow-side counterpart of
  /// Runtime::read_probe's heap-side digest (identical byte order), so a
  /// probe can compare one digest instead of every word.
  static std::uint64_t data_digest(const std::vector<Word>& data);

 private:
  /// Drops shadow objects that are no longer reachable from any rooted
  /// shadow object (they are garbage in the real heap too).
  void shadow_collect();

  std::size_t pick_live();

  Config cfg_;
  Rng rng_;
  std::vector<ShadowObj> objs_;
  std::vector<std::size_t> live_;  ///< indices of reachable shadow objects
  std::uint64_t allocations_ = 0;
};

}  // namespace hwgc
