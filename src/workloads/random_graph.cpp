#include "workloads/random_graph.hpp"

#include <vector>

namespace hwgc {

GraphPlan make_random_plan(std::uint64_t seed, RandomGraphConfig cfg) {
  Rng rng(seed);
  GraphPlan p;
  std::vector<std::uint32_t> pool;  // linkable (non-garbage) nodes
  pool.reserve(cfg.nodes);

  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    const bool garbage = rng.uniform01() < cfg.garbage_fraction;
    const Word pi = static_cast<Word>(rng.below(cfg.max_pi + 1));
    const Word delta = static_cast<Word>(rng.below(cfg.max_delta + 1));
    const std::uint32_t node = p.add(pi, delta, garbage);
    if (!garbage) pool.push_back(node);
  }
  if (pool.empty()) pool.push_back(p.add(1, 1));

  // Wire pointer fields among non-garbage nodes (any to any: back edges,
  // cycles and self-loops all occur).
  for (std::uint32_t n : pool) {
    for (Word f = 0; f < p.nodes[n].pi; ++f) {
      if (rng.uniform01() < cfg.edge_probability) {
        p.link(n, f, pool[rng.below(pool.size())]);
      }
    }
  }

  for (std::uint32_t r = 0; r < cfg.roots; ++r) {
    p.add_root(pool[rng.below(pool.size())]);
  }
  return p;
}

}  // namespace hwgc
