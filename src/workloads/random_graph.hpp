// Random object-graph generation for property-based testing.
//
// Produces arbitrary graph plans — including cycles, self-references,
// shared children, unreachable garbage and degenerate shapes — so the
// collector invariants (DESIGN.md §8) can be checked over a wide sweep of
// seeds rather than only on the benchmark shapes.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "workloads/graph_plan.hpp"

namespace hwgc {

struct RandomGraphConfig {
  std::uint32_t nodes = 500;
  Word max_pi = 6;
  Word max_delta = 10;
  /// Probability that a pointer field is linked (to any node, including
  /// the object itself — cycles and self-loops are intended).
  double edge_probability = 0.6;
  /// Fraction of nodes that are never referenced and not rooted: must
  /// survive as garbage (i.e. must NOT be copied).
  double garbage_fraction = 0.15;
  std::uint32_t roots = 4;
};

/// Builds a random plan. Reachability is whatever the dice decide: some
/// "live" nodes may still end up unreachable — the verifier snapshot
/// defines ground truth, so that is fine.
GraphPlan make_random_plan(std::uint64_t seed, RandomGraphConfig cfg = {});

}  // namespace hwgc
