// Correctness of all software baseline collectors: each must preserve the
// live graph on every benchmark shape, at several thread counts.
#include <gtest/gtest.h>

#include "baselines/chunked_copying.hpp"
#include "baselines/naive_parallel.hpp"
#include "baselines/sequential_cheney.hpp"
#include "baselines/work_packets.hpp"
#include "baselines/work_stealing.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

struct BaselineCase {
  std::string_view name;
  bool dense;  // collector produces hole-free tospace
  ParallelGcStats (*run)(Heap&, std::uint32_t threads);
};

const BaselineCase kBaselines[] = {
    {"naive", true,
     [](Heap& h, std::uint32_t t) {
       return NaiveParallelCheney({.threads = t}).collect(h);
     }},
    {"chunked", false,
     [](Heap& h, std::uint32_t t) {
       return ChunkedCopyingCollector({.threads = t}).collect(h);
     }},
    {"packets", true,
     [](Heap& h, std::uint32_t t) {
       return WorkPacketCollector({.threads = t}).collect(h);
     }},
    {"stealing", false,
     [](Heap& h, std::uint32_t t) {
       return WorkStealingCollector({.threads = t}).collect(h);
     }},
};

class BaselineCorrectness
    : public ::testing::TestWithParam<std::tuple<BenchmarkId, std::uint32_t>> {
};

TEST_P(BaselineCorrectness, PreservesLiveGraph) {
  const auto [bench, threads] = GetParam();
  for (const auto& baseline : kBaselines) {
    Workload w = make_benchmark(bench, 0.02);
    const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
    const ParallelGcStats stats = baseline.run(*w.heap, threads);
    EXPECT_EQ(stats.objects_copied, pre.objects.size()) << baseline.name;
    const VerifyResult res =
        verify_collection(pre, *w.heap, {.require_dense = baseline.dense});
    EXPECT_TRUE(res.ok) << baseline.name << " t=" << threads << ": "
                        << res.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BaselineCorrectness,
    ::testing::Combine(::testing::ValuesIn(all_benchmarks()),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& param_info) {
      return std::string(benchmark_name(std::get<0>(param_info.param))) + "_t" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(BaselineStats, NaiveCountsSynchronization) {
  Workload w = make_benchmark(BenchmarkId::kDb, 0.02);
  const ParallelGcStats stats =
      NaiveParallelCheney({.threads = 4}).collect(*w.heap);
  // The naive collector takes the scan mutex per object and a header
  // stripe per pointer field: sync ops must exceed the object count by a
  // wide margin — the paper's motivating observation.
  EXPECT_GT(stats.mutex_acquisitions, 2 * stats.objects_copied);
}

TEST(BaselineStats, ChunkedReportsFragmentation) {
  Workload w = make_benchmark(BenchmarkId::kJavacc, 0.05);
  const ParallelGcStats stats =
      ChunkedCopyingCollector({.threads = 4, .chunk_words = 256}).collect(*w.heap);
  EXPECT_GT(stats.wasted_words, 0u)
      << "chunk tails should produce measurable fragmentation";
}

TEST(BaselineStats, StealingStealsUnderImbalance) {
  // A single chain gives thread 0 all the initial work; the others must
  // find theirs by stealing.
  Workload w = make_benchmark(BenchmarkId::kSearch, 0.02);
  const ParallelGcStats stats =
      WorkStealingCollector({.threads = 4}).collect(*w.heap);
  EXPECT_GT(stats.steal_attempts, 0u);
}

}  // namespace
}  // namespace hwgc
